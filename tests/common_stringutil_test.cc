#include "common/stringutil.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

TEST(Split, BasicFields) {
  std::vector<std::string> f = Split("a,b,c", ',');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  std::vector<std::string> f = Split("a,,c,", ',');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(Split, NoSeparator) {
  std::vector<std::string> f = Split("abc", ',');
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "abc");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(Join, BasicJoin) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
}

TEST(ParseDouble, ValidNumbers) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2 ", &v));
  EXPECT_DOUBLE_EQ(v, -2.0);
  EXPECT_TRUE(ParseDouble("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
}

TEST(ParseDouble, RejectsJunk) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("   ", &v));
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace disc
