#include "ml/cross_validation.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace disc {
namespace {

TEST(ScoreClassification, PerfectPrediction) {
  std::vector<int> y{0, 1, 2, 0, 1, 2};
  ClassificationScores s = ScoreClassification(y, y);
  EXPECT_DOUBLE_EQ(s.macro_f1, 1.0);
  EXPECT_DOUBLE_EQ(s.accuracy, 1.0);
}

TEST(ScoreClassification, AllWrong) {
  std::vector<int> truth{0, 0, 0};
  std::vector<int> pred{1, 1, 1};
  ClassificationScores s = ScoreClassification(pred, truth);
  EXPECT_DOUBLE_EQ(s.macro_f1, 0.0);
  EXPECT_DOUBLE_EQ(s.accuracy, 0.0);
}

TEST(ScoreClassification, KnownMacroF1) {
  // Class 0: tp=1 fp=0 fn=1 → P=1, R=0.5, F1=2/3.
  // Class 1: tp=1 fp=1 fn=0 → P=0.5, R=1, F1=2/3.
  std::vector<int> truth{0, 0, 1};
  std::vector<int> pred{0, 1, 1};
  ClassificationScores s = ScoreClassification(pred, truth);
  EXPECT_NEAR(s.macro_f1, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.accuracy, 2.0 / 3.0, 1e-12);
}

TEST(ScoreClassification, EmptyInput) {
  ClassificationScores s = ScoreClassification({}, {});
  EXPECT_DOUBLE_EQ(s.macro_f1, 0.0);
}

TEST(CrossValidateTree, SeparableDataScoresHigh) {
  Rng rng(81);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    double v = rng.Uniform(0, 10);
    x.push_back({v});
    y.push_back(v < 5 ? 0 : 1);
  }
  ClassificationScores s = CrossValidateTree(x, y, 5);
  EXPECT_GT(s.macro_f1, 0.95);
  EXPECT_GT(s.accuracy, 0.95);
}

TEST(CrossValidateTree, RandomLabelsScoreNearHalf) {
  Rng rng(83);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    x.push_back({rng.Uniform(0, 1)});
    y.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  ClassificationScores s = CrossValidateTree(x, y, 5);
  EXPECT_LT(s.accuracy, 0.65);
  EXPECT_GT(s.accuracy, 0.35);
}

TEST(CrossValidateTree, DeterministicForFixedSeed) {
  Rng rng(85);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    double v = rng.Uniform(0, 10);
    x.push_back({v, rng.Uniform(0, 1)});
    y.push_back(v < 5 ? 0 : 1);
  }
  ClassificationScores a = CrossValidateTree(x, y, 5, {}, 7);
  ClassificationScores b = CrossValidateTree(x, y, 5, {}, 7);
  EXPECT_DOUBLE_EQ(a.macro_f1, b.macro_f1);
}

TEST(StratifiedCv, SeparableDataScoresHigh) {
  Rng rng(87);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    double v = rng.Uniform(0, 10);
    x.push_back({v});
    y.push_back(v < 5 ? 0 : 1);
  }
  ClassificationScores s = StratifiedCrossValidateTree(x, y, 5);
  EXPECT_GT(s.macro_f1, 0.95);
}

TEST(StratifiedCv, HandlesSevereClassImbalance) {
  // 190:10 imbalance: plain round-robin folds can leave a fold without any
  // minority sample; stratification guarantees each fold sees both classes.
  Rng rng(89);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 190; ++i) {
    x.push_back({rng.Uniform(0, 1)});
    y.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {
    x.push_back({rng.Uniform(9, 10)});
    y.push_back(1);
  }
  ClassificationScores s = StratifiedCrossValidateTree(x, y, 5);
  // The minority class is perfectly separable, so stratified folds should
  // classify it correctly (macro-F1 near 1 despite the imbalance).
  EXPECT_GT(s.macro_f1, 0.9);
}

TEST(StratifiedCv, DeterministicForFixedSeed) {
  Rng rng(90);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 120; ++i) {
    double v = rng.Uniform(0, 10);
    x.push_back({v});
    y.push_back(v < 5 ? 0 : 1);
  }
  ClassificationScores a = StratifiedCrossValidateTree(x, y, 5, {}, 3);
  ClassificationScores b = StratifiedCrossValidateTree(x, y, 5, {}, 3);
  EXPECT_DOUBLE_EQ(a.macro_f1, b.macro_f1);
}

TEST(StratifiedCv, DegenerateInputsReturnZero) {
  ClassificationScores empty = StratifiedCrossValidateTree({}, {}, 5);
  EXPECT_DOUBLE_EQ(empty.macro_f1, 0.0);
}

TEST(CrossValidateTree, DegenerateInputsReturnZero) {
  ClassificationScores empty = CrossValidateTree({}, {}, 5);
  EXPECT_DOUBLE_EQ(empty.macro_f1, 0.0);
  // Fewer samples than folds.
  std::vector<std::vector<double>> x{{1}, {2}};
  std::vector<int> y{0, 1};
  ClassificationScores tiny = CrossValidateTree(x, y, 5);
  EXPECT_DOUBLE_EQ(tiny.macro_f1, 0.0);
}

}  // namespace
}  // namespace disc
