#include "cleaning/eracer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace disc {
namespace {

/// Linearly correlated data: y = 2x + 1 with small noise; one corrupted y.
Relation LinearData(std::uint64_t seed = 31) {
  Rng rng(seed);
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 100; ++i) {
    double x = rng.Uniform(0, 10);
    double y = 2 * x + 1 + rng.Gaussian(0, 0.05);
    r.AppendUnchecked(Tuple::Numeric({x, y}));
  }
  return r;
}

TEST(Eracer, RepairsExtremeResidual) {
  Relation data = LinearData();
  double x0 = data[0][0].num();
  data[0][1] = Value(500.0);  // corrupt y of row 0
  DistanceEvaluator ev(data.schema());
  Relation repaired = Eracer(data, ev);
  double expected = 2 * x0 + 1;
  EXPECT_NEAR(repaired[0][1].num(), expected, 2.0);
}

TEST(Eracer, CleanCellsMostlyUntouched) {
  Relation data = LinearData();
  data[0][1] = Value(500.0);
  DistanceEvaluator ev(data.schema());
  Relation repaired = Eracer(data, ev);
  std::size_t changed = 0;
  for (std::size_t i = 1; i < data.size(); ++i) {
    if (!(repaired[i] == data[i])) ++changed;
  }
  // The 3σ residual cut should leave nearly all clean rows alone.
  EXPECT_LE(changed, 5u);
}

TEST(Eracer, SmallErrorsSlipThrough) {
  // An in-band error below the residual cut is NOT repaired — the weakness
  // the paper attributes to statistical cleaning.
  Relation data = LinearData();
  double x0 = data[0][0].num();
  double clean_y = data[0][1].num();
  data[0][1] = Value(clean_y + 0.1);  // tiny perturbation
  DistanceEvaluator ev(data.schema());
  Relation repaired = Eracer(data, ev);
  (void)x0;
  EXPECT_NEAR(repaired[0][1].num(), clean_y + 0.1, 1e-9);
}

TEST(Eracer, NoOpOnTinyRelations) {
  Relation r(Schema::Numeric(2));
  r.AppendUnchecked(Tuple::Numeric({1, 2}));
  DistanceEvaluator ev(r.schema());
  Relation repaired = Eracer(r, ev);
  EXPECT_EQ(repaired[0], r[0]);
}

TEST(Eracer, NoOpOnSingleAttribute) {
  Rng rng(4);
  Relation r(Schema::Numeric(1));
  for (int i = 0; i < 50; ++i) {
    r.AppendUnchecked(Tuple::Numeric({rng.Gaussian(0, 1)}));
  }
  DistanceEvaluator ev(r.schema());
  Relation repaired = Eracer(r, ev);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(repaired[i], r[i]);
  }
}

TEST(Eracer, StringAttributesIgnored) {
  Rng rng(6);
  Relation r(Schema({{"x", ValueKind::kNumeric},
                     {"y", ValueKind::kNumeric},
                     {"s", ValueKind::kString}}));
  for (int i = 0; i < 60; ++i) {
    double x = rng.Uniform(0, 10);
    r.AppendUnchecked(Tuple{Value(x), Value(3 * x), Value("tag")});
  }
  r[0][1] = Value(999.0);
  DistanceEvaluator ev(r.schema());
  Relation repaired = Eracer(r, ev);
  EXPECT_EQ(repaired[0][2].str(), "tag");
  EXPECT_NEAR(repaired[0][1].num(), 3 * r[0][0].num(), 2.0);
}

TEST(Eracer, IterationsConverge) {
  Relation data = LinearData();
  data[0][1] = Value(500.0);
  data[1][1] = Value(-300.0);
  DistanceEvaluator ev(data.schema());
  EracerOptions one;
  one.iterations = 1;
  EracerOptions three;
  three.iterations = 3;
  Relation r1 = Eracer(data, ev, one);
  Relation r3 = Eracer(data, ev, three);
  // With more iterations, repairs should be at least as close to the model.
  double err1 = std::fabs(r1[0][1].num() - (2 * data[0][0].num() + 1));
  double err3 = std::fabs(r3[0][1].num() - (2 * data[0][0].num() + 1));
  EXPECT_LE(err3, err1 + 0.5);
}

}  // namespace
}  // namespace disc
