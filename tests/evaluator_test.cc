#include "distance/evaluator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace disc {
namespace {

TEST(Evaluator, L2DefaultOnNumeric) {
  DistanceEvaluator ev(Schema::Numeric(2));
  Tuple a = Tuple::Numeric({0, 0});
  Tuple b = Tuple::Numeric({3, 4});
  EXPECT_DOUBLE_EQ(ev.Distance(a, b), 5.0);
}

TEST(Evaluator, L1Option) {
  DistanceEvaluator ev(Schema::Numeric(2), LpNorm::kL1);
  EXPECT_DOUBLE_EQ(ev.Distance(Tuple::Numeric({0, 0}), Tuple::Numeric({3, 4})),
                   7.0);
}

TEST(Evaluator, MixedSchemaUsesEditDistance) {
  Schema schema({{"x", ValueKind::kNumeric}, {"s", ValueKind::kString}});
  DistanceEvaluator ev(schema);
  Tuple a{Value(0.0), Value("abc")};
  Tuple b{Value(3.0), Value("abd")};  // numeric diff 3, edit distance 1
  EXPECT_DOUBLE_EQ(ev.Distance(a, b), std::sqrt(9.0 + 1.0));
}

TEST(Evaluator, DistanceOnSubset) {
  DistanceEvaluator ev(Schema::Numeric(3));
  Tuple a = Tuple::Numeric({0, 0, 0});
  Tuple b = Tuple::Numeric({3, 4, 12});
  EXPECT_DOUBLE_EQ(ev.DistanceOn(AttributeSet{0, 1}, a, b), 5.0);
  EXPECT_DOUBLE_EQ(ev.DistanceOn(AttributeSet{2}, a, b), 12.0);
}

TEST(Evaluator, EmptySubsetIsZero) {
  // The Δ(t1[∅], t2[∅]) = 0 convention of §3.1.
  DistanceEvaluator ev(Schema::Numeric(3));
  EXPECT_DOUBLE_EQ(
      ev.DistanceOn(AttributeSet(), Tuple::Numeric({0, 0, 0}),
                    Tuple::Numeric({9, 9, 9})),
      0.0);
}

TEST(Evaluator, MonotonicityInAttributes) {
  // Δ(t1[X], t2[X]) <= Δ(t1[X ∪ {A}], t2[X ∪ {A}]) — §2.1.1.
  DistanceEvaluator ev(Schema::Numeric(3));
  Tuple a = Tuple::Numeric({1, 2, 3});
  Tuple b = Tuple::Numeric({4, 6, 3});
  AttributeSet x{0};
  AttributeSet xa = x.With(1);
  EXPECT_LE(ev.DistanceOn(x, a, b), ev.DistanceOn(xa, a, b) + 1e-12);
  EXPECT_LE(ev.DistanceOn(xa, a, b), ev.Distance(a, b) + 1e-12);
}

TEST(Evaluator, DistanceWithinEarlyExit) {
  DistanceEvaluator ev(Schema::Numeric(2));
  Tuple a = Tuple::Numeric({0, 0});
  Tuple b = Tuple::Numeric({10, 10});
  EXPECT_TRUE(std::isinf(ev.DistanceWithin(a, b, 1.0)));
  double exact = ev.Distance(a, b);
  EXPECT_DOUBLE_EQ(ev.DistanceWithin(a, b, exact + 1.0), exact);
}

TEST(Evaluator, DistanceWithinEqualsDistanceUnderThreshold) {
  DistanceEvaluator ev(Schema::Numeric(3));
  Tuple a = Tuple::Numeric({1, 2, 3});
  Tuple b = Tuple::Numeric({2, 2, 4});
  EXPECT_DOUBLE_EQ(ev.DistanceWithin(a, b, 100.0), ev.Distance(a, b));
}

TEST(Evaluator, TriangleInequalityOnTuples) {
  DistanceEvaluator ev(Schema::Numeric(2));
  Tuple ts[] = {Tuple::Numeric({0, 0}), Tuple::Numeric({1, 2}),
                Tuple::Numeric({-3, 4}), Tuple::Numeric({10, 10})};
  for (const Tuple& a : ts) {
    for (const Tuple& b : ts) {
      for (const Tuple& c : ts) {
        EXPECT_LE(ev.Distance(a, c),
                  ev.Distance(a, b) + ev.Distance(b, c) + 1e-9);
      }
    }
  }
}

TEST(Evaluator, SymmetryOnMixedData) {
  Schema schema({{"x", ValueKind::kNumeric}, {"s", ValueKind::kString}});
  DistanceEvaluator ev(schema);
  Tuple a{Value(1.0), Value("cat")};
  Tuple b{Value(5.0), Value("cart")};
  EXPECT_DOUBLE_EQ(ev.Distance(a, b), ev.Distance(b, a));
}

TEST(Evaluator, CustomMetricOverride) {
  DistanceEvaluator ev(Schema::Numeric(2));
  ev.SetMetric(1, std::make_unique<AbsoluteDifferenceMetric>(2.0));
  // Attribute 1 distances are halved.
  EXPECT_DOUBLE_EQ(ev.Distance(Tuple::Numeric({0, 0}), Tuple::Numeric({0, 4})),
                   2.0);
}

TEST(Evaluator, AttributeDistanceDirect) {
  DistanceEvaluator ev(Schema::Numeric(1));
  EXPECT_DOUBLE_EQ(ev.AttributeDistance(0, Value(2.0), Value(5.5)), 3.5);
}

}  // namespace
}  // namespace disc
