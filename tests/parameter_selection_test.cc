#include "constraints/parameter_selection.h"

#include <gtest/gtest.h>

#include <memory>

#include "data/generators.h"
#include "index/index_factory.h"

namespace disc {
namespace {

LabeledRelation ClusteredData(std::size_t per_cluster = 150) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0, 0}, 1.0, per_cluster});
  clusters.push_back({{30, 0}, 1.0, per_cluster});
  clusters.push_back({{0, 30}, 1.0, per_cluster});
  return GenerateGaussianMixture(clusters, 5);
}

TEST(PoissonSelection, PicksUsableConstraint) {
  LabeledRelation data = ClusteredData();
  DistanceEvaluator ev(data.data.schema());
  ParameterSelection sel = SelectParametersPoisson(data.data, ev);
  EXPECT_GT(sel.constraint.epsilon, 0.0);
  EXPECT_GE(sel.constraint.eta, 1u);
  EXPECT_GE(sel.confidence, 0.99);
}

TEST(PoissonSelection, ClusterPointsMostlySatisfy) {
  LabeledRelation data = ClusteredData();
  DistanceEvaluator ev(data.data.schema());
  ParameterSelection sel = SelectParametersPoisson(data.data, ev);
  auto index = MakeNeighborIndex(data.data, ev, sel.constraint.epsilon);
  InlierOutlierSplit split =
      SplitInliersOutliers(data.data, *index, sel.constraint);
  // The target outlier rate is 0.1; allow slack but most points must pass.
  EXPECT_GT(split.inlier_rows.size(), data.data.size() * 6 / 10);
}

TEST(PoissonSelection, SamplingGivesSimilarEpsilon) {
  LabeledRelation data = ClusteredData(400);
  DistanceEvaluator ev(data.data.schema());
  ParameterSelectionOptions full;
  ParameterSelectionOptions sampled;
  sampled.sample_rate = 0.1;
  ParameterSelection a = SelectParametersPoisson(data.data, ev, full);
  ParameterSelection b = SelectParametersPoisson(data.data, ev, sampled);
  // Figure 5(c)/(d): a 10% sample recovers the distribution — the chosen
  // ε must be within a factor ~2.
  ASSERT_GT(a.constraint.epsilon, 0.0);
  EXPECT_LT(b.constraint.epsilon / a.constraint.epsilon, 2.5);
  EXPECT_GT(b.constraint.epsilon / a.constraint.epsilon, 0.4);
}

TEST(PoissonSelection, ExplicitCandidatesRespected) {
  LabeledRelation data = ClusteredData();
  DistanceEvaluator ev(data.data.schema());
  ParameterSelectionOptions opts;
  opts.epsilon_candidates = {0.5, 1.0, 2.0};
  ParameterSelection sel = SelectParametersPoisson(data.data, ev, opts);
  bool found = sel.constraint.epsilon == 0.5 || sel.constraint.epsilon == 1.0 ||
               sel.constraint.epsilon == 2.0;
  EXPECT_TRUE(found);
}

TEST(PoissonSelection, ConfidenceHolds) {
  LabeledRelation data = ClusteredData();
  DistanceEvaluator ev(data.data.schema());
  ParameterSelection sel = SelectParametersPoisson(data.data, ev);
  // p(N >= eta) under the fitted model must meet the confidence.
  EXPECT_GE(sel.confidence, 0.99);
  EXPECT_GT(sel.lambda_epsilon, static_cast<double>(sel.constraint.eta));
}

TEST(NormalSelection, ReturnsPositiveParameters) {
  LabeledRelation data = ClusteredData();
  DistanceEvaluator ev(data.data.schema());
  ParameterSelection sel = SelectParametersNormal(data.data, ev);
  EXPECT_GT(sel.constraint.epsilon, 0.0);
  EXPECT_GE(sel.constraint.eta, 1u);
}

TEST(NormalSelection, PicksLargerEpsilonScaleThanClusterSpread) {
  // The DB baseline derives ε from the *global* pairwise distance scale
  // (inter-cluster!), which is the wrong scale on clustered data — Table 4.
  LabeledRelation data = ClusteredData();
  DistanceEvaluator ev(data.data.schema());
  ParameterSelection poisson = SelectParametersPoisson(data.data, ev);
  ParameterSelection normal = SelectParametersNormal(data.data, ev);
  EXPECT_NE(poisson.constraint.epsilon, normal.constraint.epsilon);
}

TEST(MeanPairwiseDistance, ReasonableOnKnownData) {
  Relation r(Schema::Numeric(1));
  r.AppendUnchecked(Tuple::Numeric({0}));
  r.AppendUnchecked(Tuple::Numeric({10}));
  DistanceEvaluator ev(r.schema());
  Rng rng(1);
  double mean = EstimateMeanPairwiseDistance(r, ev, 500, &rng);
  EXPECT_NEAR(mean, 10.0, 1e-9);
}

TEST(MeanPairwiseDistance, ZeroForTinyRelation) {
  Relation r(Schema::Numeric(1));
  r.AppendUnchecked(Tuple::Numeric({5}));
  DistanceEvaluator ev(r.schema());
  Rng rng(1);
  EXPECT_DOUBLE_EQ(EstimateMeanPairwiseDistance(r, ev, 100, &rng), 0.0);
}

}  // namespace
}  // namespace disc
