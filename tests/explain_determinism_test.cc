// Decision-log determinism through the full save pipeline (DESIGN.md §14).
// The contract: with the trace batch counter pinned, the serialized explain
// log of every search — trace ids, event streams, bounds, incumbents,
// donors, derived summaries — is bit-identical across thread counts;
// only wall_nanos is excluded (nondeterministic by contract, like
// SearchStats::wall_nanos). Runs in the tsan-obs CI shard so the per-worker
// collector slots and batch-end drain are also raced under TSan.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/random.h"
#include "common/trace.h"
#include "core/outlier_saving.h"
#include "data/generators.h"
#include "distance/evaluator.h"
#include "obs/explain.h"

namespace disc {
namespace {

/// Thread-safe in-memory sink capturing every emitted decision log.
class CaptureSink : public ExplainSink {
 public:
  void Emit(const ExplainSearchLog& log) override {
    std::lock_guard<std::mutex> lock(mu_);
    logs_.push_back(log);
  }

  std::vector<ExplainSearchLog> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(logs_);
  }

 private:
  std::mutex mu_;
  std::vector<ExplainSearchLog> logs_;
};

/// The noisy scenario shared with the trace-determinism suite: three
/// Gaussian clusters, a slice of corrupted rows, two natural outliers.
Relation MakeNoisyDataset(std::uint64_t seed) {
  std::vector<ClusterSpec> specs = {
      {{0, 0, 0, 0}, 0.5, 80},
      {{10, 10, 0, 0}, 0.5, 80},
      {{0, 10, 10, 0}, 0.5, 80},
  };
  LabeledRelation mixture = GenerateGaussianMixture(specs, seed);
  Rng rng(seed + 1);
  for (std::size_t row = 3; row < mixture.data.size(); row += 11) {
    std::size_t a = static_cast<std::size_t>(rng.UniformInt(0, 3));
    mixture.data[row][a] =
        Value(mixture.data[row][a].num() + 20.0 + rng.Uniform() * 5.0);
    if (row % 22 == 3) {
      mixture.data[row][(a + 2) % 4] = Value(-18.0 - rng.Uniform() * 5.0);
    }
  }
  AppendNaturalOutliers(&mixture, 2, 60.0, seed + 2);
  return std::move(mixture.data);
}

/// Runs the pipeline at `threads` with the batch counter pinned, so every
/// run derives the same batch seed and therefore the same trace ids.
std::vector<ExplainSearchLog> RunExplained(const Relation& data,
                                           std::size_t threads) {
  SetTraceBatchCounterForTest(1234);
  CaptureSink sink;
  DistanceEvaluator evaluator(data.schema());
  OutlierSavingOptions opts;
  opts.constraint = {1.6, 5};
  opts.save.kappa = 2;
  opts.natural_attribute_threshold = 2;
  opts.num_threads = threads;
  opts.explain = &sink;
  SavedDataset saved = SaveOutliers(data, evaluator, opts);
  EXPECT_TRUE(saved.status.ok()) << saved.status.ToString();
  EXPECT_GT(saved.records.size(), 10u);
  return sink.Take();
}

/// The scheduling-independent identity of a run: every log serialized in
/// emission order with wall_nanos zeroed — which also zeroes the wall field
/// inside the derived summary, so the comparison covers events, bounds,
/// trace ids, counters and analytics all at once.
std::vector<std::string> Serialized(std::vector<ExplainSearchLog> logs) {
  std::vector<std::string> out;
  out.reserve(logs.size());
  for (ExplainSearchLog& log : logs) {
    log.wall_nanos = 0;
    JsonWriter json;
    AppendExplainSearchJson(json, log);
    out.push_back(json.str());
  }
  return out;
}

TEST(ExplainDeterminism, SerializedLogsIdenticalAcross148Threads) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  const std::vector<std::string> baseline = Serialized(RunExplained(data, 1));
  ASSERT_FALSE(baseline.empty());

  for (std::size_t threads : {4u, 8u}) {
    const std::vector<std::string> got =
        Serialized(RunExplained(data, threads));
    ASSERT_EQ(got.size(), baseline.size()) << "at " << threads << " threads";
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], baseline[i])
          << "log " << i << " diverges at " << threads << " threads";
    }
  }
}

TEST(ExplainDeterminism, RepeatedRunEmitsTheSameLogs) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  const std::vector<std::string> first = Serialized(RunExplained(data, 4));
  const std::vector<std::string> second = Serialized(RunExplained(data, 4));
  EXPECT_EQ(first, second);
}

TEST(ExplainDeterminism, EmissionOrderAndTraceIdsAreDeterministic) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  const std::vector<ExplainSearchLog> logs = RunExplained(data, 8);
  ASSERT_FALSE(logs.empty());
  // The batch-end drain sorts by (ordinal, attempt): emission order is the
  // input order regardless of which worker ran which search.
  for (std::size_t i = 1; i < logs.size(); ++i) {
    EXPECT_LT(logs[i - 1].ordinal, logs[i].ordinal);
  }
  // Explain-only runs still derive ids (no TraceSink attached here), and
  // every search links to a distinct trace.
  for (std::size_t i = 0; i < logs.size(); ++i) {
    EXPECT_NE(logs[i].trace_id, 0u) << "log " << i;
    for (std::size_t j = i + 1; j < logs.size(); ++j) {
      EXPECT_NE(logs[i].trace_id, logs[j].trace_id)
          << "logs " << i << " and " << j << " share a trace id";
    }
  }
}

TEST(ExplainDeterminism, EventStreamsRederiveTheStatsCounters) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  const std::vector<ExplainSearchLog> logs = RunExplained(data, 4);
  ASSERT_FALSE(logs.empty());
  for (const ExplainSearchLog& log : logs) {
    ASSERT_EQ(log.dropped_events, 0u) << "ordinal " << log.ordinal;
    std::uint64_t lb_like = 0;
    std::uint64_t node_events = 0;
    std::uint64_t reverts = 0;
    for (const ExplainEvent& event : log.events) {
      if (event.action == ExplainAction::kPruneLb ||
          event.action == ExplainAction::kInfeasible) {
        ++lb_like;
      }
      // memo_hit revisits a set the memo already counted; the seed is
      // injected before the walk — both are excluded from the node count.
      if (event.action == ExplainAction::kRevertRefine) {
        ++reverts;
      } else if (!event.seed && event.action != ExplainAction::kMemoHit) {
        ++node_events;
      }
    }
    EXPECT_EQ(lb_like, log.lb_prunes) << "ordinal " << log.ordinal;
    EXPECT_EQ(node_events, log.visited_sets) << "ordinal " << log.ordinal;
    EXPECT_EQ(reverts, log.revert_refines) << "ordinal " << log.ordinal;
  }
}

}  // namespace
}  // namespace disc
