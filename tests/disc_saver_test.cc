#include "core/disc_saver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/exact_saver.h"

namespace disc {
namespace {

/// Grid-shaped inliers: integer lattice points in [0, side)², giving exact
/// algorithms a small discrete domain to enumerate.
Relation LatticeInliers(int side) {
  Relation r(Schema::Numeric(2));
  for (int x = 0; x < side; ++x) {
    for (int y = 0; y < side; ++y) {
      r.AppendUnchecked(Tuple::Numeric({double(x), double(y)}));
    }
  }
  return r;
}

Relation GaussianInliers(std::size_t count, std::size_t dims,
                         std::uint64_t seed) {
  Rng rng(seed);
  Relation r(Schema::Numeric(dims));
  for (std::size_t i = 0; i < count; ++i) {
    Tuple t(dims);
    for (std::size_t d = 0; d < dims; ++d) t[d] = Value(rng.Gaussian(0, 1.0));
    r.AppendUnchecked(std::move(t));
  }
  return r;
}

TEST(DiscSaver, SavesSingleAttributeError) {
  Relation inliers = GaussianInliers(80, 2, 1);
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{1.0, 5};
  DiscSaver saver(inliers, ev, c);

  // An inlier-like point with one broken attribute.
  Tuple outlier = Tuple::Numeric({0.0, 25.0});
  SaveResult res = saver.Save(outlier);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(saver.bounds().IsFeasible(res.adjusted));
  // The result should fix mostly attribute 1 and stay close on attribute 0.
  EXPECT_LT(std::fabs(res.adjusted[1].num()), 5.0);
}

TEST(DiscSaver, PrefersSingleAttributeAdjustment) {
  Relation inliers = GaussianInliers(120, 3, 2);
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{1.2, 5};
  DiscSaver saver(inliers, ev, c);

  Tuple outlier = Tuple::Numeric({0.1, -0.2, 30.0});
  SaveResult res = saver.Save(outlier);
  ASSERT_TRUE(res.feasible);
  // The broken attribute must be among the adjusted ones and the cost must
  // be dominated by fixing it (≈ 30 − cluster radius); DISC minimizes
  // distance, so any extra attribute tweaks stay small.
  EXPECT_TRUE(res.adjusted_attributes.contains(2));
  EXPECT_LT(res.cost, 31.0);
  EXPECT_GT(res.cost, 25.0);
  // The unbroken attributes end up near their original values.
  EXPECT_LT(std::fabs(res.adjusted[0].num() - 0.1), 3.0);
  EXPECT_LT(std::fabs(res.adjusted[1].num() + 0.2), 3.0);
}

TEST(DiscSaver, CostAtLeastGlobalLowerBound) {
  Relation inliers = GaussianInliers(60, 2, 3);
  DistanceEvaluator ev(inliers.schema());
  DiscSaver saver(inliers, ev, {1.0, 4});
  Rng rng(9);
  for (int t = 0; t < 10; ++t) {
    Tuple outlier =
        Tuple::Numeric({rng.Uniform(-20, 20), rng.Uniform(-20, 20)});
    SaveResult res = saver.Save(outlier);
    if (res.feasible) {
      EXPECT_GE(res.cost, res.lower_bound - 1e-9);
    }
  }
}

TEST(DiscSaver, NeverWorseThanNearestCoreInlierSubstitution) {
  // Lemma 4 assumes every tuple of r satisfies the constraint. With an
  // unfiltered inlier pool, the guarantee is against the nearest tuple
  // that itself has η ε-neighbors (a valid substitution donor) — DISC must
  // do at least as well as substituting onto it (what DORC does).
  Relation inliers = GaussianInliers(60, 2, 4);
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{1.0, 4};
  DiscSaver saver(inliers, ev, c);

  // Distances to each inlier's η-th nearest inlier (self included).
  std::vector<double> delta(inliers.size());
  for (std::size_t i = 0; i < inliers.size(); ++i) {
    std::vector<double> d;
    for (const Tuple& in : inliers) d.push_back(ev.Distance(inliers[i], in));
    std::sort(d.begin(), d.end());
    delta[i] = d[c.eta - 1];
  }

  Rng rng(10);
  for (int t = 0; t < 10; ++t) {
    Tuple outlier = Tuple::Numeric({rng.Uniform(3, 20), rng.Uniform(3, 20)});
    SaveResult res = saver.Save(outlier);
    if (!res.feasible) continue;
    double nearest_core = 1e300;
    for (std::size_t i = 0; i < inliers.size(); ++i) {
      if (delta[i] > c.epsilon) continue;  // not a core tuple
      nearest_core = std::min(nearest_core, ev.Distance(outlier, inliers[i]));
    }
    EXPECT_LE(res.cost, nearest_core + 1e-9);
  }
}

TEST(DiscSaver, MatchesOrBeatsExactCostNever) {
  // DISC is an approximation: cost(DISC) >= cost(Exact), and on lattice
  // data with small domains both are computable. Also sandwich vs bounds.
  Relation inliers = LatticeInliers(6);  // 36 points, domain size 6
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{1.5, 4};
  DiscSaver saver(inliers, ev, c);
  ExactSaver exact(inliers, ev, c);

  Rng rng(21);
  for (int t = 0; t < 8; ++t) {
    Tuple outlier =
        Tuple::Numeric({rng.Uniform(8, 20), rng.Uniform(8, 20)});
    SaveResult approx = saver.Save(outlier);
    ExactResult best = exact.Save(outlier);
    ASSERT_EQ(approx.feasible, best.feasible);
    if (approx.feasible) {
      EXPECT_GE(approx.cost, best.cost - 1e-9);
      EXPECT_GE(best.cost, approx.lower_bound - 1e-9);
    }
  }
}

TEST(DiscSaver, KappaRestrictsAdjustedAttributes) {
  Relation inliers = GaussianInliers(100, 4, 6);
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{1.5, 5};
  DiscSaver saver(inliers, ev, c);

  Tuple outlier = Tuple::Numeric({0.0, 0.1, 25.0, -0.1});
  SaveOptions opts;
  opts.kappa = 1;
  SaveResult res = saver.Save(outlier, opts);
  if (res.feasible) {
    EXPECT_LE(res.adjusted_attributes.size(), 1u);
  }
}

TEST(DiscSaver, KappaTooSmallMayBeInfeasible) {
  Relation inliers = GaussianInliers(100, 3, 7);
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{1.2, 5};
  DiscSaver saver(inliers, ev, c);

  // A natural outlier: ALL attributes far off. κ = 1 cannot save it.
  Tuple natural = Tuple::Numeric({50, -50, 50});
  SaveOptions opts;
  opts.kappa = 1;
  SaveResult res = saver.Save(natural, opts);
  EXPECT_FALSE(res.feasible);
  // Unrestricted saving CAN save it (by changing everything).
  SaveResult full = saver.Save(natural);
  EXPECT_TRUE(full.feasible);
  EXPECT_EQ(full.adjusted_attributes.size(), 3u);
}

TEST(DiscSaver, PruningDoesNotChangeResult) {
  // Ablation: disabling lower-bound pruning must yield the same cost,
  // only more visited sets.
  Relation inliers = GaussianInliers(80, 3, 8);
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{1.2, 4};
  DiscSaver saver(inliers, ev, c);

  Rng rng(33);
  for (int t = 0; t < 6; ++t) {
    Tuple outlier = Tuple::Numeric(
        {rng.Uniform(-15, 15), rng.Uniform(-15, 15), rng.Uniform(-15, 15)});
    SaveOptions with;
    SaveOptions without;
    without.use_lower_bound_pruning = false;
    SaveResult a = saver.Save(outlier, with);
    SaveResult b = saver.Save(outlier, without);
    ASSERT_EQ(a.feasible, b.feasible);
    if (a.feasible) {
      EXPECT_NEAR(a.cost, b.cost, 1e-9);
    }
    EXPECT_LE(a.visited_sets, b.visited_sets);
  }
}

TEST(DiscSaver, VisitedSetsBoundedByPowerSet) {
  Relation inliers = GaussianInliers(50, 3, 12);
  DistanceEvaluator ev(inliers.schema());
  DiscSaver saver(inliers, ev, {1.0, 4});
  SaveResult res = saver.Save(Tuple::Numeric({10, 10, 10}));
  EXPECT_LE(res.visited_sets, 8u);  // 2^3
}

TEST(DiscSaver, BudgetCapRespected) {
  Relation inliers = GaussianInliers(60, 6, 13);
  DistanceEvaluator ev(inliers.schema());
  DiscSaver saver(inliers, ev, {2.0, 4});
  SaveOptions opts;
  opts.budget.max_visited_sets = 5;
  SaveResult res = saver.Save(Tuple::Numeric({9, 9, 9, 9, 9, 9}), opts);
  EXPECT_LE(res.visited_sets, 6u);  // cap + the set that tripped it
}

// Regression: a budget-capped search must be distinguishable from a
// completed one (the cap used to truncate silently).
TEST(DiscSaver, BudgetCapReportsTermination) {
  Relation inliers = GaussianInliers(60, 6, 13);
  DistanceEvaluator ev(inliers.schema());
  DiscSaver saver(inliers, ev, {2.0, 4});
  SaveOptions opts;
  opts.budget.max_visited_sets = 5;
  SaveResult capped = saver.Save(Tuple::Numeric({9, 9, 9, 9, 9, 9}), opts);
  EXPECT_EQ(capped.termination, SaveTermination::kVisitBudget);

  // The same search without a cap completes (or proves infeasibility).
  SaveResult full = saver.Save(Tuple::Numeric({9, 9, 9, 9, 9, 9}));
  EXPECT_TRUE(full.termination == SaveTermination::kCompleted ||
              full.termination == SaveTermination::kInfeasible);
  // The truncated incumbent can never beat the full search's answer.
  if (capped.feasible) {
    ASSERT_TRUE(full.feasible);
    EXPECT_GE(capped.cost, full.cost - 1e-12);
  }
}

TEST(DiscSaver, AdjustedTupleIsAlwaysFeasible) {
  Relation inliers = GaussianInliers(80, 2, 14);
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{1.0, 5};
  DiscSaver saver(inliers, ev, c);
  Rng rng(15);
  for (int t = 0; t < 15; ++t) {
    Tuple outlier =
        Tuple::Numeric({rng.Uniform(-30, 30), rng.Uniform(-30, 30)});
    SaveResult res = saver.Save(outlier);
    if (res.feasible) {
      EXPECT_TRUE(saver.bounds().IsFeasible(res.adjusted));
    }
  }
}

TEST(DiscSaver, InlierLikePointCostsLittle) {
  Relation inliers = GaussianInliers(80, 2, 16);
  DistanceEvaluator ev(inliers.schema());
  DiscSaver saver(inliers, ev, {1.0, 5});
  // A point already inside the cluster: zero or tiny adjustment.
  SaveResult res = saver.Save(Tuple::Numeric({0.05, -0.05}));
  ASSERT_TRUE(res.feasible);
  EXPECT_LT(res.cost, 1.0);
}

TEST(DiscSaver, KappaExceededFlagsNaturalOutlier) {
  Relation inliers = GaussianInliers(100, 3, 18);
  DistanceEvaluator ev(inliers.schema());
  DiscSaver saver(inliers, ev, {1.2, 5});
  // Natural outlier: every attribute far away.
  Tuple natural = Tuple::Numeric({40, -40, 40});
  SaveOptions opts;
  opts.kappa = 1;
  SaveResult res = saver.Save(natural, opts);
  EXPECT_FALSE(res.feasible);
  // A feasible adjustment exists (full substitution), so the κ budget —
  // not infeasibility — is what blocked the save.
  EXPECT_TRUE(res.kappa_exceeded);
}

TEST(DiscSaver, KappaNotExceededWhenTrulyInfeasible) {
  // With η larger than the inlier count, nothing is ever feasible.
  Relation inliers = GaussianInliers(5, 2, 19);
  DistanceEvaluator ev(inliers.schema());
  DiscSaver saver(inliers, ev, {0.5, 50});
  SaveOptions opts;
  opts.kappa = 1;
  SaveResult res = saver.Save(Tuple::Numeric({9, 9}), opts);
  EXPECT_FALSE(res.feasible);
  EXPECT_FALSE(res.kappa_exceeded);
}

TEST(DiscSaver, RevertRefinementNeverIncreasesCost) {
  Relation inliers = GaussianInliers(80, 3, 20);
  DistanceEvaluator ev(inliers.schema());
  DiscSaver saver(inliers, ev, {1.2, 5});
  Rng rng(70);
  for (int t = 0; t < 10; ++t) {
    Tuple outlier = Tuple::Numeric(
        {rng.Uniform(-20, 20), rng.Uniform(-20, 20), rng.Uniform(-20, 20)});
    SaveOptions with;
    SaveOptions without;
    without.use_revert_refinement = false;
    SaveResult a = saver.Save(outlier, with);
    SaveResult b = saver.Save(outlier, without);
    ASSERT_EQ(a.feasible, b.feasible);
    if (a.feasible) {
      EXPECT_LE(a.cost, b.cost + 1e-9);
      EXPECT_LE(a.adjusted_attributes.size(), b.adjusted_attributes.size());
      EXPECT_TRUE(saver.bounds().IsFeasible(a.adjusted));
    }
  }
}

TEST(DiscSaver, ChainDataSingleAttributeRepairUnderKappa) {
  // A chain (trajectory-like) inlier set: points along a line in 3-space.
  // Proposition 5's sufficient donor condition is very tight here; the
  // exact-feasibility splice must still find the single-attribute repair.
  Relation inliers(Schema::Numeric(3));
  Rng rng(21);
  for (int i = 0; i < 120; ++i) {
    inliers.AppendUnchecked(Tuple::Numeric(
        {double(i), i * 1.1 + rng.Gaussian(0, 0.15),
         i * 0.9 + rng.Gaussian(0, 0.15)}));
  }
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{3.2, 3};
  DiscSaver saver(inliers, ev, c);

  // A chain point with its second coordinate spiked.
  Tuple outlier = Tuple::Numeric({60.0, 60 * 1.1 + 25.0, 60 * 0.9});
  SaveOptions opts;
  opts.kappa = 2;
  SaveResult res = saver.Save(outlier, opts);
  ASSERT_TRUE(res.feasible);
  EXPECT_LE(res.adjusted_attributes.size(), 2u);
  EXPECT_TRUE(res.adjusted_attributes.contains(1));
  EXPECT_TRUE(saver.bounds().IsFeasible(res.adjusted));
  // Cost ≈ the spike size, not a substitution across the chain.
  EXPECT_LT(res.cost, 27.0);
}

TEST(ChangedAttributes, DetectsDifferences) {
  Tuple a = Tuple::Numeric({1, 2, 3});
  Tuple b = Tuple::Numeric({1, 9, 3});
  AttributeSet changed = ChangedAttributes(a, b);
  EXPECT_EQ(changed.size(), 1u);
  EXPECT_TRUE(changed.contains(1));
}

TEST(ChangedAttributes, EmptyWhenIdentical) {
  Tuple a = Tuple::Numeric({1, 2});
  EXPECT_TRUE(ChangedAttributes(a, a).empty());
}

}  // namespace
}  // namespace disc
