#include "core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/random.h"
#include "index/index_factory.h"

namespace disc {
namespace {

/// Test fixture: a dense inlier cluster around the origin plus machinery to
/// build a BoundsEngine against it.
class BoundsFixture : public testing::Test {
 protected:
  void Build(std::size_t cluster_size, DistanceConstraint constraint,
             std::uint64_t seed = 11) {
    Rng rng(seed);
    inliers_ = Relation(Schema::Numeric(2));
    for (std::size_t i = 0; i < cluster_size; ++i) {
      inliers_.AppendUnchecked(
          Tuple::Numeric({rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5)}));
    }
    constraint_ = constraint;
    evaluator_ = std::make_unique<DistanceEvaluator>(inliers_.schema());
    index_ = MakeNeighborIndex(inliers_, *evaluator_, constraint.epsilon);
    cache_ = std::make_unique<KthNeighborCache>(inliers_, *index_,
                                                constraint.eta);
    engine_ = std::make_unique<BoundsEngine>(inliers_, *evaluator_, *index_,
                                             *cache_, constraint);
  }

  Relation inliers_;
  DistanceConstraint constraint_;
  std::unique_ptr<DistanceEvaluator> evaluator_;
  std::unique_ptr<NeighborIndex> index_;
  std::unique_ptr<KthNeighborCache> cache_;
  std::unique_ptr<BoundsEngine> engine_;
};

TEST_F(BoundsFixture, GlobalLowerBoundPositiveForFarOutlier) {
  Build(40, {1.0, 5});
  Tuple outlier = Tuple::Numeric({20, 0});
  double lb = engine_->GlobalLowerBound(outlier);
  // The outlier is ~20 away from the cluster; it must move ≥ ~19 − jitter.
  EXPECT_GT(lb, 15.0);
}

TEST_F(BoundsFixture, GlobalLowerBoundZeroForNearPoint) {
  Build(40, {1.0, 5});
  Tuple near = Tuple::Numeric({0.1, 0.1});
  EXPECT_DOUBLE_EQ(engine_->GlobalLowerBound(near), 0.0);
}

TEST_F(BoundsFixture, LowerBoundForEmptyXMatchesGlobal) {
  Build(40, {1.0, 5});
  Tuple outlier = Tuple::Numeric({20, 0});
  // Lemma 2 is the X = ∅ special case of Proposition 3.
  EXPECT_NEAR(engine_->LowerBoundForX(outlier, AttributeSet()),
              engine_->GlobalLowerBound(outlier), 1e-9);
}

TEST_F(BoundsFixture, LowerBoundGrowsWithX) {
  Build(40, {1.0, 5});
  Tuple outlier = Tuple::Numeric({20, 3});
  double lb_empty = engine_->LowerBoundForX(outlier, AttributeSet());
  double lb_x0 = engine_->LowerBoundForX(outlier, AttributeSet{0});
  // Fixing attribute 0 (the one with the big 20-unit offset) restricts the
  // candidate neighbors, so the bound cannot shrink.
  EXPECT_GE(lb_x0, lb_empty - 1e-9);
}

TEST_F(BoundsFixture, LowerBoundInfiniteWhenXLocksOutlierOut) {
  Build(40, {1.0, 5});
  // If attribute 0 (value 50) cannot be adjusted, no inlier is within ε on
  // X, so no feasible adjustment exists at all.
  Tuple outlier = Tuple::Numeric({50, 0});
  double lb = engine_->LowerBoundForX(outlier, AttributeSet{0});
  EXPECT_TRUE(std::isinf(lb));
}

TEST_F(BoundsFixture, UpperBoundIsFeasible) {
  Build(60, {1.0, 5});
  Tuple outlier = Tuple::Numeric({20, 0});
  auto ub = engine_->UpperBoundForX(outlier, AttributeSet());
  ASSERT_TRUE(ub.has_value());
  // Proposition 5's construction guarantees feasibility.
  EXPECT_TRUE(engine_->IsFeasible(ub->adjusted));
}

TEST_F(BoundsFixture, UpperBoundKeepsXValues) {
  Build(60, {1.0, 5});
  Tuple outlier = Tuple::Numeric({0.2, 20});
  AttributeSet x{0};
  auto ub = engine_->UpperBoundForX(outlier, x);
  ASSERT_TRUE(ub.has_value());
  EXPECT_EQ(ub->adjusted[0], outlier[0]);   // unadjusted attribute kept
  EXPECT_NE(ub->adjusted[1], outlier[1]);   // the broken attribute changed
}

TEST_F(BoundsFixture, UpperBoundAtLeastLowerBound) {
  Build(60, {1.0, 5});
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Tuple outlier =
        Tuple::Numeric({rng.Uniform(5, 30), rng.Uniform(-30, 30)});
    for (std::uint64_t bits = 0; bits < 4; ++bits) {
      AttributeSet x(bits);
      double lb = engine_->LowerBoundForX(outlier, x);
      auto ub = engine_->UpperBoundForX(outlier, x);
      if (ub.has_value() && !std::isinf(lb)) {
        EXPECT_GE(ub->cost, lb - 1e-9)
            << "trial " << trial << " X=" << bits;
      }
    }
  }
}

TEST_F(BoundsFixture, UpperBoundEmptyWhenXLocksOutlierOut) {
  Build(40, {1.0, 5});
  Tuple outlier = Tuple::Numeric({50, 0});
  auto ub = engine_->UpperBoundForX(outlier, AttributeSet{0});
  EXPECT_FALSE(ub.has_value());
}

TEST_F(BoundsFixture, UpperBoundCostMatchesDistance) {
  Build(60, {1.0, 5});
  Tuple outlier = Tuple::Numeric({10, -7});
  auto ub = engine_->UpperBoundForX(outlier, AttributeSet());
  ASSERT_TRUE(ub.has_value());
  EXPECT_NEAR(ub->cost, evaluator_->Distance(outlier, ub->adjusted), 1e-12);
}

TEST_F(BoundsFixture, FeasibilityMatchesDefinition) {
  Build(60, {1.0, 5});
  // A point in the middle of the cluster is feasible; a far one is not.
  EXPECT_TRUE(engine_->IsFeasible(Tuple::Numeric({0, 0})));
  EXPECT_FALSE(engine_->IsFeasible(Tuple::Numeric({20, 20})));
}

TEST_F(BoundsFixture, EtaOneAlwaysFeasible) {
  Build(10, {1.0, 1});
  // η = 1: every tuple counts itself (Formula 4), so anything is feasible.
  EXPECT_TRUE(engine_->IsFeasible(Tuple::Numeric({1000, 1000})));
}

TEST_F(BoundsFixture, DonorSpliceIsFeasibleEitherWay) {
  // The donor either qualifies under Proposition 5's sufficient condition
  // (δ_η(t2) ≤ ε − Δ(t_o[X], t2[X])) or was validated by an exact
  // feasibility check; in both cases the splice must be feasible.
  Build(60, {1.0, 5});
  Tuple outlier = Tuple::Numeric({0.3, 15});
  AttributeSet x{0};
  auto ub = engine_->UpperBoundForX(outlier, x);
  ASSERT_TRUE(ub.has_value());
  EXPECT_TRUE(engine_->IsFeasible(ub->adjusted));
  // The donor is reachable on X regardless of which path selected it.
  double dx = evaluator_->DistanceOn(x, outlier, inliers_[ub->donor_row]);
  EXPECT_LE(dx, constraint_.epsilon + 1e-9);
}

}  // namespace
}  // namespace disc
