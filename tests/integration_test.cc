#include <gtest/gtest.h>

#include "clustering/dbscan.h"
#include "cleaning/dorc.h"
#include "core/outlier_saving.h"
#include "data/datasets.h"
#include "eval/clustering_metrics.h"
#include "eval/set_metrics.h"

namespace disc {
namespace {

/// End-to-end reproduction of the paper's central claim on a small dataset:
/// saving outliers with DISC improves DBSCAN clustering accuracy over the
/// raw dirty data, and does so at least as well as DORC's tuple
/// substitution.
class EndToEndTest : public testing::Test {
 protected:
  void SetUp() override {
    ds_ = MakePaperDataset("iris", 42);
    evaluator_ = std::make_unique<DistanceEvaluator>(ds_.dirty.schema());
  }

  double DbscanF1(const Relation& data) const {
    Labels labels = Dbscan(data, *evaluator_,
                           {ds_.suggested.epsilon, ds_.suggested.eta});
    return PairCounting(labels, ds_.labels).f1;
  }

  PaperDataset ds_;
  std::unique_ptr<DistanceEvaluator> evaluator_;
};

TEST_F(EndToEndTest, DiscImprovesDbscanOverRaw) {
  double raw_f1 = DbscanF1(ds_.dirty);

  OutlierSavingOptions opts;
  opts.constraint = ds_.suggested;
  // §1.2: trust repairs touching few attributes; leave natural outliers
  // (distant in every attribute) unchanged instead of forcing them into a
  // cluster — adjusting them would create wrong pairs and hurt accuracy.
  opts.natural_attribute_threshold = 2;
  SavedDataset saved = SaveOutliers(ds_.dirty, *evaluator_, opts);
  double disc_f1 = DbscanF1(saved.repaired);

  EXPECT_GT(disc_f1, raw_f1) << "outlier saving must improve clustering";
}

TEST_F(EndToEndTest, DiscAtLeastMatchesDorc) {
  OutlierSavingOptions opts;
  opts.constraint = ds_.suggested;
  SavedDataset saved = SaveOutliers(ds_.dirty, *evaluator_, opts);
  double disc_f1 = DbscanF1(saved.repaired);

  DorcOptions dorc_opts;
  dorc_opts.constraint = ds_.suggested;
  Relation dorc = Dorc(ds_.dirty, *evaluator_, dorc_opts);
  double dorc_f1 = DbscanF1(dorc);

  EXPECT_GE(disc_f1, dorc_f1 - 0.02)
      << "value adjustment should not lose to tuple substitution";
}

TEST_F(EndToEndTest, AdjustedAttributesMatchInjectedErrors) {
  OutlierSavingOptions opts;
  opts.constraint = ds_.suggested;
  SavedDataset saved = SaveOutliers(ds_.dirty, *evaluator_, opts);

  // Jaccard between DISC's adjusted attributes and the injected error
  // attributes, averaged over saved dirty rows (the §4.3 measurement).
  double jaccard_sum = 0;
  std::size_t measured = 0;
  for (const OutlierRecord& rec : saved.records) {
    AttributeSet truth;
    for (const CellError& e : ds_.errors) {
      if (e.row == rec.row) truth.insert(e.attribute);
    }
    if (truth.empty()) continue;  // natural outlier, not an injected error
    if (rec.disposition != OutlierDisposition::kSaved) continue;
    jaccard_sum += JaccardIndex(truth, rec.adjusted_attributes);
    ++measured;
  }
  ASSERT_GT(measured, 0u);
  EXPECT_GT(jaccard_sum / static_cast<double>(measured), 0.5);
}

TEST_F(EndToEndTest, SavedCostsAreMinimal) {
  // DISC should adjust far fewer attributes than DORC's whole-tuple swap.
  OutlierSavingOptions opts;
  opts.constraint = ds_.suggested;
  SavedDataset saved = SaveOutliers(ds_.dirty, *evaluator_, opts);
  double mean_adjusted = saved.MeanAdjustedAttributes();
  ASSERT_GT(saved.CountDisposition(OutlierDisposition::kSaved), 0u);
  EXPECT_LT(mean_adjusted, 3.0);  // m = 4; whole-tuple would be ~4
}

TEST(EndToEndRepairQuality, DiscCloserToTruthThanDirty) {
  PaperDataset ds = MakePaperDataset("seeds", 11);
  DistanceEvaluator ev(ds.dirty.schema());
  OutlierSavingOptions opts;
  opts.constraint = ds.suggested;
  SavedDataset saved = SaveOutliers(ds.dirty, ev, opts);

  // Residual distance to ground truth over the injected dirty rows must
  // shrink after saving.
  double before = 0;
  double after = 0;
  for (std::size_t row : ds.dirty_rows) {
    before += ev.Distance(ds.dirty[row], ds.clean[row]);
    after += ev.Distance(saved.repaired[row], ds.clean[row]);
  }
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace disc
