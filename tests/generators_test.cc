#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace disc {
namespace {

TEST(GaussianMixture, CountsAndLabels) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0, 0}, 1.0, 30});
  clusters.push_back({{10, 10}, 1.0, 20});
  LabeledRelation data = GenerateGaussianMixture(clusters, 1);
  EXPECT_EQ(data.data.size(), 50u);
  ASSERT_EQ(data.labels.size(), 50u);
  EXPECT_EQ(std::count(data.labels.begin(), data.labels.end(), 0), 30);
  EXPECT_EQ(std::count(data.labels.begin(), data.labels.end(), 1), 20);
}

TEST(GaussianMixture, PointsNearTheirCenters) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0, 0}, 0.5, 100});
  clusters.push_back({{20, 0}, 0.5, 100});
  LabeledRelation data = GenerateGaussianMixture(clusters, 2);
  for (std::size_t i = 0; i < data.data.size(); ++i) {
    double cx = data.labels[i] == 0 ? 0.0 : 20.0;
    double dx = data.data[i][0].num() - cx;
    double dy = data.data[i][1].num();
    EXPECT_LT(std::sqrt(dx * dx + dy * dy), 4.0) << "row " << i;
  }
}

TEST(GaussianMixture, DeterministicForSeed) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0, 0}, 1.0, 10});
  LabeledRelation a = GenerateGaussianMixture(clusters, 9);
  LabeledRelation b = GenerateGaussianMixture(clusters, 9);
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    EXPECT_EQ(a.data[i], b.data[i]);
  }
}

TEST(GaussianMixture, EmptySpec) {
  LabeledRelation data = GenerateGaussianMixture({}, 1);
  EXPECT_TRUE(data.data.empty());
}

TEST(PlaceClusterCenters, CountAndRange) {
  auto centers = PlaceClusterCenters(5, 3, 100, 30, 4);
  ASSERT_EQ(centers.size(), 5u);
  for (const auto& c : centers) {
    ASSERT_EQ(c.size(), 3u);
    for (double v : c) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 100.0);
    }
  }
}

TEST(PlaceClusterCenters, SeparationBestEffort) {
  auto centers = PlaceClusterCenters(4, 2, 100, 30, 5);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    for (std::size_t j = i + 1; j < centers.size(); ++j) {
      double dx = centers[i][0] - centers[j][0];
      double dy = centers[i][1] - centers[j][1];
      EXPECT_GT(std::sqrt(dx * dx + dy * dy), 10.0);
    }
  }
}

TEST(Trajectory, ShapeAndMonotoneTime) {
  TrajectorySpec spec;
  spec.segments = 3;
  spec.points_per_segment = 20;
  LabeledRelation data = GenerateTrajectory(spec);
  EXPECT_EQ(data.data.size(), 60u);
  EXPECT_EQ(data.data.arity(), 3u);
  for (std::size_t i = 1; i < data.data.size(); ++i) {
    EXPECT_GT(data.data[i][0].num(), data.data[i - 1][0].num());
  }
}

TEST(Trajectory, SegmentLabels) {
  TrajectorySpec spec;
  spec.segments = 3;
  spec.points_per_segment = 10;
  LabeledRelation data = GenerateTrajectory(spec);
  EXPECT_EQ(data.labels[0], 0);
  EXPECT_EQ(data.labels[15], 1);
  EXPECT_EQ(data.labels[25], 2);
}

TEST(Trajectory, ConsecutivePointsClose) {
  TrajectorySpec spec;
  spec.step = 1.0;
  spec.jitter = 0.1;
  LabeledRelation data = GenerateTrajectory(spec);
  for (std::size_t i = 1; i < data.data.size(); ++i) {
    double dlon = data.data[i][1].num() - data.data[i - 1][1].num();
    double dlat = data.data[i][2].num() - data.data[i - 1][2].num();
    EXPECT_LT(std::sqrt(dlon * dlon + dlat * dlat), 3.0);
  }
}

TEST(Restaurant, ShapeMatchesSpec) {
  RestaurantSpec spec;
  spec.entities = 50;
  spec.tuples = 60;
  spec.seed = 3;
  LabeledRelation data = GenerateRestaurant(spec);
  EXPECT_EQ(data.data.size(), 60u);
  EXPECT_EQ(data.data.arity(), 5u);
  std::set<int> distinct(data.labels.begin(), data.labels.end());
  EXPECT_EQ(distinct.size(), 50u);
}

TEST(Restaurant, AllStringSchema) {
  RestaurantSpec spec;
  spec.entities = 10;
  spec.tuples = 12;
  LabeledRelation data = GenerateRestaurant(spec);
  for (std::size_t a = 0; a < data.data.arity(); ++a) {
    EXPECT_EQ(data.data.schema().kind(a), ValueKind::kString);
  }
}

TEST(Restaurant, DuplicatesShareEntityLabel) {
  RestaurantSpec spec;
  spec.entities = 20;
  spec.tuples = 30;
  LabeledRelation data = GenerateRestaurant(spec);
  // 10 duplicate rows at the end; each label also appears among the first 20.
  for (std::size_t i = 20; i < 30; ++i) {
    int label = data.labels[i];
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 20);
  }
}

TEST(NaturalOutliers, AppendedOutsideBoundingBox) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0, 0}, 1.0, 50});
  LabeledRelation data = GenerateGaussianMixture(clusters, 6);
  Relation::NumericRange rx = data.data.Range(0);
  Relation::NumericRange ry = data.data.Range(1);
  AppendNaturalOutliers(&data, 5, 1.0, 7);
  ASSERT_EQ(data.data.size(), 55u);
  for (std::size_t i = 50; i < 55; ++i) {
    bool outside_x = data.data[i][0].num() < rx.min - 1e-9 ||
                     data.data[i][0].num() > rx.max + 1e-9;
    bool outside_y = data.data[i][1].num() < ry.min - 1e-9 ||
                     data.data[i][1].num() > ry.max + 1e-9;
    // Natural outliers are displaced on EVERY attribute.
    EXPECT_TRUE(outside_x) << "row " << i;
    EXPECT_TRUE(outside_y) << "row " << i;
    EXPECT_EQ(data.labels[i], -1);
  }
}

}  // namespace
}  // namespace disc
