#include "distance/normalization.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "distance/evaluator.h"

namespace disc {
namespace {

Relation GpsLike() {
  // Heterogeneous scales: time 0..100, longitude 800..840.
  Relation r(Schema::NumericNamed({"time", "lon"}));
  for (int i = 0; i <= 100; ++i) {
    r.AppendUnchecked(Tuple::Numeric({double(i), 800 + 0.4 * i}));
  }
  return r;
}

TEST(Normalizer, MinMaxMapsToUnitInterval) {
  Relation data = GpsLike();
  Normalizer norm = Normalizer::Fit(data, NormalizationMode::kMinMax);
  Relation scaled = norm.Apply(data);
  for (const Tuple& t : scaled) {
    for (std::size_t a = 0; a < t.size(); ++a) {
      EXPECT_GE(t[a].num(), -1e-12);
      EXPECT_LE(t[a].num(), 1.0 + 1e-12);
    }
  }
  EXPECT_DOUBLE_EQ(scaled[0][0].num(), 0.0);
  EXPECT_DOUBLE_EQ(scaled[100][0].num(), 1.0);
}

TEST(Normalizer, ZScoreCentersAndScales) {
  Relation data = GpsLike();
  Normalizer norm = Normalizer::Fit(data, NormalizationMode::kZScore);
  Relation scaled = norm.Apply(data);
  double sum = 0;
  double sum_sq = 0;
  for (const Tuple& t : scaled) {
    sum += t[0].num();
    sum_sq += t[0].num() * t[0].num();
  }
  double n = static_cast<double>(scaled.size());
  EXPECT_NEAR(sum / n, 0.0, 1e-9);
  EXPECT_NEAR(sum_sq / n, 1.0, 1e-9);
}

TEST(Normalizer, RoundTripIsIdentity) {
  Relation data = GpsLike();
  for (NormalizationMode mode :
       {NormalizationMode::kMinMax, NormalizationMode::kZScore}) {
    Normalizer norm = Normalizer::Fit(data, mode);
    Relation back = norm.Invert(norm.Apply(data));
    for (std::size_t i = 0; i < data.size(); ++i) {
      for (std::size_t a = 0; a < data.arity(); ++a) {
        EXPECT_NEAR(back[i][a].num(), data[i][a].num(), 1e-9);
      }
    }
  }
}

TEST(Normalizer, BalancesHeterogeneousAttributes) {
  // After min-max normalization, both attributes contribute comparably to
  // tuple distances — the reason the paper's GPS pipeline normalizes.
  Relation data = GpsLike();
  Normalizer norm = Normalizer::Fit(data);
  Relation scaled = norm.Apply(data);
  DistanceEvaluator ev(scaled.schema());
  // First-vs-last distance decomposes evenly across attributes.
  double d0 = ev.AttributeDistance(0, scaled[0][0], scaled[100][0]);
  double d1 = ev.AttributeDistance(1, scaled[0][1], scaled[100][1]);
  EXPECT_NEAR(d0, d1, 1e-9);
}

TEST(Normalizer, ConstantAttributeSafe) {
  Relation r(Schema::Numeric(1));
  for (int i = 0; i < 10; ++i) r.AppendUnchecked(Tuple::Numeric({7.0}));
  Normalizer norm = Normalizer::Fit(r);
  Relation scaled = norm.Apply(r);
  // Constant attributes must not divide by zero; values map to 0.
  EXPECT_DOUBLE_EQ(scaled[0][0].num(), 0.0);
  Relation back = norm.Invert(scaled);
  EXPECT_DOUBLE_EQ(back[0][0].num(), 7.0);
}

TEST(Normalizer, StringAttributesPassThrough) {
  Relation r(Schema({{"x", ValueKind::kNumeric}, {"s", ValueKind::kString}}));
  r.AppendUnchecked(Tuple{Value(0.0), Value("abc")});
  r.AppendUnchecked(Tuple{Value(10.0), Value("xyz")});
  Normalizer norm = Normalizer::Fit(r);
  Relation scaled = norm.Apply(r);
  EXPECT_EQ(scaled[0][1].str(), "abc");
  EXPECT_EQ(scaled[1][1].str(), "xyz");
  EXPECT_DOUBLE_EQ(scaled[1][0].num(), 1.0);
}

TEST(Normalizer, TupleTransformsMatchRelationTransforms) {
  Relation data = GpsLike();
  Normalizer norm = Normalizer::Fit(data);
  Tuple probe = Tuple::Numeric({50, 820});
  Tuple scaled = norm.ApplyToTuple(probe);
  EXPECT_NEAR(scaled[0].num(), 0.5, 1e-12);
  Tuple back = norm.InvertTuple(scaled);
  EXPECT_NEAR(back[1].num(), 820.0, 1e-9);
}

TEST(Normalizer, EmptyRelation) {
  Relation r(Schema::Numeric(2));
  Normalizer norm = Normalizer::Fit(r);
  EXPECT_EQ(norm.arity(), 2u);
  EXPECT_TRUE(norm.Apply(r).empty());
}

}  // namespace
}  // namespace disc
