// HttpServer + observability endpoints, exercised over real loopback
// sockets: routing, error statuses, request-size caps, and scraping
// concurrently with an active SaveOutliers batch.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "core/outlier_saving.h"
#include "data/generators.h"
#include "distance/evaluator.h"
#include "obs/endpoints.h"
#include "obs/explain.h"
#include "obs/http_server.h"
#include "obs/progress.h"

namespace disc {
namespace {

/// Minimal blocking HTTP client: sends `raw` to 127.0.0.1:`port`, reads
/// until the server closes (Connection: close), returns the full response.
std::string RawRequest(std::uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(std::uint16_t port, const std::string& target) {
  return RawRequest(port, "GET " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n");
}

/// Status code of a raw response ("HTTP/1.1 200 OK..." -> 200), 0 on junk.
int StatusCode(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 5, "HTTP/") != 0) return 0;
  return std::atoi(response.c_str() + 9);
}

std::string Body(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

/// A started server with the observability endpoints registered on an
/// ephemeral port. Stops (and detaches nothing) on destruction.
std::unique_ptr<HttpServer> StartObsServer() {
  HttpServer::Options options;  // 127.0.0.1, port 0 = ephemeral
  auto server = std::make_unique<HttpServer>(std::move(options));
  RegisterObsEndpoints(server.get());
  Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  EXPECT_GT(server->port(), 0);
  return server;
}

TEST(HttpServer, HealthzAlwaysOkWithBuildInfo) {
  std::unique_ptr<HttpServer> server = StartObsServer();
  const std::string response = Get(server->port(), "/healthz");
  EXPECT_EQ(StatusCode(response), 200) << response;
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  const std::string body = Body(response);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"version\":\"" + std::string(DiscVersion()) + "\""),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"uptime_seconds\":"), std::string::npos) << body;
}

TEST(HttpServer, MetricsAnswers503WithoutRegistryAnd200WithOne) {
  std::unique_ptr<HttpServer> server = StartObsServer();
  ASSERT_EQ(GlobalMetrics(), nullptr);
  EXPECT_EQ(StatusCode(Get(server->port(), "/metrics")), 503);
  EXPECT_EQ(StatusCode(Get(server->port(), "/metrics.json")), 503);

  MetricsRegistry registry;
  registry.GetCounter("disc_events_total", "test events")->Add(7);
  AttachGlobalMetrics(&registry);
  const std::string text = Get(server->port(), "/metrics");
  const std::string json = Get(server->port(), "/metrics.json");
  AttachGlobalMetrics(nullptr);

  EXPECT_EQ(StatusCode(text), 200) << text;
  EXPECT_NE(text.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(text.find("# HELP disc_events_total test events\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE disc_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("disc_events_total 7\n"), std::string::npos);
  EXPECT_EQ(StatusCode(json), 200) << json;
  EXPECT_NE(Body(json).find("\"disc_events_total\":7"), std::string::npos);
}

TEST(HttpServer, StatuszSnapshotsProgressAndLogs) {
  std::unique_ptr<HttpServer> server = StartObsServer();
  ProgressRegistry progress;
  auto tracker = progress.StartBatch("save_all", 4, Deadline::Infinite());
  tracker->RecordOutlier(SaveTermination::kCompleted, 1000);
  tracker->RecordOutlier(SaveTermination::kDeadline, 2000);
  AttachGlobalProgress(&progress);
  const std::string response = Get(server->port(), "/statusz");
  const std::string with_logs = Get(server->port(), "/statusz?logs=5");
  AttachGlobalProgress(nullptr);

  EXPECT_EQ(StatusCode(response), 200) << response;
  const std::string body = Body(response);
  EXPECT_NE(body.find("\"schema_version\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"progress_attached\":true"), std::string::npos);
  EXPECT_NE(body.find("\"label\":\"save_all\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"total\":4"), std::string::npos) << body;
  EXPECT_NE(body.find("\"completed\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"degraded\":1"), std::string::npos) << body;
  // Without ?logs=N no log array is embedded; with it the key appears.
  EXPECT_EQ(body.find("\"logs\":"), std::string::npos) << body;
  EXPECT_NE(Body(with_logs).find("\"log_lines_emitted\":"),
            std::string::npos);
}

TEST(HttpServer, StatuszLogsParamRejectsJunkAndClampsToRing) {
  std::unique_ptr<HttpServer> server = StartObsServer();
  // Non-numeric ?logs= is a client error, not a silent fallback.
  const std::string junk = Get(server->port(), "/statusz?logs=abc");
  EXPECT_EQ(StatusCode(junk), 400) << junk;
  EXPECT_NE(Body(junk).find("logs"), std::string::npos) << junk;
  EXPECT_EQ(StatusCode(Get(server->port(), "/statusz?logs=12x")), 400);
  // Numeric values beyond the 256-line ring are clamped, not rejected.
  const std::string huge = Get(server->port(), "/statusz?logs=999999");
  EXPECT_EQ(StatusCode(huge), 200) << huge;
  EXPECT_NE(Body(huge).find("\"logs\":"), std::string::npos) << huge;
  EXPECT_EQ(StatusCode(Get(server->port(), "/statusz?logs=0")), 200);
}

TEST(HttpServer, TracezAndProfilezAnswer503DetachedAnd200Attached) {
  std::unique_ptr<HttpServer> server = StartObsServer();
  EXPECT_EQ(StatusCode(Get(server->port(), "/tracez")), 503);
  EXPECT_EQ(StatusCode(Get(server->port(), "/profilez")), 503);

  TraceRecorder recorder;
  WallPhaseProfiler profiler;
  AttachGlobalTraceRecorder(&recorder);
  AttachGlobalWallProfiler(&profiler);
  TraceSpan span;
  span.name = "search";
  span.trace_id = 42;
  span.span_id = 7;
  span.duration_ns = 1000;
  recorder.RecordFinished(span);
  profiler.Add(TracePhase::kIndexQuery, 123);

  const std::string tracez = Get(server->port(), "/tracez");
  const std::string profilez = Get(server->port(), "/profilez");
  AttachGlobalTraceRecorder(nullptr);
  AttachGlobalWallProfiler(nullptr);

  EXPECT_EQ(StatusCode(tracez), 200) << tracez;
  EXPECT_NE(Body(tracez).find("\"trace_id\":42"), std::string::npos)
      << tracez;
  EXPECT_EQ(StatusCode(profilez), 200) << profilez;
  EXPECT_NE(Body(profilez).find("\"index_query\":{\"wall_ns\":123"),
            std::string::npos)
      << profilez;
  EXPECT_NE(Body(profilez).find("\"folded\":"), std::string::npos);

  // Detached again: back to 503, not stale data.
  EXPECT_EQ(StatusCode(Get(server->port(), "/tracez")), 503);
  EXPECT_EQ(StatusCode(Get(server->port(), "/profilez")), 503);
}

TEST(HttpServer, UnknownPathIs404AndNonGetIs405) {
  std::unique_ptr<HttpServer> server = StartObsServer();
  EXPECT_EQ(StatusCode(Get(server->port(), "/nope")), 404);
  EXPECT_EQ(StatusCode(RawRequest(server->port(),
                                  "POST /healthz HTTP/1.1\r\n"
                                  "Host: localhost\r\n\r\n")),
            405);
}

TEST(HttpServer, HeadRequestReturnsHeadersWithoutBody) {
  std::unique_ptr<HttpServer> server = StartObsServer();
  const std::string response = RawRequest(
      server->port(), "HEAD /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_EQ(StatusCode(response), 200) << response;
  EXPECT_NE(response.find("Content-Length:"), std::string::npos);
  EXPECT_EQ(Body(response), "") << response;
}

TEST(HttpServer, OversizedRequestLineIs414) {
  std::unique_ptr<HttpServer> server = StartObsServer();
  // A request line that never ends within max_request_bytes (default 8192).
  const std::string huge = "GET /" + std::string(10000, 'a');
  EXPECT_EQ(StatusCode(RawRequest(server->port(), huge)), 414);
}

TEST(HttpServer, MalformedRequestLineIs400) {
  std::unique_ptr<HttpServer> server = StartObsServer();
  EXPECT_EQ(StatusCode(RawRequest(server->port(), "nonsense\r\n\r\n")), 400);
}

TEST(HttpServer, StopIsIdempotentAndPortRefusesAfterStop) {
  std::unique_ptr<HttpServer> server = StartObsServer();
  const std::uint16_t port = server->port();
  EXPECT_EQ(StatusCode(Get(port, "/healthz")), 200);
  server->Stop();
  server->Stop();  // idempotent
  EXPECT_FALSE(server->running());
  EXPECT_EQ(RawRequest(port, "GET /healthz HTTP/1.1\r\n\r\n"), "");
}

TEST(HttpServer, SlowLorisHeaderDripIs408) {
  // A client dripping header bytes resets the per-recv socket timeout on
  // every drip; only the wall-clock header budget can end the connection.
  HttpServer::Options options;
  options.header_read_timeout_ms = 300;
  auto server = std::make_unique<HttpServer>(std::move(options));
  RegisterObsEndpoints(server.get());
  ASSERT_TRUE(server->Start().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string drip1 = "GET /healthz HTTP/1.1\r\nHost: l";
  const std::string drip2 = "ocalhost\r\n";  // still no header terminator
  ASSERT_GT(::send(fd, drip1.data(), drip1.size(), 0), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_GT(::send(fd, drip2.data(), drip2.size(), 0), 0);

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(StatusCode(response), 408) << response;
  EXPECT_NE(response.find("timed out"), std::string::npos) << response;
  server->Stop();
}

TEST(HttpServer, LatencyFaultAtReadDrivesDeterministic408) {
  // A latency fault at `http.read` consumes the header budget before the
  // first recv — the 408 path without any real slow client.
  FaultInjector injector;
  FaultSpec slow;
  slow.site = "http.read";
  slow.kind = FaultKind::kLatency;
  slow.latency_ms = 250;
  slow.nth = 0;
  injector.Add(slow);
  AttachGlobalFaultInjector(&injector);

  HttpServer::Options options;
  options.header_read_timeout_ms = 100;
  auto server = std::make_unique<HttpServer>(std::move(options));
  RegisterObsEndpoints(server.get());
  ASSERT_TRUE(server->Start().ok());
  const std::string response = Get(server->port(), "/healthz");
  server->Stop();
  AttachGlobalFaultInjector(nullptr);

  EXPECT_EQ(StatusCode(response), 408) << response;
  EXPECT_GE(injector.fires("http.read"), 1u);
}

TEST(HttpServer, AcceptFaultDropsOneConnectionThenRecovers) {
  // An injected accept-path error closes the connection before any read —
  // the client sees a silent close, the listener keeps serving.
  FaultInjector injector;
  FaultSpec drop;
  drop.site = "http.accept";
  drop.kind = FaultKind::kError;
  drop.nth = 0;
  injector.Add(drop);
  // The accept site is resolved when the listener thread starts, so the
  // injector must be armed and attached before Start().
  AttachGlobalFaultInjector(&injector);
  std::unique_ptr<HttpServer> server = StartObsServer();

  EXPECT_EQ(Get(server->port(), "/healthz"), "");  // dropped, no bytes
  EXPECT_EQ(StatusCode(Get(server->port(), "/healthz")), 200);

  server->Stop();
  AttachGlobalFaultInjector(nullptr);
  EXPECT_EQ(injector.fires("http.accept"), 1u);
  EXPECT_GE(injector.hit_count("http.accept"), 2u);
}

TEST(HttpServer, ConcurrentScrapesDuringActiveSaveAll) {
  // A live scrape must observe a consistent snapshot while the pipeline
  // mutates the registries from worker threads — this is the acceptance
  // scenario behind `disc_cli --serve`.
  std::vector<ClusterSpec> specs = {
      {{0, 0, 0, 0}, 0.5, 150},
      {{10, 10, 0, 0}, 0.5, 150},
  };
  LabeledRelation mixture = GenerateGaussianMixture(specs, /*seed=*/7);
  Rng rng(11);
  for (std::size_t row = 2; row < mixture.data.size(); row += 7) {
    std::size_t a = static_cast<std::size_t>(rng.UniformInt(0, 3));
    mixture.data[row][a] =
        Value(mixture.data[row][a].num() + 25.0 + rng.Uniform() * 5.0);
  }
  Relation data = std::move(mixture.data);
  DistanceEvaluator evaluator(data.schema());

  MetricsRegistry metrics;
  ProgressRegistry progress;
  AttachGlobalMetrics(&metrics);
  AttachGlobalProgress(&progress);
  std::unique_ptr<HttpServer> server = StartObsServer();

  OutlierSavingOptions options;
  options.constraint = {1.6, 5};
  options.save.kappa = 2;
  options.num_threads = 4;
  options.metrics = &metrics;

  std::atomic<bool> pipeline_done{false};
  SavedDataset saved;
  std::thread pipeline([&] {
    // A few back-to-back batches keep workers busy while scrapes land.
    for (int round = 0; round < 5; ++round) {
      saved = SaveOutliers(data, evaluator, options);
    }
    pipeline_done.store(true, std::memory_order_release);
  });

  std::size_t scrapes = 0;
  while (!pipeline_done.load(std::memory_order_acquire) || scrapes < 4) {
    for (const char* target :
         {"/metrics", "/metrics.json", "/healthz", "/statusz?logs=10"}) {
      const std::string response = Get(server->port(), target);
      EXPECT_EQ(StatusCode(response), 200) << target << "\n" << response;
    }
    ++scrapes;
  }
  pipeline.join();
  server->Stop();
  AttachGlobalProgress(nullptr);
  AttachGlobalMetrics(nullptr);

  ASSERT_TRUE(saved.status.ok());
  EXPECT_GT(saved.records.size(), 0u);
  EXPECT_GE(scrapes, 4u);
  // The batches ran while attached, so /statusz had live trackers to show.
  EXPECT_EQ(progress.batches_started(), 5u);
  // And the scrapes themselves were metered, one labeled series per route.
  for (const char* route :
       {"/metrics", "/metrics.json", "/healthz", "/statusz"}) {
    EXPECT_GE(metrics
                  .GetCounter(std::string("disc_http_requests_total{path=\"") +
                              route + "\"}")
                  ->Value(),
              scrapes)
        << route;
  }
}

/// A minimal one-event decision log for feeding the /explainz recorder.
ExplainSearchLog MakeExplainLog(std::uint64_t ordinal) {
  ExplainSearchLog log;
  log.ordinal = ordinal;
  log.feasible = true;
  log.final_cost = 2.0;
  ExplainEvent event;
  event.action = ExplainAction::kIncumbentUpdate;
  event.ub = 2.0;
  event.incumbent = 2.0;
  log.events.push_back(event);
  log.visited_sets = 1;
  return log;
}

TEST(HttpServer, ParseQueryValidatesClampsAndRejects) {
  std::vector<std::size_t> values;
  HttpResponse error;
  HttpRequest request;

  // Present values parse; empty and absent values take the fallback.
  request.query = {{"logs", "12"}, {"reset", ""}};
  EXPECT_TRUE(ParseQuery(request, {{"logs", 100, 7}, {"reset", 1, 0}},
                         &values, &error));
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 12u);
  EXPECT_EQ(values[1], 0u);
  request.query = {};
  EXPECT_TRUE(ParseQuery(request, {{"logs", 100, 7}}, &values, &error));
  EXPECT_EQ(values[0], 7u);

  // Numeric values beyond max clamp — even past the uint64 overflow point.
  request.query = {{"logs", "99999999999999999999999999"}};
  EXPECT_TRUE(ParseQuery(request, {{"logs", 100, 7}}, &values, &error));
  EXPECT_EQ(values[0], 100u);

  // Unknown keys are a 400 naming the offender, not a silent ignore.
  request.query = {{"bogus", "1"}};
  EXPECT_FALSE(ParseQuery(request, {{"logs", 100, 7}}, &values, &error));
  EXPECT_EQ(error.status, 400);
  EXPECT_NE(error.body.find("bogus"), std::string::npos) << error.body;

  // Non-digit values on a known key are a 400 too (covers "-1", "12x").
  request.query = {{"logs", "-1"}};
  EXPECT_FALSE(ParseQuery(request, {{"logs", 100, 7}}, &values, &error));
  EXPECT_EQ(error.status, 400);
  EXPECT_NE(error.body.find("non-negative integer"), std::string::npos)
      << error.body;
}

TEST(HttpServer, UnknownQueryParamsAre400BeforeTheDetachedCheck) {
  std::unique_ptr<HttpServer> server = StartObsServer();
  // All four parameterized endpoints reject junk queries even while their
  // backing registry is detached — the 400 wins over the 503.
  for (const char* target : {"/tracez?foo=1", "/profilez?reset=x",
                             "/profilez?foo=1", "/explainz?bogus=1",
                             "/explainz?reset=-1", "/statusz?logs=-1"}) {
    const std::string response = Get(server->port(), target);
    EXPECT_EQ(StatusCode(response), 400) << target << "\n" << response;
  }
  // Clean queries on detached planes still answer 503.
  EXPECT_EQ(StatusCode(Get(server->port(), "/explainz")), 503);
  EXPECT_EQ(StatusCode(Get(server->port(), "/explainz?reset=1")), 503);
}

TEST(HttpServer, ExplainzServesSummariesAndResetsTheWindow) {
  std::unique_ptr<HttpServer> server = StartObsServer();
  ExplainRecorder recorder;
  recorder.RecordSearch(MakeExplainLog(3));
  AttachGlobalExplainRecorder(&recorder);

  const std::string response = Get(server->port(), "/explainz");
  EXPECT_EQ(StatusCode(response), 200) << response;
  const std::string body = Body(response);
  EXPECT_NE(body.find("\"schema_version\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"searches\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"ordinal\":3"), std::string::npos) << body;

  // ?reset=2 clamps to 1: the scrape answers the old window, then resets.
  EXPECT_EQ(StatusCode(Get(server->port(), "/explainz?reset=2")), 200);
  const std::string fresh = Body(Get(server->port(), "/explainz"));
  EXPECT_NE(fresh.find("\"searches\":0"), std::string::npos) << fresh;

  AttachGlobalExplainRecorder(nullptr);
  EXPECT_EQ(StatusCode(Get(server->port(), "/explainz")), 503);
}

TEST(HttpServer, ConcurrentExplainzScrapesDuringResetAndRecord) {
  // Scrape-during-reset race under TSan: one thread feeds the recorder,
  // one hammers ?reset=1, one scrapes — every response must be a complete
  // 200 snapshot, never a torn window.
  std::unique_ptr<HttpServer> server = StartObsServer();
  ExplainRecorder recorder;
  AttachGlobalExplainRecorder(&recorder);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::uint64_t i = 0; i < 400; ++i) {
      recorder.RecordSearch(MakeExplainLog(i));
    }
    done.store(true, std::memory_order_release);
  });
  std::thread resetter([&] {
    while (!done.load(std::memory_order_acquire)) {
      EXPECT_EQ(StatusCode(Get(server->port(), "/explainz?reset=1")), 200);
    }
  });
  std::size_t scrapes = 0;
  while (!done.load(std::memory_order_acquire) || scrapes < 4) {
    const std::string response = Get(server->port(), "/explainz");
    EXPECT_EQ(StatusCode(response), 200) << response;
    EXPECT_NE(Body(response).find("\"attached\":true"), std::string::npos);
    ++scrapes;
  }
  writer.join();
  resetter.join();
  AttachGlobalExplainRecorder(nullptr);
  EXPECT_GE(scrapes, 4u);
}

TEST(HttpServer, ConcurrentProfilezScrapesDuringReset) {
  // The same race on /profilez?reset=1 against a live phase writer.
  std::unique_ptr<HttpServer> server = StartObsServer();
  WallPhaseProfiler profiler;
  AttachGlobalWallProfiler(&profiler);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 4000; ++i) {
      profiler.Add(TracePhase::kIndexQuery, 17);
    }
    done.store(true, std::memory_order_release);
  });
  std::thread resetter([&] {
    while (!done.load(std::memory_order_acquire)) {
      EXPECT_EQ(StatusCode(Get(server->port(), "/profilez?reset=1")), 200);
    }
  });
  std::size_t scrapes = 0;
  while (!done.load(std::memory_order_acquire) || scrapes < 4) {
    EXPECT_EQ(StatusCode(Get(server->port(), "/profilez")), 200);
    ++scrapes;
  }
  writer.join();
  resetter.join();
  AttachGlobalWallProfiler(nullptr);
  EXPECT_GE(scrapes, 4u);
}

}  // namespace
}  // namespace disc
