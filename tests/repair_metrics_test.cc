#include "eval/repair_metrics.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

Relation MakeRel(std::initializer_list<std::initializer_list<double>> rows) {
  Relation r;
  bool first = true;
  for (const auto& row : rows) {
    if (first) {
      r = Relation(Schema::Numeric(row.size()));
      first = false;
    }
    Tuple t;
    for (double v : row) t.push_back(Value(v));
    r.AppendUnchecked(std::move(t));
  }
  return r;
}

TEST(ModifiedAttributes, FindsChangedCells) {
  Relation before = MakeRel({{1, 2, 3}});
  Relation after = MakeRel({{1, 9, 3}});
  AttributeSet mod = ModifiedAttributes(before, after, 0);
  EXPECT_EQ(mod.size(), 1u);
  EXPECT_TRUE(mod.contains(1));
}

TEST(EvaluateRepair, NoChangesIsZero) {
  Relation data = MakeRel({{1, 2}, {3, 4}});
  DistanceEvaluator ev(data.schema());
  RepairReport r = EvaluateRepair(data, data, data, ev);
  EXPECT_EQ(r.tuples_changed, 0u);
  EXPECT_DOUBLE_EQ(r.mean_adjustment_cost, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_residual_error, 0.0);
}

TEST(EvaluateRepair, CountsChangedTuples) {
  Relation dirty = MakeRel({{1, 2}, {3, 4}, {5, 6}});
  Relation repaired = MakeRel({{1, 2}, {3, 10}, {5, 6}});
  DistanceEvaluator ev(dirty.schema());
  RepairReport r = EvaluateRepair(dirty, repaired, dirty, ev);
  EXPECT_EQ(r.tuples_changed, 1u);
  EXPECT_DOUBLE_EQ(r.mean_modified_attributes, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_adjustment_cost, 6.0);
}

TEST(EvaluateRepair, ResidualMeasuresDistanceToTruth) {
  Relation dirty = MakeRel({{0, 0}});
  Relation repaired = MakeRel({{3, 4}});
  Relation truth = MakeRel({{3, 0}});
  DistanceEvaluator ev(dirty.schema());
  RepairReport r = EvaluateRepair(dirty, repaired, truth, ev);
  EXPECT_DOUBLE_EQ(r.mean_residual_error, 4.0);
}

TEST(EvaluateRepair, PerfectRepairZeroResidual) {
  Relation dirty = MakeRel({{0, 99}});
  Relation truth = MakeRel({{0, 1}});
  DistanceEvaluator ev(dirty.schema());
  RepairReport r = EvaluateRepair(dirty, truth, truth, ev);
  EXPECT_DOUBLE_EQ(r.mean_residual_error, 0.0);
  EXPECT_EQ(r.tuples_changed, 1u);
}

TEST(EvaluateRepair, EmptyRelation) {
  Relation empty(Schema::Numeric(2));
  DistanceEvaluator ev(empty.schema());
  RepairReport r = EvaluateRepair(empty, empty, empty, ev);
  EXPECT_EQ(r.tuples_changed, 0u);
}

TEST(EvaluateRepair, MeanOverMultipleChanges) {
  Relation dirty = MakeRel({{0, 0}, {0, 0}});
  Relation repaired = MakeRel({{3, 4}, {0, 2}});  // costs 5 and 2
  DistanceEvaluator ev(dirty.schema());
  RepairReport r = EvaluateRepair(dirty, repaired, dirty, ev);
  EXPECT_EQ(r.tuples_changed, 2u);
  EXPECT_DOUBLE_EQ(r.mean_adjustment_cost, 3.5);
  EXPECT_DOUBLE_EQ(r.mean_modified_attributes, 1.5);
}

}  // namespace
}  // namespace disc
