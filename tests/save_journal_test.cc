// SaveJournal durability contract: hexfloat bit-exact round trips, torn-line
// tolerance, last-wins ordinal dedup, batch-identity validation — and the
// headline guarantee of DESIGN.md §11: a batch crashed mid-save and resumed
// from its journal produces output bit-identical to an uninterrupted run,
// for every thread count.

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/disc_saver.h"
#include "core/outlier_saving.h"
#include "core/save_journal.h"
#include "data/generators.h"
#include "index/index_factory.h"

namespace disc {
namespace {

SaveJournalHeader TestHeader() {
  SaveJournalHeader header;
  header.n_outliers = 5;
  header.arity = 3;
  header.epsilon = 0.1;  // not representable in binary — hexfloat must hold it
  header.eta = 4;
  header.kappa = 2;
  return header;
}

/// A result exercising every serialized field with awkward doubles:
/// non-representable fractions, negative zero, a subnormal, and a value
/// needing all 53 mantissa bits.
SaveResult AwkwardResult() {
  SaveResult r;
  r.feasible = true;
  r.termination = SaveTermination::kCompleted;
  r.adjusted = Tuple({Value(1.0 / 3.0), Value(-0.0), Value("north east")});
  r.cost = 0.1 + 0.2;  // 0x1.3333333333334p-2: the classic rounding victim
  r.lower_bound = std::numeric_limits<double>::denorm_min();
  r.adjusted_attributes = AttributeSet(0b101);
  r.visited_sets = 7;
  r.pruned_sets = 17;
  r.index_queries = 41;
  r.kappa_exceeded = false;
  r.stats.nodes_expanded = 1;
  r.stats.visited_sets = 7;
  r.stats.lb_prunes = 3;
  r.stats.prop3_bounds = 4;
  r.stats.prop5_bounds = 5;
  r.stats.feasibility_checks = 6;
  r.stats.dcache_hits = 8;
  r.stats.dcache_misses = 9;
  r.stats.index_range_queries = 10;
  r.stats.index_count_queries = 11;
  r.stats.index_knn_queries = 12;
  r.stats.index_queries = 41;
  r.stats.retries = 2;
  r.stats.wall_nanos = 123456789;
  r.stats.start_ns = 42;
  return r;
}

/// Bit-level double equality (distinguishes -0.0 from 0.0).
bool SameBits(double a, double b) {
  return a == b && std::signbit(a) == std::signbit(b);
}

void ExpectSameResult(const SaveResult& a, const SaveResult& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.termination, b.termination);
  ASSERT_EQ(a.adjusted.size(), b.adjusted.size());
  for (std::size_t i = 0; i < a.adjusted.size(); ++i) {
    ASSERT_EQ(a.adjusted[i].is_numeric(), b.adjusted[i].is_numeric()) << i;
    if (a.adjusted[i].is_numeric()) {
      EXPECT_TRUE(SameBits(a.adjusted[i].num(), b.adjusted[i].num())) << i;
    } else {
      EXPECT_EQ(a.adjusted[i].str(), b.adjusted[i].str()) << i;
    }
  }
  EXPECT_TRUE(SameBits(a.cost, b.cost));
  EXPECT_TRUE(SameBits(a.lower_bound, b.lower_bound));
  EXPECT_EQ(a.adjusted_attributes.bits(), b.adjusted_attributes.bits());
  EXPECT_EQ(a.visited_sets, b.visited_sets);
  EXPECT_EQ(a.pruned_sets, b.pruned_sets);
  EXPECT_EQ(a.index_queries, b.index_queries);
  EXPECT_EQ(a.kappa_exceeded, b.kappa_exceeded);
  EXPECT_TRUE(a.stats.SameWork(b.stats));
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.wall_nanos, b.stats.wall_nanos);
  EXPECT_EQ(a.stats.start_ns, b.stats.start_ns);
}

TEST(SaveJournal, RoundTripIsBitExact) {
  const std::string path =
      ::testing::TempDir() + "/disc_journal_roundtrip.jsonl";
  const SaveJournalHeader header = TestHeader();
  SaveResult completed = AwkwardResult();
  SaveResult infeasible;
  infeasible.feasible = false;
  infeasible.termination = SaveTermination::kInfeasible;
  infeasible.adjusted = Tuple({Value(-1.5), Value(0.0), Value("x")});
  infeasible.cost = 0;

  SaveJournalWriter writer;
  ASSERT_TRUE(writer.Open(path, header).ok());
  ASSERT_TRUE(writer.Append(3, completed).ok());
  ASSERT_TRUE(writer.Append(0, infeasible).ok());
  writer.Close();

  Result<SaveJournal> loaded = ReadSaveJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SaveJournal& journal = loaded.value();
  EXPECT_EQ(journal.header.schema_version, 1u);
  EXPECT_EQ(journal.header.n_outliers, header.n_outliers);
  EXPECT_EQ(journal.header.arity, header.arity);
  EXPECT_TRUE(SameBits(journal.header.epsilon, header.epsilon));
  EXPECT_EQ(journal.header.eta, header.eta);
  EXPECT_EQ(journal.header.kappa, header.kappa);

  ASSERT_EQ(journal.entries.size(), 2u);
  // Entries come back ordinal-sorted regardless of append order.
  EXPECT_EQ(journal.entries[0].ordinal, 0u);
  EXPECT_EQ(journal.entries[1].ordinal, 3u);
  ExpectSameResult(journal.entries[0].result, infeasible);
  ExpectSameResult(journal.entries[1].result, completed);
}

TEST(SaveJournal, TornTrailingLineIsIgnored) {
  const std::string path = ::testing::TempDir() + "/disc_journal_torn.jsonl";
  SaveJournalWriter writer;
  ASSERT_TRUE(writer.Open(path, TestHeader()).ok());
  ASSERT_TRUE(writer.Append(1, AwkwardResult()).ok());
  writer.Close();
  {
    // Simulate a crash mid-append: a final line cut off before its newline.
    std::ofstream torn(path, std::ios::app);
    torn << "{\"kind\":\"entry\",\"ordinal\":2,\"terminat";
  }
  Result<SaveJournal> loaded = ReadSaveJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().entries.size(), 1u);
  EXPECT_EQ(loaded.value().entries[0].ordinal, 1u);
}

TEST(SaveJournal, MalformedMiddleLineIsAnError) {
  const std::string path = ::testing::TempDir() + "/disc_journal_bad.jsonl";
  SaveJournalWriter writer;
  ASSERT_TRUE(writer.Open(path, TestHeader()).ok());
  writer.Close();
  {
    std::ofstream out(path, std::ios::app);
    out << "not json at all\n";
    out << "{\"kind\":\"header\"}\n";  // keeps the bad line non-final
  }
  Result<SaveJournal> loaded = ReadSaveJournal(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SaveJournal, DuplicateOrdinalLastOccurrenceWins) {
  const std::string path = ::testing::TempDir() + "/disc_journal_dup.jsonl";
  SaveResult first = AwkwardResult();
  first.cost = 1.25;
  SaveResult second = AwkwardResult();
  second.cost = 2.5;
  SaveJournalWriter writer;
  ASSERT_TRUE(writer.Open(path, TestHeader()).ok());
  ASSERT_TRUE(writer.Append(2, first).ok());
  ASSERT_TRUE(writer.Append(2, second).ok());
  writer.Close();
  Result<SaveJournal> loaded = ReadSaveJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().entries.size(), 1u);
  EXPECT_EQ(loaded.value().entries[0].ordinal, 2u);
  EXPECT_TRUE(SameBits(loaded.value().entries[0].result.cost, 2.5));
}

TEST(SaveJournal, MissingFileIsNotFound) {
  Result<SaveJournal> loaded =
      ReadSaveJournal(::testing::TempDir() + "/disc_journal_missing.jsonl");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SaveJournal, MatchesValidatesBatchIdentity) {
  SaveJournal journal;
  journal.header = TestHeader();
  const DistanceConstraint constraint{0.1, 4};

  EXPECT_TRUE(journal.Matches(5, 3, constraint, 2).ok());
  EXPECT_EQ(journal.Matches(6, 3, constraint, 2).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(journal.Matches(5, 4, constraint, 2).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(journal.Matches(5, 3, {0.2, 4}, 2).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(journal.Matches(5, 3, {0.1, 5}, 2).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(journal.Matches(5, 3, constraint, 1).code(),
            StatusCode::kFailedPrecondition);

  SaveJournal future = journal;
  future.header.schema_version = 2;
  EXPECT_EQ(future.Matches(5, 3, constraint, 2).code(),
            StatusCode::kFailedPrecondition);

  SaveJournal out_of_range = journal;
  out_of_range.entries.push_back(SaveJournalEntry{7, AwkwardResult()});
  EXPECT_EQ(out_of_range.Matches(5, 3, constraint, 2).code(),
            StatusCode::kFailedPrecondition);

  SaveJournal degraded = journal;
  SaveJournalEntry truncated{1, AwkwardResult()};
  truncated.result.termination = SaveTermination::kDeadline;
  degraded.entries.push_back(std::move(truncated));
  EXPECT_EQ(degraded.Matches(5, 3, constraint, 2).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SaveJournal, OpenAppendOnMissingFileBehavesLikeOpen) {
  const std::string path =
      ::testing::TempDir() + "/disc_journal_append_fresh.jsonl";
  std::remove(path.c_str());
  SaveJournalWriter writer;
  ASSERT_TRUE(writer.OpenAppend(path, TestHeader()).ok());
  ASSERT_TRUE(writer.is_open());
  writer.Close();
  Result<SaveJournal> loaded = ReadSaveJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().header.n_outliers, 5u);
  EXPECT_TRUE(loaded.value().entries.empty());
}

TEST(SaveJournal, AppendWithoutOpenIsAnError) {
  SaveJournalWriter writer;
  EXPECT_EQ(writer.Append(0, AwkwardResult()).code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Crash → resume bit-identity (the tentpole guarantee).

/// Noisy multi-cluster dataset; mirrors the anytime_save_test fixture.
Relation MakeNoisyDataset(std::uint64_t seed) {
  std::vector<ClusterSpec> specs = {
      {{0, 0, 0, 0}, 0.5, 70},
      {{10, 10, 0, 0}, 0.5, 70},
      {{0, 10, 10, 0}, 0.5, 70},
  };
  LabeledRelation mixture = GenerateGaussianMixture(specs, seed);
  Rng rng(seed + 1);
  for (std::size_t row = 3; row < mixture.data.size(); row += 9) {
    std::size_t a = static_cast<std::size_t>(rng.UniformInt(0, 3));
    mixture.data[row][a] =
        Value(mixture.data[row][a].num() + 20.0 + rng.Uniform() * 5.0);
  }
  return std::move(mixture.data);
}

struct BatchFixture {
  Relation data;
  std::unique_ptr<DistanceEvaluator> ev;
  DistanceConstraint constraint{1.6, 5};
  Relation inliers;
  std::vector<Tuple> outliers;
  std::unique_ptr<DiscSaver> saver;
  SaveOptions options;

  explicit BatchFixture(std::uint64_t seed) : data(MakeNoisyDataset(seed)) {
    ev = std::make_unique<DistanceEvaluator>(data.schema());
    std::unique_ptr<NeighborIndex> index =
        MakeNeighborIndex(data, *ev, constraint.epsilon);
    InlierOutlierSplit split = SplitInliersOutliers(data, *index, constraint);
    inliers = data.Select(split.inlier_rows);
    for (std::size_t row : split.outlier_rows) outliers.push_back(data[row]);
    saver = std::make_unique<DiscSaver>(inliers, *ev, constraint);
    options.kappa = 2;
  }

  SaveJournalHeader Header() const {
    SaveJournalHeader header;
    header.n_outliers = outliers.size();
    header.arity = data.arity();
    header.epsilon = constraint.epsilon;
    header.eta = constraint.eta;
    header.kappa = options.kappa;
    return header;
  }
};

void ExpectBitIdenticalBatch(const std::vector<SaveResult>& baseline,
                             const std::vector<SaveResult>& resumed) {
  ASSERT_EQ(baseline.size(), resumed.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    SCOPED_TRACE("outlier " + std::to_string(i));
    EXPECT_EQ(baseline[i].feasible, resumed[i].feasible);
    EXPECT_EQ(baseline[i].termination, resumed[i].termination);
    EXPECT_EQ(baseline[i].adjusted, resumed[i].adjusted);
    EXPECT_TRUE(SameBits(baseline[i].cost, resumed[i].cost));
    EXPECT_TRUE(SameBits(baseline[i].lower_bound, resumed[i].lower_bound));
    EXPECT_EQ(baseline[i].adjusted_attributes.bits(),
              resumed[i].adjusted_attributes.bits());
    EXPECT_EQ(baseline[i].kappa_exceeded, resumed[i].kappa_exceeded);
    // SameWork covers every deterministic counter; timing is the one thing
    // a restored result legitimately reports from the interrupted run.
    EXPECT_TRUE(baseline[i].stats.SameWork(resumed[i].stats));
  }
}

TEST(SaveJournal, CrashThenResumeIsBitIdenticalAcrossThreadCounts) {
  BatchFixture fx(41);
  ASSERT_GT(fx.outliers.size(), 5u);

  // Uninterrupted reference run: no journal, no faults.
  const std::vector<SaveResult> baseline =
      fx.saver->SaveAll(fx.outliers, fx.options);

  for (std::size_t workers : {std::size_t{0}, std::size_t{4}, std::size_t{8}}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    std::unique_ptr<WorkStealingPool> pool;
    if (workers > 0) pool = std::make_unique<WorkStealingPool>(workers);

    const std::string path = ::testing::TempDir() + "/disc_journal_resume_" +
                             std::to_string(workers) + ".jsonl";

    // Interrupted run: a cancel fault on the third durable journal append
    // trips the batch cancellation — everything still queued drains and
    // skips, exactly like an operator killing the batch mid-save.
    SaveJournalWriter writer;
    ASSERT_TRUE(writer.Open(path, fx.Header()).ok());
    FaultInjector injector;
    FaultSpec crash;
    crash.site = "journal.append";
    crash.kind = FaultKind::kCancel;
    crash.nth = 2;
    injector.Add(crash);
    AttachGlobalFaultInjector(&injector);
    BatchBudget batch;
    batch.cancellation = injector.token();
    BatchRecovery interrupted;
    interrupted.journal = &writer;
    const std::vector<SaveResult> partial = fx.saver->SaveAll(
        fx.outliers, fx.options, pool.get(), batch, nullptr, interrupted);
    AttachGlobalFaultInjector(nullptr);
    writer.Close();
    ASSERT_TRUE(injector.cancel_fired());
    ASSERT_EQ(partial.size(), fx.outliers.size());

    // The journal holds the definitive results that landed before the
    // crash — at least the three whose appends the fault counted.
    Result<SaveJournal> loaded = ReadSaveJournal(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    SaveJournal journal = std::move(loaded).value();
    ASSERT_GE(journal.entries.size(), 3u);
    ASSERT_LT(journal.entries.size(), fx.outliers.size());
    ASSERT_TRUE(journal
                    .Matches(fx.outliers.size(), fx.data.arity(),
                             fx.constraint, fx.options.kappa)
                    .ok());

    // Resume: journaled ordinals restore verbatim, the rest re-search.
    SaveJournalWriter appender;
    ASSERT_TRUE(appender.OpenAppend(path, fx.Header()).ok());
    BatchRecovery resume;
    resume.journal = &appender;
    resume.resume = &journal;
    const std::vector<SaveResult> resumed = fx.saver->SaveAll(
        fx.outliers, fx.options, pool.get(), {}, nullptr, resume);
    appender.Close();

    ExpectBitIdenticalBatch(baseline, resumed);

    // After the resumed run the journal covers every definitive ordinal, so
    // a second resume restores everything without searching at all.
    Result<SaveJournal> complete = ReadSaveJournal(path);
    ASSERT_TRUE(complete.ok());
    std::size_t definitive = 0;
    for (const SaveResult& r : baseline) {
      if (r.termination == SaveTermination::kCompleted ||
          r.termination == SaveTermination::kInfeasible) {
        ++definitive;
      }
    }
    EXPECT_EQ(complete.value().entries.size(), definitive);
  }
}

TEST(SaveJournal, KillFaultCrashUnwindsAndResumeRecovers) {
  BatchFixture fx(43);
  ASSERT_GT(fx.outliers.size(), 3u);
  const std::vector<SaveResult> baseline =
      fx.saver->SaveAll(fx.outliers, fx.options);

  const std::string path =
      ::testing::TempDir() + "/disc_journal_kill.jsonl";
  SaveJournalWriter writer;
  ASSERT_TRUE(writer.Open(path, fx.Header()).ok());
  FaultInjector injector;
  FaultSpec kill;
  kill.site = "journal.append";
  kill.kind = FaultKind::kKill;
  kill.nth = 1;
  injector.Add(kill);
  AttachGlobalFaultInjector(&injector);
  BatchRecovery interrupted;
  interrupted.journal = &writer;
  // The kill fires *after* the second entry is durable: the process
  // "crashes" with two committed lines and no in-memory results.
  EXPECT_THROW(fx.saver->SaveAll(fx.outliers, fx.options, nullptr, {},
                                 nullptr, interrupted),
               FaultInjectedError);
  AttachGlobalFaultInjector(nullptr);
  writer.Close();

  Result<SaveJournal> loaded = ReadSaveJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  SaveJournal journal = std::move(loaded).value();
  EXPECT_EQ(journal.entries.size(), 2u);

  SaveJournalWriter appender;
  ASSERT_TRUE(appender.OpenAppend(path, fx.Header()).ok());
  BatchRecovery resume;
  resume.journal = &appender;
  resume.resume = &journal;
  const std::vector<SaveResult> resumed = fx.saver->SaveAll(
      fx.outliers, fx.options, nullptr, {}, nullptr, resume);
  appender.Close();
  ExpectBitIdenticalBatch(baseline, resumed);
}

// ---------------------------------------------------------------------------
// Retry-with-backoff.

TEST(SaveJournal, TransientFaultIsRetriedToCompletion) {
  BatchFixture fx(47);
  ASSERT_GT(fx.outliers.size(), 1u);
  const std::vector<Tuple> one(fx.outliers.begin(), fx.outliers.begin() + 1);
  const std::vector<SaveResult> clean = fx.saver->SaveAll(one, fx.options);
  ASSERT_EQ(clean[0].termination, SaveTermination::kCompleted);

  // A one-shot allocation failure at the distance-cache fill aborts the
  // first attempt as kFault (transient).
  FaultSpec alloc;
  alloc.site = "dcache.fill";
  alloc.kind = FaultKind::kAllocFail;
  alloc.nth = 0;
  alloc.max_fires = 1;

  {
    // Without a retry policy the fault stands.
    FaultInjector injector;
    injector.Add(alloc);
    AttachGlobalFaultInjector(&injector);
    const std::vector<SaveResult> faulted = fx.saver->SaveAll(one, fx.options);
    AttachGlobalFaultInjector(nullptr);
    ASSERT_EQ(faulted.size(), 1u);
    EXPECT_EQ(faulted[0].termination, SaveTermination::kFault);
    EXPECT_FALSE(faulted[0].feasible);
    EXPECT_EQ(faulted[0].adjusted, one[0]);
    EXPECT_EQ(faulted[0].stats.retries, 0u);
  }
  {
    // With retries, the second attempt (hit index 1, past the one-shot
    // fault) completes — and its answer is bit-identical to a clean run.
    FaultInjector injector;
    injector.Add(alloc);
    AttachGlobalFaultInjector(&injector);
    BatchRecovery recovery;
    recovery.retry.max_attempts = 3;
    recovery.retry.initial_backoff = std::chrono::milliseconds(1);
    const std::vector<SaveResult> retried =
        fx.saver->SaveAll(one, fx.options, nullptr, {}, nullptr, recovery);
    AttachGlobalFaultInjector(nullptr);
    ASSERT_EQ(retried.size(), 1u);
    EXPECT_EQ(retried[0].termination, SaveTermination::kCompleted);
    EXPECT_EQ(retried[0].stats.retries, 1u);
    EXPECT_EQ(retried[0].adjusted, clean[0].adjusted);
    EXPECT_TRUE(SameBits(retried[0].cost, clean[0].cost));
    // The final attempt's counters stand alone — no double counting from
    // the aborted attempt.
    SearchStats final_only = retried[0].stats;
    final_only.retries = clean[0].stats.retries;
    EXPECT_TRUE(final_only.SameWork(clean[0].stats));
  }
}

TEST(RetryPolicy, BackoffGrowsAndClamps) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = std::chrono::milliseconds(10);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = std::chrono::milliseconds(35);
  EXPECT_TRUE(policy.enabled());
  EXPECT_EQ(policy.BackoffFor(0), std::chrono::milliseconds(10));
  EXPECT_EQ(policy.BackoffFor(1), std::chrono::milliseconds(20));
  EXPECT_EQ(policy.BackoffFor(2), std::chrono::milliseconds(35));  // clamped
  EXPECT_EQ(policy.BackoffFor(3), std::chrono::milliseconds(35));

  EXPECT_FALSE(RetryPolicy().enabled());
  EXPECT_TRUE(RetryPolicy::IsTransient(SaveTermination::kFault));
  EXPECT_TRUE(RetryPolicy::IsTransient(SaveTermination::kVisitBudget));
  EXPECT_TRUE(RetryPolicy::IsTransient(SaveTermination::kQueryBudget));
  EXPECT_FALSE(RetryPolicy::IsTransient(SaveTermination::kCompleted));
  EXPECT_FALSE(RetryPolicy::IsTransient(SaveTermination::kInfeasible));
  EXPECT_FALSE(RetryPolicy::IsTransient(SaveTermination::kDeadline));
  EXPECT_FALSE(RetryPolicy::IsTransient(SaveTermination::kCancelled));
}

}  // namespace
}  // namespace disc
