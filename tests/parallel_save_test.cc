// Determinism and thread-safety of the parallel batch saving path
// (DiscSaver::SaveAll / SaveOutliers with num_threads > 1). The TSan CI job
// runs exactly this binary plus thread_pool_test to race-check the shared
// read-only index state.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/disc_saver.h"
#include "core/outlier_saving.h"
#include "data/generators.h"
#include "index/index_factory.h"

namespace disc {
namespace {

/// Seeded noisy dataset: three Gaussian clusters in 4-D with a batch of
/// rows corrupted on one or two attributes, plus a couple of natural
/// outliers displaced in every attribute.
Relation MakeNoisyDataset(std::uint64_t seed) {
  std::vector<ClusterSpec> specs = {
      {{0, 0, 0, 0}, 0.5, 80},
      {{10, 10, 0, 0}, 0.5, 80},
      {{0, 10, 10, 0}, 0.5, 80},
  };
  LabeledRelation mixture = GenerateGaussianMixture(specs, seed);
  Rng rng(seed + 1);
  for (std::size_t row = 3; row < mixture.data.size(); row += 11) {
    std::size_t a = static_cast<std::size_t>(rng.UniformInt(0, 3));
    mixture.data[row][a] =
        Value(mixture.data[row][a].num() + 20.0 + rng.Uniform() * 5.0);
    if (row % 22 == 3) {
      mixture.data[row][(a + 2) % 4] = Value(-18.0 - rng.Uniform() * 5.0);
    }
  }
  AppendNaturalOutliers(&mixture, 2, 60.0, seed + 2);
  return std::move(mixture.data);
}

OutlierSavingOptions BaseOptions() {
  OutlierSavingOptions opts;
  opts.constraint = {1.6, 5};
  opts.save.kappa = 2;
  opts.natural_attribute_threshold = 2;
  return opts;
}

void ExpectIdenticalRecords(const SavedDataset& a, const SavedDataset& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const OutlierRecord& ra = a.records[i];
    const OutlierRecord& rb = b.records[i];
    EXPECT_EQ(ra.row, rb.row);
    EXPECT_EQ(ra.disposition, rb.disposition) << "record " << i;
    EXPECT_EQ(ra.adjusted, rb.adjusted) << "record " << i;
    EXPECT_EQ(ra.cost, rb.cost) << "record " << i;  // bit-identical, not near
    EXPECT_EQ(ra.adjusted_attributes.bits(), rb.adjusted_attributes.bits());
    EXPECT_EQ(ra.lower_bound, rb.lower_bound);
    EXPECT_EQ(ra.termination, rb.termination) << "record " << i;
    EXPECT_EQ(ra.index_queries, rb.index_queries) << "record " << i;
  }
  ASSERT_EQ(a.repaired.size(), b.repaired.size());
  for (std::size_t row = 0; row < a.repaired.size(); ++row) {
    EXPECT_EQ(a.repaired[row], b.repaired[row]) << "row " << row;
  }
}

TEST(ParallelSave, SaveOutliersBitIdenticalAcrossThreadCounts) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  DistanceEvaluator evaluator(data.schema());

  OutlierSavingOptions opts = BaseOptions();
  opts.num_threads = 1;
  SavedDataset sequential = SaveOutliers(data, evaluator, opts);
  ASSERT_TRUE(sequential.status.ok());
  ASSERT_GT(sequential.records.size(), 10u)
      << "scenario must produce a real outlier batch";
  EXPECT_GT(sequential.CountDisposition(OutlierDisposition::kSaved), 0u);

  for (std::size_t threads : {2u, 8u}) {
    opts.num_threads = threads;
    SavedDataset parallel = SaveOutliers(data, evaluator, opts);
    ASSERT_TRUE(parallel.status.ok());
    ExpectIdenticalRecords(sequential, parallel);
  }
}

TEST(ParallelSave, SaveAllMatchesIndividualSaves) {
  Relation data = MakeNoisyDataset(/*seed=*/123);
  DistanceEvaluator evaluator(data.schema());
  DistanceConstraint constraint{1.6, 5};

  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(data, evaluator, constraint.epsilon);
  InlierOutlierSplit split = SplitInliersOutliers(data, *index, constraint);
  ASSERT_GT(split.outlier_rows.size(), 5u);
  Relation inliers = data.Select(split.inlier_rows);
  std::vector<Tuple> outliers;
  for (std::size_t row : split.outlier_rows) outliers.push_back(data[row]);

  DiscSaver saver(inliers, evaluator, constraint);
  SaveOptions options;
  options.kappa = 2;

  WorkStealingPool pool(4);
  std::vector<SaveResult> batch = saver.SaveAll(outliers, options, &pool);
  ASSERT_EQ(batch.size(), outliers.size());
  for (std::size_t i = 0; i < outliers.size(); ++i) {
    SaveResult single = saver.Save(outliers[i], options);
    EXPECT_EQ(batch[i].feasible, single.feasible) << "outlier " << i;
    EXPECT_EQ(batch[i].adjusted, single.adjusted) << "outlier " << i;
    EXPECT_EQ(batch[i].cost, single.cost) << "outlier " << i;
    EXPECT_EQ(batch[i].adjusted_attributes.bits(),
              single.adjusted_attributes.bits());
    EXPECT_EQ(batch[i].kappa_exceeded, single.kappa_exceeded);
  }
}

TEST(ParallelSave, SaveAllWithoutPoolIsSequentialPath) {
  Relation data = MakeNoisyDataset(/*seed=*/55);
  DistanceEvaluator evaluator(data.schema());
  DistanceConstraint constraint{1.6, 5};
  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(data, evaluator, constraint.epsilon);
  InlierOutlierSplit split = SplitInliersOutliers(data, *index, constraint);
  Relation inliers = data.Select(split.inlier_rows);
  std::vector<Tuple> outliers;
  for (std::size_t row : split.outlier_rows) outliers.push_back(data[row]);

  DiscSaver saver(inliers, evaluator, constraint);
  std::vector<SaveResult> no_pool = saver.SaveAll(outliers);
  WorkStealingPool pool(2);
  std::vector<SaveResult> with_pool = saver.SaveAll(outliers, {}, &pool);
  ASSERT_EQ(no_pool.size(), with_pool.size());
  for (std::size_t i = 0; i < no_pool.size(); ++i) {
    EXPECT_EQ(no_pool[i].adjusted, with_pool[i].adjusted);
    EXPECT_EQ(no_pool[i].cost, with_pool[i].cost);
  }
}

TEST(ParallelSave, ConcurrentSavesOnSharedSaver) {
  // Many threads hammering one DiscSaver directly — the const-thread-safety
  // contract the TSan job verifies (shared NeighborIndex, KthNeighborCache
  // and BoundsEngine, per-call SearchState).
  Relation data = MakeNoisyDataset(/*seed=*/7);
  DistanceEvaluator evaluator(data.schema());
  DistanceConstraint constraint{1.6, 5};
  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(data, evaluator, constraint.epsilon);
  InlierOutlierSplit split = SplitInliersOutliers(data, *index, constraint);
  Relation inliers = data.Select(split.inlier_rows);
  ASSERT_GT(split.outlier_rows.size(), 0u);
  const Tuple outlier = data[split.outlier_rows[0]];

  DiscSaver saver(inliers, evaluator, constraint);
  SaveOptions options;
  options.kappa = 2;
  SaveResult expected = saver.Save(outlier, options);

  ThreadPool pool(8);
  std::vector<std::future<SaveResult>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit(
        [&saver, &outlier, &options] { return saver.Save(outlier, options); }));
  }
  for (auto& f : futures) {
    SaveResult got = f.get();
    EXPECT_EQ(got.feasible, expected.feasible);
    EXPECT_EQ(got.adjusted, expected.adjusted);
    EXPECT_EQ(got.cost, expected.cost);
  }
}

TEST(ParallelSave, ZeroThreadsMeansHardwareConcurrency) {
  Relation data = MakeNoisyDataset(/*seed=*/31);
  DistanceEvaluator evaluator(data.schema());
  OutlierSavingOptions opts = BaseOptions();
  opts.num_threads = 1;
  SavedDataset sequential = SaveOutliers(data, evaluator, opts);
  opts.num_threads = 0;  // auto
  SavedDataset automatic = SaveOutliers(data, evaluator, opts);
  ASSERT_TRUE(automatic.status.ok());
  ExpectIdenticalRecords(sequential, automatic);
}

TEST(ParallelSave, WideSchemaRejectedWithStatus) {
  // kMaxSaveableAttributes is the AttributeSet bitmask width; anything wider
  // must be rejected, not silently truncated (the old ChangedAttributes
  // behaviour).
  const std::size_t arity = kMaxSaveableAttributes + 6;
  Relation wide(Schema::Numeric(arity));
  Rng rng(9);
  for (int i = 0; i < 12; ++i) {
    std::vector<double> values(arity);
    for (double& v : values) v = rng.Gaussian(0, 1);
    wide.AppendUnchecked(Tuple::FromDoubles(values));
  }
  DistanceEvaluator evaluator(wide.schema());
  OutlierSavingOptions opts;
  opts.constraint = {0.5, 3};
  SavedDataset out = SaveOutliers(wide, evaluator, opts);
  EXPECT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(out.records.empty());
  ASSERT_EQ(out.repaired.size(), wide.size());
  for (std::size_t row = 0; row < wide.size(); ++row) {
    EXPECT_EQ(out.repaired[row], wide[row]);
  }
}

TEST(ParallelSave, ValidateSaveArityBoundary) {
  EXPECT_TRUE(ValidateSaveArity(0).ok());
  // Exactly at AttributeSet::kCapacity must pass — the cap is inclusive.
  static_assert(kMaxSaveableAttributes == AttributeSet::kCapacity);
  EXPECT_TRUE(ValidateSaveArity(AttributeSet::kCapacity).ok());
  Status over = ValidateSaveArity(AttributeSet::kCapacity + 1);
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.code(), StatusCode::kInvalidArgument);
  // The message must name both the offending arity and the capacity so the
  // rejection is actionable without reading the source.
  EXPECT_NE(over.message().find(std::to_string(AttributeSet::kCapacity)),
            std::string::npos)
      << over.message();
  EXPECT_NE(over.message().find(std::to_string(AttributeSet::kCapacity + 1)),
            std::string::npos)
      << over.message();
}

}  // namespace
}  // namespace disc
