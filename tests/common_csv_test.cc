#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace disc {
namespace {

TEST(Csv, ParseNumericWithHeader) {
  Result<Relation> r = ParseCsv("x,y\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok()) << r.status();
  const Relation& rel = r.value();
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.arity(), 2u);
  EXPECT_EQ(rel.schema().name(0), "x");
  EXPECT_EQ(rel.schema().kind(0), ValueKind::kNumeric);
  EXPECT_DOUBLE_EQ(rel[1][1].num(), 4.0);
}

TEST(Csv, ParseWithoutHeader) {
  CsvOptions opts;
  opts.has_header = false;
  Result<Relation> r = ParseCsv("1,2\n3,4\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value().schema().name(0), "a0");
}

TEST(Csv, InfersStringColumns) {
  Result<Relation> r = ParseCsv("id,name\n1,alice\n2,bob\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().kind(0), ValueKind::kNumeric);
  EXPECT_EQ(r.value().schema().kind(1), ValueKind::kString);
  EXPECT_EQ(r.value()[0][1].str(), "alice");
}

TEST(Csv, MixedColumnBecomesString) {
  Result<Relation> r = ParseCsv("v\n1\nx\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().kind(0), ValueKind::kString);
}

TEST(Csv, NoInferenceMakesEverythingString) {
  CsvOptions opts;
  opts.infer_kinds = false;
  Result<Relation> r = ParseCsv("x\n1\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().kind(0), ValueKind::kString);
}

TEST(Csv, RejectsRaggedRows) {
  Result<Relation> r = ParseCsv("x,y\n1,2\n3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Csv, RejectsEmptyInput) {
  Result<Relation> r = ParseCsv("");
  EXPECT_FALSE(r.ok());
}

TEST(Csv, HandlesCrLf) {
  Result<Relation> r = ParseCsv("x\r\n1\r\n2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(Csv, CustomSeparator) {
  CsvOptions opts;
  opts.separator = ';';
  Result<Relation> r = ParseCsv("x;y\n1;2\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().arity(), 2u);
}

TEST(Csv, RoundTripThroughText) {
  Result<Relation> r = ParseCsv("x,y\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  std::string text = ToCsv(r.value());
  Result<Relation> again = ParseCsv(text);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().size(), 2u);
  EXPECT_DOUBLE_EQ(again.value()[0][0].num(), 1.0);
}

TEST(Csv, FileRoundTrip) {
  std::string path = testing::TempDir() + "/disc_csv_test.csv";
  Result<Relation> r = ParseCsv("x,s\n1,ab\n2,cd\n");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(WriteCsv(r.value(), path).ok());
  Result<Relation> read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), 2u);
  EXPECT_EQ(read.value()[1][1].str(), "cd");
  std::remove(path.c_str());
}

TEST(Csv, ReadMissingFileFails) {
  Result<Relation> r = ReadCsv("/nonexistent/path.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(Csv, RaggedRowErrorNamesThePhysicalLine) {
  // Blank lines are skipped as rows but still count as physical lines, so
  // the error must point at line 5, not data-row index 2.
  Result<Relation> r = ParseCsv("x,y\n\n1,2\n\n3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 5"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("expected 2"), std::string::npos);
}

TEST(Csv, StrictNumericRejectsMixedColumnWithContext) {
  const std::string text = "v,name\n1,alice\n2,bob\nbad,carol\n";
  // Default mode silently demotes the mixed column to strings...
  Result<Relation> lax = ParseCsv(text);
  ASSERT_TRUE(lax.ok());
  EXPECT_EQ(lax.value().schema().kind(0), ValueKind::kString);

  // ...strict mode names the column, the cell, and the physical line.
  CsvOptions strict;
  strict.strict_numeric = true;
  Result<Relation> r = ParseCsv(text, strict);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  const std::string& message = r.status().message();
  EXPECT_NE(message.find("column \"v\" (index 0)"), std::string::npos)
      << message;
  EXPECT_NE(message.find("\"bad\""), std::string::npos) << message;
  EXPECT_NE(message.find("line 4"), std::string::npos) << message;
}

TEST(Csv, StrictNumericAcceptsPureStringAndPureNumericColumns) {
  CsvOptions strict;
  strict.strict_numeric = true;
  Result<Relation> r = ParseCsv("id,name\n1,alice\n2,bob\n", strict);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().schema().kind(0), ValueKind::kNumeric);
  EXPECT_EQ(r.value().schema().kind(1), ValueKind::kString);
}

TEST(Csv, MaxBytesRejectsOversizedText) {
  CsvOptions opts;
  opts.max_bytes = 10;
  Result<Relation> r = ParseCsv("x,y\n1,2\n3,4\n", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("over the 10-byte limit"),
            std::string::npos)
      << r.status().ToString();
}

TEST(Csv, MaxBytesRejectsOversizedFileBeforeSlurping) {
  const std::string path = testing::TempDir() + "/disc_csv_maxbytes.csv";
  {
    std::ofstream out(path);
    out << "x,y\n1,2\n3,4\n";
  }
  CsvOptions tight;
  tight.max_bytes = 4;
  Result<Relation> rejected = ReadCsv(path, tight);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("over the 4-byte CSV limit"),
            std::string::npos)
      << rejected.status().ToString();

  CsvOptions roomy;
  roomy.max_bytes = 1 << 20;
  Result<Relation> accepted = ReadCsv(path, roomy);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_EQ(accepted.value().size(), 2u);
  std::remove(path.c_str());
}

TEST(Csv, HeaderOnlyInputYieldsZeroRows) {
  Result<Relation> r = ParseCsv("x,y\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().size(), 0u);
  EXPECT_EQ(r.value().arity(), 2u);
}

}  // namespace
}  // namespace disc
