#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace disc {
namespace {

TEST(Csv, ParseNumericWithHeader) {
  Result<Relation> r = ParseCsv("x,y\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok()) << r.status();
  const Relation& rel = r.value();
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.arity(), 2u);
  EXPECT_EQ(rel.schema().name(0), "x");
  EXPECT_EQ(rel.schema().kind(0), ValueKind::kNumeric);
  EXPECT_DOUBLE_EQ(rel[1][1].num(), 4.0);
}

TEST(Csv, ParseWithoutHeader) {
  CsvOptions opts;
  opts.has_header = false;
  Result<Relation> r = ParseCsv("1,2\n3,4\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value().schema().name(0), "a0");
}

TEST(Csv, InfersStringColumns) {
  Result<Relation> r = ParseCsv("id,name\n1,alice\n2,bob\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().kind(0), ValueKind::kNumeric);
  EXPECT_EQ(r.value().schema().kind(1), ValueKind::kString);
  EXPECT_EQ(r.value()[0][1].str(), "alice");
}

TEST(Csv, MixedColumnBecomesString) {
  Result<Relation> r = ParseCsv("v\n1\nx\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().kind(0), ValueKind::kString);
}

TEST(Csv, NoInferenceMakesEverythingString) {
  CsvOptions opts;
  opts.infer_kinds = false;
  Result<Relation> r = ParseCsv("x\n1\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().kind(0), ValueKind::kString);
}

TEST(Csv, RejectsRaggedRows) {
  Result<Relation> r = ParseCsv("x,y\n1,2\n3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Csv, RejectsEmptyInput) {
  Result<Relation> r = ParseCsv("");
  EXPECT_FALSE(r.ok());
}

TEST(Csv, HandlesCrLf) {
  Result<Relation> r = ParseCsv("x\r\n1\r\n2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(Csv, CustomSeparator) {
  CsvOptions opts;
  opts.separator = ';';
  Result<Relation> r = ParseCsv("x;y\n1;2\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().arity(), 2u);
}

TEST(Csv, RoundTripThroughText) {
  Result<Relation> r = ParseCsv("x,y\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  std::string text = ToCsv(r.value());
  Result<Relation> again = ParseCsv(text);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().size(), 2u);
  EXPECT_DOUBLE_EQ(again.value()[0][0].num(), 1.0);
}

TEST(Csv, FileRoundTrip) {
  std::string path = testing::TempDir() + "/disc_csv_test.csv";
  Result<Relation> r = ParseCsv("x,s\n1,ab\n2,cd\n");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(WriteCsv(r.value(), path).ok());
  Result<Relation> read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), 2u);
  EXPECT_EQ(read.value()[1][1].str(), "cd");
  std::remove(path.c_str());
}

TEST(Csv, ReadMissingFileFails) {
  Result<Relation> r = ReadCsv("/nonexistent/path.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace disc
