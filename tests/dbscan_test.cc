#include "clustering/dbscan.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "eval/clustering_metrics.h"

namespace disc {
namespace {

LabeledRelation TwoBlobs(std::size_t per_blob = 50, std::uint64_t seed = 3) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0, 0}, 0.5, per_blob});
  clusters.push_back({{10, 0}, 0.5, per_blob});
  return GenerateGaussianMixture(clusters, seed);
}

TEST(Dbscan, RecoversTwoBlobs) {
  LabeledRelation data = TwoBlobs();
  DistanceEvaluator ev(data.data.schema());
  Labels labels = Dbscan(data.data, ev, {1.5, 4});
  EXPECT_EQ(NumClusters(labels), 2u);
  // Pair F1 vs ground truth should be near-perfect.
  PairCountingScores s = PairCounting(labels, data.labels);
  EXPECT_GT(s.f1, 0.95);
}

TEST(Dbscan, FarPointIsNoise) {
  LabeledRelation data = TwoBlobs();
  data.data.AppendUnchecked(Tuple::Numeric({100, 100}));
  data.labels.push_back(kNoise);
  DistanceEvaluator ev(data.data.schema());
  Labels labels = Dbscan(data.data, ev, {1.5, 4});
  EXPECT_EQ(labels.back(), kNoise);
}

TEST(Dbscan, TinyEpsilonAllNoise) {
  LabeledRelation data = TwoBlobs();
  DistanceEvaluator ev(data.data.schema());
  Labels labels = Dbscan(data.data, ev, {1e-6, 4});
  EXPECT_EQ(NumNoise(labels), data.data.size());
}

TEST(Dbscan, HugeEpsilonOneCluster) {
  LabeledRelation data = TwoBlobs();
  DistanceEvaluator ev(data.data.schema());
  Labels labels = Dbscan(data.data, ev, {1000.0, 4});
  EXPECT_EQ(NumClusters(labels), 1u);
  EXPECT_EQ(NumNoise(labels), 0u);
}

TEST(Dbscan, MinPtsOneClustersEverything) {
  LabeledRelation data = TwoBlobs(20);
  DistanceEvaluator ev(data.data.schema());
  Labels labels = Dbscan(data.data, ev, {1.5, 1});
  EXPECT_EQ(NumNoise(labels), 0u);
}

TEST(Dbscan, EmptyRelation) {
  Relation r(Schema::Numeric(2));
  DistanceEvaluator ev(r.schema());
  Labels labels = Dbscan(r, ev, {1.0, 3});
  EXPECT_TRUE(labels.empty());
}

TEST(Dbscan, DeterministicAcrossRuns) {
  LabeledRelation data = TwoBlobs();
  DistanceEvaluator ev(data.data.schema());
  Labels a = Dbscan(data.data, ev, {1.5, 4});
  Labels b = Dbscan(data.data, ev, {1.5, 4});
  EXPECT_EQ(a, b);
}

TEST(Dbscan, BridgeMergesClusters) {
  // A dense bridge of points connecting two blobs merges them into one
  // density-connected cluster.
  LabeledRelation data = TwoBlobs();
  for (double x = 1.0; x < 9.5; x += 0.3) {
    data.data.AppendUnchecked(Tuple::Numeric({x, 0}));
    data.labels.push_back(0);
  }
  DistanceEvaluator ev(data.data.schema());
  Labels labels = Dbscan(data.data, ev, {1.0, 3});
  EXPECT_EQ(NumClusters(labels), 1u);
}

TEST(Dbscan, ErrorSplitsClusterWithoutSaving) {
  // The paper's Figure 1 story: spiking one attribute of several tuples in
  // a thin elongated cluster can split it under DBSCAN.
  Relation r(Schema::Numeric(2));
  for (double x = 0; x < 20; x += 0.25) {
    r.AppendUnchecked(Tuple::Numeric({x, 0.0}));
  }
  DistanceEvaluator ev(r.schema());
  Labels before = Dbscan(r, ev, {0.6, 3});
  EXPECT_EQ(NumClusters(before), 1u);
  // Break the chain by spiking a contiguous run of points.
  Relation broken = r;
  for (std::size_t i = 38; i < 42; ++i) broken[i][1] = Value(50.0);
  Labels after = Dbscan(broken, ev, {0.6, 3});
  EXPECT_GE(NumClusters(after), 2u);
}

}  // namespace
}  // namespace disc
