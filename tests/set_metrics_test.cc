#include "eval/set_metrics.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

TEST(Jaccard, IdenticalSetsOne) {
  AttributeSet a{1, 3};
  EXPECT_DOUBLE_EQ(JaccardIndex(a, a), 1.0);
}

TEST(Jaccard, DisjointSetsZero) {
  EXPECT_DOUBLE_EQ(JaccardIndex(AttributeSet{0}, AttributeSet{1}), 0.0);
}

TEST(Jaccard, PartialOverlap) {
  // |{1} ∩ {1,2}| / |{1} ∪ {1,2}| = 1/2.
  EXPECT_DOUBLE_EQ(JaccardIndex(AttributeSet{1}, AttributeSet{1, 2}), 0.5);
}

TEST(Jaccard, BothEmptyIsOne) {
  EXPECT_DOUBLE_EQ(JaccardIndex(AttributeSet(), AttributeSet()), 1.0);
}

TEST(Jaccard, OneEmptyIsZero) {
  EXPECT_DOUBLE_EQ(JaccardIndex(AttributeSet{2}, AttributeSet()), 0.0);
  EXPECT_DOUBLE_EQ(JaccardIndex(AttributeSet(), AttributeSet{2}), 0.0);
}

TEST(Jaccard, Symmetric) {
  AttributeSet a{0, 1, 5};
  AttributeSet b{1, 5, 9};
  EXPECT_DOUBLE_EQ(JaccardIndex(a, b), JaccardIndex(b, a));
}

TEST(SetPrecisionRecall, KnownValues) {
  AttributeSet truth{0, 1};
  AttributeSet pred{1, 2, 3};
  EXPECT_NEAR(SetPrecision(truth, pred), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(SetRecall(truth, pred), 1.0 / 2.0, 1e-12);
}

TEST(SetPrecisionRecall, EmptyConventions) {
  EXPECT_DOUBLE_EQ(SetPrecision(AttributeSet{1}, AttributeSet()), 1.0);
  EXPECT_DOUBLE_EQ(SetRecall(AttributeSet(), AttributeSet{1}), 1.0);
}

TEST(Jaccard, OverChangeLowersScore) {
  // The paper's Figure 10(c) point: adjusting 6 attributes when 2 are wrong
  // gives Jaccard 2/6 = 0.33, versus 1.0 for a minimal repair.
  AttributeSet truth{0, 1};
  AttributeSet minimal{0, 1};
  AttributeSet over{0, 1, 2, 3, 4, 5};
  EXPECT_GT(JaccardIndex(truth, minimal), JaccardIndex(truth, over));
  EXPECT_NEAR(JaccardIndex(truth, over), 2.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace disc
