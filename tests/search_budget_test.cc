// Unit tests for the deadline/cancellation/budget primitives: Deadline,
// CancellationToken/Source, SearchStats + StatsNeighborIndex, and the
// BudgetGauge that enforces a SearchBudget inside the savers.

#include "core/search_budget.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/deadline.h"
#include "common/status.h"
#include "core/search_stats.h"
#include "index/brute_force_index.h"

namespace disc {
namespace {

// --- Deadline ---

TEST(Deadline, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d, Deadline::Infinite());
  EXPECT_EQ(d.remaining(), Deadline::Clock::duration::max());
}

TEST(Deadline, AfterMillisExpires) {
  Deadline d = Deadline::AfterMillis(1);
  EXPECT_FALSE(d.is_infinite());
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), Deadline::Clock::duration::zero());
}

TEST(Deadline, NonPositiveDurationAlreadyExpired) {
  EXPECT_TRUE(Deadline::After(std::chrono::milliseconds(0)).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).expired());
}

TEST(Deadline, FutureDeadlineNotExpired) {
  Deadline d = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), std::chrono::seconds(50));
}

TEST(Deadline, MinPicksEarlier) {
  Deadline early = Deadline::AfterMillis(10);
  Deadline late = Deadline::AfterMillis(60'000);
  EXPECT_EQ(Deadline::Min(early, late), early);
  EXPECT_EQ(Deadline::Min(late, early), early);
  EXPECT_EQ(Deadline::Min(early, Deadline::Infinite()), early);
  EXPECT_TRUE(
      Deadline::Min(Deadline::Infinite(), Deadline::Infinite()).is_infinite());
}

// --- Cancellation ---

TEST(Cancellation, DefaultTokenNeverCancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.can_be_cancelled());
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancellation, TokenObservesSource) {
  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_TRUE(token.can_be_cancelled());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(source.cancel_requested());
  source.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.cancel_requested());
}

TEST(Cancellation, CopiedTokensShareTheFlag) {
  CancellationSource source;
  CancellationToken a = source.token();
  CancellationToken b = a;  // copy
  source.RequestCancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
}

TEST(Cancellation, TokenOutlivesSource) {
  CancellationToken token;
  {
    CancellationSource source;
    token = source.token();
    source.RequestCancel();
  }  // source destroyed; the shared flag survives via the token
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancellation, CancelFromAnotherThreadIsObserved) {
  CancellationSource source;
  CancellationToken token = source.token();
  std::thread canceller([&source] { source.RequestCancel(); });
  canceller.join();
  EXPECT_TRUE(token.cancelled());
}

// --- StatsNeighborIndex ---

TEST(StatsNeighborIndex, CountsEveryQueryKind) {
  Relation rel(Schema::Numeric(2));
  rel.AppendUnchecked(Tuple::Numeric({0, 0}));
  rel.AppendUnchecked(Tuple::Numeric({1, 0}));
  rel.AppendUnchecked(Tuple::Numeric({0, 1}));
  DistanceEvaluator ev(rel.schema());
  BruteForceIndex base(rel, ev);

  SearchStats stats;
  StatsNeighborIndex counted(base, &stats);
  EXPECT_EQ(counted.size(), base.size());
  EXPECT_EQ(stats.index_queries, 0u);  // size() is not a query

  Tuple q = Tuple::Numeric({0.1, 0.1});
  std::vector<Neighbor> range = counted.RangeQuery(q, 2.0);
  EXPECT_EQ(stats.index_queries, 1u);
  EXPECT_EQ(stats.index_range_queries, 1u);
  EXPECT_EQ(range.size(), base.RangeQuery(q, 2.0).size());

  std::size_t within = counted.CountWithin(q, 2.0, 0);
  EXPECT_EQ(stats.index_queries, 2u);
  EXPECT_EQ(stats.index_count_queries, 1u);
  EXPECT_EQ(within, base.CountWithin(q, 2.0, 0));

  std::vector<Neighbor> knn = counted.KNearest(q, 2);
  EXPECT_EQ(stats.index_queries, 3u);
  EXPECT_EQ(stats.index_knn_queries, 1u);
  ASSERT_EQ(knn.size(), 2u);
}

// --- SaveTermination helpers ---

TEST(SaveTermination, NamesAreStable) {
  EXPECT_STREQ(SaveTerminationName(SaveTermination::kCompleted), "completed");
  EXPECT_STREQ(SaveTerminationName(SaveTermination::kVisitBudget),
               "visit_budget");
  EXPECT_STREQ(SaveTerminationName(SaveTermination::kQueryBudget),
               "query_budget");
  EXPECT_STREQ(SaveTerminationName(SaveTermination::kDeadline), "deadline");
  EXPECT_STREQ(SaveTerminationName(SaveTermination::kCancelled), "cancelled");
  EXPECT_STREQ(SaveTerminationName(SaveTermination::kInfeasible),
               "infeasible");
}

TEST(SaveTermination, StatusMapping) {
  EXPECT_TRUE(SaveTerminationStatus(SaveTermination::kCompleted).ok());
  EXPECT_TRUE(SaveTerminationStatus(SaveTermination::kInfeasible).ok());
  EXPECT_EQ(SaveTerminationStatus(SaveTermination::kVisitBudget).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(SaveTerminationStatus(SaveTermination::kQueryBudget).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(SaveTerminationStatus(SaveTermination::kDeadline).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(SaveTerminationStatus(SaveTermination::kCancelled).code(),
            StatusCode::kCancelled);
}

// --- BudgetGauge ---

TEST(BudgetGauge, UnlimitedBudgetNeverStops) {
  SearchBudget budget;
  EXPECT_TRUE(budget.IsUnlimited());
  BudgetGauge gauge(&budget);
  for (std::size_t i = 1; i <= 1000; ++i) {
    EXPECT_TRUE(gauge.OnNodeExpanded(i));
    EXPECT_TRUE(gauge.KeepScanning());
  }
  EXPECT_TRUE(gauge.ContinueRefinement());
  EXPECT_FALSE(gauge.stopped());
  EXPECT_EQ(gauge.reason(), SaveTermination::kCompleted);
  EXPECT_EQ(gauge.nodes_expanded(), 1000u);
}

TEST(BudgetGauge, VisitBudgetTripsStrictlyAbove) {
  SearchBudget budget;
  budget.max_visited_sets = 3;
  BudgetGauge gauge(&budget);
  EXPECT_TRUE(gauge.OnNodeExpanded(1));
  EXPECT_TRUE(gauge.OnNodeExpanded(2));
  EXPECT_TRUE(gauge.OnNodeExpanded(3));  // == cap still allowed
  EXPECT_FALSE(gauge.OnNodeExpanded(4));
  EXPECT_TRUE(gauge.stopped());
  EXPECT_EQ(gauge.reason(), SaveTermination::kVisitBudget);
  // Refinement may still run after a soft stop.
  EXPECT_TRUE(gauge.ContinueRefinement());
}

TEST(BudgetGauge, QueryBudgetTrips) {
  SearchBudget budget;
  budget.max_index_queries = 2;
  BudgetGauge gauge(&budget);
  gauge.stats().index_queries += 3;
  EXPECT_EQ(gauge.query_count(), 3u);
  EXPECT_FALSE(gauge.OnNodeExpanded(1));
  EXPECT_EQ(gauge.reason(), SaveTermination::kQueryBudget);
  EXPECT_TRUE(gauge.ContinueRefinement());  // soft stop
}

TEST(BudgetGauge, ExpiredDeadlineStopsEverything) {
  SearchBudget budget;
  budget.deadline = Deadline::AfterMillis(-1);
  BudgetGauge gauge(&budget);
  EXPECT_FALSE(gauge.OnNodeExpanded(1));
  EXPECT_EQ(gauge.reason(), SaveTermination::kDeadline);
  EXPECT_FALSE(gauge.ContinueRefinement());  // hard stop
}

TEST(BudgetGauge, CancellationWinsOverOtherLimits) {
  CancellationSource source;
  SearchBudget budget;
  budget.cancellation = source.token();
  budget.max_visited_sets = 1;
  source.RequestCancel();
  BudgetGauge gauge(&budget);
  EXPECT_FALSE(gauge.OnNodeExpanded(5));  // would also trip the visit cap
  EXPECT_EQ(gauge.reason(), SaveTermination::kCancelled);
  EXPECT_FALSE(gauge.ContinueRefinement());
}

TEST(BudgetGauge, ExtraTokenFromBatchLayerObserved) {
  CancellationSource batch_source;
  SearchBudget budget;  // the per-search budget itself is unlimited
  BudgetGauge gauge(&budget, Deadline::Infinite(), batch_source.token());
  EXPECT_TRUE(gauge.OnNodeExpanded(1));
  batch_source.RequestCancel();
  EXPECT_FALSE(gauge.OnNodeExpanded(2));
  EXPECT_EQ(gauge.reason(), SaveTermination::kCancelled);
}

TEST(BudgetGauge, ExtraDeadlineIntersectsBudgetDeadline) {
  SearchBudget budget;
  budget.deadline = Deadline::AfterMillis(60'000);
  BudgetGauge gauge(&budget, Deadline::AfterMillis(-1));  // batch slice over
  EXPECT_FALSE(gauge.OnNodeExpanded(1));
  EXPECT_EQ(gauge.reason(), SaveTermination::kDeadline);
}

TEST(BudgetGauge, KeepScanningDetectsCancellationWithinStride) {
  CancellationSource source;
  SearchBudget budget;
  budget.cancellation = source.token();
  BudgetGauge gauge(&budget);
  source.RequestCancel();
  // The poll is strided: the stop must land within one stride (64 rows).
  bool stopped = false;
  for (int i = 0; i < 64 && !stopped; ++i) stopped = !gauge.KeepScanning();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(gauge.reason(), SaveTermination::kCancelled);
  EXPECT_FALSE(gauge.KeepScanning());  // latched
}

TEST(BudgetGauge, FirstStopReasonIsSticky) {
  SearchBudget budget;
  budget.max_visited_sets = 1;
  budget.deadline = Deadline::AfterMillis(60'000);
  BudgetGauge gauge(&budget);
  EXPECT_FALSE(gauge.OnNodeExpanded(2));
  EXPECT_EQ(gauge.reason(), SaveTermination::kVisitBudget);
  // Later checks must not overwrite the recorded reason.
  EXPECT_FALSE(gauge.OnNodeExpanded(3));
  EXPECT_EQ(gauge.reason(), SaveTermination::kVisitBudget);
}

TEST(BudgetGauge, CancelFaultAtNthNodeStopsTheSearch) {
  // The injected-cancel equivalent of the old per-node hook: a kCancel
  // fault at the 2nd `search.node` hit trips the injector's cancellation
  // source, which the budget observes via its token on the same call (the
  // fault site is hit before the cancellation check).
  FaultInjector injector;
  FaultSpec spec;
  spec.site = "search.node";
  spec.kind = FaultKind::kCancel;
  spec.nth = 2;
  injector.Add(spec);
  AttachGlobalFaultInjector(&injector);
  SearchBudget budget;
  budget.cancellation = injector.token();
  EXPECT_FALSE(budget.IsUnlimited());
  BudgetGauge gauge(&budget);
  EXPECT_TRUE(gauge.OnNodeExpanded(1));   // hit 0
  EXPECT_TRUE(gauge.OnNodeExpanded(2));   // hit 1
  EXPECT_FALSE(gauge.OnNodeExpanded(3));  // hit 2: cancel fires, then check
  AttachGlobalFaultInjector(nullptr);
  EXPECT_EQ(gauge.reason(), SaveTermination::kCancelled);
  EXPECT_TRUE(injector.cancel_fired());
  EXPECT_EQ(injector.hit_count("search.node"), 3u);
  EXPECT_EQ(injector.fires("search.node"), 1u);
}

TEST(BudgetGauge, ErrorFaultAtNodeStopsWithFaultReason) {
  FaultInjector injector;
  FaultSpec spec;
  spec.site = "search.node";
  spec.kind = FaultKind::kError;
  spec.nth = 1;
  injector.Add(spec);
  AttachGlobalFaultInjector(&injector);
  BudgetGauge gauge(nullptr);  // even an unlimited budget honors faults
  EXPECT_TRUE(gauge.OnNodeExpanded(1));
  EXPECT_FALSE(gauge.OnNodeExpanded(2));
  AttachGlobalFaultInjector(nullptr);
  EXPECT_EQ(gauge.reason(), SaveTermination::kFault);
  EXPECT_TRUE(RetryPolicy::IsTransient(gauge.reason()));
}

TEST(BudgetGauge, NullBudgetIsUnlimited) {
  BudgetGauge gauge(nullptr);
  EXPECT_TRUE(gauge.OnNodeExpanded(1'000'000));
  EXPECT_TRUE(gauge.KeepScanning());
  EXPECT_FALSE(gauge.stopped());
}

}  // namespace
}  // namespace disc
