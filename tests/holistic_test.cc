#include "cleaning/holistic.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace disc {
namespace {

Relation NormalData(std::uint64_t seed = 41) {
  Rng rng(seed);
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 200; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Gaussian(10, 1.0), rng.Gaussian(-5, 2.0)}));
  }
  return r;
}

TEST(DiscoverRangeConstraints, OnePerNumericAttribute) {
  Relation data = NormalData();
  auto dcs = DiscoverRangeConstraints(data, 3.0);
  ASSERT_EQ(dcs.size(), 2u);
  EXPECT_EQ(dcs[0].attribute, 0u);
  EXPECT_EQ(dcs[1].attribute, 1u);
}

TEST(DiscoverRangeConstraints, FencesContainBulk) {
  Relation data = NormalData();
  auto dcs = DiscoverRangeConstraints(data, 3.0);
  std::size_t inside = 0;
  for (const Tuple& t : data) {
    if (t[0].num() >= dcs[0].lo && t[0].num() <= dcs[0].hi) ++inside;
  }
  // 3×IQR fences hold essentially all Gaussian data.
  EXPECT_GT(inside, data.size() * 99 / 100);
}

TEST(DiscoverRangeConstraints, SkipsStringAttributes) {
  Relation r(Schema({{"x", ValueKind::kNumeric}, {"s", ValueKind::kString}}));
  r.AppendUnchecked(Tuple{Value(1.0), Value("a")});
  r.AppendUnchecked(Tuple{Value(2.0), Value("b")});
  auto dcs = DiscoverRangeConstraints(r, 3.0);
  ASSERT_EQ(dcs.size(), 1u);
  EXPECT_EQ(dcs[0].attribute, 0u);
}

TEST(Holistic, ClampsGrossOutOfRangeValue) {
  Relation data = NormalData();
  data[0][0] = Value(1000.0);
  DistanceEvaluator ev(data.schema());
  Relation repaired = Holistic(data, ev);
  EXPECT_LT(repaired[0][0].num(), 100.0);
}

TEST(Holistic, RepairLandsOnFence) {
  Relation data = NormalData();
  data[0][0] = Value(1000.0);
  auto dcs = DiscoverRangeConstraints(data, 3.0);
  DistanceEvaluator ev(data.schema());
  Relation repaired = Holistic(data, ev);
  EXPECT_NEAR(repaired[0][0].num(), dcs[0].hi, 1e-9);
}

TEST(Holistic, SmallInRangeErrorNotCleaned) {
  // The paper's §5 point: weak DCs hold on slightly-wrong values, so the
  // error is not even detected.
  Relation data = NormalData();
  double original = data[0][0].num();
  data[0][0] = Value(original + 1.5);  // well inside the fences
  DistanceEvaluator ev(data.schema());
  Relation repaired = Holistic(data, ev);
  EXPECT_DOUBLE_EQ(repaired[0][0].num(), original + 1.5);
}

TEST(Holistic, CleanDataUnchanged) {
  Relation data = NormalData();
  DistanceEvaluator ev(data.schema());
  Relation repaired = Holistic(data, ev);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!(repaired[i] == data[i])) ++changed;
  }
  EXPECT_LE(changed, 3u);  // only potential fence-grazing points
}

TEST(Holistic, LowValueClampedToLowerFence) {
  Relation data = NormalData();
  data[5][1] = Value(-500.0);
  auto dcs = DiscoverRangeConstraints(data, 3.0);
  DistanceEvaluator ev(data.schema());
  Relation repaired = Holistic(data, ev);
  EXPECT_NEAR(repaired[5][1].num(), dcs[1].lo, 1e-9);
}

}  // namespace
}  // namespace disc
