#include "distance/edit_distance.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

namespace disc {
namespace {

TEST(Levenshtein, KnownValues) {
  EXPECT_DOUBLE_EQ(LevenshteinDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(LevenshteinDistance("abc", ""), 3.0);
  EXPECT_DOUBLE_EQ(LevenshteinDistance("", "ab"), 2.0);
  EXPECT_DOUBLE_EQ(LevenshteinDistance("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(LevenshteinDistance("abc", "abd"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinDistance("abc", "acb"), 2.0);
  EXPECT_DOUBLE_EQ(LevenshteinDistance("flaw", "lawn"), 2.0);
}

TEST(Levenshtein, Symmetry) {
  EXPECT_DOUBLE_EQ(LevenshteinDistance("house", "horse"),
                   LevenshteinDistance("horse", "house"));
}

using EditTriple = std::tuple<const char*, const char*, const char*>;

class EditTriangleTest : public testing::TestWithParam<EditTriple> {};

TEST_P(EditTriangleTest, LevenshteinTriangle) {
  auto [a, b, c] = GetParam();
  EXPECT_LE(LevenshteinDistance(a, c),
            LevenshteinDistance(a, b) + LevenshteinDistance(b, c) + 1e-12);
}

TEST_P(EditTriangleTest, WeightedTriangle) {
  auto [a, b, c] = GetParam();
  EXPECT_LE(WeightedEditDistance(a, c),
            WeightedEditDistance(a, b) + WeightedEditDistance(b, c) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Triples, EditTriangleTest,
    testing::Values(EditTriple{"abc", "abd", "xyz"},
                    EditTriple{"", "a", "ab"},
                    EditTriple{"RH10-OAG", "RH10-0AG", "RH10-XAG"},
                    EditTriple{"hello", "help", "yelp"},
                    EditTriple{"zip", "zap", "zop"},
                    EditTriple{"aaaa", "aa", "aaaaaa"}));

TEST(WeightedEdit, CaseCostsLess) {
  double case_diff = WeightedEditDistance("abc", "Abc");
  double sub = WeightedEditDistance("abc", "xbc");
  EXPECT_LT(case_diff, sub);
  EXPECT_DOUBLE_EQ(case_diff, 0.25);
}

TEST(WeightedEdit, ConfusableCostsHalf) {
  EXPECT_DOUBLE_EQ(WeightedEditDistance("O", "0"), 0.5);
  EXPECT_DOUBLE_EQ(WeightedEditDistance("l", "1"), 0.5);
}

TEST(WeightedEdit, PlainSubstitutionIsOne) {
  EXPECT_DOUBLE_EQ(WeightedEditDistance("a", "x"), 1.0);
}

TEST(WeightedEdit, NeverExceedsLevenshtein) {
  const char* words[] = {"RH10-OAG", "RH10-0AG", "abc", "a1c", "S5S", "sss"};
  for (const char* a : words) {
    for (const char* b : words) {
      EXPECT_LE(WeightedEditDistance(a, b), LevenshteinDistance(a, b) + 1e-12)
          << a << " vs " << b;
    }
  }
}

TEST(Confusable, SymmetricPairs) {
  EXPECT_TRUE(IsConfusablePair('O', '0'));
  EXPECT_TRUE(IsConfusablePair('0', 'O'));
  EXPECT_TRUE(IsConfusablePair('o', '0'));
  EXPECT_TRUE(IsConfusablePair('S', '5'));
  EXPECT_FALSE(IsConfusablePair('a', 'z'));
}

TEST(Levenshtein, IdentityOfIndiscernibles) {
  EXPECT_DOUBLE_EQ(LevenshteinDistance("same", "same"), 0.0);
  EXPECT_GT(LevenshteinDistance("same", "samE"), 0.0);
}

}  // namespace
}  // namespace disc
