#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace disc {
namespace {

/// Linearly separable 2-class data on a single threshold.
void ThresholdData(std::vector<std::vector<double>>* x, std::vector<int>* y,
                   std::size_t n = 100, std::uint64_t seed = 71) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    double v = rng.Uniform(0, 10);
    x->push_back({v, rng.Uniform(0, 1)});
    y->push_back(v < 5 ? 0 : 1);
  }
}

TEST(DecisionTree, LearnsSimpleThreshold) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  ThresholdData(&x, &y);
  DecisionTree tree;
  tree.Fit(x, y);
  EXPECT_EQ(tree.Predict({2.0, 0.5}), 0);
  EXPECT_EQ(tree.Predict({8.0, 0.5}), 1);
}

TEST(DecisionTree, PerfectTrainAccuracyUnlimitedDepth) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  ThresholdData(&x, &y);
  DecisionTree tree;
  tree.Fit(x, y);
  std::vector<int> pred = tree.PredictBatch(x);
  EXPECT_EQ(pred, y);
}

TEST(DecisionTree, XorNeedsDepthTwo) {
  std::vector<std::vector<double>> x{{0, 0}, {0, 1}, {1, 0}, {1, 1},
                                     {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::vector<int> y{0, 1, 1, 0, 0, 1, 1, 0};
  DecisionTree tree;
  tree.Fit(x, y);
  EXPECT_EQ(tree.PredictBatch(x), y);
  EXPECT_GE(tree.depth(), 2u);
}

TEST(DecisionTree, MaxDepthLimitsTree) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  ThresholdData(&x, &y, 200);
  DecisionTreeParams p;
  p.max_depth = 1;
  DecisionTree tree;
  tree.Fit(x, y, p);
  EXPECT_LE(tree.depth(), 1u);
}

TEST(DecisionTree, PureLeafNoSplit) {
  std::vector<std::vector<double>> x{{1}, {2}, {3}};
  std::vector<int> y{7, 7, 7};
  DecisionTree tree;
  tree.Fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.Predict({99}), 7);
}

TEST(DecisionTree, MultiClass) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(73);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 40; ++i) {
      x.push_back({c * 10.0 + rng.Uniform(0, 1), rng.Uniform(0, 1)});
      y.push_back(c);
    }
  }
  DecisionTree tree;
  tree.Fit(x, y);
  EXPECT_EQ(tree.Predict({0.5, 0.5}), 0);
  EXPECT_EQ(tree.Predict({10.5, 0.5}), 1);
  EXPECT_EQ(tree.Predict({20.5, 0.5}), 2);
}

TEST(DecisionTree, EmptyFitPredictsZero) {
  DecisionTree tree;
  tree.Fit({}, {});
  EXPECT_EQ(tree.Predict({1.0}), 0);
  EXPECT_EQ(tree.node_count(), 0u);
}

TEST(DecisionTree, MinSamplesSplitRespected) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  ThresholdData(&x, &y, 50);
  DecisionTreeParams p;
  p.min_samples_split = 1000;  // never split
  DecisionTree tree;
  tree.Fit(x, y, p);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, DuplicateFeatureValuesHandled) {
  std::vector<std::vector<double>> x{{1}, {1}, {1}, {2}, {2}};
  std::vector<int> y{0, 0, 0, 1, 1};
  DecisionTree tree;
  tree.Fit(x, y);
  EXPECT_EQ(tree.Predict({1}), 0);
  EXPECT_EQ(tree.Predict({2}), 1);
}

TEST(DecisionTree, IrrelevantFeatureIgnored) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(79);
  for (int i = 0; i < 100; ++i) {
    double signal = rng.Uniform(0, 10);
    double noise = rng.Uniform(0, 10);
    x.push_back({noise, signal});
    y.push_back(signal < 5 ? 0 : 1);
  }
  DecisionTree tree;
  DecisionTreeParams p;
  p.max_depth = 1;  // forced to pick the single best feature
  tree.Fit(x, y, p);
  // With depth 1 the tree must have split on the signal feature to reach
  // high accuracy.
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (tree.Predict(x[i]) == y[i]) ++correct;
  }
  EXPECT_GT(correct, 90);
}

}  // namespace
}  // namespace disc
