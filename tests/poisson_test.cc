#include "constraints/poisson.h"

#include <gtest/gtest.h>

#include <cmath>

namespace disc {
namespace {

TEST(Poisson, PmfSumsToOne) {
  PoissonModel model(4.0);
  double sum = 0;
  for (std::size_t k = 0; k < 60; ++k) sum += model.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Poisson, PmfKnownValues) {
  PoissonModel model(1.0);
  EXPECT_NEAR(model.Pmf(0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(model.Pmf(1), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(model.Pmf(2), std::exp(-1.0) / 2.0, 1e-12);
}

TEST(Poisson, ZeroRateDegenerate) {
  PoissonModel model(0.0);
  EXPECT_DOUBLE_EQ(model.Pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(model.Pmf(3), 0.0);
  EXPECT_DOUBLE_EQ(model.Cdf(0), 1.0);
}

TEST(Poisson, CdfMonotone) {
  PoissonModel model(7.5);
  double prev = 0;
  for (std::size_t k = 0; k < 40; ++k) {
    double c = model.Cdf(k);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
}

TEST(Poisson, CdfMatchesPmfSum) {
  PoissonModel model(3.2);
  double sum = 0;
  for (std::size_t k = 0; k <= 10; ++k) sum += model.Pmf(k);
  EXPECT_NEAR(model.Cdf(10), sum, 1e-9);
}

TEST(Poisson, ProbAtLeastComplementsCdf) {
  PoissonModel model(5.0);
  for (std::size_t eta = 1; eta < 15; ++eta) {
    EXPECT_NEAR(model.ProbAtLeast(eta), 1.0 - model.Cdf(eta - 1), 1e-12);
  }
  EXPECT_DOUBLE_EQ(model.ProbAtLeast(0), 1.0);
}

TEST(Poisson, ProbAtLeastDecreasingInEta) {
  PoissonModel model(12.0);
  double prev = 1.0;
  for (std::size_t eta = 1; eta < 40; ++eta) {
    double p = model.ProbAtLeast(eta);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(Poisson, PaperLetterExample) {
  // §2.1.2: λε = 51.36, η = 18 → p(N ≥ 18) ≈ 0.99 (very high).
  PoissonModel model(51.36);
  EXPECT_GE(model.ProbAtLeast(18), 0.99);
  // And the selected η at confidence 0.99 is at least 18.
  EXPECT_GE(model.LargestEtaWithConfidence(0.99), 18u);
}

TEST(Poisson, LargestEtaRespectsConfidence) {
  PoissonModel model(30.0);
  std::size_t eta = model.LargestEtaWithConfidence(0.99);
  ASSERT_GT(eta, 0u);
  EXPECT_GE(model.ProbAtLeast(eta), 0.99);
  EXPECT_LT(model.ProbAtLeast(eta + 1), 0.99);
}

TEST(Poisson, LargestEtaZeroWhenImpossible) {
  PoissonModel model(0.5);
  // With such a small rate even η=1 has p < 0.99.
  EXPECT_EQ(model.LargestEtaWithConfidence(0.99), 0u);
}

TEST(Poisson, LargeRateNumericallyStable) {
  PoissonModel model(5000.0);
  EXPECT_NEAR(model.ProbAtLeast(1), 1.0, 1e-9);
  std::size_t eta = model.LargestEtaWithConfidence(0.99);
  // η should be a bit below the mean (≈ λ − 2.33·sqrt(λ)).
  EXPECT_GT(eta, 4700u);
  EXPECT_LT(eta, 5000u);
}

class PoissonRateTest : public testing::TestWithParam<double> {};

TEST_P(PoissonRateTest, MeanMatchesRate) {
  PoissonModel model(GetParam());
  double mean = 0;
  for (std::size_t k = 0; k < 400; ++k) {
    mean += static_cast<double>(k) * model.Pmf(k);
  }
  EXPECT_NEAR(mean, GetParam(), 1e-6 * (1 + GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Rates, PoissonRateTest,
                         testing::Values(0.5, 1.0, 3.0, 10.0, 51.36, 100.0));

}  // namespace
}  // namespace disc
