#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace disc {
namespace {

TEST(ThreadPool, ReportsRequestedSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPool, SubmitReturnsValuesThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, TasksRunConcurrently) {
  // Two tasks that can only finish if they overlap in time.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  auto rendezvous = [&arrived] {
    arrived.fetch_add(1);
    // Wait (bounded) for the other task to arrive on the other worker.
    for (int spin = 0; spin < 20000 && arrived.load() < 2; ++spin) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return arrived.load();
  };
  std::future<int> f1 = pool.Submit(rendezvous);
  std::future<int> f2 = pool.Submit(rendezvous);
  EXPECT_EQ(f1.get(), 2);
  EXPECT_EQ(f2.get(), 2);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  std::future<int> ok = pool.Submit([] { return 1; });
  std::future<int> bad = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.Submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, DestructorDrainsQueueAndJoins) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        completed.fetch_add(1);
      });
    }
    // Destructor runs here: every already-submitted task must finish.
  }
  EXPECT_EQ(completed.load(), 50);
}

TEST(ThreadPool, BoundedQueueAppliesBackpressure) {
  // Capacity 2 with 16 slow tasks: Submit must block rather than grow the
  // queue, and every task must still run exactly once.
  ThreadPool pool(2, /*queue_capacity=*/2);
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&completed] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      completed.fetch_add(1);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPool, SubmitAfterShutdownBreaksPromise) {
  ThreadPool pool(1);
  pool.Shutdown();
  std::future<int> f = pool.Submit([] { return 3; });
  EXPECT_THROW(f.get(), std::future_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([] { return 5; });
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_EQ(f.get(), 5);
}

TEST(ThreadPool, ShutdownWithPendingTasksStress) {
  // Shutdown racing a deep backlog: four producers pump tasks through a
  // tiny bounded queue while the main thread shuts the pool down mid-drain.
  // Contract under test (the drain-and-skip guarantee batch saving relies
  // on): Shutdown never deadlocks against producers blocked on the full
  // queue, every accepted task either runs or surfaces as a broken promise,
  // and nothing runs after the destructor. Run under TSan in CI.
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 200;
  std::atomic<int> completed{0};
  std::atomic<int> broken{0};
  {
    ThreadPool pool(2, /*queue_capacity=*/4);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&pool, &completed, &broken] {
        for (int i = 0; i < kTasksPerProducer; ++i) {
          std::future<void> f = pool.Submit([&completed] {
            completed.fetch_add(1, std::memory_order_relaxed);
          });
          try {
            f.get();
          } catch (const std::future_error&) {
            // Rejected by a pool already shutting down — the documented
            // drain-and-skip path.
            broken.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    // Let the pipeline reach a steady state, then yank it mid-drain.
    while (completed.load() < 20) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    pool.Shutdown();
    for (auto& t : producers) t.join();
  }
  EXPECT_GE(completed.load(), 20);
  EXPECT_EQ(completed.load() + broken.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPool, ConcurrentProducers) {
  ThreadPool pool(4, /*queue_capacity=*/8);
  std::atomic<int> sum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &sum] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 25; ++i) {
        futures.push_back(pool.Submit([&sum] { sum.fetch_add(1); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(sum.load(), 100);
}

}  // namespace
}  // namespace disc
