// BatchProgressTracker / ProgressRegistry unit tests, plus the key
// end-to-end property: attaching the global progress registry never
// perturbs the bit-identical-across-thread-counts contract of SaveOutliers.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/random.h"
#include "core/outlier_saving.h"
#include "data/generators.h"
#include "distance/evaluator.h"
#include "obs/progress.h"

namespace disc {
namespace {

TEST(BatchProgressTracker, CountsPerTerminationKind) {
  BatchProgressTracker tracker(1, "save_all", 6, Deadline::Infinite());
  tracker.RecordOutlier(SaveTermination::kCompleted, 1000);
  tracker.RecordOutlier(SaveTermination::kCompleted, 2000);
  tracker.RecordOutlier(SaveTermination::kInfeasible, 3000);
  tracker.RecordOutlier(SaveTermination::kDeadline, 4000);
  tracker.RecordOutlier(SaveTermination::kCancelled, 0);  // drained: no sample
  tracker.RecordOutlier(SaveTermination::kVisitBudget, 5000);

  BatchProgressTracker::Snapshot snap = tracker.Snap();
  EXPECT_EQ(snap.total, 6u);
  // kCompleted + kInfeasible are definitive verdicts.
  EXPECT_EQ(snap.completed, 3u);
  EXPECT_EQ(snap.infeasible, 1u);
  EXPECT_EQ(snap.degraded, 3u);
  EXPECT_EQ(snap.finished, 6u);
  EXPECT_FALSE(snap.done);
  // The zero-wall drained outlier is excluded from the percentile samples.
  EXPECT_EQ(snap.wall_samples, 5u);
  EXPECT_GT(snap.p50_wall_seconds, 0.0);
  EXPECT_GE(snap.p99_wall_seconds, snap.p50_wall_seconds);

  tracker.MarkDone();
  EXPECT_TRUE(tracker.Snap().done);
}

TEST(BatchProgressTracker, DeadlineSlackReportedWhileUnexpired) {
  BatchProgressTracker tracker(1, "save_all", 1,
                               Deadline::AfterMillis(60 * 1000));
  BatchProgressTracker::Snapshot snap = tracker.Snap();
  EXPECT_TRUE(snap.has_deadline);
  EXPECT_GT(snap.deadline_slack_seconds, 0.0);
  EXPECT_LE(snap.deadline_slack_seconds, 60.0);

  BatchProgressTracker unbudgeted(2, "save_all", 1, Deadline::Infinite());
  EXPECT_FALSE(unbudgeted.Snap().has_deadline);
  EXPECT_EQ(unbudgeted.Snap().deadline_slack_seconds, 0.0);
}

TEST(BatchProgressTracker, SampleRingOverflowKeepsNewestCapacitySamples) {
  const std::size_t cap = BatchProgressTracker::kSampleCapacity;
  BatchProgressTracker tracker(1, "save_all", 3 * cap, Deadline::Infinite());
  for (std::size_t i = 0; i < 3 * cap; ++i) {
    tracker.RecordOutlier(SaveTermination::kCompleted, 1000 * (i + 1));
  }
  BatchProgressTracker::Snapshot snap = tracker.Snap();
  EXPECT_EQ(snap.finished, 3 * cap);
  EXPECT_EQ(snap.wall_samples, cap);
  // Every retained sample comes from the newest `cap` recordings, so the
  // median sits in the newest third's range (> 2*cap microseconds).
  EXPECT_GT(snap.p50_wall_seconds, 2.0 * static_cast<double>(cap) * 1e-6);
}

TEST(BatchProgressTracker, ConcurrentRecordingIsExactAfterJoin) {
  const std::size_t kThreads = 8;
  const std::size_t kPerThread = 5000;
  BatchProgressTracker tracker(1, "save_all", kThreads * kPerThread,
                               Deadline::Infinite());
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        tracker.RecordOutlier(t % 2 == 0 ? SaveTermination::kCompleted
                                         : SaveTermination::kDeadline,
                              100);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  tracker.MarkDone();
  BatchProgressTracker::Snapshot snap = tracker.Snap();
  EXPECT_EQ(snap.completed, kThreads / 2 * kPerThread);
  EXPECT_EQ(snap.degraded, kThreads / 2 * kPerThread);
  EXPECT_EQ(snap.finished, kThreads * kPerThread);
}

TEST(ProgressRegistry, RetainsFinishedBatchesUpToRetention) {
  ProgressRegistry registry;
  const std::size_t extra = 3;
  for (std::size_t i = 0;
       i < ProgressRegistry::kFinishedRetention + extra; ++i) {
    auto tracker = registry.StartBatch("save_all", 1, Deadline::Infinite());
    tracker->RecordOutlier(SaveTermination::kCompleted, 100);
    tracker->MarkDone();
  }
  EXPECT_EQ(registry.batches_started(),
            ProgressRegistry::kFinishedRetention + extra);
  std::vector<BatchProgressTracker::Snapshot> snaps = registry.Snapshots();
  ASSERT_EQ(snaps.size(), ProgressRegistry::kFinishedRetention);
  // Oldest finished batches were evicted: the retained window starts after
  // the `extra` evictees, in start order.
  EXPECT_EQ(snaps.front().id, extra + 1);
  EXPECT_EQ(snaps.back().id, ProgressRegistry::kFinishedRetention + extra);
}

TEST(ProgressRegistry, NeverEvictsInFlightBatches) {
  ProgressRegistry registry;
  // More in-flight batches than the retention budget: all stay visible.
  std::vector<std::shared_ptr<BatchProgressTracker>> live;
  for (std::size_t i = 0;
       i < ProgressRegistry::kFinishedRetention + 4; ++i) {
    live.push_back(registry.StartBatch("save_all", 10, Deadline::Infinite()));
  }
  EXPECT_EQ(registry.Snapshots().size(),
            ProgressRegistry::kFinishedRetention + 4);
}

/// Seeded noisy dataset (same construction as parallel_save_test): three
/// Gaussian clusters in 4-D with corrupted rows and two natural outliers.
Relation MakeNoisyDataset(std::uint64_t seed) {
  std::vector<ClusterSpec> specs = {
      {{0, 0, 0, 0}, 0.5, 80},
      {{10, 10, 0, 0}, 0.5, 80},
      {{0, 10, 10, 0}, 0.5, 80},
  };
  LabeledRelation mixture = GenerateGaussianMixture(specs, seed);
  Rng rng(seed + 1);
  for (std::size_t row = 3; row < mixture.data.size(); row += 11) {
    std::size_t a = static_cast<std::size_t>(rng.UniformInt(0, 3));
    mixture.data[row][a] =
        Value(mixture.data[row][a].num() + 20.0 + rng.Uniform() * 5.0);
  }
  AppendNaturalOutliers(&mixture, 2, 60.0, seed + 2);
  return std::move(mixture.data);
}

TEST(ProgressTracking, SaveOutliersBitIdenticalAcrossThreadCounts) {
  Relation data = MakeNoisyDataset(/*seed=*/23);
  DistanceEvaluator evaluator(data.schema());

  OutlierSavingOptions options;
  options.constraint = {1.6, 5};
  options.save.kappa = 2;

  // Reference run with tracking disabled.
  ASSERT_EQ(GlobalProgress(), nullptr);
  options.num_threads = 1;
  SavedDataset reference = SaveOutliers(data, evaluator, options);
  ASSERT_TRUE(reference.status.ok());
  ASSERT_GT(reference.records.size(), 0u);

  ProgressRegistry registry;
  AttachGlobalProgress(&registry);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4},
                              std::size_t{8}}) {
    options.num_threads = threads;
    SavedDataset tracked = SaveOutliers(data, evaluator, options);
    ASSERT_TRUE(tracked.status.ok());
    ASSERT_EQ(tracked.records.size(), reference.records.size());
    for (std::size_t i = 0; i < tracked.records.size(); ++i) {
      const OutlierRecord& a = reference.records[i];
      const OutlierRecord& b = tracked.records[i];
      EXPECT_EQ(a.row, b.row) << "threads=" << threads;
      EXPECT_EQ(a.adjusted, b.adjusted) << "threads=" << threads;
      EXPECT_EQ(a.cost, b.cost) << "threads=" << threads;  // bit-identical
      EXPECT_EQ(a.adjusted_attributes.bits(), b.adjusted_attributes.bits());
      EXPECT_EQ(a.index_queries, b.index_queries) << "threads=" << threads;
    }
  }
  AttachGlobalProgress(nullptr);

  // Each tracked run registered exactly one batch, fully accounted for.
  std::vector<BatchProgressTracker::Snapshot> snaps = registry.Snapshots();
  ASSERT_EQ(snaps.size(), 3u);
  for (const BatchProgressTracker::Snapshot& snap : snaps) {
    EXPECT_EQ(snap.label, "save_all");
    EXPECT_EQ(snap.total, reference.records.size());
    EXPECT_EQ(snap.finished, snap.total);
    EXPECT_TRUE(snap.done);
    EXPECT_EQ(snap.degraded, 0u);
  }
}

}  // namespace
}  // namespace disc
