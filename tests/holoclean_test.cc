#include "cleaning/holoclean.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "eval/repair_metrics.h"

namespace disc {
namespace {

Relation ClusterWithOutlier(std::uint64_t seed = 51) {
  Rng rng(seed);
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 60; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5)}));
  }
  r.AppendUnchecked(Tuple::Numeric({0.2, 40.0}));
  return r;
}

HolocleanOptions DefaultOptions() {
  HolocleanOptions opts;
  opts.constraint = {1.5, 5};
  return opts;
}

TEST(Holoclean, MovesOutlierTowardData) {
  Relation data = ClusterWithOutlier();
  DistanceEvaluator ev(data.schema());
  Relation repaired = Holoclean(data, ev, DefaultOptions());
  std::size_t last = data.size() - 1;
  // The corrupted y value should have been pulled back toward the cluster.
  EXPECT_LT(std::abs(repaired[last][1].num()), 40.0);
}

TEST(Holoclean, CleanTuplesUntouched) {
  Relation data = ClusterWithOutlier();
  DistanceEvaluator ev(data.schema());
  Relation repaired = Holoclean(data, ev, DefaultOptions());
  for (std::size_t i = 0; i + 1 < data.size(); ++i) {
    EXPECT_EQ(repaired[i], data[i]) << "row " << i;
  }
}

TEST(Holoclean, RepairedValueComesFromCleanDomain) {
  Relation data = ClusterWithOutlier();
  DistanceEvaluator ev(data.schema());
  Relation repaired = Holoclean(data, ev, DefaultOptions());
  std::size_t last = data.size() - 1;
  if (!(repaired[last][1] == data[last][1])) {
    // Changed cells take values that exist in the clean portion.
    bool in_domain = false;
    for (std::size_t i = 0; i + 1 < data.size(); ++i) {
      if (data[i][1] == repaired[last][1]) {
        in_domain = true;
        break;
      }
    }
    EXPECT_TRUE(in_domain);
  }
}

TEST(Holoclean, TendsToModifyMultipleAttributes) {
  // Figure 10(c)'s observation: HoloClean re-decides every cell of a noisy
  // tuple and often over-changes. With continuous data, even the undamaged
  // attribute is usually swapped for a frequent candidate.
  Relation data = ClusterWithOutlier();
  DistanceEvaluator ev(data.schema());
  Relation repaired = Holoclean(data, ev, DefaultOptions());
  std::size_t last = data.size() - 1;
  AttributeSet changed = ModifiedAttributes(data, repaired, last);
  EXPECT_GE(changed.size(), 1u);
}

TEST(Holoclean, NoOutliersIsNoOp) {
  Rng rng(60);
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 50; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Gaussian(0, 0.4), rng.Gaussian(0, 0.4)}));
  }
  DistanceEvaluator ev(r.schema());
  Relation repaired = Holoclean(r, ev, DefaultOptions());
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(repaired[i], r[i]);
  }
}

TEST(Holoclean, DeterministicForFixedSeed) {
  Relation data = ClusterWithOutlier();
  DistanceEvaluator ev(data.schema());
  Relation a = Holoclean(data, ev, DefaultOptions());
  Relation b = Holoclean(data, ev, DefaultOptions());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Holoclean, EmptyRelation) {
  Relation r(Schema::Numeric(2));
  DistanceEvaluator ev(r.schema());
  Relation repaired = Holoclean(r, ev, DefaultOptions());
  EXPECT_TRUE(repaired.empty());
}

}  // namespace
}  // namespace disc
