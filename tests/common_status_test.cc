#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace disc {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryFunctionsSetCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(Status, ExecutionControlCodeNames) {
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DEADLINE_EXCEEDED: late");
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "CANCELLED: stop");
  EXPECT_EQ(Status::ResourceExhausted("cap").ToString(),
            "RESOURCE_EXHAUSTED: cap");
}

TEST(Status, MessagePreserved) {
  Status s = Status::NotFound("the thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "the thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: the thing");
}

TEST(Status, StreamOperator) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "INTERNAL: boom");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

}  // namespace
}  // namespace disc
