#include "index/kth_neighbor_cache.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "index/brute_force_index.h"
#include "index/kd_tree.h"

namespace disc {
namespace {

Relation LineRelation() {
  // Points at 0, 1, 2, ..., 9 on a line.
  Relation r(Schema::Numeric(1));
  for (int i = 0; i < 10; ++i) r.AppendUnchecked(Tuple::Numeric({double(i)}));
  return r;
}

TEST(KthNeighborCache, EtaOneIsSelf) {
  Relation r = LineRelation();
  KdTree tree(r);
  KthNeighborCache cache(r, tree, 1);
  // With self counting, the 1st neighbor of any tuple is itself: δ = 0.
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_DOUBLE_EQ(cache.delta(i), 0.0);
  }
}

TEST(KthNeighborCache, EtaTwoIsNearestOther) {
  Relation r = LineRelation();
  KdTree tree(r);
  KthNeighborCache cache(r, tree, 2);
  // δ_2 = distance to the nearest other tuple = 1 for all points here.
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_DOUBLE_EQ(cache.delta(i), 1.0) << "row " << i;
  }
}

TEST(KthNeighborCache, EtaThreeOnLine) {
  Relation r = LineRelation();
  KdTree tree(r);
  KthNeighborCache cache(r, tree, 3);
  // Interior points have two neighbors at distance 1, so δ_3 = 1;
  // endpoints must reach distance 2.
  EXPECT_DOUBLE_EQ(cache.delta(0), 2.0);
  EXPECT_DOUBLE_EQ(cache.delta(9), 2.0);
  EXPECT_DOUBLE_EQ(cache.delta(5), 1.0);
}

TEST(KthNeighborCache, NoSelfCountShiftsByOne) {
  Relation r = LineRelation();
  KdTree tree(r);
  KthNeighborCache with_self(r, tree, 2, /*self_counts=*/true);
  KthNeighborCache without_self(r, tree, 1, /*self_counts=*/false);
  // η=2 including self == η=1 excluding self.
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_self.delta(i), without_self.delta(i));
  }
}

TEST(KthNeighborCache, EtaLargerThanNIsInfinite) {
  Relation r = LineRelation();
  KdTree tree(r);
  KthNeighborCache cache(r, tree, 100);
  EXPECT_TRUE(std::isinf(cache.delta(0)));
}

TEST(KthNeighborCache, EtaZeroIsZero) {
  Relation r = LineRelation();
  KdTree tree(r);
  KthNeighborCache cache(r, tree, 0);
  EXPECT_DOUBLE_EQ(cache.delta(3), 0.0);
}

TEST(KthNeighborCache, DeltaIsMonotoneInEta) {
  Rng rng(3);
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 60; ++i) {
    r.AppendUnchecked(Tuple::Numeric({rng.Uniform(0, 10), rng.Uniform(0, 10)}));
  }
  KdTree tree(r);
  KthNeighborCache c2(r, tree, 2);
  KthNeighborCache c5(r, tree, 5);
  KthNeighborCache c9(r, tree, 9);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_LE(c2.delta(i), c5.delta(i));
    EXPECT_LE(c5.delta(i), c9.delta(i));
  }
}

TEST(KthNeighborCache, ConsistentAcrossIndexes) {
  Rng rng(5);
  Relation r(Schema::Numeric(3));
  for (int i = 0; i < 40; ++i) {
    r.AppendUnchecked(Tuple::Numeric(
        {rng.Uniform(0, 5), rng.Uniform(0, 5), rng.Uniform(0, 5)}));
  }
  DistanceEvaluator ev(r.schema());
  BruteForceIndex brute(r, ev);
  KdTree tree(r);
  KthNeighborCache a(r, brute, 4);
  KthNeighborCache b(r, tree, 4);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(a.delta(i), b.delta(i), 1e-9);
  }
}

}  // namespace
}  // namespace disc
