#include "cleaning/sse.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace disc {
namespace {

Relation GaussianInliers(std::size_t count, std::size_t dims,
                         std::uint64_t seed = 61) {
  Rng rng(seed);
  Relation r(Schema::Numeric(dims));
  for (std::size_t i = 0; i < count; ++i) {
    Tuple t(dims);
    for (std::size_t d = 0; d < dims; ++d) t[d] = Value(rng.Gaussian(0, 1.0));
    r.AppendUnchecked(std::move(t));
  }
  return r;
}

TEST(Sse, ExplainsSingleBrokenAttribute) {
  Relation inliers = GaussianInliers(100, 3);
  DistanceEvaluator ev(inliers.schema());
  Tuple outlier = Tuple::Numeric({0.1, 30.0, -0.2});
  AttributeSet explained = ExplainOutlierSse(inliers, ev, outlier);
  EXPECT_TRUE(explained.contains(1));
  EXPECT_FALSE(explained.contains(0));
  EXPECT_FALSE(explained.contains(2));
}

TEST(Sse, ExplainsAllAttributesForNaturalOutlier) {
  Relation inliers = GaussianInliers(100, 3);
  DistanceEvaluator ev(inliers.schema());
  Tuple natural = Tuple::Numeric({50, -50, 50});
  AttributeSet explained = ExplainOutlierSse(inliers, ev, natural);
  EXPECT_EQ(explained.size(), 3u);
}

TEST(Sse, InlierLikePointHasNoExplanation) {
  Relation inliers = GaussianInliers(100, 3);
  DistanceEvaluator ev(inliers.schema());
  Tuple normal = Tuple::Numeric({0.3, -0.4, 0.1});
  AttributeSet explained = ExplainOutlierSse(inliers, ev, normal);
  EXPECT_TRUE(explained.empty());
}

TEST(Sse, TwoBrokenAttributes) {
  Relation inliers = GaussianInliers(150, 4);
  DistanceEvaluator ev(inliers.schema());
  Tuple outlier = Tuple::Numeric({25.0, 0.1, -30.0, 0.0});
  AttributeSet explained = ExplainOutlierSse(inliers, ev, outlier);
  EXPECT_TRUE(explained.contains(0));
  EXPECT_TRUE(explained.contains(2));
}

TEST(Sse, ThresholdControlsSensitivity) {
  Relation inliers = GaussianInliers(100, 2);
  DistanceEvaluator ev(inliers.schema());
  Tuple mild = Tuple::Numeric({0.0, 6.0});
  SseOptions strict;
  strict.separability_zscore = 20.0;
  SseOptions loose;
  loose.separability_zscore = 1.0;
  EXPECT_LE(ExplainOutlierSse(inliers, ev, mild, strict).size(),
            ExplainOutlierSse(inliers, ev, mild, loose).size());
}

TEST(Sse, EmptyInliersGiveEmptyExplanation) {
  Relation inliers(Schema::Numeric(2));
  DistanceEvaluator ev(inliers.schema());
  AttributeSet explained =
      ExplainOutlierSse(inliers, ev, Tuple::Numeric({1, 2}));
  EXPECT_TRUE(explained.empty());
}

}  // namespace
}  // namespace disc
