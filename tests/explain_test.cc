// The explain layer (DESIGN.md §14): event gap semantics, per-search
// summaries, the per-worker collector, the JSONL sink, the /explainz
// recorder, the batch metrics flush — and the end-to-end contract that the
// event stream of a real save re-derives the search's own SearchStats
// counters on both the DISC and the exact path.

#include "obs/explain.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/metrics.h"
#include "common/random.h"
#include "core/outlier_saving.h"
#include "data/generators.h"
#include "distance/evaluator.h"

namespace disc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ExplainEvent MakeEvent(std::uint64_t x_bits, ExplainAction action,
                       double lb = std::numeric_limits<double>::quiet_NaN(),
                       double ub = std::numeric_limits<double>::quiet_NaN(),
                       double incumbent = kInf) {
  ExplainEvent event;
  event.x_bits = x_bits;
  event.action = action;
  event.lb = lb;
  event.ub = ub;
  event.incumbent = incumbent;
  return event;
}

std::uint64_t Count(const ExplainSummary& summary, ExplainAction action) {
  return summary.action_counts[static_cast<std::size_t>(action)];
}

TEST(ExplainEvent, GapNeedsBothFiniteBounds) {
  ExplainEvent event;
  EXPECT_TRUE(std::isnan(event.gap()));  // both bounds default to NaN
  event.lb = 2.0;
  EXPECT_TRUE(std::isnan(event.gap()));
  event.ub = 5.0;
  EXPECT_DOUBLE_EQ(event.gap(), 3.0);
  event.lb = kInf;  // infeasible lower bound: no meaningful gap
  EXPECT_TRUE(std::isnan(event.gap()));
}

TEST(ExplainEvent, ActionNamesAreTheSerializedContract) {
  EXPECT_STREQ(ExplainActionName(ExplainAction::kExpand), "expand");
  EXPECT_STREQ(ExplainActionName(ExplainAction::kPruneLb), "prune_lb");
  EXPECT_STREQ(ExplainActionName(ExplainAction::kPruneBudget),
               "prune_budget");
  EXPECT_STREQ(ExplainActionName(ExplainAction::kInfeasible), "infeasible");
  EXPECT_STREQ(ExplainActionName(ExplainAction::kIncumbentUpdate),
               "incumbent_update");
  EXPECT_STREQ(ExplainActionName(ExplainAction::kMemoHit), "memo_hit");
  EXPECT_STREQ(ExplainActionName(ExplainAction::kRevertRefine),
               "revert_refine");
}

TEST(SearchExplain, RecordCapsEventsAndCountsDrops) {
  SearchExplain explain;
  for (std::size_t i = 0; i < kExplainMaxEventsPerSearch + 3; ++i) {
    explain.Record(MakeEvent(i, ExplainAction::kExpand));
  }
  EXPECT_EQ(explain.events.size(), kExplainMaxEventsPerSearch);
  EXPECT_EQ(explain.dropped_events, 3u);
  // The stored prefix is the chronological prefix, not a sample.
  EXPECT_EQ(explain.events.back().x_bits, kExplainMaxEventsPerSearch - 1);
}

/// A small feasible search log touching every derived-summary feature:
/// a seed splice, a pruned and an infeasible subtree, a memo hit, one real
/// incumbent adoption, and a post-pass revert.
ExplainSearchLog MakeRichLog() {
  ExplainSearchLog log;
  log.ordinal = 9;
  log.trace_id = 1234;
  log.feasible = true;
  log.final_cost = 7.5;

  ExplainEvent seed =
      MakeEvent(0, ExplainAction::kIncumbentUpdate, /*lb=*/NAN, /*ub=*/10.0,
                /*incumbent=*/10.0);
  seed.seed = true;
  seed.donor_row = 7;
  log.events.push_back(seed);
  log.events.push_back(
      MakeEvent(0b0001, ExplainAction::kExpand, 2.0, 12.0, 10.0));
  log.events.push_back(MakeEvent(0b0010, ExplainAction::kPruneLb, 11.0,
                                 /*ub=*/NAN, 10.0));
  ExplainEvent adopt =
      MakeEvent(0b0101, ExplainAction::kIncumbentUpdate, 1.0, 8.0, 8.0);
  adopt.donor_row = 3;
  log.events.push_back(adopt);
  log.events.push_back(MakeEvent(0b0001, ExplainAction::kMemoHit, /*lb=*/NAN,
                                 /*ub=*/NAN, 8.0));
  log.events.push_back(MakeEvent(0b1000, ExplainAction::kInfeasible, kInf));
  log.events.push_back(
      MakeEvent(0b0100, ExplainAction::kRevertRefine, /*lb=*/NAN, 7.5, 7.5));

  log.visited_sets = 4;  // non-seed, non-memo node events: expand,
                         // prune_lb, adopt, infeasible
  log.lb_prunes = 2;     // prune_lb + infeasible
  log.nodes_expanded = 1;
  log.revert_refines = 1;
  return log;
}

TEST(Summarize, DerivesActionCountsTimelineAndBoundRatios) {
  const ExplainSearchLog log = MakeRichLog();
  const ExplainSummary summary = Summarize(log);

  EXPECT_EQ(summary.ordinal, 9u);
  EXPECT_EQ(summary.events, log.events.size());
  EXPECT_EQ(Count(summary, ExplainAction::kExpand), 1u);
  EXPECT_EQ(Count(summary, ExplainAction::kPruneLb), 1u);
  EXPECT_EQ(Count(summary, ExplainAction::kPruneBudget), 0u);
  EXPECT_EQ(Count(summary, ExplainAction::kInfeasible), 1u);
  EXPECT_EQ(Count(summary, ExplainAction::kIncumbentUpdate), 2u);
  EXPECT_EQ(Count(summary, ExplainAction::kMemoHit), 1u);
  EXPECT_EQ(Count(summary, ExplainAction::kRevertRefine), 1u);

  // The seed adoption is the first feasible answer, at depth |∅| = 0.
  EXPECT_EQ(summary.first_feasible_depth, 0);
  ASSERT_EQ(summary.timeline.size(), 2u);
  EXPECT_EQ(summary.timeline[0].event_index, 0u);
  EXPECT_EQ(summary.timeline[0].depth, 0u);
  EXPECT_DOUBLE_EQ(summary.timeline[0].cost, 10.0);
  EXPECT_EQ(summary.timeline[1].event_index, 3u);
  EXPECT_EQ(summary.timeline[1].depth, 2u);  // popcount(0b0101)
  EXPECT_DOUBLE_EQ(summary.timeline[1].cost, 8.0);

  // Best finite lb is the pruning bound 11; first finite ub is the seed 10.
  EXPECT_DOUBLE_EQ(summary.max_lb_over_cost, 11.0 / 7.5);
  EXPECT_DOUBLE_EQ(summary.first_ub_over_cost, 10.0 / 7.5);

  // Gaps exist only where both bounds are finite: expand (10) + adopt (7).
  EXPECT_EQ(summary.gap_events, 2u);
  EXPECT_DOUBLE_EQ(summary.min_gap, 7.0);
  EXPECT_DOUBLE_EQ(summary.mean_gap, 8.5);
}

TEST(Summarize, InfeasibleSearchHasNoRatiosOrTimeline) {
  ExplainSearchLog log;
  log.feasible = false;
  log.events.push_back(MakeEvent(0b1, ExplainAction::kInfeasible, kInf));
  log.events.push_back(MakeEvent(0b10, ExplainAction::kPruneLb, 4.0));

  const ExplainSummary summary = Summarize(log);
  EXPECT_EQ(summary.first_feasible_depth, -1);
  EXPECT_TRUE(summary.timeline.empty());
  EXPECT_TRUE(std::isnan(summary.max_lb_over_cost));
  EXPECT_TRUE(std::isnan(summary.first_ub_over_cost));
  EXPECT_EQ(summary.gap_events, 0u);
  EXPECT_TRUE(std::isnan(summary.min_gap));
  EXPECT_TRUE(std::isnan(summary.mean_gap));
}

TEST(Summarize, TimelineCapKeepsEarliestAdoptionsPlusTheFinalOne) {
  ExplainSearchLog log;
  log.feasible = true;
  log.final_cost = 1.0;
  const std::size_t adoptions = kExplainTimelineCap + 5;
  for (std::size_t i = 0; i < adoptions; ++i) {
    const double cost = static_cast<double>(adoptions - i);
    log.events.push_back(MakeEvent(
        (1u << (i % 4)), ExplainAction::kIncumbentUpdate, NAN, cost, cost));
  }

  const ExplainSummary summary = Summarize(log);
  ASSERT_EQ(summary.timeline.size(), kExplainTimelineCap);
  EXPECT_EQ(summary.timeline.front().event_index, 0u);
  EXPECT_EQ(summary.timeline[kExplainTimelineCap - 2].event_index,
            kExplainTimelineCap - 2);
  // The last slot always holds the final adoption, not the cap-th one.
  EXPECT_EQ(summary.timeline.back().event_index, adoptions - 1);
  EXPECT_DOUBLE_EQ(summary.timeline.back().cost, 1.0);
}

TEST(ExplainCollector, DrainSortsByOrdinalThenAttemptAndClamps) {
  ExplainCollector collector(3);
  auto log = [](std::uint64_t ordinal, std::uint64_t attempt) {
    ExplainSearchLog l;
    l.ordinal = ordinal;
    l.attempt = attempt;
    return l;
  };
  collector.Record(0, log(5, 1));
  collector.Record(2, log(1, 2));
  collector.Record(1, log(1, 1));
  collector.Record(99, log(3, 1));  // out-of-range slot clamps to the last

  std::vector<ExplainSearchLog> drained = collector.Drain();
  ASSERT_EQ(drained.size(), 4u);
  EXPECT_EQ(drained[0].ordinal, 1u);
  EXPECT_EQ(drained[0].attempt, 1u);
  EXPECT_EQ(drained[1].ordinal, 1u);
  EXPECT_EQ(drained[1].attempt, 2u);
  EXPECT_EQ(drained[2].ordinal, 3u);
  EXPECT_EQ(drained[3].ordinal, 5u);
  EXPECT_TRUE(collector.Drain().empty());  // drain moves, nothing remains
}

TEST(AppendExplainSearchJson, OmitsNonFiniteAndFlagsInfeasibleLb) {
  ExplainSearchLog log;
  log.feasible = false;  // final_cost stays NaN
  log.events.push_back(MakeEvent(0b1, ExplainAction::kInfeasible, kInf));
  ExplainEvent bounded =
      MakeEvent(0b10, ExplainAction::kExpand, 1.5, 4.0, 6.0);
  bounded.donor_row = 42;
  log.events.push_back(bounded);

  JsonWriter json;
  AppendExplainSearchJson(json, log);
  const std::string& out = json.str();
  EXPECT_EQ(out.find("\"cost\":"), std::string::npos) << out;
  EXPECT_NE(out.find("\"lb_infeasible\":true"), std::string::npos) << out;
  EXPECT_NE(out.find("\"gap\":2.5"), std::string::npos) << out;
  EXPECT_NE(out.find("\"donor_row\":42"), std::string::npos) << out;
  // The infeasible event's infinite lb must not leak as a bare "lb".
  EXPECT_EQ(out.find("\"lb\":inf"), std::string::npos) << out;
  EXPECT_NE(out.find("\"summary\":"), std::string::npos) << out;
}

TEST(ExplainJsonlSink, WritesOneLinePerLogAndCloseIsIdempotent) {
  const std::string path =
      ::testing::TempDir() + "disc_explain_sink_test.jsonl";
  {
    ExplainJsonlSink sink(path);
    ExplainSearchLog first = MakeRichLog();
    first.ordinal = 0;
    ExplainSearchLog second = MakeRichLog();
    second.ordinal = 1;
    sink.Emit(first);
    sink.Emit(second);
    EXPECT_TRUE(sink.ok());
    EXPECT_TRUE(sink.Close().ok());
    EXPECT_TRUE(sink.Close().ok());  // idempotent
    sink.Emit(first);                // after Close: dropped, not appended
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ordinal\":" + std::to_string(lines)),
              std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(ExplainJsonlSink, UnopenablePathSurfacesOnClose) {
  ExplainJsonlSink sink("/nonexistent-dir-disc-explain/out.jsonl");
  sink.Emit(MakeRichLog());
  EXPECT_TRUE(sink.ok());  // buffered writes cannot fail yet
  EXPECT_FALSE(sink.Close().ok());
  EXPECT_FALSE(sink.ok());
  EXPECT_FALSE(sink.Close().ok());  // the error sticks
}

TEST(ExplainRecorder, TotalsRecentRingAndSlowestTable) {
  ExplainRecorder recorder(/*recent_capacity=*/4, /*slowest_capacity=*/2);
  const std::uint64_t walls[] = {10, 60, 30, 20, 50, 40};
  for (std::size_t i = 0; i < 6; ++i) {
    ExplainSearchLog log = MakeRichLog();
    log.ordinal = 100 + i;
    log.wall_nanos = walls[i];
    recorder.RecordSearch(log);
  }

  const std::string body = recorder.ToJson();
  EXPECT_NE(body.find("\"searches\":6"), std::string::npos) << body;
  EXPECT_NE(body.find("\"events\":42"), std::string::npos) << body;  // 6×7
  EXPECT_NE(body.find("\"incumbent_update\":12"), std::string::npos) << body;

  // Recent ring of 4 keeps ordinals 102..105 oldest-first; 100 is evicted
  // everywhere (wall 10 never makes the slowest table either).
  EXPECT_EQ(body.find("\"ordinal\":100"), std::string::npos) << body;
  const std::size_t recent = body.find("\"recent\":");
  const std::size_t slowest = body.find("\"slowest\":");
  ASSERT_NE(recent, std::string::npos);
  ASSERT_NE(slowest, std::string::npos);
  std::size_t last = recent;
  for (std::uint64_t ordinal : {102, 103, 104, 105}) {
    const std::size_t pos =
        body.find("\"ordinal\":" + std::to_string(ordinal), recent);
    ASSERT_LT(pos, slowest) << ordinal << "\n" << body;
    EXPECT_GT(pos, last) << "recent not oldest-first\n" << body;
    last = pos;
  }
  // Slowest first: wall 60 (ordinal 101) before wall 50 (ordinal 104).
  const std::size_t s60 = body.find("\"wall_nanos\":60", slowest);
  const std::size_t s50 = body.find("\"wall_nanos\":50", slowest);
  ASSERT_NE(s60, std::string::npos) << body;
  ASSERT_NE(s50, std::string::npos) << body;
  EXPECT_LT(s60, s50);
  EXPECT_EQ(body.find("\"wall_nanos\":30", slowest), std::string::npos);

  recorder.Reset();
  const std::string fresh = recorder.ToJson();
  EXPECT_NE(fresh.find("\"searches\":0"), std::string::npos) << fresh;
  EXPECT_EQ(fresh.find("\"ordinal\":"), std::string::npos) << fresh;
}

TEST(ExplainRecorder, GlobalHookAttachesAndDetaches) {
  ASSERT_EQ(GlobalExplainRecorder(), nullptr);
  ExplainRecorder recorder;
  AttachGlobalExplainRecorder(&recorder);
  EXPECT_EQ(GlobalExplainRecorder(), &recorder);
  AttachGlobalExplainRecorder(nullptr);
  EXPECT_EQ(GlobalExplainRecorder(), nullptr);
}

TEST(FlushExplainMetrics, CountersAndGapHistogramMatchTheLogs) {
  MetricsRegistry metrics;
  ExplainSearchLog first = MakeRichLog();
  ExplainSearchLog second = MakeRichLog();
  second.ordinal = 10;
  second.dropped_events = 4;
  second.abandoned_scans = 2;
  FlushExplainMetrics(&metrics, {first, second});

  EXPECT_EQ(metrics.GetCounter("disc_explain_searches_total")->Value(), 2u);
  EXPECT_EQ(metrics.GetCounter("disc_explain_events_total")->Value(), 14u);
  EXPECT_EQ(metrics.GetCounter("disc_explain_events_dropped_total")->Value(),
            4u);
  EXPECT_EQ(
      metrics.GetCounter("disc_explain_abandoned_scans_total")->Value(), 2u);
  EXPECT_EQ(
      metrics.GetCounter("disc_explain_action_incumbent_update_total")
          ->Value(),
      4u);
  EXPECT_EQ(metrics.GetCounter("disc_explain_action_prune_lb_total")->Value(),
            2u);
  // No prune_budget events → the per-action counter is never registered.
  EXPECT_EQ(
      metrics.GetCounter("disc_explain_action_prune_budget_total")->Value(),
      0u);
  // Two gap-carrying events per log feed the bound-gap histogram.
  Histogram* gap = metrics.GetHistogram(
      "disc_save_bound_gap", {1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0});
  ASSERT_NE(gap, nullptr);
  const Histogram::Snapshot snap = gap->Snap();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 2 * (10.0 + 7.0));
  // Exemplars carry the search's trace id into the exposition.
  EXPECT_EQ(snap.exemplars[4].trace_id, 1234u);  // 7 and 10 land in le=10
}

TEST(FlushExplainMetrics, NullRegistryAndEmptyLogsAreNoOps) {
  FlushExplainMetrics(nullptr, {MakeRichLog()});
  MetricsRegistry metrics;
  FlushExplainMetrics(&metrics, {});
  EXPECT_EQ(metrics.GetCounter("disc_explain_searches_total")->Value(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: the event streams of a real save re-derive SearchStats
// ---------------------------------------------------------------------------

/// Thread-safe capture sink (the exact path emits from the merge loop).
class CaptureExplainSink : public ExplainSink {
 public:
  void Emit(const ExplainSearchLog& log) override {
    std::lock_guard<std::mutex> lock(mu_);
    logs_.push_back(log);
  }
  std::vector<ExplainSearchLog> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(logs_);
  }

 private:
  std::mutex mu_;
  std::vector<ExplainSearchLog> logs_;
};

/// Two well-separated 2-d clusters with three planted outliers — small
/// enough for the exact saver, rich enough to exercise pruning.
Relation MakeSmallScenario(std::uint64_t seed = 44) {
  Rng rng(seed);
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 60; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Gaussian(0, 0.6), rng.Gaussian(0, 0.6)}));
  }
  for (int i = 0; i < 60; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Gaussian(12, 0.6), rng.Gaussian(0, 0.6)}));
  }
  r[5][1] = Value(30.0);
  r[70][1] = Value(-25.0);
  r.AppendUnchecked(Tuple::Numeric({-40, 40}));
  return r;
}

/// The analyzer's per-log identities (scripts/analyze_explain.py), in C++.
void ExpectLogIdentities(const ExplainSearchLog& log) {
  ASSERT_EQ(log.dropped_events, 0u) << "ordinal " << log.ordinal;
  std::uint64_t lb_like = 0;
  std::uint64_t node_events = 0;
  std::uint64_t reverts = 0;
  for (const ExplainEvent& event : log.events) {
    if (event.action == ExplainAction::kPruneLb ||
        event.action == ExplainAction::kInfeasible) {
      ++lb_like;
    }
    // memo_hit revisits a set the memo already counted; the seed is
    // injected before the walk — both are excluded from the node count.
    if (event.action == ExplainAction::kRevertRefine) {
      ++reverts;
    } else if (!event.seed && event.action != ExplainAction::kMemoHit) {
      ++node_events;
    }
  }
  if (log.algo == "disc") {
    EXPECT_EQ(lb_like, log.lb_prunes) << "ordinal " << log.ordinal;
    EXPECT_EQ(node_events, log.visited_sets) << "ordinal " << log.ordinal;
  }
  EXPECT_EQ(reverts, log.revert_refines) << "ordinal " << log.ordinal;
}

TEST(ExplainEndToEnd, DiscLogsRederiveSearchStatsAndFeedMetrics) {
  Relation data = MakeSmallScenario();
  DistanceEvaluator evaluator(data.schema());
  CaptureExplainSink sink;
  MetricsRegistry metrics;
  ExplainRecorder recorder;
  AttachGlobalExplainRecorder(&recorder);
  // The explain flush rides the same batch-end path as the disc_save_*
  // counters, which feed the globally attached registry.
  AttachGlobalMetrics(&metrics);

  OutlierSavingOptions opts;
  opts.constraint = {1.5, 5};
  opts.explain = &sink;
  opts.metrics = &metrics;
  SavedDataset saved = SaveOutliers(data, evaluator, opts);
  AttachGlobalMetrics(nullptr);
  AttachGlobalExplainRecorder(nullptr);
  ASSERT_TRUE(saved.status.ok()) << saved.status.ToString();

  std::vector<ExplainSearchLog> logs = sink.Take();
  ASSERT_FALSE(logs.empty());
  std::set<std::uint64_t> ordinals;
  for (const ExplainSearchLog& log : logs) {
    EXPECT_EQ(log.algo, "disc");
    // Explain alone forces id derivation, so logs link to trace ids even
    // with tracing off.
    EXPECT_NE(log.trace_id, 0u);
    EXPECT_TRUE(ordinals.insert(log.ordinal).second)
        << "duplicate ordinal " << log.ordinal;
    ExpectLogIdentities(log);
  }
  // One log per searched outlier, and the batch counters equal file totals.
  EXPECT_EQ(logs.size(), saved.records.size());
  EXPECT_EQ(metrics.GetCounter("disc_explain_searches_total")->Value(),
            logs.size());
  std::uint64_t events = 0;
  for (const ExplainSearchLog& log : logs) events += log.events.size();
  EXPECT_EQ(metrics.GetCounter("disc_explain_events_total")->Value(), events);
  // The globally attached recorder saw the same searches.
  EXPECT_NE(recorder.ToJson().find(
                "\"searches\":" + std::to_string(logs.size())),
            std::string::npos);
}

TEST(ExplainEndToEnd, ExactPathRecordsAnIncumbentTrail) {
  Relation data = MakeSmallScenario();
  DistanceEvaluator evaluator(data.schema());
  CaptureExplainSink sink;

  OutlierSavingOptions opts;
  opts.constraint = {1.5, 5};
  opts.use_exact = true;
  opts.exact_max_candidates = 2000000;
  opts.explain = &sink;
  SavedDataset saved = SaveOutliers(data, evaluator, opts);
  ASSERT_TRUE(saved.status.ok()) << saved.status.ToString();

  std::vector<ExplainSearchLog> logs = sink.Take();
  ASSERT_FALSE(logs.empty());
  bool feasible_seen = false;
  for (const ExplainSearchLog& log : logs) {
    EXPECT_EQ(log.algo, "exact");
    ExpectLogIdentities(log);
    // The exact enumeration narrates only incumbent adoptions and budget
    // stops — never bound prunes or memo hits.
    for (const ExplainEvent& event : log.events) {
      EXPECT_TRUE(event.action == ExplainAction::kIncumbentUpdate ||
                  event.action == ExplainAction::kPruneBudget)
          << ExplainActionName(event.action);
    }
    if (!log.feasible) continue;
    feasible_seen = true;
    ASSERT_TRUE(std::isfinite(log.final_cost));
    // The incumbent trail is monotone non-increasing and ends at the cost.
    double last = kInf;
    for (const ExplainEvent& event : log.events) {
      if (event.action != ExplainAction::kIncumbentUpdate) continue;
      EXPECT_LE(event.incumbent, last);
      last = event.incumbent;
    }
    EXPECT_DOUBLE_EQ(last, log.final_cost);
  }
  EXPECT_TRUE(feasible_seen);
}

}  // namespace
}  // namespace disc
