// FaultInjector semantics: spec parsing, trigger forms (nth / every /
// schedule / seeded probability), fault kinds, determinism across runs with
// the same seed, the max_fires cap under concurrent hits, the global
// attach/detach contract, and the zero-overhead no-op path when detached.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/status.h"

namespace disc {
namespace {

TEST(ParseFaultSpecs, FullGrammarRoundTrips) {
  Result<std::vector<FaultSpec>> parsed = ParseFaultSpecs(
      "search.node:cancel:nth=100;"
      "dcache.fill:latency:ms=5,every=10;"
      "journal.append:kill:at=3+9+12,max=2;"
      "index.query:error:p=0.25,code=io_error;"
      "pool.task:alloc");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<FaultSpec>& specs = parsed.value();
  ASSERT_EQ(specs.size(), 5u);

  EXPECT_EQ(specs[0].site, "search.node");
  EXPECT_EQ(specs[0].kind, FaultKind::kCancel);
  EXPECT_EQ(specs[0].nth, 100u);

  EXPECT_EQ(specs[1].kind, FaultKind::kLatency);
  EXPECT_EQ(specs[1].latency_ms, 5u);
  EXPECT_EQ(specs[1].every, 10u);

  EXPECT_EQ(specs[2].kind, FaultKind::kKill);
  EXPECT_EQ(specs[2].schedule, (std::vector<std::uint64_t>{3, 9, 12}));
  EXPECT_EQ(specs[2].max_fires, 2u);

  EXPECT_EQ(specs[3].kind, FaultKind::kError);
  EXPECT_DOUBLE_EQ(specs[3].probability, 0.25);
  EXPECT_EQ(specs[3].code, StatusCode::kIoError);

  EXPECT_EQ(specs[4].kind, FaultKind::kAllocFail);
}

TEST(ParseFaultSpecs, RejectsMalformedInput) {
  EXPECT_FALSE(ParseFaultSpecs("justasite").ok());
  EXPECT_FALSE(ParseFaultSpecs("site:unknownkind").ok());
  EXPECT_FALSE(ParseFaultSpecs("site:error:nokeyvalue").ok());
  EXPECT_FALSE(ParseFaultSpecs("site:error:bogus=1").ok());
  EXPECT_FALSE(ParseFaultSpecs("site:error:nth=abc").ok());
  EXPECT_FALSE(ParseFaultSpecs("site:error:p=1.5").ok());
  EXPECT_FALSE(ParseFaultSpecs("site:error:code=nope").ok());
  EXPECT_FALSE(ParseFaultSpecs(":error").ok());
  // Empty input arms nothing but is not an error (disabled == default).
  Result<std::vector<FaultSpec>> empty = ParseFaultSpecs("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(FaultInjector, NthTriggerFiresExactlyOnce) {
  FaultInjector injector;
  FaultSpec spec;
  spec.site = "s";
  spec.kind = FaultKind::kError;
  spec.nth = 2;
  injector.Add(spec);
  FaultInjector::Site* site = injector.site("s");
  EXPECT_TRUE(site->Hit().ok());   // hit 0
  EXPECT_TRUE(site->Hit().ok());   // hit 1
  EXPECT_FALSE(site->Hit().ok());  // hit 2 fires
  EXPECT_TRUE(site->Hit().ok());   // hit 3
  EXPECT_EQ(site->hits(), 4u);
  EXPECT_EQ(site->fires(), 1u);
  EXPECT_EQ(injector.total_fires(), 1u);
}

TEST(FaultInjector, EveryTriggerIsPeriodicFromNth) {
  FaultInjector injector;
  FaultSpec spec;
  spec.site = "s";
  spec.kind = FaultKind::kError;
  spec.nth = 1;
  spec.every = 3;
  injector.Add(spec);
  FaultInjector::Site* site = injector.site("s");
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(!site->Hit().ok());
  // Hits 1, 4, 7 fire.
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, false, true, false,
                                      false, true}));
}

TEST(FaultInjector, ScheduleTriggerFiresAtListedHits) {
  FaultInjector injector;
  FaultSpec spec;
  spec.site = "s";
  spec.kind = FaultKind::kError;
  spec.schedule = {0, 3};
  injector.Add(spec);
  FaultInjector::Site* site = injector.site("s");
  EXPECT_FALSE(site->Hit().ok());
  EXPECT_TRUE(site->Hit().ok());
  EXPECT_TRUE(site->Hit().ok());
  EXPECT_FALSE(site->Hit().ok());
  EXPECT_TRUE(site->Hit().ok());
}

TEST(FaultInjector, ProbabilityTriggerIsSeedDeterministic) {
  // Same seed → identical fire pattern; different seed → (almost surely)
  // a different one. Never flaky: both patterns are pure functions of
  // (seed, site, hit index).
  auto pattern = [](std::uint64_t seed) {
    FaultInjector injector(seed);
    FaultSpec spec;
    spec.site = "s";
    spec.kind = FaultKind::kError;
    spec.probability = 0.5;
    injector.Add(spec);
    FaultInjector::Site* site = injector.site("s");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!site->Hit().ok());
    return fired;
  };
  const std::vector<bool> a = pattern(42);
  EXPECT_EQ(a, pattern(42));
  EXPECT_NE(a, pattern(43));
  // Roughly half fire (loose bounds; the draw is uniform).
  const std::size_t fires =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 16u);
  EXPECT_LT(fires, 48u);
}

TEST(FaultInjector, ErrorKindCarriesConfiguredCode) {
  FaultInjector injector;
  FaultSpec spec;
  spec.site = "s";
  spec.kind = FaultKind::kError;
  spec.code = StatusCode::kIoError;
  injector.Add(spec);
  Status status = injector.site("s")->Hit();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("injected fault"), std::string::npos);
}

TEST(FaultInjector, CancelKindTripsTokenAndMirrors) {
  FaultInjector injector;
  CancellationSource mirror;
  injector.MirrorCancelTo(mirror);
  FaultSpec spec;
  spec.site = "s";
  spec.kind = FaultKind::kCancel;
  injector.Add(spec);
  CancellationToken token = injector.token();
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(injector.site("s")->Hit().ok());  // cancel returns OK
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(injector.cancel_fired());
  EXPECT_TRUE(mirror.cancel_requested());
}

TEST(FaultInjector, KillKindThrowsFaultInjectedError) {
  FaultInjector injector;
  FaultSpec spec;
  spec.site = "s";
  spec.kind = FaultKind::kKill;
  injector.Add(spec);
  EXPECT_THROW(injector.site("s")->Hit(), FaultInjectedError);
}

TEST(FaultInjector, MaxFiresCapsConcurrentHitsExactly) {
  FaultInjector injector;
  FaultSpec spec;
  spec.site = "s";
  spec.kind = FaultKind::kError;
  spec.nth = 0;
  spec.every = 1;  // would fire on every hit...
  spec.max_fires = 10;  // ...but is capped
  injector.Add(spec);
  FaultInjector::Site* site = injector.site("s");
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (!site->Hit().ok()) errors.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 10u);
  EXPECT_EQ(site->hits(), 4000u);
  EXPECT_EQ(site->fires(), 10u);
}

TEST(FaultInjector, GlobalAttachDetachAndMacro) {
  EXPECT_EQ(GlobalFaultInjector(), nullptr);
  EXPECT_EQ(FaultSiteFor("anything"), nullptr);
  EXPECT_TRUE(DISC_FAULT_POINT("anything").ok());  // detached → no-op

  FaultInjector injector;
  FaultSpec spec;
  spec.site = "macro.site";
  spec.kind = FaultKind::kError;
  injector.Add(spec);
  AttachGlobalFaultInjector(&injector);
  EXPECT_EQ(GlobalFaultInjector(), &injector);
  EXPECT_NE(FaultSiteFor("macro.site"), nullptr);
  EXPECT_FALSE(DISC_FAULT_POINT("macro.site").ok());
  AttachGlobalFaultInjector(nullptr);
  EXPECT_TRUE(DISC_FAULT_POINT("macro.site").ok());
  EXPECT_EQ(injector.hit_count("macro.site"), 1u);
}

TEST(FaultInjector, FiresBumpTheMetricsCounter) {
  MetricsRegistry metrics;
  AttachGlobalMetrics(&metrics);
  FaultInjector injector;
  FaultSpec spec;
  spec.site = "s";
  spec.kind = FaultKind::kError;
  spec.nth = 1;
  injector.Add(spec);
  FaultInjector::Site* site = injector.site("s");
  EXPECT_TRUE(site->Hit().ok());   // no fire, no count
  EXPECT_FALSE(site->Hit().ok());  // fire
  AttachGlobalMetrics(nullptr);
  Counter* c = metrics.GetCounter("disc_fault_injected_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->Value(), 1u);
}

TEST(FaultInjector, SitePointersAreStableAndUnarmedSitesAreFree) {
  FaultInjector injector;
  FaultInjector::Site* a = injector.site("a");
  EXPECT_EQ(injector.site("a"), a);
  // An unarmed site records hits but never fires.
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(a->Hit().ok());
  EXPECT_EQ(a->hits(), 100u);
  EXPECT_EQ(a->fires(), 0u);
}

TEST(FaultInjector, AddFromStringArmsMultipleSites) {
  FaultInjector injector;
  ASSERT_TRUE(injector.AddFromString("a:error:nth=0;b:error:nth=0").ok());
  EXPECT_FALSE(injector.site("a")->Hit().ok());
  EXPECT_FALSE(injector.site("b")->Hit().ok());
  EXPECT_FALSE(injector.AddFromString("bad spec").ok());
}

}  // namespace
}  // namespace disc
