#include "distance/lp_norm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace disc {
namespace {

TEST(LpNorm, L1IsSum) {
  std::vector<double> d{1, 2, 3};
  EXPECT_DOUBLE_EQ(AggregateDistances(d, LpNorm::kL1), 6.0);
}

TEST(LpNorm, L2IsEuclidean) {
  std::vector<double> d{3, 4};
  EXPECT_DOUBLE_EQ(AggregateDistances(d, LpNorm::kL2), 5.0);
}

TEST(LpNorm, LInfIsMax) {
  std::vector<double> d{1, 7, 3};
  EXPECT_DOUBLE_EQ(AggregateDistances(d, LpNorm::kLInf), 7.0);
}

TEST(LpNorm, EmptyIsZero) {
  std::vector<double> d;
  EXPECT_DOUBLE_EQ(AggregateDistances(d, LpNorm::kL1), 0.0);
  EXPECT_DOUBLE_EQ(AggregateDistances(d, LpNorm::kL2), 0.0);
  EXPECT_DOUBLE_EQ(AggregateDistances(d, LpNorm::kLInf), 0.0);
}

class NormOrderTest : public testing::TestWithParam<LpNorm> {};

TEST_P(NormOrderTest, MonotoneInAdds) {
  // Adding another attribute distance never decreases the aggregate
  // (the monotonicity property of §2.1.1).
  LpAccumulator acc(GetParam());
  double prev = acc.Total();
  for (double d : {0.5, 2.0, 0.0, 1.5}) {
    acc.Add(d);
    EXPECT_GE(acc.Total(), prev - 1e-12);
    prev = acc.Total();
  }
}

TEST_P(NormOrderTest, ExceedsConsistentWithTotal) {
  LpAccumulator acc(GetParam());
  acc.Add(1.0);
  acc.Add(2.0);
  double total = acc.Total();
  EXPECT_TRUE(acc.Exceeds(total * 0.99));
  EXPECT_FALSE(acc.Exceeds(total * 1.01));
}

INSTANTIATE_TEST_SUITE_P(AllNorms, NormOrderTest,
                         testing::Values(LpNorm::kL1, LpNorm::kL2,
                                         LpNorm::kLInf));

TEST(LpAccumulator, L2PartialMatchesSqrt) {
  LpAccumulator acc(LpNorm::kL2);
  acc.Add(1.0);
  acc.Add(2.0);
  acc.Add(2.0);
  EXPECT_DOUBLE_EQ(acc.Total(), 3.0);
}

TEST(LpNorm, L2UpperBoundsLInfLowerBoundsL1) {
  std::vector<double> d{1.0, 2.0, 0.5};
  double l1 = AggregateDistances(d, LpNorm::kL1);
  double l2 = AggregateDistances(d, LpNorm::kL2);
  double linf = AggregateDistances(d, LpNorm::kLInf);
  EXPECT_LE(linf, l2 + 1e-12);
  EXPECT_LE(l2, l1 + 1e-12);
}

}  // namespace
}  // namespace disc
