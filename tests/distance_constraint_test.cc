#include "constraints/distance_constraint.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "index/index_factory.h"

namespace disc {
namespace {

/// A tight cluster of `cluster_size` points around the origin plus one far
/// outlier at (100, 100).
Relation ClusterPlusOutlier(std::size_t cluster_size) {
  Rng rng(77);
  Relation r(Schema::Numeric(2));
  for (std::size_t i = 0; i < cluster_size; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5)}));
  }
  r.AppendUnchecked(Tuple::Numeric({100, 100}));
  return r;
}

TEST(DistanceConstraint, SatisfiesForClusterPoint) {
  Relation r = ClusterPlusOutlier(30);
  DistanceEvaluator ev(r.schema());
  auto index = MakeNeighborIndex(r, ev, 2.0);
  DistanceConstraint c{2.0, 5};
  EXPECT_TRUE(SatisfiesConstraint(*index, r[0], c));
}

TEST(DistanceConstraint, ViolatedForOutlier) {
  Relation r = ClusterPlusOutlier(30);
  DistanceEvaluator ev(r.schema());
  auto index = MakeNeighborIndex(r, ev, 2.0);
  DistanceConstraint c{2.0, 5};
  EXPECT_FALSE(SatisfiesConstraint(*index, r[30], c));
}

TEST(Split, SeparatesOutlier) {
  Relation r = ClusterPlusOutlier(30);
  DistanceEvaluator ev(r.schema());
  auto index = MakeNeighborIndex(r, ev, 2.0);
  InlierOutlierSplit split = SplitInliersOutliers(r, *index, {2.0, 5});
  EXPECT_EQ(split.inlier_rows.size(), 30u);
  ASSERT_EQ(split.outlier_rows.size(), 1u);
  EXPECT_EQ(split.outlier_rows[0], 30u);
}

TEST(Split, AllInliersWhenEtaOne) {
  // η = 1 is always satisfied: a tuple is its own ε-neighbor (Formula 4).
  Relation r = ClusterPlusOutlier(10);
  DistanceEvaluator ev(r.schema());
  auto index = MakeNeighborIndex(r, ev, 0.001);
  InlierOutlierSplit split = SplitInliersOutliers(r, *index, {0.001, 1});
  EXPECT_EQ(split.outlier_rows.size(), 0u);
}

TEST(Split, AllOutliersWithHugeEta) {
  Relation r = ClusterPlusOutlier(10);
  DistanceEvaluator ev(r.schema());
  auto index = MakeNeighborIndex(r, ev, 1.0);
  InlierOutlierSplit split = SplitInliersOutliers(r, *index, {1.0, 1000});
  EXPECT_EQ(split.inlier_rows.size(), 0u);
  EXPECT_EQ(split.outlier_rows.size(), r.size());
}

TEST(Split, RowsPartitionAndAreSorted) {
  Relation r = ClusterPlusOutlier(25);
  DistanceEvaluator ev(r.schema());
  auto index = MakeNeighborIndex(r, ev, 2.0);
  InlierOutlierSplit split = SplitInliersOutliers(r, *index, {2.0, 5});
  EXPECT_EQ(split.inlier_rows.size() + split.outlier_rows.size(), r.size());
  for (std::size_t i = 1; i < split.inlier_rows.size(); ++i) {
    EXPECT_LT(split.inlier_rows[i - 1], split.inlier_rows[i]);
  }
}

TEST(NeighborCounts, FullAndSampled) {
  Relation r = ClusterPlusOutlier(30);
  DistanceEvaluator ev(r.schema());
  auto index = MakeNeighborIndex(r, ev, 2.0);
  std::vector<std::size_t> all = NeighborCounts(r, *index, 2.0);
  ASSERT_EQ(all.size(), r.size());
  // The outlier has exactly one ε-neighbor: itself.
  EXPECT_EQ(all.back(), 1u);
  // Cluster points have many.
  EXPECT_GT(all[0], 10u);

  std::vector<std::size_t> rows{0, 30};
  std::vector<std::size_t> sampled = NeighborCounts(r, *index, 2.0, &rows);
  ASSERT_EQ(sampled.size(), 2u);
  EXPECT_EQ(sampled[0], all[0]);
  EXPECT_EQ(sampled[1], all[30]);
}

TEST(NeighborCounts, GrowWithEpsilon) {
  Relation r = ClusterPlusOutlier(30);
  DistanceEvaluator ev(r.schema());
  auto small_index = MakeNeighborIndex(r, ev, 0.5);
  auto large_index = MakeNeighborIndex(r, ev, 3.0);
  std::vector<std::size_t> small = NeighborCounts(r, *small_index, 0.5);
  std::vector<std::size_t> large = NeighborCounts(r, *large_index, 3.0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_LE(small[i], large[i]);
  }
}

}  // namespace
}  // namespace disc
