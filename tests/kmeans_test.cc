#include "clustering/kmeans.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "eval/clustering_metrics.h"

namespace disc {
namespace {

LabeledRelation ThreeBlobs(std::size_t per_blob = 60, std::uint64_t seed = 8) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0, 0}, 0.6, per_blob});
  clusters.push_back({{12, 0}, 0.6, per_blob});
  clusters.push_back({{0, 12}, 0.6, per_blob});
  return GenerateGaussianMixture(clusters, seed);
}

TEST(KMeans, RecoversThreeBlobs) {
  LabeledRelation data = ThreeBlobs();
  KMeansResult res = KMeans(data.data, {3, 100, 1e-8, 42});
  EXPECT_EQ(NumClusters(res.labels), 3u);
  PairCountingScores s = PairCounting(res.labels, data.labels);
  EXPECT_GT(s.f1, 0.95);
}

TEST(KMeans, NoNoiseLabels) {
  LabeledRelation data = ThreeBlobs();
  KMeansResult res = KMeans(data.data, {3});
  EXPECT_EQ(NumNoise(res.labels), 0u);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  LabeledRelation data = ThreeBlobs();
  KMeansResult k1 = KMeans(data.data, {1});
  KMeansResult k3 = KMeans(data.data, {3});
  EXPECT_LT(k3.inertia, k1.inertia);
}

TEST(KMeans, DeterministicForFixedSeed) {
  LabeledRelation data = ThreeBlobs();
  KMeansResult a = KMeans(data.data, {3, 100, 1e-8, 7});
  KMeansResult b = KMeans(data.data, {3, 100, 1e-8, 7});
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, KClampedToN) {
  Relation r(Schema::Numeric(1));
  r.AppendUnchecked(Tuple::Numeric({0}));
  r.AppendUnchecked(Tuple::Numeric({5}));
  KMeansResult res = KMeans(r, {10});
  EXPECT_LE(res.centers.size(), 2u);
  EXPECT_EQ(res.labels.size(), 2u);
}

TEST(KMeans, EmptyRelation) {
  Relation r(Schema::Numeric(2));
  KMeansResult res = KMeans(r, {3});
  EXPECT_TRUE(res.labels.empty());
}

TEST(KMeans, CentersNearTrueCenters) {
  LabeledRelation data = ThreeBlobs(100);
  KMeansResult res = KMeans(data.data, {3});
  // Each true center must be within 1.0 of some fitted center.
  std::vector<std::vector<double>> truth{{0, 0}, {12, 0}, {0, 12}};
  for (const auto& t : truth) {
    double best = 1e300;
    for (const auto& c : res.centers) {
      best = std::min(best, SquaredEuclidean(t, c));
    }
    EXPECT_LT(best, 1.0) << "center (" << t[0] << "," << t[1] << ")";
  }
}

TEST(KMeansPlusPlus, ReturnsKDistinctishCenters) {
  LabeledRelation data = ThreeBlobs();
  auto points = ExtractPoints(data.data);
  auto centers = KMeansPlusPlusInit(points, 3, 5);
  ASSERT_EQ(centers.size(), 3u);
  // k-means++ should spread the seeds across blobs: pairwise distances big.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      EXPECT_GT(SquaredEuclidean(centers[i], centers[j]), 4.0);
    }
  }
}

TEST(KMeansPlusPlus, HandlesDuplicatePoints) {
  std::vector<std::vector<double>> points(10, {1.0, 1.0});
  auto centers = KMeansPlusPlusInit(points, 3, 1);
  EXPECT_EQ(centers.size(), 3u);
}

TEST(KMeans, SingleCluster) {
  LabeledRelation data = ThreeBlobs();
  KMeansResult res = KMeans(data.data, {1});
  EXPECT_EQ(NumClusters(res.labels), 1u);
}

}  // namespace
}  // namespace disc
