// Structured logging: level filtering, JSON line shape, the in-memory ring
// behind /statusz?logs=N, and custom sinks.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/log.h"

namespace disc {
namespace {

/// Captures emitted lines in a vector and restores the default sink (and
/// level/stderr settings) on destruction, so tests cannot leak state.
class LogCapture {
 public:
  LogCapture() {
    SetLogToStderr(false);
    SetLogSink([this](const std::string& line) { lines_.push_back(line); });
  }
  ~LogCapture() {
    SetLogSink(nullptr);
    SetLogToStderr(true);
    SetMinLogLevel(LogLevel::kInfo);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(LogLevel, ParseAcceptsNamesCaseInsensitively) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("chatty", &level));
  EXPECT_EQ(std::string(LogLevelName(LogLevel::kWarn)), "warn");
}

TEST(Log, MinLevelFiltersBelowAndEmitsAtOrAbove) {
  LogCapture capture;
  SetMinLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  DISC_LOG(INFO) << "filtered out";
  DISC_LOG(WARN) << "kept";
  DISC_LOG(ERROR) << "also kept";
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_NE(capture.lines()[0].find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(capture.lines()[1].find("\"level\":\"error\""),
            std::string::npos);
  EXPECT_EQ(capture.lines()[0].find("filtered out"), std::string::npos);
}

TEST(Log, LineIsOneJsonObjectWithStandardAndCustomFields) {
  LogCapture capture;
  DISC_LOG(WARN)
      .Str("name", "va\"lue")
      .Int("delta", -3)
      .Uint("rows", 42)
      .Num("ratio", 0.5)
      .Bool("flag", true)
      << "message with " << 2 << " parts";
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"tid\":"), std::string::npos) << line;
  // src carries basename:line, never the build-machine absolute path.
  EXPECT_NE(line.find("\"src\":\"log_test.cc:"), std::string::npos) << line;
  EXPECT_EQ(line.find("/root"), std::string::npos) << line;
  EXPECT_NE(line.find("\"msg\":\"message with 2 parts\""), std::string::npos)
      << line;
  // Custom fields, with string values JSON-escaped.
  EXPECT_NE(line.find("\"name\":\"va\\\"lue\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"delta\":-3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"rows\":42"), std::string::npos) << line;
  EXPECT_NE(line.find("\"flag\":true"), std::string::npos) << line;
}

TEST(Log, RecentLogsReturnsNewestTailOldestFirst) {
  LogCapture capture;
  const std::uint64_t before = LogLinesEmitted();
  for (int i = 0; i < 10; ++i) {
    DISC_LOG(INFO).Int("i", i) << "line";
  }
  EXPECT_EQ(LogLinesEmitted(), before + 10);
  std::vector<std::string> tail = RecentLogs(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_NE(tail[0].find("\"i\":7"), std::string::npos) << tail[0];
  EXPECT_NE(tail[1].find("\"i\":8"), std::string::npos) << tail[1];
  EXPECT_NE(tail[2].find("\"i\":9"), std::string::npos) << tail[2];
}

TEST(Log, RingSaturatesAtCapacityAndKeepsNewest) {
  LogCapture capture;
  for (std::size_t i = 0; i < kLogRingCapacity + 5; ++i) {
    DISC_LOG(INFO).Uint("seq", i) << "ring";
  }
  std::vector<std::string> all = RecentLogs(kLogRingCapacity * 2);
  ASSERT_EQ(all.size(), kLogRingCapacity);
  // The 5 oldest lines were overwritten; the newest survives at the end.
  EXPECT_NE(all.front().find("\"seq\":5"), std::string::npos) << all.front();
  EXPECT_NE(all.back()
                .find("\"seq\":" + std::to_string(kLogRingCapacity + 4)),
            std::string::npos)
      << all.back();
}

TEST(Log, DisabledLevelsSkipFieldEvaluationSideEffects) {
  LogCapture capture;
  SetMinLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 1;
  };
  DISC_LOG(DEBUG).Int("x", expensive()) << "never";
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(capture.lines().size(), 0u);
  DISC_LOG(ERROR).Int("x", expensive()) << "emitted";
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(capture.lines().size(), 1u);
}

}  // namespace
}  // namespace disc
