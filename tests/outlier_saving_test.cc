#include "core/outlier_saving.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "data/generators.h"
#include "index/index_factory.h"

namespace disc {
namespace {

/// Two well-separated clusters with a few single-attribute errors and one
/// all-attribute natural outlier.
struct Scenario {
  Relation data;
  std::vector<std::size_t> dirty_rows;
  std::size_t natural_row = 0;
};

Scenario MakeScenario(std::uint64_t seed = 44) {
  Rng rng(seed);
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 60; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Gaussian(0, 0.6), rng.Gaussian(0, 0.6)}));
  }
  for (int i = 0; i < 60; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Gaussian(12, 0.6), rng.Gaussian(0, 0.6)}));
  }
  Scenario s;
  // Dirty outliers: one broken attribute each.
  s.dirty_rows = {5, 70};
  r[5][1] = Value(30.0);    // cluster-0 point, y spiked
  r[70][1] = Value(-25.0);  // cluster-1 point, y spiked
  // Natural outlier: both attributes far away.
  r.AppendUnchecked(Tuple::Numeric({-40, 40}));
  s.natural_row = r.size() - 1;
  s.data = std::move(r);
  return s;
}

OutlierSavingOptions DefaultOptions() {
  OutlierSavingOptions opts;
  opts.constraint = {1.5, 5};
  return opts;
}

TEST(SaveOutliers, DetectsInjectedOutliers) {
  Scenario s = MakeScenario();
  DistanceEvaluator ev(s.data.schema());
  SavedDataset out = SaveOutliers(s.data, ev, DefaultOptions());
  // All three planted outliers must be flagged.
  for (std::size_t row : s.dirty_rows) {
    EXPECT_NE(std::find(out.outlier_rows.begin(), out.outlier_rows.end(), row),
              out.outlier_rows.end())
        << "dirty row " << row << " not flagged";
  }
  EXPECT_NE(std::find(out.outlier_rows.begin(), out.outlier_rows.end(),
                      s.natural_row),
            out.outlier_rows.end());
}

TEST(SaveOutliers, SavedTuplesSatisfyConstraint) {
  Scenario s = MakeScenario();
  DistanceEvaluator ev(s.data.schema());
  OutlierSavingOptions opts = DefaultOptions();
  SavedDataset out = SaveOutliers(s.data, ev, opts);

  // Every saved tuple must satisfy the constraint within the repaired data.
  auto index = MakeNeighborIndex(out.repaired, ev, opts.constraint.epsilon);
  for (const OutlierRecord& rec : out.records) {
    if (rec.disposition == OutlierDisposition::kSaved) {
      EXPECT_TRUE(
          SatisfiesConstraint(*index, out.repaired[rec.row], opts.constraint))
          << "row " << rec.row;
    }
  }
}

TEST(SaveOutliers, DirtyOutliersSavedWithOneAttribute) {
  Scenario s = MakeScenario();
  DistanceEvaluator ev(s.data.schema());
  SavedDataset out = SaveOutliers(s.data, ev, DefaultOptions());
  for (const OutlierRecord& rec : out.records) {
    if (rec.row == 5 || rec.row == 70) {
      EXPECT_EQ(rec.disposition, OutlierDisposition::kSaved);
      // The broken attribute must be adjusted; DISC minimizes distance, so
      // any additional tweak on the clean attribute stays small.
      EXPECT_TRUE(rec.adjusted_attributes.contains(1)) << "row " << rec.row;
      EXPECT_LT(std::fabs(rec.adjusted[0].num() - s.data[rec.row][0].num()),
                2.0)
          << "row " << rec.row;
    }
  }
}

TEST(SaveOutliers, NaturalThresholdLeavesNaturalUnchanged) {
  Scenario s = MakeScenario();
  DistanceEvaluator ev(s.data.schema());
  OutlierSavingOptions opts = DefaultOptions();
  opts.natural_attribute_threshold = 1;  // trust only 1-attribute repairs
  SavedDataset out = SaveOutliers(s.data, ev, opts);
  for (const OutlierRecord& rec : out.records) {
    if (rec.row == s.natural_row) {
      EXPECT_EQ(rec.disposition, OutlierDisposition::kNaturalOutlier);
      EXPECT_EQ(out.repaired[rec.row], s.data[rec.row]);
    }
  }
}

TEST(SaveOutliers, WithoutThresholdNaturalGetsAdjusted) {
  Scenario s = MakeScenario();
  DistanceEvaluator ev(s.data.schema());
  SavedDataset out = SaveOutliers(s.data, ev, DefaultOptions());
  bool found = false;
  for (const OutlierRecord& rec : out.records) {
    if (rec.row == s.natural_row &&
        rec.disposition == OutlierDisposition::kSaved) {
      found = true;
      EXPECT_EQ(rec.adjusted_attributes.size(), 2u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SaveOutliers, InliersUntouched) {
  Scenario s = MakeScenario();
  DistanceEvaluator ev(s.data.schema());
  SavedDataset out = SaveOutliers(s.data, ev, DefaultOptions());
  for (std::size_t row : out.inlier_rows) {
    EXPECT_EQ(out.repaired[row], s.data[row]);
  }
}

TEST(SaveOutliers, ExactModeAgreesOnFeasibility) {
  Scenario s = MakeScenario();
  DistanceEvaluator ev(s.data.schema());
  OutlierSavingOptions approx = DefaultOptions();
  OutlierSavingOptions exact = DefaultOptions();
  exact.use_exact = true;
  exact.exact_max_candidates = 2000000;
  SavedDataset a = SaveOutliers(s.data, ev, approx);
  SavedDataset b = SaveOutliers(s.data, ev, exact);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    // Exact's optimum can only be cheaper.
    if (a.records[i].disposition == OutlierDisposition::kSaved &&
        b.records[i].disposition == OutlierDisposition::kSaved) {
      EXPECT_LE(b.records[i].cost, a.records[i].cost + 1e-9);
    }
  }
}

TEST(SaveOutliers, StatsHelpers) {
  Scenario s = MakeScenario();
  DistanceEvaluator ev(s.data.schema());
  SavedDataset out = SaveOutliers(s.data, ev, DefaultOptions());
  std::size_t saved = out.CountDisposition(OutlierDisposition::kSaved);
  EXPECT_GT(saved, 0u);
  EXPECT_GT(out.MeanAdjustmentCost(), 0.0);
  EXPECT_GE(out.MeanAdjustedAttributes(), 1.0);
}

TEST(SaveOutliers, CleanDataIsNoOp) {
  Rng rng(50);
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 80; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5)}));
  }
  DistanceEvaluator ev(r.schema());
  OutlierSavingOptions opts;
  opts.constraint = {2.0, 4};
  SavedDataset out = SaveOutliers(r, ev, opts);
  EXPECT_TRUE(out.outlier_rows.empty());
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(out.repaired[i], r[i]);
  }
}

TEST(SaveOutliers, EmptyRelation) {
  Relation r(Schema::Numeric(2));
  DistanceEvaluator ev(r.schema());
  OutlierSavingOptions opts;
  SavedDataset out = SaveOutliers(r, ev, opts);
  EXPECT_TRUE(out.records.empty());
  EXPECT_TRUE(out.repaired.empty());
}

}  // namespace
}  // namespace disc
