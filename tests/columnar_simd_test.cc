// Tier-parity suite for the SIMD distance kernels (DESIGN.md §12): every
// entry point of FlatKernel, on every dispatch tier the machine can run,
// must produce outputs bit-identical to the scalar reference — across lane
// tails (n % block ≠ 0), sub-lane inputs (n < one block), the narrowest and
// widest schemas, non-unit scales, NaN/±inf/denormal columns, and pooled
// chunked scans. Also covers the dispatch-resolution rules of
// common/cpu_features.h and the 64-byte column-alignment invariant.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/cpu_features.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "distance/columnar.h"
#include "distance/columnar_simd.h"
#include "distance/evaluator.h"
#include "distance/lp_norm.h"
#include "index/brute_force_index.h"
#include "index/kd_tree.h"

namespace disc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The tiers this machine can actually execute, scalar first. Forcing a
/// tier above DetectedSimdTier() clamps, so parity runs degenerate to
/// scalar-vs-scalar on lesser hardware instead of faulting — the suite is
/// meaningful everywhere and exhaustive on AVX2 machines.
std::vector<SimdTier> RunnableTiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (DetectedSimdTier() >= SimdTier::kSse2) tiers.push_back(SimdTier::kSse2);
  if (DetectedSimdTier() >= SimdTier::kAvx2) tiers.push_back(SimdTier::kAvx2);
  return tiers;
}

Relation RandomNumericRelation(std::size_t n, std::size_t dims,
                               std::uint64_t seed) {
  Rng rng(seed);
  Relation r(Schema::Numeric(dims));
  for (std::size_t i = 0; i < n; ++i) {
    Tuple t(dims);
    for (std::size_t d = 0; d < dims; ++d) t[d] = Value(rng.Uniform(-10, 10));
    r.AppendUnchecked(std::move(t));
  }
  return r;
}

Tuple RandomQuery(std::size_t dims, Rng* rng) {
  Tuple q(dims);
  for (std::size_t d = 0; d < dims; ++d) q[d] = Value(rng->Uniform(-12, 12));
  return q;
}

/// Edge values the vector kernels must not mishandle: NaN (never rejected
/// by a comparison, must survive to the canonical recompute), ±infinity
/// (overflowing squares, inf−inf = NaN when the query is infinite too),
/// huge magnitudes, denormals, negative zero.
Relation EdgeCaseRelation(std::size_t dims) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double huge = std::numeric_limits<double>::max();
  const double tiny = std::numeric_limits<double>::denorm_min();
  Relation r(Schema::Numeric(dims));
  std::vector<std::vector<double>> rows = {
      std::vector<double>(dims, 0.0),   std::vector<double>(dims, -0.0),
      std::vector<double>(dims, huge),  std::vector<double>(dims, -huge),
      std::vector<double>(dims, tiny),  std::vector<double>(dims, 1.0),
      std::vector<double>(dims, -1.0),  std::vector<double>(dims, kInf),
      std::vector<double>(dims, -kInf),
  };
  rows.push_back(std::vector<double>(dims, 0.0));
  rows.back()[0] = nan;
  rows.push_back(std::vector<double>(dims, nan));
  rows.push_back(std::vector<double>(dims, 0.25));
  rows.back()[dims - 1] = kInf;  // infinity in the last attribute only
  rows.push_back(std::vector<double>(dims, 0.5));
  rows.back()[0] = -kInf;
  for (const auto& coords : rows) {
    Tuple t(dims);
    for (std::size_t d = 0; d < dims; ++d) t[d] = Value(coords[d]);
    r.AppendUnchecked(std::move(t));
  }
  return r;
}

DistanceEvaluator ScaledEvaluator(const Schema& schema, LpNorm norm) {
  std::vector<std::unique_ptr<AttributeMetric>> metrics;
  for (std::size_t a = 0; a < schema.arity(); ++a) {
    metrics.push_back(std::make_unique<AbsoluteDifferenceMetric>(
        1.0 + 0.25 * static_cast<double>(a)));
  }
  return DistanceEvaluator(schema, std::move(metrics), norm);
}

/// Scalar-reference results for one (view, query, epsilon) triple.
struct ScanResult {
  std::vector<std::size_t> rows;
  std::vector<double> dists;
  std::size_t count = 0;
};

ScanResult ScanOn(const ColumnarView& view, const Tuple& query, double eps) {
  FlatKernel kernel(view, query);
  ScanResult result;
  kernel.CollectWithin(eps, &result.rows, &result.dists);
  result.count = kernel.CountWithin(eps);
  return result;
}

// ---------------------------------------------------------------------------
// Dispatch resolution (pure rules, no hardware dependence)
// ---------------------------------------------------------------------------

TEST(CpuFeaturesTest, ParseSimdTier) {
  EXPECT_EQ(ParseSimdTier("off"), SimdTier::kScalar);
  EXPECT_EQ(ParseSimdTier("OFF"), SimdTier::kScalar);
  EXPECT_EQ(ParseSimdTier("scalar"), SimdTier::kScalar);
  EXPECT_EQ(ParseSimdTier("sse2"), SimdTier::kSse2);
  EXPECT_EQ(ParseSimdTier("SSE2"), SimdTier::kSse2);
  EXPECT_EQ(ParseSimdTier("avx2"), SimdTier::kAvx2);
  EXPECT_EQ(ParseSimdTier("AVX2"), SimdTier::kAvx2);
  EXPECT_FALSE(ParseSimdTier("avx512").has_value());
  EXPECT_FALSE(ParseSimdTier("").has_value());
  EXPECT_FALSE(ParseSimdTier("auto").has_value());
}

TEST(CpuFeaturesTest, ResolveClampsToDetected) {
  // No override: detected wins.
  EXPECT_EQ(ResolveSimdTier(nullptr, SimdTier::kAvx2), SimdTier::kAvx2);
  EXPECT_EQ(ResolveSimdTier("", SimdTier::kSse2), SimdTier::kSse2);
  EXPECT_EQ(ResolveSimdTier("auto", SimdTier::kScalar), SimdTier::kScalar);
  // Narrowing overrides apply.
  EXPECT_EQ(ResolveSimdTier("off", SimdTier::kAvx2), SimdTier::kScalar);
  EXPECT_EQ(ResolveSimdTier("sse2", SimdTier::kAvx2), SimdTier::kSse2);
  // Widening past the CPU clamps down — never SIGILL.
  EXPECT_EQ(ResolveSimdTier("avx2", SimdTier::kSse2), SimdTier::kSse2);
  EXPECT_EQ(ResolveSimdTier("avx2", SimdTier::kScalar), SimdTier::kScalar);
  // Unknown values mean auto (with a warning).
  EXPECT_EQ(ResolveSimdTier("avx512", SimdTier::kSse2), SimdTier::kSse2);
}

TEST(CpuFeaturesTest, TierNamesRoundTrip) {
  for (SimdTier tier :
       {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2}) {
    EXPECT_EQ(ParseSimdTier(SimdTierName(tier)), tier);
  }
  EXPECT_LE(ActiveSimdTier(), DetectedSimdTier());
}

// ---------------------------------------------------------------------------
// Layout invariants
// ---------------------------------------------------------------------------

TEST(ColumnarLayoutTest, ColumnsAre64ByteAlignedAndLanePadded) {
  static_assert(ColumnarView::kLanePad * sizeof(double) == kColumnAlignBytes);
  for (std::size_t n : {1u, 7u, 8u, 9u, 63u, 64u, 100u}) {
    Relation r = RandomNumericRelation(n, 5, 17 + n);
    DistanceEvaluator ev(r.schema());
    auto view = ColumnarView::Build(r, ev);
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->padded_rows() % ColumnarView::kLanePad, 0u);
    EXPECT_GE(view->padded_rows(), view->rows());
    EXPECT_LT(view->padded_rows(), view->rows() + ColumnarView::kLanePad);
    for (std::size_t a = 0; a < view->arity(); ++a) {
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(view->column(a)) %
                    kColumnAlignBytes,
                0u)
          << "column " << a << " misaligned at n=" << n;
    }
  }
}

TEST(ColumnarLayoutTest, SetSimdTierClampsToDetected) {
  Relation r = RandomNumericRelation(16, 3, 5);
  DistanceEvaluator ev(r.schema());
  auto view = ColumnarView::Build(r, ev);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->simd_tier(), ActiveSimdTier());
  view->set_simd_tier(SimdTier::kAvx2);
  EXPECT_EQ(view->simd_tier(), std::min(SimdTier::kAvx2, DetectedSimdTier()));
  view->set_simd_tier(SimdTier::kScalar);
  EXPECT_EQ(view->simd_tier(), SimdTier::kScalar);
}

// ---------------------------------------------------------------------------
// Tier parity: every entry point, every shape
// ---------------------------------------------------------------------------

class SimdNormTest : public testing::TestWithParam<LpNorm> {};

/// The core sweep: for each (n, m, scaled) shape, pin the view to scalar to
/// record the reference, then re-run every kernel entry point under each
/// runnable vector tier and demand bit-identical results. Shapes straddle
/// the block widths (n % 4, n % 2, n < one block) and the gather floor
/// (m < 16 vs m ≥ 16, up to the kCapacity-wide 64).
TEST_P(SimdNormTest, AllEntryPointsMatchScalarBitForBit) {
  const LpNorm norm = GetParam();
  struct Shape {
    std::size_t n;
    std::size_t m;
  };
  const Shape shapes[] = {{1, 1},  {3, 5},   {7, 5},  {8, 5},  {9, 5},
                          {31, 5}, {100, 5}, {50, 1}, {40, 24}, {20, 64},
                          {257, 6}};
  Rng rng(23);
  for (const Shape& shape : shapes) {
    Relation r = RandomNumericRelation(shape.n, shape.m, 31 + shape.n);
    for (bool scaled : {false, true}) {
      DistanceEvaluator ev = scaled ? ScaledEvaluator(r.schema(), norm)
                                    : DistanceEvaluator(r.schema(), norm);
      auto view = ColumnarView::Build(r, ev);
      ASSERT_NE(view, nullptr);
      for (int qi = 0; qi < 3; ++qi) {
        Tuple query = RandomQuery(shape.m, &rng);
        const double eps = rng.Uniform(0.5, 6.0);
        const AttributeSet subset = [&] {
          AttributeSet x;
          for (std::size_t a = 0; a < shape.m; ++a) {
            if (rng.Uniform() < 0.7) x.insert(a);
          }
          return x;
        }();

        // Materialize every scalar reference value BEFORE switching tiers:
        // FlatKernel dispatches on the view's current tier at call time, so
        // reference calls made after set_simd_tier would compare a tier to
        // itself.
        view->set_simd_tier(SimdTier::kScalar);
        const ScanResult ref = ScanOn(*view, query, eps);
        FlatKernel ref_kernel(*view, query);
        std::vector<double> ref_fill(shape.n);
        ref_kernel.FillDistances(ref_fill.data(), 0, shape.n);
        std::vector<double> ref_attr(shape.n);
        ref_kernel.FillAttributeDistances(shape.m / 2, ref_attr.data());
        const double thrs[4] = {0.0, eps * 0.5, eps, eps * 2};
        std::vector<double> ref_dist(shape.n), ref_on(shape.n);
        std::vector<std::array<double, 4>> ref_within(shape.n),
            ref_on_within(shape.n);
        for (std::size_t row = 0; row < shape.n; ++row) {
          ref_dist[row] = ref_kernel.Distance(row);
          ref_on[row] = ref_kernel.DistanceOn(subset, row);
          for (int ti = 0; ti < 4; ++ti) {
            ref_within[row][ti] = ref_kernel.DistanceWithin(row, thrs[ti]);
            ref_on_within[row][ti] =
                ref_kernel.DistanceOnWithin(subset, row, thrs[ti]);
          }
        }

        for (SimdTier tier : RunnableTiers()) {
          view->set_simd_tier(tier);
          SCOPED_TRACE(testing::Message()
                       << "tier=" << SimdTierName(tier) << " n=" << shape.n
                       << " m=" << shape.m << " scaled=" << scaled
                       << " eps=" << eps);
          const ScanResult got = ScanOn(*view, query, eps);
          EXPECT_EQ(got.rows, ref.rows);
          EXPECT_EQ(got.dists, ref.dists);
          EXPECT_EQ(got.count, ref.count);

          FlatKernel kernel(*view, query);
          std::vector<double> fill(shape.n);
          kernel.FillDistances(fill.data(), 0, shape.n);
          EXPECT_EQ(fill, ref_fill);
          // Split fills must agree with the whole-range fill (chunked
          // SearchDistanceCache path, arbitrary interior boundary).
          if (shape.n > 2) {
            const std::size_t cut = shape.n / 2 + 1;
            std::vector<double> split(shape.n);
            kernel.FillDistances(split.data(), 0, cut);
            kernel.FillDistances(split.data() + cut, cut, shape.n);
            EXPECT_EQ(split, ref_fill);
          }
          std::vector<double> attr(shape.n);
          kernel.FillAttributeDistances(shape.m / 2, attr.data());
          EXPECT_EQ(attr, ref_attr);

          for (std::size_t row = 0; row < shape.n; ++row) {
            EXPECT_EQ(kernel.Distance(row), ref_dist[row]);
            for (int ti = 0; ti < 4; ++ti) {
              EXPECT_EQ(kernel.DistanceWithin(row, thrs[ti]),
                        ref_within[row][ti])
                  << "row " << row << " thr " << thrs[ti];
              EXPECT_EQ(kernel.DistanceOnWithin(subset, row, thrs[ti]),
                        ref_on_within[row][ti])
                  << "row " << row << " thr " << thrs[ti];
            }
            EXPECT_EQ(kernel.DistanceOn(subset, row), ref_on[row]);
          }
        }
      }
    }
  }
}

/// Non-finite parity: the reject pre-pass must never dismiss NaN rows (NaN
/// comparisons are false), ±inf must overflow identically, denormals must
/// not flush. Queries include finite, infinite and NaN coordinates.
TEST_P(SimdNormTest, EdgeValuesMatchScalarBitForBit) {
  const LpNorm norm = GetParam();
  for (std::size_t dims : {2u, 5u, 24u}) {
    Relation r = EdgeCaseRelation(dims);
    DistanceEvaluator ev(r.schema(), norm);
    auto view = ColumnarView::Build(r, ev);
    ASSERT_NE(view, nullptr);

    std::vector<Tuple> queries;
    for (double v : {0.0, 1.5, kInf, -kInf}) {
      Tuple q(dims);
      for (std::size_t d = 0; d < dims; ++d) q[d] = Value(v);
      queries.push_back(std::move(q));
    }
    Tuple nan_query(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      nan_query[d] = Value(d == 0 ? std::numeric_limits<double>::quiet_NaN()
                                  : 1.0);
    }
    queries.push_back(std::move(nan_query));

    for (const Tuple& query : queries) {
      for (double eps : {0.0, 1.0, 1e300, kInf}) {
        // Scalar references materialized before any tier switch (FlatKernel
        // dispatches on the view's current tier at call time).
        view->set_simd_tier(SimdTier::kScalar);
        const ScanResult ref = ScanOn(*view, query, eps);
        FlatKernel ref_kernel(*view, query);
        std::vector<double> ref_fill(r.size());
        ref_kernel.FillDistances(ref_fill.data(), 0, r.size());
        std::vector<double> ref_within(r.size());
        for (std::size_t i = 0; i < r.size(); ++i) {
          ref_within[i] = ref_kernel.DistanceWithin(i, eps);
        }
        for (SimdTier tier : RunnableTiers()) {
          view->set_simd_tier(tier);
          SCOPED_TRACE(testing::Message() << "tier=" << SimdTierName(tier)
                                          << " dims=" << dims
                                          << " eps=" << eps);
          const ScanResult got = ScanOn(*view, query, eps);
          EXPECT_EQ(got.rows, ref.rows);
          // Accepted distances can be NaN-free only; still compare exactly.
          EXPECT_EQ(got.dists, ref.dists);
          EXPECT_EQ(got.count, ref.count);
          FlatKernel kernel(*view, query);
          std::vector<double> fill(r.size());
          kernel.FillDistances(fill.data(), 0, r.size());
          for (std::size_t i = 0; i < r.size(); ++i) {
            // EXPECT_EQ(NaN, NaN) fails; compare NaN-ness semantically.
            if (std::isnan(ref_fill[i])) {
              EXPECT_TRUE(std::isnan(fill[i])) << "row " << i;
            } else {
              EXPECT_EQ(fill[i], ref_fill[i]) << "row " << i;
            }
            double a = kernel.DistanceWithin(i, eps);
            if (std::isnan(ref_within[i])) {
              EXPECT_TRUE(std::isnan(a)) << "row " << i;
            } else {
              EXPECT_EQ(a, ref_within[i]) << "row " << i;
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllNorms, SimdNormTest,
                         testing::Values(LpNorm::kL2, LpNorm::kL1,
                                         LpNorm::kLInf));

// ---------------------------------------------------------------------------
// Pooled scans: SIMD chunks, any thread count, same bits
// ---------------------------------------------------------------------------

TEST(SimdPooledScanTest, PooledCollectMatchesScalarSequentialExactly) {
  const std::size_t n = 40000;  // ≥ 2 × grain: the pools actually engage
  const std::size_t dims = 6;
  Relation r = RandomNumericRelation(n, dims, 97);
  DistanceEvaluator ev(r.schema());
  auto view = ColumnarView::Build(r, ev);
  ASSERT_NE(view, nullptr);
  Rng rng(3);
  Tuple query = RandomQuery(dims, &rng);
  const double eps = 2.5;

  view->set_simd_tier(SimdTier::kScalar);
  const ScanResult ref = ScanOn(*view, query, eps);

  for (SimdTier tier : RunnableTiers()) {
    view->set_simd_tier(tier);
    FlatKernel kernel(*view, query);
    for (std::size_t threads : {1u, 4u, 8u}) {
      WorkStealingPool pool(threads);
      SCOPED_TRACE(testing::Message() << "tier=" << SimdTierName(tier)
                                      << " threads=" << threads);
      std::vector<std::size_t> rows;
      std::vector<double> dists;
      kernel.CollectWithin(eps, &rows, &dists, &pool);
      EXPECT_EQ(rows, ref.rows);
      EXPECT_EQ(dists, ref.dists);
      EXPECT_EQ(kernel.CountWithin(eps, &pool), ref.count);
    }
  }
}

// ---------------------------------------------------------------------------
// Point kernels (kd-tree leaf scans) and wide-index end-to-end parity
// ---------------------------------------------------------------------------

TEST(SimdPointKernelTest, PrepassNeverContradictsScalarVerdicts) {
  Rng rng(41);
  for (LpNorm norm : {LpNorm::kL2, LpNorm::kL1, LpNorm::kLInf}) {
    for (std::size_t m : {8u, 9u, 16u, 64u}) {
      for (int it = 0; it < 200; ++it) {
        std::vector<double> q(m);
        std::vector<double> p(m);
        for (std::size_t a = 0; a < m; ++a) {
          q[a] = rng.Uniform(-10, 10);
          p[a] = rng.Uniform(-10, 10);
        }
        const double threshold = rng.Uniform(0, 12);
        // Scalar reference: the exact early-exit accumulator.
        LpAccumulator acc(norm);
        double exact_ref = 0;
        bool within = true;
        for (std::size_t a = 0; a < m; ++a) {
          acc.Add(std::fabs(q[a] - p[a]));
          if (acc.Exceeds(threshold)) {
            within = false;
            break;
          }
        }
        if (within) exact_ref = acc.Total();

        double exact = 0;
        switch (simd::PointWithinPrepass(DetectedSimdTier(), q.data(),
                                         p.data(), m, norm, threshold,
                                         &exact)) {
          case simd::Verdict::kCertainReject:
            EXPECT_FALSE(within) << "pre-pass rejected an accepted point";
            break;
          case simd::Verdict::kExact:
            ASSERT_EQ(norm, LpNorm::kLInf);
            if (within) {
              EXPECT_EQ(exact, exact_ref);
            }
            EXPECT_EQ(exact <= threshold, within);
            break;
          case simd::Verdict::kMaybeWithin:
          case simd::Verdict::kUnsupported:
            break;  // caller would run the scalar loop: trivially identical
        }
      }
    }
  }
}

TEST(SimdPointKernelTest, WideKdTreeMatchesBruteForceBitForBit) {
  // dims ≥ kPointMinArity so the kd leaf pre-pass engages on AVX2 machines.
  const std::size_t dims = 12;
  Relation r = RandomNumericRelation(400, dims, 59);
  DistanceEvaluator ev(r.schema());
  BruteForceIndex brute(r, ev, /*enable_fast_path=*/false);
  KdTree tree(r);
  Rng rng(13);
  for (int qi = 0; qi < 10; ++qi) {
    Tuple query = RandomQuery(dims, &rng);
    for (double eps : {1.0, 5.0, 12.0}) {
      auto expected = brute.RangeQuery(query, eps);
      auto got = tree.RangeQuery(query, eps);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].row, expected[i].row);
        EXPECT_EQ(got[i].distance, expected[i].distance);
      }
      EXPECT_EQ(tree.CountWithin(query, eps), brute.CountWithin(query, eps));
    }
    auto knn_expected = brute.KNearest(query, 7);
    auto knn_got = tree.KNearest(query, 7);
    ASSERT_EQ(knn_got.size(), knn_expected.size());
    for (std::size_t i = 0; i < knn_got.size(); ++i) {
      EXPECT_EQ(knn_got[i].row, knn_expected[i].row);
      EXPECT_EQ(knn_got[i].distance, knn_expected[i].distance);
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel work counters
// ---------------------------------------------------------------------------

TEST(SimdMetricsTest, BatchScansFlushWorkCounters) {
  MetricsRegistry registry;
  AttachGlobalMetrics(&registry);
  const std::size_t n = 1000;
  Relation r = RandomNumericRelation(n, 5, 71);
  DistanceEvaluator ev(r.schema());
  auto view = ColumnarView::Build(r, ev);
  AttachGlobalMetrics(nullptr);
  ASSERT_NE(view, nullptr);
  ASSERT_NE(view->scan_counters().rows_scanned, nullptr);
  ASSERT_NE(view->scan_counters().certain_rejects, nullptr);

  Rng rng(7);
  FlatKernel kernel(*view, RandomQuery(5, &rng));
  std::vector<std::size_t> rows;
  std::vector<double> dists;
  kernel.CollectWithin(2.0, &rows, &dists);
  EXPECT_EQ(view->scan_counters().rows_scanned->Value(), n);
  EXPECT_LE(view->scan_counters().certain_rejects->Value(), n);
  kernel.CountWithin(2.0);
  EXPECT_EQ(view->scan_counters().rows_scanned->Value(), 2 * n);
  std::vector<double> fill(n);
  kernel.FillDistances(fill.data(), 0, n);
  EXPECT_EQ(view->scan_counters().rows_scanned->Value(), 3 * n);

  // The dispatch-tier gauge is exported at attach time.
  EXPECT_EQ(registry.GetGauge("disc_simd_tier")->Value(),
            static_cast<std::int64_t>(ActiveSimdTier()));
}

}  // namespace
}  // namespace disc
