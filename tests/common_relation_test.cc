#include "common/relation.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

Relation SmallRelation() {
  Relation r(Schema::Numeric(2));
  r.AppendUnchecked(Tuple::Numeric({1, 10}));
  r.AppendUnchecked(Tuple::Numeric({2, 20}));
  r.AppendUnchecked(Tuple::Numeric({3, 30}));
  return r;
}

TEST(Schema, NumericFactory) {
  Schema s = Schema::Numeric(3);
  EXPECT_EQ(s.arity(), 3u);
  EXPECT_EQ(s.name(0), "a0");
  EXPECT_EQ(s.kind(2), ValueKind::kNumeric);
  EXPECT_TRUE(s.all_numeric());
}

TEST(Schema, NamedFactories) {
  Schema n = Schema::NumericNamed({"x", "y"});
  EXPECT_EQ(n.name(1), "y");
  EXPECT_TRUE(n.all_numeric());
  Schema s = Schema::StringNamed({"name"});
  EXPECT_EQ(s.kind(0), ValueKind::kString);
  EXPECT_FALSE(s.all_numeric());
}

TEST(Schema, IndexOf) {
  Schema s = Schema::NumericNamed({"x", "y"});
  EXPECT_EQ(s.IndexOf("y"), 1u);
  EXPECT_EQ(s.IndexOf("z"), Schema::npos);
}

TEST(Schema, Equality) {
  EXPECT_EQ(Schema::Numeric(2), Schema::Numeric(2));
  EXPECT_FALSE(Schema::Numeric(2) == Schema::Numeric(3));
}

TEST(Relation, AppendChecksArity) {
  Relation r(Schema::Numeric(2));
  EXPECT_TRUE(r.Append(Tuple::Numeric({1, 2})).ok());
  Status bad = r.Append(Tuple::Numeric({1, 2, 3}));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Relation, SizeAndAccess) {
  Relation r = SmallRelation();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_DOUBLE_EQ(r[1][1].num(), 20.0);
}

TEST(Relation, SelectPreservesOrder) {
  Relation r = SmallRelation();
  Relation sub = r.Select({2, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub[0][0].num(), 3.0);
  EXPECT_DOUBLE_EQ(sub[1][0].num(), 1.0);
}

TEST(Relation, DomainDistinctSorted) {
  Relation r(Schema::Numeric(1));
  r.AppendUnchecked(Tuple::Numeric({3}));
  r.AppendUnchecked(Tuple::Numeric({1}));
  r.AppendUnchecked(Tuple::Numeric({3}));
  std::vector<Value> d = r.Domain(0);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0].num(), 1.0);
  EXPECT_DOUBLE_EQ(d[1].num(), 3.0);
}

TEST(Relation, MaxDomainSize) {
  Relation r = SmallRelation();
  EXPECT_EQ(r.MaxDomainSize(), 3u);
}

TEST(Relation, RangeComputesMinMax) {
  Relation r = SmallRelation();
  Relation::NumericRange range = r.Range(1);
  EXPECT_DOUBLE_EQ(range.min, 10.0);
  EXPECT_DOUBLE_EQ(range.max, 30.0);
}

TEST(Relation, EmptyRelation) {
  Relation r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.arity(), 0u);
}

TEST(Relation, MutableAccess) {
  Relation r = SmallRelation();
  r[0][0] = Value(99.0);
  EXPECT_DOUBLE_EQ(r[0][0].num(), 99.0);
}

TEST(Relation, IterationCoversAllTuples) {
  Relation r = SmallRelation();
  double sum = 0;
  for (const Tuple& t : r) sum += t[0].num();
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

}  // namespace
}  // namespace disc
