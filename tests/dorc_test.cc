#include "cleaning/dorc.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "eval/repair_metrics.h"

namespace disc {
namespace {

Relation ClusterWithOutlier(std::uint64_t seed = 21) {
  Rng rng(seed);
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 50; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5)}));
  }
  r.AppendUnchecked(Tuple::Numeric({0.1, 30.0}));  // one broken attribute
  return r;
}

TEST(Dorc, OutlierSubstitutedByInlier) {
  Relation data = ClusterWithOutlier();
  DistanceEvaluator ev(data.schema());
  DorcOptions opts;
  opts.constraint = {1.5, 5};
  Relation repaired = Dorc(data, ev, opts);
  std::size_t last = data.size() - 1;
  // The outlier must now equal one of the original inliers.
  bool matches_existing = false;
  for (std::size_t i = 0; i < last; ++i) {
    if (repaired[last] == data[i]) {
      matches_existing = true;
      break;
    }
  }
  EXPECT_TRUE(matches_existing);
}

TEST(Dorc, SubstitutionChangesAllDifferingAttributes) {
  // Tuple substitution over-changes: both attributes take the donor's
  // values, unlike DISC's single-attribute adjustment (Figure 2 story).
  Relation data = ClusterWithOutlier();
  DistanceEvaluator ev(data.schema());
  DorcOptions opts;
  opts.constraint = {1.5, 5};
  Relation repaired = Dorc(data, ev, opts);
  std::size_t last = data.size() - 1;
  AttributeSet changed = ModifiedAttributes(data, repaired, last);
  EXPECT_EQ(changed.size(), 2u);
}

TEST(Dorc, InliersUntouched) {
  Relation data = ClusterWithOutlier();
  DistanceEvaluator ev(data.schema());
  DorcOptions opts;
  opts.constraint = {1.5, 5};
  Relation repaired = Dorc(data, ev, opts);
  for (std::size_t i = 0; i + 1 < data.size(); ++i) {
    EXPECT_EQ(repaired[i], data[i]) << "row " << i;
  }
}

TEST(Dorc, IndexedVariantAgreesWithPairwise) {
  Relation data = ClusterWithOutlier();
  DistanceEvaluator ev(data.schema());
  DorcOptions pairwise;
  pairwise.constraint = {1.5, 5};
  DorcOptions indexed = pairwise;
  indexed.use_index = true;
  Relation a = Dorc(data, ev, pairwise);
  Relation b = Dorc(data, ev, indexed);
  std::size_t last = data.size() - 1;
  // Both substitute the outlier with its nearest constraint-satisfying
  // tuple; with a unique nearest inlier the results agree.
  EXPECT_EQ(a[last], b[last]);
}

TEST(Dorc, CleanDataUnchanged) {
  Rng rng(30);
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 40; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Gaussian(0, 0.4), rng.Gaussian(0, 0.4)}));
  }
  DistanceEvaluator ev(r.schema());
  DorcOptions opts;
  opts.constraint = {1.5, 4};
  Relation repaired = Dorc(r, ev, opts);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(repaired[i], r[i]);
  }
}

TEST(Dorc, NoCorePointsLeavesDataAlone) {
  // With η impossible to meet, nothing satisfies the constraint, so no
  // substitution donor exists and tuples stay as they are.
  Relation data = ClusterWithOutlier();
  DistanceEvaluator ev(data.schema());
  DorcOptions opts;
  opts.constraint = {0.5, 1000};
  Relation repaired = Dorc(data, ev, opts);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(repaired[i], data[i]);
  }
}

}  // namespace
}  // namespace disc
