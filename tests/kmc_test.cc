#include "clustering/kmc.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "eval/clustering_metrics.h"

namespace disc {
namespace {

LabeledRelation TwoBlobs(std::size_t per_blob = 200, std::uint64_t seed = 14) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0, 0}, 0.7, per_blob});
  clusters.push_back({{12, 0}, 0.7, per_blob});
  return GenerateGaussianMixture(clusters, seed);
}

TEST(Kmc, RecoversBlobsFromCoreset) {
  LabeledRelation data = TwoBlobs();
  KmcParams p;
  p.k = 2;
  p.coreset_size = 60;
  KMeansResult res = Kmc(data.data, p);
  PairCountingScores s = PairCounting(res.labels, data.labels);
  EXPECT_GT(s.f1, 0.9);
}

TEST(Kmc, AutoCoresetSize) {
  LabeledRelation data = TwoBlobs();
  KmcParams p;
  p.k = 2;
  KMeansResult res = Kmc(data.data, p);
  EXPECT_EQ(res.labels.size(), data.data.size());
  EXPECT_EQ(NumClusters(res.labels), 2u);
}

TEST(Kmc, AllPointsLabeled) {
  LabeledRelation data = TwoBlobs(100);
  KmcParams p;
  p.k = 2;
  p.coreset_size = 30;
  KMeansResult res = Kmc(data.data, p);
  EXPECT_EQ(NumNoise(res.labels), 0u);
}

TEST(Kmc, CoresetLargerThanNFallsBackToExact) {
  LabeledRelation data = TwoBlobs(30);
  KmcParams p;
  p.k = 2;
  p.coreset_size = 100000;
  KMeansResult res = Kmc(data.data, p);
  EXPECT_EQ(NumClusters(res.labels), 2u);
}

TEST(Kmc, InertiaWithinFactorOfFullKMeans) {
  LabeledRelation data = TwoBlobs();
  KmcParams p;
  p.k = 2;
  p.coreset_size = 80;
  KMeansResult coreset_res = Kmc(data.data, p);
  KMeansResult full = KMeans(data.data, {2});
  // Chen's coreset guarantees (1+ε) approximation; our sampling variant
  // should land within a small constant factor.
  EXPECT_LT(coreset_res.inertia, 2.0 * full.inertia + 1e-9);
}

TEST(Kmc, DeterministicForFixedSeed) {
  LabeledRelation data = TwoBlobs();
  KmcParams p;
  p.k = 2;
  p.seed = 5;
  KMeansResult a = Kmc(data.data, p);
  KMeansResult b = Kmc(data.data, p);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Kmc, EmptyRelation) {
  Relation r(Schema::Numeric(2));
  KMeansResult res = Kmc(r, {});
  EXPECT_TRUE(res.labels.empty());
}

}  // namespace
}  // namespace disc
