// Anytime-saving contract across the pipeline: exhaustive fault-injection
// sweeps over every node-expansion point (DiscSaver and ExactSaver), already-
// expired deadlines, batch deadlines with wall-clock bounds, drain-and-skip
// cancellation, and the no-budget bit-identity guarantee.

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/disc_saver.h"
#include "core/exact_saver.h"
#include "core/outlier_saving.h"
#include "data/generators.h"
#include "index/index_factory.h"

namespace disc {
namespace {

Relation GaussianInliers(std::size_t count, std::size_t dims,
                         std::uint64_t seed) {
  Rng rng(seed);
  Relation r(Schema::Numeric(dims));
  for (std::size_t i = 0; i < count; ++i) {
    Tuple t(dims);
    for (std::size_t d = 0; d < dims; ++d) t[d] = Value(rng.Gaussian(0, 1.0));
    r.AppendUnchecked(std::move(t));
  }
  return r;
}

Relation LatticeInliers(int side) {
  Relation r(Schema::Numeric(2));
  for (int x = 0; x < side; ++x) {
    for (int y = 0; y < side; ++y) {
      r.AppendUnchecked(Tuple::Numeric({double(x), double(y)}));
    }
  }
  return r;
}

/// Noisy multi-cluster dataset for SaveOutliers-level tests.
Relation MakeNoisyDataset(std::uint64_t seed) {
  std::vector<ClusterSpec> specs = {
      {{0, 0, 0, 0}, 0.5, 70},
      {{10, 10, 0, 0}, 0.5, 70},
      {{0, 10, 10, 0}, 0.5, 70},
  };
  LabeledRelation mixture = GenerateGaussianMixture(specs, seed);
  Rng rng(seed + 1);
  for (std::size_t row = 3; row < mixture.data.size(); row += 9) {
    std::size_t a = static_cast<std::size_t>(rng.UniformInt(0, 3));
    mixture.data[row][a] =
        Value(mixture.data[row][a].num() + 20.0 + rng.Uniform() * 5.0);
  }
  return std::move(mixture.data);
}

/// A kCancel fault at the k-th `search.node` hit — the exhaustive-sweep
/// probe: combined with `injector.token()` as the search's cancellation,
/// it reproduces "cancel at exactly node k" deterministically.
FaultSpec CancelAtNode(std::size_t k) {
  FaultSpec spec;
  spec.site = "search.node";
  spec.kind = FaultKind::kCancel;
  spec.nth = k;
  return spec;
}

/// The core soundness assertion of the anytime contract: a (possibly
/// truncated) result is either a fully feasible adjustment with a
/// consistent cost, or the untouched input — never a partially-adjusted
/// tuple.
void ExpectSoundResult(const DiscSaver& saver, const DistanceEvaluator& ev,
                       const Tuple& outlier, const SaveResult& res) {
  if (res.feasible) {
    EXPECT_TRUE(saver.bounds().IsFeasible(res.adjusted));
    EXPECT_NEAR(res.cost, ev.Distance(outlier, res.adjusted), 1e-12);
    EXPECT_EQ(res.adjusted_attributes.bits(),
              ChangedAttributes(outlier, res.adjusted).bits());
  } else {
    EXPECT_EQ(res.adjusted, outlier);
  }
}

TEST(AnytimeSave, DiscCancellationSweepEveryNodeIsSound) {
  // Exhaustively cancel at every node-expansion index of a full search and
  // check the exit is sound at each point. 4 attributes keeps the full
  // traversal at <= 2^4 visited sets, so the sweep stays fast.
  Relation inliers = GaussianInliers(50, 4, 21);
  DistanceEvaluator ev(inliers.schema());
  DiscSaver saver(inliers, ev, {1.5, 4});
  const Tuple outlier = Tuple::Numeric({0.2, -0.1, 12.0, 0.3});

  // Reference run: an armed-but-empty injector counts `search.node` hits
  // without firing anything, giving the node-expansion total of a full
  // search alongside its answer.
  FaultInjector counter;
  AttachGlobalFaultInjector(&counter);
  SaveResult full = saver.Save(outlier);
  AttachGlobalFaultInjector(nullptr);
  ASSERT_TRUE(full.feasible);
  ASSERT_EQ(full.termination, SaveTermination::kCompleted);
  const std::size_t total_nodes =
      static_cast<std::size_t>(counter.hit_count("search.node"));
  ASSERT_GT(total_nodes, 2u);

  for (std::size_t k = 0; k < total_nodes; ++k) {
    FaultInjector injector;
    injector.Add(CancelAtNode(k));
    AttachGlobalFaultInjector(&injector);
    SaveOptions opts;
    opts.budget.cancellation = injector.token();
    SaveResult res = saver.Save(outlier, opts);
    AttachGlobalFaultInjector(nullptr);
    EXPECT_EQ(res.termination, SaveTermination::kCancelled) << "node " << k;
    ExpectSoundResult(saver, ev, outlier, res);
    if (res.feasible) {
      // Incumbent monotonicity: a truncated answer never beats the optimum
      // of the full search.
      EXPECT_GE(res.cost, full.cost - 1e-12) << "node " << k;
    }
  }
}

TEST(AnytimeSave, DiscCancellationSweepKappaRestricted) {
  // Same sweep through the κ-restricted walker (different seeding and
  // incumbent handling than the unrestricted path).
  Relation inliers = GaussianInliers(50, 4, 22);
  DistanceEvaluator ev(inliers.schema());
  DiscSaver saver(inliers, ev, {1.5, 4});
  const Tuple outlier = Tuple::Numeric({0.0, 0.1, 11.0, -0.2});

  FaultInjector counter;
  SaveOptions counting;
  counting.kappa = 2;
  AttachGlobalFaultInjector(&counter);
  SaveResult full = saver.Save(outlier, counting);
  AttachGlobalFaultInjector(nullptr);
  const std::size_t total_nodes =
      static_cast<std::size_t>(counter.hit_count("search.node"));
  ASSERT_GT(total_nodes, 2u);

  for (std::size_t k = 0; k < total_nodes; ++k) {
    FaultInjector injector;
    injector.Add(CancelAtNode(k));
    AttachGlobalFaultInjector(&injector);
    SaveOptions opts;
    opts.kappa = 2;
    opts.budget.cancellation = injector.token();
    SaveResult res = saver.Save(outlier, opts);
    AttachGlobalFaultInjector(nullptr);
    EXPECT_EQ(res.termination, SaveTermination::kCancelled) << "node " << k;
    ExpectSoundResult(saver, ev, outlier, res);
    if (res.feasible && full.feasible) {
      EXPECT_LE(res.adjusted_attributes.size(), 2u) << "node " << k;
      EXPECT_GE(res.cost, full.cost - 1e-12) << "node " << k;
    }
  }
}

TEST(AnytimeSave, ExactCancellationSweepEveryCandidateIsSound) {
  Relation inliers = LatticeInliers(3);  // 9 points, small discrete domain
  DistanceEvaluator ev(inliers.schema());
  ExactSaver saver(inliers, ev, {1.5, 3});
  const Tuple outlier = Tuple::Numeric({7, 7});

  ExactResult full = saver.Save(outlier);
  ASSERT_TRUE(full.termination == SaveTermination::kCompleted ||
              full.termination == SaveTermination::kInfeasible);
  ASSERT_GT(full.candidates_checked, 2u);

  for (std::size_t k = 0; k < full.candidates_checked; ++k) {
    FaultInjector injector;
    injector.Add(CancelAtNode(k));
    AttachGlobalFaultInjector(&injector);
    ExactOptions opts;
    opts.budget.cancellation = injector.token();
    ExactResult res = saver.Save(outlier, opts);
    AttachGlobalFaultInjector(nullptr);
    EXPECT_EQ(res.termination, SaveTermination::kCancelled) << "leaf " << k;
    if (res.feasible) {
      EXPECT_NEAR(res.cost, ev.Distance(outlier, res.adjusted), 1e-12);
      if (full.feasible) EXPECT_GE(res.cost, full.cost - 1e-12);
    } else {
      EXPECT_EQ(res.adjusted, outlier);
    }
  }
}

TEST(AnytimeSave, AlreadyExpiredDeadlineReturnsSoundRecordImmediately) {
  Relation inliers = GaussianInliers(60, 3, 23);
  DistanceEvaluator ev(inliers.schema());
  DiscSaver saver(inliers, ev, {1.5, 4});
  const Tuple outlier = Tuple::Numeric({0.1, 9.0, -0.3});
  SaveOptions opts;
  opts.budget.deadline = Deadline::AfterMillis(-1);
  SaveResult res = saver.Save(outlier, opts);
  EXPECT_EQ(res.termination, SaveTermination::kDeadline);
  ExpectSoundResult(saver, ev, outlier, res);
}

TEST(AnytimeSave, QueryBudgetTruncatesSoundly) {
  Relation inliers = GaussianInliers(60, 4, 24);
  DistanceEvaluator ev(inliers.schema());
  DiscSaver saver(inliers, ev, {1.5, 4});
  const Tuple outlier = Tuple::Numeric({0.2, 10.0, -0.1, 0.4});
  SaveOptions opts;
  opts.budget.max_index_queries = 5;
  SaveResult res = saver.Save(outlier, opts);
  EXPECT_EQ(res.termination, SaveTermination::kQueryBudget);
  ExpectSoundResult(saver, ev, outlier, res);

  SaveResult unbudgeted = saver.Save(outlier);
  EXPECT_GT(unbudgeted.index_queries, 5u)
      << "scenario must actually exceed the query budget";
}

TEST(AnytimeSave, UnlimitedBatchBudgetBitIdenticalToPlainSaveAll) {
  Relation data = MakeNoisyDataset(31);
  DistanceEvaluator ev(data.schema());
  DistanceConstraint constraint{1.6, 5};
  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(data, ev, constraint.epsilon);
  InlierOutlierSplit split = SplitInliersOutliers(data, *index, constraint);
  ASSERT_GT(split.outlier_rows.size(), 3u);
  Relation inliers = data.Select(split.inlier_rows);
  std::vector<Tuple> outliers;
  for (std::size_t row : split.outlier_rows) outliers.push_back(data[row]);

  DiscSaver saver(inliers, ev, constraint);
  SaveOptions options;
  options.kappa = 2;

  std::vector<SaveResult> plain = saver.SaveAll(outliers, options);
  // A batch budget that never trips (generous deadline, live token) must
  // not change a single bit of the output.
  CancellationSource never_fired;
  BatchBudget generous;
  generous.deadline = Deadline::AfterMillis(3'600'000);
  generous.cancellation = never_fired.token();
  std::vector<SaveResult> budgeted =
      saver.SaveAll(outliers, options, nullptr, generous);
  ASSERT_EQ(plain.size(), budgeted.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].feasible, budgeted[i].feasible) << i;
    EXPECT_EQ(plain[i].adjusted, budgeted[i].adjusted) << i;
    EXPECT_EQ(plain[i].cost, budgeted[i].cost) << i;  // bit-identical
    EXPECT_EQ(plain[i].termination, budgeted[i].termination) << i;
    EXPECT_EQ(plain[i].index_queries, budgeted[i].index_queries) << i;
  }
}

TEST(AnytimeSave, PreCancelledBatchDrainsAndSkipsEverything) {
  Relation data = MakeNoisyDataset(32);
  DistanceEvaluator ev(data.schema());
  DistanceConstraint constraint{1.6, 5};
  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(data, ev, constraint.epsilon);
  InlierOutlierSplit split = SplitInliersOutliers(data, *index, constraint);
  ASSERT_GT(split.outlier_rows.size(), 3u);
  Relation inliers = data.Select(split.inlier_rows);
  std::vector<Tuple> outliers;
  for (std::size_t row : split.outlier_rows) outliers.push_back(data[row]);

  DiscSaver saver(inliers, ev, constraint);
  CancellationSource source;
  source.RequestCancel();
  BatchBudget batch;
  batch.cancellation = source.token();

  // Sequential and pooled paths must both drain-and-skip: every record
  // present, nothing adjusted, pool shutdown unblocked.
  WorkStealingPool pool(4);
  for (WorkStealingPool* p : {static_cast<WorkStealingPool*>(nullptr), &pool}) {
    std::vector<SaveResult> results = saver.SaveAll(outliers, {}, p, batch);
    ASSERT_EQ(results.size(), outliers.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].termination, SaveTermination::kCancelled) << i;
      EXPECT_FALSE(results[i].feasible) << i;
      EXPECT_EQ(results[i].adjusted, outliers[i]) << i;
    }
  }
}

TEST(AnytimeSave, AggressiveBatchDeadlineStaysWithinWallClockBound) {
  Relation data = MakeNoisyDataset(33);
  DistanceEvaluator ev(data.schema());

  OutlierSavingOptions opts;
  opts.constraint = {1.6, 5};
  opts.save.kappa = 2;
  const std::int64_t deadline_ms = 150;
  opts.batch_deadline_ms = deadline_ms;

  const auto start = std::chrono::steady_clock::now();
  SavedDataset saved = SaveOutliers(data, ev, opts);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  // Degradation is graceful: the call still succeeds and produces a full
  // set of records, each tagged with how its search ended.
  ASSERT_TRUE(saved.status.ok());
  ASSERT_EQ(saved.records.size(), saved.outlier_rows.size());
  ASSERT_GT(saved.records.size(), 3u);

  // Wall clock within 2x the deadline (generous absolute slack for slow or
  // sanitized CI machines — the index build is counted in, and the last
  // in-flight slice may straddle the deadline).
  EXPECT_LT(wall_ms, 2.0 * static_cast<double>(deadline_ms) + 500.0);

  // Every saved tuple must be genuinely feasible (>= eta epsilon-neighbors
  // against the inlier set), no matter how its search terminated.
  Relation inliers = data.Select(saved.inlier_rows);
  DiscSaver verifier(inliers, ev, opts.constraint);
  for (const OutlierRecord& rec : saved.records) {
    if (rec.disposition == OutlierDisposition::kSaved) {
      EXPECT_TRUE(verifier.bounds().IsFeasible(rec.adjusted))
          << "row " << rec.row;
    } else {
      EXPECT_EQ(rec.adjusted, data[rec.row]) << "row " << rec.row;
    }
  }

  // The tallies are consistent with the per-record terminations.
  std::size_t tallied = 0;
  for (SaveTermination t :
       {SaveTermination::kCompleted, SaveTermination::kVisitBudget,
        SaveTermination::kQueryBudget, SaveTermination::kDeadline,
        SaveTermination::kCancelled, SaveTermination::kInfeasible,
        SaveTermination::kFault}) {
    tallied += saved.CountTermination(t);
  }
  EXPECT_EQ(tallied, saved.records.size());
  if (saved.degraded()) {
    EXPECT_FALSE(saved.DegradationStatus().ok());
  } else {
    EXPECT_TRUE(saved.DegradationStatus().ok());
  }
}

TEST(AnytimeSave, SaveOutliersCancellationDegradesWithStatus) {
  Relation data = MakeNoisyDataset(34);
  DistanceEvaluator ev(data.schema());

  CancellationSource source;
  source.RequestCancel();  // cancelled before the pipeline even starts
  OutlierSavingOptions opts;
  opts.constraint = {1.6, 5};
  opts.cancellation = source.token();

  SavedDataset saved = SaveOutliers(data, ev, opts);
  ASSERT_TRUE(saved.status.ok());  // degradation is not an error
  ASSERT_GT(saved.records.size(), 3u);
  EXPECT_TRUE(saved.degraded());
  EXPECT_EQ(saved.DegradationStatus().code(), StatusCode::kCancelled);
  EXPECT_EQ(saved.CountTermination(SaveTermination::kCancelled),
            saved.records.size());
  // Nothing may be half-adjusted: the repaired relation equals the input.
  for (std::size_t row = 0; row < data.size(); ++row) {
    EXPECT_EQ(saved.repaired[row], data[row]);
  }
  EXPECT_GT(saved.split_index_queries, 0u);
}

TEST(AnytimeSave, SaveOutliersExactPathHonorsBatchCancellation) {
  // The exact path degrades through the same drain-and-skip policy.
  Relation data = MakeNoisyDataset(35);
  DistanceEvaluator ev(data.schema());

  CancellationSource source;
  source.RequestCancel();
  OutlierSavingOptions opts;
  opts.constraint = {1.6, 5};
  opts.use_exact = true;
  opts.exact_max_candidates = 10'000;
  opts.cancellation = source.token();

  SavedDataset saved = SaveOutliers(data, ev, opts);
  ASSERT_TRUE(saved.status.ok());
  ASSERT_GT(saved.records.size(), 3u);
  EXPECT_EQ(saved.CountTermination(SaveTermination::kCancelled),
            saved.records.size());
  for (const OutlierRecord& rec : saved.records) {
    EXPECT_NE(rec.disposition, OutlierDisposition::kSaved);
    EXPECT_EQ(rec.adjusted, data[rec.row]);
  }
}

}  // namespace
}  // namespace disc
