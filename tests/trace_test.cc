// Unit tests for the hierarchical tracing primitives (DESIGN.md §13):
// deterministic id derivation, the PhaseScope pause/resume discipline,
// SpanCollector drain ordering, the WallPhaseProfiler accumulators, and the
// TraceRecorder ring behind /tracez. The span-set parity of a full pipeline
// run lives in trace_determinism_test.cc.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/trace.h"

namespace disc {
namespace {

TEST(TraceIds, DerivationIsDeterministicAndCollisionFree) {
  SetTraceBatchCounterForTest(42);
  const std::uint64_t seed_a = NextTraceBatchSeed();
  SetTraceBatchCounterForTest(42);
  const std::uint64_t seed_b = NextTraceBatchSeed();
  EXPECT_EQ(seed_a, seed_b);
  EXPECT_NE(seed_a, NextTraceBatchSeed());  // counter advanced

  EXPECT_EQ(DeriveTraceId(seed_a, 3), DeriveTraceId(seed_a, 3));
  EXPECT_NE(DeriveTraceId(seed_a, 3), DeriveTraceId(seed_a, 4));

  // Distinct positions in the tree — different kind or ordinal or parent —
  // must yield distinct span ids (splitmix over structural inputs).
  const std::uint64_t trace = DeriveTraceId(seed_a, 0);
  std::set<std::uint64_t> ids;
  for (TraceSpanKind kind :
       {TraceSpanKind::kRoot, TraceSpanKind::kSearch, TraceSpanKind::kPhase,
        TraceSpanKind::kScan, TraceSpanKind::kChunk,
        TraceSpanKind::kEstimate}) {
    for (std::uint64_t ordinal = 0; ordinal < 8; ++ordinal) {
      ids.insert(DeriveSpanId(trace, kind, ordinal));
    }
  }
  EXPECT_EQ(ids.size(), 6u * 8u);
  EXPECT_EQ(DeriveSpanId(trace, TraceSpanKind::kSearch, 1),
            DeriveSpanId(trace, TraceSpanKind::kSearch, 1));
}

TEST(TraceIds, MixIsDeterministic) {
  EXPECT_EQ(TraceMix(7, 9), TraceMix(7, 9));
  EXPECT_NE(TraceMix(7, 9), TraceMix(9, 7));
}

/// Spins until the steady clock advanced by at least `ns`.
void SpinFor(std::uint64_t ns) {
  const std::uint64_t until = TraceNowNs() + ns;
  while (TraceNowNs() < until) {
  }
}

TEST(PhaseScopeTest, NestedScopePausesTheOuterPhase) {
  SpanCollector collector(1);
  WallPhaseProfiler profiler;
  SearchTrace trace;
  trace.collector = &collector;
  trace.profiler = &profiler;
  trace.trace_id = DeriveTraceId(1, 0);
  trace.root_span_id = DeriveSpanId(trace.trace_id, TraceSpanKind::kRoot, 0);
  trace.search_span_id =
      DeriveSpanId(trace.root_span_id, TraceSpanKind::kSearch, 0);
  ASSERT_TRUE(trace.enabled());

  const std::uint64_t start = TraceNowNs();
  {
    PhaseScope outer(&trace, TracePhase::kBoundsScan);
    SpinFor(200'000);
    {
      PhaseScope inner(&trace, TracePhase::kIndexQuery);
      SpinFor(200'000);
    }
    SpinFor(200'000);
  }
  const std::uint64_t elapsed = TraceNowNs() - start;

  const auto& bounds =
      trace.phases[static_cast<std::size_t>(TracePhase::kBoundsScan)];
  const auto& index =
      trace.phases[static_cast<std::size_t>(TracePhase::kIndexQuery)];
  EXPECT_EQ(bounds.count, 1u);
  EXPECT_EQ(index.count, 1u);
  EXPECT_GE(index.ns, 200'000u);
  EXPECT_GE(bounds.ns, 400'000u);
  // Exclusive accounting: the inner phase's time is *not* also charged to
  // the outer one, so the per-phase total stays <= the real elapsed wall.
  EXPECT_LE(bounds.ns + index.ns, elapsed);

  trace.FlushPhaseSpans(0);
  std::vector<TraceSpan> spans = collector.Drain();
  ASSERT_EQ(spans.size(), 2u);
  for (const TraceSpan& span : spans) {
    EXPECT_EQ(span.trace_id, trace.trace_id);
    EXPECT_EQ(span.parent_id, trace.search_span_id);
    const TracePhase phase = span.name == "index_query"
                                 ? TracePhase::kIndexQuery
                                 : TracePhase::kBoundsScan;
    EXPECT_EQ(span.span_id, trace.PhaseSpanId(phase)) << span.name;
  }

  // The same totals were folded into the profiler at flush.
  const auto snap = profiler.Snapshot();
  EXPECT_EQ(snap[static_cast<std::size_t>(TracePhase::kBoundsScan)].ns,
            bounds.ns);
  EXPECT_EQ(snap[static_cast<std::size_t>(TracePhase::kIndexQuery)].count,
            1u);
}

TEST(PhaseScopeTest, DetachedTraceIsANoOp) {
  SearchTrace trace;  // no collector, no profiler
  EXPECT_FALSE(trace.enabled());
  {
    PhaseScope scope(&trace, TracePhase::kVerdict);
    PhaseScope null_scope(nullptr, TracePhase::kVerdict);
  }
  for (const auto& acc : trace.phases) {
    EXPECT_EQ(acc.ns, 0u);
    EXPECT_EQ(acc.count, 0u);
  }
}

TEST(SpanCollectorTest, DrainSortsByTraceThenSpanIdAndEmpties) {
  SpanCollector collector(3);
  auto make = [](std::uint64_t trace_id, std::uint64_t span_id) {
    TraceSpan span;
    span.name = "search";
    span.trace_id = trace_id;
    span.span_id = span_id;
    return span;
  };
  collector.Record(2, make(2, 1));
  collector.Record(0, make(1, 9));
  collector.Record(1, make(1, 3));
  collector.Record(0, make(2, 0));

  std::vector<TraceSpan> spans = collector.Drain();
  ASSERT_EQ(spans.size(), 4u);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> order;
  for (const TraceSpan& span : spans) {
    order.emplace_back(span.trace_id, span.span_id);
  }
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> want = {
      {1, 3}, {1, 9}, {2, 0}, {2, 1}};
  EXPECT_EQ(order, want);
  EXPECT_TRUE(collector.Drain().empty());
}

TEST(SpanCollectorTest, SlotForWorkerMapsWorkersAndCallers) {
  EXPECT_EQ(SpanSlotForWorker(-1, 4), 3u);  // non-worker -> caller slot
  EXPECT_EQ(SpanSlotForWorker(0, 4), 0u);
  EXPECT_EQ(SpanSlotForWorker(2, 4), 2u);
  EXPECT_EQ(SpanSlotForWorker(3, 4), 3u);  // out-of-range worker -> caller
  EXPECT_EQ(SpanSlotForWorker(-1, 1), 0u);
}

TEST(WallPhaseProfilerTest, ResetIsLosslessAndJsonCarriesFoldedStacks) {
  WallPhaseProfiler profiler;
  profiler.Add(TracePhase::kIndexQuery, 100);
  profiler.Add(TracePhase::kIndexQuery, 50);
  profiler.Add(TracePhase::kStealIdle, 7);

  auto snap = profiler.Snapshot();
  EXPECT_EQ(snap[static_cast<std::size_t>(TracePhase::kIndexQuery)].ns, 150u);
  EXPECT_EQ(snap[static_cast<std::size_t>(TracePhase::kIndexQuery)].count,
            2u);
  EXPECT_EQ(snap[static_cast<std::size_t>(TracePhase::kStealIdle)].ns, 7u);

  profiler.Reset();
  snap = profiler.Snapshot();
  for (const auto& total : snap) {
    EXPECT_EQ(total.ns, 0u);
    EXPECT_EQ(total.count, 0u);
  }
  // Activity after the reset is reported in full — nothing was dropped.
  profiler.Add(TracePhase::kVerdict, 33);
  snap = profiler.Snapshot();
  EXPECT_EQ(snap[static_cast<std::size_t>(TracePhase::kVerdict)].ns, 33u);
  EXPECT_EQ(snap[static_cast<std::size_t>(TracePhase::kVerdict)].count, 1u);

  const std::string json = profiler.ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"verdict\":{\"wall_ns\":33,\"count\":1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"disc_save;verdict 33\""), std::string::npos) << json;
  // steal_idle folds under the pool root, not the save pipeline.
  profiler.Add(TracePhase::kStealIdle, 5);
  EXPECT_NE(profiler.ToJson().find("\"disc_pool;steal_idle 5\""),
            std::string::npos);
}

TraceSpan FinishedSpan(const char* name, std::uint64_t trace_id,
                       std::uint64_t dur_ns) {
  TraceSpan span;
  span.name = name;
  span.trace_id = trace_id;
  span.span_id = DeriveSpanId(trace_id, TraceSpanKind::kRoot, 0);
  span.start_ns = TraceNowNs();
  span.duration_ns = dur_ns;
  return span;
}

TEST(TraceRecorderTest, RingKeepsNewestAndAppliesSlowThreshold) {
  TraceRecorder recorder(/*recent_capacity=*/2, /*slow_threshold_ns=*/1000);
  recorder.RecordFinished(FinishedSpan("search", 111, 500));  // below cutoff
  recorder.RecordFinished(FinishedSpan("search", 222, 2000));
  recorder.RecordFinished(FinishedSpan("search", 333, 3000));
  recorder.RecordFinished(FinishedSpan("search", 444, 4000));

  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"recent_capacity\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"slow_threshold_ns\":1000"), std::string::npos);
  EXPECT_EQ(json.find("\"trace_id\":111"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"trace_id\":222"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\":333"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\":444"), std::string::npos) << json;
}

TEST(TraceRecorderTest, ActiveSlotsPublishAndRelease) {
  TraceRecorder recorder;
  const int slot = recorder.BeginActive("search", 77, 88, TraceNowNs());
  ASSERT_GE(slot, 0);
  std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"trace_id\":77"), std::string::npos) << json;
  EXPECT_NE(json.find("\"elapsed_ns\":"), std::string::npos) << json;

  recorder.EndActive(slot);
  json = recorder.ToJson();
  EXPECT_NE(json.find("\"active\":[]"), std::string::npos) << json;
}

TEST(TraceRecorderTest, ActiveTableExhaustionIsBestEffort) {
  TraceRecorder recorder;
  std::vector<int> slots;
  for (int i = 0; i < 64; ++i) {
    const int slot = recorder.BeginActive("search", 1, i + 1, TraceNowNs());
    ASSERT_GE(slot, 0) << "slot " << i;
    slots.push_back(slot);
  }
  // All 64 slots busy: the 65th search goes unlisted instead of blocking.
  EXPECT_EQ(recorder.BeginActive("search", 1, 999, TraceNowNs()), -1);
  recorder.EndActive(slots[0]);
  EXPECT_GE(recorder.BeginActive("search", 1, 999, TraceNowNs()), 0);
  for (std::size_t i = 1; i < slots.size(); ++i) {
    recorder.EndActive(slots[i]);
  }
}

TEST(GlobalHooks, AttachDetachRoundTrip) {
  EXPECT_EQ(GlobalTraceRecorder(), nullptr);
  EXPECT_EQ(GlobalWallProfiler(), nullptr);
  TraceRecorder recorder;
  WallPhaseProfiler profiler;
  AttachGlobalTraceRecorder(&recorder);
  AttachGlobalWallProfiler(&profiler);
  EXPECT_EQ(GlobalTraceRecorder(), &recorder);
  EXPECT_EQ(GlobalWallProfiler(), &profiler);
  AttachGlobalTraceRecorder(nullptr);
  AttachGlobalWallProfiler(nullptr);
  EXPECT_EQ(GlobalTraceRecorder(), nullptr);
  EXPECT_EQ(GlobalWallProfiler(), nullptr);
}

}  // namespace
}  // namespace disc
