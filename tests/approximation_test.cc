// Property tests for the paper's approximation guarantees (§3.4):
//  - Proposition 6: when the nearest inlier is at distance >= c·ε (c > 1),
//    the DISC answer is within factor c/(c−1) of the optimum.
//  - Proposition 7: with unit-valued (integer) distances and integer ε,
//    the factor is at most ε + 1.
// The exact optimum is computed with ExactSaver on instances small enough
// to enumerate.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/disc_saver.h"
#include "core/exact_saver.h"

namespace disc {
namespace {

Relation LatticeInliers(int side, double spacing = 1.0) {
  Relation r(Schema::Numeric(2));
  for (int x = 0; x < side; ++x) {
    for (int y = 0; y < side; ++y) {
      r.AppendUnchecked(Tuple::Numeric({x * spacing, y * spacing}));
    }
  }
  return r;
}

struct Proposition6Case {
  double outlier_x;
  double outlier_y;
  double epsilon;
  std::size_t eta;
};

class Proposition6Test : public testing::TestWithParam<Proposition6Case> {};

TEST_P(Proposition6Test, FactorBoundHolds) {
  const Proposition6Case& p = GetParam();
  Relation inliers = LatticeInliers(6);
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{p.epsilon, p.eta};
  DiscSaver approx(inliers, ev, c);
  ExactSaver exact(inliers, ev, c);

  Tuple outlier = Tuple::Numeric({p.outlier_x, p.outlier_y});

  // Nearest-inlier distance determines the paper's c.
  double nearest = 1e300;
  for (const Tuple& t : inliers) {
    nearest = std::min(nearest, ev.Distance(outlier, t));
  }
  double factor_c = nearest / p.epsilon;
  if (factor_c <= 1.0) GTEST_SKIP() << "Proposition 6 requires c > 1";

  SaveResult a = approx.Save(outlier);
  ExactResult e = exact.Save(outlier);
  ASSERT_EQ(a.feasible, e.feasible);
  if (!a.feasible || e.cost <= 0) return;

  double bound = factor_c / (factor_c - 1.0);
  EXPECT_LE(a.cost / e.cost, bound + 1e-9)
      << "c=" << factor_c << " approx=" << a.cost << " exact=" << e.cost;
  // And the sandwich: exact >= the reported lower bound.
  EXPECT_GE(e.cost, a.lower_bound - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FarOutliers, Proposition6Test,
    testing::Values(Proposition6Case{20, 20, 1.5, 4},
                    Proposition6Case{30, 2, 1.5, 4},
                    Proposition6Case{2.5, 40, 1.5, 4},
                    Proposition6Case{15, -10, 1.2, 3},
                    Proposition6Case{-8, -8, 1.5, 5},
                    Proposition6Case{12, 12, 2.0, 6}));

/// Discrete-metric relation: string attributes where every attribute
/// distance is an integer (Levenshtein), matching Proposition 7's setting.
Relation CodeInliers() {
  // Clustered "codes": many copies of a few base codes with 0-1 edits.
  Relation r(Schema::StringNamed({"code"}));
  const char* bases[] = {"AAAA", "BBBB", "CCCC"};
  for (const char* base : bases) {
    for (int copy = 0; copy < 6; ++copy) {
      r.AppendUnchecked(Tuple{Value(base)});
    }
    // One-edit variants to give the cluster a ring of near values.
    std::string v1 = base;
    v1[0] = 'X';
    std::string v2 = base;
    v2[3] = 'Y';
    r.AppendUnchecked(Tuple{Value(v1)});
    r.AppendUnchecked(Tuple{Value(v2)});
  }
  return r;
}

class Proposition7Test : public testing::TestWithParam<int> {};

TEST_P(Proposition7Test, IntegerDistanceFactorBound) {
  const int epsilon = GetParam();
  Relation inliers = CodeInliers();
  // Single string attribute: tuple distance = Levenshtein distance, so all
  // distances are integers and ε is an integer too — Proposition 7 applies.
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{static_cast<double>(epsilon), 3};
  DiscSaver approx(inliers, ev, c);
  ExactSaver exact(inliers, ev, c);

  const char* outliers[] = {"ZZZZ", "AZZZ", "QQQQQQ", "A"};
  for (const char* s : outliers) {
    Tuple outlier{Value(s)};
    SaveResult a = approx.Save(outlier);
    ExactResult e = exact.Save(outlier);
    ASSERT_EQ(a.feasible, e.feasible) << s;
    if (!a.feasible || e.cost <= 0) continue;
    EXPECT_LE(a.cost / e.cost, static_cast<double>(epsilon) + 1.0 + 1e-9)
        << "outlier " << s << " approx=" << a.cost << " exact=" << e.cost;
  }
}

INSTANTIATE_TEST_SUITE_P(IntegerEpsilons, Proposition7Test,
                         testing::Values(1, 2, 3));

TEST(ApproximationSandwich, RandomInstances) {
  // lower_bound <= exact optimum <= DISC cost, across random geometry.
  Rng rng(123);
  for (int trial = 0; trial < 12; ++trial) {
    Relation inliers(Schema::Numeric(2));
    int side = 4 + static_cast<int>(rng.NextIndex(3));
    for (int x = 0; x < side; ++x) {
      for (int y = 0; y < side; ++y) {
        inliers.AppendUnchecked(Tuple::Numeric(
            {x + rng.Gaussian(0, 0.05), y + rng.Gaussian(0, 0.05)}));
      }
    }
    DistanceEvaluator ev(inliers.schema());
    DistanceConstraint c{1.0 + rng.Uniform() * 0.8,
                         2 + static_cast<std::size_t>(rng.NextIndex(3))};
    DiscSaver approx(inliers, ev, c);
    ExactSaver exact(inliers, ev, c);

    Tuple outlier = Tuple::Numeric(
        {rng.Uniform(-15, 15 + side), rng.Uniform(-15, 15 + side)});
    SaveResult a = approx.Save(outlier);
    ExactResult e = exact.Save(outlier);
    ASSERT_EQ(a.feasible, e.feasible) << "trial " << trial;
    if (!a.feasible) continue;
    EXPECT_GE(e.cost, a.lower_bound - 1e-9) << "trial " << trial;
    EXPECT_GE(a.cost, e.cost - 1e-9) << "trial " << trial;
  }
}

TEST(ApproximationSandwich, LowerBoundCertifiesQuality) {
  // The per-answer certificate cost/lower_bound is a valid upper bound on
  // the true approximation ratio (since lower_bound <= optimum).
  Relation inliers = LatticeInliers(6);
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{1.5, 4};
  DiscSaver approx(inliers, ev, c);
  ExactSaver exact(inliers, ev, c);

  Tuple outlier = Tuple::Numeric({18, 3});
  SaveResult a = approx.Save(outlier);
  ExactResult e = exact.Save(outlier);
  ASSERT_TRUE(a.feasible);
  ASSERT_GT(a.lower_bound, 0.0);
  double certified = a.cost / a.lower_bound;
  double actual = a.cost / e.cost;
  EXPECT_LE(actual, certified + 1e-9);
}

}  // namespace
}  // namespace disc
