#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "index/brute_force_index.h"
#include "index/grid_index.h"
#include "index/index_factory.h"
#include "index/kd_tree.h"

namespace disc {
namespace {

Relation RandomRelation(std::size_t n, std::size_t dims, std::uint64_t seed) {
  Rng rng(seed);
  Relation r(Schema::Numeric(dims));
  for (std::size_t i = 0; i < n; ++i) {
    Tuple t(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      t[d] = Value(rng.Uniform(-10, 10));
    }
    r.AppendUnchecked(std::move(t));
  }
  return r;
}

struct IndexCase {
  std::size_t n;
  std::size_t dims;
  double epsilon;
};

class IndexConsistencyTest : public testing::TestWithParam<IndexCase> {};

TEST_P(IndexConsistencyTest, KdTreeMatchesBruteForceRange) {
  IndexCase c = GetParam();
  Relation r = RandomRelation(c.n, c.dims, 17);
  DistanceEvaluator ev(r.schema());
  BruteForceIndex brute(r, ev);
  KdTree tree(r);

  Rng rng(99);
  for (int q = 0; q < 20; ++q) {
    Tuple query(c.dims);
    for (std::size_t d = 0; d < c.dims; ++d) {
      query[d] = Value(rng.Uniform(-12, 12));
    }
    std::vector<Neighbor> expected = brute.RangeQuery(query, c.epsilon);
    std::vector<Neighbor> actual = tree.RangeQuery(query, c.epsilon);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].row, expected[i].row);
      EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-9);
    }
  }
}

TEST_P(IndexConsistencyTest, KdTreeMatchesBruteForceKnn) {
  IndexCase c = GetParam();
  Relation r = RandomRelation(c.n, c.dims, 23);
  DistanceEvaluator ev(r.schema());
  BruteForceIndex brute(r, ev);
  KdTree tree(r);

  Rng rng(7);
  for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{10}}) {
    Tuple query(c.dims);
    for (std::size_t d = 0; d < c.dims; ++d) {
      query[d] = Value(rng.Uniform(-12, 12));
    }
    std::vector<Neighbor> expected = brute.KNearest(query, k);
    std::vector<Neighbor> actual = tree.KNearest(query, k);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-9)
          << "k=" << k << " i=" << i;
    }
  }
}

TEST_P(IndexConsistencyTest, GridMatchesBruteForceInLowDims) {
  IndexCase c = GetParam();
  if (c.dims > GridIndex::kMaxGridDims) GTEST_SKIP();
  Relation r = RandomRelation(c.n, c.dims, 31);
  DistanceEvaluator ev(r.schema());
  BruteForceIndex brute(r, ev);
  GridIndex grid(r, c.epsilon);

  Rng rng(13);
  for (int q = 0; q < 20; ++q) {
    Tuple query(c.dims);
    for (std::size_t d = 0; d < c.dims; ++d) {
      query[d] = Value(rng.Uniform(-12, 12));
    }
    std::vector<Neighbor> expected = brute.RangeQuery(query, c.epsilon);
    std::vector<Neighbor> actual = grid.RangeQuery(query, c.epsilon);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].row, expected[i].row);
    }
  }
}

TEST_P(IndexConsistencyTest, CountWithinMatchesRangeSize) {
  IndexCase c = GetParam();
  Relation r = RandomRelation(c.n, c.dims, 41);
  DistanceEvaluator ev(r.schema());
  KdTree tree(r);
  Rng rng(5);
  Tuple query(c.dims);
  for (std::size_t d = 0; d < c.dims; ++d) {
    query[d] = Value(rng.Uniform(-10, 10));
  }
  EXPECT_EQ(tree.CountWithin(query, c.epsilon),
            tree.RangeQuery(query, c.epsilon).size());
}

TEST_P(IndexConsistencyTest, CountWithinCapStopsEarly) {
  IndexCase c = GetParam();
  Relation r = RandomRelation(c.n, c.dims, 43);
  DistanceEvaluator ev(r.schema());
  BruteForceIndex brute(r, ev);
  Tuple query(c.dims);  // origin
  std::size_t full = brute.CountWithin(query, 50.0);
  ASSERT_GT(full, 3u);
  EXPECT_EQ(brute.CountWithin(query, 50.0, 3), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IndexConsistencyTest,
    testing::Values(IndexCase{50, 2, 2.0}, IndexCase{200, 2, 1.0},
                    IndexCase{200, 3, 3.0}, IndexCase{500, 5, 4.0},
                    IndexCase{100, 8, 6.0}, IndexCase{30, 1, 0.5}));

TEST(IndexFactory, PicksBruteForceForStrings) {
  Relation r(Schema::StringNamed({"s"}));
  r.AppendUnchecked(Tuple{Value("a")});
  DistanceEvaluator ev(r.schema());
  auto index = MakeNeighborIndex(r, ev);
  EXPECT_NE(dynamic_cast<BruteForceIndex*>(index.get()), nullptr);
}

TEST(IndexFactory, PicksGridForLowDimWithHint) {
  Relation r = RandomRelation(50, 3, 1);
  DistanceEvaluator ev(r.schema());
  auto index = MakeNeighborIndex(r, ev, 2.0);
  EXPECT_NE(dynamic_cast<GridIndex*>(index.get()), nullptr);
}

TEST(IndexFactory, PicksKdTreeForHighDim) {
  Relation r = RandomRelation(50, 8, 1);
  DistanceEvaluator ev(r.schema());
  auto index = MakeNeighborIndex(r, ev, 2.0);
  EXPECT_NE(dynamic_cast<KdTree*>(index.get()), nullptr);
}

TEST(IndexFactory, ForceBruteForce) {
  Relation r = RandomRelation(50, 3, 1);
  DistanceEvaluator ev(r.schema());
  auto index = MakeNeighborIndex(r, ev, 2.0, /*force_brute_force=*/true);
  EXPECT_NE(dynamic_cast<BruteForceIndex*>(index.get()), nullptr);
}

TEST(GridIndex, FarAwayQueryTerminatesQuickly) {
  // Regression: KNearest from a point hundreds of cells away must fall back
  // to a linear pass instead of walking an exponentially growing cell ring.
  Relation r = RandomRelation(500, 3, 77);
  DistanceEvaluator ev(r.schema());
  GridIndex grid(r, 1.0);
  BruteForceIndex brute(r, ev);
  Tuple far_query = Tuple::Numeric({4000, -4000, 4000});
  std::vector<Neighbor> got = grid.KNearest(far_query, 5);
  std::vector<Neighbor> expected = brute.KNearest(far_query, 5);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
  }
  // Range queries with huge radii likewise degrade to a scan.
  EXPECT_EQ(grid.CountWithin(far_query, 1e5), r.size());
}

TEST(KdTree, EmptyRelation) {
  Relation r(Schema::Numeric(2));
  KdTree tree(r);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.RangeQuery(Tuple::Numeric({0, 0}), 1.0).empty());
  EXPECT_TRUE(tree.KNearest(Tuple::Numeric({0, 0}), 3).empty());
  EXPECT_EQ(tree.CountWithin(Tuple::Numeric({0, 0}), 1.0), 0u);
}

TEST(KdTree, SelfQueryIncludesSelf) {
  Relation r = RandomRelation(20, 3, 3);
  KdTree tree(r);
  std::vector<Neighbor> nn = tree.KNearest(r[5], 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].row, 5u);
  EXPECT_NEAR(nn[0].distance, 0.0, 1e-12);
}

TEST(BruteForce, RangeResultsSortedByDistance) {
  Relation r = RandomRelation(100, 2, 9);
  DistanceEvaluator ev(r.schema());
  BruteForceIndex brute(r, ev);
  std::vector<Neighbor> nn = brute.RangeQuery(Tuple::Numeric({0, 0}), 8.0);
  for (std::size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(nn[i - 1].distance, nn[i].distance);
  }
}

}  // namespace
}  // namespace disc
