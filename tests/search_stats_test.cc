// Per-search SearchStats accounting through the save pipeline (DESIGN.md
// §8): determinism across thread counts, the registry flush, and the trace
// export. The acceptance bar this suite pins down: stats and trace account
// for every node expansion and index query bit-identically whether the
// batch ran on 1, 4 or 8 threads.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "core/outlier_saving.h"
#include "core/search_stats.h"
#include "data/generators.h"

namespace disc {
namespace {

/// Same seeded noisy scenario as the parallel-save suite: three Gaussian
/// clusters with a slice of rows corrupted on 1-2 attributes plus a couple
/// of natural outliers.
Relation MakeNoisyDataset(std::uint64_t seed) {
  std::vector<ClusterSpec> specs = {
      {{0, 0, 0, 0}, 0.5, 80},
      {{10, 10, 0, 0}, 0.5, 80},
      {{0, 10, 10, 0}, 0.5, 80},
  };
  LabeledRelation mixture = GenerateGaussianMixture(specs, seed);
  Rng rng(seed + 1);
  for (std::size_t row = 3; row < mixture.data.size(); row += 11) {
    std::size_t a = static_cast<std::size_t>(rng.UniformInt(0, 3));
    mixture.data[row][a] =
        Value(mixture.data[row][a].num() + 20.0 + rng.Uniform() * 5.0);
    if (row % 22 == 3) {
      mixture.data[row][(a + 2) % 4] = Value(-18.0 - rng.Uniform() * 5.0);
    }
  }
  AppendNaturalOutliers(&mixture, 2, 60.0, seed + 2);
  return std::move(mixture.data);
}

OutlierSavingOptions BaseOptions() {
  OutlierSavingOptions opts;
  opts.constraint = {1.6, 5};
  opts.save.kappa = 2;
  opts.natural_attribute_threshold = 2;
  return opts;
}

TEST(SearchStats, MergeFromSumsWorkAndKeepsEarliestStart) {
  SearchStats a;
  a.nodes_expanded = 3;
  a.index_queries = 5;
  a.wall_nanos = 100;
  a.start_ns = 900;
  SearchStats b;
  b.nodes_expanded = 4;
  b.dcache_hits = 2;
  b.wall_nanos = 50;
  b.start_ns = 700;
  a.MergeFrom(b);
  EXPECT_EQ(a.nodes_expanded, 7u);
  EXPECT_EQ(a.index_queries, 5u);
  EXPECT_EQ(a.dcache_hits, 2u);
  EXPECT_EQ(a.wall_nanos, 150u);
  EXPECT_EQ(a.start_ns, 700u);  // earliest nonzero wins
  SearchStats c;  // zero start must not clobber an established one
  a.MergeFrom(c);
  EXPECT_EQ(a.start_ns, 700u);
}

TEST(SearchStats, SameWorkIgnoresTimingOnly) {
  SearchStats a;
  a.prop3_bounds = 9;
  SearchStats b = a;
  b.wall_nanos = 12345;
  b.start_ns = 999;
  EXPECT_TRUE(a.SameWork(b));
  b.prop3_bounds = 10;
  EXPECT_FALSE(a.SameWork(b));
}

TEST(SearchStats, FlushToSkipsZeroCountersAndPrefixesNames) {
  MetricsRegistry registry;
  SearchStats stats;
  stats.nodes_expanded = 11;
  stats.index_queries = 4;
  stats.FlushTo(&registry);
  EXPECT_EQ(registry.GetCounter("disc_save_nodes_expanded_total")->Value(),
            11u);
  EXPECT_EQ(registry.GetCounter("disc_save_index_queries_total")->Value(), 4u);
  // Zero counters stay unregistered — the snapshot only shows work done.
  const std::string json = registry.ToJson();
  EXPECT_EQ(json.find("disc_save_lb_prunes_total"), std::string::npos) << json;
  stats.FlushTo(nullptr);  // null registry is a no-op, not a crash
}

/// Runs the pipeline over the fixed scenario with the given thread count.
SavedDataset RunPipeline(const Relation& data, std::size_t threads,
                         MetricsRegistry* metrics = nullptr,
                         TraceSink* trace = nullptr) {
  DistanceEvaluator evaluator(data.schema());
  OutlierSavingOptions opts = BaseOptions();
  opts.num_threads = threads;
  opts.metrics = metrics;
  opts.trace = trace;
  return SaveOutliers(data, evaluator, opts);
}

TEST(SearchStatsPipeline, RecordStatsIdenticalAcross148Threads) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  SavedDataset one = RunPipeline(data, 1);
  ASSERT_TRUE(one.status.ok());
  ASSERT_GT(one.records.size(), 10u);

  for (std::size_t threads : {4u, 8u}) {
    SavedDataset many = RunPipeline(data, threads);
    ASSERT_TRUE(many.status.ok());
    ASSERT_EQ(many.records.size(), one.records.size());
    for (std::size_t i = 0; i < one.records.size(); ++i) {
      EXPECT_TRUE(one.records[i].stats.SameWork(many.records[i].stats))
          << "record " << i << " at " << threads << " threads";
    }
    EXPECT_TRUE(one.split_stats.SameWork(many.split_stats));
    EXPECT_TRUE(one.stats().SameWork(many.stats()));
  }
}

TEST(SearchStatsPipeline, LegacyMirrorsEqualStatsFields) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  SavedDataset saved = RunPipeline(data, 1);
  ASSERT_TRUE(saved.status.ok());
  EXPECT_EQ(saved.split_index_queries,
            static_cast<std::size_t>(saved.split_stats.index_queries));
  EXPECT_GT(saved.split_index_queries, 0u);
  for (const OutlierRecord& rec : saved.records) {
    EXPECT_EQ(rec.index_queries,
              static_cast<std::size_t>(rec.stats.index_queries));
    // Every search did real, fully-accounted work.
    EXPECT_GT(rec.stats.nodes_expanded, 0u);
    EXPECT_EQ(rec.stats.visited_sets, rec.stats.nodes_expanded);
  }
}

TEST(SearchStatsPipeline, RegistryCountersMatchRecordAggregates) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  MetricsRegistry registry;
  SavedDataset saved = RunPipeline(data, 4, &registry);
  ASSERT_TRUE(saved.status.ok());

  SearchStats searches;  // records only — the split flushes separately
  for (const OutlierRecord& rec : saved.records) {
    searches.MergeFrom(rec.stats);
  }
  EXPECT_EQ(registry.GetCounter("disc_save_nodes_expanded_total")->Value(),
            searches.nodes_expanded);
  EXPECT_EQ(registry.GetCounter("disc_save_index_queries_total")->Value(),
            searches.index_queries);
  EXPECT_EQ(registry.GetCounter("disc_save_prop3_bounds_total")->Value(),
            searches.prop3_bounds);
  EXPECT_EQ(registry.GetCounter("disc_save_batches_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("disc_save_outliers_total")->Value(),
            saved.records.size());
  EXPECT_EQ(registry.GetCounter("disc_split_index_queries_total")->Value(),
            saved.split_index_queries);

  // CountTermination(t) must equal the flushed per-termination counter for
  // every termination, and the per-disposition counters must tally the
  // same way.
  constexpr SaveTermination kTerminations[] = {
      SaveTermination::kCompleted,   SaveTermination::kVisitBudget,
      SaveTermination::kQueryBudget, SaveTermination::kDeadline,
      SaveTermination::kCancelled,   SaveTermination::kInfeasible};
  std::size_t termination_sum = 0;
  for (SaveTermination t : kTerminations) {
    const std::string name =
        std::string("disc_save_termination_") + SaveTerminationName(t) +
        "_total";
    EXPECT_EQ(registry.GetCounter(name)->Value(), saved.CountTermination(t))
        << name;
    termination_sum += saved.CountTermination(t);
  }
  EXPECT_EQ(termination_sum, saved.records.size());
  constexpr OutlierDisposition kDispositions[] = {
      OutlierDisposition::kSaved, OutlierDisposition::kNaturalOutlier,
      OutlierDisposition::kInfeasible};
  std::size_t disposition_sum = 0;
  for (OutlierDisposition d : kDispositions) {
    const std::string name =
        std::string("disc_save_disposition_") + OutlierDispositionName(d) +
        "_total";
    EXPECT_EQ(registry.GetCounter(name)->Value(), saved.CountDisposition(d))
        << name;
    disposition_sum += saved.CountDisposition(d);
  }
  EXPECT_EQ(disposition_sum, saved.records.size());

  // One histogram observation per search.
  Histogram* wall = registry.GetHistogram("disc_save_search_wall_seconds", {});
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->Snap().count, saved.records.size());
}

TEST(SearchStatsPipeline, RegistrySnapshotsIdenticalAcrossThreadCounts) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  std::string baseline;
  for (std::size_t threads : {1u, 4u, 8u}) {
    MetricsRegistry registry;
    SavedDataset saved = RunPipeline(data, threads, &registry);
    ASSERT_TRUE(saved.status.ok());
    // The histogram carries wall-clock observations, so compare only the
    // deterministic counters section.
    std::string json = registry.ToJson();
    const std::string counters =
        json.substr(0, json.find("\"histograms\""));
    if (threads == 1) {
      baseline = counters;
      EXPECT_NE(baseline.find("disc_save_nodes_expanded_total"),
                std::string::npos);
    } else {
      EXPECT_EQ(counters, baseline) << "at " << threads << " threads";
    }
  }
}

/// Reads a whole file into a string (test helper).
std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Extracts the integer value of `"key":<n>` from a flat JSONL line.
std::uint64_t JsonUint(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
}

/// Splits the trace file into lines grouped by span kind, preserving order.
void SpansByKind(const std::string& path,
                 std::map<std::string, std::vector<std::string>>* by_kind) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::string needle = "\"span\":\"";
    const std::size_t at = line.find(needle);
    ASSERT_NE(at, std::string::npos) << line;
    const std::size_t start = at + needle.size();
    (*by_kind)[line.substr(start, line.find('"', start) - start)]
        .push_back(line);
  }
}

TEST(SearchStatsPipeline, TraceAccountsForEverySearch) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  const std::string path = ::testing::TempDir() + "/disc_trace_test.jsonl";
  JsonlTraceSink sink(path);
  SavedDataset saved = RunPipeline(data, 4, nullptr, &sink);
  ASSERT_TRUE(saved.status.ok());
  ASSERT_TRUE(sink.Close().ok());

  std::map<std::string, std::vector<std::string>> by_kind;
  SpansByKind(path, &by_kind);
  const std::size_t n = saved.records.size();
  // One split span, one search span per outlier, one save_outlier span per
  // record from the merge loop. The hierarchical layer adds phase and
  // pool-chunk children under each search (covered by
  // trace_determinism_test); here only the top-level cardinalities matter.
  ASSERT_EQ(by_kind["split"].size(), 1u) << Slurp(path);
  ASSERT_EQ(by_kind["search"].size(), n) << Slurp(path);
  ASSERT_EQ(by_kind["save_outlier"].size(), n) << Slurp(path);
  EXPECT_EQ(JsonUint(by_kind["split"][0], "index_queries"),
            saved.split_stats.index_queries);

  // Worker search spans arrive in completion order; each must key back to
  // its record via `ordinal` and carry that record's exact work counters.
  std::vector<bool> seen(n, false);
  for (const std::string& line : by_kind["search"]) {
    const std::size_t ordinal =
        static_cast<std::size_t>(JsonUint(line, "ordinal"));
    ASSERT_LT(ordinal, n) << line;
    EXPECT_FALSE(seen[ordinal]) << "duplicate ordinal: " << line;
    seen[ordinal] = true;
    EXPECT_EQ(JsonUint(line, "nodes_expanded"),
              saved.records[ordinal].stats.nodes_expanded)
        << line;
    EXPECT_EQ(JsonUint(line, "index_queries"),
              saved.records[ordinal].stats.index_queries)
        << line;
  }

  SearchStats from_trace;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& line = by_kind["save_outlier"][i];
    const OutlierRecord& rec = saved.records[i];
    EXPECT_EQ(JsonUint(line, "row"), rec.row);
    EXPECT_EQ(JsonUint(line, "nodes_expanded"), rec.stats.nodes_expanded);
    EXPECT_EQ(JsonUint(line, "index_queries"), rec.stats.index_queries);
    EXPECT_NE(line.find(std::string("\"disposition\":\"") +
                        OutlierDispositionName(rec.disposition) + "\""),
              std::string::npos)
        << line;
    from_trace.nodes_expanded += JsonUint(line, "nodes_expanded");
    from_trace.index_queries += JsonUint(line, "index_queries");
  }
  // The trace accounts for every node expansion and index query: summing
  // the spans reproduces the pipeline aggregate exactly.
  SearchStats total = saved.stats();
  EXPECT_EQ(from_trace.nodes_expanded, total.nodes_expanded);
  EXPECT_EQ(from_trace.index_queries + saved.split_stats.index_queries,
            total.index_queries);
  std::remove(path.c_str());
}

TEST(SearchStatsPipeline, SearchSpanCountMatchesOutliersAtEveryThreadCount) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  for (std::size_t threads : {1u, 4u, 8u}) {
    const std::string path = ::testing::TempDir() + "/disc_trace_parity_" +
                             std::to_string(threads) + ".jsonl";
    JsonlTraceSink sink(path);
    SavedDataset saved = RunPipeline(data, threads, nullptr, &sink);
    ASSERT_TRUE(saved.status.ok());
    ASSERT_TRUE(sink.Close().ok());
    std::map<std::string, std::vector<std::string>> by_kind;
    SpansByKind(path, &by_kind);
    // Span-count parity: exactly one search span per outlier, no matter how
    // the batch was scheduled across workers.
    EXPECT_EQ(by_kind["search"].size(), saved.records.size())
        << "at " << threads << " threads";
    EXPECT_EQ(by_kind["save_outlier"].size(), saved.records.size())
        << "at " << threads << " threads";
    std::remove(path.c_str());
  }
}

TEST(SearchStatsPipeline, StatsAggregateEqualsSplitPlusRecords) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  SavedDataset saved = RunPipeline(data, 1);
  ASSERT_TRUE(saved.status.ok());
  SearchStats manual = saved.split_stats;
  for (const OutlierRecord& rec : saved.records) manual.MergeFrom(rec.stats);
  EXPECT_TRUE(manual.SameWork(saved.stats()));
  EXPECT_EQ(manual.wall_nanos, saved.stats().wall_nanos);
}

TEST(JsonlTraceSinkTest, RebasesTimestampsAndReportsIoErrors) {
  const std::string path = ::testing::TempDir() + "/disc_trace_rebase.jsonl";
  {
    JsonlTraceSink sink(path);
    TraceSpan span;
    span.name = "unit";
    span.start_ns = TraceNowNs();
    span.duration_ns = 42;
    span.Int("k", 7).Str("s", "v").Num("x", 1.5);
    sink.Emit(span);
    ASSERT_TRUE(sink.ok());
    ASSERT_TRUE(sink.Close().ok());
  }
  const std::string line = Slurp(path);
  EXPECT_NE(line.find("\"span\":\"unit\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"dur_ns\":42"), std::string::npos) << line;
  EXPECT_NE(line.find("\"k\":7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"s\":\"v\""), std::string::npos) << line;
  // Rebased onto the sink epoch: t_ns is tiny, not a raw steady-clock stamp.
  EXPECT_LT(JsonUint(line, "t_ns"), 10'000'000'000ull) << line;
  std::remove(path.c_str());

  JsonlTraceSink bad("/nonexistent-dir/trace.jsonl");
  TraceSpan span;
  span.name = "unit";
  bad.Emit(span);
  EXPECT_FALSE(bad.Close().ok());
}

}  // namespace
}  // namespace disc
