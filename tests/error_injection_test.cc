#include "data/error_injection.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"

namespace disc {
namespace {

LabeledRelation BaseData(std::size_t n = 200, std::uint64_t seed = 91) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0, 0, 0}, 1.0, n});
  return GenerateGaussianMixture(clusters, seed);
}

TEST(InjectNumeric, RespectsTupleRate) {
  LabeledRelation data = BaseData(200);
  ErrorInjectionSpec spec;
  spec.tuple_rate = 0.1;
  InjectionResult res = InjectNumericErrors(data.data, spec);
  EXPECT_EQ(res.dirty_rows.size(), 20u);
}

TEST(InjectNumeric, AttributeCountWithinBounds) {
  LabeledRelation data = BaseData();
  ErrorInjectionSpec spec;
  spec.tuple_rate = 0.2;
  spec.min_attributes = 1;
  spec.max_attributes = 2;
  InjectionResult res = InjectNumericErrors(data.data, spec);
  for (std::size_t row : res.dirty_rows) {
    std::size_t count = res.ErrorAttributesOf(row).size();
    EXPECT_GE(count, 1u);
    EXPECT_LE(count, 2u);
  }
}

TEST(InjectNumeric, ErrorsRecordOriginalValues) {
  LabeledRelation data = BaseData();
  ErrorInjectionSpec spec;
  spec.tuple_rate = 0.1;
  InjectionResult res = InjectNumericErrors(data.data, spec);
  for (const CellError& e : res.errors) {
    EXPECT_EQ(e.original, data.data[e.row][e.attribute]);
    EXPECT_EQ(e.corrupted, res.dirty[e.row][e.attribute]);
    EXPECT_NE(e.original, e.corrupted);
  }
}

TEST(InjectNumeric, UntouchedCellsIdentical) {
  LabeledRelation data = BaseData();
  ErrorInjectionSpec spec;
  spec.tuple_rate = 0.1;
  InjectionResult res = InjectNumericErrors(data.data, spec);
  for (std::size_t row = 0; row < data.data.size(); ++row) {
    AttributeSet errs = res.ErrorAttributesOf(row);
    for (std::size_t a = 0; a < data.data.arity(); ++a) {
      if (!errs.contains(a)) {
        EXPECT_EQ(res.dirty[row][a], data.data[row][a]);
      }
    }
  }
}

TEST(InjectNumeric, ShiftMagnitudeScalesWithStddev) {
  LabeledRelation data = BaseData(400);
  ErrorInjectionSpec spec;
  spec.tuple_rate = 0.1;
  spec.model = NumericErrorModel::kShift;
  spec.magnitude = 8.0;
  InjectionResult res = InjectNumericErrors(data.data, spec);
  for (const CellError& e : res.errors) {
    double shift = std::fabs(e.corrupted.num() - e.original.num());
    // stddev ≈ 1; shift ≈ 8·U(0.8, 1.4) → within [5, 13].
    EXPECT_GT(shift, 5.0);
    EXPECT_LT(shift, 13.0);
  }
}

TEST(InjectNumeric, ScaleModelMultiplies) {
  LabeledRelation data = BaseData();
  ErrorInjectionSpec spec;
  spec.tuple_rate = 0.05;
  spec.model = NumericErrorModel::kScale;
  spec.scale_factor = 2.54;
  InjectionResult res = InjectNumericErrors(data.data, spec);
  for (const CellError& e : res.errors) {
    EXPECT_NEAR(e.corrupted.num(), e.original.num() * 2.54, 1e-9);
  }
}

TEST(InjectNumeric, DeterministicForSeed) {
  LabeledRelation data = BaseData();
  ErrorInjectionSpec spec;
  spec.tuple_rate = 0.1;
  InjectionResult a = InjectNumericErrors(data.data, spec);
  InjectionResult b = InjectNumericErrors(data.data, spec);
  EXPECT_EQ(a.dirty_rows, b.dirty_rows);
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (std::size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_EQ(a.errors[i].corrupted, b.errors[i].corrupted);
  }
}

TEST(InjectNumeric, ZeroRateNoErrors) {
  LabeledRelation data = BaseData();
  ErrorInjectionSpec spec;
  spec.tuple_rate = 0.0;
  InjectionResult res = InjectNumericErrors(data.data, spec);
  EXPECT_TRUE(res.errors.empty());
  EXPECT_TRUE(res.dirty_rows.empty());
}

TEST(InjectStringTypos, CorruptsOnlyStrings) {
  Relation r(Schema({{"x", ValueKind::kNumeric}, {"s", ValueKind::kString}}));
  for (int i = 0; i < 50; ++i) {
    r.AppendUnchecked(Tuple{Value(double(i)), Value("hello world")});
  }
  ErrorInjectionSpec spec;
  spec.tuple_rate = 0.2;
  InjectionResult res = InjectStringTypos(r, spec);
  for (const CellError& e : res.errors) {
    EXPECT_EQ(e.attribute, 1u);
    EXPECT_TRUE(e.corrupted.is_string());
    EXPECT_NE(e.corrupted.str(), "hello world");
  }
}

TEST(InjectStringTypos, SmallEditDistance) {
  Relation r(Schema::StringNamed({"s"}));
  for (int i = 0; i < 40; ++i) {
    r.AppendUnchecked(Tuple{Value("RH10-0AG")});
  }
  ErrorInjectionSpec spec;
  spec.tuple_rate = 0.5;
  InjectionResult res = InjectStringTypos(r, spec);
  ASSERT_FALSE(res.errors.empty());
  for (const CellError& e : res.errors) {
    // Typos are 1-2 substitutions/transpositions: length preserved.
    EXPECT_EQ(e.corrupted.str().size(), e.original.str().size());
  }
}

TEST(ErrorAttributesOf, CleanRowEmpty) {
  LabeledRelation data = BaseData();
  ErrorInjectionSpec spec;
  spec.tuple_rate = 0.05;
  InjectionResult res = InjectNumericErrors(data.data, spec);
  // Find a row that is not dirty.
  for (std::size_t row = 0; row < data.data.size(); ++row) {
    bool dirty = std::find(res.dirty_rows.begin(), res.dirty_rows.end(),
                           row) != res.dirty_rows.end();
    if (!dirty) {
      EXPECT_TRUE(res.ErrorAttributesOf(row).empty());
      break;
    }
  }
}

}  // namespace
}  // namespace disc
