#include <gtest/gtest.h>

#include "clustering/cckm.h"
#include "clustering/kmeans_mm.h"
#include "data/generators.h"
#include "eval/clustering_metrics.h"

namespace disc {
namespace {

LabeledRelation BlobsWithOutliers(std::size_t per_blob = 60,
                                  std::size_t outliers = 5,
                                  std::uint64_t seed = 12) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0, 0}, 0.6, per_blob});
  clusters.push_back({{15, 0}, 0.6, per_blob});
  LabeledRelation data = GenerateGaussianMixture(clusters, seed);
  AppendNaturalOutliers(&data, outliers, 1.0, seed + 1);
  return data;
}

TEST(KMeansMM, ExcludesExactlyLOutliers) {
  LabeledRelation data = BlobsWithOutliers();
  KMeansMMParams p;
  p.k = 2;
  p.l = 5;
  KMeansResult res = KMeansMM(data.data, p);
  EXPECT_EQ(NumNoise(res.labels), 5u);
}

TEST(KMeansMM, OutliersAreTheInjectedOnes) {
  LabeledRelation data = BlobsWithOutliers(60, 5);
  KMeansMMParams p;
  p.k = 2;
  p.l = 5;
  KMeansResult res = KMeansMM(data.data, p);
  // The 5 appended rows (at the end) should be the flagged ones.
  std::size_t flagged_at_end = 0;
  for (std::size_t i = data.data.size() - 5; i < data.data.size(); ++i) {
    if (res.labels[i] == kNoise) ++flagged_at_end;
  }
  EXPECT_GE(flagged_at_end, 4u);
}

TEST(KMeansMM, ClusterQualityOnInliers) {
  LabeledRelation data = BlobsWithOutliers();
  KMeansMMParams p;
  p.k = 2;
  p.l = 5;
  KMeansResult res = KMeansMM(data.data, p);
  PairCountingScores s = PairCounting(res.labels, data.labels);
  EXPECT_GT(s.f1, 0.9);
}

TEST(KMeansMM, ZeroLBehavesLikeKMeans) {
  LabeledRelation data = BlobsWithOutliers(40, 0);
  KMeansMMParams p;
  p.k = 2;
  p.l = 0;
  KMeansResult res = KMeansMM(data.data, p);
  EXPECT_EQ(NumNoise(res.labels), 0u);
  EXPECT_EQ(NumClusters(res.labels), 2u);
}

TEST(KMeansMM, EmptyRelation) {
  Relation r(Schema::Numeric(2));
  KMeansResult res = KMeansMM(r, {});
  EXPECT_TRUE(res.labels.empty());
}

TEST(Cckm, OutlierBudgetRespected) {
  LabeledRelation data = BlobsWithOutliers();
  CckmParams p;
  p.k = 2;
  p.outlier_budget = 5;
  KMeansResult res = Cckm(data.data, p);
  EXPECT_EQ(NumNoise(res.labels), 5u);
}

TEST(Cckm, RecoverClustersDespiteOutliers) {
  LabeledRelation data = BlobsWithOutliers();
  CckmParams p;
  p.k = 2;
  p.outlier_budget = 5;
  KMeansResult res = Cckm(data.data, p);
  PairCountingScores s = PairCounting(res.labels, data.labels);
  EXPECT_GT(s.f1, 0.85);
}

TEST(Cckm, BalancedSizesOnSymmetricData) {
  LabeledRelation data = BlobsWithOutliers(60, 0);
  CckmParams p;
  p.k = 2;
  p.outlier_budget = 0;
  KMeansResult res = Cckm(data.data, p);
  std::size_t c0 = 0;
  std::size_t c1 = 0;
  for (int l : res.labels) {
    if (l == 0) ++c0;
    if (l == 1) ++c1;
  }
  // Equal blobs → roughly equal cardinality.
  EXPECT_NEAR(static_cast<double>(c0), static_cast<double>(c1), 20.0);
}

TEST(Cckm, ZeroBudgetNoNoise) {
  LabeledRelation data = BlobsWithOutliers(40, 0);
  CckmParams p;
  p.k = 2;
  KMeansResult res = Cckm(data.data, p);
  EXPECT_EQ(NumNoise(res.labels), 0u);
}

TEST(Cckm, EmptyRelation) {
  Relation r(Schema::Numeric(2));
  KMeansResult res = Cckm(r, {});
  EXPECT_TRUE(res.labels.empty());
}

}  // namespace
}  // namespace disc
