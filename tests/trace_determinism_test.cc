// Span-set determinism of the hierarchical trace through the full save
// pipeline (DESIGN.md §13). The contract: with the batch counter pinned,
// the set of (trace_id, span_id, parent_id, name) identities is
// bit-identical across thread counts — excluding the two span kinds that
// only exist on the scheduler path (pool_chunk, estimate) when comparing
// sequential vs parallel, and including them between two parallel runs
// (chunking is sized by input, not by worker count). Parent links must be
// complete and acyclic in every configuration. Runs in the tsan-obs CI
// shard so the lock-free collector path is also raced under TSan.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/trace.h"
#include "core/outlier_saving.h"
#include "data/generators.h"
#include "distance/evaluator.h"

namespace disc {
namespace {

/// (trace_id, span_id, parent_id, name): the scheduling-independent
/// identity of a span. Durations and timestamps are intentionally absent.
using SpanIdentity =
    std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::string>;

/// Thread-safe in-memory sink capturing every emitted span.
class CaptureSink : public TraceSink {
 public:
  void Emit(const TraceSpan& span) override {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(span);
  }

  std::vector<TraceSpan> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(spans_);
  }

 private:
  std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

/// The noisy scenario shared with the search-stats suite: three Gaussian
/// clusters, a slice of corrupted rows, two natural outliers.
Relation MakeNoisyDataset(std::uint64_t seed) {
  std::vector<ClusterSpec> specs = {
      {{0, 0, 0, 0}, 0.5, 80},
      {{10, 10, 0, 0}, 0.5, 80},
      {{0, 10, 10, 0}, 0.5, 80},
  };
  LabeledRelation mixture = GenerateGaussianMixture(specs, seed);
  Rng rng(seed + 1);
  for (std::size_t row = 3; row < mixture.data.size(); row += 11) {
    std::size_t a = static_cast<std::size_t>(rng.UniformInt(0, 3));
    mixture.data[row][a] =
        Value(mixture.data[row][a].num() + 20.0 + rng.Uniform() * 5.0);
    if (row % 22 == 3) {
      mixture.data[row][(a + 2) % 4] = Value(-18.0 - rng.Uniform() * 5.0);
    }
  }
  AppendNaturalOutliers(&mixture, 2, 60.0, seed + 2);
  return std::move(mixture.data);
}

/// Runs the pipeline at `threads` with the batch counter pinned, so every
/// run derives the same batch seed and therefore the same ids.
std::vector<TraceSpan> RunTraced(const Relation& data, std::size_t threads) {
  SetTraceBatchCounterForTest(1234);
  CaptureSink sink;
  DistanceEvaluator evaluator(data.schema());
  OutlierSavingOptions opts;
  opts.constraint = {1.6, 5};
  opts.save.kappa = 2;
  opts.natural_attribute_threshold = 2;
  opts.num_threads = threads;
  opts.trace = &sink;
  SavedDataset saved = SaveOutliers(data, evaluator, opts);
  EXPECT_TRUE(saved.status.ok()) << saved.status.ToString();
  EXPECT_GT(saved.records.size(), 10u);
  return sink.Take();
}

std::multiset<SpanIdentity> Identities(const std::vector<TraceSpan>& spans,
                                       const std::set<std::string>& exclude) {
  std::multiset<SpanIdentity> out;
  for (const TraceSpan& span : spans) {
    if (span.trace_id == 0) continue;  // the flat split span
    if (exclude.count(span.name) != 0) continue;
    out.emplace(span.trace_id, span.span_id, span.parent_id, span.name);
  }
  return out;
}

TEST(TraceDeterminism, SpanSetIdenticalAcross148Threads) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  // pool_chunk and estimate spans only exist when the scheduler runs the
  // batch; everything else must match the sequential run exactly.
  const std::set<std::string> scheduler_only = {"pool_chunk", "estimate"};
  const std::multiset<SpanIdentity> baseline =
      Identities(RunTraced(data, 1), scheduler_only);
  ASSERT_FALSE(baseline.empty());

  for (std::size_t threads : {4u, 8u}) {
    const std::multiset<SpanIdentity> got =
        Identities(RunTraced(data, threads), scheduler_only);
    EXPECT_EQ(got, baseline) << "at " << threads << " threads";
  }
}

TEST(TraceDeterminism, FullSpanSetIncludingChunksIdentical4v8Threads) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  const std::multiset<SpanIdentity> four = Identities(RunTraced(data, 4), {});
  const std::multiset<SpanIdentity> eight =
      Identities(RunTraced(data, 8), {});
  ASSERT_FALSE(four.empty());
  // Chunk ids derive from (scan ordinal, chunk index), both functions of
  // the input — not of which worker ran the chunk — so even the
  // scheduler-only spans agree between parallel runs.
  EXPECT_EQ(four, eight);
}

TEST(TraceDeterminism, ParentLinksCompleteAndAcyclic) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  const std::vector<TraceSpan> spans = RunTraced(data, 4);

  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> parent_of;
  std::set<std::uint64_t> traces;
  for (const TraceSpan& span : spans) {
    if (span.trace_id == 0) continue;
    const auto key = std::make_pair(span.trace_id, span.span_id);
    // No two spans share an id within a trace.
    ASSERT_EQ(parent_of.count(key), 0u)
        << span.name << " duplicates span_id " << span.span_id;
    parent_of[key] = span.parent_id;
    traces.insert(span.trace_id);
  }

  std::size_t roots = 0;
  for (const TraceSpan& span : spans) {
    if (span.trace_id == 0) continue;
    if (span.parent_id == 0) {
      EXPECT_EQ(span.name, "save_outlier");
      ++roots;
      continue;
    }
    // Complete: every parent_id names a span present in the same trace.
    ASSERT_EQ(parent_of.count({span.trace_id, span.parent_id}), 1u)
        << span.name << " orphaned under trace " << span.trace_id;
    // Acyclic: walking up reaches the root in fewer steps than the trace
    // has spans.
    std::uint64_t cursor = span.span_id;
    std::size_t hops = 0;
    while (cursor != 0) {
      ASSERT_LE(++hops, parent_of.size()) << "parent cycle at " << span.name;
      cursor = parent_of[{span.trace_id, cursor}];
    }
  }
  // One save_outlier root per trace, no more, no less.
  EXPECT_EQ(roots, traces.size());
}

TEST(TraceDeterminism, RepeatedRunEmitsTheSameSpanSet) {
  Relation data = MakeNoisyDataset(/*seed=*/97);
  const std::multiset<SpanIdentity> first = Identities(RunTraced(data, 4), {});
  const std::multiset<SpanIdentity> second =
      Identities(RunTraced(data, 4), {});
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace disc
