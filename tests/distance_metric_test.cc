#include "distance/attribute_metric.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

TEST(AbsoluteDifference, Basic) {
  AbsoluteDifferenceMetric m;
  EXPECT_DOUBLE_EQ(m.Distance(Value(3.0), Value(5.0)), 2.0);
  EXPECT_DOUBLE_EQ(m.Distance(Value(5.0), Value(3.0)), 2.0);
  EXPECT_DOUBLE_EQ(m.Distance(Value(-1.0), Value(1.0)), 2.0);
}

TEST(AbsoluteDifference, IdentityOfIndiscernibles) {
  AbsoluteDifferenceMetric m;
  EXPECT_DOUBLE_EQ(m.Distance(Value(7.5), Value(7.5)), 0.0);
}

TEST(AbsoluteDifference, Scaled) {
  AbsoluteDifferenceMetric m(10.0);
  EXPECT_DOUBLE_EQ(m.Distance(Value(0.0), Value(5.0)), 0.5);
}

TEST(AbsoluteDifference, TriangleInequalityProperty) {
  AbsoluteDifferenceMetric m;
  // For several triples, d(a,c) <= d(a,b) + d(b,c).
  const double vals[] = {-3.5, 0.0, 1.0, 2.7, 100.0};
  for (double a : vals) {
    for (double b : vals) {
      for (double c : vals) {
        EXPECT_LE(m.Distance(Value(a), Value(c)),
                  m.Distance(Value(a), Value(b)) +
                      m.Distance(Value(b), Value(c)) + 1e-12);
      }
    }
  }
}

TEST(EditDistanceMetric, MatchesLevenshtein) {
  EditDistanceMetric m;
  EXPECT_DOUBLE_EQ(m.Distance(Value("kitten"), Value("sitting")), 3.0);
  EXPECT_DOUBLE_EQ(m.Distance(Value("abc"), Value("abc")), 0.0);
}

TEST(WeightedEditDistanceMetric, ConfusableIsCheap) {
  WeightedEditDistanceMetric m;
  // O vs 0 is a confusable pair: half the cost of a full substitution.
  double confusable = m.Distance(Value("RH10-OAG"), Value("RH10-0AG"));
  double arbitrary = m.Distance(Value("RH10-XAG"), Value("RH10-0AG"));
  EXPECT_LT(confusable, arbitrary);
}

TEST(DiscreteMetric, ZeroOne) {
  DiscreteMetric m;
  EXPECT_DOUBLE_EQ(m.Distance(Value("a"), Value("a")), 0.0);
  EXPECT_DOUBLE_EQ(m.Distance(Value("a"), Value("b")), 1.0);
  EXPECT_DOUBLE_EQ(m.Distance(Value(1.0), Value(2.0)), 1.0);
}

TEST(DefaultMetricFor, PicksByKind) {
  auto numeric = DefaultMetricFor(ValueKind::kNumeric);
  EXPECT_DOUBLE_EQ(numeric->Distance(Value(1.0), Value(4.0)), 3.0);
  auto text = DefaultMetricFor(ValueKind::kString);
  EXPECT_DOUBLE_EQ(text->Distance(Value("ab"), Value("ad")), 1.0);
}

}  // namespace
}  // namespace disc
