#include "data/datasets.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "distance/evaluator.h"
#include "index/index_factory.h"

namespace disc {
namespace {

TEST(Datasets, NamesListedMatchTable1) {
  std::vector<std::string> names = PaperDatasetNames();
  EXPECT_EQ(names.size(), 9u);
  EXPECT_EQ(names[0], "iris");
  EXPECT_EQ(names.back(), "restaurant");
}

TEST(Datasets, IrisShape) {
  PaperDataset ds = MakePaperDataset("iris");
  EXPECT_EQ(ds.dirty.size(), 150u);
  EXPECT_EQ(ds.dirty.arity(), 4u);
  EXPECT_EQ(ds.labels.size(), 150u);
  EXPECT_GT(ds.errors.size(), 0u);
}

TEST(Datasets, ScaleShrinksTuples) {
  PaperDataset full = MakePaperDataset("wifi", 42, 0.1);
  EXPECT_NEAR(static_cast<double>(full.dirty.size()), 200.0, 5.0);
  EXPECT_EQ(full.dirty.arity(), 7u);
}

TEST(Datasets, CleanAndDirtyDifferOnlyAtErrors) {
  PaperDataset ds = MakePaperDataset("seeds");
  std::size_t diff_cells = 0;
  for (std::size_t row = 0; row < ds.clean.size(); ++row) {
    for (std::size_t a = 0; a < ds.clean.arity(); ++a) {
      if (!(ds.clean[row][a] == ds.dirty[row][a])) ++diff_cells;
    }
  }
  EXPECT_EQ(diff_cells, ds.errors.size());
}

TEST(Datasets, SuggestedConstraintFlagsRoughlyTargetOutliers) {
  PaperDataset ds = MakePaperDataset("iris");
  DistanceEvaluator ev(ds.dirty.schema());
  auto index = MakeNeighborIndex(ds.dirty, ev, ds.suggested.epsilon);
  InlierOutlierSplit split =
      SplitInliersOutliers(ds.dirty, *index, ds.suggested);
  // Table 1 lists 15 outliers for Iris; calibration targets that count.
  EXPECT_NEAR(static_cast<double>(split.outlier_rows.size()), 15.0, 8.0);
}

TEST(Datasets, DirtyRowsAreMostlyFlagged) {
  PaperDataset ds = MakePaperDataset("wifi", 42, 0.25);
  DistanceEvaluator ev(ds.dirty.schema());
  auto index = MakeNeighborIndex(ds.dirty, ev, ds.suggested.epsilon);
  InlierOutlierSplit split =
      SplitInliersOutliers(ds.dirty, *index, ds.suggested);
  std::size_t flagged = 0;
  for (std::size_t row : ds.dirty_rows) {
    if (std::find(split.outlier_rows.begin(), split.outlier_rows.end(), row) !=
        split.outlier_rows.end()) {
      ++flagged;
    }
  }
  // The injected errors are large; the calibrated constraint should catch
  // the clear majority of them.
  EXPECT_GT(flagged * 10, ds.dirty_rows.size() * 6);
}

TEST(Datasets, GpsShape) {
  PaperDataset ds = MakePaperDataset("gps", 42, 0.2);
  EXPECT_EQ(ds.dirty.arity(), 3u);
  EXPECT_EQ(ds.dirty.schema().name(0), "Time");
  // GPS errors touch exactly one attribute.
  for (std::size_t row : ds.dirty_rows) {
    AttributeSet attrs;
    for (const CellError& e : ds.errors) {
      if (e.row == row) attrs.insert(e.attribute);
    }
    EXPECT_EQ(attrs.size(), 1u);
  }
  EXPECT_FALSE(ds.natural_outlier_rows.empty());
}

TEST(Datasets, RestaurantIsStringData) {
  PaperDataset ds = MakePaperDataset("restaurant");
  EXPECT_EQ(ds.dirty.arity(), 5u);
  for (std::size_t a = 0; a < ds.dirty.arity(); ++a) {
    EXPECT_EQ(ds.dirty.schema().kind(a), ValueKind::kString);
  }
  EXPECT_EQ(ds.dirty.size(), 864u);
}

TEST(Datasets, UnknownNameGivesEmpty) {
  PaperDataset ds = MakePaperDataset("nope");
  EXPECT_TRUE(ds.dirty.empty());
  EXPECT_EQ(ds.name, "nope");
}

TEST(Datasets, DeterministicForSeed) {
  PaperDataset a = MakePaperDataset("iris", 7);
  PaperDataset b = MakePaperDataset("iris", 7);
  ASSERT_EQ(a.dirty.size(), b.dirty.size());
  for (std::size_t i = 0; i < a.dirty.size(); ++i) {
    EXPECT_EQ(a.dirty[i], b.dirty[i]);
  }
  EXPECT_DOUBLE_EQ(a.suggested.epsilon, b.suggested.epsilon);
}

TEST(Datasets, LabelsCoverDeclaredClasses) {
  PaperDataset ds = MakePaperDataset("yeast", 42, 0.3);
  std::set<int> distinct;
  for (int l : ds.labels) {
    if (l >= 0) distinct.insert(l);
  }
  EXPECT_EQ(distinct.size(), 4u);  // Table 1: yeast has 4 classes
}

TEST(Datasets, EtaMatchesPaperHints) {
  EXPECT_EQ(MakePaperDataset("letter", 42, 0.05).suggested.eta, 18u);
  EXPECT_EQ(MakePaperDataset("gps", 42, 0.1).suggested.eta, 3u);
  // Restaurant: η = 2 (self + duplicate twin under the self-counting
  // convention), ε strictly below the 1-edit typo cost so corrupted copies
  // violate while exact copies do not.
  PaperDataset restaurant = MakePaperDataset("restaurant");
  EXPECT_EQ(restaurant.suggested.eta, 2u);
  EXPECT_GT(restaurant.suggested.epsilon, 0.0);
  EXPECT_LT(restaurant.suggested.epsilon, 1.0);
}

TEST(Datasets, RestaurantErrorsHitOnlyDuplicates) {
  PaperDataset ds = MakePaperDataset("restaurant");
  // Every dirty row must belong to a duplicated entity (2-3 rows), and no
  // entity has more than one corrupted row — the clean copies stay inliers.
  std::map<int, int> label_counts;
  for (int l : ds.labels) ++label_counts[l];
  std::map<int, int> dirty_per_entity;
  for (std::size_t row : ds.dirty_rows) {
    EXPECT_GE(label_counts[ds.labels[row]], 2) << "row " << row;
    EXPECT_EQ(++dirty_per_entity[ds.labels[row]], 1) << "row " << row;
  }
  // Singletons are recorded as natural outliers.
  EXPECT_GT(ds.natural_outlier_rows.size(), 0u);
}

}  // namespace
}  // namespace disc
