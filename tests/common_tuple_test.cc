#include "common/tuple.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

TEST(Tuple, NumericFactory) {
  Tuple t = Tuple::Numeric({1.0, 2.0, 3.0});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0].num(), 1.0);
  EXPECT_DOUBLE_EQ(t[2].num(), 3.0);
}

TEST(Tuple, FromDoubles) {
  Tuple t = Tuple::FromDoubles({4.0, 5.0});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t[1].num(), 5.0);
}

TEST(Tuple, AritySizedConstructor) {
  Tuple t(4);
  EXPECT_EQ(t.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(t[i].is_numeric());
    EXPECT_EQ(t[i].num(), 0.0);
  }
}

TEST(Tuple, MixedValues) {
  Tuple t{Value(1.0), Value("x")};
  EXPECT_TRUE(t[0].is_numeric());
  EXPECT_TRUE(t[1].is_string());
}

TEST(Tuple, Equality) {
  EXPECT_EQ(Tuple::Numeric({1, 2}), Tuple::Numeric({1, 2}));
  EXPECT_NE(Tuple::Numeric({1, 2}), Tuple::Numeric({1, 3}));
  EXPECT_NE(Tuple::Numeric({1, 2}), Tuple::Numeric({1, 2, 3}));
}

TEST(Tuple, MutationThroughIndex) {
  Tuple t = Tuple::Numeric({1, 2});
  t[0] = Value(9.0);
  EXPECT_DOUBLE_EQ(t[0].num(), 9.0);
}

TEST(Tuple, ToDoublesSkipsStrings) {
  Tuple t{Value(1.0), Value("x"), Value(2.0)};
  std::vector<double> d = t.ToDoubles();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
}

TEST(Tuple, ToStringFormat) {
  EXPECT_EQ(Tuple::Numeric({1, 2}).ToString(), "(1, 2)");
}

TEST(AttributeSet, EmptyByDefault) {
  AttributeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(AttributeSet, InsertEraseContains) {
  AttributeSet s;
  s.insert(3);
  s.insert(10);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(10));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 2u);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1u);
}

TEST(AttributeSet, InitializerList) {
  AttributeSet s{0, 2, 5};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(5));
}

TEST(AttributeSet, FullSet) {
  AttributeSet s = AttributeSet::Full(5);
  EXPECT_EQ(s.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(s.contains(i));
  EXPECT_FALSE(s.contains(5));
}

TEST(AttributeSet, FullSet64) {
  AttributeSet s = AttributeSet::Full(64);
  EXPECT_EQ(s.size(), 64u);
}

TEST(AttributeSet, WithIsNonMutating) {
  AttributeSet s{1};
  AttributeSet t = s.With(2);
  EXPECT_FALSE(s.contains(2));
  EXPECT_TRUE(t.contains(2));
  EXPECT_TRUE(t.contains(1));
}

TEST(AttributeSet, Complement) {
  AttributeSet s{0, 2};
  AttributeSet c = s.ComplementIn(4);
  EXPECT_FALSE(c.contains(0));
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
  EXPECT_EQ(c.size(), 2u);
}

TEST(AttributeSet, ToIndicesSorted) {
  AttributeSet s{5, 1, 3};
  std::vector<std::size_t> idx = s.ToIndices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 3u);
  EXPECT_EQ(idx[2], 5u);
}

TEST(AttributeSet, BitsRoundTrip) {
  AttributeSet s{0, 63};
  AttributeSet t(s.bits());
  EXPECT_EQ(s, t);
}

}  // namespace
}  // namespace disc
