// Robustness / failure-injection suite: degenerate relations, alternative
// norms, and full-pipeline (normalize → save → invert) paths that unit
// tests of individual modules do not cross.

#include <gtest/gtest.h>

#include <cmath>

#include "clustering/dbscan.h"
#include "common/random.h"
#include "core/outlier_saving.h"
#include "distance/normalization.h"
#include "index/index_factory.h"

namespace disc {
namespace {

Relation SingleTuple() {
  Relation r(Schema::Numeric(2));
  r.AppendUnchecked(Tuple::Numeric({1, 2}));
  return r;
}

Relation IdenticalTuples(std::size_t n) {
  Relation r(Schema::Numeric(2));
  for (std::size_t i = 0; i < n; ++i) {
    r.AppendUnchecked(Tuple::Numeric({3, 4}));
  }
  return r;
}

TEST(Robustness, SingleTupleRelationEverywhere) {
  Relation r = SingleTuple();
  DistanceEvaluator ev(r.schema());
  // Index paths.
  auto index = MakeNeighborIndex(r, ev, 1.0);
  EXPECT_EQ(index->CountWithin(r[0], 1.0), 1u);
  EXPECT_EQ(index->KNearest(r[0], 5).size(), 1u);
  // Clustering.
  Labels labels = Dbscan(r, ev, {1.0, 1});
  EXPECT_EQ(labels.size(), 1u);
  // Saving: with η = 1 nothing violates.
  OutlierSavingOptions opts;
  opts.constraint = {1.0, 1};
  SavedDataset saved = SaveOutliers(r, ev, opts);
  EXPECT_TRUE(saved.outlier_rows.empty());
}

TEST(Robustness, IdenticalTuplesNeverOutlying) {
  Relation r = IdenticalTuples(20);
  DistanceEvaluator ev(r.schema());
  OutlierSavingOptions opts;
  opts.constraint = {0.001, 20};
  SavedDataset saved = SaveOutliers(r, ev, opts);
  // All 20 copies are each other's 0-distance neighbors.
  EXPECT_TRUE(saved.outlier_rows.empty());
}

TEST(Robustness, OneDistinctAmongIdenticalGetsSnapped) {
  Relation r = IdenticalTuples(20);
  r.AppendUnchecked(Tuple::Numeric({100, 100}));
  DistanceEvaluator ev(r.schema());
  OutlierSavingOptions opts;
  opts.constraint = {0.5, 3};
  SavedDataset saved = SaveOutliers(r, ev, opts);
  ASSERT_EQ(saved.outlier_rows.size(), 1u);
  EXPECT_EQ(saved.records[0].disposition, OutlierDisposition::kSaved);
  EXPECT_EQ(saved.repaired[20], Tuple::Numeric({3, 4}));
}

class NormVariantTest : public testing::TestWithParam<LpNorm> {};

TEST_P(NormVariantTest, SavingWorksUnderEveryNorm) {
  Rng rng(91);
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 80; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5)}));
  }
  r.AppendUnchecked(Tuple::Numeric({0.1, 25.0}));  // one broken attribute
  DistanceEvaluator ev(r.schema(), GetParam());
  OutlierSavingOptions opts;
  opts.constraint = {GetParam() == LpNorm::kL1 ? 2.5 : 1.5, 5};
  SavedDataset saved = SaveOutliers(r, ev, opts);
  ASSERT_FALSE(saved.records.empty());
  bool repaired_last = false;
  for (const OutlierRecord& rec : saved.records) {
    if (rec.row == 80 && rec.disposition == OutlierDisposition::kSaved) {
      repaired_last = true;
      EXPECT_LT(std::fabs(rec.adjusted[1].num()), 10.0);
    }
  }
  EXPECT_TRUE(repaired_last) << "norm variant failed to save the outlier";
}

INSTANTIATE_TEST_SUITE_P(AllNorms, NormVariantTest,
                         testing::Values(LpNorm::kL1, LpNorm::kL2,
                                         LpNorm::kLInf));

TEST(Robustness, NormalizeSaveInvertPipeline) {
  // The CLI's full path: fit a normalizer on raw data with heterogeneous
  // scales, save in normalized space, map back to original units.
  Rng rng(92);
  Relation raw(Schema::NumericNamed({"time", "lon"}));
  for (int i = 0; i < 100; ++i) {
    raw.AppendUnchecked(
        Tuple::Numeric({i * 10.0, 800 + i * 0.4 + rng.Gaussian(0, 0.05)}));
  }
  // Corrupt one longitude by a visible amount.
  Tuple clean_row = raw[50];
  raw[50][1] = Value(raw[50][1].num() + 15.0);

  Normalizer norm = Normalizer::Fit(raw);
  Relation scaled = norm.Apply(raw);
  DistanceEvaluator ev(scaled.schema());

  OutlierSavingOptions opts;
  opts.constraint = {0.06, 3};
  opts.save.kappa = 1;
  SavedDataset saved = SaveOutliers(scaled, ev, opts);

  Relation repaired = norm.Invert(saved.repaired);
  // Row 50 must be saved with a single-attribute repair (κ = 1). Under
  // min-max normalization, fixing lon or moving time to the chain position
  // matching the corrupted lon cost the same — both are valid; the real
  // invariant is that the repaired row lands back ON the trajectory
  // (lon ≈ 800 + 0.04 · time), which the corrupted row was 15 off of.
  const Tuple& fixed = repaired[50];
  double residual_after =
      std::fabs(fixed[1].num() - (800.0 + 0.04 * fixed[0].num()));
  double residual_before =
      std::fabs(raw[50][1].num() - (800.0 + 0.04 * raw[50][0].num()));
  EXPECT_NEAR(residual_before, 15.0, 0.5);
  // Splice repairs take donor values, so a few units of discretization
  // remain; the point must be far closer to the trajectory than before.
  EXPECT_LT(residual_after, residual_before / 3.0);
  // Exactly one attribute changed.
  std::size_t changed = 0;
  for (std::size_t a = 0; a < 2; ++a) {
    if (std::fabs(fixed[a].num() - raw[50][a].num()) > 1e-9) ++changed;
  }
  EXPECT_EQ(changed, 1u);
}

TEST(Robustness, SaveOutliersDeterministicAcrossRuns) {
  Rng rng(93);
  Relation r(Schema::Numeric(3));
  for (int i = 0; i < 120; ++i) {
    r.AppendUnchecked(Tuple::Numeric(
        {rng.Gaussian(0, 1), rng.Gaussian(0, 1), rng.Gaussian(0, 1)}));
  }
  r[7][2] = Value(30.0);
  DistanceEvaluator ev(r.schema());
  OutlierSavingOptions opts;
  opts.constraint = {1.5, 5};
  SavedDataset a = SaveOutliers(r, ev, opts);
  SavedDataset b = SaveOutliers(r, ev, opts);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].adjusted, b.records[i].adjusted);
    EXPECT_EQ(a.records[i].disposition, b.records[i].disposition);
  }
}

TEST(Robustness, ZeroEpsilonConstraint) {
  // ε = 0: only exact duplicates are neighbors; saving degenerates to
  // snapping onto duplicated positions but must not crash or loop.
  Relation r = IdenticalTuples(10);
  r.AppendUnchecked(Tuple::Numeric({9, 9}));
  DistanceEvaluator ev(r.schema());
  OutlierSavingOptions opts;
  opts.constraint = {0.0, 2};
  SavedDataset saved = SaveOutliers(r, ev, opts);
  ASSERT_EQ(saved.outlier_rows.size(), 1u);
}

TEST(Robustness, EtaOfOneFlagsNothing) {
  Rng rng(94);
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 30; ++i) {
    r.AppendUnchecked(
        Tuple::Numeric({rng.Uniform(0, 100), rng.Uniform(0, 100)}));
  }
  DistanceEvaluator ev(r.schema());
  OutlierSavingOptions opts;
  opts.constraint = {0.001, 1};  // every tuple is its own neighbor
  SavedDataset saved = SaveOutliers(r, ev, opts);
  EXPECT_TRUE(saved.outlier_rows.empty());
}

}  // namespace
}  // namespace disc
