#include "eval/clustering_metrics.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

TEST(PairCounting, PerfectAgreement) {
  std::vector<int> labels{0, 0, 1, 1, 2};
  PairCountingScores s = PairCounting(labels, labels);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(PairCounting, RelabelingInvariant) {
  std::vector<int> a{0, 0, 1, 1};
  std::vector<int> b{5, 5, 2, 2};
  EXPECT_DOUBLE_EQ(PairCounting(a, b).f1, 1.0);
}

TEST(PairCounting, KnownSplit) {
  // Truth: {0,1,2,3} together. Prediction splits into {0,1} and {2,3}.
  std::vector<int> truth{0, 0, 0, 0};
  std::vector<int> pred{0, 0, 1, 1};
  PairCountingScores s = PairCounting(pred, truth);
  // TP = 2 (pairs 01, 23); truth pairs = 6; pred pairs = 2.
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_NEAR(s.recall, 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(s.f1, 2 * 1.0 * (2.0 / 6.0) / (1.0 + 2.0 / 6.0), 1e-12);
}

TEST(PairCounting, NoiseAsSingletons) {
  // Two noise points never pair, in prediction or truth.
  std::vector<int> truth{0, 0, -1, -1};
  std::vector<int> pred{0, 0, -1, -1};
  PairCountingScores s = PairCounting(pred, truth);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(PairCounting, NoisePredictionLosesRecall) {
  std::vector<int> truth{0, 0, 0};
  std::vector<int> pred{0, 0, -1};
  PairCountingScores s = PairCounting(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_NEAR(s.recall, 1.0 / 3.0, 1e-12);
}

TEST(PairCounting, EmptyOrMismatched) {
  std::vector<int> empty;
  EXPECT_DOUBLE_EQ(PairCounting(empty, empty).f1, 0.0);
  std::vector<int> a{0};
  std::vector<int> b{0, 1};
  EXPECT_DOUBLE_EQ(PairCounting(a, b).f1, 0.0);
}

TEST(Nmi, PerfectAgreementIsOne) {
  std::vector<int> labels{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(Nmi(labels, labels), 1.0, 1e-12);
}

TEST(Nmi, IndependentPartitionsNearZero) {
  // Prediction orthogonal to truth.
  std::vector<int> truth{0, 0, 1, 1};
  std::vector<int> pred{0, 1, 0, 1};
  EXPECT_LT(Nmi(pred, truth), 0.05);
}

TEST(Nmi, SymmetricInArguments) {
  std::vector<int> a{0, 0, 1, 1, 2};
  std::vector<int> b{0, 1, 1, 1, 2};
  EXPECT_NEAR(Nmi(a, b), Nmi(b, a), 1e-12);
}

TEST(Nmi, RangeZeroOne) {
  std::vector<int> a{0, 1, 0, 1, 2, 2, 0};
  std::vector<int> b{1, 1, 0, 0, 2, 0, 2};
  double v = Nmi(a, b);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

TEST(Ari, PerfectAgreementIsOne) {
  std::vector<int> labels{0, 0, 1, 1, 2};
  EXPECT_NEAR(Ari(labels, labels), 1.0, 1e-12);
}

TEST(Ari, RelabelingInvariant) {
  std::vector<int> a{0, 0, 1, 1};
  std::vector<int> b{9, 9, 4, 4};
  EXPECT_NEAR(Ari(a, b), 1.0, 1e-12);
}

TEST(Ari, RandomLikeNearZero) {
  std::vector<int> truth{0, 0, 1, 1, 0, 1, 0, 1};
  std::vector<int> pred{0, 1, 0, 1, 1, 0, 1, 0};
  EXPECT_NEAR(Ari(pred, truth), 0.0, 0.35);
}

TEST(Ari, WorseThanChanceIsNegative) {
  // Systematically anti-correlated partitions can push ARI below 0.
  std::vector<int> truth{0, 0, 0, 1, 1, 1};
  std::vector<int> pred{0, 1, 2, 0, 1, 2};
  EXPECT_LE(Ari(pred, truth), 0.0 + 1e-9);
}

TEST(Ari, AtMostOne) {
  std::vector<int> a{0, 0, 1, 2, 2, 1};
  std::vector<int> b{0, 1, 1, 2, 0, 1};
  EXPECT_LE(Ari(a, b), 1.0 + 1e-12);
}

TEST(Metrics, SplitClusterScoresBelowPerfect) {
  std::vector<int> truth{0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<int> split{0, 0, 2, 2, 1, 1, 1, 1};
  EXPECT_LT(PairCounting(split, truth).f1, 1.0);
  EXPECT_LT(Nmi(split, truth), 1.0);
  EXPECT_LT(Ari(split, truth), 1.0);
  // But far better than nothing.
  EXPECT_GT(PairCounting(split, truth).f1, 0.5);
}

}  // namespace
}  // namespace disc
