#include "clustering/optics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clustering/dbscan.h"
#include "data/generators.h"
#include "eval/clustering_metrics.h"

namespace disc {
namespace {

LabeledRelation TwoBlobs(std::size_t per_blob = 60, std::uint64_t seed = 6) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0, 0}, 0.5, per_blob});
  clusters.push_back({{10, 0}, 0.5, per_blob});
  return GenerateGaussianMixture(clusters, seed);
}

TEST(Optics, OrderingCoversAllPoints) {
  LabeledRelation data = TwoBlobs();
  DistanceEvaluator ev(data.data.schema());
  std::vector<OpticsEntry> ordering =
      OpticsOrdering(data.data, ev, {2.0, 4});
  EXPECT_EQ(ordering.size(), data.data.size());
  std::vector<bool> seen(data.data.size(), false);
  for (const OpticsEntry& e : ordering) {
    EXPECT_FALSE(seen[e.row]) << "row visited twice";
    seen[e.row] = true;
  }
}

TEST(Optics, FirstEntryHasInfiniteReachability) {
  LabeledRelation data = TwoBlobs();
  DistanceEvaluator ev(data.data.schema());
  std::vector<OpticsEntry> ordering =
      OpticsOrdering(data.data, ev, {2.0, 4});
  ASSERT_FALSE(ordering.empty());
  EXPECT_TRUE(std::isinf(ordering[0].reachability));
}

TEST(Optics, ClusterPointsHaveLowReachability) {
  LabeledRelation data = TwoBlobs();
  DistanceEvaluator ev(data.data.schema());
  std::vector<OpticsEntry> ordering =
      OpticsOrdering(data.data, ev, {3.0, 4});
  // All but the two component-starting points should be reachable well
  // within the cluster scale.
  std::size_t high = 0;
  for (const OpticsEntry& e : ordering) {
    if (e.reachability > 2.0) ++high;
  }
  EXPECT_LE(high, 3u);
}

TEST(Optics, ExtractionMatchesDbscanClusterCount) {
  LabeledRelation data = TwoBlobs();
  DistanceEvaluator ev(data.data.schema());
  Labels optics = Optics(data.data, ev, {3.0, 4}, 1.5);
  Labels dbscan = Dbscan(data.data, ev, {1.5, 4});
  EXPECT_EQ(NumClusters(optics), NumClusters(dbscan));
  // The flat clusterings should agree almost perfectly.
  PairCountingScores s = PairCounting(optics, dbscan);
  EXPECT_GT(s.f1, 0.98);
}

TEST(Optics, RecoverBlobsAgainstTruth) {
  LabeledRelation data = TwoBlobs();
  DistanceEvaluator ev(data.data.schema());
  Labels labels = Optics(data.data, ev, {3.0, 4}, 1.5);
  EXPECT_GT(PairCounting(labels, data.labels).f1, 0.95);
}

TEST(Optics, FarPointIsNoise) {
  LabeledRelation data = TwoBlobs();
  data.data.AppendUnchecked(Tuple::Numeric({100, 100}));
  data.labels.push_back(kNoise);
  DistanceEvaluator ev(data.data.schema());
  Labels labels = Optics(data.data, ev, {3.0, 4}, 1.5);
  EXPECT_EQ(labels.back(), kNoise);
}

TEST(Optics, OneExtractionPerEpsilonFromSameOrdering) {
  // The selling point of OPTICS: one ordering serves many ε extractions.
  LabeledRelation data = TwoBlobs();
  DistanceEvaluator ev(data.data.schema());
  std::vector<OpticsEntry> ordering =
      OpticsOrdering(data.data, ev, {5.0, 4});
  Labels tight = ExtractDbscanClustering(ordering, 1.0, data.data.size());
  Labels loose = ExtractDbscanClustering(ordering, 5.0, data.data.size());
  EXPECT_GE(NumNoise(tight), NumNoise(loose));
  EXPECT_GE(NumClusters(tight), 2u);
  // The blobs sit 10 apart: even the loose extraction keeps them separate
  // (the ordering was capped at max_epsilon = 5), with no noise left.
  EXPECT_EQ(NumClusters(loose), 2u);
  EXPECT_EQ(NumNoise(loose), 0u);
}

TEST(Optics, EmptyRelation) {
  Relation r(Schema::Numeric(2));
  DistanceEvaluator ev(r.schema());
  EXPECT_TRUE(OpticsOrdering(r, ev, {1.0, 3}).empty());
  EXPECT_TRUE(Optics(r, ev, {1.0, 3}, 0.5).empty());
}

}  // namespace
}  // namespace disc
