#include "clustering/srem.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "eval/clustering_metrics.h"

namespace disc {
namespace {

LabeledRelation TwoBlobs(std::uint64_t seed = 9) {
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0, 0}, 0.7, 70});
  clusters.push_back({{10, 0}, 0.7, 70});
  return GenerateGaussianMixture(clusters, seed);
}

TEST(Srem, RecoversTwoBlobs) {
  LabeledRelation data = TwoBlobs();
  SremParams p;
  p.k = 2;
  SremResult res = Srem(data.data, p);
  EXPECT_EQ(NumClusters(res.labels), 2u);
  PairCountingScores s = PairCounting(res.labels, data.labels);
  EXPECT_GT(s.f1, 0.95);
}

TEST(Srem, LogLikelihoodFinite) {
  LabeledRelation data = TwoBlobs();
  SremParams p;
  p.k = 2;
  SremResult res = Srem(data.data, p);
  EXPECT_TRUE(std::isfinite(res.log_likelihood));
}

TEST(Srem, MoreRestartsNeverHurtLikelihood) {
  LabeledRelation data = TwoBlobs();
  SremParams one;
  one.k = 2;
  one.restarts = 1;
  one.seed = 13;
  SremParams five;
  five.k = 2;
  five.restarts = 5;
  five.seed = 13;
  SremResult a = Srem(data.data, one);
  SremResult b = Srem(data.data, five);
  // The 5-restart run contains the 1-restart run's initialization.
  EXPECT_GE(b.log_likelihood, a.log_likelihood - 1e-6);
}

TEST(Srem, ModelShapesMatchK) {
  LabeledRelation data = TwoBlobs();
  SremParams p;
  p.k = 2;
  SremResult res = Srem(data.data, p);
  EXPECT_EQ(res.means.size(), 2u);
  EXPECT_EQ(res.variances.size(), 2u);
  EXPECT_EQ(res.weights.size(), 2u);
  double weight_sum = res.weights[0] + res.weights[1];
  EXPECT_NEAR(weight_sum, 1.0, 1e-6);
  for (double v : res.variances) EXPECT_GT(v, 0.0);
}

TEST(Srem, DeterministicForFixedSeed) {
  LabeledRelation data = TwoBlobs();
  SremParams p;
  p.k = 2;
  p.seed = 77;
  SremResult a = Srem(data.data, p);
  SremResult b = Srem(data.data, p);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Srem, EmptyRelation) {
  Relation r(Schema::Numeric(2));
  SremResult res = Srem(r, {});
  EXPECT_TRUE(res.labels.empty());
}

}  // namespace
}  // namespace disc
