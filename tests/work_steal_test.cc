// WorkStealingPool scheduler semantics plus the determinism contract of the
// cost-ordered parallel saving path built on it: every index runs exactly
// once, priority order is respected, steals happen under contention, nested
// ParallelFor covers its range with schedule-independent chunk boundaries,
// exceptions propagate without wedging the pool, and DiscSaver::SaveAll
// stays bit-identical (including SearchStats::SameWork) across thread
// counts, under cancellation fired mid-batch, and with the chunked bound
// scans engaged on a large relation. Runs under TSan in the tsan-core CI
// shard.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/fault.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/disc_saver.h"
#include "core/outlier_saving.h"
#include "data/generators.h"
#include "index/index_factory.h"

namespace disc {
namespace {

std::vector<std::size_t> Iota(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(WorkStealingPool, RunBatchExecutesEveryIndexExactlyOnce) {
  WorkStealingPool pool(4);
  const std::size_t n = 100;
  std::vector<std::size_t> order = Iota(n);
  // A scrambled priority order must not change coverage.
  std::reverse(order.begin() + 10, order.end() - 10);

  std::vector<std::atomic<int>> runs(n);
  const WorkStealingPool::SchedStats before = pool.stats();
  pool.RunBatch(order, [&](std::size_t i) {
    runs[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "index " << i;
  }
  const WorkStealingPool::SchedStats after = pool.stats();
  EXPECT_EQ(after.tasks - before.tasks, n);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(WorkStealingPool, SingleWorkerRunsPriorityOrderFrontToBack) {
  // With one worker there is exactly one deque and no thief: execution
  // order must equal the caller's priority order (hardest first), which is
  // the property the cost-ordered SaveAll scheduling relies on.
  WorkStealingPool pool(1);
  const std::vector<std::size_t> order = {5, 2, 7, 0, 6, 1, 4, 3};
  std::vector<std::size_t> sequence;
  std::mutex mu;
  pool.RunBatch(order, [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    sequence.push_back(i);
  });
  EXPECT_EQ(sequence, order);
}

TEST(WorkStealingPool, StealsOccurWhenOneWorkerIsBusy) {
  // Priority slot 0 lands on worker 0's deque and sleeps; the rest of
  // worker 0's queue can only drain through steals by worker 1. This is
  // the steal-under-contention stress the scheduler exists for.
  WorkStealingPool pool(2);
  const std::size_t n = 40;
  std::atomic<int> ran{0};
  const WorkStealingPool::SchedStats before = pool.stats();
  pool.RunBatch(Iota(n), [&](std::size_t i) {
    if (i == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), static_cast<int>(n));
  const WorkStealingPool::SchedStats after = pool.stats();
  EXPECT_GE(after.steals - before.steals, 1u)
      << "idle worker never stole from the busy worker's deque";
}

TEST(WorkStealingPool, ParallelForCoversRangeWithFixedChunks) {
  WorkStealingPool pool(4);
  const std::size_t n = 10000;
  const std::size_t grain = 128;
  std::vector<std::atomic<int>> touched(n);
  std::atomic<std::size_t> chunks{0};
  pool.ParallelFor(0, n, grain,
                   [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                     // Chunk boundaries are a pure function of (range,
                     // grain) — the determinism precondition for the
                     // chunked bound-scan merges.
                     EXPECT_EQ(begin, chunk * grain);
                     EXPECT_EQ(end, std::min(n, begin + grain));
                     for (std::size_t i = begin; i < end; ++i) {
                       touched[i].fetch_add(1, std::memory_order_relaxed);
                     }
                     chunks.fetch_add(1, std::memory_order_relaxed);
                   });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(chunks.load(), (n + grain - 1) / grain);
}

TEST(WorkStealingPool, ParallelForSmallRangeRunsInlineAsChunkZero) {
  WorkStealingPool pool(4);
  std::vector<std::size_t> chunk_ids;
  pool.ParallelFor(0, 100, 128,
                   [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                     EXPECT_EQ(begin, 0u);
                     EXPECT_EQ(end, 100u);
                     chunk_ids.push_back(chunk);
                   });
  ASSERT_EQ(chunk_ids.size(), 1u);
  EXPECT_EQ(chunk_ids[0], 0u);
}

TEST(WorkStealingPool, ParallelForNestedInsideBatchTasks) {
  // Every batch task fans out its own inner scan — the worker helps only
  // with its own group, idle workers pick up the rest. Sums must come out
  // exact regardless of who ran which chunk.
  WorkStealingPool pool(3);
  const std::size_t tasks = 8;
  const std::size_t n = 5000;
  std::vector<std::uint64_t> sums(tasks, 0);
  pool.RunBatch(Iota(tasks), [&](std::size_t t) {
    std::vector<std::uint64_t> partial((n + 99) / 100, 0);
    pool.ParallelFor(0, n, 100,
                     [&](std::size_t begin, std::size_t end,
                         std::size_t chunk) {
                       std::uint64_t s = 0;
                       for (std::size_t i = begin; i < end; ++i) s += i;
                       partial[chunk] = s;
                     });
    sums[t] = std::accumulate(partial.begin(), partial.end(),
                              std::uint64_t{0});
  });
  const std::uint64_t want = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  for (std::size_t t = 0; t < tasks; ++t) {
    EXPECT_EQ(sums[t], want) << "task " << t;
  }
  const WorkStealingPool::SchedStats stats = pool.stats();
  EXPECT_GE(stats.nested_chunks, tasks * ((n + 99) / 100));
}

TEST(WorkStealingPool, BatchExceptionPropagatesAndPoolStaysUsable) {
  WorkStealingPool pool(2);
  const std::size_t n = 16;
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.RunBatch(Iota(n),
                    [&](std::size_t i) {
                      ran.fetch_add(1, std::memory_order_relaxed);
                      if (i == 3) throw std::runtime_error("task 3 failed");
                    }),
      std::runtime_error);
  // The batch drains: every task still ran exactly once.
  EXPECT_EQ(ran.load(), static_cast<int>(n));

  // The pool survives the failed batch.
  std::atomic<int> again{0};
  pool.RunBatch(Iota(n), [&](std::size_t) {
    again.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(again.load(), static_cast<int>(n));
}

// ---------------------------------------------------------------------------
// Cost-ordered SaveAll on top of the pool.

/// Clusters with a strided slice of corrupted rows whose displacement
/// varies widely, so the batch has genuinely skewed search costs.
Relation MakeSkewedDataset(std::uint64_t seed, std::size_t per_cluster,
                           std::size_t corrupt_stride) {
  std::vector<ClusterSpec> specs = {
      {{0, 0, 0, 0}, 0.5, per_cluster},
      {{12, 12, 0, 0}, 0.5, per_cluster},
      {{0, 12, 12, 0}, 0.5, per_cluster},
      {{12, 0, 0, 12}, 0.5, per_cluster},
  };
  LabeledRelation mixture = GenerateGaussianMixture(specs, seed);
  Rng rng(seed + 1);
  for (std::size_t row = corrupt_stride / 2; row < mixture.data.size();
       row += corrupt_stride) {
    const std::size_t a = static_cast<std::size_t>(rng.UniformInt(0, 3));
    const double magnitude = 18.0 + rng.Uniform() * 60.0;
    const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    mixture.data[row][a] = Value(mixture.data[row][a].num() + sign * magnitude);
    if (row % (3 * corrupt_stride) < corrupt_stride) {
      mixture.data[row][(a + 2) % 4] = Value(-20.0 - rng.Uniform() * 10.0);
    }
  }
  return std::move(mixture.data);
}

struct SaverFixture {
  Relation inliers;
  std::vector<Tuple> outliers;
  std::unique_ptr<DiscSaver> saver;
};

SaverFixture MakeSaver(Relation data, const DistanceEvaluator& evaluator,
                       DistanceConstraint constraint) {
  SaverFixture f;
  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(data, evaluator, constraint.epsilon);
  InlierOutlierSplit split = SplitInliersOutliers(data, *index, constraint);
  f.inliers = data.Select(split.inlier_rows);
  for (std::size_t row : split.outlier_rows) f.outliers.push_back(data[row]);
  f.saver = std::make_unique<DiscSaver>(f.inliers, evaluator, constraint);
  return f;
}

void ExpectBitIdentical(const std::vector<SaveResult>& a,
                        const std::vector<SaveResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].feasible, b[i].feasible) << "outlier " << i;
    EXPECT_EQ(a[i].adjusted, b[i].adjusted) << "outlier " << i;
    EXPECT_EQ(a[i].cost, b[i].cost) << "outlier " << i;
    EXPECT_EQ(a[i].termination, b[i].termination) << "outlier " << i;
    EXPECT_EQ(a[i].lower_bound, b[i].lower_bound) << "outlier " << i;
    EXPECT_EQ(a[i].adjusted_attributes.bits(), b[i].adjusted_attributes.bits());
    EXPECT_EQ(a[i].kappa_exceeded, b[i].kappa_exceeded) << "outlier " << i;
    EXPECT_EQ(a[i].index_queries, b[i].index_queries) << "outlier " << i;
    EXPECT_TRUE(a[i].stats.SameWork(b[i].stats))
        << "outlier " << i << " did schedule-dependent work";
  }
}

TEST(CostOrderedSaveAll, BitIdenticalAcrossThreadCounts) {
  Relation data = MakeSkewedDataset(/*seed=*/71, /*per_cluster=*/80,
                                    /*corrupt_stride=*/9);
  DistanceEvaluator evaluator(data.schema());
  SaverFixture f = MakeSaver(std::move(data), evaluator, {1.6, 5});
  ASSERT_GT(f.outliers.size(), 10u);

  SaveOptions options;
  options.kappa = 2;
  std::vector<SaveResult> reference = f.saver->SaveAll(f.outliers, options);
  for (std::size_t threads : {1u, 4u, 8u}) {
    WorkStealingPool pool(threads);
    std::vector<SaveResult> got =
        f.saver->SaveAll(f.outliers, options, &pool);
    ExpectBitIdentical(reference, got);
  }
}

TEST(CostOrderedSaveAll, CancellationMidBatchIsSoundAndPoolReusable) {
  Relation data = MakeSkewedDataset(/*seed=*/29, /*per_cluster=*/80,
                                    /*corrupt_stride=*/9);
  DistanceEvaluator evaluator(data.schema());
  SaverFixture f = MakeSaver(std::move(data), evaluator, {1.6, 5});
  ASSERT_GT(f.outliers.size(), 10u);

  WorkStealingPool pool(4);
  SaveOptions options;
  options.kappa = 2;

  // Fire batch-wide cancellation from inside a running search, after the
  // batch has expanded a few dozen nodes across its workers — mid-batch,
  // while steals and nested chunks are in flight. The injected kCancel
  // fault at the 48th `search.node` hit replaces the old per-node hook:
  // hit indices are assigned atomically across workers, so the fault fires
  // exactly once, on some node of some in-flight search.
  FaultInjector injector;
  FaultSpec cancel_spec;
  cancel_spec.site = "search.node";
  cancel_spec.kind = FaultKind::kCancel;
  cancel_spec.nth = 48;
  injector.Add(cancel_spec);
  AttachGlobalFaultInjector(&injector);
  BatchBudget batch;
  batch.cancellation = injector.token();

  std::vector<SaveResult> degraded =
      f.saver->SaveAll(f.outliers, options, &pool, batch);
  AttachGlobalFaultInjector(nullptr);
  ASSERT_EQ(degraded.size(), f.outliers.size())
      << "every outlier must be recorded, cancelled or not";
  for (std::size_t i = 0; i < degraded.size(); ++i) {
    const SaveResult& r = degraded[i];
    const bool sound = r.termination == SaveTermination::kCompleted ||
                       r.termination == SaveTermination::kInfeasible ||
                       r.termination == SaveTermination::kCancelled;
    EXPECT_TRUE(sound) << "outlier " << i << " termination "
                       << static_cast<int>(r.termination);
    if (r.termination == SaveTermination::kCancelled && !r.feasible) {
      EXPECT_EQ(r.adjusted, f.outliers[i])
          << "cancelled search without incumbent must return the input";
    }
  }
  EXPECT_TRUE(injector.cancel_fired());

  // The pool must come out of a cancelled batch fully serviceable: a clean
  // rerun on the same pool matches the no-pool reference bit for bit.
  SaveOptions clean;
  clean.kappa = 2;
  std::vector<SaveResult> reference = f.saver->SaveAll(f.outliers, clean);
  std::vector<SaveResult> rerun =
      f.saver->SaveAll(f.outliers, clean, &pool);
  ExpectBitIdentical(reference, rerun);
}

TEST(CostOrderedSaveAll, NestedScansDeterministicOnLargeRelation) {
  // Large enough that the chunked bound scans actually engage (the nested
  // path needs n >= 2 * grain = 16384 candidate rows): 4 clusters x 5000.
  // The pool-backed run must match the sequential run bit for bit — this
  // is the end-to-end check of the k-smallest / chunk-minima merge logic.
  Relation data = MakeSkewedDataset(/*seed=*/83, /*per_cluster=*/5000,
                                    /*corrupt_stride=*/2500);
  DistanceEvaluator evaluator(data.schema());
  SaverFixture f = MakeSaver(std::move(data), evaluator, {1.6, 5});
  ASSERT_GE(f.inliers.size(), 2u * 8192u)
      << "dataset too small for the nested scan path";
  ASSERT_GT(f.outliers.size(), 2u);

  SaveOptions options;
  options.kappa = 2;
  std::vector<SaveResult> reference = f.saver->SaveAll(f.outliers, options);

  WorkStealingPool pool(4);
  const WorkStealingPool::SchedStats before = pool.stats();
  std::vector<SaveResult> parallel =
      f.saver->SaveAll(f.outliers, options, &pool);
  ExpectBitIdentical(reference, parallel);
  const WorkStealingPool::SchedStats after = pool.stats();
  EXPECT_GT(after.nested_chunks - before.nested_chunks, 0u)
      << "nested scan path never engaged on a 20k-row relation";
}

}  // namespace
}  // namespace disc
