#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace disc {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.NextU64() != b.NextU64()) ++differ;
  }
  EXPECT_GT(differ, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-5, 5);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.UniformInt(2, 4);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all of {2,3,4} hit
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0;
  double sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianShiftScale) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SampleIndicesUniqueAndBounded) {
  Rng rng(29);
  std::vector<std::size_t> s = rng.SampleIndices(100, 10);
  ASSERT_EQ(s.size(), 10u);
  std::set<std::size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 10u);
  for (std::size_t i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleAllWhenKExceedsN) {
  Rng rng(31);
  std::vector<std::size_t> s = rng.SampleIndices(5, 10);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, ReseedResetsStream) {
  Rng rng(42);
  std::uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Seed(42);
  EXPECT_EQ(rng.NextU64(), first);
}

}  // namespace
}  // namespace disc
