#include "core/exact_saver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace disc {
namespace {

Relation LatticeInliers(int side) {
  Relation r(Schema::Numeric(2));
  for (int x = 0; x < side; ++x) {
    for (int y = 0; y < side; ++y) {
      r.AppendUnchecked(Tuple::Numeric({double(x), double(y)}));
    }
  }
  return r;
}

TEST(ExactSaver, FindsZeroCostForFeasibleInput) {
  Relation inliers = LatticeInliers(5);
  DistanceEvaluator ev(inliers.schema());
  ExactSaver saver(inliers, ev, {1.5, 4});
  // (2,2) is a lattice point: it already has plenty of neighbors.
  ExactResult res = saver.Save(Tuple::Numeric({2, 2}));
  ASSERT_TRUE(res.feasible);
  EXPECT_DOUBLE_EQ(res.cost, 0.0);
  EXPECT_TRUE(res.adjusted_attributes.empty());
}

TEST(ExactSaver, OptimalSingleAttributeFix) {
  Relation inliers = LatticeInliers(5);
  DistanceEvaluator ev(inliers.schema());
  ExactSaver saver(inliers, ev, {1.5, 4});
  // (2, 50): only the y attribute is broken; the optimum snaps y back into
  // the lattice while keeping x = 2.
  ExactResult res = saver.Save(Tuple::Numeric({2, 50}));
  ASSERT_TRUE(res.feasible);
  EXPECT_DOUBLE_EQ(res.adjusted[0].num(), 2.0);
  EXPECT_LE(res.adjusted[1].num(), 4.0);
  EXPECT_EQ(res.adjusted_attributes.size(), 1u);
  EXPECT_TRUE(res.adjusted_attributes.contains(1));
  // Cost = 50 − adjusted y.
  EXPECT_NEAR(res.cost, 50.0 - res.adjusted[1].num(), 1e-9);
}

TEST(ExactSaver, ExhaustiveMatchesBruteForceOnTinyInstance) {
  // Independently enumerate the full candidate cross-product and verify the
  // saver returns the true optimum.
  Relation inliers = LatticeInliers(3);  // 9 points, domains {0,1,2}
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint c{1.2, 3};
  ExactSaver saver(inliers, ev, c);

  Tuple outlier = Tuple::Numeric({7.3, -2.1});
  ExactResult res = saver.Save(outlier);

  // Brute force over (domain ∪ original)².
  std::vector<double> dom = {0, 1, 2};
  std::vector<double> xs = dom;
  xs.push_back(7.3);
  std::vector<double> ys = dom;
  ys.push_back(-2.1);
  double best = 1e300;
  for (double x : xs) {
    for (double y : ys) {
      Tuple cand = Tuple::Numeric({x, y});
      std::size_t neighbors = 0;
      for (const Tuple& in : inliers) {
        if (ev.Distance(cand, in) <= c.epsilon) ++neighbors;
      }
      if (neighbors >= c.eta - 1) {  // self counts per Formula 4
        best = std::min(best, ev.Distance(outlier, cand));
      }
    }
  }
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.cost, best, 1e-9);
}

TEST(ExactSaver, InfeasibleWhenNoInliersReachable) {
  // η larger than the inlier count + 1 can never be met.
  Relation inliers = LatticeInliers(2);  // 4 points
  DistanceEvaluator ev(inliers.schema());
  ExactSaver saver(inliers, ev, {0.5, 10});
  ExactResult res = saver.Save(Tuple::Numeric({9, 9}));
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.adjusted, Tuple::Numeric({9, 9}));
}

TEST(ExactSaver, BudgetCapReported) {
  Relation inliers = LatticeInliers(6);
  DistanceEvaluator ev(inliers.schema());
  ExactSaver saver(inliers, ev, {1.5, 4});
  ExactOptions opts;
  opts.max_candidates = 3;
  ExactResult res = saver.Save(Tuple::Numeric({10, 10}), opts);
  EXPECT_EQ(res.termination, SaveTermination::kVisitBudget);
  EXPECT_LE(res.candidates_checked, 4u);
}

TEST(ExactSaver, CompletedSearchReportsDefinitiveTermination) {
  Relation inliers = LatticeInliers(4);
  DistanceEvaluator ev(inliers.schema());
  ExactSaver saver(inliers, ev, {1.5, 3});
  ExactResult res = saver.Save(Tuple::Numeric({8, 8}));
  EXPECT_TRUE(res.termination == SaveTermination::kCompleted ||
              res.termination == SaveTermination::kInfeasible);
  EXPECT_EQ(res.termination == SaveTermination::kCompleted, res.feasible);
  EXPECT_GT(res.index_queries, 0u);
}

TEST(ExactSaver, CandidatesCheckedGrowsWithDomain) {
  DistanceEvaluator ev2(Schema::Numeric(2));
  Relation small = LatticeInliers(3);
  Relation large = LatticeInliers(6);
  ExactSaver s_small(small, ev2, {1.5, 3});
  ExactSaver s_large(large, ev2, {1.5, 3});
  Tuple outlier = Tuple::Numeric({30, 30});
  ExactResult a = s_small.Save(outlier);
  ExactResult b = s_large.Save(outlier);
  EXPECT_LT(a.candidates_checked, b.candidates_checked);
}

TEST(ExactSaver, EtaOneReturnsOriginal) {
  Relation inliers = LatticeInliers(3);
  DistanceEvaluator ev(inliers.schema());
  ExactSaver saver(inliers, ev, {1.0, 1});
  // η = 1: self-count satisfies the constraint; zero-cost result.
  ExactResult res = saver.Save(Tuple::Numeric({100, 100}));
  ASSERT_TRUE(res.feasible);
  EXPECT_DOUBLE_EQ(res.cost, 0.0);
}

}  // namespace
}  // namespace disc
