// Bit-identity suite for the columnar fast path: every distance, every
// threshold verdict, every neighbor set, every bound and every save outcome
// must match the scalar reference path EXACTLY (EXPECT_EQ on doubles, not
// EXPECT_NEAR) — the fast path is an implementation detail, never a
// semantics change.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/bounds.h"
#include "core/disc_saver.h"
#include "core/outlier_saving.h"
#include "core/search_distance_cache.h"
#include "distance/columnar.h"
#include "distance/evaluator.h"
#include "index/brute_force_index.h"
#include "index/grid_index.h"
#include "index/index_factory.h"
#include "index/kd_tree.h"
#include "index/kth_neighbor_cache.h"

namespace disc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Relation RandomNumericRelation(std::size_t n, std::size_t dims,
                               std::uint64_t seed) {
  Rng rng(seed);
  Relation r(Schema::Numeric(dims));
  for (std::size_t i = 0; i < n; ++i) {
    Tuple t(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      t[d] = Value(rng.Uniform(-10, 10));
    }
    r.AppendUnchecked(std::move(t));
  }
  return r;
}

Tuple RandomQuery(std::size_t dims, Rng* rng) {
  Tuple q(dims);
  for (std::size_t d = 0; d < dims; ++d) q[d] = Value(rng->Uniform(-12, 12));
  return q;
}

/// Relation exercising the edge values the fast pass must not mishandle:
/// NaN, +-huge magnitudes (their squares overflow to inf), denormals, exact
/// duplicates of the query, and negative zero.
Relation EdgeCaseRelation(std::size_t dims) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double huge = std::numeric_limits<double>::max();
  const double tiny = std::numeric_limits<double>::denorm_min();
  Relation r(Schema::Numeric(dims));
  std::vector<std::vector<double>> rows = {
      std::vector<double>(dims, 0.0),   std::vector<double>(dims, -0.0),
      std::vector<double>(dims, huge),  std::vector<double>(dims, -huge),
      std::vector<double>(dims, tiny),  std::vector<double>(dims, 1.0),
      std::vector<double>(dims, -1.0),
  };
  rows.push_back(std::vector<double>(dims, 0.0));
  rows.back()[0] = nan;  // NaN in one attribute
  rows.push_back(std::vector<double>(dims, nan));  // NaN everywhere
  rows.push_back(std::vector<double>(dims, 0.5));
  rows.back()[dims - 1] = huge;  // huge only in the last (low-variance-ish)
  for (const auto& coords : rows) {
    Tuple t(dims);
    for (std::size_t d = 0; d < dims; ++d) t[d] = Value(coords[d]);
    r.AppendUnchecked(std::move(t));
  }
  return r;
}

DistanceEvaluator ScaledEvaluator(const Schema& schema, LpNorm norm) {
  std::vector<std::unique_ptr<AttributeMetric>> metrics;
  for (std::size_t a = 0; a < schema.arity(); ++a) {
    metrics.push_back(std::make_unique<AbsoluteDifferenceMetric>(
        1.0 + 0.25 * static_cast<double>(a)));
  }
  return DistanceEvaluator(schema, std::move(metrics), norm);
}

AttributeSet RandomSubset(std::size_t dims, Rng* rng) {
  AttributeSet x;
  for (std::size_t a = 0; a < dims; ++a) {
    if (rng->Uniform() < 0.5) x.insert(a);
  }
  return x;
}

// ---------------------------------------------------------------------------
// FlatKernel vs DistanceEvaluator
// ---------------------------------------------------------------------------

class KernelNormTest : public testing::TestWithParam<LpNorm> {};

TEST_P(KernelNormTest, KernelMatchesEvaluatorBitForBit) {
  const std::size_t dims = 6;
  Relation r = RandomNumericRelation(300, dims, 11);
  for (bool scaled : {false, true}) {
    DistanceEvaluator ev = scaled ? ScaledEvaluator(r.schema(), GetParam())
                                  : DistanceEvaluator(r.schema(), GetParam());
    auto view = ColumnarView::Build(r, ev);
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->unit_scales(), !scaled);

    Rng rng(7);
    for (int qi = 0; qi < 10; ++qi) {
      Tuple query = RandomQuery(dims, &rng);
      FlatKernel kernel(*view, query);
      for (std::size_t row = 0; row < r.size(); ++row) {
        double expected = ev.Distance(query, r[row]);
        EXPECT_EQ(kernel.Distance(row), expected);

        for (double threshold :
             {0.0, expected * 0.5, expected, expected * 1.5, 25.0, kInf}) {
          double want = ev.DistanceWithin(query, r[row], threshold);
          double got = kernel.DistanceWithin(row, threshold);
          // Bit-identical including the +inf-on-reject encoding.
          EXPECT_EQ(got, want) << "threshold=" << threshold;
        }

        AttributeSet x = RandomSubset(dims, &rng);
        EXPECT_EQ(kernel.DistanceOn(x, row), ev.DistanceOn(x, query, r[row]));
        double sub = ev.DistanceOn(x, query, r[row]);
        for (double threshold : {0.0, sub * 0.5, sub, sub * 2.0}) {
          EXPECT_EQ(kernel.DistanceOnWithin(x, row, threshold),
                    ev.DistanceOnWithin(x, query, r[row], threshold));
        }
      }
    }
  }
}

TEST_P(KernelNormTest, KernelMatchesEvaluatorOnEdgeValues) {
  const std::size_t dims = 4;
  Relation r = EdgeCaseRelation(dims);
  DistanceEvaluator ev(r.schema(), GetParam());
  auto view = ColumnarView::Build(r, ev);
  ASSERT_NE(view, nullptr);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Tuple> queries;
  for (double v : {0.0, 1.0, std::numeric_limits<double>::max(), nan}) {
    Tuple q(dims);
    for (std::size_t d = 0; d < dims; ++d) q[d] = Value(v);
    queries.push_back(std::move(q));
  }

  for (const Tuple& query : queries) {
    FlatKernel kernel(*view, query);
    for (std::size_t row = 0; row < r.size(); ++row) {
      double expected = ev.Distance(query, r[row]);
      double got = kernel.Distance(row);
      if (std::isnan(expected)) {
        EXPECT_TRUE(std::isnan(got));
      } else {
        EXPECT_EQ(got, expected);
      }
      for (double threshold : {0.0, 1.0, 1e300, kInf}) {
        double want = ev.DistanceWithin(query, r[row], threshold);
        double within = kernel.DistanceWithin(row, threshold);
        // The decision the call sites make is `d <= threshold`; it must
        // agree exactly (NaN totals fail it on both paths).
        EXPECT_EQ(within <= threshold, want <= threshold);
        if (!std::isnan(want)) {
          EXPECT_EQ(within, want);
        }
      }
    }
  }
}

TEST_P(KernelNormTest, ScanOrderPutsHighVarianceFirst) {
  Relation r(Schema::Numeric(3));
  Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    Tuple t(3);
    t[0] = Value(rng.Uniform(0, 1));      // low variance
    t[1] = Value(rng.Uniform(-100, 100));  // high variance
    t[2] = Value(rng.Uniform(-5, 5));      // medium variance
    r.AppendUnchecked(std::move(t));
  }
  DistanceEvaluator ev(r.schema(), GetParam());
  auto view = ColumnarView::Build(r, ev);
  ASSERT_NE(view, nullptr);
  ASSERT_EQ(view->scan_order().size(), 3u);
  EXPECT_EQ(view->scan_order()[0], 1u);
  EXPECT_EQ(view->scan_order()[2], 0u);
}

INSTANTIATE_TEST_SUITE_P(AllNorms, KernelNormTest,
                         testing::Values(LpNorm::kL1, LpNorm::kL2,
                                         LpNorm::kLInf));

TEST(ColumnarViewTest, IneligibleSchemasAndMetrics) {
  // String attribute -> ineligible.
  Schema mixed(std::vector<AttributeDef>{{"num", ValueKind::kNumeric},
                                         {"str", ValueKind::kString}});
  Relation rm(mixed);
  Tuple t(2);
  t[0] = Value(1.0);
  t[1] = Value("abc");
  rm.AppendUnchecked(std::move(t));
  DistanceEvaluator ev_mixed(mixed);
  EXPECT_FALSE(ColumnarView::Eligible(rm, ev_mixed));
  EXPECT_EQ(ColumnarView::Build(rm, ev_mixed), nullptr);

  // Custom (non-abs-diff) metric on a numeric attribute -> ineligible.
  Relation rn = RandomNumericRelation(10, 2, 5);
  std::vector<std::unique_ptr<AttributeMetric>> metrics;
  metrics.push_back(std::make_unique<AbsoluteDifferenceMetric>());
  metrics.push_back(std::make_unique<DiscreteMetric>());
  DistanceEvaluator ev_custom(rn.schema(), std::move(metrics));
  EXPECT_FALSE(ColumnarView::Eligible(rn, ev_custom));
  EXPECT_EQ(ColumnarView::Build(rn, ev_custom), nullptr);
  EXPECT_FALSE(ev_custom.AllScaledAbsoluteDifference());

  // Empty schema -> ineligible.
  Relation empty{Schema::Numeric(0)};
  DistanceEvaluator ev_empty(empty.schema());
  EXPECT_FALSE(ColumnarView::Eligible(empty, ev_empty));

  // Scaled metrics are columnar-eligible but not unit.
  DistanceEvaluator ev_scaled = ScaledEvaluator(rn.schema(), LpNorm::kL2);
  EXPECT_TRUE(ColumnarView::Eligible(rn, ev_scaled));
  EXPECT_TRUE(ev_scaled.AllScaledAbsoluteDifference());
  EXPECT_FALSE(ev_scaled.AllUnitAbsoluteDifference());
}

// ---------------------------------------------------------------------------
// Indexes: fast path vs scalar reference
// ---------------------------------------------------------------------------

TEST(IndexFastPathTest, BruteForceColumnarMatchesScalarBitForBit) {
  for (LpNorm norm : {LpNorm::kL1, LpNorm::kL2, LpNorm::kLInf}) {
    Relation r = RandomNumericRelation(500, 5, 21);
    DistanceEvaluator ev(r.schema(), norm);
    BruteForceIndex fast(r, ev);
    BruteForceIndex scalar(r, ev, /*enable_fast_path=*/false);
    ASSERT_NE(fast.columnar_view(), nullptr);
    ASSERT_EQ(scalar.columnar_view(), nullptr);

    Rng rng(31);
    for (int qi = 0; qi < 25; ++qi) {
      Tuple query = RandomQuery(5, &rng);
      for (double eps : {0.5, 3.0, 9.0}) {
        std::vector<Neighbor> a = fast.RangeQuery(query, eps);
        std::vector<Neighbor> b = scalar.RangeQuery(query, eps);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(a[i].row, b[i].row);
          EXPECT_EQ(a[i].distance, b[i].distance);
        }
        EXPECT_EQ(fast.CountWithin(query, eps), scalar.CountWithin(query, eps));
        EXPECT_EQ(fast.CountWithin(query, eps, 3),
                  scalar.CountWithin(query, eps, 3));
      }
      for (std::size_t k : {std::size_t{1}, std::size_t{7}, std::size_t{600}}) {
        std::vector<Neighbor> a = fast.KNearest(query, k);
        std::vector<Neighbor> b = scalar.KNearest(query, k);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(a[i].row, b[i].row);
          EXPECT_EQ(a[i].distance, b[i].distance);
        }
      }
    }
  }
}

TEST(IndexFastPathTest, BoundedHeapKnnMatchesFullSortSemantics) {
  // Duplicated points force distance ties; the (distance, row) tie-break
  // must pick the lowest rows, exactly like the old full-sort implementation.
  Relation r(Schema::Numeric(2));
  for (int i = 0; i < 30; ++i) {
    Tuple t(2);
    t[0] = Value(static_cast<double>(i % 3));
    t[1] = Value(0.0);
    r.AppendUnchecked(std::move(t));
  }
  DistanceEvaluator ev(r.schema());
  BruteForceIndex fast(r, ev);
  BruteForceIndex scalar(r, ev, /*enable_fast_path=*/false);
  Tuple query(2);
  query[0] = Value(0.0);
  query[1] = Value(0.0);
  for (std::size_t k = 1; k <= 30; ++k) {
    std::vector<Neighbor> a = fast.KNearest(query, k);
    std::vector<Neighbor> b = scalar.KNearest(query, k);
    ASSERT_EQ(a.size(), k);
    ASSERT_EQ(b.size(), k);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(a[i].row, b[i].row);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
  }
  // k=0 and k > n edge cases.
  EXPECT_TRUE(fast.KNearest(query, 0).empty());
  EXPECT_EQ(fast.KNearest(query, 100).size(), 30u);
}

TEST(IndexFastPathTest, KdTreeAndGridMatchBruteForceBitForBit) {
  // With the shared accumulator semantics all three indexes must now agree
  // exactly (not just approximately) on range/count results.
  Relation r = RandomNumericRelation(400, 3, 77);
  DistanceEvaluator ev(r.schema());
  BruteForceIndex brute(r, ev);
  BruteForceIndex brute_scalar(r, ev, /*enable_fast_path=*/false);
  KdTree tree(r);
  GridIndex grid(r, /*cell_size=*/2.0);

  Rng rng(13);
  for (int qi = 0; qi < 25; ++qi) {
    Tuple query = RandomQuery(3, &rng);
    for (double eps : {0.8, 2.0, 6.0}) {
      std::vector<Neighbor> want = brute_scalar.RangeQuery(query, eps);
      for (const NeighborIndex* index :
           {static_cast<const NeighborIndex*>(&brute),
            static_cast<const NeighborIndex*>(&tree),
            static_cast<const NeighborIndex*>(&grid)}) {
        std::vector<Neighbor> got = index->RangeQuery(query, eps);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].row, want[i].row);
          EXPECT_EQ(got[i].distance, want[i].distance);
        }
        EXPECT_EQ(index->CountWithin(query, eps), want.size());
      }
    }
  }
}

TEST(IndexFastPathTest, FactoryFallsBackForNonUnitMetrics) {
  Relation r = RandomNumericRelation(50, 3, 9);
  DistanceEvaluator unit(r.schema());
  DistanceEvaluator scaled = ScaledEvaluator(r.schema(), LpNorm::kL2);

  // Unit metrics on a low-dim numeric relation: grid/kd as before.
  auto idx_unit = MakeNeighborIndex(r, unit, /*epsilon_hint=*/1.0);
  EXPECT_EQ(dynamic_cast<BruteForceIndex*>(idx_unit.get()), nullptr);

  // Non-unit scales: Kd/Grid would silently use the wrong metric — the
  // factory must fall back to BruteForce (whose columnar path handles
  // scales exactly).
  auto idx_scaled = MakeNeighborIndex(r, scaled, /*epsilon_hint=*/1.0);
  auto* brute = dynamic_cast<BruteForceIndex*>(idx_scaled.get());
  ASSERT_NE(brute, nullptr);
  EXPECT_NE(brute->columnar_view(), nullptr);

  // And the fallback really answers with the scaled metric.
  Rng rng(4);
  Tuple query = RandomQuery(3, &rng);
  std::vector<Neighbor> got = idx_scaled->RangeQuery(query, 2.0);
  BruteForceIndex reference(r, scaled, /*enable_fast_path=*/false);
  std::vector<Neighbor> want = reference.RangeQuery(query, 2.0);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].row, want[i].row);
    EXPECT_EQ(got[i].distance, want[i].distance);
  }
}

// ---------------------------------------------------------------------------
// SearchDistanceCache and bounds
// ---------------------------------------------------------------------------

TEST(SearchDistanceCacheTest, MatchesEvaluatorColumnarAndScalarBacked) {
  const std::size_t dims = 5;
  Relation r = RandomNumericRelation(200, dims, 55);
  DistanceEvaluator ev(r.schema());
  auto view = ColumnarView::Build(r, ev);
  ASSERT_NE(view, nullptr);

  Rng rng(8);
  for (int qi = 0; qi < 5; ++qi) {
    Tuple outlier = RandomQuery(dims, &rng);
    SearchDistanceCache with_view(r, ev, outlier, view.get());
    SearchDistanceCache without_view(r, ev, outlier, nullptr);
    EXPECT_TRUE(with_view.columnar());
    EXPECT_FALSE(without_view.columnar());

    for (std::size_t row = 0; row < r.size(); ++row) {
      double expected = ev.Distance(outlier, r[row]);
      EXPECT_EQ(with_view.FullDistance(row), expected);
      EXPECT_EQ(without_view.FullDistance(row), expected);

      AttributeSet x = RandomSubset(dims, &rng);
      double sub = ev.DistanceOn(x, outlier, r[row]);
      EXPECT_EQ(with_view.DistanceOn(x, row), sub);
      EXPECT_EQ(without_view.DistanceOn(x, row), sub);
      for (double threshold : {0.0, sub * 0.5, sub, sub * 2.0}) {
        double want = ev.DistanceOnWithin(x, outlier, r[row], threshold);
        EXPECT_EQ(with_view.DistanceOnWithin(x, row, threshold), want);
        EXPECT_EQ(without_view.DistanceOnWithin(x, row, threshold), want);
      }
    }
  }
}

TEST(SearchDistanceCacheTest, BoundsIdenticalWithAndWithoutCache) {
  const std::size_t dims = 4;
  Relation r = RandomNumericRelation(150, dims, 99);
  DistanceEvaluator ev(r.schema());
  auto index = MakeNeighborIndex(r, ev);
  DistanceConstraint constraint{/*epsilon=*/3.0, /*eta=*/4};
  KthNeighborCache knn_cache(r, *index, constraint.eta);
  BoundsEngine bounds(r, ev, *index, knn_cache, constraint);
  auto view = ColumnarView::Build(r, ev);
  ASSERT_NE(view, nullptr);

  Rng rng(123);
  for (int qi = 0; qi < 8; ++qi) {
    Tuple outlier = RandomQuery(dims, &rng);
    SearchDistanceCache dcache(r, ev, outlier, view.get());
    for (int xi = 0; xi < 16; ++xi) {
      AttributeSet x = RandomSubset(dims, &rng);
      EXPECT_EQ(bounds.LowerBoundForX(outlier, x),
                bounds.LowerBoundForX(outlier, x, nullptr, &dcache));
      auto plain = bounds.UpperBoundForX(outlier, x);
      auto cached = bounds.UpperBoundForX(outlier, x, nullptr, &dcache);
      ASSERT_EQ(plain.has_value(), cached.has_value());
      if (plain.has_value()) {
        EXPECT_EQ(plain->cost, cached->cost);
        EXPECT_EQ(plain->donor_row, cached->donor_row);
        EXPECT_TRUE(plain->adjusted == cached->adjusted);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end saving: fast path vs scalar reference
// ---------------------------------------------------------------------------

void ExpectSameSaveResult(const SaveResult& a, const SaveResult& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.termination, b.termination);
  EXPECT_TRUE(a.adjusted == b.adjusted);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.adjusted_attributes.bits(), b.adjusted_attributes.bits());
  EXPECT_EQ(a.lower_bound, b.lower_bound);
  EXPECT_EQ(a.visited_sets, b.visited_sets);
  EXPECT_EQ(a.pruned_sets, b.pruned_sets);
  EXPECT_EQ(a.kappa_exceeded, b.kappa_exceeded);
}

TEST(SaverFastPathTest, SaveOutcomesIdenticalOnNumericData) {
  const std::size_t dims = 4;
  Relation inliers = RandomNumericRelation(250, dims, 1001);
  DistanceEvaluator ev(inliers.schema());
  DistanceConstraint constraint{/*epsilon=*/2.5, /*eta=*/5};
  DiscSaver fast(inliers, ev, constraint);
  DiscSaver scalar(inliers, ev, constraint, /*enable_fast_path=*/false);

  Rng rng(77);
  for (int i = 0; i < 6; ++i) {
    Tuple outlier(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      outlier[d] = Value(rng.Uniform(-20, 20));
    }
    for (std::size_t kappa : {std::size_t{0}, std::size_t{2}}) {
      SaveOptions options;
      options.kappa = kappa;
      ExpectSameSaveResult(fast.Save(outlier, options),
                           scalar.Save(outlier, options));
    }
  }
}

TEST(SaverFastPathTest, SaveOutcomesIdenticalOnMixedData) {
  // Mixed schema: the columnar view is ineligible, but the per-search cache
  // still engages (scalar-backed) — outcomes must be identical to the fully
  // uncached reference.
  Schema mixed(std::vector<AttributeDef>{{"x", ValueKind::kNumeric},
                                         {"name", ValueKind::kString},
                                         {"y", ValueKind::kNumeric}});
  Relation inliers(mixed);
  Rng rng(5);
  const char* names[] = {"alpha", "beta", "gamma"};
  for (int i = 0; i < 120; ++i) {
    Tuple t(3);
    t[0] = Value(rng.Uniform(0, 4));
    t[1] = Value(names[i % 3]);
    t[2] = Value(rng.Uniform(0, 4));
    inliers.AppendUnchecked(std::move(t));
  }
  DistanceEvaluator ev(mixed);
  DistanceConstraint constraint{/*epsilon=*/2.0, /*eta=*/4};
  DiscSaver fast(inliers, ev, constraint);
  DiscSaver scalar(inliers, ev, constraint, /*enable_fast_path=*/false);

  for (int i = 0; i < 4; ++i) {
    Tuple outlier(3);
    outlier[0] = Value(rng.Uniform(10, 20));
    outlier[1] = Value("delta");
    outlier[2] = Value(rng.Uniform(10, 20));
    ExpectSameSaveResult(fast.Save(outlier), scalar.Save(outlier));
  }
}

TEST(SaverFastPathTest, SaveOutliersPipelineIdentical) {
  Relation data = RandomNumericRelation(200, 3, 2024);
  // Plant a few obvious outliers.
  Rng rng(2025);
  for (int i = 0; i < 5; ++i) {
    Tuple t(3);
    for (std::size_t d = 0; d < 3; ++d) t[d] = Value(rng.Uniform(40, 60));
    data.AppendUnchecked(std::move(t));
  }
  DistanceEvaluator ev(data.schema());
  OutlierSavingOptions options;
  options.constraint = {/*epsilon=*/3.0, /*eta=*/4};

  OutlierSavingOptions scalar_options = options;
  scalar_options.use_columnar_fast_path = false;

  SavedDataset fast = SaveOutliers(data, ev, options);
  SavedDataset scalar = SaveOutliers(data, ev, scalar_options);
  ASSERT_TRUE(fast.status.ok());
  ASSERT_TRUE(scalar.status.ok());
  ASSERT_EQ(fast.outlier_rows, scalar.outlier_rows);
  ASSERT_EQ(fast.records.size(), scalar.records.size());
  for (std::size_t i = 0; i < fast.records.size(); ++i) {
    EXPECT_EQ(fast.records[i].disposition, scalar.records[i].disposition);
    EXPECT_TRUE(fast.records[i].adjusted == scalar.records[i].adjusted);
    EXPECT_EQ(fast.records[i].cost, scalar.records[i].cost);
  }
  ASSERT_EQ(fast.repaired.size(), scalar.repaired.size());
  for (std::size_t i = 0; i < fast.repaired.size(); ++i) {
    EXPECT_TRUE(fast.repaired[i] == scalar.repaired[i]);
  }
}

TEST(ParallelScanTest, PooledBatchScansMatchSequentialBitForBit) {
  // The pooled CollectWithin/CountWithin overloads chunk the row range and
  // merge per-chunk results; the output must be identical element for
  // element to the sequential scan. 20k rows so the parallel path actually
  // engages (it needs n >= 2 * grain = 16384).
  for (LpNorm norm : {LpNorm::kL1, LpNorm::kL2, LpNorm::kLInf}) {
    Relation r = RandomNumericRelation(20000, 4, 61);
    DistanceEvaluator ev(r.schema(), norm);
    auto view = ColumnarView::Build(r, ev);
    ASSERT_NE(view, nullptr);

    WorkStealingPool pool(4);
    Rng rng(67);
    for (int qi = 0; qi < 5; ++qi) {
      Tuple query = RandomQuery(4, &rng);
      FlatKernel kernel(*view, query);
      for (double eps : {0.5, 4.0, 12.0}) {
        std::vector<std::size_t> seq_rows, par_rows;
        std::vector<double> seq_dists, par_dists;
        kernel.CollectWithin(eps, &seq_rows, &seq_dists);
        kernel.CollectWithin(eps, &par_rows, &par_dists, &pool);
        ASSERT_EQ(par_rows.size(), seq_rows.size()) << "eps=" << eps;
        for (std::size_t i = 0; i < seq_rows.size(); ++i) {
          EXPECT_EQ(par_rows[i], seq_rows[i]);
          EXPECT_EQ(par_dists[i], seq_dists[i]);
        }
        EXPECT_EQ(kernel.CountWithin(eps, &pool), kernel.CountWithin(eps));
      }
    }
  }
}

TEST(ParallelScanTest, PooledScansFallBackOnSmallInputsAndSmallPools) {
  // Below the grain threshold, or with a single-thread/null pool, the
  // pooled overloads must take the sequential path and still agree.
  Relation r = RandomNumericRelation(500, 4, 71);
  DistanceEvaluator ev(r.schema(), LpNorm::kL2);
  auto view = ColumnarView::Build(r, ev);
  ASSERT_NE(view, nullptr);

  WorkStealingPool big(4);
  WorkStealingPool single(1);
  Rng rng(73);
  Tuple query = RandomQuery(4, &rng);
  FlatKernel kernel(*view, query);
  for (double eps : {1.0, 6.0}) {
    std::vector<std::size_t> want_rows;
    std::vector<double> want_dists;
    kernel.CollectWithin(eps, &want_rows, &want_dists);
    for (WorkStealingPool* pool :
         {static_cast<WorkStealingPool*>(nullptr), &single, &big}) {
      std::vector<std::size_t> rows;
      std::vector<double> dists;
      kernel.CollectWithin(eps, &rows, &dists, pool);
      EXPECT_EQ(rows, want_rows);
      EXPECT_EQ(dists, want_dists);
      EXPECT_EQ(kernel.CountWithin(eps, pool), want_rows.size());
    }
  }
}

}  // namespace
}  // namespace disc
