#include "clustering/labels.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

TEST(Labels, NumClustersIgnoresNoise) {
  Labels l{0, 0, 1, kNoise, 2, kNoise};
  EXPECT_EQ(NumClusters(l), 3u);
  EXPECT_EQ(NumNoise(l), 2u);
}

TEST(Labels, NumClustersEmpty) {
  Labels l;
  EXPECT_EQ(NumClusters(l), 0u);
  EXPECT_EQ(NumNoise(l), 0u);
}

TEST(Labels, CanonicalizeRenumbersInOrder) {
  Labels l{7, 7, 3, kNoise, 3, 9};
  Labels c = Canonicalize(l);
  EXPECT_EQ(c, (Labels{0, 0, 1, kNoise, 1, 2}));
}

TEST(Labels, CanonicalizeIdempotent) {
  Labels l{0, 1, kNoise, 1};
  EXPECT_EQ(Canonicalize(Canonicalize(l)), Canonicalize(l));
}

TEST(ExtractPoints, ConvertsNumericRelation) {
  Relation r(Schema::Numeric(2));
  r.AppendUnchecked(Tuple::Numeric({1, 2}));
  r.AppendUnchecked(Tuple::Numeric({3, 4}));
  auto points = ExtractPoints(r);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[1][0], 3.0);
}

TEST(SquaredEuclidean, KnownValue) {
  EXPECT_DOUBLE_EQ(SquaredEuclidean({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredEuclidean({1, 1}, {1, 1}), 0.0);
}

}  // namespace
}  // namespace disc
