#include "matching/record_matching.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/error_injection.h"

namespace disc {
namespace {

Relation SmallStrings() {
  Relation r(Schema::StringNamed({"name", "city"}));
  r.AppendUnchecked(Tuple{Value("golden bistro"), Value("boston")});
  r.AppendUnchecked(Tuple{Value("golden bistro."), Value("boston")});
  r.AppendUnchecked(Tuple{Value("jade palace"), Value("chicago")});
  return r;
}

TEST(MatchRecords, FindsNearDuplicatePair) {
  Relation r = SmallStrings();
  std::vector<MatchPair> matches = MatchRecords(r);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], MatchPair(0, 1));
}

TEST(MatchRecords, NoFalseMatchesAcrossEntities) {
  Relation r = SmallStrings();
  std::vector<MatchPair> matches = MatchRecords(r);
  for (const MatchPair& p : matches) {
    EXPECT_FALSE(p.first == 2 || p.second == 2);
  }
}

TEST(MatchRecords, ThresholdControlsStrictness) {
  Relation r = SmallStrings();
  MatchingOptions loose;
  loose.similarity_threshold = 0.1;
  MatchingOptions strict;
  strict.similarity_threshold = 0.99;
  EXPECT_GE(MatchRecords(r, loose).size(), MatchRecords(r, strict).size());
}

TEST(MatchRecords, AttributeSubset) {
  Relation r = SmallStrings();
  MatchingOptions opts;
  opts.attributes = {1};  // city only
  std::vector<MatchPair> matches = MatchRecords(r, opts);
  // Rows 0 and 1 share "boston" exactly.
  bool found01 = false;
  for (const MatchPair& p : matches) {
    if (p == MatchPair(0, 1)) found01 = true;
  }
  EXPECT_TRUE(found01);
}

TEST(ScoreMatching, PerfectPrediction) {
  std::vector<MatchPair> truth{{0, 1}, {2, 3}};
  MatchingScores s = ScoreMatching(truth, truth);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(ScoreMatching, PartialOverlap) {
  std::vector<MatchPair> truth{{0, 1}, {2, 3}};
  std::vector<MatchPair> pred{{0, 1}, {4, 5}};
  MatchingScores s = ScoreMatching(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, 0.5);
}

TEST(ScoreMatching, EmptyConventions) {
  MatchingScores both = ScoreMatching({}, {});
  EXPECT_DOUBLE_EQ(both.precision, 1.0);
  EXPECT_DOUBLE_EQ(both.recall, 1.0);
  MatchingScores no_pred = ScoreMatching({}, {{0, 1}});
  EXPECT_DOUBLE_EQ(no_pred.recall, 0.0);
}

TEST(PairsFromEntityIds, BuildsAllPairs) {
  std::vector<int> ids{7, 7, 8, 7};
  std::vector<MatchPair> pairs = PairsFromEntityIds(ids);
  // Entity 7 has rows {0, 1, 3} → 3 pairs; entity 8 has one row → 0 pairs.
  ASSERT_EQ(pairs.size(), 3u);
}

TEST(Matching, TyposBreakMatchingAndRepairRestoresIt) {
  // End-to-end mini version of Figure 8's story.
  RestaurantSpec spec;
  spec.entities = 40;
  spec.tuples = 60;
  spec.seed = 5;
  LabeledRelation data = GenerateRestaurant(spec);
  std::vector<MatchPair> truth = PairsFromEntityIds(data.labels);

  MatchingScores clean_scores =
      ScoreMatching(MatchRecords(data.data), truth);

  ErrorInjectionSpec err;
  err.tuple_rate = 0.3;
  err.min_attributes = 1;
  err.max_attributes = 2;
  err.seed = 6;
  InjectionResult injected = InjectStringTypos(data.data, err);
  MatchingScores dirty_scores =
      ScoreMatching(MatchRecords(injected.dirty), truth);

  // Typos can only hurt (or tie) matching accuracy.
  EXPECT_LE(dirty_scores.f1, clean_scores.f1 + 1e-9);
}

}  // namespace
}  // namespace disc
