#include "common/value.h"

#include <gtest/gtest.h>

#include <set>

namespace disc {
namespace {

TEST(Value, DefaultIsNumericZero) {
  Value v;
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.num(), 0.0);
  EXPECT_EQ(v.kind(), ValueKind::kNumeric);
}

TEST(Value, NumericRoundTrip) {
  Value v(3.25);
  EXPECT_TRUE(v.is_numeric());
  EXPECT_FALSE(v.is_string());
  EXPECT_DOUBLE_EQ(v.num(), 3.25);
}

TEST(Value, IntConstructorIsNumeric) {
  Value v(7);
  EXPECT_TRUE(v.is_numeric());
  EXPECT_DOUBLE_EQ(v.num(), 7.0);
}

TEST(Value, StringRoundTrip) {
  Value v(std::string("hello"));
  EXPECT_TRUE(v.is_string());
  EXPECT_FALSE(v.is_numeric());
  EXPECT_EQ(v.str(), "hello");
}

TEST(Value, CStringConstructorIsString) {
  Value v("abc");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.str(), "abc");
}

TEST(Value, SettersSwitchKind) {
  Value v(1.0);
  v.set_str("s");
  EXPECT_TRUE(v.is_string());
  v.set_num(2.0);
  EXPECT_TRUE(v.is_numeric());
  EXPECT_DOUBLE_EQ(v.num(), 2.0);
}

TEST(Value, EqualityNumeric) {
  EXPECT_EQ(Value(1.5), Value(1.5));
  EXPECT_NE(Value(1.5), Value(1.6));
}

TEST(Value, EqualityString) {
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
}

TEST(Value, NumericNeverEqualsString) {
  EXPECT_NE(Value(0.0), Value("0"));
}

TEST(Value, OrderingWorksInSets) {
  std::set<Value> s;
  s.insert(Value(2.0));
  s.insert(Value(1.0));
  s.insert(Value("b"));
  s.insert(Value("a"));
  s.insert(Value(1.0));  // duplicate
  EXPECT_EQ(s.size(), 4u);
}

TEST(Value, ToStringIntegerHasNoDecimals) {
  EXPECT_EQ(Value(42.0).ToString(), "42");
  EXPECT_EQ(Value(-3.0).ToString(), "-3");
}

TEST(Value, ToStringFractional) {
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(Value, ToStringString) {
  EXPECT_EQ(Value("xyz").ToString(), "xyz");
}

}  // namespace
}  // namespace disc
