#include "distance/ngram.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

TEST(Ngram, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(NgramSimilarity("hello", "hello"), 1.0);
  EXPECT_DOUBLE_EQ(NgramSimilarity("", ""), 1.0);
}

TEST(Ngram, CompletelyDifferentIsLow) {
  EXPECT_LT(NgramSimilarity("aaaa", "zzzz"), 0.2);
}

TEST(Ngram, SimilarStringsScoreHigh) {
  EXPECT_GT(NgramSimilarity("restaurant", "restaurnat"), 0.5);
}

TEST(Ngram, Symmetry) {
  EXPECT_DOUBLE_EQ(NgramSimilarity("abcd", "abxd"),
                   NgramSimilarity("abxd", "abcd"));
}

TEST(Ngram, RangeZeroOne) {
  const char* words[] = {"", "a", "ab", "hello world", "xyz"};
  for (const char* a : words) {
    for (const char* b : words) {
      double s = NgramSimilarity(a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(Ngram, SingleTypoStaysAboveThreshold) {
  // The matching rule of §4.1.3 uses threshold 0.7; a one-character typo in
  // a reasonably long string should survive it.
  EXPECT_GT(NgramSimilarity("golden bistro 42", "golden bistr0 42"), 0.7);
}

TEST(Ngram, ShortStringsSensitive) {
  EXPECT_LT(NgramSimilarity("ab", "cd"), 0.3);
}

TEST(Ngram, TrigramOption) {
  double bi = NgramSimilarity("abcdef", "abcxef", 2);
  double tri = NgramSimilarity("abcdef", "abcxef", 3);
  EXPECT_GT(bi, 0.0);
  EXPECT_GT(tri, 0.0);
  EXPECT_NE(bi, tri);
}

TEST(NgramDistance, Complement) {
  double s = NgramSimilarity("abc", "abd");
  EXPECT_DOUBLE_EQ(NgramDistance("abc", "abd"), 1.0 - s);
}

}  // namespace
}  // namespace disc
