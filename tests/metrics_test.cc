// MetricsRegistry, Counter/Gauge/Histogram primitives, the global-registry
// attachment and both expositions (DESIGN.md §8). The concurrency tests
// double as the TSan regression for the sharded relaxed-atomic counters: the
// TSan CI job runs this binary alongside the parallel-save suite.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace disc {
namespace {

TEST(Counter, AddAccumulatesAcrossShards) {
  Counter c("disc_test_events_total");
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  EXPECT_EQ(c.name(), "disc_test_events_total");
}

TEST(Counter, ConcurrentAddsAreExactAfterJoin) {
  // The TSan regression: many threads on one counter, relaxed adds into
  // per-thread shards, acquire-summed after the joins synchronize.
  Counter c("disc_test_concurrent_total");
  const std::size_t kThreads = 8;
  const std::size_t kAddsPerThread = 20000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::size_t i = 0; i < kAddsPerThread; ++i) c.Add();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.Value(), kThreads * kAddsPerThread);
}

TEST(Gauge, SetAndAdd) {
  Gauge g("disc_test_depth");
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
}

TEST(Histogram, CumulativeBucketsAndSum) {
  Histogram h("disc_test_seconds", {0.1, 1.0, 10.0});
  h.Observe(0.05);   // <= 0.1
  h.Observe(0.5);    // <= 1.0
  h.Observe(0.7);    // <= 1.0
  h.Observe(5.0);    // <= 10.0
  h.Observe(100.0);  // +Inf only
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.05 + 0.5 + 0.7 + 5.0 + 100.0);
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 1u);  // le 0.1
  EXPECT_EQ(snap.counts[1], 3u);  // le 1.0 (cumulative)
  EXPECT_EQ(snap.counts[2], 4u);  // le 10.0; +Inf remainder = count - 4
}

TEST(Histogram, ConcurrentObservationsAreExactAfterJoin) {
  Histogram h("disc_test_concurrent_seconds", {1.0});
  const std::size_t kThreads = 8;
  const std::size_t kObsPerThread = 5000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (std::size_t i = 0; i < kObsPerThread; ++i) h.Observe(0.5);
    });
  }
  for (std::thread& w : workers) w.join();
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, kThreads * kObsPerThread);
  EXPECT_EQ(snap.counts[0], kThreads * kObsPerThread);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 * kThreads * kObsPerThread);
}

TEST(MetricsRegistry, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("disc_a_total");
  Counter* b = registry.GetCounter("disc_a_total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  Gauge* g = registry.GetGauge("disc_g");
  EXPECT_EQ(g, registry.GetGauge("disc_g"));
  Histogram* h = registry.GetHistogram("disc_h_seconds", {1.0});
  EXPECT_EQ(h, registry.GetHistogram("disc_h_seconds", {2.0}));
}

TEST(MetricsRegistry, TypeMismatchYieldsNullNotCrash) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("disc_name"), nullptr);
  EXPECT_EQ(registry.GetGauge("disc_name"), nullptr);
  EXPECT_EQ(registry.GetHistogram("disc_name", {1.0}), nullptr);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndRecording) {
  // Races registration (mutex-guarded) against recording (lock-free) —
  // the mixed workload the TSan job checks.
  MetricsRegistry registry;
  const std::size_t kThreads = 8;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      const std::string name =
          "disc_shared_" + std::to_string(t % 2) + "_total";
      for (std::size_t i = 0; i < 2000; ++i) {
        registry.GetCounter(name)->Add();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  std::uint64_t total = registry.GetCounter("disc_shared_0_total")->Value() +
                        registry.GetCounter("disc_shared_1_total")->Value();
  EXPECT_EQ(total, kThreads * 2000u);
}

TEST(MetricsRegistry, JsonExpositionIsDeterministicAndSorted) {
  // Identical recorded work must render byte-identical JSON, regardless of
  // registration order (std::map iteration is name-sorted).
  MetricsRegistry a;
  a.GetCounter("disc_zz_total")->Add(2);
  a.GetCounter("disc_aa_total")->Add(1);
  a.GetGauge("disc_depth")->Set(3);
  a.GetHistogram("disc_wall_seconds", {1.0, 10.0})->Observe(0.5);

  MetricsRegistry b;
  b.GetHistogram("disc_wall_seconds", {1.0, 10.0})->Observe(0.5);
  b.GetGauge("disc_depth")->Set(3);
  b.GetCounter("disc_aa_total")->Add(1);
  b.GetCounter("disc_zz_total")->Add(2);

  EXPECT_EQ(a.ToJson(), b.ToJson());
  const std::string json = a.ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"disc_aa_total\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"disc_zz_total\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"disc_depth\":3"), std::string::npos) << json;
  EXPECT_LT(json.find("disc_aa_total"), json.find("disc_zz_total"));
}

TEST(MetricsRegistry, PrometheusExposition) {
  MetricsRegistry registry;
  registry.GetCounter("disc_events_total")->Add(3);
  registry.GetGauge("disc_depth")->Set(-2);
  Histogram* h = registry.GetHistogram("disc_wall_seconds", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(50.0);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE disc_events_total counter\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("disc_events_total 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE disc_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("disc_depth -2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("disc_wall_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("disc_wall_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("disc_wall_seconds_count 2\n"), std::string::npos);
}

TEST(PrometheusEscaping, HelpEscapesBackslashAndNewline) {
  EXPECT_EQ(PromEscapeHelp("plain help"), "plain help");
  EXPECT_EQ(PromEscapeHelp("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeHelp("line1\nline2"), "line1\\nline2");
  // Help text keeps double quotes verbatim — only label values escape them.
  EXPECT_EQ(PromEscapeHelp("say \"hi\""), "say \"hi\"");
}

TEST(PrometheusEscaping, LabelValueAdditionallyEscapesQuotes) {
  EXPECT_EQ(PromEscapeLabelValue("0.1"), "0.1");
  EXPECT_EQ(PromEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeLabelValue("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(PromEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  // Backslash escapes first: an input already containing \" must not be
  // double-processed into \\\" -> each source char handled exactly once.
  EXPECT_EQ(PromEscapeLabelValue("\\\""), "\\\\\\\"");
}

TEST(PrometheusEscaping, HelpLinesRenderEscapedInExposition) {
  MetricsRegistry registry;
  registry.GetCounter("disc_tricky_total", "first \"line\"\nsecond\\line")
      ->Add(1);
  registry.GetGauge("disc_plain", "a plain gauge")->Set(4);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# HELP disc_tricky_total first \"line\"\\nsecond"
                      "\\\\line\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP disc_plain a plain gauge\n"), std::string::npos)
      << text;
  // The HELP line precedes the TYPE line of the same metric (text-format
  // convention) and the raw newline never leaks into the exposition.
  EXPECT_LT(text.find("# HELP disc_tricky_total"),
            text.find("# TYPE disc_tricky_total"));
  EXPECT_EQ(text.find("first \"line\"\nsecond"), std::string::npos) << text;
}

TEST(PrometheusEscaping, FirstNonEmptyHelpWinsAndEmptyHelpOmitsLine) {
  MetricsRegistry registry;
  registry.GetCounter("disc_nohelp_total")->Add(1);
  registry.GetCounter("disc_help_total", "original help")->Add(1);
  // Later registrations never overwrite the recorded help.
  registry.GetCounter("disc_help_total", "revised help");
  const std::string text = registry.ToPrometheusText();
  EXPECT_EQ(text.find("# HELP disc_nohelp_total"), std::string::npos) << text;
  EXPECT_NE(text.find("# HELP disc_help_total original help\n"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("revised help"), std::string::npos) << text;
}

TEST(GlobalMetricsAttachment, IndexHandlesResolveOnlyWhileAttached) {
  // Detached (the default): every handle stays null and recording sites
  // degrade to guarded no-ops — the zero-overhead contract.
  ASSERT_EQ(GlobalMetrics(), nullptr);
  IndexQueryMetrics off = IndexQueryMetrics::For("kd_tree");
  EXPECT_EQ(off.range_queries, nullptr);
  EXPECT_EQ(off.count_queries, nullptr);
  EXPECT_EQ(off.knn_queries, nullptr);

  MetricsRegistry registry;
  AttachGlobalMetrics(&registry);
  IndexQueryMetrics on = IndexQueryMetrics::For("kd_tree");
  AttachGlobalMetrics(nullptr);

  ASSERT_NE(on.range_queries, nullptr);
  ASSERT_NE(on.count_queries, nullptr);
  ASSERT_NE(on.knn_queries, nullptr);
  on.range_queries->Add(2);
  EXPECT_EQ(
      registry.GetCounter("disc_index_kd_tree_range_queries_total")->Value(),
      2u);
  // Handles remain valid after detach — they point into the registry, whose
  // lifetime the caller owns.
  on.knn_queries->Add();
  EXPECT_EQ(
      registry.GetCounter("disc_index_kd_tree_knn_queries_total")->Value(),
      1u);
}

}  // namespace
}  // namespace disc
