#!/usr/bin/env python3
"""Reconstruct and summarize span trees from a disc trace export.

Reads the JSONL written by `disc_cli --trace` (one span per line, linked by
trace_id/span_id/parent_id — see schemas/trace.schema.json and DESIGN.md
§13), rebuilds the per-outlier span trees, and prints:

  * per-phase wall-time aggregates (index_query, bounds_scan, dcache_fill,
    estimate, verdict) with counts and share of total search wall time,
  * tree integrity (span counts by kind, orphaned spans, incomplete trees),
  * the critical path of the slowest save — the chain of heaviest child
    spans from its save_outlier root down.

Standard library only. A torn final line (the process died mid-write) is
tolerated and reported; a torn line anywhere else is an error. With --json
the same summary is emitted as one JSON object for scripted cross-checks
(CI compares its stats totals against the disc_save_* counters).

Usage:
  analyze_trace.py TRACE.jsonl [--json]
"""

import json
import sys

PHASES = ("index_query", "bounds_scan", "dcache_fill", "estimate", "verdict")


def load_spans(path):
    """Parses the JSONL export; tolerates exactly one torn final line."""
    spans = []
    torn = 0
    with open(path) as f:
        lines = [(n, l) for n, l in enumerate(f.read().splitlines(), 1)
                 if l.strip()]
    for i, (lineno, line) in enumerate(lines):
        try:
            spans.append(json.loads(line))
        except json.JSONDecodeError as e:
            if i == len(lines) - 1:
                torn = 1  # crash-truncated tail: report, don't fail
            else:
                raise SystemExit(f"{path}:{lineno}: torn line mid-file: {e}")
    return spans, torn


def analyze(spans):
    by_kind = {}
    for s in spans:
        by_kind.setdefault(s["span"], []).append(s)

    # Span trees: index by (trace_id, span_id), link children by parent_id.
    # Spans with trace_id 0 (the split phase, untraced records) are flat.
    index = {}
    for s in spans:
        if s.get("trace_id"):
            index[(s["trace_id"], s["span_id"])] = s
    children = {}
    orphans = []
    for s in spans:
        if not s.get("trace_id") or not s.get("parent_id"):
            continue
        key = (s["trace_id"], s["parent_id"])
        if key in index:
            children.setdefault(key, []).append(s)
        else:
            orphans.append(s)

    phases = {
        name: {
            "wall_ns": sum(s["dur_ns"] for s in by_kind.get(name, [])),
            "count": len(by_kind.get(name, [])),
        }
        for name in PHASES
    }
    return {
        "spans": len(spans),
        "traces": len({s["trace_id"] for s in spans if s.get("trace_id")}),
        "by_kind": {k: len(v) for k, v in sorted(by_kind.items())},
        "orphans": len(orphans),
        "phases": phases,
        "search_wall_ns": sum(s["dur_ns"] for s in by_kind.get("search", [])),
        "stats_totals": {
            key: sum(s.get(key, 0) for s in by_kind.get("save_outlier", []))
            for key in ("nodes_expanded", "index_queries")
        },
    }, index, children, by_kind


def critical_path(root, index, children):
    """The chain of heaviest children from `root` down to a leaf."""
    path = [root]
    node = root
    while True:
        kids = children.get((node["trace_id"], node["span_id"]), [])
        if not kids:
            return path
        node = max(kids, key=lambda s: s["dur_ns"])
        path.append(node)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    spans, torn = load_spans(args[0])
    summary, index, children, by_kind = analyze(spans)
    summary["torn_final_line"] = torn

    if "--json" in argv:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    print(f"{summary['spans']} spans in {summary['traces']} traces "
          f"({summary['orphans']} orphaned)"
          + (" — final line torn, ignored" if torn else ""))
    print("span counts:", ", ".join(f"{k}={v}"
                                    for k, v in summary["by_kind"].items()))

    total = summary["search_wall_ns"] or 1
    print("\nphase aggregates (share of total search wall time):")
    for name in PHASES:
        p = summary["phases"][name]
        print(f"  {name:<12} {p['wall_ns'] / 1e6:10.3f} ms "
              f"x{p['count']:<6} {100.0 * p['wall_ns'] / total:5.1f}%")

    roots = by_kind.get("save_outlier", [])
    traced = [r for r in roots if r.get("trace_id")]
    if traced:
        slowest = max(traced, key=lambda s: s["dur_ns"])
        print(f"\ncritical path of slowest save "
              f"(row {slowest.get('row', '?')}, "
              f"{slowest['dur_ns'] / 1e6:.3f} ms):")
        for depth, node in enumerate(critical_path(slowest, index, children)):
            extra = ""
            if "termination" in node:
                extra = f" [{node['termination']}]"
            if "chunk" in node:
                extra = f" [chunk {node['chunk']}, {node.get('rows', 0)} rows]"
            print(f"  {'  ' * depth}{node['span']:<12} "
                  f"{node['dur_ns'] / 1e6:9.3f} ms{extra}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
