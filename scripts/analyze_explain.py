#!/usr/bin/env python3
"""Summarize and cross-check a disc explain export.

Reads the JSONL written by `disc_cli --explain` (one decision log per saved
outlier — see schemas/explain.schema.json and DESIGN.md §14) and prints:

  * the prune-reason breakdown: how every visited node was dispatched
    (expand, prune_lb, prune_budget, infeasible, incumbent_update,
    memo_hit) plus revert_refine post-pass restores,
  * bound-efficacy aggregates — how tight the Prop-3 lower and Prop-5
    upper bounds were: max lb/opt and first ub/opt ratios per feasible
    search, and the ub-lb gap distribution over fully bounded nodes,
  * incumbent convergence: first-feasible depth and adoption counts,
  * per-log consistency: the event stream must re-derive the search's own
    SearchStats counters (prune_lb + infeasible events == lb_prunes;
    non-memo node events == visited_sets on the DISC path, since a memo_hit
    revisits a set the memo already counted; revert_refine events ==
    revert_refines) whenever no events were dropped.

With --metrics METRICS.json (the `disc_cli --metrics-json` snapshot of the
same run) the file totals are also cross-checked against the batch
counters: disc_save_lb_prunes_total, disc_save_visited_sets_total,
disc_save_revert_refines_total, disc_save_nodes_expanded_total and the
disc_explain_* series. Any violated identity is an error (exit 1).

Standard library only. A torn final line (the process died mid-write) is
tolerated and reported; a torn line anywhere else is an error. With --json
the same summary is emitted as one JSON object for scripted checks.

Usage:
  analyze_explain.py EXPLAIN.jsonl [--json] [--metrics METRICS.json]
"""

import json
import sys

ACTIONS = ("expand", "prune_lb", "prune_budget", "infeasible",
           "incumbent_update", "memo_hit", "revert_refine")

# Actions that visit a *new* attribute set on the DISC path: revert_refine
# is a post-pass event, seed incumbents are injected before the search, and
# a memo_hit revisits a set the visited memo already counted.
NODE_ACTIONS = frozenset(ACTIONS) - {"revert_refine", "memo_hit"}


def load_logs(path):
    """Parses the JSONL export; tolerates exactly one torn final line."""
    logs = []
    torn = 0
    with open(path) as f:
        lines = [(n, l) for n, l in enumerate(f.read().splitlines(), 1)
                 if l.strip()]
    for i, (lineno, line) in enumerate(lines):
        try:
            logs.append(json.loads(line))
        except json.JSONDecodeError as e:
            if i == len(lines) - 1:
                torn = 1  # crash-truncated tail: report, don't fail
            else:
                raise SystemExit(f"{path}:{lineno}: torn line mid-file: {e}")
    return logs, torn


def check_log_identities(log, errors):
    """The event stream must re-derive the log's own stats counters."""
    if log.get("dropped_events", 0) > 0:
        return  # capped stream: counts are lower bounds, nothing to assert
    events = log["events"]
    counts = {a: 0 for a in ACTIONS}
    node_events = 0
    for e in events:
        counts[e["action"]] += 1
        if e["action"] in NODE_ACTIONS and not e.get("seed"):
            node_events += 1
    where = f"ordinal {log['ordinal']}"
    lb_like = counts["prune_lb"] + counts["infeasible"]
    if log["algo"] == "disc":
        if lb_like != log["lb_prunes"]:
            errors.append(f"{where}: prune_lb+infeasible events {lb_like} "
                          f"!= lb_prunes {log['lb_prunes']}")
        if node_events != log["visited_sets"]:
            errors.append(f"{where}: non-memo node events {node_events} "
                          f"!= visited_sets {log['visited_sets']}")
    if counts["revert_refine"] != log["revert_refines"]:
        errors.append(f"{where}: revert_refine events "
                      f"{counts['revert_refine']} "
                      f"!= revert_refines {log['revert_refines']}")


def analyze(logs):
    actions = {a: 0 for a in ACTIONS}
    gap_events = 0
    gap_sum = 0.0
    gap_min = None
    lb_ratios = []
    ub_ratios = []
    first_depths = []
    terminations = {}
    errors = []
    totals = {k: 0 for k in ("visited_sets", "lb_prunes", "nodes_expanded",
                             "revert_refines", "abandoned_scans",
                             "dropped_events", "events")}
    for log in logs:
        terminations[log["termination"]] = (
            terminations.get(log["termination"], 0) + 1)
        for key in totals:
            totals[key] += (len(log["events"]) if key == "events"
                            else log.get(key, 0))
        for e in log["events"]:
            actions[e["action"]] += 1
            if "gap" in e:
                gap_events += 1
                gap_sum += e["gap"]
                gap_min = e["gap"] if gap_min is None else min(gap_min,
                                                               e["gap"])
        summary = log["summary"]
        if "max_lb_over_cost" in summary:
            lb_ratios.append(summary["max_lb_over_cost"])
        if "first_ub_over_cost" in summary:
            ub_ratios.append(summary["first_ub_over_cost"])
        if summary["first_feasible_depth"] >= 0:
            first_depths.append(summary["first_feasible_depth"])
        check_log_identities(log, errors)

    def mean(xs):
        return sum(xs) / len(xs) if xs else None

    return {
        "searches": len(logs),
        "feasible": sum(1 for log in logs if log["feasible"]),
        "by_algo": {a: sum(1 for log in logs if log["algo"] == a)
                    for a in ("disc", "exact")},
        "terminations": dict(sorted(terminations.items())),
        "actions": actions,
        "totals": totals,
        "bound_efficacy": {
            "mean_max_lb_over_cost": mean(lb_ratios),
            "mean_first_ub_over_cost": mean(ub_ratios),
            "gap_events": gap_events,
            "mean_gap": gap_sum / gap_events if gap_events else None,
            "min_gap": gap_min,
        },
        "incumbents": {
            "mean_first_feasible_depth": mean(first_depths),
            "updates": actions["incumbent_update"],
        },
        "identity_errors": errors,
    }


def cross_check_metrics(summary, metrics_path, errors):
    """File totals vs the batch counters of the same run."""
    with open(metrics_path) as f:
        counters = json.load(f)["counters"]

    def expect(name, want):
        got = counters.get(name, 0)
        if got != want:
            errors.append(f"{name}: metrics {got} != explain file {want}")

    t = summary["totals"]
    expect("disc_save_lb_prunes_total", t["lb_prunes"])
    expect("disc_save_visited_sets_total", t["visited_sets"])
    expect("disc_save_nodes_expanded_total", t["nodes_expanded"])
    expect("disc_save_revert_refines_total", t["revert_refines"])
    expect("disc_explain_searches_total", summary["searches"])
    expect("disc_explain_events_total", t["events"])
    for action, n in summary["actions"].items():
        if n > 0:
            expect(f"disc_explain_action_{action}_total", n)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    metrics_path = None
    if "--metrics" in argv:
        i = argv.index("--metrics")
        if i + 1 >= len(argv):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        metrics_path = argv[i + 1]
        args.remove(metrics_path)
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    logs, torn = load_logs(args[0])
    summary = analyze(logs)
    summary["torn_final_line"] = torn
    if metrics_path is not None:
        if torn:
            raise SystemExit("--metrics cross-check requires an untorn file")
        cross_check_metrics(summary, metrics_path,
                            summary["identity_errors"])

    if "--json" in argv:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 1 if summary["identity_errors"] else 0

    print(f"{summary['searches']} searches "
          f"({summary['feasible']} feasible; "
          f"disc {summary['by_algo']['disc']}, "
          f"exact {summary['by_algo']['exact']})"
          + (" — final line torn, ignored" if torn else ""))
    print("terminations:", ", ".join(
        f"{k}={v}" for k, v in summary["terminations"].items()))

    total_nodes = sum(summary["actions"][a] for a in ACTIONS
                      if a != "revert_refine") or 1
    print("\ndecision breakdown (share of recorded node events):")
    for action in ACTIONS:
        n = summary["actions"][action]
        share = ("" if action == "revert_refine"
                 else f" {100.0 * n / total_nodes:5.1f}%")
        print(f"  {action:<17} {n:>8}{share}")

    be = summary["bound_efficacy"]
    print("\nbound efficacy:")
    if be["mean_max_lb_over_cost"] is not None:
        print(f"  mean max lb/opt    {be['mean_max_lb_over_cost']:.4f}")
    if be["mean_first_ub_over_cost"] is not None:
        print(f"  mean first ub/opt  {be['mean_first_ub_over_cost']:.4f}")
    if be["gap_events"]:
        print(f"  ub-lb gap          {be['gap_events']} events, "
              f"min {be['min_gap']:.4f}, mean {be['mean_gap']:.4f}")
    inc = summary["incumbents"]
    if inc["mean_first_feasible_depth"] is not None:
        print(f"  first feasible at mean depth "
              f"{inc['mean_first_feasible_depth']:.2f} "
              f"({inc['updates']} incumbent updates)")
    if summary["totals"]["dropped_events"]:
        print(f"\n{summary['totals']['dropped_events']} events dropped by "
              f"the per-search cap — per-log identities skipped there")

    if summary["identity_errors"]:
        print("\nIDENTITY VIOLATIONS:", file=sys.stderr)
        for e in summary["identity_errors"]:
            print(f"  {e}", file=sys.stderr)
        return 1
    print("\nall per-log identities hold"
          + (" and metrics cross-check passed" if metrics_path else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
