#!/usr/bin/env python3
"""Compare fresh BENCH_*.json artifacts against checked-in baselines.

Stdlib-only perf-regression gate for the CI perf-smoke job (see
bench/baselines/README.md for the baseline-update workflow). Benches write
their artifacts to bench/out/ by default ($DISC_BENCH_OUT overrides; CI
uses build/bench/out) — point --fresh at that directory. For every
baseline file the same-named fresh artifact must exist and:

  1. `schema_version` must match the baseline exactly (a schema bump
     requires a deliberate baseline refresh in the same PR).
  2. `deterministic`, where present, must be true in the fresh run.
  3. Every `search_stats` block (the deterministic work counters — any
     depth, `wall_nanos` excluded) must match the baseline exactly.
     Work-counter drift means the algorithm did different work, which is
     a WARN by default (legitimate algorithmic changes move these; the
     PR must refresh baselines) and a FAIL under --strict-work.
  4. Throughput must not regress by more than --tolerance, compared only
     when both files record the same `hardware_threads` — timings from
     different machine shapes are incomparable, so a mismatch skips the
     check with a WARN instead of producing a bogus verdict.
  5. The parallel-save thread sweep must scale: for each measured thread
     count, speedup >= --efficiency-floor * min(threads, hardware_threads).
     Checked on the fresh artifact alone (no baseline needed), and only
     when the fresh machine actually has >1 hardware thread.

Exit status: 0 when all checks pass (warnings allowed), 1 otherwise.
"""

import argparse
import json
import sys
from pathlib import Path

# Timing fields inside search_stats blocks; everything else is a
# deterministic work counter and must be bit-identical run-over-run.
TIMING_KEYS = {"wall_nanos"}


def collect_search_stats(node, path=""):
    """Yields (json_path, stats_dict) for every search_stats block."""
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            child = f"{path}.{key}" if path else key
            if key == "search_stats" and isinstance(value, dict):
                yield child, value
            else:
                yield from collect_search_stats(value, child)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from collect_search_stats(value, f"{path}[{i}]")


class Report:
    def __init__(self):
        self.failures = []
        self.warnings = []

    def fail(self, msg):
        self.failures.append(msg)
        print(f"FAIL: {msg}")

    def warn(self, msg):
        self.warnings.append(msg)
        print(f"WARN: {msg}")

    def ok(self, msg):
        print(f"  ok: {msg}")


def check_work_counters(name, fresh, base, strict, report):
    fresh_stats = dict(collect_search_stats(fresh))
    base_stats = dict(collect_search_stats(base))
    drift = []
    for path in sorted(set(fresh_stats) | set(base_stats)):
        if path not in fresh_stats:
            drift.append(f"{path} missing from fresh artifact")
            continue
        if path not in base_stats:
            drift.append(f"{path} missing from baseline")
            continue
        for key in sorted(set(fresh_stats[path]) | set(base_stats[path])):
            if key in TIMING_KEYS:
                continue
            got = fresh_stats[path].get(key)
            want = base_stats[path].get(key)
            if got != want:
                drift.append(f"{path}.{key}: {want} -> {got}")
    if not drift:
        report.ok(f"{name}: work counters match baseline exactly")
        return
    msg = (f"{name}: deterministic work counters drifted from baseline "
           f"(algorithm did different work — refresh bench/baselines/ if "
           f"intended): " + "; ".join(drift))
    if strict:
        report.fail(msg)
    else:
        report.warn(msg)


def comparable_hardware(name, fresh, base, report):
    """True when throughput numbers from the two files are comparable."""
    fresh_hw = fresh.get("hardware_threads")
    base_hw = base.get("hardware_threads")
    if fresh_hw is None or base_hw is None:
        report.warn(f"{name}: no hardware_threads field on both sides; "
                    f"skipping throughput comparison")
        return False
    if fresh_hw != base_hw:
        report.warn(f"{name}: hardware_threads mismatch (baseline {base_hw}, "
                    f"fresh {fresh_hw}); skipping throughput comparison — "
                    f"refresh the baseline from a CI artifact of the same "
                    f"runner shape")
        return False
    return True


def check_throughput(name, fresh, base, tolerance, report):
    if not comparable_hardware(name, fresh, base, report):
        return
    got = fresh.get("throughput_per_s")
    want = base.get("throughput_per_s")
    if not isinstance(got, (int, float)) or not isinstance(want, (int, float)):
        report.warn(f"{name}: no throughput_per_s to compare")
        return
    if want <= 0:
        report.warn(f"{name}: baseline throughput_per_s is {want}; skipping")
        return
    floor = (1.0 - tolerance) * want
    if got < floor:
        report.fail(f"{name}: throughput regressed beyond {tolerance:.0%}: "
                    f"{got:.1f}/s vs baseline {want:.1f}/s "
                    f"(floor {floor:.1f}/s)")
    else:
        report.ok(f"{name}: throughput {got:.1f}/s vs baseline {want:.1f}/s "
                  f"(floor {floor:.1f}/s)")


def check_thread_sweep(name, fresh, efficiency_floor, report):
    sweep = fresh.get("thread_sweep")
    hw = fresh.get("hardware_threads")
    if not isinstance(sweep, list) or not sweep:
        report.fail(f"{name}: missing thread_sweep")
        return
    if not isinstance(hw, int) or hw <= 1:
        report.warn(f"{name}: hardware_threads={hw}; thread-scaling check "
                    f"needs a multi-core machine, skipping")
        return
    for entry in sweep:
        threads = entry.get("threads", 0)
        speedup = entry.get("speedup", 0.0)
        if threads <= 1:
            continue
        effective = min(threads, hw)
        need = efficiency_floor * effective
        if speedup < need:
            report.fail(f"{name}: sub-linear beyond tolerance at "
                        f"{threads} threads: speedup {speedup:.2f}x < "
                        f"{need:.2f}x ({efficiency_floor:.0%} of "
                        f"{effective} effective cores)")
        else:
            report.ok(f"{name}: {threads} threads -> {speedup:.2f}x "
                      f"(need >= {need:.2f}x)")


def check_file(fresh_path, base_path, args, report):
    name = base_path.name
    try:
        fresh = json.loads(fresh_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        report.fail(f"{name}: cannot read fresh artifact: {e}")
        return
    base = json.loads(base_path.read_text())

    if fresh.get("schema_version") != base.get("schema_version"):
        report.fail(f"{name}: schema_version {fresh.get('schema_version')} != "
                    f"baseline {base.get('schema_version')} (refresh "
                    f"bench/baselines/ alongside the schema bump)")
        return
    report.ok(f"{name}: schema_version {fresh.get('schema_version')}")

    if "deterministic" in base or "deterministic" in fresh:
        if fresh.get("deterministic") is not True:
            report.fail(f"{name}: deterministic != true — results differ "
                        f"across thread counts")
        else:
            report.ok(f"{name}: deterministic across thread counts")

    check_work_counters(name, fresh, base, args.strict_work, report)
    check_throughput(name, fresh, base, args.tolerance, report)
    if fresh.get("bench") == "parallel_save":
        check_thread_sweep(name, fresh, args.efficiency_floor, report)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, type=Path,
                        help="directory holding the just-produced BENCH_*.json "
                             "(the benches' bench/out/ or $DISC_BENCH_OUT)")
    parser.add_argument("--baselines", required=True, type=Path,
                        help="directory of checked-in baseline BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional throughput regression "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--efficiency-floor", type=float, default=0.45,
                        help="required parallel efficiency per effective "
                             "core in the thread sweep (default 0.45)")
    parser.add_argument("--strict-work", action="store_true",
                        help="fail (instead of warn) on work-counter drift")
    args = parser.parse_args()

    baselines = sorted(args.baselines.glob("BENCH_*.json"))
    if not baselines:
        print(f"FAIL: no BENCH_*.json baselines in {args.baselines}")
        return 1

    report = Report()
    for base_path in baselines:
        fresh_path = args.fresh / base_path.name
        print(f"== {base_path.name}")
        if not fresh_path.is_file():
            report.fail(f"{base_path.name}: fresh artifact missing from "
                        f"{args.fresh}")
            continue
        check_file(fresh_path, base_path, args, report)

    print(f"\n{len(baselines)} baseline(s): "
          f"{len(report.failures)} failure(s), "
          f"{len(report.warnings)} warning(s)")
    return 1 if report.failures else 0


if __name__ == "__main__":
    sys.exit(main())
