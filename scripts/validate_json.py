#!/usr/bin/env python3
"""Validate a JSON (or JSONL) file against a checked-in schema.

Standard library only — CI runners must not need `pip install jsonschema` —
so this implements exactly the JSON Schema subset the schemas/ directory
uses: type, const, enum, pattern, required, properties, patternProperties,
additionalProperties, items, minimum, maximum.

Usage:
  validate_json.py SCHEMA FILE          # FILE holds one JSON document
  validate_json.py SCHEMA FILE --jsonl  # every non-empty line is a document
"""

import json
import re
import sys


def type_ok(value, expected):
    """JSON Schema type check; `integer` accepts ints and integral floats."""
    if isinstance(expected, list):
        return any(type_ok(value, t) for t in expected)
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        return (isinstance(value, int) and not isinstance(value, bool)) or (
            isinstance(value, float) and value.is_integer()
        )
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "null":
        return value is None
    raise ValueError(f"unsupported schema type: {expected!r}")


def validate(value, schema, path="$"):
    """Returns a list of error strings (empty = valid)."""
    errors = []
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']}")
    if "type" in schema and not type_ok(value, schema["type"]):
        errors.append(
            f"{path}: expected type {schema['type']}, got {type(value).__name__}"
        )
        return errors  # later keyword checks assume the type matched
    if isinstance(value, str) and "pattern" in schema:
        if not re.search(schema["pattern"], value):
            errors.append(f"{path}: {value!r} does not match {schema['pattern']!r}")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(f"{path}: {value} > maximum {schema['maximum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required property {key!r}")
        properties = schema.get("properties", {})
        pattern_properties = schema.get("patternProperties", {})
        additional = schema.get("additionalProperties", True)
        for key, child in value.items():
            child_path = f"{path}.{key}"
            if key in properties:
                errors.extend(validate(child, properties[key], child_path))
                continue
            matched = False
            for pattern, sub in pattern_properties.items():
                if re.search(pattern, key):
                    matched = True
                    errors.extend(validate(child, sub, child_path))
            if matched:
                continue
            if additional is False:
                errors.append(f"{path}: unexpected property {key!r}")
            elif isinstance(additional, dict):
                errors.extend(validate(child, additional, child_path))
    if isinstance(value, list) and "items" in schema:
        for i, child in enumerate(value):
            errors.extend(validate(child, schema["items"], f"{path}[{i}]"))
    return errors


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    schema_path, file_path = argv[1], argv[2]
    jsonl = "--jsonl" in argv[3:]
    with open(schema_path) as f:
        schema = json.load(f)
    with open(file_path) as f:
        text = f.read()

    documents = []
    if jsonl:
        for lineno, line in enumerate(text.splitlines(), start=1):
            if line.strip():
                documents.append((f"line {lineno}", line))
    else:
        documents.append((file_path, text))
    if not documents:
        print(f"FAIL: {file_path} is empty", file=sys.stderr)
        return 1

    failures = 0
    for label, doc in documents:
        try:
            value = json.loads(doc)
        except json.JSONDecodeError as e:
            print(f"FAIL: {label}: not valid JSON: {e}", file=sys.stderr)
            failures += 1
            continue
        for error in validate(value, schema):
            print(f"FAIL: {label}: {error}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{file_path}: {failures} schema violation(s)", file=sys.stderr)
        return 1
    print(f"{file_path}: OK ({len(documents)} document(s) valid "
          f"against {schema_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
