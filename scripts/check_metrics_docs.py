#!/usr/bin/env python3
"""Keep the DESIGN.md metrics reference table and the source in lockstep.

Scans `src/` for every metric registration site — the first string literal
of a `GetCounter` / `GetGauge` / `GetHistogram` call, plus `std::string(
"disc_..._")` prefix compositions that build family names at runtime
(per-termination, per-disposition, per-action, per-stats-field,
per-index-impl) — and compares the result against the reference table in
DESIGN.md (the markdown table rows whose first column is a backticked
`disc_...` name; `<placeholder>` segments match any `[a-z0-9_]+`).

Enforced both directions:
  * every metric the source can emit must be documented — an exact
    registered name needs a matching table row; a runtime-composed prefix
    needs at least one row that starts with it,
  * every documented name must still exist in the source — matching an
    exact registration or extending a composed prefix.

Standard library only; run from the repo root (CI: observability job).

Usage:
  check_metrics_docs.py [--design DESIGN.md] [--src src]
"""

import os
import re
import sys

REGISTRATION = re.compile(
    r"Get(?:Counter|Gauge|Histogram)\(\s*(?:std::string\(\s*)?"
    r'"(disc_[a-z0-9_]*)"')
COMPOSED_PREFIX = re.compile(r'std::string\(\s*"(disc_[a-z0-9_]*_)"\s*\)')
DOC_ROW = re.compile(r"^\|\s*`(disc_[a-z0-9_<>]*)`")


def scan_source(src_root):
    exact, prefixes = set(), set()
    for dirpath, _, filenames in os.walk(src_root):
        for filename in filenames:
            if not filename.endswith((".cc", ".h")):
                continue
            with open(os.path.join(dirpath, filename)) as f:
                text = f.read()
            for name in REGISTRATION.findall(text):
                (prefixes if name.endswith("_") else exact).add(name)
            prefixes.update(COMPOSED_PREFIX.findall(text))
    return exact, prefixes


def scan_docs(design_path):
    rows = []
    with open(design_path) as f:
        for line in f:
            m = DOC_ROW.match(line)
            if m:
                rows.append(m.group(1))
    return rows


def doc_regex(row):
    # Row charset is [a-z0-9_<>] (enforced by DOC_ROW), so no escaping is
    # needed: only the placeholders become wildcards.
    return re.compile(re.sub(r"<[a-z0-9_]+>", "[a-z0-9_]+", row) + "$")


def main(argv):
    design_path = "DESIGN.md"
    src_root = "src"
    if "--design" in argv:
        design_path = argv[argv.index("--design") + 1]
    if "--src" in argv:
        src_root = argv[argv.index("--src") + 1]

    exact, prefixes = scan_source(src_root)
    rows = scan_docs(design_path)
    if not rows:
        print(f"FAIL: no metrics table rows found in {design_path}",
              file=sys.stderr)
        return 1
    patterns = [(row, doc_regex(row)) for row in rows]

    failures = []
    for name in sorted(exact):
        if not any(p.match(name) for _, p in patterns):
            failures.append(f"undocumented metric: {name} "
                            f"(registered in {src_root}/, no row in "
                            f"{design_path})")
    for prefix in sorted(prefixes):
        if not any(row.startswith(prefix) for row, _ in patterns):
            failures.append(f"undocumented metric family: {prefix}* "
                            f"(composed in {src_root}/, no row in "
                            f"{design_path})")
    for row, _ in patterns:
        literal = row.split("<", 1)[0]
        if row in exact:
            continue
        if any(literal.startswith(p) for p in prefixes):
            continue
        failures.append(f"stale documentation: {row} "
                        f"(row in {design_path}, not registered anywhere "
                        f"in {src_root}/)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"{design_path}: {len(rows)} documented metrics match "
          f"{len(exact)} registrations + {len(prefixes)} composed "
          f"families in {src_root}/")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
