// Figure 8 reproduction: record-matching F1 on the Restaurant-shaped string
// dataset, over raw dirty data and data treated by DISC / DORC / HoloClean /
// Holistic (ERACER is numeric-only and does not apply), sweeping (a) the
// neighbor threshold eta at fixed eps and (b) the distance threshold eps at
// fixed eta.
//
// Expected shape (paper): DISC lifts matching F1 clearly above Raw across
// the sweeps; tuple-substituting DORC helps less; an interior optimum in
// both sweeps.

#include "matching/record_matching.h"
#include "support.h"

namespace {

using namespace disc;
using namespace disc::bench;

double MatchF1(const Relation& data, const std::vector<MatchPair>& truth) {
  return ScoreMatching(MatchRecords(data), truth).f1;
}

struct SweepPoint {
  double disc_f1 = 0;
  double dorc_f1 = 0;
  double holo_f1 = 0;
};

SweepPoint RunAt(const PaperDataset& ds, const DistanceEvaluator& evaluator,
                 const DistanceConstraint& c,
                 const std::vector<MatchPair>& truth) {
  SweepPoint p;
  {
    OutlierSavingOptions options;
    options.constraint = c;
    options.save.kappa = 2;  // singletons stay unchanged (no ≤2-attr repair)
    SavedDataset saved = SaveOutliers(ds.dirty, evaluator, options);
    p.disc_f1 = MatchF1(saved.repaired, truth);
  }
  {
    DorcOptions options;
    options.constraint = c;
    options.use_index = true;
    p.dorc_f1 = MatchF1(Dorc(ds.dirty, evaluator, options), truth);
  }
  {
    HolocleanOptions options;
    options.constraint = c;
    p.holo_f1 = MatchF1(Holoclean(ds.dirty, evaluator, options), truth);
  }
  return p;
}

}  // namespace

int main() {
  PaperDataset ds = MakePaperDataset("restaurant", 42, 0.5);
  DistanceEvaluator evaluator(ds.dirty.schema());
  std::vector<MatchPair> truth = PairsFromEntityIds(ds.labels);

  double raw_f1 = MatchF1(ds.dirty, truth);
  double clean_f1 = MatchF1(ds.clean, truth);
  Relation holistic = Holistic(ds.dirty, evaluator);
  double holistic_f1 = MatchF1(holistic, truth);
  std::printf("restaurant-shaped: %zu records, %zu true pairs; "
              "F1 raw=%.4f clean=%.4f holistic=%.4f (flat)\n",
              ds.dirty.size(), truth.size(), raw_f1, clean_f1, holistic_f1);

  PrintHeader("Figure 8(a): matching F1 vs eta (eps fixed)");
  PrintRow({"eta", "Raw", "DISC", "DORC", "HoloClean"});
  for (std::size_t eta : {2u, 3u, 4u, 6u}) {
    DistanceConstraint c = ds.suggested;
    c.eta = eta;
    SweepPoint p = RunAt(ds, evaluator, c, truth);
    PrintRow({std::to_string(eta), Fmt(raw_f1), Fmt(p.disc_f1),
              Fmt(p.dorc_f1), Fmt(p.holo_f1)});
  }

  PrintHeader("Figure 8(b): matching F1 vs eps (eta fixed)");
  PrintRow({"eps", "Raw", "DISC", "DORC", "HoloClean"});
  for (double factor : {0.6, 0.8, 1.0, 1.2, 1.5}) {
    DistanceConstraint c = ds.suggested;
    c.epsilon *= factor;
    SweepPoint p = RunAt(ds, evaluator, c, truth);
    PrintRow({Fmt(c.epsilon, 2), Fmt(raw_f1), Fmt(p.disc_f1),
              Fmt(p.dorc_f1), Fmt(p.holo_f1)});
  }

  std::printf(
      "\nShape check vs paper Fig. 8: DISC > Raw across sweeps (typos "
      "repaired\nrestore matches); DORC helps less; ERACER not applicable "
      "to strings.\n");
  return 0;
}
