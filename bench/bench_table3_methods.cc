// Table 3 reproduction: F1 of six clustering methods (DBSCAN, K-Means,
// K-Means--, CCKM, SREM, KMC) over raw dirty data vs data with outliers
// saved by DISC, across the 8 numeric datasets.
//
// Expected shape (paper): every method improves with DISC; methods that are
// stronger on Raw (e.g. SREM) stay strongest after saving.

#include <map>
#include <set>

#include "clustering/cckm.h"
#include "clustering/kmc.h"
#include "clustering/kmeans.h"
#include "clustering/kmeans_mm.h"
#include "clustering/srem.h"
#include "support.h"

namespace {

using namespace disc;

std::size_t NumClasses(const std::vector<int>& labels) {
  std::set<int> distinct;
  for (int l : labels) {
    if (l >= 0) distinct.insert(l);
  }
  return distinct.size();
}

double MethodF1(const std::string& method, const Relation& data,
                const DistanceEvaluator& evaluator,
                const DistanceConstraint& constraint,
                const std::vector<int>& truth, std::size_t outliers) {
  const std::size_t k = NumClasses(truth);
  Labels labels;
  if (method == "DBSCAN") {
    labels = Dbscan(data, evaluator, {constraint.epsilon, constraint.eta});
  } else if (method == "K-Means") {
    labels = KMeans(data, {k, 100, 1e-8, 42}).labels;
  } else if (method == "K-Means--") {
    KMeansMMParams p;
    p.k = k;
    p.l = outliers;
    labels = KMeansMM(data, p).labels;
  } else if (method == "CCKM") {
    CckmParams p;
    p.k = k;
    p.outlier_budget = outliers;
    labels = Cckm(data, p).labels;
  } else if (method == "SREM") {
    SremParams p;
    p.k = k;
    labels = Srem(data, p).labels;
  } else if (method == "KMC") {
    KmcParams p;
    p.k = k;
    labels = Kmc(data, p).labels;
  }
  return PairCounting(labels, truth).f1;
}

}  // namespace

int main() {
  using namespace disc::bench;

  const std::vector<std::string> datasets = {"iris",  "seeds",  "wifi",
                                             "yeast", "letter", "flight",
                                             "spam",  "gps"};
  const std::vector<std::string> methods = {"DBSCAN", "K-Means", "K-Means--",
                                            "CCKM",   "SREM",    "KMC"};

  PrintHeader("Table 3: clustering F1 by method, Raw vs DISC");
  std::vector<std::string> header{"Data"};
  for (const std::string& m : methods) {
    header.push_back(m + "/Raw");
    header.push_back(m + "/DISC");
  }
  PrintRow(header, 12);

  for (const std::string& name : datasets) {
    PaperDataset ds = MakePaperDataset(name, 42, BenchScaleFor(name));
    DistanceEvaluator evaluator(ds.dirty.schema());
    Treatment saved = RunDisc(ds, evaluator);
    std::size_t outliers = ds.dirty_rows.size() +
                           ds.natural_outlier_rows.size();

    std::vector<std::string> row{name};
    for (const std::string& m : methods) {
      double raw = MethodF1(m, ds.dirty, evaluator, ds.suggested, ds.labels,
                            outliers);
      double disc_f1 = MethodF1(m, saved.data, evaluator, ds.suggested,
                                ds.labels, outliers);
      row.push_back(Fmt(raw));
      row.push_back(Fmt(disc_f1));
    }
    PrintRow(row, 12);
  }

  std::printf(
      "\nShape check vs paper Table 3: the DISC column should beat its Raw "
      "column\nfor every method on every dataset (more or less improved).\n");
  return 0;
}
