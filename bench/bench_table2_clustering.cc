// Table 2 reproduction: DBSCAN clustering accuracy (NMI / ARI / F1) and
// repair time over Raw data and data treated by DISC / DORC / ERACER /
// HoloClean / Holistic, across the 8 numeric datasets of Table 1.
//
// Expected shape (paper): DISC wins every dataset on every accuracy metric;
// DORC is a strong second but over-changes; ERACER/Holistic trail and can
// fall below Raw; DORC's time blows up on the larger datasets.

#include "support.h"

int main() {
  using namespace disc;
  using namespace disc::bench;

  const std::vector<std::string> datasets = {"iris", "seeds",  "wifi",
                                             "yeast", "letter", "flight",
                                             "spam",  "gps"};

  struct MetricBlock {
    const char* title;
    double ClusterScores::* member;
  };
  const MetricBlock blocks[] = {
      {"NMI (DBSCAN)", &ClusterScores::nmi},
      {"ARI (DBSCAN)", &ClusterScores::ari},
      {"F1-score (DBSCAN)", &ClusterScores::f1},
  };

  // Collect everything once, then print per-metric blocks like the paper.
  struct DatasetRun {
    std::string name;
    std::vector<Treatment> treatments;
    std::vector<ClusterScores> scores;
  };
  std::vector<DatasetRun> runs;

  for (const std::string& name : datasets) {
    PaperDataset ds = MakePaperDataset(name, 42, BenchScaleFor(name));
    DistanceEvaluator evaluator(ds.dirty.schema());
    DatasetRun run;
    run.name = name;
    run.treatments = RunAllTreatments(ds, evaluator);
    for (const Treatment& t : run.treatments) {
      run.scores.push_back(
          ScoreDbscan(t.data, evaluator, ds.suggested, ds.labels));
    }
    runs.push_back(std::move(run));
    std::printf("prepared %-10s (n=%zu, scale=%.3g)\n", name.c_str(),
                ds.dirty.size(), BenchScaleFor(name));
  }

  for (const MetricBlock& block : blocks) {
    PrintHeader(std::string("Table 2: ") + block.title);
    PrintRow({"Data", "Raw", "DISC", "DORC", "ERACER", "HoloClean",
              "Holistic"});
    for (const DatasetRun& run : runs) {
      std::vector<std::string> row{run.name};
      for (const ClusterScores& s : run.scores) {
        row.push_back(Fmt(s.*(block.member)));
      }
      PrintRow(row);
    }
  }

  PrintHeader("Table 2: Time cost (s) of the repair step");
  PrintRow({"Data", "Raw", "DISC", "DORC", "ERACER", "HoloClean",
            "Holistic"});
  for (const DatasetRun& run : runs) {
    std::vector<std::string> row{run.name};
    for (const Treatment& t : run.treatments) {
      row.push_back(Fmt(t.seconds));
    }
    PrintRow(row);
  }

  std::printf(
      "\nShape check vs paper Table 2: DISC should lead each accuracy "
      "block;\nDORC's time should dominate on the larger datasets "
      "(letter/flight-scale rows).\n");
  return 0;
}
