// Table 4 reproduction: automatic (ε, η) determination — our Poisson-based
// selection (DISC) vs the Normal-distribution baseline (DB) vs the Optimal
// setting found by sweeping, at several sampling rates, with the time cost
// of the determination and the downstream DBSCAN F1 under each choice.
//
// Expected shape (paper): DISC's choice is stable across sampling rates,
// close to Optimal in F1, and far better than DB's (which picks a
// wrong-scale ε); determination time is similar for DISC and DB and shrinks
// with sampling.

#include "constraints/parameter_selection.h"
#include "support.h"

namespace {

using namespace disc;
using namespace disc::bench;

/// Sweeps a grid around the calibrated constraint for the best DBSCAN F1.
DistanceConstraint FindOptimal(const PaperDataset& ds,
                               const DistanceEvaluator& evaluator) {
  DistanceConstraint best = ds.suggested;
  double best_f1 = -1;
  for (double fe : {0.6, 0.8, 1.0, 1.25, 1.5}) {
    for (double fh : {0.5, 1.0, 1.5, 2.0}) {
      DistanceConstraint c;
      c.epsilon = ds.suggested.epsilon * fe;
      c.eta = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(ds.suggested.eta) * fh));
      double f1 = ScoreDbscan(ds.dirty, evaluator, c, ds.labels).f1;
      if (f1 > best_f1) {
        best_f1 = f1;
        best = c;
      }
    }
  }
  return best;
}

double F1Under(const PaperDataset& ds, const DistanceEvaluator& evaluator,
               const DistanceConstraint& c) {
  // Save outliers under the chosen constraint, then cluster.
  OutlierSavingOptions options;
  options.constraint = c;
  options.save.kappa = BenchKappaFor(ds.name);
  SavedDataset saved = SaveOutliers(ds.dirty, evaluator, options);
  return ScoreDbscan(saved.repaired, evaluator, c, ds.labels).f1;
}

}  // namespace

int main() {
  // The paper samples only for the parameter-determination pass (its
  // "Tuples" column counts the sampled rows); clustering always runs on the
  // full dataset. We mirror that: one dataset per name, three sample rates.
  struct Row {
    const char* dataset;
    double scale;
    double sample_rate;
  };
  const Row rows[] = {
      {"letter", 0.05, 0.01},  {"letter", 0.05, 0.1}, {"letter", 0.05, 1.0},
      {"flight", 0.005, 0.01}, {"flight", 0.005, 0.1}, {"flight", 0.005, 1.0},
  };

  PrintHeader("Table 4: parameter determination (DISC Poisson vs DB Normal)");
  PrintRow({"Data", "Tuples", "t_DISC", "t_DB", "eps_DISC", "eta_DISC",
            "eps_DB", "eta_DB", "F1_DISC", "F1_DB", "F1_Opt"});

  for (const Row& spec : rows) {
    PaperDataset ds = MakePaperDataset(spec.dataset, 42, spec.scale);
    DistanceEvaluator evaluator(ds.dirty.schema());

    ParameterSelectionOptions opts;
    opts.sample_rate = spec.sample_rate;

    Timer t_disc;
    ParameterSelection disc_sel =
        SelectParametersPoisson(ds.dirty, evaluator, opts);
    double disc_seconds = t_disc.Seconds();

    Timer t_db;
    ParameterSelection db_sel =
        SelectParametersNormal(ds.dirty, evaluator, opts);
    double db_seconds = t_db.Seconds();

    DistanceConstraint optimal = FindOptimal(ds, evaluator);

    double f1_disc = F1Under(ds, evaluator, disc_sel.constraint);
    double f1_db = F1Under(ds, evaluator, db_sel.constraint);
    double f1_opt = F1Under(ds, evaluator, optimal);

    auto sampled_tuples = static_cast<std::size_t>(
        spec.sample_rate * static_cast<double>(ds.dirty.size()));
    PrintRow({std::string(spec.dataset), std::to_string(sampled_tuples),
              Fmt(disc_seconds, 3), Fmt(db_seconds, 3),
              Fmt(disc_sel.constraint.epsilon, 2),
              std::to_string(disc_sel.constraint.eta),
              Fmt(db_sel.constraint.epsilon, 2),
              std::to_string(db_sel.constraint.eta), Fmt(f1_disc, 3),
              Fmt(f1_db, 3), Fmt(f1_opt, 3)});
  }

  std::printf(
      "\nShape check vs paper Table 4: F1_DISC should approach F1_Opt and "
      "clearly\nbeat F1_DB; the DISC (eps, eta) choice should be stable "
      "across sample rates.\n");
  return 0;
}
