// bench_parallel_save — wall-clock speedup of parallel batch outlier saving.
//
// Builds a seeded Gaussian-mixture dataset with injected single-attribute
// errors, then runs the same DiscSaver::SaveAll batch with 1, 2, 4 and 8
// worker threads. Reports seconds and speedup vs. the 1-thread run and
// verifies the results are bit-identical across thread counts (the
// determinism guarantee of SaveAll).
//
// Not a paper figure: this benchmarks the repo's own parallel saving path.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "constraints/distance_constraint.h"
#include "core/disc_saver.h"
#include "core/outlier_saving.h"
#include "data/generators.h"
#include "index/index_factory.h"
#include "support.h"

namespace disc::bench {
namespace {

struct BatchScenario {
  Relation data;
  DistanceConstraint constraint;
};

/// Five well-separated Gaussian clusters in 6-D with a slice of rows
/// corrupted on 1-2 attributes — enough outliers that the batch dominates
/// the wall clock and the per-outlier searches vary in cost.
BatchScenario MakeScenario(std::uint64_t seed) {
  const std::size_t kDims = 6;
  std::vector<std::vector<double>> centers =
      PlaceClusterCenters(5, kDims, 60.0, 18.0, seed);
  std::vector<ClusterSpec> specs;
  for (const auto& center : centers) {
    specs.push_back({center, 0.8, 360});
  }
  LabeledRelation mixture = GenerateGaussianMixture(specs, seed + 1);

  // Corrupt every 9th row: spike one or two attributes far outside the
  // cluster radius so the row loses its ε-neighbors.
  Rng rng(seed + 2);
  for (std::size_t row = 4; row < mixture.data.size(); row += 9) {
    std::size_t a = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(kDims) - 1));
    mixture.data[row][a] =
        Value(mixture.data[row][a].num() + 25.0 + rng.Uniform() * 10.0);
    if (row % 2 == 0) {
      std::size_t b = (a + 1) % kDims;
      mixture.data[row][b] =
          Value(mixture.data[row][b].num() - 25.0 - rng.Uniform() * 10.0);
    }
  }

  BatchScenario s;
  s.data = std::move(mixture.data);
  s.constraint = {2.0, 6};
  return s;
}

bool SameResults(const std::vector<SaveResult>& a,
                 const std::vector<SaveResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].feasible != b[i].feasible || a[i].adjusted != b[i].adjusted ||
        a[i].cost != b[i].cost ||
        !(a[i].adjusted_attributes == b[i].adjusted_attributes)) {
      return false;
    }
  }
  return true;
}

int Run() {
  BatchScenario s = MakeScenario(/*seed=*/7);
  DistanceEvaluator evaluator(s.data.schema());

  std::unique_ptr<NeighborIndex> full_index =
      MakeNeighborIndex(s.data, evaluator, s.constraint.epsilon);
  InlierOutlierSplit split =
      SplitInliersOutliers(s.data, *full_index, s.constraint);
  Relation inliers = s.data.Select(split.inlier_rows);
  std::vector<Tuple> outliers;
  outliers.reserve(split.outlier_rows.size());
  for (std::size_t row : split.outlier_rows) {
    outliers.push_back(s.data[row]);
  }

  std::printf("dataset: %zu tuples, %zu outliers, %zu inliers (eps=%.1f "
              "eta=%zu)\n",
              s.data.size(), outliers.size(), inliers.size(),
              s.constraint.epsilon, s.constraint.eta);

  DiscSaver saver(inliers, evaluator, s.constraint);
  SaveOptions save_options;
  save_options.kappa = 2;

  PrintHeader("Parallel batch outlier saving (DiscSaver::SaveAll)");
  PrintRow({"threads", "seconds", "speedup", "saved"});

  std::vector<SaveResult> baseline;
  double baseline_seconds = 0;
  bool deterministic = true;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    Timer timer;
    std::vector<SaveResult> results =
        saver.SaveAll(outliers, save_options, pool.get());
    double seconds = timer.Seconds();

    std::size_t saved = 0;
    for (const SaveResult& r : results) {
      if (r.feasible) ++saved;
    }
    if (threads == 1) {
      baseline = results;
      baseline_seconds = seconds;
    } else if (!SameResults(baseline, results)) {
      deterministic = false;
    }
    PrintRow({std::to_string(threads), Fmt(seconds, 3),
              Fmt(baseline_seconds / seconds, 2) + "x",
              std::to_string(saved)});
  }

  std::printf("determinism across thread counts: %s\n",
              deterministic ? "OK (bit-identical)" : "MISMATCH");
  std::printf("hardware threads available: %zu\n",
              ThreadPool::DefaultThreadCount());
  return deterministic ? 0 : 1;
}

}  // namespace
}  // namespace disc::bench

int main() { return disc::bench::Run(); }
