// bench_parallel_save — wall-clock scaling of parallel batch outlier saving.
//
// Builds a seeded Gaussian-mixture dataset with injected errors whose
// magnitudes and attribute counts are deliberately skewed (lognormal
// displacement, P(k attributes) ∝ 1/k²), so the per-outlier search costs
// span orders of magnitude — the workload the cost-ordered work-stealing
// scheduler exists for. Runs the same DiscSaver::SaveAll batch with 1, 2, 4
// and 8 worker threads, reports seconds/speedup/steal counts per thread
// count, and verifies the results are bit-identical across thread counts
// (the determinism guarantee of SaveAll, including SearchStats::SameWork).
//
// Default mode saves ~500 outliers against ~20k inliers and additionally
// measures per-outlier latency percentiles and the anytime deadline path.
// `--large` scales the dataset to 500k tuples (~2000 outliers) for the
// nightly CI scale job; the latency and deadline passes are skipped there
// (the 1-thread sweep already provides the throughput reference).
//
// Everything is written machine-readably to BENCH_parallel_save.json
// (schema_version 3) in the working directory; scripts/check_bench_regression.py
// compares that file against bench/baselines/.
//
// Not a paper figure: this benchmarks the repo's own parallel saving path.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "constraints/distance_constraint.h"
#include "core/disc_saver.h"
#include "core/outlier_saving.h"
#include "core/search_budget.h"
#include "data/generators.h"
#include "index/index_factory.h"
#include "support.h"

namespace disc::bench {
namespace {

struct BatchScenario {
  Relation data;
  DistanceConstraint constraint;
};

/// Samples how many attributes one corrupted row spikes: P(k) ∝ 1/k² over
/// k ∈ {1, 2, 3}, so most errors touch one attribute but a heavy-ish tail
/// needs multi-attribute adjustments (deeper searches).
std::size_t SampleAttributeCount(Rng& rng) {
  // Cumulative weights of 1, 1/4, 1/9 normalized.
  const double u = rng.Uniform();
  if (u < 1.0 / (1.0 + 0.25 + 1.0 / 9.0)) return 1;
  if (u < (1.0 + 0.25) / (1.0 + 0.25 + 1.0 / 9.0)) return 2;
  return 3;
}

/// Well-separated Gaussian clusters in 6-D with a strided slice of rows
/// corrupted by lognormally-distributed spikes. Default: 10 clusters ×
/// 2,000 tuples (≈500 outliers). Large: 25 clusters × 20,000 tuples
/// (n = 500k, ≈2,000 outliers).
BatchScenario MakeScenario(std::uint64_t seed, bool large) {
  const std::size_t kDims = 6;
  const std::size_t clusters = large ? 25 : 10;
  const std::size_t per_cluster = large ? 20000 : 2000;
  const double center_range = large ? 240.0 : 140.0;
  std::vector<std::vector<double>> centers =
      PlaceClusterCenters(clusters, kDims, center_range, 18.0, seed);
  std::vector<ClusterSpec> specs;
  for (const auto& center : centers) {
    specs.push_back({center, 0.8, per_cluster});
  }
  LabeledRelation mixture = GenerateGaussianMixture(specs, seed + 1);

  // Corrupt a strided slice of rows. Displacement magnitude is lognormal
  // (median ≈ e³ ≈ 20, long right tail) on top of a fixed offset that
  // guarantees the ε-band breaks; attribute count follows the 1/k² law
  // above. Together they spread the per-outlier search cost over orders of
  // magnitude — some saves are one cheap splice, others fight through
  // multi-attribute spikes landed between clusters.
  Rng rng(seed + 2);
  const std::size_t stride = large ? 250 : 40;
  for (std::size_t row = stride / 2; row < mixture.data.size(); row += stride) {
    const std::size_t k = SampleAttributeCount(rng);
    const std::size_t base = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(kDims) - 1));
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t a = (base + 2 * j) % kDims;
      const double magnitude = 12.0 + std::exp(rng.Gaussian(3.0, 0.8));
      const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      mixture.data[row][a] =
          Value(mixture.data[row][a].num() + sign * magnitude);
    }
  }

  BatchScenario s;
  s.data = std::move(mixture.data);
  s.constraint = {2.0, 6};
  return s;
}

bool SameResults(const std::vector<SaveResult>& a,
                 const std::vector<SaveResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].feasible != b[i].feasible || a[i].adjusted != b[i].adjusted ||
        a[i].cost != b[i].cost || a[i].termination != b[i].termination ||
        a[i].index_queries != b[i].index_queries ||
        !a[i].stats.SameWork(b[i].stats) ||
        !(a[i].adjusted_attributes == b[i].adjusted_attributes)) {
      return false;
    }
  }
  return true;
}

int Run(bool large) {
  BatchScenario s = MakeScenario(/*seed=*/7, large);
  DistanceEvaluator evaluator(s.data.schema());

  std::unique_ptr<NeighborIndex> full_index =
      MakeNeighborIndex(s.data, evaluator, s.constraint.epsilon);
  InlierOutlierSplit split =
      SplitInliersOutliers(s.data, *full_index, s.constraint);
  Relation inliers = s.data.Select(split.inlier_rows);
  std::vector<Tuple> outliers;
  outliers.reserve(split.outlier_rows.size());
  for (std::size_t row : split.outlier_rows) {
    outliers.push_back(s.data[row]);
  }

  std::printf("dataset: %zu tuples, %zu outliers, %zu inliers (eps=%.1f "
              "eta=%zu)%s\n",
              s.data.size(), outliers.size(), inliers.size(),
              s.constraint.epsilon, s.constraint.eta,
              large ? " [--large]" : "");

  DiscSaver saver(inliers, evaluator, s.constraint);
  SaveOptions save_options;
  save_options.kappa = 2;

  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Uint(3);
  json.Key("bench").String("parallel_save");
  json.Key("large").Bool(large);
  json.Key("hardware_threads").Uint(WorkStealingPool::DefaultThreadCount());
  json.Key("tuples").Uint(s.data.size());
  json.Key("outliers").Uint(outliers.size());
  json.Key("inliers").Uint(inliers.size());
  json.Key("epsilon").Number(s.constraint.epsilon);
  json.Key("eta").Uint(s.constraint.eta);

  // --- Per-outlier latency (sequential, so queueing does not pollute the
  // percentiles). Default mode only: at n=500k the 1-thread sweep below is
  // already the sequential reference, and a second full pass would double
  // the nightly wall clock for no extra signal. ---
  double latency_total = 0;
  if (!large) {
    std::vector<double> latencies_ms;
    latencies_ms.reserve(outliers.size());
    Timer latency_timer;
    for (const Tuple& outlier : outliers) {
      Timer one;
      SaveResult r = saver.Save(outlier, save_options);
      latencies_ms.push_back(one.Seconds() * 1e3);
      (void)r;
    }
    latency_total = latency_timer.Seconds();
    double p50 = Percentile(latencies_ms, 50);
    double p99 = Percentile(latencies_ms, 99);
    double throughput =
        latency_total > 0
            ? static_cast<double>(outliers.size()) / latency_total
            : 0;
    std::printf("per-outlier latency: p50 %.3f ms, p99 %.3f ms; "
                "throughput %.1f outliers/s (1 thread)\n",
                p50, p99, throughput);
    json.Key("latency").BeginObject();
    json.Key("p50_ms").Number(p50);
    json.Key("p99_ms").Number(p99);
    json.Key("throughput_per_s").Number(throughput);
    json.EndObject();
  }

  PrintHeader("Parallel batch outlier saving (DiscSaver::SaveAll)");
  PrintRow({"threads", "seconds", "speedup", "saved", "steals", "chunks"});

  json.Key("thread_sweep").BeginArray();
  std::vector<SaveResult> baseline;
  double baseline_seconds = 0;
  double baseline_throughput = 0;
  bool deterministic = true;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::unique_ptr<WorkStealingPool> pool;
    if (threads > 1) pool = std::make_unique<WorkStealingPool>(threads);
    WorkStealingPool::SchedStats before;
    if (pool != nullptr) before = pool->stats();
    Timer timer;
    std::vector<SaveResult> results =
        saver.SaveAll(outliers, save_options, pool.get());
    double seconds = timer.Seconds();
    WorkStealingPool::SchedStats sched;
    if (pool != nullptr) {
      WorkStealingPool::SchedStats after = pool->stats();
      sched.tasks = after.tasks - before.tasks;
      sched.steals = after.steals - before.steals;
      sched.nested_chunks = after.nested_chunks - before.nested_chunks;
    }

    std::size_t saved = 0;
    for (const SaveResult& r : results) {
      if (r.feasible) ++saved;
    }
    double throughput =
        seconds > 0 ? static_cast<double>(outliers.size()) / seconds : 0;
    if (threads == 1) {
      baseline = results;
      baseline_seconds = seconds;
      baseline_throughput = throughput;
    } else if (!SameResults(baseline, results)) {
      deterministic = false;
    }
    PrintRow({std::to_string(threads), Fmt(seconds, 3),
              Fmt(baseline_seconds / seconds, 2) + "x", std::to_string(saved),
              std::to_string(sched.steals),
              std::to_string(sched.nested_chunks)});
    json.BeginObject();
    json.Key("threads").Uint(threads);
    json.Key("seconds").Number(seconds);
    json.Key("speedup").Number(seconds > 0 ? baseline_seconds / seconds : 0);
    json.Key("throughput_per_s").Number(throughput);
    json.Key("saved").Uint(saved);
    json.Key("sched").BeginObject();
    json.Key("tasks").Uint(sched.tasks);
    json.Key("steals").Uint(sched.steals);
    json.Key("nested_chunks").Uint(sched.nested_chunks);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.Key("throughput_per_s").Number(baseline_throughput);

  // Aggregate search-work counters of the (bit-identical) batch, from the
  // 1-thread baseline. Every work counter is deterministic; timing fields
  // are excluded by construction (AppendJson sums wall_nanos only).
  SearchStats batch_stats;
  for (const SaveResult& r : baseline) batch_stats.MergeFrom(r.stats);
  json.Key("search_stats").BeginObject();
  AppendSearchStats(&json, batch_stats);
  json.EndObject();
  std::printf("batch work: %llu nodes expanded, %llu index queries, "
              "%llu prop3 + %llu prop5 bounds\n",
              static_cast<unsigned long long>(batch_stats.nodes_expanded),
              static_cast<unsigned long long>(batch_stats.index_queries),
              static_cast<unsigned long long>(batch_stats.prop3_bounds),
              static_cast<unsigned long long>(batch_stats.prop5_bounds));

  std::printf("determinism across thread counts: %s\n",
              deterministic ? "OK (bit-identical)" : "MISMATCH");

  // --- Deadline mode (default only): rerun the batch under an aggressive
  // whole-batch deadline (a quarter of the measured sequential time) and
  // tally how the anytime path degrades. Every record must still be
  // present. ---
  bool all_recorded = true;
  if (!large) {
    const double deadline_fraction = 0.25;
    auto deadline_ms =
        static_cast<std::int64_t>(latency_total * deadline_fraction * 1e3);
    if (deadline_ms < 1) deadline_ms = 1;
    BatchBudget batch;
    batch.deadline = Deadline::AfterMillis(deadline_ms);
    Timer deadline_timer;
    std::vector<SaveResult> degraded =
        saver.SaveAll(outliers, save_options, nullptr, batch);
    double deadline_seconds = deadline_timer.Seconds();

    std::size_t completed = 0, hit_deadline = 0, saved_any = 0;
    for (const SaveResult& r : degraded) {
      if (r.termination == SaveTermination::kCompleted ||
          r.termination == SaveTermination::kInfeasible) {
        ++completed;
      } else if (r.termination == SaveTermination::kDeadline) {
        ++hit_deadline;
      }
      if (r.feasible) ++saved_any;
    }
    all_recorded = degraded.size() == outliers.size();
    std::printf("deadline mode (%lld ms budget): %.3f s wall, %zu/%zu records "
                "(%zu completed, %zu past deadline, %zu saved)\n",
                static_cast<long long>(deadline_ms), deadline_seconds,
                degraded.size(), outliers.size(), completed, hit_deadline,
                saved_any);

    json.Key("deadline_mode").BeginObject();
    json.Key("deadline_ms").Int(deadline_ms);
    json.Key("wall_seconds").Number(deadline_seconds);
    json.Key("records").Uint(degraded.size());
    json.Key("completed").Uint(completed);
    json.Key("past_deadline").Uint(hit_deadline);
    json.Key("saved").Uint(saved_any);
    json.EndObject();
  }

  json.Key("deterministic").Bool(deterministic);
  json.EndObject();
  const std::string json_path = BenchOutPath("BENCH_parallel_save.json");
  if (WriteTextFile(json_path, json.str() + "\n")) {
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("hardware threads available: %zu\n",
              WorkStealingPool::DefaultThreadCount());
  return deterministic && all_recorded ? 0 : 1;
}

/// Reads `path` fully into `out`. Returns false on any I/O error.
bool ReadTextFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// Extracts a top-level numeric field from a compact JSON object (the shape
/// our JsonWriter emits). Depth-tracked so the same key nested inside
/// latency/thread_sweep does not shadow the top-level one; no JSON library
/// needed for our own output.
bool TopLevelNumber(const std::string& json, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      if (depth == 1 && json.compare(i, needle.size(), needle) == 0) {
        *out = std::strtod(json.c_str() + i + needle.size(), nullptr);
        return true;
      }
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
    }
  }
  return false;
}

/// The perf gate behind `--check`: compares the single-thread throughput of
/// the run just written against the checked-in baseline with a 2% floor —
/// tight enough to catch tracing or explain capture hooks leaking cost into
/// the detached path (both ride the BudgetGauge: every site is one pointer
/// test when nothing is attached, and this gate holds them to that).
/// Skips (exit 0, loud WARN) when the baseline was recorded on a machine
/// with a different hardware_threads count, mirroring
/// scripts/check_bench_regression.py: cross-shape timings are incomparable.
int CheckAgainstBaseline(const std::string& fresh_path,
                         const std::string& baseline_path) {
  constexpr double kTolerance = 0.02;
  std::string fresh;
  std::string base;
  if (!ReadTextFile(fresh_path, &fresh)) {
    std::fprintf(stderr, "--check: cannot read fresh %s\n", fresh_path.c_str());
    return 1;
  }
  if (!ReadTextFile(baseline_path, &base)) {
    std::fprintf(stderr, "--check: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 1;
  }
  double fresh_tp = 0;
  double base_tp = 0;
  double fresh_hw = 0;
  double base_hw = 0;
  if (!TopLevelNumber(fresh, "throughput_per_s", &fresh_tp) ||
      !TopLevelNumber(fresh, "hardware_threads", &fresh_hw) ||
      !TopLevelNumber(base, "throughput_per_s", &base_tp) ||
      !TopLevelNumber(base, "hardware_threads", &base_hw)) {
    std::fprintf(stderr,
                 "--check: missing throughput_per_s/hardware_threads field\n");
    return 1;
  }
  if (fresh_hw != base_hw) {
    std::printf("--check: WARN hardware_threads mismatch (baseline %.0f, "
                "here %.0f); throughput gate skipped\n",
                base_hw, fresh_hw);
    return 0;
  }
  if (base_tp <= 0) {
    std::fprintf(stderr, "--check: baseline throughput_per_s is %.3f\n",
                 base_tp);
    return 1;
  }
  const double floor = (1.0 - kTolerance) * base_tp;
  if (fresh_tp < floor) {
    std::fprintf(stderr,
                 "--check: FAIL single-thread throughput %.1f/s regressed "
                 "beyond %.0f%% of baseline %.1f/s (floor %.1f/s)\n",
                 fresh_tp, 100.0 * kTolerance, base_tp, floor);
    return 1;
  }
  std::printf("--check: ok single-thread throughput %.1f/s vs baseline "
              "%.1f/s (floor %.1f/s)\n",
              fresh_tp, base_tp, floor);
  return 0;
}

}  // namespace
}  // namespace disc::bench

int main(int argc, char** argv) {
  bool large = false;
  bool check = false;
  std::string baseline = "bench/baselines/BENCH_parallel_save.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--large") == 0) {
      large = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--check=", 8) == 0) {
      check = true;
      baseline = argv[i] + 8;
    } else {
      std::fprintf(stderr, "usage: %s [--large] [--check[=BASELINE]]\n",
                   argv[0]);
      return 2;
    }
  }
  const int rc = disc::bench::Run(large);
  if (rc != 0) return rc;
  if (check) {
    return disc::bench::CheckAgainstBaseline(
        disc::bench::BenchOutPath("BENCH_parallel_save.json"), baseline);
  }
  return 0;
}
