// bench_parallel_save — wall-clock speedup of parallel batch outlier saving.
//
// Builds a seeded Gaussian-mixture dataset with injected single-attribute
// errors, then runs the same DiscSaver::SaveAll batch with 1, 2, 4 and 8
// worker threads. Reports seconds and speedup vs. the 1-thread run and
// verifies the results are bit-identical across thread counts (the
// determinism guarantee of SaveAll). A per-outlier latency pass yields
// p50/p99, and a deadline-mode run exercises the anytime degradation path.
// Everything is also written machine-readably to BENCH_parallel_save.json
// in the working directory.
//
// Not a paper figure: this benchmarks the repo's own parallel saving path.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "constraints/distance_constraint.h"
#include "core/disc_saver.h"
#include "core/outlier_saving.h"
#include "core/search_budget.h"
#include "data/generators.h"
#include "index/index_factory.h"
#include "support.h"

namespace disc::bench {
namespace {

struct BatchScenario {
  Relation data;
  DistanceConstraint constraint;
};

/// Five well-separated Gaussian clusters in 6-D with a slice of rows
/// corrupted on 1-2 attributes — enough outliers that the batch dominates
/// the wall clock and the per-outlier searches vary in cost.
BatchScenario MakeScenario(std::uint64_t seed) {
  const std::size_t kDims = 6;
  std::vector<std::vector<double>> centers =
      PlaceClusterCenters(5, kDims, 60.0, 18.0, seed);
  std::vector<ClusterSpec> specs;
  for (const auto& center : centers) {
    specs.push_back({center, 0.8, 360});
  }
  LabeledRelation mixture = GenerateGaussianMixture(specs, seed + 1);

  // Corrupt every 9th row: spike one or two attributes far outside the
  // cluster radius so the row loses its ε-neighbors.
  Rng rng(seed + 2);
  for (std::size_t row = 4; row < mixture.data.size(); row += 9) {
    std::size_t a = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(kDims) - 1));
    mixture.data[row][a] =
        Value(mixture.data[row][a].num() + 25.0 + rng.Uniform() * 10.0);
    if (row % 2 == 0) {
      std::size_t b = (a + 1) % kDims;
      mixture.data[row][b] =
          Value(mixture.data[row][b].num() - 25.0 - rng.Uniform() * 10.0);
    }
  }

  BatchScenario s;
  s.data = std::move(mixture.data);
  s.constraint = {2.0, 6};
  return s;
}

bool SameResults(const std::vector<SaveResult>& a,
                 const std::vector<SaveResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].feasible != b[i].feasible || a[i].adjusted != b[i].adjusted ||
        a[i].cost != b[i].cost ||
        a[i].termination != b[i].termination ||
        a[i].index_queries != b[i].index_queries ||
        !a[i].stats.SameWork(b[i].stats) ||
        !(a[i].adjusted_attributes == b[i].adjusted_attributes)) {
      return false;
    }
  }
  return true;
}

int Run() {
  BatchScenario s = MakeScenario(/*seed=*/7);
  DistanceEvaluator evaluator(s.data.schema());

  std::unique_ptr<NeighborIndex> full_index =
      MakeNeighborIndex(s.data, evaluator, s.constraint.epsilon);
  InlierOutlierSplit split =
      SplitInliersOutliers(s.data, *full_index, s.constraint);
  Relation inliers = s.data.Select(split.inlier_rows);
  std::vector<Tuple> outliers;
  outliers.reserve(split.outlier_rows.size());
  for (std::size_t row : split.outlier_rows) {
    outliers.push_back(s.data[row]);
  }

  std::printf("dataset: %zu tuples, %zu outliers, %zu inliers (eps=%.1f "
              "eta=%zu)\n",
              s.data.size(), outliers.size(), inliers.size(),
              s.constraint.epsilon, s.constraint.eta);

  DiscSaver saver(inliers, evaluator, s.constraint);
  SaveOptions save_options;
  save_options.kappa = 2;

  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Uint(2);
  json.Key("bench").String("parallel_save");
  json.Key("tuples").Uint(s.data.size());
  json.Key("outliers").Uint(outliers.size());
  json.Key("inliers").Uint(inliers.size());
  json.Key("epsilon").Number(s.constraint.epsilon);
  json.Key("eta").Uint(s.constraint.eta);

  // --- Per-outlier latency (sequential, so queueing does not pollute the
  // percentiles) and batch throughput. ---
  std::vector<double> latencies_ms;
  latencies_ms.reserve(outliers.size());
  Timer latency_timer;
  for (const Tuple& outlier : outliers) {
    Timer one;
    SaveResult r = saver.Save(outlier, save_options);
    latencies_ms.push_back(one.Seconds() * 1e3);
    (void)r;
  }
  double latency_total = latency_timer.Seconds();
  double p50 = Percentile(latencies_ms, 50);
  double p99 = Percentile(latencies_ms, 99);
  double throughput = latency_total > 0
                          ? static_cast<double>(outliers.size()) / latency_total
                          : 0;
  std::printf("per-outlier latency: p50 %.3f ms, p99 %.3f ms; "
              "throughput %.1f outliers/s (1 thread)\n",
              p50, p99, throughput);
  json.Key("latency").BeginObject();
  json.Key("p50_ms").Number(p50);
  json.Key("p99_ms").Number(p99);
  json.Key("throughput_per_s").Number(throughput);
  json.EndObject();

  PrintHeader("Parallel batch outlier saving (DiscSaver::SaveAll)");
  PrintRow({"threads", "seconds", "speedup", "saved"});

  json.Key("thread_sweep").BeginArray();
  std::vector<SaveResult> baseline;
  double baseline_seconds = 0;
  bool deterministic = true;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    Timer timer;
    std::vector<SaveResult> results =
        saver.SaveAll(outliers, save_options, pool.get());
    double seconds = timer.Seconds();

    std::size_t saved = 0;
    for (const SaveResult& r : results) {
      if (r.feasible) ++saved;
    }
    if (threads == 1) {
      baseline = results;
      baseline_seconds = seconds;
    } else if (!SameResults(baseline, results)) {
      deterministic = false;
    }
    PrintRow({std::to_string(threads), Fmt(seconds, 3),
              Fmt(baseline_seconds / seconds, 2) + "x",
              std::to_string(saved)});
    json.BeginObject();
    json.Key("threads").Uint(threads);
    json.Key("seconds").Number(seconds);
    json.Key("speedup").Number(seconds > 0 ? baseline_seconds / seconds : 0);
    json.Key("saved").Uint(saved);
    json.EndObject();
  }
  json.EndArray();

  // Aggregate search-work counters of the (bit-identical) batch, from the
  // 1-thread baseline. Schema v2: every work counter deterministic, timing
  // fields excluded by construction (AppendJson sums wall_nanos only).
  SearchStats batch_stats;
  for (const SaveResult& r : baseline) batch_stats.MergeFrom(r.stats);
  json.Key("search_stats").BeginObject();
  AppendSearchStats(&json, batch_stats);
  json.EndObject();
  std::printf("batch work: %llu nodes expanded, %llu index queries, "
              "%llu prop3 + %llu prop5 bounds\n",
              static_cast<unsigned long long>(batch_stats.nodes_expanded),
              static_cast<unsigned long long>(batch_stats.index_queries),
              static_cast<unsigned long long>(batch_stats.prop3_bounds),
              static_cast<unsigned long long>(batch_stats.prop5_bounds));

  std::printf("determinism across thread counts: %s\n",
              deterministic ? "OK (bit-identical)" : "MISMATCH");

  // --- Deadline mode: rerun the batch under an aggressive whole-batch
  // deadline (a quarter of the measured sequential time) and tally how the
  // anytime path degrades. Every record must still be present. ---
  const double deadline_fraction = 0.25;
  auto deadline_ms = static_cast<std::int64_t>(
      latency_total * deadline_fraction * 1e3);
  if (deadline_ms < 1) deadline_ms = 1;
  BatchBudget batch;
  batch.deadline = Deadline::AfterMillis(deadline_ms);
  Timer deadline_timer;
  std::vector<SaveResult> degraded =
      saver.SaveAll(outliers, save_options, nullptr, batch);
  double deadline_seconds = deadline_timer.Seconds();

  std::size_t completed = 0, hit_deadline = 0, saved_any = 0;
  for (const SaveResult& r : degraded) {
    if (r.termination == SaveTermination::kCompleted ||
        r.termination == SaveTermination::kInfeasible) {
      ++completed;
    } else if (r.termination == SaveTermination::kDeadline) {
      ++hit_deadline;
    }
    if (r.feasible) ++saved_any;
  }
  bool all_recorded = degraded.size() == outliers.size();
  std::printf("deadline mode (%lld ms budget): %.3f s wall, %zu/%zu records "
              "(%zu completed, %zu past deadline, %zu saved)\n",
              static_cast<long long>(deadline_ms), deadline_seconds,
              degraded.size(), outliers.size(), completed, hit_deadline,
              saved_any);

  json.Key("deadline_mode").BeginObject();
  json.Key("deadline_ms").Int(deadline_ms);
  json.Key("wall_seconds").Number(deadline_seconds);
  json.Key("records").Uint(degraded.size());
  json.Key("completed").Uint(completed);
  json.Key("past_deadline").Uint(hit_deadline);
  json.Key("saved").Uint(saved_any);
  json.EndObject();

  json.Key("deterministic").Bool(deterministic);
  json.EndObject();
  const std::string json_path = "BENCH_parallel_save.json";
  if (WriteTextFile(json_path, json.str() + "\n")) {
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("hardware threads available: %zu\n",
              ThreadPool::DefaultThreadCount());
  return deterministic && all_recorded ? 0 : 1;
}

}  // namespace
}  // namespace disc::bench

int main() { return disc::bench::Run(); }
