// bench_distance_kernels — columnar flat kernels vs the scalar distance path.
//
// Four sections, on all-numeric Gaussian-mixture data (n >= 50k, m >= 8 in
// the full run):
//   1. ns/pair: full-tuple Distance and threshold DistanceWithin, scalar
//      DistanceEvaluator vs columnar FlatKernel.
//   2. Range-query throughput: BruteForceIndex with the columnar fast path
//      vs the same index with the fast path disabled (the scalar
//      reference), after asserting both return bit-identical neighbor sets.
//   3. SIMD tier sweep: the columnar range scan re-timed with the view
//      forced to each tier the CPU can run (scalar / sse2 / avx2), rows/s
//      each, after asserting every tier's answers match the scalar tier
//      bit for bit (DESIGN.md §12).
//   4. End-to-end SaveAll on the Figure-6 Flight-shaped workload, fast path
//      on vs off, after asserting bit-identical repaired outputs.
//
// Every run also executes the cross-tier parity suite — all FlatKernel
// entry points on random, scaled and edge-value (NaN / ±inf / denormal /
// negative-zero) relations, every runnable tier against the scalar tier —
// and fails hard on any mismatch: bit-identity is the kernels' contract,
// not a perf property.
//
// Flags: --quick shrinks every workload for the CI perf-smoke job; --check
// additionally exits 1 when the columnar path is not faster than the
// scalar path on the all-numeric range workload, or when the AVX2 tier
// does not clear kSimdSpeedupFloor over the scalar tier (the regression
// gates).
//
// Results are printed as tables and written to BENCH_distance_kernels.json.
//
// Not a paper figure: this benchmarks the repo's own distance architecture.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/disc_saver.h"
#include "core/outlier_saving.h"
#include "data/generators.h"
#include "distance/columnar.h"
#include "distance/evaluator.h"
#include "index/brute_force_index.h"
#include "index/index_factory.h"
#include "support.h"

namespace disc::bench {
namespace {

struct KernelConfig {
  bool quick = false;
  bool check = false;
  std::size_t n = 50000;        // rows in the range-query relation
  std::size_t m = 8;            // attributes
  std::size_t pair_queries = 64;   // query tuples in the ns/pair pass
  std::size_t pair_rows = 4096;    // rows evaluated per query tuple
  std::size_t range_queries = 400;  // range queries per path
  double save_scale = 0.008;    // Flight dataset scale for the SaveAll pass
};

Relation MakeNumericWorkload(std::size_t n, std::size_t m,
                             std::uint64_t seed) {
  std::vector<std::vector<double>> centers =
      PlaceClusterCenters(8, m, 100.0, 20.0, seed);
  std::vector<ClusterSpec> specs;
  for (const auto& center : centers) {
    specs.push_back({center, 1.5, n / centers.size()});
  }
  return GenerateGaussianMixture(specs, seed + 1).data;
}

Tuple RandomQueryNear(const Relation& r, Rng* rng) {
  // Perturb a random row so queries land where data lives (realistic
  // range-query selectivity instead of empty answers).
  const Tuple& base = r[rng->NextIndex(r.size())];
  Tuple q = base;
  for (std::size_t a = 0; a < q.size(); ++a) {
    q[a] = Value(q[a].num() + rng->Uniform(-2.0, 2.0));
  }
  return q;
}

/// ns per Distance evaluation, scalar vs columnar, plus the DistanceWithin
/// variants (threshold chosen so most pairs early-exit).
struct PairTimings {
  double scalar_ns = 0;
  double columnar_ns = 0;
  double scalar_within_ns = 0;
  double columnar_within_ns = 0;
  double checksum = 0;  // defeats dead-code elimination
};

PairTimings BenchPairs(const Relation& r, const DistanceEvaluator& ev,
                       const ColumnarView& view, const KernelConfig& cfg) {
  PairTimings t;
  const double eps = 3.0;
  const std::size_t pairs = cfg.pair_queries * cfg.pair_rows;
  Rng rng(7);
  std::vector<std::size_t> query_rows(cfg.pair_queries);
  for (auto& row : query_rows) row = rng.NextIndex(r.size());

  {
    Timer timer;
    double acc = 0;
    for (std::size_t qr : query_rows) {
      for (std::size_t j = 0; j < cfg.pair_rows; ++j) {
        acc += ev.Distance(r[qr], r[j]);
      }
    }
    t.scalar_ns = timer.Seconds() * 1e9 / static_cast<double>(pairs);
    t.checksum += acc;
  }
  {
    Timer timer;
    double acc = 0;
    for (std::size_t qr : query_rows) {
      FlatKernel kernel(view, r[qr]);
      for (std::size_t j = 0; j < cfg.pair_rows; ++j) {
        acc += kernel.Distance(j);
      }
    }
    t.columnar_ns = timer.Seconds() * 1e9 / static_cast<double>(pairs);
    t.checksum -= acc;  // paths agree bit-for-bit, so checksum ends ~0
  }
  {
    Timer timer;
    std::size_t hits = 0;
    for (std::size_t qr : query_rows) {
      for (std::size_t j = 0; j < cfg.pair_rows; ++j) {
        if (ev.DistanceWithin(r[qr], r[j], eps) <= eps) ++hits;
      }
    }
    t.scalar_within_ns = timer.Seconds() * 1e9 / static_cast<double>(pairs);
    t.checksum += static_cast<double>(hits);
  }
  {
    Timer timer;
    std::size_t hits = 0;
    for (std::size_t qr : query_rows) {
      FlatKernel kernel(view, r[qr]);
      for (std::size_t j = 0; j < cfg.pair_rows; ++j) {
        if (kernel.DistanceWithin(j, eps) <= eps) ++hits;
      }
    }
    t.columnar_within_ns = timer.Seconds() * 1e9 / static_cast<double>(pairs);
    t.checksum -= static_cast<double>(hits);
  }
  return t;
}

struct RangeTimings {
  double scalar_qps = 0;
  double columnar_qps = 0;
  double scalar_count_qps = 0;
  double columnar_count_qps = 0;
  double speedup = 0;
  double count_speedup = 0;
  bool identical = true;
};

RangeTimings BenchRange(const Relation& r, const DistanceEvaluator& ev,
                        const KernelConfig& cfg) {
  RangeTimings t;
  // Selective radius: DISC range queries probe an ε-ball, not a cluster
  // dump, so most rows take the early-exit reject path.
  const double eps = 2.5;
  BruteForceIndex fast(r, ev);
  BruteForceIndex scalar(r, ev, /*enable_fast_path=*/false);

  Rng rng(21);
  std::vector<Tuple> queries;
  queries.reserve(cfg.range_queries);
  for (std::size_t i = 0; i < cfg.range_queries; ++i) {
    queries.push_back(RandomQueryNear(r, &rng));
  }

  // Bit-identity spot check before timing anything.
  for (std::size_t i = 0; i < queries.size(); i += 16) {
    std::vector<Neighbor> a = fast.RangeQuery(queries[i], eps);
    std::vector<Neighbor> b = scalar.RangeQuery(queries[i], eps);
    if (a.size() != b.size()) {
      t.identical = false;
      break;
    }
    for (std::size_t j = 0; j < a.size(); ++j) {
      if (a[j].row != b[j].row || a[j].distance != b[j].distance) {
        t.identical = false;
        break;
      }
    }
  }

  std::size_t total = 0;
  {
    Timer timer;
    for (const Tuple& q : queries) total += scalar.RangeQuery(q, eps).size();
    t.scalar_qps = static_cast<double>(cfg.range_queries) / timer.Seconds();
  }
  {
    Timer timer;
    for (const Tuple& q : queries) total += fast.RangeQuery(q, eps).size();
    t.columnar_qps = static_cast<double>(cfg.range_queries) / timer.Seconds();
  }
  {
    Timer timer;
    for (const Tuple& q : queries) total += scalar.CountWithin(q, eps);
    t.scalar_count_qps =
        static_cast<double>(cfg.range_queries) / timer.Seconds();
  }
  {
    Timer timer;
    for (const Tuple& q : queries) total += fast.CountWithin(q, eps);
    t.columnar_count_qps =
        static_cast<double>(cfg.range_queries) / timer.Seconds();
  }
  if (total == 0) std::fprintf(stderr, "warning: empty range answers\n");
  t.speedup = t.columnar_qps / t.scalar_qps;
  t.count_speedup = t.columnar_count_qps / t.scalar_count_qps;
  return t;
}

/// Floor the AVX2 tier must clear over the scalar-tier columnar range scan
/// under --check. The measured margin is well above this (see
/// bench/baselines/BENCH_distance_kernels.json); the floor only catches a
/// tier that silently stopped vectorizing.
constexpr double kSimdSpeedupFloor = 2.5;

/// The tiers this CPU can execute, scalar first (set_simd_tier clamps, so
/// on lesser hardware the sweep simply measures fewer rows).
std::vector<SimdTier> RunnableTiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (DetectedSimdTier() >= SimdTier::kSse2) tiers.push_back(SimdTier::kSse2);
  if (DetectedSimdTier() >= SimdTier::kAvx2) tiers.push_back(SimdTier::kAvx2);
  return tiers;
}

struct TierTimings {
  struct Entry {
    SimdTier tier = SimdTier::kScalar;
    double rows_per_s = 0;
    double speedup = 1.0;  // vs the scalar tier
  };
  std::vector<Entry> entries;
  SimdTier active = SimdTier::kScalar;
  bool identical = true;
};

/// Columnar range-scan throughput per SIMD tier: the same CountWithin scan
/// over the full view, re-dispatched per tier, after asserting the tier's
/// CollectWithin answers match the scalar tier bit for bit.
TierTimings BenchTiers(const Relation& r, ColumnarView* view) {
  TierTimings t;
  t.active = view->simd_tier();
  const double eps = 2.5;
  Rng rng(33);
  std::vector<Tuple> queries;
  for (std::size_t i = 0; i < 8; ++i) {
    queries.push_back(RandomQueryNear(r, &rng));
  }

  view->set_simd_tier(SimdTier::kScalar);
  std::vector<std::vector<std::size_t>> ref_rows(queries.size());
  std::vector<std::vector<double>> ref_dists(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    FlatKernel kernel(*view, queries[i]);
    kernel.CollectWithin(eps, &ref_rows[i], &ref_dists[i]);
  }

  double scalar_rows_per_s = 0;
  for (SimdTier tier : RunnableTiers()) {
    view->set_simd_tier(tier);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      FlatKernel kernel(*view, queries[i]);
      std::vector<std::size_t> rows;
      std::vector<double> dists;
      kernel.CollectWithin(eps, &rows, &dists);
      if (rows != ref_rows[i] || dists != ref_dists[i]) t.identical = false;
    }
    // Repeat the query set until the timing window is long enough to trust.
    std::size_t passes = 0;
    std::size_t kept = 0;
    Timer timer;
    do {
      for (const Tuple& q : queries) {
        FlatKernel kernel(*view, q);
        kept += kernel.CountWithin(eps);
      }
      ++passes;
    } while (timer.Seconds() < 0.2 || passes < 3);
    if (kept == 0) std::fprintf(stderr, "warning: empty tier-scan answers\n");
    TierTimings::Entry e;
    e.tier = tier;
    e.rows_per_s = static_cast<double>(passes * queries.size()) *
                   static_cast<double>(view->rows()) / timer.Seconds();
    if (tier == SimdTier::kScalar) scalar_rows_per_s = e.rows_per_s;
    e.speedup = e.rows_per_s / scalar_rows_per_s;
    t.entries.push_back(e);
  }
  view->set_simd_tier(t.active);
  return t;
}

/// NaN payloads aside, "the same double" for parity purposes: bitwise-equal
/// finite/inf values, or NaN on both sides (distances only ever produce +0,
/// so ±0 aliasing cannot hide a sign bug).
bool SameVal(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

/// Relation of the edge values the vector pre-pass must not mishandle: NaN
/// (all comparisons false — must reach the canonical recompute), ±inf
/// (overflow; inf−inf = NaN against infinite queries), ±huge (squares
/// overflow), denormals, negative zero.
Relation EdgeRelation(std::size_t dims) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double huge = std::numeric_limits<double>::max();
  const double tiny = std::numeric_limits<double>::denorm_min();
  Relation r(Schema::Numeric(dims));
  std::vector<std::vector<double>> rows = {
      std::vector<double>(dims, 0.0),  std::vector<double>(dims, -0.0),
      std::vector<double>(dims, huge), std::vector<double>(dims, -huge),
      std::vector<double>(dims, tiny), std::vector<double>(dims, 1.0),
      std::vector<double>(dims, inf),  std::vector<double>(dims, -inf),
      std::vector<double>(dims, nan),
  };
  rows.push_back(std::vector<double>(dims, 0.0));
  rows.back()[0] = nan;
  rows.push_back(std::vector<double>(dims, 0.25));
  rows.back()[dims - 1] = inf;
  rows.push_back(std::vector<double>(dims, 0.5));
  rows.back()[0] = -inf;
  for (const auto& coords : rows) {
    Tuple t(dims);
    for (std::size_t d = 0; d < dims; ++d) t[d] = Value(coords[d]);
    r.AppendUnchecked(std::move(t));
  }
  return r;
}

/// Every FlatKernel entry point on every runnable tier vs the scalar tier.
bool ParityOn(const Relation& r, const DistanceEvaluator& ev,
              const char* label) {
  auto view = ColumnarView::Build(r, ev);
  if (view == nullptr) {
    std::fprintf(stderr, "parity[%s]: workload ineligible\n", label);
    return false;
  }
  const std::size_t n = r.size();
  const std::size_t m = r.arity();
  AttributeSet subset;
  for (std::size_t a = 0; a < m; a += 2) subset.insert(a);

  Rng rng(5);
  std::vector<Tuple> queries;
  for (int i = 0; i < 3; ++i) queries.push_back(RandomQueryNear(r, &rng));
  queries.push_back(r[0]);        // includes NaN/inf queries on EdgeRelation
  queries.push_back(r[n - 1]);

  bool ok = true;
  const auto mismatch = [&](const char* what, SimdTier tier) {
    std::fprintf(stderr, "parity[%s]: %s mismatch on tier %s\n", label, what,
                 SimdTierName(tier));
    ok = false;
  };
  for (const Tuple& q : queries) {
    for (double eps : {0.0, 2.5, 1e301}) {
      // Materialize every scalar reference value BEFORE switching tiers:
      // FlatKernel dispatches on the view's current tier at call time, so a
      // "reference" call made after set_simd_tier would compare a tier to
      // itself.
      view->set_simd_tier(SimdTier::kScalar);
      FlatKernel ref(*view, q);
      std::vector<std::size_t> ref_rows;
      std::vector<double> ref_dists;
      ref.CollectWithin(eps, &ref_rows, &ref_dists);
      const std::size_t ref_count = ref.CountWithin(eps);
      std::vector<double> ref_fill(n);
      ref.FillDistances(ref_fill.data(), 0, n);
      std::vector<double> ref_attr(n);
      ref.FillAttributeDistances(m / 2, ref_attr.data());
      std::vector<double> ref_dist(n), ref_within(n), ref_on(n),
          ref_on_within(n);
      for (std::size_t row = 0; row < n; ++row) {
        ref_dist[row] = ref.Distance(row);
        ref_within[row] = ref.DistanceWithin(row, eps);
        ref_on[row] = ref.DistanceOn(subset, row);
        ref_on_within[row] = ref.DistanceOnWithin(subset, row, eps);
      }

      for (SimdTier tier : RunnableTiers()) {
        view->set_simd_tier(tier);
        FlatKernel kernel(*view, q);
        std::vector<std::size_t> rows;
        std::vector<double> dists;
        kernel.CollectWithin(eps, &rows, &dists);
        if (rows != ref_rows || dists != ref_dists) {
          mismatch("CollectWithin", tier);
        }
        if (kernel.CountWithin(eps) != ref_count) {
          mismatch("CountWithin", tier);
        }
        std::vector<double> fill(n);
        kernel.FillDistances(fill.data(), 0, n);
        std::vector<double> attr(n);
        kernel.FillAttributeDistances(m / 2, attr.data());
        for (std::size_t row = 0; row < n; ++row) {
          if (!SameVal(fill[row], ref_fill[row])) {
            mismatch("FillDistances", tier);
          }
          if (!SameVal(attr[row], ref_attr[row])) {
            mismatch("FillAttributeDistances", tier);
          }
          if (!SameVal(kernel.Distance(row), ref_dist[row])) {
            mismatch("Distance", tier);
          }
          if (!SameVal(kernel.DistanceWithin(row, eps), ref_within[row])) {
            mismatch("DistanceWithin", tier);
          }
          if (!SameVal(kernel.DistanceOn(subset, row), ref_on[row])) {
            mismatch("DistanceOn", tier);
          }
          if (!SameVal(kernel.DistanceOnWithin(subset, row, eps),
                       ref_on_within[row])) {
            mismatch("DistanceOnWithin", tier);
          }
        }
        if (!ok) return false;  // first mismatch is enough detail
      }
    }
  }
  return ok;
}

DistanceEvaluator ScaledParityEvaluator(const Schema& schema, LpNorm norm) {
  std::vector<std::unique_ptr<AttributeMetric>> metrics;
  for (std::size_t a = 0; a < schema.arity(); ++a) {
    metrics.push_back(std::make_unique<AbsoluteDifferenceMetric>(
        1.0 + 0.25 * static_cast<double>(a)));
  }
  return DistanceEvaluator(schema, std::move(metrics), norm);
}

/// The cross-tier parity suite: random / scaled / wide / edge-value
/// relations under every norm.
bool CheckParity() {
  bool ok = true;
  Relation random = MakeNumericWorkload(257, 6, 3);
  {
    // Break the lane alignment so the masked-tail paths run too (the
    // mixture generator emits a multiple of its 8 clusters).
    Rng rng(6);
    for (int i = 0; i < 3; ++i) {
      Tuple t(6);
      for (std::size_t d = 0; d < 6; ++d) t[d] = Value(rng.Uniform(-10, 10));
      random.AppendUnchecked(std::move(t));
    }
  }
  Relation wide = MakeNumericWorkload(64, 24, 4);
  Relation edge = EdgeRelation(9);
  for (LpNorm norm : {LpNorm::kL2, LpNorm::kL1, LpNorm::kLInf}) {
    ok &= ParityOn(random, DistanceEvaluator(random.schema(), norm), "random");
    ok &= ParityOn(random, ScaledParityEvaluator(random.schema(), norm),
                   "scaled");
    ok &= ParityOn(wide, DistanceEvaluator(wide.schema(), norm), "wide");
    ok &= ParityOn(edge, DistanceEvaluator(edge.schema(), norm), "edge");
  }
  return ok;
}

struct SaveTimings {
  double scalar_seconds = 0;
  double fast_seconds = 0;
  double speedup = 0;
  bool identical = true;
  std::size_t outliers = 0;
  std::size_t saved = 0;
  SearchStats stats;  // aggregate work of the fast-path batch
};

bool SameSaveResults(const std::vector<SaveResult>& a,
                     const std::vector<SaveResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].feasible != b[i].feasible || a[i].adjusted != b[i].adjusted ||
        a[i].cost != b[i].cost || a[i].termination != b[i].termination ||
        !(a[i].adjusted_attributes == b[i].adjusted_attributes)) {
      return false;
    }
  }
  return true;
}

/// DiscSaver::SaveAll on a corrupted Gaussian mixture — the branch-and-bound
/// hot loop the fast path targets, without the detection/split phase (which
/// uses the columnar index in both configurations and would dilute the
/// comparison). Single-threaded so the speedup is the kernel's, not the
/// pool's.
SaveTimings BenchSaveAll(const KernelConfig& cfg) {
  SaveTimings t;
  const std::size_t dims = 6;
  const std::size_t per_cluster = cfg.quick ? 220 : 700;
  std::vector<std::vector<double>> centers =
      PlaceClusterCenters(5, dims, 60.0, 18.0, 7);
  std::vector<ClusterSpec> specs;
  for (const auto& center : centers) specs.push_back({center, 0.8, per_cluster});
  LabeledRelation mixture = GenerateGaussianMixture(specs, 8);
  Rng rng(9);
  for (std::size_t row = 4; row < mixture.data.size(); row += 9) {
    std::size_t a = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(dims) - 1));
    mixture.data[row][a] =
        Value(mixture.data[row][a].num() + 25.0 + rng.Uniform() * 10.0);
  }
  const DistanceConstraint constraint{2.0, 6};

  DistanceEvaluator ev(mixture.data.schema());
  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(mixture.data, ev, constraint.epsilon);
  InlierOutlierSplit split =
      SplitInliersOutliers(mixture.data, *index, constraint);
  Relation inliers = mixture.data.Select(split.inlier_rows);
  std::vector<Tuple> outliers;
  for (std::size_t row : split.outlier_rows) {
    outliers.push_back(mixture.data[row]);
  }
  t.outliers = outliers.size();

  SaveOptions save_options;
  save_options.kappa = 2;
  DiscSaver fast_saver(inliers, ev, constraint);
  DiscSaver scalar_saver(inliers, ev, constraint, /*enable_fast_path=*/false);

  Timer t1;
  std::vector<SaveResult> scalar = scalar_saver.SaveAll(outliers, save_options);
  t.scalar_seconds = t1.Seconds();

  Timer t2;
  std::vector<SaveResult> fast = fast_saver.SaveAll(outliers, save_options);
  t.fast_seconds = t2.Seconds();

  t.speedup = t.scalar_seconds / t.fast_seconds;
  t.identical = SameSaveResults(scalar, fast);
  for (const SaveResult& r : fast) {
    if (r.feasible) ++t.saved;
    t.stats.MergeFrom(r.stats);
  }
  return t;
}

struct PipelineTimings {
  double scalar_seconds = 0;
  double fast_seconds = 0;
  double speedup = 0;
  bool identical = true;
  std::size_t outliers = 0;
};

/// Whole SaveOutliers pipeline (detect + save) on the Flight-shaped paper
/// workload, fast path on vs off — the user-visible end-to-end number.
PipelineTimings BenchPipeline(const KernelConfig& cfg) {
  PipelineTimings t;
  PaperDataset ds = MakePaperDataset("flight", 42, cfg.save_scale);
  DistanceEvaluator ev(ds.dirty.schema());

  OutlierSavingOptions fast_options;
  fast_options.constraint = ds.suggested;
  OutlierSavingOptions scalar_options = fast_options;
  scalar_options.use_columnar_fast_path = false;

  Timer t1;
  SavedDataset scalar = SaveOutliers(ds.dirty, ev, scalar_options);
  t.scalar_seconds = t1.Seconds();

  Timer t2;
  SavedDataset fast = SaveOutliers(ds.dirty, ev, fast_options);
  t.fast_seconds = t2.Seconds();

  t.outliers = fast.outlier_rows.size();
  t.speedup = t.scalar_seconds / t.fast_seconds;

  if (fast.repaired.size() != scalar.repaired.size()) {
    t.identical = false;
  } else {
    for (std::size_t i = 0; i < fast.repaired.size(); ++i) {
      if (!(fast.repaired[i] == scalar.repaired[i])) {
        t.identical = false;
        break;
      }
    }
  }
  return t;
}

int Run(const KernelConfig& cfg) {
  Relation workload = MakeNumericWorkload(cfg.n, cfg.m, 99);
  DistanceEvaluator ev(workload.schema());
  auto view = ColumnarView::Build(workload, ev);
  if (view == nullptr) {
    std::fprintf(stderr, "workload unexpectedly ineligible for columnar\n");
    return 1;
  }

  PrintHeader("Distance kernels: scalar vs columnar (n=" +
              std::to_string(workload.size()) + ", m=" + std::to_string(cfg.m) +
              ")");

  PairTimings pairs = BenchPairs(workload, ev, *view, cfg);
  PrintRow({"metric", "scalar", "columnar", "speedup"}, 14);
  PrintRow({"ns/pair", Fmt(pairs.scalar_ns, 1), Fmt(pairs.columnar_ns, 1),
            Fmt(pairs.scalar_ns / pairs.columnar_ns, 2)},
           14);
  PrintRow({"ns/pair(eps)", Fmt(pairs.scalar_within_ns, 1),
            Fmt(pairs.columnar_within_ns, 1),
            Fmt(pairs.scalar_within_ns / pairs.columnar_within_ns, 2)},
           14);

  RangeTimings range = BenchRange(workload, ev, cfg);
  PrintRow({"range q/s", Fmt(range.scalar_qps, 1), Fmt(range.columnar_qps, 1),
            Fmt(range.speedup, 2)},
           14);
  PrintRow({"count q/s", Fmt(range.scalar_count_qps, 1),
            Fmt(range.columnar_count_qps, 1), Fmt(range.count_speedup, 2)},
           14);
  std::printf("range results bit-identical: %s\n",
              range.identical ? "yes" : "NO");

  TierTimings tiers = BenchTiers(workload, view.get());
  PrintHeader("SIMD tier sweep: columnar range scan (active tier " +
              std::string(SimdTierName(tiers.active)) + ")");
  PrintRow({"tier", "rows/s", "speedup"}, 14);
  for (const TierTimings::Entry& e : tiers.entries) {
    PrintRow({SimdTierName(e.tier), Fmt(e.rows_per_s, 0), Fmt(e.speedup, 2)},
             14);
  }
  std::printf("tier answers bit-identical: %s\n",
              tiers.identical ? "yes" : "NO");

  const bool parity = CheckParity();
  std::printf("cross-tier parity suite (all entry points, edge values): %s\n",
              parity ? "pass" : "FAIL");

  SaveTimings save = BenchSaveAll(cfg);
  PrintHeader("DiscSaver::SaveAll (Gaussian mixture, " +
              std::to_string(save.outliers) + " outliers, " +
              std::to_string(save.saved) + " saved)");
  PrintRow({"path", "seconds", "speedup"}, 14);
  PrintRow({"scalar", Fmt(save.scalar_seconds, 3), "1.00"}, 14);
  PrintRow({"columnar", Fmt(save.fast_seconds, 3), Fmt(save.speedup, 2)}, 14);
  std::printf("save results bit-identical: %s\n",
              save.identical ? "yes" : "NO");

  PipelineTimings pipeline = BenchPipeline(cfg);
  PrintHeader("SaveOutliers pipeline (Flight-shaped, " +
              std::to_string(pipeline.outliers) + " outliers)");
  PrintRow({"path", "seconds", "speedup"}, 14);
  PrintRow({"scalar", Fmt(pipeline.scalar_seconds, 3), "1.00"}, 14);
  PrintRow({"columnar", Fmt(pipeline.fast_seconds, 3),
            Fmt(pipeline.speedup, 2)},
           14);
  std::printf("repaired outputs bit-identical: %s\n",
              pipeline.identical ? "yes" : "NO");

  // The active tier's rows/s is the artifact's headline throughput (what
  // check_bench_regression.py gates, hardware shape permitting).
  double active_rows_per_s = 0;
  for (const TierTimings::Entry& e : tiers.entries) {
    if (e.tier == tiers.active) active_rows_per_s = e.rows_per_s;
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Uint(3);
  json.Key("bench").String("distance_kernels");
  json.Key("quick").Bool(cfg.quick);
  json.Key("n").Uint(workload.size());
  json.Key("m").Uint(cfg.m);
  json.Key("hardware_threads").Uint(WorkStealingPool::DefaultThreadCount());
  json.Key("throughput_per_s").Number(active_rows_per_s);
  json.Key("simd");
  json.BeginObject();
  json.Key("active_tier").String(SimdTierName(tiers.active));
  json.Key("detected_tier").String(SimdTierName(DetectedSimdTier()));
  json.Key("bit_identical").Bool(tiers.identical);
  json.Key("parity").Bool(parity);
  json.Key("tiers").BeginArray();
  for (const TierTimings::Entry& e : tiers.entries) {
    json.BeginObject();
    json.Key("tier").String(SimdTierName(e.tier));
    json.Key("rows_per_s").Number(e.rows_per_s);
    json.Key("speedup").Number(e.speedup);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.Key("pair_ns");
  json.BeginObject();
  json.Key("scalar").Number(pairs.scalar_ns);
  json.Key("columnar").Number(pairs.columnar_ns);
  json.Key("scalar_within").Number(pairs.scalar_within_ns);
  json.Key("columnar_within").Number(pairs.columnar_within_ns);
  json.Key("checksum").Number(pairs.checksum);
  json.EndObject();
  json.Key("range");
  json.BeginObject();
  json.Key("epsilon").Number(2.5);
  json.Key("queries").Uint(cfg.range_queries);
  json.Key("scalar_qps").Number(range.scalar_qps);
  json.Key("columnar_qps").Number(range.columnar_qps);
  json.Key("scalar_count_qps").Number(range.scalar_count_qps);
  json.Key("columnar_count_qps").Number(range.columnar_count_qps);
  json.Key("speedup").Number(range.speedup);
  json.Key("count_speedup").Number(range.count_speedup);
  json.Key("bit_identical").Bool(range.identical);
  json.EndObject();
  json.Key("save_all");
  json.BeginObject();
  json.Key("dataset").String("gaussian_mixture");
  json.Key("outliers").Uint(save.outliers);
  json.Key("saved").Uint(save.saved);
  json.Key("scalar_seconds").Number(save.scalar_seconds);
  json.Key("fast_seconds").Number(save.fast_seconds);
  json.Key("speedup").Number(save.speedup);
  json.Key("bit_identical").Bool(save.identical);
  json.Key("search_stats").BeginObject();
  AppendSearchStats(&json, save.stats);
  json.EndObject();
  json.EndObject();
  json.Key("pipeline");
  json.BeginObject();
  json.Key("dataset").String("flight");
  json.Key("scale").Number(cfg.save_scale);
  json.Key("outliers").Uint(pipeline.outliers);
  json.Key("scalar_seconds").Number(pipeline.scalar_seconds);
  json.Key("fast_seconds").Number(pipeline.fast_seconds);
  json.Key("speedup").Number(pipeline.speedup);
  json.Key("bit_identical").Bool(pipeline.identical);
  json.EndObject();
  json.EndObject();
  const std::string json_path = BenchOutPath("BENCH_distance_kernels.json");
  WriteTextFile(json_path, json.str());
  std::printf("wrote %s\n", json_path.c_str());

  if (!range.identical || !save.identical || !pipeline.identical ||
      !tiers.identical) {
    std::fprintf(stderr, "FAIL: fast path is not bit-identical\n");
    return 1;
  }
  if (!parity) {
    std::fprintf(stderr, "FAIL: cross-tier parity suite\n");
    return 1;
  }
  if (cfg.check && range.speedup < 1.0) {
    std::fprintf(stderr,
                 "FAIL: columnar range path slower than scalar (%.2fx)\n",
                 range.speedup);
    return 1;
  }
  if (cfg.check && DetectedSimdTier() >= SimdTier::kAvx2) {
    double avx2_speedup = 0;
    for (const TierTimings::Entry& e : tiers.entries) {
      if (e.tier == SimdTier::kAvx2) avx2_speedup = e.speedup;
    }
    if (avx2_speedup < kSimdSpeedupFloor) {
      std::fprintf(stderr,
                   "FAIL: avx2 tier below %.1fx over the scalar-tier "
                   "columnar scan (%.2fx)\n",
                   kSimdSpeedupFloor, avx2_speedup);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace disc::bench

int main(int argc, char** argv) {
  disc::bench::KernelConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.quick = true;
      cfg.n = 8000;
      cfg.pair_queries = 16;
      cfg.pair_rows = 2048;
      cfg.range_queries = 60;
      cfg.save_scale = 0.003;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      cfg.check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--check]\n", argv[0]);
      return 2;
    }
  }
  return disc::bench::Run(cfg);
}
