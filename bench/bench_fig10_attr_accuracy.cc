// Figure 10 reproduction: accuracy of attribute adjustment / explanation
// for outliers with injected errors on a Letter-shaped dataset (n = 1000,
// m = 10): (a)/(b) Jaccard of the identified error attributes vs eps and
// eta, for DISC, SSE and the cleaning baselines; (c)/(d) the number of
// modified attributes; (e)/(f) the adjustment cost (magnitude).
//
// Expected shape (paper): DISC's Jaccard slightly above SSE and clearly
// above the cleaners; DISC modifies ~2 of 10 attributes, cleaners like
// HoloClean many more with much larger adjustment cost (over-change).

#include <algorithm>
#include <cmath>

#include "cleaning/sse.h"
#include "eval/repair_metrics.h"
#include "eval/set_metrics.h"
#include "support.h"

namespace {

using namespace disc;
using namespace disc::bench;

/// Per-method accuracy aggregates at one (eps, eta) setting.
struct MethodStats {
  double jaccard = 0;
  double modified_attrs = 0;
  double adjust_cost = 0;
};

AttributeSet TruthAttrs(const PaperDataset& ds, std::size_t row) {
  AttributeSet truth;
  for (const CellError& e : ds.errors) {
    if (e.row == row) truth.insert(e.attribute);
  }
  return truth;
}

MethodStats StatsFromRepair(const PaperDataset& ds,
                            const DistanceEvaluator& evaluator,
                            const Relation& repaired) {
  MethodStats stats;
  std::size_t measured = 0;
  for (std::size_t row : ds.dirty_rows) {
    AttributeSet truth = TruthAttrs(ds, row);
    if (truth.empty()) continue;
    AttributeSet modified = ModifiedAttributes(ds.dirty, repaired, row);
    stats.jaccard += JaccardIndex(truth, modified);
    stats.modified_attrs += static_cast<double>(modified.size());
    stats.adjust_cost += evaluator.Distance(ds.dirty[row], repaired[row]);
    ++measured;
  }
  if (measured > 0) {
    double d = static_cast<double>(measured);
    stats.jaccard /= d;
    stats.modified_attrs /= d;
    stats.adjust_cost /= d;
  }
  return stats;
}

MethodStats SseStats(const PaperDataset& ds,
                     const DistanceEvaluator& evaluator,
                     const DistanceConstraint& c) {
  // SSE explains attributes but adjusts nothing: cost / #modified are n/a.
  (void)c;
  MethodStats stats;
  std::size_t measured = 0;
  // Reference inliers: everything except the dirty rows.
  std::vector<std::size_t> inlier_rows;
  for (std::size_t row = 0; row < ds.dirty.size(); ++row) {
    if (std::find(ds.dirty_rows.begin(), ds.dirty_rows.end(), row) ==
        ds.dirty_rows.end()) {
      inlier_rows.push_back(row);
    }
  }
  Relation inliers = ds.dirty.Select(inlier_rows);
  for (std::size_t row : ds.dirty_rows) {
    AttributeSet truth = TruthAttrs(ds, row);
    if (truth.empty()) continue;
    AttributeSet explained =
        ExplainOutlierSse(inliers, evaluator, ds.dirty[row]);
    stats.jaccard += JaccardIndex(truth, explained);
    stats.modified_attrs += static_cast<double>(explained.size());
    ++measured;
  }
  if (measured > 0) {
    stats.jaccard /= static_cast<double>(measured);
    stats.modified_attrs /= static_cast<double>(measured);
  }
  return stats;
}

void PrintSweepRow(const std::string& label, const PaperDataset& ds,
                   const DistanceEvaluator& evaluator,
                   const DistanceConstraint& c) {
  // DISC.
  OutlierSavingOptions disc_opts;
  disc_opts.constraint = c;
  disc_opts.save.kappa = 2;
  SavedDataset saved = SaveOutliers(ds.dirty, evaluator, disc_opts);
  MethodStats disc_stats = StatsFromRepair(ds, evaluator, saved.repaired);
  // SSE.
  MethodStats sse_stats = SseStats(ds, evaluator, c);
  // DORC.
  DorcOptions dorc_opts;
  dorc_opts.constraint = c;
  dorc_opts.use_index = true;
  MethodStats dorc_stats =
      StatsFromRepair(ds, evaluator, Dorc(ds.dirty, evaluator, dorc_opts));
  // HoloClean.
  HolocleanOptions holo_opts;
  holo_opts.constraint = c;
  MethodStats holo_stats = StatsFromRepair(
      ds, evaluator, Holoclean(ds.dirty, evaluator, holo_opts));
  // ERACER.
  MethodStats eracer_stats =
      StatsFromRepair(ds, evaluator, Eracer(ds.dirty, evaluator));

  PrintRow({label, Fmt(disc_stats.jaccard), Fmt(sse_stats.jaccard),
            Fmt(dorc_stats.jaccard), Fmt(holo_stats.jaccard),
            Fmt(eracer_stats.jaccard)});
  PrintRow({"  #attrs", Fmt(disc_stats.modified_attrs, 2),
            Fmt(sse_stats.modified_attrs, 2),
            Fmt(dorc_stats.modified_attrs, 2),
            Fmt(holo_stats.modified_attrs, 2),
            Fmt(eracer_stats.modified_attrs, 2)});
  PrintRow({"  cost", Fmt(disc_stats.adjust_cost, 2), "-",
            Fmt(dorc_stats.adjust_cost, 2), Fmt(holo_stats.adjust_cost, 2),
            Fmt(eracer_stats.adjust_cost, 2)});
}

/// A Letter-like dataset reduced to 10 attributes, n = 1000, as in Fig. 10.
PaperDataset MakeFig10Dataset() {
  PaperDataset base = MakePaperDataset("letter", 42, 0.05);
  // Project to the first 10 attributes.
  std::vector<AttributeDef> defs;
  for (std::size_t a = 0; a < 10; ++a) {
    defs.push_back(base.dirty.schema().attribute(a));
  }
  Schema schema(defs);
  PaperDataset out;
  out.name = "letter10";
  out.labels = base.labels;
  out.dirty_rows = base.dirty_rows;
  out.natural_outlier_rows = base.natural_outlier_rows;
  out.clean = Relation(schema);
  out.dirty = Relation(schema);
  for (std::size_t row = 0; row < base.dirty.size(); ++row) {
    Tuple ct(10);
    Tuple dt(10);
    for (std::size_t a = 0; a < 10; ++a) {
      ct[a] = base.clean[row][a];
      dt[a] = base.dirty[row][a];
    }
    out.clean.AppendUnchecked(std::move(ct));
    out.dirty.AppendUnchecked(std::move(dt));
  }
  for (const CellError& e : base.errors) {
    if (e.attribute < 10) out.errors.push_back(e);
  }
  // Drop dirty rows whose only errors were in projected-away attributes.
  std::vector<std::size_t> kept;
  for (std::size_t row : out.dirty_rows) {
    for (const CellError& e : out.errors) {
      if (e.row == row) {
        kept.push_back(row);
        break;
      }
    }
  }
  out.dirty_rows = kept;
  out.suggested = base.suggested;
  out.suggested.epsilon = base.suggested.epsilon * std::sqrt(10.0 / 16.0);
  return out;
}

}  // namespace

int main() {
  PaperDataset ds = MakeFig10Dataset();
  DistanceEvaluator evaluator(ds.dirty.schema());
  std::printf("letter-shaped, n=%zu m=%zu, %zu dirty rows\n",
              ds.dirty.size(), ds.dirty.arity(), ds.dirty_rows.size());

  PrintHeader("Figure 10(a)(c)(e): sweep of eps at fixed eta");
  PrintRow({"eps", "DISC", "SSE", "DORC", "HoloClean", "ERACER"});
  for (double factor : {0.8, 1.0, 1.2}) {
    DistanceConstraint c = ds.suggested;
    c.epsilon *= factor;
    PrintSweepRow(Fmt(c.epsilon, 2), ds, evaluator, c);
  }

  PrintHeader("Figure 10(b)(d)(f): sweep of eta at fixed eps");
  PrintRow({"eta", "DISC", "SSE", "DORC", "HoloClean", "ERACER"});
  for (double factor : {0.66, 1.0, 1.5}) {
    DistanceConstraint c = ds.suggested;
    c.eta = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(ds.suggested.eta) *
                                    factor));
    PrintSweepRow(std::to_string(c.eta), ds, evaluator, c);
  }

  std::printf(
      "\nShape check vs paper Fig. 10: DISC Jaccard >= SSE > cleaners; DISC "
      "modifies\n~2 of 10 attributes at small cost; DORC swaps whole tuples "
      "and HoloClean\nre-decides many cells — both with far higher #attrs "
      "and cost.\n");
  return 0;
}
