// Figure 6 reproduction: scalability in the number of tuples n on the
// Flight-shaped dataset (m = 3): clustering F1 after repair and the repair
// time, for DISC, the Exact algorithm, DORC, ERACER, HoloClean, Holistic.
//
// Expected shape (paper): DISC/ERACER/HoloClean time grows near-linearly;
// the pairwise DORC grows quadratically and hits the time cutoff first; the
// Exact algorithm beats DISC slightly on F1 at a much higher (still
// linear-in-n) time.

#include "core/exact_saver.h"
#include "support.h"

namespace {

using namespace disc;
using namespace disc::bench;

constexpr double kCutoffSeconds = 60.0;

struct ExactOutcome {
  double f1 = 0;
  double seconds = 0;
  bool timed_out = false;
};

ExactOutcome RunExact(const PaperDataset& ds,
                      const DistanceEvaluator& evaluator) {
  ExactOutcome out;
  Timer timer;
  OutlierSavingOptions options;
  options.constraint = ds.suggested;
  options.use_exact = true;
  // Candidate budget keeps a single outlier from consuming the cutoff by
  // itself. With continuous domains d ≈ n, the optimal single-attribute
  // fix is explored within the first ~d candidates, so the budget mostly
  // trims the exhaustive tail (the paper's Exact shows the same trade:
  // better F1 at much higher time).
  options.exact_max_candidates = 25000;
  SavedDataset saved = SaveOutliers(ds.dirty, evaluator, options);
  out.seconds = timer.Seconds();
  out.timed_out = out.seconds > kCutoffSeconds;
  out.f1 = ScoreDbscan(saved.repaired, evaluator, ds.suggested, ds.labels).f1;
  return out;
}

}  // namespace

int main() {
  PrintHeader("Figure 6: scalability in n (Flight-shaped, m=3)");
  PrintRow({"n", "F1_DISC", "F1_Exact", "F1_DORC", "t_DISC", "t_Exact",
            "t_DORC", "t_ERACER", "t_HoloCl", "t_Holist"});

  bool dorc_cut = false;
  // Start at n = 200: below that, clusters hold fewer members than η = 31
  // and every method degenerates.
  for (double scale : {0.001, 0.002, 0.004, 0.008, 0.016}) {
    PaperDataset ds = MakePaperDataset("flight", 42, scale);
    DistanceEvaluator evaluator(ds.dirty.schema());

    Treatment disc_t = RunDisc(ds, evaluator);
    double f1_disc =
        ScoreDbscan(disc_t.data, evaluator, ds.suggested, ds.labels).f1;

    ExactOutcome exact = RunExact(ds, evaluator);

    // DORC pairwise, with the paper-style cutoff once it explodes.
    std::string f1_dorc = "-";
    std::string t_dorc = ">cutoff";
    if (!dorc_cut) {
      DorcOptions dorc_opts;
      dorc_opts.constraint = ds.suggested;
      Timer timer;
      Relation dorc = Dorc(ds.dirty, evaluator, dorc_opts);
      double secs = timer.Seconds();
      f1_dorc =
          Fmt(ScoreDbscan(dorc, evaluator, ds.suggested, ds.labels).f1);
      t_dorc = Fmt(secs, 3);
      if (secs > kCutoffSeconds) dorc_cut = true;
    }

    Timer t1;
    Relation eracer = Eracer(ds.dirty, evaluator);
    double t_eracer = t1.Seconds();
    (void)eracer;

    Timer t2;
    HolocleanOptions hopts;
    hopts.constraint = ds.suggested;
    Relation holo = Holoclean(ds.dirty, evaluator, hopts);
    double t_holo = t2.Seconds();
    (void)holo;

    Timer t3;
    Relation holistic = Holistic(ds.dirty, evaluator);
    double t_holistic = t3.Seconds();
    (void)holistic;

    PrintRow({std::to_string(ds.dirty.size()), Fmt(f1_disc),
              exact.timed_out ? ">cutoff" : Fmt(exact.f1), f1_dorc,
              Fmt(disc_t.seconds, 3),
              exact.timed_out ? ">cutoff" : Fmt(exact.seconds, 3), t_dorc,
              Fmt(t_eracer, 3), Fmt(t_holo, 3), Fmt(t_holistic, 3)});
  }

  std::printf(
      "\nShape check vs paper Fig. 6: t_DORC grows ~quadratically in n (the "
      "published\nILP DORC additionally pays a large constant, which is what "
      "the paper's one-hour\ncutoff reflects); Exact's time dominates "
      "DISC's at comparable F1.\n");
  return 0;
}
