// Figure 7 reproduction: scalability in the number of attributes m on the
// Spam-shaped dataset (n fixed): clustering F1 after repair and the repair
// time, for DISC (kappa-restricted approximation) and the Exact algorithm,
// plus the baselines' time.
//
// Expected shape (paper): the Exact algorithm's time explodes exponentially
// in m and hits the cutoff quickly; DISC's kappa-restricted search stays
// polynomial (m^{kappa+1} n) while losing little accuracy.

#include <cmath>

#include "core/exact_saver.h"
#include "support.h"

namespace {

using namespace disc;
using namespace disc::bench;

constexpr double kCutoffSeconds = 45.0;

/// Projects a dataset onto its first `m` attributes (labels preserved).
PaperDataset ProjectAttributes(const PaperDataset& ds, std::size_t m) {
  PaperDataset out;
  out.name = ds.name;
  out.labels = ds.labels;
  out.dirty_rows = ds.dirty_rows;
  out.natural_outlier_rows = ds.natural_outlier_rows;

  std::vector<AttributeDef> defs;
  for (std::size_t a = 0; a < m; ++a) {
    defs.push_back(ds.dirty.schema().attribute(a));
  }
  Schema schema(defs);
  out.clean = Relation(schema);
  out.dirty = Relation(schema);
  for (std::size_t row = 0; row < ds.dirty.size(); ++row) {
    Tuple ct(m);
    Tuple dt(m);
    for (std::size_t a = 0; a < m; ++a) {
      ct[a] = ds.clean[row][a];
      dt[a] = ds.dirty[row][a];
    }
    out.clean.AppendUnchecked(std::move(ct));
    out.dirty.AppendUnchecked(std::move(dt));
  }
  for (const CellError& e : ds.errors) {
    if (e.attribute < m) out.errors.push_back(e);
  }
  // Recalibrate (eps, eta) for the projected space.
  DistanceEvaluator evaluator(schema);
  // Reuse the library's calibration by re-making via suggested epsilon from
  // the full dataset scaled by sqrt(m / full_m) — good enough for a sweep.
  out.suggested = ds.suggested;
  out.suggested.epsilon =
      ds.suggested.epsilon *
      std::sqrt(static_cast<double>(m) /
                static_cast<double>(ds.dirty.arity()));
  return out;
}

}  // namespace

int main() {
  // Spam-shaped base: n ≈ 460, m = 57.
  PaperDataset base = MakePaperDataset("spam", 42, 0.1);

  PrintHeader("Figure 7: scalability in m (Spam-shaped)");
  PrintRow({"m", "F1_DISC", "F1_Exact", "t_DISC", "t_Exact"});

  bool exact_cut = false;
  for (std::size_t m : {2u, 3u, 4u, 8u, 16u, 32u, 57u}) {
    if (m > base.dirty.arity()) continue;
    PaperDataset ds = ProjectAttributes(base, m);
    DistanceEvaluator evaluator(ds.dirty.schema());

    Treatment disc_t = RunDisc(ds, evaluator);
    double f1_disc =
        ScoreDbscan(disc_t.data, evaluator, ds.suggested, ds.labels).f1;

    std::string f1_exact = ">cutoff";
    std::string t_exact = ">cutoff";
    if (!exact_cut && m <= 4) {
      Timer timer;
      OutlierSavingOptions options;
      options.constraint = ds.suggested;
      options.use_exact = true;
      options.exact_max_candidates = 50000;
      SavedDataset saved = SaveOutliers(ds.dirty, evaluator, options);
      double secs = timer.Seconds();
      f1_exact =
          Fmt(ScoreDbscan(saved.repaired, evaluator, ds.suggested, ds.labels)
                  .f1);
      t_exact = Fmt(secs, 3);
      if (secs > kCutoffSeconds) exact_cut = true;
    } else {
      exact_cut = true;  // exponential blow-up: O(d^m n)
    }

    PrintRow({std::to_string(m), Fmt(f1_disc), f1_exact,
              Fmt(disc_t.seconds, 3), t_exact});
  }

  std::printf(
      "\nShape check vs paper Fig. 7: Exact hits its exponential wall by "
      "small m;\nDISC's kappa-restricted time grows polynomially across the "
      "full 57 attributes.\n");
  return 0;
}
