// Figure 5 reproduction: the distribution of the number of ε-neighbors for
// several ε values on the Letter- and Flight-shaped datasets, with and
// without sampling (full / 10% / 1%), plus the fitted Poisson rate λε and
// the (ε, η) reading the paper takes from these plots.
//
// Expected shape (paper): neighbor counts follow a Poisson-like unimodal
// distribution; small ε piles mass at low counts (too many "outliers"),
// large ε spreads mass high (no violations detectable); a moderate ε
// leaves a small left tail of genuine outliers. A 10% sample reproduces
// the distribution.

#include <map>
#include <memory>

#include "common/random.h"
#include "constraints/poisson.h"
#include "index/index_factory.h"
#include "support.h"

namespace {

using namespace disc;
using namespace disc::bench;

void PrintDistribution(const PaperDataset& ds, double epsilon,
                       double sample_rate, std::uint64_t seed) {
  DistanceEvaluator evaluator(ds.dirty.schema());
  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(ds.dirty, evaluator, epsilon);

  std::vector<std::size_t> rows;
  Rng rng(seed);
  if (sample_rate < 1.0) {
    auto k = static_cast<std::size_t>(sample_rate *
                                      static_cast<double>(ds.dirty.size()));
    rows = rng.SampleIndices(ds.dirty.size(), std::max<std::size_t>(k, 10));
  } else {
    rows.resize(ds.dirty.size());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  }

  Timer timer;
  std::vector<std::size_t> counts =
      NeighborCounts(ds.dirty, *index, epsilon, &rows);
  double seconds = timer.Seconds();

  double mean = 0;
  std::size_t max_count = 0;
  for (std::size_t c : counts) {
    mean += static_cast<double>(c);
    max_count = std::max(max_count, c);
  }
  mean /= static_cast<double>(counts.size());

  PoissonModel model(mean);
  std::size_t eta = model.LargestEtaWithConfidence(0.99);

  // Histogram over 12 buckets.
  const std::size_t buckets = 12;
  std::vector<std::size_t> hist(buckets, 0);
  for (std::size_t c : counts) {
    std::size_t b = max_count == 0
                        ? 0
                        : std::min(buckets - 1, c * buckets / (max_count + 1));
    ++hist[b];
  }

  std::printf("eps=%-7.2f sample=%-5.2f lambda_eps=%-8.2f eta(0.99)=%-4zu "
              "time=%.3fs\n  hist[counts 0..%zu]:",
              epsilon, sample_rate, mean, eta, seconds, max_count);
  for (std::size_t h : hist) std::printf(" %zu", h);
  std::printf("\n");
}

}  // namespace

int main() {
  {
    PaperDataset letter = MakePaperDataset("letter", 42, 0.05);
    PrintHeader("Figure 5(a): Letter-shaped, neighbor-count distribution");
    for (double factor : {0.8, 1.0, 1.2}) {
      PrintDistribution(letter, letter.suggested.epsilon * factor, 1.0, 1);
    }
    PrintHeader("Figure 5(c): Letter-shaped, with sampling");
    for (double rate : {1.0, 0.1, 0.01}) {
      PrintDistribution(letter, letter.suggested.epsilon, rate, 2);
    }
  }
  {
    PaperDataset flight = MakePaperDataset("flight", 42, 0.01);
    PrintHeader("Figure 5(b): Flight-shaped, neighbor-count distribution");
    for (double factor : {0.5, 1.0, 1.5}) {
      PrintDistribution(flight, flight.suggested.epsilon * factor, 1.0, 3);
    }
    PrintHeader("Figure 5(d): Flight-shaped, with sampling");
    for (double rate : {1.0, 0.1, 0.01}) {
      PrintDistribution(flight, flight.suggested.epsilon, rate, 4);
    }
  }

  std::printf(
      "\nShape check vs paper Fig. 5: unimodal counts; the histogram and "
      "the\nfitted lambda/eta are stable under 10%% sampling, and the "
      "sampled pass is faster.\n");
  return 0;
}
