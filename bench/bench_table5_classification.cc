// Table 5 reproduction: decision-tree classification F1 (5-fold CV) over
// raw data vs data treated by DISC / DORC / ERACER / HoloClean / Holistic,
// across the 7 classification datasets of Table 1 (no GPS).
//
// Expected shape (paper): DISC yields the best classification F1 on every
// dataset; general-purpose cleaners sometimes fall below Raw.

#include "ml/cross_validation.h"
#include "support.h"

int main() {
  using namespace disc;
  using namespace disc::bench;

  const std::vector<std::string> datasets = {"iris",  "seeds", "wifi",
                                             "yeast", "letter", "flight",
                                             "spam"};

  PrintHeader("Table 5: decision-tree F1 (5-fold CV)");
  PrintRow({"Data", "Raw", "DISC", "DORC", "ERACER", "HoloClean",
            "Holistic"});

  for (const std::string& name : datasets) {
    PaperDataset ds = MakePaperDataset(name, 42, BenchScaleFor(name));
    DistanceEvaluator evaluator(ds.dirty.schema());
    std::vector<Treatment> treatments = RunAllTreatments(ds, evaluator);

    std::vector<std::string> row{name};
    for (const Treatment& t : treatments) {
      std::vector<std::vector<double>> features;
      RelationToDataset(t.data, ds.labels, &features);
      ClassificationScores scores = CrossValidateTree(features, ds.labels, 5);
      row.push_back(Fmt(scores.macro_f1));
    }
    PrintRow(row);
  }

  std::printf(
      "\nShape check vs paper Table 5: DISC column highest per row; some "
      "cleaners\n(ERACER/Holistic) may score below Raw — inaccurate "
      "cleaning hurts training.\n");
  return 0;
}
