// Figure 4 reproduction: clustering F1 / precision / recall as functions of
// (a) the distance threshold ε at fixed η and (b) the neighbor threshold η
// at fixed ε, on a Letter-shaped dataset (m = 16, n = 1000), for DISC and
// DORC; ERACER / HoloClean / Holistic are parameter-free baselines (flat
// lines).
//
// Expected shape (paper): an interior optimum in both sweeps — small ε
// (or large η) over-changes, large ε (or small η) misses errors; DISC above
// DORC throughout.

#include "support.h"

namespace {

using namespace disc;
using namespace disc::bench;

ClusterScores DiscAt(const PaperDataset& ds,
                     const DistanceEvaluator& evaluator,
                     const DistanceConstraint& c) {
  OutlierSavingOptions options;
  options.constraint = c;
  options.save.kappa = 2;
  SavedDataset saved = SaveOutliers(ds.dirty, evaluator, options);
  return ScoreDbscan(saved.repaired, evaluator, c, ds.labels);
}

ClusterScores DorcAt(const PaperDataset& ds,
                     const DistanceEvaluator& evaluator,
                     const DistanceConstraint& c) {
  DorcOptions options;
  options.constraint = c;
  options.use_index = true;  // sweep speed; accuracy identical
  Relation repaired = Dorc(ds.dirty, evaluator, options);
  return ScoreDbscan(repaired, evaluator, c, ds.labels);
}

}  // namespace

int main() {
  PaperDataset ds = MakePaperDataset("letter", 42, 0.05);  // n = 1000, m = 16
  DistanceEvaluator evaluator(ds.dirty.schema());

  // Parameter-free baselines, evaluated once at the calibrated constraint.
  std::vector<Treatment> all = RunAllTreatments(ds, evaluator, true);
  double eracer_f1 = 0;
  double holo_f1 = 0;
  double holistic_f1 = 0;
  for (const Treatment& t : all) {
    double f1 = ScoreDbscan(t.data, evaluator, ds.suggested, ds.labels).f1;
    if (t.name == "ERACER") eracer_f1 = f1;
    if (t.name == "HoloClean") holo_f1 = f1;
    if (t.name == "Holistic") holistic_f1 = f1;
  }

  PrintHeader("Figure 4(a): sweep of eps at fixed eta");
  std::printf("(eta fixed at %zu; ERACER=%.3f HoloClean=%.3f Holistic=%.3f "
              "as flat baselines)\n",
              ds.suggested.eta, eracer_f1, holo_f1, holistic_f1);
  PrintRow({"eps", "DISC_F1", "DISC_P", "DISC_R", "DORC_F1"});
  for (double factor : {0.6, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5}) {
    DistanceConstraint c = ds.suggested;
    c.epsilon *= factor;
    ClusterScores d = DiscAt(ds, evaluator, c);
    ClusterScores o = DorcAt(ds, evaluator, c);
    PrintRow({Fmt(c.epsilon, 2), Fmt(d.f1), Fmt(d.precision), Fmt(d.recall),
              Fmt(o.f1)});
  }

  PrintHeader("Figure 4(b): sweep of eta at fixed eps");
  std::printf("(eps fixed at %.2f)\n", ds.suggested.epsilon);
  PrintRow({"eta", "DISC_F1", "DISC_P", "DISC_R", "DORC_F1"});
  for (double factor : {0.33, 0.66, 1.0, 1.33, 1.66, 2.0}) {
    DistanceConstraint c = ds.suggested;
    c.eta = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(ds.suggested.eta) *
                                    factor));
    ClusterScores d = DiscAt(ds, evaluator, c);
    ClusterScores o = DorcAt(ds, evaluator, c);
    PrintRow({std::to_string(c.eta), Fmt(d.f1), Fmt(d.precision),
              Fmt(d.recall), Fmt(o.f1)});
  }

  std::printf(
      "\nShape check vs paper Fig. 4: interior maximum near the calibrated "
      "(eps, eta);\nboth extremes lose accuracy; DISC >= DORC across the "
      "sweep.\n");
  return 0;
}
