#ifndef DISC_BENCH_SUPPORT_H_
#define DISC_BENCH_SUPPORT_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "clustering/dbscan.h"
#include "common/json_writer.h"
#include "cleaning/dorc.h"
#include "cleaning/eracer.h"
#include "cleaning/holistic.h"
#include "cleaning/holoclean.h"
#include "core/outlier_saving.h"
#include "data/datasets.h"
#include "eval/clustering_metrics.h"

namespace disc::bench {

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  /// Seconds since construction or the last Reset().
  double Seconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The dataset scale factors used throughout the bench harness. The paper
/// ran full-size datasets on a server; we shrink row counts (structure
/// preserved) to keep the whole suite runnable on one core in minutes.
double BenchScaleFor(const std::string& dataset);

/// The κ (max adjustable attributes) used per dataset: errors touch 1-2
/// attributes by construction, and κ keeps DISC's search polynomial on
/// wide schemas (§3.3.3).
std::size_t BenchKappaFor(const std::string& dataset);

/// One treatment of a dirty dataset: its name, the resulting relation, and
/// how long the repair took (0 for Raw).
struct Treatment {
  std::string name;
  Relation data;
  double seconds = 0;
};

/// Runs Raw / DISC / DORC / ERACER / HoloClean / Holistic on the dataset's
/// dirty relation, timing each. DORC uses the pairwise O(n²) formulation
/// faithful to its paper (set `fast_dorc` to use the indexed variant).
std::vector<Treatment> RunAllTreatments(const PaperDataset& ds,
                                        const DistanceEvaluator& evaluator,
                                        bool fast_dorc = false);

/// Runs just DISC (convenience for sweeps).
Treatment RunDisc(const PaperDataset& ds, const DistanceEvaluator& evaluator);

/// Clustering scores of DBSCAN over `data` against the dataset labels.
struct ClusterScores {
  double f1 = 0;
  double precision = 0;
  double recall = 0;
  double nmi = 0;
  double ari = 0;
};
ClusterScores ScoreDbscan(const Relation& data,
                          const DistanceEvaluator& evaluator,
                          const DistanceConstraint& constraint,
                          const std::vector<int>& truth_labels);

/// Fixed-width table printing helpers.
void PrintHeader(const std::string& title);
void PrintRow(const std::vector<std::string>& cells, int width = 10);
std::string Fmt(double v, int decimals = 4);

/// Nearest-rank percentile of a sample; `p` in [0, 100]. Sorts a copy.
/// Returns 0 on an empty sample.
double Percentile(std::vector<double> values, double p);

/// The streaming JSON writer for machine-readable bench artifacts
/// (BENCH_*.json) — now the shared disc::JsonWriter (common/json_writer.h),
/// also used by the metrics and trace exposition, so every JSON artifact in
/// the repo renders identically.
using JsonWriter = ::disc::JsonWriter;

/// Appends `stats`' work counters (plus wall_nanos) as keys of the
/// currently open JSON object — the shared bench schema for search-work
/// accounting.
void AppendSearchStats(JsonWriter* json, const SearchStats& stats);

/// Writes `content` to `path`, truncating. Returns false (and prints to
/// stderr) on failure — benches treat the JSON artifact as best-effort.
bool WriteTextFile(const std::string& path, const std::string& content);

/// Where a generated BENCH_*.json artifact should land: `$DISC_BENCH_OUT`
/// when set, else `bench/out` relative to the current directory (gitignored;
/// checked-in baselines live separately in bench/baselines/). Creates the
/// directory if needed and returns `<dir>/<filename>`; falls back to the
/// bare filename when the directory cannot be created.
std::string BenchOutPath(const std::string& filename);

}  // namespace disc::bench

#endif  // DISC_BENCH_SUPPORT_H_
