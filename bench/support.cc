#include "support.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "common/stringutil.h"

namespace disc::bench {

double BenchScaleFor(const std::string& dataset) {
  if (dataset == "iris") return 1.0;        // 150
  if (dataset == "seeds") return 1.0;       // 210
  if (dataset == "wifi") return 0.25;       // 500
  if (dataset == "yeast") return 0.4;       // 520
  if (dataset == "letter") return 0.05;     // 1000
  if (dataset == "flight") return 0.005;    // 1000
  if (dataset == "spam") return 0.1;        // 460
  if (dataset == "gps") return 0.12;        // 975
  if (dataset == "restaurant") return 0.5;  // 432
  return 0.1;
}

std::size_t BenchKappaFor(const std::string& dataset) {
  if (dataset == "spam") return 1;    // m = 57
  if (dataset == "letter") return 2;  // m = 16
  return 2;
}

Treatment RunDisc(const PaperDataset& ds, const DistanceEvaluator& evaluator) {
  Treatment t;
  t.name = "DISC";
  OutlierSavingOptions options;
  options.constraint = ds.suggested;
  options.save.kappa = BenchKappaFor(ds.name);
  Timer timer;
  SavedDataset saved = SaveOutliers(ds.dirty, evaluator, options);
  t.seconds = timer.Seconds();
  t.data = std::move(saved.repaired);
  return t;
}

std::vector<Treatment> RunAllTreatments(const PaperDataset& ds,
                                        const DistanceEvaluator& evaluator,
                                        bool fast_dorc) {
  std::vector<Treatment> out;

  out.push_back({"Raw", ds.dirty, 0.0});
  out.push_back(RunDisc(ds, evaluator));

  {
    Treatment t;
    t.name = "DORC";
    DorcOptions options;
    options.constraint = ds.suggested;
    options.use_index = fast_dorc;
    Timer timer;
    t.data = Dorc(ds.dirty, evaluator, options);
    t.seconds = timer.Seconds();
    out.push_back(std::move(t));
  }
  {
    Treatment t;
    t.name = "ERACER";
    Timer timer;
    t.data = Eracer(ds.dirty, evaluator);
    t.seconds = timer.Seconds();
    out.push_back(std::move(t));
  }
  {
    Treatment t;
    t.name = "HoloClean";
    HolocleanOptions options;
    options.constraint = ds.suggested;
    Timer timer;
    t.data = Holoclean(ds.dirty, evaluator, options);
    t.seconds = timer.Seconds();
    out.push_back(std::move(t));
  }
  {
    Treatment t;
    t.name = "Holistic";
    Timer timer;
    t.data = Holistic(ds.dirty, evaluator);
    t.seconds = timer.Seconds();
    out.push_back(std::move(t));
  }
  return out;
}

ClusterScores ScoreDbscan(const Relation& data,
                          const DistanceEvaluator& evaluator,
                          const DistanceConstraint& constraint,
                          const std::vector<int>& truth_labels) {
  Labels labels =
      Dbscan(data, evaluator, {constraint.epsilon, constraint.eta});
  ClusterScores scores;
  PairCountingScores pc = PairCounting(labels, truth_labels);
  scores.f1 = pc.f1;
  scores.precision = pc.precision;
  scores.recall = pc.recall;
  scores.nmi = Nmi(labels, truth_labels);
  scores.ari = Ari(labels, truth_labels);
  return scores;
}

void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

std::string Fmt(double v, int decimals) {
  return StrFormat("%.*f", decimals, v);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  if (p <= 0) return values.front();
  if (p >= 100) return values.back();
  double rank = p / 100.0 * static_cast<double>(values.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx < 1) idx = 1;
  if (idx > values.size()) idx = values.size();
  return values[idx - 1];
}

void AppendSearchStats(JsonWriter* json, const SearchStats& stats) {
  stats.AppendJson(json);
}

std::string BenchOutPath(const std::string& filename) {
  const char* env = std::getenv("DISC_BENCH_OUT");
  const std::string dir = (env != nullptr && env[0] != '\0') ? env : "bench/out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s (%s); writing %s to cwd\n",
                 dir.c_str(), ec.message().c_str(), filename.c_str());
    return filename;
  }
  return dir + "/" + filename;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace disc::bench
