// Figure 9 reproduction: on the GPS-shaped dataset (where dirty and natural
// outliers are both present and labeled), report (a) the dirty / natural
// outlier rates and (b) the Jaccard accuracy of the attributes adjusted by
// DISC vs the attributes explained by SSE, per the paper's §4.3 protocol.
//
// Expected shape (paper): dirty and natural rates both around 0.1; DISC's
// attribute Jaccard slightly above SSE's (value adjustment is stronger
// evidence than separability alone); ~1 attribute adjusted on average.

#include "cleaning/sse.h"
#include "eval/set_metrics.h"
#include "support.h"

int main() {
  using namespace disc;
  using namespace disc::bench;

  PaperDataset ds = MakePaperDataset("gps", 42, 0.12);
  DistanceEvaluator evaluator(ds.dirty.schema());

  double n = static_cast<double>(ds.dirty.size());
  PrintHeader("Figure 9(a): outlier rates on GPS-shaped data");
  std::printf("tuples=%zu dirty-rate=%.3f natural-rate=%.3f\n",
              ds.dirty.size(),
              static_cast<double>(ds.dirty_rows.size()) / n,
              static_cast<double>(ds.natural_outlier_rows.size()) / n);

  // Save with DISC; collect per-outlier adjusted attributes.
  OutlierSavingOptions options;
  options.constraint = ds.suggested;
  options.save.kappa = 2;
  SavedDataset saved = SaveOutliers(ds.dirty, evaluator, options);

  Relation inliers = ds.dirty.Select(saved.inlier_rows);

  double disc_jaccard = 0;
  double sse_jaccard = 0;
  double disc_attrs = 0;
  std::size_t measured = 0;
  for (const OutlierRecord& rec : saved.records) {
    AttributeSet truth;
    for (const CellError& e : ds.errors) {
      if (e.row == rec.row) truth.insert(e.attribute);
    }
    if (truth.empty()) continue;  // natural outlier: no error ground truth
    if (rec.disposition != OutlierDisposition::kSaved) continue;

    AttributeSet sse =
        ExplainOutlierSse(inliers, evaluator, ds.dirty[rec.row]);
    disc_jaccard += JaccardIndex(truth, rec.adjusted_attributes);
    sse_jaccard += JaccardIndex(truth, sse);
    disc_attrs += static_cast<double>(rec.adjusted_attributes.size());
    ++measured;
  }

  PrintHeader("Figure 9(b): attribute adjustment/explanation accuracy");
  if (measured > 0) {
    double denom = static_cast<double>(measured);
    PrintRow({"method", "Jaccard", "#attrs"});
    PrintRow({"DISC", Fmt(disc_jaccard / denom),
              Fmt(disc_attrs / denom, 2)});
    PrintRow({"SSE", Fmt(sse_jaccard / denom), "-"});
    std::printf("(measured over %zu saved dirty outliers)\n", measured);
  } else {
    std::printf("no dirty outliers were saved — check calibration\n");
  }

  std::printf(
      "\nShape check vs paper Fig. 9: dirty and natural rates both ~0.1; "
      "DISC's\nJaccard a bit above SSE's; about 1 attribute adjusted per "
      "dirty outlier.\n");
  return 0;
}
