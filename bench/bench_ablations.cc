// Ablations of the design choices DESIGN.md calls out, at dataset level:
//  (1) lower-bound pruning on/off — visited-set counts and wall time;
//  (2) revert refinement on/off — adjustment quality (attribute Jaccard,
//      #attrs, cost) and downstream DBSCAN F1;
//  (3) kappa restriction versus the full O(2^m n) traversal;
//  (4) KD-tree / grid index versus brute-force scans inside DBSCAN.

#include "clustering/dbscan.h"
#include "core/disc_saver.h"
#include "eval/set_metrics.h"
#include "index/brute_force_index.h"
#include "index/index_factory.h"
#include "support.h"

namespace {

using namespace disc;
using namespace disc::bench;

struct AblationOutcome {
  double seconds = 0;
  double f1 = 0;
  double jaccard = 0;
  double mean_attrs = 0;
  double mean_cost = 0;
  std::size_t visited = 0;
  std::size_t saved = 0;
};

AblationOutcome RunVariant(const PaperDataset& ds,
                           const DistanceEvaluator& evaluator,
                           const SaveOptions& save) {
  AblationOutcome out;
  Timer timer;

  // Inline version of SaveOutliers that exposes per-save statistics.
  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(ds.dirty, evaluator, ds.suggested.epsilon);
  InlierOutlierSplit split =
      SplitInliersOutliers(ds.dirty, *index, ds.suggested);
  Relation inliers = ds.dirty.Select(split.inlier_rows);
  DiscSaver saver(inliers, evaluator, ds.suggested);

  Relation repaired = ds.dirty;
  double jaccard_sum = 0;
  std::size_t jaccard_count = 0;
  double attr_sum = 0;
  double cost_sum = 0;
  for (std::size_t row : split.outlier_rows) {
    SaveResult res = saver.Save(ds.dirty[row], save);
    out.visited += res.visited_sets;
    if (!res.feasible) continue;
    repaired[row] = res.adjusted;
    ++out.saved;
    attr_sum += static_cast<double>(res.adjusted_attributes.size());
    cost_sum += res.cost;
    AttributeSet truth;
    for (const CellError& e : ds.errors) {
      if (e.row == row) truth.insert(e.attribute);
    }
    if (!truth.empty()) {
      jaccard_sum += JaccardIndex(truth, res.adjusted_attributes);
      ++jaccard_count;
    }
  }
  out.seconds = timer.Seconds();
  out.f1 = ScoreDbscan(repaired, evaluator, ds.suggested, ds.labels).f1;
  if (out.saved > 0) {
    out.mean_attrs = attr_sum / static_cast<double>(out.saved);
    out.mean_cost = cost_sum / static_cast<double>(out.saved);
  }
  if (jaccard_count > 0) {
    out.jaccard = jaccard_sum / static_cast<double>(jaccard_count);
  }
  return out;
}

void PrintOutcome(const std::string& label, const AblationOutcome& o) {
  PrintRow({label, Fmt(o.seconds, 3), std::to_string(o.visited),
            std::to_string(o.saved), Fmt(o.f1), Fmt(o.jaccard),
            Fmt(o.mean_attrs, 2), Fmt(o.mean_cost, 1)},
           12);
}

}  // namespace

int main() {
  PaperDataset ds = MakePaperDataset("letter", 42, 0.05);
  DistanceEvaluator evaluator(ds.dirty.schema());
  std::printf("letter-shaped, n=%zu m=%zu, (eps=%.2f eta=%zu)\n",
              ds.dirty.size(), ds.dirty.arity(), ds.suggested.epsilon,
              ds.suggested.eta);

  PrintHeader("Ablation: lower-bound pruning (kappa=2)");
  PrintRow({"variant", "time(s)", "visited", "saved", "F1", "Jaccard",
            "#attrs", "cost"},
           12);
  {
    SaveOptions on;
    on.kappa = 2;
    SaveOptions off = on;
    off.use_lower_bound_pruning = false;
    PrintOutcome("pruning-on", RunVariant(ds, evaluator, on));
    PrintOutcome("pruning-off", RunVariant(ds, evaluator, off));
  }

  PrintHeader("Ablation: revert refinement (kappa=2)");
  PrintRow({"variant", "time(s)", "visited", "saved", "F1", "Jaccard",
            "#attrs", "cost"},
           12);
  {
    SaveOptions on;
    on.kappa = 2;
    SaveOptions off = on;
    off.use_revert_refinement = false;
    PrintOutcome("revert-on", RunVariant(ds, evaluator, on));
    PrintOutcome("revert-off", RunVariant(ds, evaluator, off));
  }

  PrintHeader("Ablation: kappa restriction");
  PrintRow({"variant", "time(s)", "visited", "saved", "F1", "Jaccard",
            "#attrs", "cost"},
           12);
  for (std::size_t kappa : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    SaveOptions opts;
    opts.kappa = kappa;
    PrintOutcome("kappa=" + std::to_string(kappa),
                 RunVariant(ds, evaluator, opts));
  }
  {
    // Full traversal on m=16 is O(2^16) sets per outlier — cap the visited
    // sets so the row finishes; the count column shows the blow-up.
    SaveOptions full;
    full.kappa = 0;
    full.budget.max_visited_sets = 3000;
    PrintOutcome("kappa=inf(cap)", RunVariant(ds, evaluator, full));
  }

  PrintHeader("Ablation: neighbor index inside DBSCAN");
  {
    PaperDataset gps = MakePaperDataset("gps", 42, 0.12);
    DistanceEvaluator gps_eval(gps.dirty.schema());
    PrintRow({"index", "time(s)", "F1"}, 14);
    {
      Timer t;
      Labels labels = Dbscan(gps.dirty, gps_eval,
                             {gps.suggested.epsilon, gps.suggested.eta});
      PrintRow({"grid/kdtree", Fmt(t.Seconds(), 4),
                Fmt(PairCounting(labels, gps.labels).f1)},
               14);
    }
    {
      // Brute-force path: drive DBSCAN through a brute-force index by
      // marking the schema unusable for the fast paths (string dummy) is
      // invasive; instead measure raw query cost directly.
      BruteForceIndex brute(gps.dirty, gps_eval);
      auto fast = MakeNeighborIndex(gps.dirty, gps_eval,
                                    gps.suggested.epsilon);
      Timer t_brute;
      std::size_t hits_b = 0;
      for (std::size_t i = 0; i < gps.dirty.size(); ++i) {
        hits_b += brute.CountWithin(gps.dirty[i], gps.suggested.epsilon);
      }
      double brute_s = t_brute.Seconds();
      Timer t_fast;
      std::size_t hits_f = 0;
      for (std::size_t i = 0; i < gps.dirty.size(); ++i) {
        hits_f += fast->CountWithin(gps.dirty[i], gps.suggested.epsilon);
      }
      double fast_s = t_fast.Seconds();
      std::printf("all-pairs range-count: brute %.4fs vs indexed %.4fs "
                  "(same result: %s)\n",
                  brute_s, fast_s, hits_b == hits_f ? "yes" : "NO");
    }
  }

  std::printf(
      "\nExpected: pruning cuts visited sets at equal quality; revert "
      "refinement\nraises Jaccard and lowers #attrs at equal or lower cost; "
      "kappa trades saved\ncount for time; the spatial index beats brute "
      "force at identical counts.\n");
  return 0;
}
