// Microbenchmarks (google-benchmark) of the core primitives plus the
// ablation knobs DESIGN.md calls out:
//  - neighbor-index range query: KD-tree vs brute force
//  - delta_eta precompute (KthNeighborCache)
//  - a single DISC save: pruning on vs off, kappa-restricted vs full
//  - bound computations in isolation

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "support.h"

#include "common/json_writer.h"
#include "common/random.h"
#include "core/disc_saver.h"
#include "index/brute_force_index.h"
#include "index/kd_tree.h"
#include "index/kth_neighbor_cache.h"

namespace disc {
namespace {

Relation MakeInliers(std::size_t n, std::size_t m, std::uint64_t seed = 5) {
  Rng rng(seed);
  Relation r(Schema::Numeric(m));
  for (std::size_t i = 0; i < n; ++i) {
    Tuple t(m);
    for (std::size_t a = 0; a < m; ++a) t[a] = Value(rng.Gaussian(0, 1.0));
    r.AppendUnchecked(std::move(t));
  }
  return r;
}

void BM_KdTreeRangeQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Relation r = MakeInliers(n, 4);
  KdTree tree(r);
  Tuple query = Tuple::Numeric({0.1, 0.1, -0.1, 0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.RangeQuery(query, 1.0));
  }
}
BENCHMARK(BM_KdTreeRangeQuery)->Arg(1000)->Arg(10000);

void BM_BruteForceRangeQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Relation r = MakeInliers(n, 4);
  DistanceEvaluator ev(r.schema());
  BruteForceIndex index(r, ev);
  Tuple query = Tuple::Numeric({0.1, 0.1, -0.1, 0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.RangeQuery(query, 1.0));
  }
}
BENCHMARK(BM_BruteForceRangeQuery)->Arg(1000)->Arg(10000);

void BM_KthNeighborCacheBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Relation r = MakeInliers(n, 4);
  KdTree tree(r);
  for (auto _ : state) {
    KthNeighborCache cache(r, tree, 8);
    benchmark::DoNotOptimize(cache.deltas().size());
  }
}
BENCHMARK(BM_KthNeighborCacheBuild)->Arg(500)->Arg(2000);

void BM_DiscSave(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const bool prune = state.range(1) != 0;
  Relation r = MakeInliers(400, m);
  DistanceEvaluator ev(r.schema());
  DiscSaver saver(r, ev, {1.5, 5});
  Tuple outlier(m);
  for (std::size_t a = 0; a < m; ++a) outlier[a] = Value(0.1);
  outlier[m - 1] = Value(20.0);  // one broken attribute
  SaveOptions opts;
  opts.use_lower_bound_pruning = prune;
  std::size_t visited = 0;
  for (auto _ : state) {
    SaveResult res = saver.Save(outlier, opts);
    visited = res.visited_sets;
    benchmark::DoNotOptimize(res.cost);
  }
  state.counters["visited_sets"] = static_cast<double>(visited);
}
BENCHMARK(BM_DiscSave)
    ->Args({4, 1})
    ->Args({4, 0})
    ->Args({8, 1})
    ->Args({8, 0});

void BM_DiscSaveKappa(benchmark::State& state) {
  const auto kappa = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 12;
  Relation r = MakeInliers(400, m);
  DistanceEvaluator ev(r.schema());
  DiscSaver saver(r, ev, {2.0, 5});
  Tuple outlier(m);
  for (std::size_t a = 0; a < m; ++a) outlier[a] = Value(0.1);
  outlier[0] = Value(20.0);
  SaveOptions opts;
  opts.kappa = kappa;
  for (auto _ : state) {
    benchmark::DoNotOptimize(saver.Save(outlier, opts).cost);
  }
}
BENCHMARK(BM_DiscSaveKappa)->Arg(1)->Arg(2)->Arg(3)->Arg(0);

void BM_BoundsLowerBound(benchmark::State& state) {
  Relation r = MakeInliers(2000, 6);
  DistanceEvaluator ev(r.schema());
  DiscSaver saver(r, ev, {1.5, 6});
  Tuple outlier = Tuple::Numeric({0.1, 0.1, 0.1, 0.1, 0.1, 15.0});
  AttributeSet x{0, 1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(saver.bounds().LowerBoundForX(outlier, x));
  }
}
BENCHMARK(BM_BoundsLowerBound);

void BM_BoundsUpperBound(benchmark::State& state) {
  Relation r = MakeInliers(2000, 6);
  DistanceEvaluator ev(r.schema());
  DiscSaver saver(r, ev, {1.5, 6});
  Tuple outlier = Tuple::Numeric({0.1, 0.1, 0.1, 0.1, 0.1, 15.0});
  AttributeSet x{0, 1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(saver.bounds().UpperBoundForX(outlier, x));
  }
}
BENCHMARK(BM_BoundsUpperBound);

/// Writes BENCH_micro_core.json: the search-work counters of one
/// representative kappa-restricted DISC save (the BM_DiscSave workload),
/// so the CI perf-smoke job can sanity-check the counter plumbing from a
/// binary that does not link bench_support. Deterministic by construction
/// (fixed seeds, single thread); wall_nanos is the only timing field.
bool WriteMicroCoreJson(const std::string& path) {
  const std::size_t m = 8;
  Relation r = MakeInliers(400, m);
  DistanceEvaluator ev(r.schema());
  DiscSaver saver(r, ev, {1.5, 5});
  Tuple outlier(m);
  for (std::size_t a = 0; a < m; ++a) outlier[a] = Value(0.1);
  outlier[m - 1] = Value(20.0);
  SaveOptions opts;
  opts.kappa = 2;
  SaveResult res = saver.Save(outlier, opts);

  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Uint(2);
  json.Key("bench").String("micro_core");
  json.Key("inliers").Uint(r.size());
  json.Key("m").Uint(m);
  json.Key("kappa").Uint(opts.kappa);
  json.Key("feasible").Bool(res.feasible);
  json.Key("search_stats").BeginObject();
  res.stats.AppendJson(&json);
  json.EndObject();
  json.EndObject();

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = json.str() + "\n";
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && written == text.size();
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string json_path =
      disc::bench::BenchOutPath("BENCH_micro_core.json");
  if (!disc::WriteMicroCoreJson(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
