#include "ml/cross_validation.h"

#include <map>

#include "common/random.h"

namespace disc {

ClassificationScores ScoreClassification(const std::vector<int>& predicted,
                                         const std::vector<int>& truth) {
  ClassificationScores scores;
  if (predicted.size() != truth.size() || predicted.empty()) return scores;

  std::map<int, std::size_t> tp;
  std::map<int, std::size_t> fp;
  std::map<int, std::size_t> fn;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (predicted[i] == truth[i]) {
      ++tp[truth[i]];
      ++correct;
    } else {
      ++fp[predicted[i]];
      ++fn[truth[i]];
    }
  }
  // Classes present in either truth or prediction.
  std::map<int, bool> classes;
  for (int c : truth) classes[c] = true;
  for (int c : predicted) classes[c] = true;

  double f1_sum = 0;
  for (const auto& [c, unused] : classes) {
    double tpc = static_cast<double>(tp.count(c) ? tp.at(c) : 0);
    double fpc = static_cast<double>(fp.count(c) ? fp.at(c) : 0);
    double fnc = static_cast<double>(fn.count(c) ? fn.at(c) : 0);
    double precision = tpc + fpc > 0 ? tpc / (tpc + fpc) : 0;
    double recall = tpc + fnc > 0 ? tpc / (tpc + fnc) : 0;
    double f1 =
        precision + recall > 0 ? 2 * precision * recall / (precision + recall) : 0;
    f1_sum += f1;
  }
  scores.macro_f1 = f1_sum / static_cast<double>(classes.size());
  scores.accuracy = static_cast<double>(correct) / static_cast<double>(truth.size());
  return scores;
}

namespace {

/// Runs k-fold CV over a pre-arranged row order, assigning row order[i] to
/// fold i % folds, and averages the per-fold scores.
ClassificationScores FoldedCv(const std::vector<std::vector<double>>& features,
                              const std::vector<int>& labels,
                              const std::vector<std::size_t>& order,
                              std::size_t folds,
                              const DecisionTreeParams& params) {
  double f1_sum = 0;
  double acc_sum = 0;
  const std::size_t n = order.size();
  for (std::size_t fold = 0; fold < folds; ++fold) {
    std::vector<std::vector<double>> train_x;
    std::vector<int> train_y;
    std::vector<std::vector<double>> test_x;
    std::vector<int> test_y;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % folds == fold) {
        test_x.push_back(features[order[i]]);
        test_y.push_back(labels[order[i]]);
      } else {
        train_x.push_back(features[order[i]]);
        train_y.push_back(labels[order[i]]);
      }
    }
    DecisionTree tree;
    tree.Fit(train_x, train_y, params);
    ClassificationScores fold_scores =
        ScoreClassification(tree.PredictBatch(test_x), test_y);
    f1_sum += fold_scores.macro_f1;
    acc_sum += fold_scores.accuracy;
  }
  ClassificationScores total;
  total.macro_f1 = f1_sum / static_cast<double>(folds);
  total.accuracy = acc_sum / static_cast<double>(folds);
  return total;
}

}  // namespace

ClassificationScores StratifiedCrossValidateTree(
    const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels, std::size_t folds,
    const DecisionTreeParams& params, std::uint64_t seed) {
  ClassificationScores total;
  const std::size_t n = features.size();
  if (n == 0 || folds < 2 || n < folds) return total;

  // Group rows by class, shuffle within each class, then interleave the
  // classes so consecutive positions (which map to folds round-robin)
  // spread every class across every fold.
  Rng rng(seed);
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < n; ++i) by_class[labels[i]].push_back(i);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (auto& [cls, rows] : by_class) {
    rng.Shuffle(&rows);
  }
  bool any = true;
  std::size_t position = 0;
  while (any) {
    any = false;
    for (auto& [cls, rows] : by_class) {
      if (position < rows.size()) {
        order.push_back(rows[position]);
        any = true;
      }
    }
    ++position;
  }
  return FoldedCv(features, labels, order, folds, params);
}

ClassificationScores CrossValidateTree(
    const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels, std::size_t folds,
    const DecisionTreeParams& params, std::uint64_t seed) {
  ClassificationScores total;
  const std::size_t n = features.size();
  if (n == 0 || folds < 2 || n < folds) return total;

  Rng rng(seed);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);
  return FoldedCv(features, labels, order, folds, params);
}

}  // namespace disc
