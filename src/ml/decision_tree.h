#ifndef DISC_ML_DECISION_TREE_H_
#define DISC_ML_DECISION_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/relation.h"

namespace disc {

/// CART hyperparameters (defaults mirror scikit-learn's
/// DecisionTreeClassifier defaults used by the paper: unlimited depth,
/// gini impurity, split until pure or < 2 samples).
struct DecisionTreeParams {
  std::size_t max_depth = 0;  ///< 0 = unlimited
  std::size_t min_samples_split = 2;
  double min_impurity_decrease = 0.0;
};

/// A binary CART classifier over numeric features with integer class
/// labels. Substrate for the §4.2.4 classification experiment (the paper
/// uses scikit-learn's decision tree; see DESIGN.md substitutions).
class DecisionTree {
 public:
  DecisionTree() = default;

  /// Fits the tree on `features` (row-major) and `labels` (same length).
  void Fit(const std::vector<std::vector<double>>& features,
           const std::vector<int>& labels,
           const DecisionTreeParams& params = {});

  /// Predicts the class of one sample. Must be fitted first.
  int Predict(const std::vector<double>& sample) const;

  /// Predicts classes for many samples.
  std::vector<int> PredictBatch(
      const std::vector<std::vector<double>>& samples) const;

  /// Number of nodes in the fitted tree (0 before Fit).
  std::size_t node_count() const { return nodes_.size(); }
  /// Depth of the fitted tree (0 for a single leaf).
  std::size_t depth() const;

 private:
  struct Node {
    bool is_leaf = true;
    int prediction = 0;
    std::size_t feature = 0;
    double threshold = 0;
    int left = -1;
    int right = -1;
    std::size_t depth = 0;
  };

  int BuildNode(const std::vector<std::vector<double>>& features,
                const std::vector<int>& labels,
                std::vector<std::size_t>& rows, std::size_t depth,
                const DecisionTreeParams& params);

  std::vector<Node> nodes_;
  int root_ = -1;
};

/// Extracts (features, labels) from a relation: all numeric attributes are
/// features; `label_column` supplies integer class labels.
void RelationToDataset(const Relation& relation,
                       const std::vector<int>& labels,
                       std::vector<std::vector<double>>* features);

}  // namespace disc

#endif  // DISC_ML_DECISION_TREE_H_
