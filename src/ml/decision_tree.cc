#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace disc {

namespace {

/// Gini impurity of a label multiset given class counts and total.
double Gini(const std::map<int, std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0;
  double impurity = 1.0;
  for (const auto& [label, count] : counts) {
    double p = static_cast<double>(count) / static_cast<double>(total);
    impurity -= p * p;
  }
  return impurity;
}

int MajorityLabel(const std::map<int, std::size_t>& counts) {
  int best_label = 0;
  std::size_t best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace

int DecisionTree::BuildNode(const std::vector<std::vector<double>>& features,
                            const std::vector<int>& labels,
                            std::vector<std::size_t>& rows, std::size_t depth,
                            const DecisionTreeParams& params) {
  Node node;
  node.depth = depth;

  std::map<int, std::size_t> counts;
  for (std::size_t row : rows) ++counts[labels[row]];
  node.prediction = MajorityLabel(counts);
  double impurity = Gini(counts, rows.size());

  bool can_split = rows.size() >= params.min_samples_split &&
                   counts.size() > 1 &&
                   (params.max_depth == 0 || depth < params.max_depth);

  if (can_split) {
    const std::size_t num_features = features.empty() ? 0 : features[0].size();
    // Accept any split meeting the configured impurity decrease — including
    // zero-gain splits (XOR-like data needs a gainless first cut before the
    // second level separates the classes, as in scikit-learn's CART).
    double best_gain = params.min_impurity_decrease - 1e-12;
    std::size_t best_feature = 0;
    double best_threshold = 0;
    bool found = false;

    for (std::size_t f = 0; f < num_features; ++f) {
      // Sort rows by this feature; scan split points between distinct
      // consecutive values, maintaining running class counts.
      std::sort(rows.begin(), rows.end(), [&](std::size_t a, std::size_t b) {
        return features[a][f] < features[b][f];
      });
      std::map<int, std::size_t> left_counts;
      std::map<int, std::size_t> right_counts = counts;
      const double total = static_cast<double>(rows.size());
      for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
        int label = labels[rows[i]];
        ++left_counts[label];
        if (--right_counts[label] == 0) right_counts.erase(label);
        double v = features[rows[i]][f];
        double next_v = features[rows[i + 1]][f];
        if (v == next_v) continue;  // no split point between equal values
        std::size_t nl = i + 1;
        std::size_t nr = rows.size() - nl;
        double gain = impurity -
                      (static_cast<double>(nl) / total) * Gini(left_counts, nl) -
                      (static_cast<double>(nr) / total) * Gini(right_counts, nr);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = 0.5 * (v + next_v);
          found = true;
        }
      }
    }

    if (found) {
      std::vector<std::size_t> left_rows;
      std::vector<std::size_t> right_rows;
      for (std::size_t row : rows) {
        if (features[row][best_feature] <= best_threshold) {
          left_rows.push_back(row);
        } else {
          right_rows.push_back(row);
        }
      }
      if (!left_rows.empty() && !right_rows.empty()) {
        node.is_leaf = false;
        node.feature = best_feature;
        node.threshold = best_threshold;
        int self = static_cast<int>(nodes_.size());
        nodes_.push_back(node);
        int left = BuildNode(features, labels, left_rows, depth + 1, params);
        int right = BuildNode(features, labels, right_rows, depth + 1, params);
        nodes_[static_cast<std::size_t>(self)].left = left;
        nodes_[static_cast<std::size_t>(self)].right = right;
        return self;
      }
    }
  }

  nodes_.push_back(node);
  return static_cast<int>(nodes_.size() - 1);
}

void DecisionTree::Fit(const std::vector<std::vector<double>>& features,
                       const std::vector<int>& labels,
                       const DecisionTreeParams& params) {
  nodes_.clear();
  root_ = -1;
  if (features.empty() || features.size() != labels.size()) return;
  std::vector<std::size_t> rows(features.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  root_ = BuildNode(features, labels, rows, 0, params);
}

int DecisionTree::Predict(const std::vector<double>& sample) const {
  if (root_ < 0) return 0;
  int node_id = root_;
  while (true) {
    const Node& node = nodes_[static_cast<std::size_t>(node_id)];
    if (node.is_leaf) return node.prediction;
    node_id = sample[node.feature] <= node.threshold ? node.left : node.right;
  }
}

std::vector<int> DecisionTree::PredictBatch(
    const std::vector<std::vector<double>>& samples) const {
  std::vector<int> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(Predict(s));
  return out;
}

std::size_t DecisionTree::depth() const {
  std::size_t max_depth = 0;
  for (const Node& node : nodes_) max_depth = std::max(max_depth, node.depth);
  return max_depth;
}

void RelationToDataset(const Relation& relation,
                       const std::vector<int>& labels,
                       std::vector<std::vector<double>>* features) {
  (void)labels;
  features->clear();
  features->reserve(relation.size());
  for (const Tuple& t : relation) {
    std::vector<double> row;
    row.reserve(relation.arity());
    for (std::size_t a = 0; a < relation.arity(); ++a) {
      if (t[a].is_numeric()) row.push_back(t[a].num());
    }
    features->push_back(std::move(row));
  }
}

}  // namespace disc
