#ifndef DISC_ML_CROSS_VALIDATION_H_
#define DISC_ML_CROSS_VALIDATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/decision_tree.h"

namespace disc {

/// Classification scores averaged over classes (macro) as in the paper's
/// F1-score reporting for Table 5.
struct ClassificationScores {
  double macro_f1 = 0;
  double accuracy = 0;
};

/// Macro-averaged F1 plus accuracy of `predicted` against `truth`.
ClassificationScores ScoreClassification(const std::vector<int>& predicted,
                                         const std::vector<int>& truth);

/// k-fold cross-validation of a decision tree (paper §4.1.2: 5 folds,
/// default tree parameters). Folds are a deterministic shuffled partition.
ClassificationScores CrossValidateTree(
    const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels, std::size_t folds = 5,
    const DecisionTreeParams& params = {}, std::uint64_t seed = 42);

/// Stratified k-fold cross-validation: each fold preserves per-class
/// proportions, matching scikit-learn's default for classifiers (the
/// evaluation substrate the paper uses). Preferable on unbalanced classes.
ClassificationScores StratifiedCrossValidateTree(
    const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels, std::size_t folds = 5,
    const DecisionTreeParams& params = {}, std::uint64_t seed = 42);

}  // namespace disc

#endif  // DISC_ML_CROSS_VALIDATION_H_
