#ifndef DISC_INDEX_NEIGHBOR_INDEX_H_
#define DISC_INDEX_NEIGHBOR_INDEX_H_

#include <cstddef>
#include <vector>

#include "common/tuple.h"

namespace disc {

/// A (row index, distance) query result.
struct Neighbor {
  std::size_t row = 0;
  double distance = 0;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.row == b.row && a.distance == b.distance;
  }
};

/// ε-neighbor / kNN query interface over a fixed relation (paper Formula 4:
/// r_ε(t) = { t_i ∈ r | Δ(t, t_i) ≤ ε }).
///
/// Implementations index the relation they were built over; the query tuple
/// need not be part of the relation (outliers are queried against the
/// inlier set r). Results never exclude the query point itself — callers
/// querying with an indexed tuple should account for the self-match.
class NeighborIndex {
 public:
  virtual ~NeighborIndex() = default;

  /// Short implementation identifier ("brute_force", "kd_tree", "grid"),
  /// matching the `disc_index_<impl>_*` metric names. Used by diagnostics
  /// (index-construction logs); decorators forward to the wrapped index.
  virtual const char* Name() const { return "neighbor_index"; }

  /// Number of indexed tuples.
  virtual std::size_t size() const = 0;

  /// All rows within distance `epsilon` of `query`, sorted by distance.
  virtual std::vector<Neighbor> RangeQuery(const Tuple& query,
                                           double epsilon) const = 0;

  /// Number of rows within distance `epsilon` of `query`. Implementations
  /// may stop early once `cap` matches have been found (cap = 0: count all).
  virtual std::size_t CountWithin(const Tuple& query, double epsilon,
                                  std::size_t cap = 0) const = 0;

  /// The k nearest rows to `query`, sorted by distance (fewer if n < k).
  virtual std::vector<Neighbor> KNearest(const Tuple& query,
                                         std::size_t k) const = 0;
};

}  // namespace disc

#endif  // DISC_INDEX_NEIGHBOR_INDEX_H_
