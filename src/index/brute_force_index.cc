#include "index/brute_force_index.h"

#include <algorithm>
#include <cmath>

namespace disc {

std::vector<Neighbor> BruteForceIndex::RangeQuery(const Tuple& query,
                                                  double epsilon) const {
  std::vector<Neighbor> out;
  for (std::size_t row = 0; row < relation_.size(); ++row) {
    double d = evaluator_.DistanceWithin(query, relation_[row], epsilon);
    if (d <= epsilon) out.push_back({row, d});
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance || (a.distance == b.distance && a.row < b.row);
  });
  return out;
}

std::size_t BruteForceIndex::CountWithin(const Tuple& query, double epsilon,
                                         std::size_t cap) const {
  std::size_t count = 0;
  for (std::size_t row = 0; row < relation_.size(); ++row) {
    double d = evaluator_.DistanceWithin(query, relation_[row], epsilon);
    if (d <= epsilon) {
      ++count;
      if (cap != 0 && count >= cap) return count;
    }
  }
  return count;
}

std::vector<Neighbor> BruteForceIndex::KNearest(const Tuple& query,
                                                std::size_t k) const {
  std::vector<Neighbor> all;
  all.reserve(relation_.size());
  for (std::size_t row = 0; row < relation_.size(); ++row) {
    all.push_back({row, evaluator_.Distance(query, relation_[row])});
  }
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance || (a.distance == b.distance && a.row < b.row);
  };
  if (k < all.size()) {
    std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                      all.end(), cmp);
    all.resize(k);
  } else {
    std::sort(all.begin(), all.end(), cmp);
  }
  return all;
}

}  // namespace disc
