#include "index/brute_force_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace disc {

namespace {

/// (distance, then row) — the reported neighbor order, and the "is a better
/// neighbor" relation for the bounded kNN heap.
inline bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  return a.distance < b.distance ||
         (a.distance == b.distance && a.row < b.row);
}

}  // namespace

std::vector<Neighbor> BruteForceIndex::RangeQuery(const Tuple& query,
                                                  double epsilon) const {
  if (metrics_.range_queries != nullptr) metrics_.range_queries->Add();
  std::vector<Neighbor> out;
  if (columnar_ != nullptr) {
    // Batch scan: the row loop lives inside the kernel (one tight loop per
    // norm), with per-row verdicts identical to the scalar path below.
    FlatKernel kernel(*columnar_, query);
    std::vector<std::size_t> rows;
    std::vector<double> distances;
    kernel.CollectWithin(epsilon, &rows, &distances);
    out.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out.push_back({rows[i], distances[i]});
    }
  } else {
    for (std::size_t row = 0; row < relation_.size(); ++row) {
      double d = evaluator_.DistanceWithin(query, relation_[row], epsilon);
      if (d <= epsilon) out.push_back({row, d});
    }
  }
  std::sort(out.begin(), out.end(), NeighborLess);
  return out;
}

std::size_t BruteForceIndex::CountWithin(const Tuple& query, double epsilon,
                                         std::size_t cap) const {
  if (metrics_.count_queries != nullptr) metrics_.count_queries->Add();
  std::size_t count = 0;
  if (columnar_ != nullptr) {
    FlatKernel kernel(*columnar_, query);
    // The batch count scans every row, so it only applies to uncapped
    // queries; a cap means the caller wants to stop counting early.
    if (cap == 0) return kernel.CountWithin(epsilon);
    for (std::size_t row = 0; row < relation_.size(); ++row) {
      if (kernel.DistanceWithin(row, epsilon) <= epsilon) {
        ++count;
        if (count >= cap) return count;
      }
    }
    return count;
  }
  for (std::size_t row = 0; row < relation_.size(); ++row) {
    double d = evaluator_.DistanceWithin(query, relation_[row], epsilon);
    if (d <= epsilon) {
      ++count;
      if (cap != 0 && count >= cap) return count;
    }
  }
  return count;
}

std::vector<Neighbor> BruteForceIndex::KNearest(const Tuple& query,
                                                std::size_t k) const {
  // Bounded max-heap of the k best neighbors seen so far (front = worst of
  // them under the (distance, row) order). O(n log k), no n-sized
  // materialization. Once the heap is full, its worst distance becomes the
  // early-exit threshold: a candidate strictly beyond it cannot enter (even
  // the row tie-break needs distance equality, and DistanceWithin's exceed
  // test is strict), so the selected set matches a full sort exactly.
  if (metrics_.knn_queries != nullptr) metrics_.knn_queries->Add();
  std::vector<Neighbor> heap;
  if (k == 0) return heap;
  heap.reserve(std::min(k, relation_.size()));
  const double inf = std::numeric_limits<double>::infinity();
  auto offer = [&](std::size_t row, auto&& distance_within) {
    double worst = heap.size() < k ? inf : heap.front().distance;
    Neighbor cand{row, distance_within(worst)};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    } else if (NeighborLess(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), NeighborLess);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    }
  };
  if (columnar_ != nullptr) {
    FlatKernel kernel(*columnar_, query);
    for (std::size_t row = 0; row < relation_.size(); ++row) {
      offer(row, [&](double worst) { return kernel.DistanceWithin(row, worst); });
    }
  } else {
    for (std::size_t row = 0; row < relation_.size(); ++row) {
      offer(row, [&](double worst) {
        return evaluator_.DistanceWithin(query, relation_[row], worst);
      });
    }
  }
  std::sort(heap.begin(), heap.end(), NeighborLess);
  return heap;
}

}  // namespace disc
