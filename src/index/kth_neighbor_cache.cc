#include "index/kth_neighbor_cache.h"

#include <limits>

namespace disc {

KthNeighborCache::KthNeighborCache(const Relation& relation,
                                   const NeighborIndex& index, std::size_t eta,
                                   bool self_counts)
    : eta_(eta) {
  deltas_.resize(relation.size(),
                 std::numeric_limits<double>::infinity());
  if (eta == 0) {
    for (double& d : deltas_) d = 0;
    return;
  }
  for (std::size_t row = 0; row < relation.size(); ++row) {
    // The query tuple is itself indexed, so it appears in its own result at
    // distance 0. When the tuple counts toward its own neighbor total
    // (Formula 4), the η-th neighbor including self is simply the η-th
    // element of the kNN result. Otherwise we need one more.
    std::size_t k = self_counts ? eta : eta + 1;
    std::vector<Neighbor> nn = index.KNearest(relation[row], k);
    if (nn.size() >= k) {
      deltas_[row] = nn[k - 1].distance;
    }
  }
}

}  // namespace disc
