#include "index/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "distance/columnar_simd.h"

namespace disc {

KdTree::KdTree(const Relation& relation, LpNorm norm)
    : norm_(norm),
      simd_tier_(ActiveSimdTier()),
      metrics_(IndexQueryMetrics::For("kd_tree")) {
  dims_ = relation.arity();
  size_ = relation.size();
  coords_.resize(size_ * dims_);
  for (std::size_t i = 0; i < size_; ++i) {
    const Tuple& t = relation[i];
    for (std::size_t a = 0; a < dims_; ++a) coords_[i * dims_ + a] = t[a].num();
  }
  order_.resize(size_);
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (size_ > 0) {
    root_ = Build(0, size_, 0);
  }
}

int KdTree::Build(std::size_t begin, std::size_t end, std::size_t depth) {
  Node node;
  node.begin = begin;
  node.end = end;
  if (end - begin <= kLeafSize) {
    node.is_leaf = true;
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }
  // Pick the axis with the largest spread at this subtree for better balance
  // than pure depth cycling.
  std::size_t best_axis = depth % dims_;
  double best_spread = -1;
  for (std::size_t axis = 0; axis < dims_; ++axis) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::size_t i = begin; i < end; ++i) {
      double v = Coord(order_[i], axis);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = axis;
    }
  }
  node.axis = best_axis;

  std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                   order_.begin() + static_cast<std::ptrdiff_t>(mid),
                   order_.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](std::size_t a, std::size_t b) {
                     return Coord(a, best_axis) < Coord(b, best_axis);
                   });
  node.split = Coord(order_[mid], best_axis);

  int self = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  int left = Build(begin, mid, depth + 1);
  int right = Build(mid, end, depth + 1);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

double KdTree::PointDistanceWithin(const std::vector<double>& query,
                                   std::size_t point, double threshold) const {
  const double* p = coords_.data() + point * dims_;
  // Wide points first try the vector pre-pass (certain rejects and exact
  // L∞ values resolve without scalar work); the canonical accumulator loop
  // below decides everything else, so verdicts stay bit-identical.
  double exact = 0;
  switch (simd::PointWithinPrepass(simd_tier_, query.data(), p, dims_, norm_,
                                   threshold, &exact)) {
    case simd::Verdict::kCertainReject:
      return std::numeric_limits<double>::infinity();
    case simd::Verdict::kExact:
      return exact;
    case simd::Verdict::kMaybeWithin:
    case simd::Verdict::kUnsupported:
      break;
  }
  LpAccumulator acc(norm_);
  for (std::size_t a = 0; a < dims_; ++a) {
    acc.Add(std::fabs(query[a] - p[a]));
    if (acc.Exceeds(threshold)) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return acc.Total();
}

double KdTree::AxisGap(double diff) const {
  // The minimum possible tuple distance contributed by being `diff` away on
  // one axis, under any Lp norm, is exactly |diff|.
  return std::fabs(diff);
}

void KdTree::RangeSearch(int node_id, const std::vector<double>& query,
                         double epsilon, std::vector<Neighbor>* out) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.is_leaf) {
    for (std::size_t i = node.begin; i < node.end; ++i) {
      std::size_t row = order_[i];
      double d = PointDistanceWithin(query, row, epsilon);
      if (d <= epsilon) out->push_back({row, d});
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  int near = diff < 0 ? node.left : node.right;
  int far = diff < 0 ? node.right : node.left;
  RangeSearch(near, query, epsilon, out);
  if (AxisGap(diff) <= epsilon) {
    RangeSearch(far, query, epsilon, out);
  }
}

void KdTree::CountSearch(int node_id, const std::vector<double>& query,
                         double epsilon, std::size_t cap,
                         std::size_t* count) const {
  if (cap != 0 && *count >= cap) return;
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.is_leaf) {
    for (std::size_t i = node.begin; i < node.end; ++i) {
      if (PointDistanceWithin(query, order_[i], epsilon) <= epsilon) {
        ++*count;
        if (cap != 0 && *count >= cap) return;
      }
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  int near = diff < 0 ? node.left : node.right;
  int far = diff < 0 ? node.right : node.left;
  CountSearch(near, query, epsilon, cap, count);
  if (AxisGap(diff) <= epsilon) {
    CountSearch(far, query, epsilon, cap, count);
  }
}

void KdTree::KnnSearch(int node_id, const std::vector<double>& query,
                       std::size_t k, std::vector<Neighbor>* heap) const {
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.row < b.row);
  };
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.is_leaf) {
    for (std::size_t i = node.begin; i < node.end; ++i) {
      std::size_t row = order_[i];
      // A candidate strictly beyond the current worst cannot enter the heap
      // (the exceed test is strict, so ties still compare exactly by row).
      double worst = heap->size() < k ? std::numeric_limits<double>::infinity()
                                      : heap->front().distance;
      Neighbor cand{row, PointDistanceWithin(query, row, worst)};
      if (heap->size() < k) {
        heap->push_back(cand);
        std::push_heap(heap->begin(), heap->end(), cmp);
      } else if (cmp(cand, heap->front())) {
        std::pop_heap(heap->begin(), heap->end(), cmp);
        heap->back() = cand;
        std::push_heap(heap->begin(), heap->end(), cmp);
      }
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  int near = diff < 0 ? node.left : node.right;
  int far = diff < 0 ? node.right : node.left;
  KnnSearch(near, query, k, heap);
  double worst = heap->size() < k ? std::numeric_limits<double>::infinity()
                                  : heap->front().distance;
  if (AxisGap(diff) <= worst) {
    KnnSearch(far, query, k, heap);
  }
}

std::vector<Neighbor> KdTree::RangeQuery(const Tuple& query,
                                         double epsilon) const {
  if (metrics_.range_queries != nullptr) metrics_.range_queries->Add();
  std::vector<Neighbor> out;
  if (root_ < 0) return out;
  std::vector<double> q(dims_);
  for (std::size_t a = 0; a < dims_; ++a) q[a] = query[a].num();
  RangeSearch(root_, q, epsilon, &out);
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.row < b.row);
  });
  return out;
}

std::size_t KdTree::CountWithin(const Tuple& query, double epsilon,
                                std::size_t cap) const {
  if (metrics_.count_queries != nullptr) metrics_.count_queries->Add();
  if (root_ < 0) return 0;
  std::vector<double> q(dims_);
  for (std::size_t a = 0; a < dims_; ++a) q[a] = query[a].num();
  std::size_t count = 0;
  CountSearch(root_, q, epsilon, cap, &count);
  return count;
}

std::vector<Neighbor> KdTree::KNearest(const Tuple& query,
                                       std::size_t k) const {
  if (metrics_.knn_queries != nullptr) metrics_.knn_queries->Add();
  std::vector<Neighbor> heap;
  if (root_ < 0 || k == 0) return heap;
  std::vector<double> q(dims_);
  for (std::size_t a = 0; a < dims_; ++a) q[a] = query[a].num();
  heap.reserve(k);
  KnnSearch(root_, q, k, &heap);
  std::sort(heap.begin(), heap.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.row < b.row);
  });
  return heap;
}

}  // namespace disc
