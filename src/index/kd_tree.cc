#include "index/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace disc {

KdTree::KdTree(const Relation& relation, LpNorm norm) : norm_(norm) {
  dims_ = relation.arity();
  points_.reserve(relation.size());
  for (const Tuple& t : relation) {
    std::vector<double> coords(dims_);
    for (std::size_t a = 0; a < dims_; ++a) coords[a] = t[a].num();
    points_.push_back(std::move(coords));
  }
  order_.resize(points_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (!points_.empty()) {
    root_ = Build(0, points_.size(), 0);
  }
}

int KdTree::Build(std::size_t begin, std::size_t end, std::size_t depth) {
  Node node;
  node.begin = begin;
  node.end = end;
  if (end - begin <= kLeafSize) {
    node.is_leaf = true;
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }
  // Pick the axis with the largest spread at this subtree for better balance
  // than pure depth cycling.
  std::size_t best_axis = depth % dims_;
  double best_spread = -1;
  for (std::size_t axis = 0; axis < dims_; ++axis) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::size_t i = begin; i < end; ++i) {
      double v = points_[order_[i]][axis];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = axis;
    }
  }
  node.axis = best_axis;

  std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                   order_.begin() + static_cast<std::ptrdiff_t>(mid),
                   order_.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](std::size_t a, std::size_t b) {
                     return points_[a][best_axis] < points_[b][best_axis];
                   });
  node.split = points_[order_[mid]][best_axis];

  int self = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  int left = Build(begin, mid, depth + 1);
  int right = Build(mid, end, depth + 1);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

double KdTree::PointDistance(const std::vector<double>& query,
                             std::size_t point) const {
  LpAccumulator acc(norm_);
  const std::vector<double>& p = points_[point];
  for (std::size_t a = 0; a < dims_; ++a) {
    acc.Add(std::fabs(query[a] - p[a]));
  }
  return acc.Total();
}

double KdTree::AxisGap(double diff) const {
  // The minimum possible tuple distance contributed by being `diff` away on
  // one axis, under any Lp norm, is exactly |diff|.
  return std::fabs(diff);
}

void KdTree::RangeSearch(int node_id, const std::vector<double>& query,
                         double epsilon, std::vector<Neighbor>* out) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.is_leaf) {
    for (std::size_t i = node.begin; i < node.end; ++i) {
      std::size_t row = order_[i];
      double d = PointDistance(query, row);
      if (d <= epsilon) out->push_back({row, d});
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  int near = diff < 0 ? node.left : node.right;
  int far = diff < 0 ? node.right : node.left;
  RangeSearch(near, query, epsilon, out);
  if (AxisGap(diff) <= epsilon) {
    RangeSearch(far, query, epsilon, out);
  }
}

void KdTree::CountSearch(int node_id, const std::vector<double>& query,
                         double epsilon, std::size_t cap,
                         std::size_t* count) const {
  if (cap != 0 && *count >= cap) return;
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.is_leaf) {
    for (std::size_t i = node.begin; i < node.end; ++i) {
      if (PointDistance(query, order_[i]) <= epsilon) {
        ++*count;
        if (cap != 0 && *count >= cap) return;
      }
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  int near = diff < 0 ? node.left : node.right;
  int far = diff < 0 ? node.right : node.left;
  CountSearch(near, query, epsilon, cap, count);
  if (AxisGap(diff) <= epsilon) {
    CountSearch(far, query, epsilon, cap, count);
  }
}

void KdTree::KnnSearch(int node_id, const std::vector<double>& query,
                       std::size_t k, std::vector<Neighbor>* heap) const {
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.row < b.row);
  };
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.is_leaf) {
    for (std::size_t i = node.begin; i < node.end; ++i) {
      std::size_t row = order_[i];
      Neighbor cand{row, PointDistance(query, row)};
      if (heap->size() < k) {
        heap->push_back(cand);
        std::push_heap(heap->begin(), heap->end(), cmp);
      } else if (cmp(cand, heap->front())) {
        std::pop_heap(heap->begin(), heap->end(), cmp);
        heap->back() = cand;
        std::push_heap(heap->begin(), heap->end(), cmp);
      }
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  int near = diff < 0 ? node.left : node.right;
  int far = diff < 0 ? node.right : node.left;
  KnnSearch(near, query, k, heap);
  double worst = heap->size() < k ? std::numeric_limits<double>::infinity()
                                  : heap->front().distance;
  if (AxisGap(diff) <= worst) {
    KnnSearch(far, query, k, heap);
  }
}

std::vector<Neighbor> KdTree::RangeQuery(const Tuple& query,
                                         double epsilon) const {
  std::vector<Neighbor> out;
  if (root_ < 0) return out;
  std::vector<double> q(dims_);
  for (std::size_t a = 0; a < dims_; ++a) q[a] = query[a].num();
  RangeSearch(root_, q, epsilon, &out);
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.row < b.row);
  });
  return out;
}

std::size_t KdTree::CountWithin(const Tuple& query, double epsilon,
                                std::size_t cap) const {
  if (root_ < 0) return 0;
  std::vector<double> q(dims_);
  for (std::size_t a = 0; a < dims_; ++a) q[a] = query[a].num();
  std::size_t count = 0;
  CountSearch(root_, q, epsilon, cap, &count);
  return count;
}

std::vector<Neighbor> KdTree::KNearest(const Tuple& query,
                                       std::size_t k) const {
  std::vector<Neighbor> heap;
  if (root_ < 0 || k == 0) return heap;
  std::vector<double> q(dims_);
  for (std::size_t a = 0; a < dims_; ++a) q[a] = query[a].num();
  heap.reserve(k);
  KnnSearch(root_, q, k, &heap);
  std::sort(heap.begin(), heap.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.row < b.row);
  });
  return heap;
}

}  // namespace disc
