#ifndef DISC_INDEX_BRUTE_FORCE_INDEX_H_
#define DISC_INDEX_BRUTE_FORCE_INDEX_H_

#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/relation.h"
#include "distance/columnar.h"
#include "distance/evaluator.h"
#include "index/neighbor_index.h"

namespace disc {

/// Linear-scan neighbor index. Works for any schema (numeric or string
/// attributes) and any metric; O(n·m) per query. The reference
/// implementation the tree/grid indexes are validated against.
///
/// When the relation is all-numeric and every metric is a scaled absolute
/// difference (ColumnarView::Eligible), queries run on the columnar flat
/// kernels — contiguous double arrays, no virtual dispatch, squared-threshold
/// early exit — with bit-identical results to the scalar path.
class BruteForceIndex : public NeighborIndex {
 public:
  /// Indexes `relation`; both references must outlive the index.
  /// `enable_fast_path` exists for tests and benchmarks that need the
  /// scalar reference path on data that would qualify for the columnar one.
  BruteForceIndex(const Relation& relation, const DistanceEvaluator& evaluator,
                  bool enable_fast_path = true)
      : relation_(relation),
        evaluator_(evaluator),
        metrics_(IndexQueryMetrics::For("brute_force")) {
    if (enable_fast_path) columnar_ = ColumnarView::Build(relation, evaluator);
  }

  const char* Name() const override { return "brute_force"; }
  std::size_t size() const override { return relation_.size(); }
  std::vector<Neighbor> RangeQuery(const Tuple& query,
                                   double epsilon) const override;
  std::size_t CountWithin(const Tuple& query, double epsilon,
                          std::size_t cap = 0) const override;
  std::vector<Neighbor> KNearest(const Tuple& query,
                                 std::size_t k) const override;

  /// The columnar view backing the fast path, or null when the relation is
  /// ineligible (or the fast path was disabled).
  const ColumnarView* columnar_view() const { return columnar_.get(); }

 private:
  const Relation& relation_;
  const DistanceEvaluator& evaluator_;
  /// Process-wide raw-traffic counters, resolved at construction from the
  /// global registry; all-null (guarded no-op increments) when detached.
  IndexQueryMetrics metrics_;
  std::unique_ptr<ColumnarView> columnar_;
};

}  // namespace disc

#endif  // DISC_INDEX_BRUTE_FORCE_INDEX_H_
