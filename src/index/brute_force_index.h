#ifndef DISC_INDEX_BRUTE_FORCE_INDEX_H_
#define DISC_INDEX_BRUTE_FORCE_INDEX_H_

#include <vector>

#include "common/relation.h"
#include "distance/evaluator.h"
#include "index/neighbor_index.h"

namespace disc {

/// Linear-scan neighbor index. Works for any schema (numeric or string
/// attributes) and any metric; O(n·m) per query. The reference
/// implementation the tree/grid indexes are validated against.
class BruteForceIndex : public NeighborIndex {
 public:
  /// Indexes `relation`; both references must outlive the index.
  BruteForceIndex(const Relation& relation, const DistanceEvaluator& evaluator)
      : relation_(relation), evaluator_(evaluator) {}

  std::size_t size() const override { return relation_.size(); }
  std::vector<Neighbor> RangeQuery(const Tuple& query,
                                   double epsilon) const override;
  std::size_t CountWithin(const Tuple& query, double epsilon,
                          std::size_t cap = 0) const override;
  std::vector<Neighbor> KNearest(const Tuple& query,
                                 std::size_t k) const override;

 private:
  const Relation& relation_;
  const DistanceEvaluator& evaluator_;
};

}  // namespace disc

#endif  // DISC_INDEX_BRUTE_FORCE_INDEX_H_
