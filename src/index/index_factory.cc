#include "index/index_factory.h"

#include "common/log.h"
#include "index/brute_force_index.h"
#include "index/grid_index.h"
#include "index/kd_tree.h"

namespace disc {

namespace {

std::unique_ptr<NeighborIndex> LogChoice(std::unique_ptr<NeighborIndex> index,
                                         const Relation& relation) {
  DISC_LOG(DEBUG)
      .Str("impl", index->Name())
      .Uint("rows", relation.size())
      .Uint("arity", relation.arity())
      << "neighbor index built";
  return index;
}

}  // namespace

std::unique_ptr<NeighborIndex> MakeNeighborIndex(
    const Relation& relation, const DistanceEvaluator& evaluator,
    double epsilon_hint, bool force_brute_force) {
  // KdTree / GridIndex hard-code the unit-scale absolute-difference metric;
  // any other evaluator configuration (custom metrics, non-unit scales)
  // must go through BruteForceIndex — which engages its own columnar fast
  // path whenever the relation is all-numeric with scaled-abs-diff metrics.
  if (force_brute_force || !relation.schema().all_numeric() ||
      relation.arity() == 0 || relation.arity() > 63 ||
      !evaluator.AllUnitAbsoluteDifference()) {
    return LogChoice(std::make_unique<BruteForceIndex>(relation, evaluator),
                     relation);
  }
  if (epsilon_hint > 0 && relation.arity() <= GridIndex::kMaxGridDims) {
    return LogChoice(std::make_unique<GridIndex>(relation, epsilon_hint,
                                                 evaluator.norm()),
                     relation);
  }
  return LogChoice(std::make_unique<KdTree>(relation, evaluator.norm()),
                   relation);
}

}  // namespace disc
