#ifndef DISC_INDEX_KD_TREE_H_
#define DISC_INDEX_KD_TREE_H_

#include <cstddef>
#include <vector>

#include "common/cpu_features.h"
#include "common/metrics.h"
#include "common/relation.h"
#include "distance/lp_norm.h"
#include "index/neighbor_index.h"

namespace disc {

/// KD-tree over an all-numeric relation with the default absolute-difference
/// attribute metric. Supports L1/L2/L∞ aggregation. Query cost is
/// O(log n + answer) in low dimensions and degrades gracefully toward a
/// linear scan as m grows (the usual KD-tree behaviour).
///
/// Coordinates live in one flat row-major array (leaf scans stream through
/// contiguous memory), and leaf distance checks use the same
/// threshold-early-exit accumulator semantics as the scalar evaluator
/// (for L2: running d² against ε², one sqrt only on accept) so verdicts
/// match BruteForceIndex exactly.
///
/// Used automatically by MakeNeighborIndex for numeric relations; falls back
/// to BruteForceIndex otherwise.
class KdTree : public NeighborIndex {
 public:
  /// Builds a balanced tree (median splits) over `relation`.
  explicit KdTree(const Relation& relation, LpNorm norm = LpNorm::kL2);

  const char* Name() const override { return "kd_tree"; }
  std::size_t size() const override { return size_; }
  std::vector<Neighbor> RangeQuery(const Tuple& query,
                                   double epsilon) const override;
  std::size_t CountWithin(const Tuple& query, double epsilon,
                          std::size_t cap = 0) const override;
  std::vector<Neighbor> KNearest(const Tuple& query,
                                 std::size_t k) const override;

 private:
  struct Node {
    int left = -1;
    int right = -1;
    std::size_t begin = 0;  // range into order_ for leaves
    std::size_t end = 0;
    std::size_t axis = 0;
    double split = 0;
    bool is_leaf = false;
  };

  static constexpr std::size_t kLeafSize = 16;

  int Build(std::size_t begin, std::size_t end, std::size_t depth);
  /// Coordinate of `point` on `axis` (flat row-major storage).
  double Coord(std::size_t point, std::size_t axis) const {
    return coords_[point * dims_ + axis];
  }
  /// Distance with early exit: +infinity as soon as the running aggregate
  /// exceeds `threshold`, the exact distance otherwise — same recurrence as
  /// DistanceEvaluator::DistanceWithin (bit-identical verdicts).
  double PointDistanceWithin(const std::vector<double>& query,
                             std::size_t point, double threshold) const;
  double AxisGap(double diff) const;

  void RangeSearch(int node, const std::vector<double>& query, double epsilon,
                   std::vector<Neighbor>* out) const;
  void CountSearch(int node, const std::vector<double>& query, double epsilon,
                   std::size_t cap, std::size_t* count) const;
  void KnnSearch(int node, const std::vector<double>& query, std::size_t k,
                 std::vector<Neighbor>* heap) const;

  std::size_t dims_ = 0;
  std::size_t size_ = 0;
  LpNorm norm_;
  /// SIMD tier for the leaf point kernels, latched at construction
  /// (distance/columnar_simd.h; engages at dims_ ≥ simd::kPointMinArity).
  SimdTier simd_tier_ = SimdTier::kScalar;
  /// Process-wide raw-traffic counters, resolved at construction from the
  /// global registry; all-null (guarded no-op increments) when detached.
  IndexQueryMetrics metrics_;
  std::vector<double> coords_;      // flat row-major, point i at [i*m, (i+1)*m)
  std::vector<std::size_t> order_;  // permutation of rows
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace disc

#endif  // DISC_INDEX_KD_TREE_H_
