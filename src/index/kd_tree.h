#ifndef DISC_INDEX_KD_TREE_H_
#define DISC_INDEX_KD_TREE_H_

#include <cstddef>
#include <vector>

#include "common/relation.h"
#include "distance/lp_norm.h"
#include "index/neighbor_index.h"

namespace disc {

/// KD-tree over an all-numeric relation with the default absolute-difference
/// attribute metric. Supports L1/L2/L∞ aggregation. Query cost is
/// O(log n + answer) in low dimensions and degrades gracefully toward a
/// linear scan as m grows (the usual KD-tree behaviour).
///
/// Used automatically by MakeNeighborIndex for numeric relations; falls back
/// to BruteForceIndex otherwise.
class KdTree : public NeighborIndex {
 public:
  /// Builds a balanced tree (median splits) over `relation`.
  explicit KdTree(const Relation& relation, LpNorm norm = LpNorm::kL2);

  std::size_t size() const override { return points_.size(); }
  std::vector<Neighbor> RangeQuery(const Tuple& query,
                                   double epsilon) const override;
  std::size_t CountWithin(const Tuple& query, double epsilon,
                          std::size_t cap = 0) const override;
  std::vector<Neighbor> KNearest(const Tuple& query,
                                 std::size_t k) const override;

 private:
  struct Node {
    int left = -1;
    int right = -1;
    std::size_t begin = 0;  // range into order_ for leaves
    std::size_t end = 0;
    std::size_t axis = 0;
    double split = 0;
    bool is_leaf = false;
  };

  static constexpr std::size_t kLeafSize = 16;

  int Build(std::size_t begin, std::size_t end, std::size_t depth);
  double PointDistance(const std::vector<double>& query,
                       std::size_t point) const;
  double AxisGap(double diff) const;

  void RangeSearch(int node, const std::vector<double>& query, double epsilon,
                   std::vector<Neighbor>* out) const;
  void CountSearch(int node, const std::vector<double>& query, double epsilon,
                   std::size_t cap, std::size_t* count) const;
  void KnnSearch(int node, const std::vector<double>& query, std::size_t k,
                 std::vector<Neighbor>* heap) const;

  std::size_t dims_ = 0;
  LpNorm norm_;
  std::vector<std::vector<double>> points_;  // row-major coordinates
  std::vector<std::size_t> order_;           // permutation of rows
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace disc

#endif  // DISC_INDEX_KD_TREE_H_
