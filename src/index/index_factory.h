#ifndef DISC_INDEX_INDEX_FACTORY_H_
#define DISC_INDEX_INDEX_FACTORY_H_

#include <memory>

#include "common/relation.h"
#include "distance/evaluator.h"
#include "index/neighbor_index.h"

namespace disc {

/// Picks the best index for a relation:
///  - GridIndex for all-numeric relations with <= GridIndex::kMaxGridDims
///    attributes when a positive `epsilon_hint` is supplied,
///  - KdTree for other all-numeric relations,
///  - BruteForceIndex otherwise (string attributes or custom metrics).
///
/// The KdTree/GridIndex fast paths assume the evaluator uses the default
/// unit-scale absolute-difference metric per attribute; when that does not
/// hold the factory detects it (metric introspection) and falls back to
/// BruteForceIndex automatically. `force_brute_force` still forces the
/// fallback explicitly (e.g. for reference comparisons in tests).
std::unique_ptr<NeighborIndex> MakeNeighborIndex(
    const Relation& relation, const DistanceEvaluator& evaluator,
    double epsilon_hint = 0, bool force_brute_force = false);

}  // namespace disc

#endif  // DISC_INDEX_INDEX_FACTORY_H_
