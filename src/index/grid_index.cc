#include "index/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "distance/columnar_simd.h"

namespace disc {

GridIndex::GridIndex(const Relation& relation, double cell_size, LpNorm norm)
    : dims_(relation.arity()),
      size_(relation.size()),
      cell_size_(cell_size),
      norm_(norm),
      simd_tier_(ActiveSimdTier()),
      metrics_(IndexQueryMetrics::For("grid")) {
  coords_.resize(size_ * dims_);
  for (std::size_t i = 0; i < size_; ++i) {
    const Tuple& t = relation[i];
    for (std::size_t a = 0; a < dims_; ++a) coords_[i * dims_ + a] = t[a].num();
  }
  for (std::size_t i = 0; i < size_; ++i) {
    cells_[KeyFor(coords_.data() + i * dims_)].push_back(i);
  }
}

std::vector<double> GridIndex::Coords(const Tuple& t) const {
  std::vector<double> coords(dims_);
  for (std::size_t a = 0; a < dims_; ++a) coords[a] = t[a].num();
  return coords;
}

GridIndex::CellKey GridIndex::KeyFor(const double* coords) const {
  // Hash-combine the per-axis cell indices into a 64-bit key.
  CellKey key = 1469598103934665603ull;  // FNV offset basis
  for (std::size_t a = 0; a < dims_; ++a) {
    auto cell = static_cast<std::int64_t>(std::floor(coords[a] / cell_size_));
    key ^= static_cast<CellKey>(cell) + 0x9E3779B97F4A7C15ull + (key << 6) +
           (key >> 2);
  }
  return key;
}

double GridIndex::PointDistanceWithin(const std::vector<double>& query,
                                      std::size_t point,
                                      double threshold) const {
  const double* p = coords_.data() + point * dims_;
  double exact = 0;
  switch (simd::PointWithinPrepass(simd_tier_, query.data(), p, dims_, norm_,
                                   threshold, &exact)) {
    case simd::Verdict::kCertainReject:
      return std::numeric_limits<double>::infinity();
    case simd::Verdict::kExact:
      return exact;
    case simd::Verdict::kMaybeWithin:
    case simd::Verdict::kUnsupported:
      break;
  }
  LpAccumulator acc(norm_);
  for (std::size_t a = 0; a < dims_; ++a) {
    acc.Add(std::fabs(query[a] - p[a]));
    if (acc.Exceeds(threshold)) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return acc.Total();
}

template <typename Visitor>
void GridIndex::VisitNearbyCells(const std::vector<double>& query,
                                 int radius_cells, Visitor&& visit) const {
  // The (2r+1)^m odometer walk only pays off while it probes fewer cells
  // than exist; past that, a linear pass over all points is strictly
  // cheaper (far-away queries would otherwise explode the ring search).
  double probes = 1;
  for (std::size_t a = 0; a < dims_; ++a) {
    probes *= 2.0 * radius_cells + 1.0;
    if (probes > static_cast<double>(size_) + 64.0) {
      for (std::size_t row = 0; row < size_; ++row) {
        if (!visit(row)) return;
      }
      return;
    }
  }

  std::vector<std::int64_t> base(dims_);
  for (std::size_t a = 0; a < dims_; ++a) {
    base[a] = static_cast<std::int64_t>(std::floor(query[a] / cell_size_));
  }
  // Iterate over the (2r+1)^m neighborhood with an odometer.
  std::vector<int> offset(dims_, -radius_cells);
  std::vector<double> probe(dims_);
  while (true) {
    for (std::size_t a = 0; a < dims_; ++a) {
      probe[a] = (static_cast<double>(base[a] + offset[a]) + 0.5) * cell_size_;
    }
    auto it = cells_.find(KeyFor(probe.data()));
    if (it != cells_.end()) {
      for (std::size_t row : it->second) {
        if (!visit(row)) return;
      }
    }
    // Advance odometer.
    std::size_t axis = 0;
    while (axis < dims_ && offset[axis] == radius_cells) {
      offset[axis] = -radius_cells;
      ++axis;
    }
    if (axis == dims_) break;
    ++offset[axis];
  }
}

std::vector<Neighbor> GridIndex::RangeQuery(const Tuple& query,
                                            double epsilon) const {
  if (metrics_.range_queries != nullptr) metrics_.range_queries->Add();
  std::vector<Neighbor> out;
  std::vector<double> q = Coords(query);
  int radius = static_cast<int>(std::ceil(epsilon / cell_size_));
  VisitNearbyCells(q, radius, [&](std::size_t row) {
    double d = PointDistanceWithin(q, row, epsilon);
    if (d <= epsilon) out.push_back({row, d});
    return true;
  });
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.row < b.row);
  });
  return out;
}

std::size_t GridIndex::CountWithin(const Tuple& query, double epsilon,
                                   std::size_t cap) const {
  if (metrics_.count_queries != nullptr) metrics_.count_queries->Add();
  std::vector<double> q = Coords(query);
  int radius = static_cast<int>(std::ceil(epsilon / cell_size_));
  std::size_t count = 0;
  VisitNearbyCells(q, radius, [&](std::size_t row) {
    if (PointDistanceWithin(q, row, epsilon) <= epsilon) {
      ++count;
      if (cap != 0 && count >= cap) return false;
    }
    return true;
  });
  return count;
}

std::vector<Neighbor> GridIndex::KNearest(const Tuple& query,
                                          std::size_t k) const {
  // Grow the search radius ring by ring until k are found and the next ring
  // cannot improve. Falls back to a full scan in the worst case.
  if (metrics_.knn_queries != nullptr) metrics_.knn_queries->Add();
  if (k == 0 || size_ == 0) return {};
  std::vector<double> q = Coords(query);
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.row < b.row);
  };
  for (int radius = 1;; radius *= 2) {
    double eps = static_cast<double>(radius) * cell_size_;
    std::vector<Neighbor> hits = RangeQuery(query, eps);
    if (hits.size() >= k) {
      hits.resize(k);
      return hits;
    }
    // All points fit within the scanned area? Then return what we have.
    if (static_cast<std::size_t>(radius) * 2 > size_ + 2 * dims_ + 64) {
      std::vector<Neighbor> all;
      all.reserve(size_);
      for (std::size_t row = 0; row < size_; ++row) {
        all.push_back(
            {row, PointDistanceWithin(
                      q, row, std::numeric_limits<double>::infinity())});
      }
      std::sort(all.begin(), all.end(), cmp);
      if (k < all.size()) all.resize(k);
      return all;
    }
  }
}

}  // namespace disc
