#ifndef DISC_INDEX_GRID_INDEX_H_
#define DISC_INDEX_GRID_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/cpu_features.h"
#include "common/metrics.h"
#include "common/relation.h"
#include "distance/lp_norm.h"
#include "index/neighbor_index.h"

namespace disc {

/// Uniform grid over an all-numeric relation with cell side `cell_size`.
/// Tailored to fixed-ε range queries: with cell_size = ε, a range query only
/// inspects the 3^m cells around the query point, which is very fast for
/// small m (the GPS / Flight datasets with m = 3). Degrades in higher
/// dimensions — the factory prefers KdTree above kMaxGridDims.
class GridIndex : public NeighborIndex {
 public:
  /// Builds the grid. `cell_size` must be > 0; typically the query ε.
  GridIndex(const Relation& relation, double cell_size,
            LpNorm norm = LpNorm::kL2);

  /// Grids stay efficient only in very low dimension.
  static constexpr std::size_t kMaxGridDims = 4;

  const char* Name() const override { return "grid"; }
  std::size_t size() const override { return size_; }
  std::vector<Neighbor> RangeQuery(const Tuple& query,
                                   double epsilon) const override;
  std::size_t CountWithin(const Tuple& query, double epsilon,
                          std::size_t cap = 0) const override;
  std::vector<Neighbor> KNearest(const Tuple& query,
                                 std::size_t k) const override;

 private:
  using CellKey = std::uint64_t;

  CellKey KeyFor(const double* coords) const;
  std::vector<double> Coords(const Tuple& t) const;
  /// Distance with early exit: +infinity as soon as the running aggregate
  /// exceeds `threshold`, the exact distance otherwise — same recurrence as
  /// DistanceEvaluator::DistanceWithin (bit-identical verdicts).
  double PointDistanceWithin(const std::vector<double>& query,
                             std::size_t point, double threshold) const;

  /// Visits every point in cells within `radius_cells` of the query cell.
  template <typename Visitor>
  void VisitNearbyCells(const std::vector<double>& query, int radius_cells,
                        Visitor&& visit) const;

  std::size_t dims_ = 0;
  std::size_t size_ = 0;
  double cell_size_ = 1;
  LpNorm norm_;
  /// SIMD tier for the point kernels, latched at construction. Dormant
  /// while kMaxGridDims < simd::kPointMinArity, but keeps the dispatch
  /// rule in one place (distance/columnar_simd.h).
  SimdTier simd_tier_ = SimdTier::kScalar;
  /// Process-wide raw-traffic counters, resolved at construction from the
  /// global registry; all-null (guarded no-op increments) when detached.
  /// KNearest's expanding-ring probes call RangeQuery internally; that
  /// internal traffic is counted too (these meter raw index calls, unlike
  /// the logical SearchStats unit).
  IndexQueryMetrics metrics_;
  std::vector<double> coords_;  // flat row-major, point i at [i*m, (i+1)*m)
  std::unordered_map<CellKey, std::vector<std::size_t>> cells_;
};

}  // namespace disc

#endif  // DISC_INDEX_GRID_INDEX_H_
