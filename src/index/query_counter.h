#ifndef DISC_INDEX_QUERY_COUNTER_H_
#define DISC_INDEX_QUERY_COUNTER_H_

#include <cstddef>

#include "index/neighbor_index.h"

namespace disc {

/// Per-search tally of neighbor-index work. Not thread-safe by design: each
/// concurrent search owns its own counter (the batch driver sums them), so
/// counting stays free of atomics on the hot path.
class QueryCounter {
 public:
  /// Records `n` queries.
  void Add(std::size_t n = 1) { count_ += n; }
  /// Queries recorded so far.
  std::size_t count() const { return count_; }
  /// Resets to zero.
  void Reset() { count_ = 0; }

 private:
  std::size_t count_ = 0;
};

/// Decorator that counts every query against a wrapped NeighborIndex.
///
/// The wrapped index stays shared and immutable (see the thread-safety
/// contract in DESIGN.md §5); the decorator itself is cheap to construct
/// per search, so each search can meter its own index traffic — the
/// `max_index_queries` budget of SearchBudget and the per-record
/// `index_queries` statistic are fed from these counts. Both references
/// must outlive the decorator.
class CountingNeighborIndex : public NeighborIndex {
 public:
  CountingNeighborIndex(const NeighborIndex& base, QueryCounter* counter)
      : base_(base), counter_(counter) {}

  std::size_t size() const override { return base_.size(); }

  std::vector<Neighbor> RangeQuery(const Tuple& query,
                                   double epsilon) const override {
    counter_->Add();
    return base_.RangeQuery(query, epsilon);
  }

  std::size_t CountWithin(const Tuple& query, double epsilon,
                          std::size_t cap = 0) const override {
    counter_->Add();
    return base_.CountWithin(query, epsilon, cap);
  }

  std::vector<Neighbor> KNearest(const Tuple& query,
                                 std::size_t k) const override {
    counter_->Add();
    return base_.KNearest(query, k);
  }

 private:
  const NeighborIndex& base_;
  QueryCounter* counter_;
};

}  // namespace disc

#endif  // DISC_INDEX_QUERY_COUNTER_H_
