#ifndef DISC_INDEX_KTH_NEIGHBOR_CACHE_H_
#define DISC_INDEX_KTH_NEIGHBOR_CACHE_H_

#include <vector>

#include "common/relation.h"
#include "index/neighbor_index.h"

namespace disc {

/// Precomputes δ_η(t) — the distance from each indexed tuple t to its η-th
/// nearest neighbor within the same relation (self excluded: a tuple counts
/// itself as one of its ε-neighbors per Formula 4, so the η-th neighbor of t
/// in r including t itself is the (η-1)-th other tuple).
///
/// This is the quantity Algorithm 1 line 4 filters on: t qualifies for the
/// upper bound of Proposition 5 iff δ_η(t) ≤ ε − Δ(t_o[X], t[X]).
class KthNeighborCache {
 public:
  /// Builds the cache by running an η-NN query per tuple.
  /// `self_counts`: when true (default, matching Formula 4) the tuple itself
  /// is counted among its neighbors.
  KthNeighborCache(const Relation& relation, const NeighborIndex& index,
                   std::size_t eta, bool self_counts = true);

  /// δ_η for tuple `row`.
  double delta(std::size_t row) const { return deltas_[row]; }
  /// All δ_η values, indexed by row.
  const std::vector<double>& deltas() const { return deltas_; }
  /// The η the cache was built for.
  std::size_t eta() const { return eta_; }

 private:
  std::size_t eta_;
  std::vector<double> deltas_;
};

}  // namespace disc

#endif  // DISC_INDEX_KTH_NEIGHBOR_CACHE_H_
