#ifndef DISC_CORE_OUTLIER_SAVING_H_
#define DISC_CORE_OUTLIER_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/relation.h"
#include "constraints/distance_constraint.h"
#include "core/disc_saver.h"
#include "core/exact_saver.h"
#include "core/search_budget.h"
#include "distance/evaluator.h"

namespace disc {

class ExplainSink;
class MetricsRegistry;
class TraceSink;

/// Dataset-level outlier-saving options (paper §2.2 / §1.2).
struct OutlierSavingOptions {
  /// The distance constraint (ε, η).
  DistanceConstraint constraint;
  /// Per-outlier search options (κ restriction, pruning, budget).
  SaveOptions save;
  /// Natural-outlier guard: an outlier whose best adjustment changes more
  /// than this many attributes is deemed a natural outlier and left
  /// unchanged (0 = disabled). Errors are expected to touch only a few
  /// attributes (§1.2); natural outliers are separable in many.
  std::size_t natural_attribute_threshold = 0;
  /// Columnar fast path + per-search distance caching for the DISC search
  /// (see DESIGN.md, "Two-tier distance architecture"). Engages only when
  /// the data qualifies (all-numeric schema, scaled-absolute-difference
  /// metrics); results are bit-identical either way, so disabling exists
  /// only for reference comparisons and ablation.
  bool use_columnar_fast_path = true;
  /// Use the exact enumeration algorithm instead of the DISC approximation
  /// (only tractable for small m and small attribute domains).
  bool use_exact = false;
  /// Candidate budget for the exact algorithm (0 = unlimited).
  std::size_t exact_max_candidates = 0;
  /// Worker threads for batch saving (DISC path only; the exact saver stays
  /// sequential). 1 = in-caller sequential saving, 0 = one worker per
  /// hardware thread. Results are bit-identical for every value — see
  /// DiscSaver::SaveAll.
  std::size_t num_threads = 1;
  /// Wall-clock budget for the whole pipeline in milliseconds, measured
  /// from SaveOutliers entry (it therefore also covers the index build and
  /// inlier/outlier split). 0 = unlimited. When the budget runs out the
  /// remaining searches degrade gracefully: each outlier still gets a
  /// record, carrying the best feasible incumbent found within its fair
  /// share of the time (see DiscSaver::SaveAll) or the untouched tuple,
  /// with OutlierRecord::termination saying what happened. The overall
  /// status stays OK — degradation is reported, not failed.
  std::int64_t batch_deadline_ms = 0;
  /// Per-outlier wall-clock cap in milliseconds (0 = unlimited),
  /// intersected with the fair batch share.
  std::int64_t per_outlier_deadline_ms = 0;
  /// Cooperative cancellation for the whole pipeline. Fires between index
  /// scans and node expansions; already-running searches return their
  /// incumbent, queued ones drain-and-skip.
  CancellationToken cancellation;
  /// Optional metrics registry (null = metrics disabled, the default).
  /// Counters are flushed once per batch from the already-merged per-search
  /// stats — attaching a registry adds no work to the search hot paths. The
  /// registry must outlive the call. See DESIGN.md §8 for the metric names.
  MetricsRegistry* metrics = nullptr;
  /// Optional trace sink (null = tracing disabled, the default). Receives
  /// one "split" span plus one "save_outlier" span per outlier, emitted
  /// from the sequential merge loop in input order, each carrying the full
  /// SearchStats as attributes. Must outlive the call.
  TraceSink* trace = nullptr;
  /// Optional explain sink (null = explain disabled, the default). Receives
  /// one decision log per searched outlier (obs/explain.h) in input order —
  /// which bounds pruned which subtrees, how the incumbent evolved, how
  /// tight the bounds ran. A globally attached ExplainRecorder
  /// (AttachGlobalExplainRecorder) captures the same logs for /explainz
  /// without a sink. Must outlive the call. See DESIGN.md §14.
  ExplainSink* explain = nullptr;
  /// Path of a SaveJournal to append definitive per-outlier results to
  /// (empty = no journaling, the default). DISC path only. With a journal
  /// the pipeline becomes crash-safe: re-running with
  /// `resume_from_journal` restores journaled verdicts instead of
  /// re-searching them, and the merged result is bit-identical to an
  /// uninterrupted run. See DESIGN.md §11.
  std::string journal_path;
  /// Resume from `journal_path` if it exists and matches this batch
  /// (same outlier count, arity, ε, η, κ — anything else is a
  /// FailedPrecondition error). A missing journal file simply starts
  /// fresh.
  bool resume_from_journal = false;
  /// Retry policy for transiently-failed searches (kFault terminations;
  /// also re-runs budget-truncated searches when deadline slack remains).
  /// Default = disabled. DISC path only.
  RetryPolicy retry;
};

/// Why an outlier ended up saved or not.
enum class OutlierDisposition {
  kSaved,           ///< feasible adjustment applied
  kNaturalOutlier,  ///< feasible but too many attributes — left unchanged
  kInfeasible,      ///< no feasible adjustment exists / was found
};

/// Lower-case identifier for logs/JSON/metrics ("saved", "natural_outlier",
/// "infeasible").
const char* OutlierDispositionName(OutlierDisposition d);

/// Per-outlier record of what happened.
struct OutlierRecord {
  std::size_t row = 0;  ///< row in the original relation
  OutlierDisposition disposition = OutlierDisposition::kInfeasible;
  /// How this outlier's search ended. kCompleted/kInfeasible are definitive
  /// verdicts; kDeadline/kCancelled/kVisitBudget/kQueryBudget mean the
  /// search was truncated and the record holds the best anytime answer —
  /// when `disposition` is kSaved the adjustment is still fully feasible,
  /// it just may not be the cheapest one a full search would find.
  SaveTermination termination = SaveTermination::kCompleted;
  Tuple adjusted;
  double cost = 0;
  AttributeSet adjusted_attributes;
  double lower_bound = 0;
  /// Logical neighbor-index queries this outlier's search spent.
  std::size_t index_queries = 0;
  /// Full per-search work counters (`index_queries` above always equals
  /// `stats.index_queries`). Bit-identical across thread counts except for
  /// the timing fields — see SearchStats::SameWork.
  SearchStats stats;
  /// Trace id of this outlier's span tree (0 when tracing was off, the
  /// record was restored from a journal, or the exact path ran). Links the
  /// record to its spans in the trace sink, the /tracez ring, and the
  /// wall-time histogram exemplars. Excluded from work parity.
  std::uint64_t trace_id = 0;
};

/// Result of saving all outliers of a dataset.
struct SavedDataset {
  /// OK unless the pipeline rejected its input (e.g. a schema wider than
  /// kMaxSaveableAttributes). On error `repaired` is the unmodified input
  /// and no records are produced. Deadline/budget degradation does NOT make
  /// this non-OK — check degraded() / DegradationStatus() for that.
  Status status;
  /// The full dataset with saved outliers' values adjusted in place.
  Relation repaired;
  /// Rows that violated the constraint (the outlier set s).
  std::vector<std::size_t> outlier_rows;
  /// Rows that satisfied the constraint (the inlier set r).
  std::vector<std::size_t> inlier_rows;
  /// One record per outlier row, in the same order as `outlier_rows`.
  std::vector<OutlierRecord> records;
  /// Neighbor-index queries spent on the inlier/outlier split phase
  /// (always equals `split_stats.index_queries`).
  std::size_t split_index_queries = 0;
  /// Work counters of the split phase (index traffic plus wall time).
  SearchStats split_stats;

  /// Aggregate work of the whole pipeline: `split_stats` plus every
  /// record's per-search stats, merged in input order (deterministic, and
  /// identical across thread counts up to the timing fields).
  SearchStats stats() const;

  /// Number of records with the given disposition.
  std::size_t CountDisposition(OutlierDisposition d) const;
  /// Number of records with the given termination reason.
  std::size_t CountTermination(SaveTermination t) const;
  /// True when at least one search was truncated (any termination other
  /// than kCompleted / kInfeasible).
  bool degraded() const;
  /// OK when nothing degraded; otherwise the most severe truncation as a
  /// Status — Cancelled over DeadlineExceeded over ResourceExhausted — with
  /// a message tallying the affected records. Advisory: the dataset in
  /// `repaired` is valid either way.
  Status DegradationStatus() const;
  /// Mean adjustment cost over saved outliers (0 when none).
  double MeanAdjustmentCost() const;
  /// Mean number of adjusted attributes over saved outliers (0 when none).
  double MeanAdjustedAttributes() const;
};

/// The end-to-end DISC pipeline of §2.2: split `data` into inliers r and
/// outliers s under the constraint, then save each outlier against r
/// (Algorithm 1, or the exact algorithm when `use_exact`). Outliers are
/// saved independently — each is adjusted w.r.t. the fixed inlier set, so
/// the order of processing does not matter; with `num_threads` > 1 the
/// per-outlier searches run on a WorkStealingPool with bit-identical
/// results.
/// Check `SavedDataset::status` first: a schema wider than
/// kMaxSaveableAttributes is rejected rather than silently truncated.
///
/// Anytime contract: with `batch_deadline_ms` / `per_outlier_deadline_ms` /
/// `cancellation` set, the call still returns a complete SavedDataset —
/// every outlier row gets a record, every applied adjustment is fully
/// feasible (≥ η ε-neighbors), and truncated searches are marked via
/// OutlierRecord::termination. See DESIGN.md, "Anytime saving &
/// degradation contract".
SavedDataset SaveOutliers(const Relation& data,
                          const DistanceEvaluator& evaluator,
                          const OutlierSavingOptions& options);

}  // namespace disc

#endif  // DISC_CORE_OUTLIER_SAVING_H_
