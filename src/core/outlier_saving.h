#ifndef DISC_CORE_OUTLIER_SAVING_H_
#define DISC_CORE_OUTLIER_SAVING_H_

#include <cstddef>
#include <vector>

#include "common/relation.h"
#include "constraints/distance_constraint.h"
#include "core/disc_saver.h"
#include "core/exact_saver.h"
#include "distance/evaluator.h"

namespace disc {

/// Dataset-level outlier-saving options (paper §2.2 / §1.2).
struct OutlierSavingOptions {
  /// The distance constraint (ε, η).
  DistanceConstraint constraint;
  /// Per-outlier search options (κ restriction, pruning, budget).
  SaveOptions save;
  /// Natural-outlier guard: an outlier whose best adjustment changes more
  /// than this many attributes is deemed a natural outlier and left
  /// unchanged (0 = disabled). Errors are expected to touch only a few
  /// attributes (§1.2); natural outliers are separable in many.
  std::size_t natural_attribute_threshold = 0;
  /// Use the exact enumeration algorithm instead of the DISC approximation
  /// (only tractable for small m and small attribute domains).
  bool use_exact = false;
  /// Candidate budget for the exact algorithm (0 = unlimited).
  std::size_t exact_max_candidates = 0;
  /// Worker threads for batch saving (DISC path only; the exact saver stays
  /// sequential). 1 = in-caller sequential saving, 0 = one worker per
  /// hardware thread. Results are bit-identical for every value — see
  /// DiscSaver::SaveAll.
  std::size_t num_threads = 1;
};

/// Why an outlier ended up saved or not.
enum class OutlierDisposition {
  kSaved,           ///< feasible adjustment applied
  kNaturalOutlier,  ///< feasible but too many attributes — left unchanged
  kInfeasible,      ///< no feasible adjustment exists / was found
};

/// Per-outlier record of what happened.
struct OutlierRecord {
  std::size_t row = 0;  ///< row in the original relation
  OutlierDisposition disposition = OutlierDisposition::kInfeasible;
  Tuple adjusted;
  double cost = 0;
  AttributeSet adjusted_attributes;
  double lower_bound = 0;
};

/// Result of saving all outliers of a dataset.
struct SavedDataset {
  /// OK unless the pipeline rejected its input (e.g. a schema wider than
  /// kMaxSaveableAttributes). On error `repaired` is the unmodified input
  /// and no records are produced.
  Status status;
  /// The full dataset with saved outliers' values adjusted in place.
  Relation repaired;
  /// Rows that violated the constraint (the outlier set s).
  std::vector<std::size_t> outlier_rows;
  /// Rows that satisfied the constraint (the inlier set r).
  std::vector<std::size_t> inlier_rows;
  /// One record per outlier row, in the same order as `outlier_rows`.
  std::vector<OutlierRecord> records;

  /// Number of records with the given disposition.
  std::size_t CountDisposition(OutlierDisposition d) const;
  /// Mean adjustment cost over saved outliers (0 when none).
  double MeanAdjustmentCost() const;
  /// Mean number of adjusted attributes over saved outliers (0 when none).
  double MeanAdjustedAttributes() const;
};

/// The end-to-end DISC pipeline of §2.2: split `data` into inliers r and
/// outliers s under the constraint, then save each outlier against r
/// (Algorithm 1, or the exact algorithm when `use_exact`). Outliers are
/// saved independently — each is adjusted w.r.t. the fixed inlier set, so
/// the order of processing does not matter; with `num_threads` > 1 the
/// per-outlier searches run on a ThreadPool with bit-identical results.
/// Check `SavedDataset::status` first: a schema wider than
/// kMaxSaveableAttributes is rejected rather than silently truncated.
SavedDataset SaveOutliers(const Relation& data,
                          const DistanceEvaluator& evaluator,
                          const OutlierSavingOptions& options);

}  // namespace disc

#endif  // DISC_CORE_OUTLIER_SAVING_H_
