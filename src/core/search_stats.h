#ifndef DISC_CORE_SEARCH_STATS_H_
#define DISC_CORE_SEARCH_STATS_H_

#include <cstddef>
#include <cstdint>

#include "index/neighbor_index.h"

namespace disc {

class JsonWriter;
class MetricsRegistry;
struct TraceSpan;

/// Work counters for one outlier search (or one pipeline phase).
///
/// Counting contract: a SearchStats is a plain struct owned by exactly one
/// search (it travels inside that search's BudgetGauge), so the hot path
/// pays one non-atomic increment per event — never an atomic, never a lock.
/// Cross-thread aggregation happens only after the per-search results are
/// merged in input order (DiscSaver::SaveAll), which both keeps the counting
/// race-free and makes every aggregate bit-identical for any thread count.
///
/// Every field except the timing pair (`wall_nanos`, `start_ns`) is
/// deterministic for a fixed input: the searches themselves are
/// deterministic, so SameWork() — which ignores the timing fields — holds
/// across thread counts and is asserted by tests/search_stats_test.cc.
struct SearchStats {
  /// Branch-and-bound node expansions (exact saver: candidates checked).
  std::uint64_t nodes_expanded = 0;
  /// Distinct attribute sets X visited (deduplicated nodes).
  std::uint64_t visited_sets = 0;
  /// Subtrees cut by the Proposition-3 lower-bound pruning rule.
  std::uint64_t lb_prunes = 0;
  /// Proposition-3 lower-bound computations (LowerBoundForX).
  std::uint64_t prop3_bounds = 0;
  /// Proposition-5 upper-bound computations (UpperBoundForX).
  std::uint64_t prop5_bounds = 0;
  /// Exact feasibility checks (IsFeasible; ε-count against the index).
  std::uint64_t feasibility_checks = 0;
  /// Per-search distance-cache row requests served from memo / filled.
  std::uint64_t dcache_hits = 0;
  std::uint64_t dcache_misses = 0;
  /// Raw index traffic by query kind.
  std::uint64_t index_range_queries = 0;
  std::uint64_t index_count_queries = 0;
  std::uint64_t index_knn_queries = 0;
  /// Logical index queries — the unit metered by
  /// SearchBudget::max_index_queries: one per bound computation, kNN and
  /// feasibility check. Kept bit-identical to the pre-telemetry
  /// QueryCounter tally (this is the field `split_index_queries` and
  /// OutlierRecord::index_queries are fed from).
  std::uint64_t index_queries = 0;
  /// Attributes restored to their original value by the RevertRefine
  /// post-pass (each revert kept the adjustment feasible and strictly
  /// cheaper). Deterministic; cross-checked against the explain layer's
  /// revert_refine events (obs/explain.h).
  std::uint64_t revert_refines = 0;
  /// Retry attempts consumed by this search under SaveAll's RetryPolicy
  /// (attempts − 1; zero when retries are disabled or the first attempt
  /// stood). The reported counters describe the final attempt only.
  std::uint64_t retries = 0;
  /// Wall clock of the search. Summed by MergeFrom; excluded from
  /// SameWork() — timing is the one nondeterministic measurement.
  std::uint64_t wall_nanos = 0;
  /// Steady-clock start (TraceNowNs units); MergeFrom keeps the earliest
  /// nonzero start. Excluded from SameWork().
  std::uint64_t start_ns = 0;

  /// Accumulates `other` into this (sums; start_ns takes the earliest).
  void MergeFrom(const SearchStats& other);

  /// True when every deterministic work counter matches (timing ignored).
  bool SameWork(const SearchStats& other) const;

  /// Appends the counter fields to an open JSON object (schema: one
  /// "<field>": uint per counter, plus "wall_nanos").
  void AppendJson(JsonWriter* json) const;

  /// Attaches the counter fields to a trace span as integer attributes.
  void AttachTo(TraceSpan* span) const;

  /// Adds every counter into `disc_save_<field>_total` registry counters —
  /// the once-per-batch flush that keeps atomics off the search hot path.
  void FlushTo(MetricsRegistry* registry) const;
};

/// Decorator that meters every query against a wrapped NeighborIndex into a
/// SearchStats (both the per-kind counters and the logical
/// `index_queries` total — one per call, exactly the unit the old
/// QueryCounter recorded, so budget accounting is bit-identical).
///
/// The wrapped index stays shared and immutable (thread-safety contract of
/// DESIGN.md §5); the decorator itself is cheap to construct per search or
/// per phase, and the stats struct is owned by that single search/phase, so
/// counting stays free of atomics on the hot path. Both references must
/// outlive the decorator.
class StatsNeighborIndex : public NeighborIndex {
 public:
  StatsNeighborIndex(const NeighborIndex& base, SearchStats* stats)
      : base_(base), stats_(stats) {}

  const char* Name() const override { return base_.Name(); }
  std::size_t size() const override { return base_.size(); }

  std::vector<Neighbor> RangeQuery(const Tuple& query,
                                   double epsilon) const override {
    ++stats_->index_range_queries;
    ++stats_->index_queries;
    return base_.RangeQuery(query, epsilon);
  }

  std::size_t CountWithin(const Tuple& query, double epsilon,
                          std::size_t cap = 0) const override {
    ++stats_->index_count_queries;
    ++stats_->index_queries;
    return base_.CountWithin(query, epsilon, cap);
  }

  std::vector<Neighbor> KNearest(const Tuple& query,
                                 std::size_t k) const override {
    ++stats_->index_knn_queries;
    ++stats_->index_queries;
    return base_.KNearest(query, k);
  }

 private:
  const NeighborIndex& base_;
  SearchStats* stats_;
};

}  // namespace disc

#endif  // DISC_CORE_SEARCH_STATS_H_
