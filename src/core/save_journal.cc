#include "core/save_journal.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/fault.h"
#include "common/json_writer.h"
#include "common/stringutil.h"

namespace disc {
namespace {

// ---------------------------------------------------------------------------
// Serialization. Doubles go through printf "%a" / strtod, which round-trips
// the exact bit pattern (including negative zero, subnormals and infinities)
// through text — the property the resume bit-identity guarantee rests on.

std::string HexDouble(double v) { return StrFormat("%a", v); }

bool ParseHexDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  const char* begin = s.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end != begin + s.size()) return false;
  *out = v;
  return true;
}

bool ParseTerminationName(const std::string& s, SaveTermination* out) {
  static constexpr SaveTermination kAll[] = {
      SaveTermination::kCompleted,   SaveTermination::kVisitBudget,
      SaveTermination::kQueryBudget, SaveTermination::kDeadline,
      SaveTermination::kCancelled,   SaveTermination::kInfeasible,
      SaveTermination::kFault,
  };
  for (SaveTermination t : kAll) {
    if (s == SaveTerminationName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser — just enough for the journal's
// own output (objects, arrays, strings with standard escapes, numbers,
// booleans, null). Numbers keep their raw token so 64-bit counters parse
// exactly instead of through a double.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  // string payload, or the raw number token
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == s_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const std::size_t len = std::string_view(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->text);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->items.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char esc = s_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            pos_ += 4;
            // UTF-8 encode; the writer only emits \u for control chars but
            // accept the full BMP for robustness.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return false;
        }
        continue;
      }
      *out += c;
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    out->kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->text = s_.substr(start, pos_ - start);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Typed field accessors; every getter fails loudly so a corrupt journal is
// rejected rather than half-read.

bool GetUint(const JsonValue& obj, const std::string& key,
             std::uint64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return false;
  const char* begin = v->text.c_str();
  char* end = nullptr;
  *out = std::strtoull(begin, &end, 10);
  return end == begin + v->text.size();
}

bool GetBool(const JsonValue& obj, const std::string& key, bool* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kBool) return false;
  *out = v->boolean;
  return true;
}

bool GetHexDouble(const JsonValue& obj, const std::string& key, double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) return false;
  return ParseHexDouble(v->text, out);
}

bool GetString(const JsonValue& obj, const std::string& key,
               std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) return false;
  *out = v->text;
  return true;
}

struct StatsField {
  const char* name;
  std::uint64_t SearchStats::* member;
};

// Journal-side mirror of the SearchStats fields, including the timing pair
// (a resumed outlier reports the wall clock of the run that computed it).
constexpr StatsField kStatsFields[] = {
    {"nodes_expanded", &SearchStats::nodes_expanded},
    {"visited_sets", &SearchStats::visited_sets},
    {"lb_prunes", &SearchStats::lb_prunes},
    {"prop3_bounds", &SearchStats::prop3_bounds},
    {"prop5_bounds", &SearchStats::prop5_bounds},
    {"feasibility_checks", &SearchStats::feasibility_checks},
    {"dcache_hits", &SearchStats::dcache_hits},
    {"dcache_misses", &SearchStats::dcache_misses},
    {"index_range_queries", &SearchStats::index_range_queries},
    {"index_count_queries", &SearchStats::index_count_queries},
    {"index_knn_queries", &SearchStats::index_knn_queries},
    {"index_queries", &SearchStats::index_queries},
    {"revert_refines", &SearchStats::revert_refines},
    {"retries", &SearchStats::retries},
    {"wall_nanos", &SearchStats::wall_nanos},
    {"start_ns", &SearchStats::start_ns},
};

std::string RenderEntry(std::uint64_t ordinal, const SaveResult& r) {
  JsonWriter json;
  json.BeginObject();
  json.Key("kind").String("entry");
  json.Key("ordinal").Uint(ordinal);
  json.Key("termination").String(SaveTerminationName(r.termination));
  json.Key("feasible").Bool(r.feasible);
  json.Key("cost").String(HexDouble(r.cost));
  json.Key("lower_bound").String(HexDouble(r.lower_bound));
  json.Key("kappa_exceeded").Bool(r.kappa_exceeded);
  json.Key("adjusted_attributes").Uint(r.adjusted_attributes.bits());
  json.Key("pruned_sets").Uint(r.pruned_sets);
  json.Key("adjusted").BeginArray();
  for (const Value& v : r.adjusted) {
    json.BeginObject();
    if (v.is_numeric()) {
      json.Key("n").String(HexDouble(v.num()));
    } else {
      json.Key("s").String(v.str());
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("stats").BeginObject();
  for (const StatsField& field : kStatsFields) {
    json.Key(field.name).Uint(r.stats.*field.member);
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

bool ParseEntry(const JsonValue& obj, SaveJournalEntry* out) {
  SaveResult& r = out->result;
  std::string termination;
  if (!GetUint(obj, "ordinal", &out->ordinal) ||
      !GetString(obj, "termination", &termination) ||
      !ParseTerminationName(termination, &r.termination) ||
      !GetBool(obj, "feasible", &r.feasible) ||
      !GetHexDouble(obj, "cost", &r.cost) ||
      !GetHexDouble(obj, "lower_bound", &r.lower_bound) ||
      !GetBool(obj, "kappa_exceeded", &r.kappa_exceeded)) {
    return false;
  }
  std::uint64_t bits = 0;
  std::uint64_t pruned = 0;
  if (!GetUint(obj, "adjusted_attributes", &bits) ||
      !GetUint(obj, "pruned_sets", &pruned)) {
    return false;
  }
  r.adjusted_attributes = AttributeSet(bits);
  r.pruned_sets = static_cast<std::size_t>(pruned);
  const JsonValue* adjusted = obj.Find("adjusted");
  if (adjusted == nullptr || adjusted->kind != JsonValue::Kind::kArray) {
    return false;
  }
  r.adjusted = Tuple();
  for (const JsonValue& cell : adjusted->items) {
    if (cell.kind != JsonValue::Kind::kObject) return false;
    if (const JsonValue* num = cell.Find("n")) {
      double v = 0;
      if (num->kind != JsonValue::Kind::kString ||
          !ParseHexDouble(num->text, &v)) {
        return false;
      }
      r.adjusted.push_back(Value(v));
    } else if (const JsonValue* str = cell.Find("s")) {
      if (str->kind != JsonValue::Kind::kString) return false;
      r.adjusted.push_back(Value(str->text));
    } else {
      return false;
    }
  }
  const JsonValue* stats = obj.Find("stats");
  if (stats == nullptr || stats->kind != JsonValue::Kind::kObject) {
    return false;
  }
  for (const StatsField& field : kStatsFields) {
    if (!GetUint(*stats, field.name, &(r.stats.*field.member))) return false;
  }
  // The legacy mirrors are derived, not stored: keep the invariant that
  // they always equal the corresponding stats fields.
  r.visited_sets = static_cast<std::size_t>(r.stats.visited_sets);
  r.index_queries = static_cast<std::size_t>(r.stats.index_queries);
  return true;
}

std::string RenderHeader(const SaveJournalHeader& header) {
  JsonWriter json;
  json.BeginObject();
  json.Key("kind").String("header");
  json.Key("schema_version").Uint(header.schema_version);
  json.Key("n_outliers").Uint(header.n_outliers);
  json.Key("arity").Uint(header.arity);
  json.Key("epsilon").String(HexDouble(header.epsilon));
  json.Key("eta").Uint(header.eta);
  json.Key("kappa").Uint(header.kappa);
  json.EndObject();
  return json.str();
}

bool ParseHeader(const JsonValue& obj, SaveJournalHeader* out) {
  std::uint64_t version = 0;
  if (!GetUint(obj, "schema_version", &version) ||
      !GetUint(obj, "n_outliers", &out->n_outliers) ||
      !GetUint(obj, "arity", &out->arity) ||
      !GetHexDouble(obj, "epsilon", &out->epsilon) ||
      !GetUint(obj, "eta", &out->eta) || !GetUint(obj, "kappa", &out->kappa)) {
    return false;
  }
  out->schema_version = static_cast<std::uint32_t>(version);
  return true;
}

}  // namespace

Status SaveJournal::Matches(std::size_t n_outliers, std::size_t arity,
                            const DistanceConstraint& constraint,
                            std::size_t kappa) const {
  if (header.schema_version != 1) {
    return Status::FailedPrecondition(
        StrFormat("journal schema_version %u is not readable (expected 1)",
                  header.schema_version));
  }
  if (header.n_outliers != n_outliers || header.arity != arity) {
    return Status::FailedPrecondition(StrFormat(
        "journal describes a batch of %llu outliers × %llu attributes, "
        "resuming %zu × %zu",
        static_cast<unsigned long long>(header.n_outliers),
        static_cast<unsigned long long>(header.arity), n_outliers, arity));
  }
  if (header.epsilon != constraint.epsilon || header.eta != constraint.eta ||
      header.kappa != kappa) {
    return Status::FailedPrecondition(
        "journal was written under a different constraint (epsilon/eta/kappa "
        "mismatch); refusing to resume");
  }
  for (const SaveJournalEntry& entry : entries) {
    if (entry.ordinal >= n_outliers) {
      return Status::FailedPrecondition(StrFormat(
          "journal entry ordinal %llu out of range for %zu outliers",
          static_cast<unsigned long long>(entry.ordinal), n_outliers));
    }
    if (entry.result.termination != SaveTermination::kCompleted &&
        entry.result.termination != SaveTermination::kInfeasible) {
      return Status::FailedPrecondition(StrFormat(
          "journal entry %llu has non-definitive termination '%s'",
          static_cast<unsigned long long>(entry.ordinal),
          SaveTerminationName(entry.result.termination)));
    }
  }
  return Status::OK();
}

Result<SaveJournal> ReadSaveJournal(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(
        StrFormat("cannot open journal '%s'", path.c_str()));
  }
  SaveJournal journal;
  std::map<std::uint64_t, SaveResult> by_ordinal;  // last occurrence wins
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    JsonValue value;
    if (!JsonParser(trimmed).Parse(&value) ||
        value.kind != JsonValue::Kind::kObject) {
      // A crash mid-append can tear the final line; only the last line may
      // be unparseable.
      if (in.peek() == std::char_traits<char>::eof()) break;
      return Status::IoError(StrFormat("journal '%s' line %zu is not JSON",
                                       path.c_str(), line_no));
    }
    std::string kind;
    if (!GetString(value, "kind", &kind)) {
      return Status::IoError(StrFormat("journal '%s' line %zu has no kind",
                                       path.c_str(), line_no));
    }
    if (kind == "header") {
      if (saw_header) {
        return Status::IoError(StrFormat(
            "journal '%s' line %zu: duplicate header", path.c_str(), line_no));
      }
      if (!ParseHeader(value, &journal.header)) {
        return Status::IoError(StrFormat("journal '%s' line %zu: bad header",
                                         path.c_str(), line_no));
      }
      saw_header = true;
      continue;
    }
    if (kind != "entry") {
      return Status::IoError(StrFormat("journal '%s' line %zu: unknown kind "
                                       "'%s'",
                                       path.c_str(), line_no, kind.c_str()));
    }
    if (!saw_header) {
      return Status::IoError(StrFormat(
          "journal '%s' line %zu: entry before header", path.c_str(),
          line_no));
    }
    SaveJournalEntry entry;
    if (!ParseEntry(value, &entry)) {
      return Status::IoError(StrFormat("journal '%s' line %zu: bad entry",
                                       path.c_str(), line_no));
    }
    by_ordinal[entry.ordinal] = std::move(entry.result);
  }
  if (!saw_header) {
    return Status::IoError(
        StrFormat("journal '%s' has no header line", path.c_str()));
  }
  journal.entries.reserve(by_ordinal.size());
  for (auto& [ordinal, result] : by_ordinal) {
    journal.entries.push_back(SaveJournalEntry{ordinal, std::move(result)});
  }
  return journal;
}

Status SaveJournalWriter::Open(const std::string& path,
                               const SaveJournalHeader& header) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) out_.close();
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IoError(
        StrFormat("cannot create journal '%s'", path.c_str()));
  }
  path_ = path;
  out_ << RenderHeader(header) << '\n';
  out_.flush();
  if (!out_.good()) {
    return Status::IoError(
        StrFormat("failed writing journal header to '%s'", path.c_str()));
  }
  return Status::OK();
}

Status SaveJournalWriter::OpenAppend(const std::string& path,
                                     const SaveJournalHeader& header) {
  {
    std::ifstream probe(path);
    if (!probe.is_open()) return Open(path, header);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) out_.close();
  out_.open(path, std::ios::out | std::ios::app);
  if (!out_.is_open()) {
    return Status::IoError(
        StrFormat("cannot append to journal '%s'", path.c_str()));
  }
  path_ = path;
  return Status::OK();
}

Status SaveJournalWriter::Append(std::uint64_t ordinal,
                                 const SaveResult& result) {
  const std::string line = RenderEntry(ordinal, result);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!out_.is_open()) {
      return Status::FailedPrecondition("journal writer is not open");
    }
    out_ << line << '\n';
    out_.flush();
    if (!out_.good()) {
      return Status::IoError(
          StrFormat("failed appending to journal '%s'", path_.c_str()));
    }
  }
  // Crash simulation point: the entry above is durable, the batch's
  // in-memory state is not — exactly the window a real crash hits.
  return DISC_FAULT_POINT("journal.append");
}

void SaveJournalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) out_.close();
}

}  // namespace disc
