#ifndef DISC_CORE_SAVE_JOURNAL_H_
#define DISC_CORE_SAVE_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "constraints/distance_constraint.h"
#include "core/disc_saver.h"

namespace disc {

/// JSONL journal of definitively finished per-outlier saves — the durable
/// progress record that makes DiscSaver::SaveAll crash-safe (DESIGN.md §11).
///
/// File format: one JSON object per line. The first line is a header
/// identifying the batch; every following line records one outlier whose
/// search reached a *definitive* answer (termination kCompleted or
/// kInfeasible — degraded results are deliberately not journaled, so a
/// resumed run re-attempts them with a fresh budget and the merged output
/// matches an uninterrupted run):
///
///   {"kind":"header","schema_version":1,"n_outliers":12,"arity":4,
///    "epsilon":"0x1.999999999999ap-1","eta":5,"kappa":2}
///   {"kind":"entry","ordinal":3,"termination":"completed","feasible":true,
///    "cost":"0x1.3ae...p+1","lower_bound":"0x0p+0","kappa_exceeded":false,
///    "adjusted_attributes":9,"pruned_sets":17,
///    "adjusted":[{"n":"0x1.8p+1"},{"s":"north"}],
///    "stats":{"nodes_expanded":41,...,"wall_nanos":10042,"start_ns":0}}
///
/// Every double (ε, costs, numeric attribute values) is serialized as a C99
/// hexfloat (printf "%a"), which round-trips the exact bit pattern through
/// text — the foundation of the resume bit-identity guarantee. Appends are
/// flushed line-atomically; a torn final line (crash mid-write) is detected
/// and ignored on read. Duplicate ordinals are legal (a retried-and-crashed
/// batch may re-journal an outlier); the last occurrence wins.
struct SaveJournalHeader {
  std::uint32_t schema_version = 1;
  std::uint64_t n_outliers = 0;
  std::uint64_t arity = 0;
  double epsilon = 0;
  std::uint64_t eta = 0;
  std::uint64_t kappa = 0;
};

/// One journaled outlier: its position in the batch plus the full result.
struct SaveJournalEntry {
  std::uint64_t ordinal = 0;
  SaveResult result;
};

/// A parsed journal: header plus deduplicated entries (ascending ordinal).
struct SaveJournal {
  SaveJournalHeader header;
  std::vector<SaveJournalEntry> entries;

  /// OK iff this journal belongs to the described batch: same outlier
  /// count, arity, constraint and κ, and a schema version we can read.
  /// FailedPrecondition naming the mismatch otherwise.
  Status Matches(std::size_t n_outliers, std::size_t arity,
                 const DistanceConstraint& constraint,
                 std::size_t kappa) const;
};

/// Reads and validates a journal file. A torn trailing line is skipped;
/// any other malformed line fails with its line number. NotFound when the
/// file does not exist.
Result<SaveJournal> ReadSaveJournal(const std::string& path);

/// Append-only journal writer. Append() is thread-safe (SaveAll workers
/// journal from their own threads) and flushes each line before returning,
/// so a crash loses at most the line being written. Hits the
/// `journal.append` fault site once per entry *after* the line is durable —
/// the canonical place to simulate a crash between commits.
class SaveJournalWriter {
 public:
  SaveJournalWriter() = default;
  SaveJournalWriter(const SaveJournalWriter&) = delete;
  SaveJournalWriter& operator=(const SaveJournalWriter&) = delete;

  /// Creates `path` (truncating any previous content) and writes `header`.
  Status Open(const std::string& path, const SaveJournalHeader& header);

  /// Opens `path` for appending after a crash. The existing content is not
  /// re-validated here — pair with ReadSaveJournal + SaveJournal::Matches.
  /// If the file does not exist, behaves like Open(path, header).
  Status OpenAppend(const std::string& path, const SaveJournalHeader& header);

  /// True iff a file is open for appending.
  bool is_open() const { return out_.is_open(); }

  /// Appends one finished outlier and flushes. Thread-safe.
  Status Append(std::uint64_t ordinal, const SaveResult& result);

  void Close();

 private:
  std::mutex mu_;
  std::ofstream out_;
  std::string path_;
};

}  // namespace disc

#endif  // DISC_CORE_SAVE_JOURNAL_H_
