#ifndef DISC_CORE_BOUNDS_H_
#define DISC_CORE_BOUNDS_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "common/relation.h"
#include "common/tuple.h"
#include "constraints/distance_constraint.h"
#include "core/search_budget.h"
#include "core/search_distance_cache.h"
#include "distance/evaluator.h"
#include "index/kth_neighbor_cache.h"
#include "index/neighbor_index.h"

namespace disc {

class WorkStealingPool;

/// Bound computations of §3.1 / §3.2, shared by the DISC approximation and
/// by tests that sandwich the exact optimum.
///
/// Context: an outlier tuple t_o is to be adjusted under constraint (ε, η)
/// against the inlier set r. The bounds are parameterized by the set X of
/// *unadjusted* attributes (the adjustment may only change R \ X).
///
/// Every method takes an optional BudgetGauge. With a gauge, each bound
/// computation is metered as one logical index query and the O(n) row scans
/// poll the gauge (strided) so an expired deadline or a cancellation stops
/// a scan mid-flight. An abandoned computation returns a *safe* value — an
/// uninformative lower bound (0), no upper bound, or "not feasible" — never
/// a partial result; callers detect the stop via gauge->stopped() and
/// unwind with their incumbent. Without a gauge, behaviour is unchanged.
///
/// The O(n) scans of LowerBoundForX / UpperBoundForX optionally chunk
/// across a WorkStealingPool (`nested` parameter): chunk boundaries are a
/// pure function of (n, grain), each chunk reduces into its own slot, and
/// the merges below are order-insensitive reconstructions of the
/// sequential reduction (k-smallest multiset for Prop 3; ascending-chunk
/// strict-< minimum for Prop 5), so results stay bit-identical to the
/// sequential scan for any worker count. Parallel chunks poll the gauge's
/// thread-safe HardStopRequested() instead of KeepScanning(); on a stop
/// the owner records the reason and returns the same safe value.
class BoundsEngine {
 public:
  /// `relation` is the inlier set r; `cache` holds δ_η(t) per inlier
  /// (Proposition 5 needs "t has η (ε − Δ(t_o[X], t[X]))-neighbors", which
  /// is exactly δ_η(t) ≤ ε − Δ(t_o[X], t[X])). All references must outlive
  /// the engine.
  BoundsEngine(const Relation& relation, const DistanceEvaluator& evaluator,
               const NeighborIndex& index, const KthNeighborCache& cache,
               DistanceConstraint constraint);

  /// Lower bound of Lemma 2 (X = ∅ special case): Δ(t_o, t_1) − ε where t_1
  /// is the η-th nearest inlier to t_o. Returns 0 when fewer than η inliers
  /// exist (no informative bound).
  double GlobalLowerBound(const Tuple& outlier,
                          BudgetGauge* gauge = nullptr) const;

  /// Lower bound of Proposition 3: Δ(t_o, t_1) − ε where t_1 is the η-th
  /// nearest neighbor of t_o within r_ε(t_o[X]) (inliers whose distance to
  /// t_o *on X* is ≤ ε). Returns +infinity when fewer than η inliers
  /// qualify — no feasible adjustment with unadjusted X exists at all.
  ///
  /// `dcache`, when supplied, must be the per-search cache built for this
  /// `outlier` over this relation; the full-space distances and memoized
  /// attribute rows then replace the per-X recomputation. Results are
  /// bit-identical with or without it. `nested`, when supplied, chunks the
  /// row scan across idle pool workers (see the class comment); any lazy
  /// dcache rows for X are resolved on the calling thread first.
  double LowerBoundForX(const Tuple& outlier, const AttributeSet& x,
                        BudgetGauge* gauge = nullptr,
                        const SearchDistanceCache* dcache = nullptr,
                        WorkStealingPool* nested = nullptr) const;

  /// Upper bound of Proposition 5. Finds t_2 ∈ r_ε(t_o[X]) with
  /// δ_η(t_2) ≤ ε − Δ(t_o[X], t_2[X]) minimizing Δ(t_o[R\X], t_2[R\X]), and
  /// returns the spliced tuple t_o^u (t_o on X, t_2 on R\X) together with
  /// its adjustment cost. Empty when no such t_2 exists.
  struct UpperBound {
    Tuple adjusted;
    double cost = 0;
    std::size_t donor_row = 0;  ///< row of t_2 in r
  };
  std::optional<UpperBound> UpperBoundForX(
      const Tuple& outlier, const AttributeSet& x, BudgetGauge* gauge = nullptr,
      const SearchDistanceCache* dcache = nullptr,
      WorkStealingPool* nested = nullptr) const;

  /// Feasibility check: does `candidate` have ≥ η ε-neighbors in r?
  bool IsFeasible(const Tuple& candidate, BudgetGauge* gauge = nullptr) const;

  /// The constraint in force.
  const DistanceConstraint& constraint() const { return constraint_; }
  /// The inlier relation r.
  const Relation& relation() const { return relation_; }
  /// The distance evaluator.
  const DistanceEvaluator& evaluator() const { return evaluator_; }

 private:
  const Relation& relation_;
  const DistanceEvaluator& evaluator_;
  const NeighborIndex& index_;
  const KthNeighborCache& cache_;
  DistanceConstraint constraint_;
};

}  // namespace disc

#endif  // DISC_CORE_BOUNDS_H_
