#include "core/outlier_saving.h"

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/save_journal.h"
#include "core/search_stats.h"
#include "index/index_factory.h"
#include "obs/explain.h"
#include "obs/progress.h"

namespace disc {

const char* OutlierDispositionName(OutlierDisposition d) {
  switch (d) {
    case OutlierDisposition::kSaved:
      return "saved";
    case OutlierDisposition::kNaturalOutlier:
      return "natural_outlier";
    case OutlierDisposition::kInfeasible:
      return "infeasible";
  }
  return "unknown";
}

SearchStats SavedDataset::stats() const {
  SearchStats total = split_stats;
  for (const OutlierRecord& rec : records) total.MergeFrom(rec.stats);
  return total;
}

std::size_t SavedDataset::CountDisposition(OutlierDisposition d) const {
  std::size_t count = 0;
  for (const OutlierRecord& rec : records) {
    if (rec.disposition == d) ++count;
  }
  return count;
}

std::size_t SavedDataset::CountTermination(SaveTermination t) const {
  std::size_t count = 0;
  for (const OutlierRecord& rec : records) {
    if (rec.termination == t) ++count;
  }
  return count;
}

bool SavedDataset::degraded() const {
  for (const OutlierRecord& rec : records) {
    if (rec.termination != SaveTermination::kCompleted &&
        rec.termination != SaveTermination::kInfeasible) {
      return true;
    }
  }
  return false;
}

Status SavedDataset::DegradationStatus() const {
  const std::size_t cancelled =
      CountTermination(SaveTermination::kCancelled);
  const std::size_t deadline = CountTermination(SaveTermination::kDeadline);
  const std::size_t budget = CountTermination(SaveTermination::kVisitBudget) +
                             CountTermination(SaveTermination::kQueryBudget);
  const std::size_t faulted = CountTermination(SaveTermination::kFault);
  if (cancelled == 0 && deadline == 0 && budget == 0 && faulted == 0) {
    return Status::OK();
  }
  std::string detail = std::to_string(cancelled) + " cancelled, " +
                       std::to_string(deadline) + " past deadline, " +
                       std::to_string(budget) + " out of budget, " +
                       std::to_string(faulted) + " faulted (of " +
                       std::to_string(records.size()) + " outliers)";
  if (cancelled > 0) return Status::Cancelled(detail);
  if (deadline > 0) return Status::DeadlineExceeded(detail);
  return Status::ResourceExhausted(detail);
}

double SavedDataset::MeanAdjustmentCost() const {
  double sum = 0;
  std::size_t saved = 0;
  for (const OutlierRecord& rec : records) {
    if (rec.disposition == OutlierDisposition::kSaved) {
      sum += rec.cost;
      ++saved;
    }
  }
  return saved == 0 ? 0 : sum / static_cast<double>(saved);
}

double SavedDataset::MeanAdjustedAttributes() const {
  double sum = 0;
  std::size_t saved = 0;
  for (const OutlierRecord& rec : records) {
    if (rec.disposition == OutlierDisposition::kSaved) {
      sum += static_cast<double>(rec.adjusted_attributes.size());
      ++saved;
    }
  }
  return saved == 0 ? 0 : sum / static_cast<double>(saved);
}

namespace {

/// Once-per-batch flush of the already-merged pipeline stats into the
/// registry (the only place this pipeline touches atomics; the searches
/// themselves count into plain per-search structs). Null registry = no-op.
void FlushBatchMetrics(MetricsRegistry* metrics, const SavedDataset& out) {
  if (metrics == nullptr) return;
  SearchStats search_total;
  for (const OutlierRecord& rec : out.records) {
    search_total.MergeFrom(rec.stats);
  }
  search_total.FlushTo(metrics);
  if (Counter* c = metrics->GetCounter("disc_save_batches_total")) c->Add(1);
  if (Counter* c = metrics->GetCounter("disc_save_outliers_total")) {
    if (!out.records.empty()) c->Add(out.records.size());
  }
  if (Counter* c = metrics->GetCounter("disc_split_index_queries_total")) {
    if (out.split_index_queries > 0) c->Add(out.split_index_queries);
  }
  constexpr OutlierDisposition kDispositions[] = {
      OutlierDisposition::kSaved, OutlierDisposition::kNaturalOutlier,
      OutlierDisposition::kInfeasible};
  for (OutlierDisposition d : kDispositions) {
    const std::size_t n = out.CountDisposition(d);
    if (n == 0) continue;
    if (Counter* c = metrics->GetCounter(
            std::string("disc_save_disposition_") + OutlierDispositionName(d) +
            "_total")) {
      c->Add(n);
    }
  }
  constexpr SaveTermination kTerminations[] = {
      SaveTermination::kCompleted,   SaveTermination::kVisitBudget,
      SaveTermination::kQueryBudget, SaveTermination::kDeadline,
      SaveTermination::kCancelled,   SaveTermination::kInfeasible,
      SaveTermination::kFault};
  for (SaveTermination t : kTerminations) {
    const std::size_t n = out.CountTermination(t);
    if (n == 0) continue;
    if (Counter* c = metrics->GetCounter(
            std::string("disc_save_termination_") + SaveTerminationName(t) +
            "_total")) {
      c->Add(n);
    }
  }
  if (Histogram* h = metrics->GetHistogram(
          "disc_save_search_wall_seconds",
          {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0})) {
    for (const OutlierRecord& rec : out.records) {
      // With tracing on, each bucket remembers a representative search's
      // trace id, so a slow bucket links straight to a slow span tree.
      h->ObserveWithExemplar(static_cast<double>(rec.stats.wall_nanos) * 1e-9,
                             rec.trace_id);
    }
  }
}

}  // namespace

SavedDataset SaveOutliers(const Relation& data,
                          const DistanceEvaluator& evaluator,
                          const OutlierSavingOptions& options) {
  // The batch clock starts here, so the deadline also covers the index
  // build and the inlier/outlier split below — the caller's wall-clock
  // budget is for the whole pipeline, not just the searches.
  const Deadline batch_deadline =
      options.batch_deadline_ms > 0
          ? Deadline::AfterMillis(options.batch_deadline_ms)
          : Deadline::Infinite();

  SavedDataset out;
  out.repaired = data;

  DISC_LOG(INFO)
      .Uint("rows", data.size())
      .Uint("arity", data.arity())
      .Num("epsilon", options.constraint.epsilon)
      .Uint("eta", options.constraint.eta)
      .Uint("threads", options.num_threads)
      .Bool("exact", options.use_exact)
      .Int("deadline_ms", options.batch_deadline_ms)
      << "outlier saving pipeline started";

  // Wider schemas would silently overflow the AttributeSet bookkeeping of
  // the search; reject them up front.
  out.status = ValidateSaveArity(data.arity());
  if (!out.status.ok()) {
    DISC_LOG(ERROR).Str("status", out.status.ToString())
        << "outlier saving rejected its input";
    return out;
  }

  // Fault site: a failed index build is a hard pipeline error (nothing to
  // degrade to — no index means no split, no searches).
  out.status = DISC_FAULT_POINT("pipeline.index_build");
  if (!out.status.ok()) {
    DISC_LOG(ERROR).Str("status", out.status.ToString())
        << "index build failed";
    return out;
  }

  // Split into inliers r and outliers s against the full dataset. The
  // stats decorator meters the split phase so callers can see how the
  // query budget divides between detection and saving.
  const std::uint64_t split_start_ns = TraceNowNs();
  std::unique_ptr<NeighborIndex> full_index =
      MakeNeighborIndex(data, evaluator, options.constraint.epsilon);
  StatsNeighborIndex counted_index(*full_index, &out.split_stats);
  InlierOutlierSplit split =
      SplitInliersOutliers(data, counted_index, options.constraint);
  out.split_stats.start_ns = split_start_ns;
  out.split_stats.wall_nanos = TraceNowNs() - split_start_ns;
  out.split_index_queries =
      static_cast<std::size_t>(out.split_stats.index_queries);
  out.inlier_rows = split.inlier_rows;
  out.outlier_rows = split.outlier_rows;
  if (options.trace != nullptr) {
    TraceSpan span;
    span.name = "split";
    span.start_ns = out.split_stats.start_ns;
    span.duration_ns = out.split_stats.wall_nanos;
    span.Int("inliers", out.inlier_rows.size())
        .Int("outliers", out.outlier_rows.size());
    out.split_stats.AttachTo(&span);
    options.trace->Emit(span);
  }
  DISC_LOG(INFO)
      .Uint("inliers", out.inlier_rows.size())
      .Uint("outliers", out.outlier_rows.size())
      .Uint("index_queries", out.split_index_queries)
      << "inlier/outlier split done";
  if (split.outlier_rows.empty()) {
    FlushBatchMetrics(options.metrics, out);
    return out;
  }

  Relation inliers = data.Select(split.inlier_rows);

  // Unify the two attribute-budget knobs: the natural-outlier threshold is
  // exactly the κ of §3.3.3 — "only return adjustments on no more than κ
  // attributes". Folding it into the save options lets the search optimize
  // *within* the budget (the cheapest unrestricted adjustment — often a
  // near-substitution — would otherwise mask a valid few-attribute repair).
  OutlierSavingOptions effective = options;
  if (effective.natural_attribute_threshold != 0 &&
      effective.save.kappa == 0) {
    effective.save.kappa = effective.natural_attribute_threshold;
  }

  // Build the saver once; save each outlier against the fixed inlier set.
  DiscSaver disc_saver(inliers, evaluator, effective.constraint,
                       effective.use_columnar_fast_path);
  std::unique_ptr<ExactSaver> exact_saver;
  if (options.use_exact) {
    exact_saver =
        std::make_unique<ExactSaver>(inliers, evaluator, options.constraint);
  }

  BatchBudget batch;
  batch.deadline = batch_deadline;
  if (options.per_outlier_deadline_ms > 0) {
    batch.per_outlier_limit =
        std::chrono::milliseconds(options.per_outlier_deadline_ms);
  }
  batch.cancellation = options.cancellation;

  // Batch-save the DISC path. Each outlier's search is independent against
  // the fixed inlier set, so the batch fans out across a work-stealing pool
  // (cost-ordered, hardest searches first — see DiscSaver::SaveAll); the
  // merge below walks `split.outlier_rows` in input order either way, so
  // the records are bit-identical for every thread count.
  std::vector<SaveResult> disc_results;
  if (!effective.use_exact) {
    std::vector<Tuple> outlier_tuples;
    outlier_tuples.reserve(split.outlier_rows.size());
    for (std::size_t row : split.outlier_rows) {
      outlier_tuples.push_back(data[row]);
    }

    // Crash-safety plumbing (DESIGN.md §11): optionally restore journaled
    // verdicts from a previous interrupted run, then append this run's
    // definitive results to the same journal. All-default BatchRecovery
    // (no journal path) keeps SaveAll on its strict no-op path.
    BatchRecovery recovery;
    recovery.retry = effective.retry;
    SaveJournal resume_journal;
    SaveJournalWriter journal_writer;
    if (!effective.journal_path.empty()) {
      SaveJournalHeader header;
      header.n_outliers = outlier_tuples.size();
      header.arity = data.arity();
      header.epsilon = effective.constraint.epsilon;
      header.eta = effective.constraint.eta;
      header.kappa = effective.save.kappa;
      bool have_resume = false;
      if (effective.resume_from_journal) {
        Result<SaveJournal> loaded = ReadSaveJournal(effective.journal_path);
        if (loaded.ok()) {
          out.status = loaded.value().Matches(
              outlier_tuples.size(), data.arity(), effective.constraint,
              effective.save.kappa);
          if (!out.status.ok()) {
            DISC_LOG(ERROR).Str("status", out.status.ToString())
                << "save journal does not match this batch";
            return out;
          }
          resume_journal = std::move(loaded).value();
          have_resume = true;
        } else if (loaded.status().code() != StatusCode::kNotFound) {
          out.status = loaded.status();
          DISC_LOG(ERROR).Str("status", out.status.ToString())
              << "save journal unreadable";
          return out;
        }
        // NotFound: no previous run to resume — start fresh.
      }
      out.status = have_resume
                       ? journal_writer.OpenAppend(effective.journal_path,
                                                   header)
                       : journal_writer.Open(effective.journal_path, header);
      if (!out.status.ok()) {
        DISC_LOG(ERROR).Str("status", out.status.ToString())
            << "save journal could not be opened";
        return out;
      }
      recovery.journal = &journal_writer;
      if (have_resume) {
        recovery.resume = &resume_journal;
        DISC_LOG(INFO)
            .Str("journal", effective.journal_path)
            .Uint("restored", resume_journal.entries.size())
            << "resuming batch from save journal";
      }
    }

    std::size_t threads = effective.num_threads == 0
                              ? WorkStealingPool::DefaultThreadCount()
                              : effective.num_threads;
    std::unique_ptr<WorkStealingPool> pool;
    if (threads > 1 && outlier_tuples.size() > 1) {
      pool = std::make_unique<WorkStealingPool>(threads);
    }
    disc_results = disc_saver.SaveAll(outlier_tuples, effective.save,
                                      pool.get(), batch, options.trace,
                                      recovery, options.explain);
  }

  const std::size_t total_outliers = split.outlier_rows.size();

  // Explain on the exact path (the DISC path captures inside SaveAll): the
  // enumerations run sequentially in the merge loop below, so logs are
  // captured, emitted and flushed here, already in input order.
  ExplainRecorder* explain_recorder = GlobalExplainRecorder();
  const bool exact_explaining =
      effective.use_exact &&
      (options.explain != nullptr || explain_recorder != nullptr);
  std::vector<ExplainSearchLog> exact_explain_logs;

  // The exact path saves sequentially in the merge loop below, so it gets
  // its own tracker here (the DISC path registers "save_all" inside
  // SaveAll); /statusz then always has a live batch to show.
  std::shared_ptr<BatchProgressTracker> exact_progress;
  if (effective.use_exact) {
    if (ProgressRegistry* registry = GlobalProgress()) {
      exact_progress =
          registry->StartBatch("save_exact", total_outliers, batch.deadline);
    }
  }

  out.records.reserve(total_outliers);
  for (std::size_t i = 0; i < total_outliers; ++i) {
    const std::size_t row = split.outlier_rows[i];
    const Tuple& outlier = data[row];
    OutlierRecord rec;
    rec.row = row;

    bool feasible = false;
    bool kappa_exceeded = false;
    if (effective.use_exact) {
      // Sequential fair slicing, same policy as DiscSaver::SaveAll with one
      // worker: remaining batch time ÷ outliers left, intersected with the
      // per-outlier cap; drain-and-skip once the budget is gone.
      if (batch.cancellation.cancelled()) {
        rec.termination = SaveTermination::kCancelled;
        rec.adjusted = outlier;
      } else if (batch.deadline.expired()) {
        rec.termination = SaveTermination::kDeadline;
        rec.adjusted = outlier;
      } else {
        Deadline task_deadline = batch.deadline;
        if (!batch.deadline.is_infinite()) {
          const auto left = static_cast<std::int64_t>(total_outliers - i);
          task_deadline = Deadline::Min(
              batch.deadline, Deadline::After(batch.deadline.remaining() / left));
        }
        if (batch.per_outlier_limit.count() > 0) {
          task_deadline = Deadline::Min(
              task_deadline, Deadline::After(batch.per_outlier_limit));
        }
        ExactOptions exact_options;
        exact_options.max_candidates = effective.exact_max_candidates;
        exact_options.budget = effective.save.budget;
        SearchExplain sexplain;
        if (exact_explaining) exact_options.explain = &sexplain;
        ExactResult res = exact_saver->Save(outlier, exact_options,
                                            task_deadline, batch.cancellation);
        feasible = res.feasible;
        rec.termination = res.termination;
        rec.index_queries = res.index_queries;
        rec.stats = res.stats;
        rec.adjusted = res.adjusted;
        rec.cost = res.cost;
        rec.adjusted_attributes = res.adjusted_attributes;
        if (exact_explaining) {
          ExplainSearchLog log;
          log.ordinal = i;
          log.algo = "exact";
          log.termination = SaveTerminationName(res.termination);
          log.feasible = res.feasible;
          if (res.feasible) log.final_cost = res.cost;
          log.wall_nanos = res.stats.wall_nanos;
          log.visited_sets = res.stats.visited_sets;
          log.lb_prunes = res.stats.lb_prunes;
          log.nodes_expanded = res.stats.nodes_expanded;
          log.revert_refines = res.stats.revert_refines;
          log.abandoned_scans = sexplain.abandoned_scans;
          log.dropped_events = sexplain.dropped_events;
          log.events = std::move(sexplain.events);
          if (explain_recorder != nullptr) explain_recorder->RecordSearch(log);
          if (options.explain != nullptr) options.explain->Emit(log);
          exact_explain_logs.push_back(std::move(log));
        }
      }
    } else {
      SaveResult& res = disc_results[i];
      feasible = res.feasible;
      kappa_exceeded = res.kappa_exceeded;
      rec.termination = res.termination;
      rec.index_queries = res.index_queries;
      rec.stats = res.stats;
      rec.adjusted = std::move(res.adjusted);
      rec.cost = res.cost;
      rec.adjusted_attributes = res.adjusted_attributes;
      rec.lower_bound = res.lower_bound;
      rec.trace_id = res.trace_id;
    }
    if (exact_progress != nullptr) {
      exact_progress->RecordOutlier(rec.termination, rec.stats.wall_nanos);
    }

    if (feasible && effective.natural_attribute_threshold != 0 &&
        rec.adjusted_attributes.size() >
            effective.natural_attribute_threshold) {
      // The exact path can still report a too-wide adjustment.
      feasible = false;
      kappa_exceeded = true;
    }

    if (feasible) {
      rec.disposition = OutlierDisposition::kSaved;
      out.repaired[row] = rec.adjusted;
    } else {
      // A feasible adjustment needing more attributes than trusted marks a
      // natural outlier (paper §1.2 — flag rather than over-adjust).
      rec.disposition = kappa_exceeded
                            ? OutlierDisposition::kNaturalOutlier
                            : OutlierDisposition::kInfeasible;
      rec.adjusted = outlier;
      rec.cost = 0;
      rec.adjusted_attributes = AttributeSet();
    }
    TraceRecorder* recorder = GlobalTraceRecorder();
    if (options.trace != nullptr ||
        (recorder != nullptr && rec.trace_id != 0)) {
      // The root of the outlier's span tree: the per-attempt search spans
      // and their phase/chunk children (emitted by SaveAll's drain) parent
      // up to this span via DeriveSpanId(trace_id, kRoot, 0).
      TraceSpan span;
      span.name = "save_outlier";
      span.start_ns = rec.stats.start_ns;
      span.duration_ns = rec.stats.wall_nanos;
      span.trace_id = rec.trace_id;
      span.span_id = rec.trace_id != 0
                         ? DeriveSpanId(rec.trace_id, TraceSpanKind::kRoot, 0)
                         : 0;
      span.parent_id = 0;
      span.Int("row", rec.row)
          .Str("disposition", OutlierDispositionName(rec.disposition))
          .Str("termination", SaveTerminationName(rec.termination))
          .Num("cost", rec.cost)
          .Int("adjusted_attributes", rec.adjusted_attributes.size());
      rec.stats.AttachTo(&span);
      if (recorder != nullptr && rec.trace_id != 0) {
        recorder->RecordFinished(span);
      }
      if (options.trace != nullptr) options.trace->Emit(span);
    }
    out.records.push_back(std::move(rec));
  }
  if (exact_progress != nullptr) exact_progress->MarkDone();
  // Same registry the DISC path's in-SaveAll flush uses, so disc_explain_*
  // series aggregate identically across both algorithms.
  FlushExplainMetrics(GlobalMetrics(), exact_explain_logs);
  FlushBatchMetrics(options.metrics, out);
  DISC_LOG(INFO)
      .Uint("saved", out.CountDisposition(OutlierDisposition::kSaved))
      .Uint("natural",
            out.CountDisposition(OutlierDisposition::kNaturalOutlier))
      .Uint("infeasible",
            out.CountDisposition(OutlierDisposition::kInfeasible))
      .Bool("degraded", out.degraded())
      << "outlier saving pipeline finished";
  return out;
}

}  // namespace disc
