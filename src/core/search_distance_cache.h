#ifndef DISC_CORE_SEARCH_DISTANCE_CACHE_H_
#define DISC_CORE_SEARCH_DISTANCE_CACHE_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "common/relation.h"
#include "common/tuple.h"
#include "core/search_stats.h"
#include "distance/columnar.h"
#include "distance/evaluator.h"

namespace disc {

struct SearchTrace;

/// Per-outlier-search distance cache for the branch-and-bound hot loops.
///
/// Within one outlier's search, the full-space distance Δ(t_o, t) to each
/// inlier is invariant across every B&B node, yet LowerBoundForX recomputes
/// it at every explored X. This cache computes the full-distance vector ONCE
/// per search and serves it from a flat array thereafter. Likewise the
/// per-attribute distances Δ(t_o[A], t[A]) are invariant; they are memoized
/// lazily (one n-sized row per attribute, filled on first touch), turning
/// every subset distance Δ(t_o[X], t[X]) into a short sum over cached
/// doubles — no Value unwrapping, no virtual metric dispatch.
///
/// Determinism contract: cached entries are produced by exactly the scalar
/// arithmetic (via FlatKernel when a ColumnarView is supplied, whose kernels
/// are bit-identical to DistanceEvaluator by construction, or via the
/// evaluator itself otherwise), and subset sums replay the canonical
/// LpAccumulator recurrence in increasing attribute order. Every value and
/// every threshold verdict matches the uncached path bit for bit.
///
/// Thread-safety: NONE — the lazy rows mutate under const. A cache is a
/// per-search, stack-local object owned by a single worker; it is never
/// shared across threads (the shared-state immutability contract of
/// DESIGN.md §5 applies to indexes, not to this).
class SearchDistanceCache {
 public:
  /// Builds the cache for one outlier search. `view` may be null (scalar
  /// fallback); when non-null it must have been built over `relation` with
  /// `evaluator`. All references must outlive the cache; `outlier` must not
  /// be mutated while the cache is live. `stats` (optional) receives one
  /// dcache_miss per lazily filled attribute row and one dcache_hit per
  /// row request served from the memo. `pool` (optional) parallelizes the
  /// eager full-distance fill — each row's entry is independent, so chunked
  /// writes produce the identical vector; the lazy attribute rows stay
  /// single-threaded (they mutate under const and must only ever be touched
  /// by the owning search thread). `trace` (optional) charges the eager and
  /// lazy fills to the dcache_fill wall phase and records per-chunk spans
  /// of the parallel fill.
  SearchDistanceCache(const Relation& relation,
                      const DistanceEvaluator& evaluator, const Tuple& outlier,
                      const ColumnarView* view = nullptr,
                      SearchStats* stats = nullptr,
                      WorkStealingPool* pool = nullptr,
                      SearchTrace* trace = nullptr);

  /// Number of inlier rows n.
  std::size_t rows() const { return full_.size(); }
  /// True when the columnar fast path backs this cache.
  bool columnar() const { return kernel_.has_value(); }

  /// Cached full-space distance Δ(t_o, t_row).
  double FullDistance(std::size_t row) const { return full_[row]; }

  /// Subset distance Δ(t_o[X], t_row[X]) from the memoized attribute rows —
  /// bit-identical to DistanceEvaluator::DistanceOn.
  double DistanceOn(const AttributeSet& x, std::size_t row) const;

  /// Subset distance with early exit past `threshold` (+infinity), matching
  /// DistanceEvaluator::DistanceOnWithin bit for bit.
  double DistanceOnWithin(const AttributeSet& x, std::size_t row,
                          double threshold) const;

  /// The memoized n-entry row of Δ(t_o[a], t_i[a]) for attribute `a`,
  /// filled on first touch. For scans that touch every row (the bound
  /// loops), resolving the subset's row pointers once and accumulating
  /// inline beats a DistanceOnWithin call per row; the per-row arithmetic
  /// is identical (same values, same canonical attribute order). Hit/miss
  /// is metered at this resolution granularity (one event per row request),
  /// never inside the per-attribute accumulation loops.
  const double* attribute_row(std::size_t a) const {
    if (stats_ != nullptr && !attr_rows_[a].empty()) ++stats_->dcache_hits;
    return AttributeRow(a);
  }

 private:
  /// The memoized row for attribute `a`, filling it on first touch.
  const double* AttributeRow(std::size_t a) const;

  const Relation& relation_;
  const DistanceEvaluator& evaluator_;
  const Tuple& outlier_;
  SearchStats* stats_;  ///< optional; owned by the same single search
  SearchTrace* trace_ = nullptr;  ///< optional; same ownership as stats_
  std::size_t arity_;
  std::optional<FlatKernel> kernel_;
  std::vector<double> full_;                           ///< eager, n entries
  mutable std::vector<std::vector<double>> attr_rows_;  ///< lazy, m rows
};

}  // namespace disc

#endif  // DISC_CORE_SEARCH_DISTANCE_CACHE_H_
