#include "core/search_budget.h"

#include <string>

namespace disc {

namespace {

/// Row-scan polls between deadline/cancellation checks. A steady-clock read
/// costs ~20 ns; at one check per 64 rows the overhead is invisible next to
/// the per-row distance evaluation, while a stop is still noticed within
/// microseconds.
constexpr std::size_t kScanPollStride = 64;

}  // namespace

const char* SaveTerminationName(SaveTermination t) {
  switch (t) {
    case SaveTermination::kCompleted:
      return "completed";
    case SaveTermination::kVisitBudget:
      return "visit_budget";
    case SaveTermination::kQueryBudget:
      return "query_budget";
    case SaveTermination::kDeadline:
      return "deadline";
    case SaveTermination::kCancelled:
      return "cancelled";
    case SaveTermination::kInfeasible:
      return "infeasible";
    case SaveTermination::kFault:
      return "fault";
  }
  return "unknown";
}

Status SaveTerminationStatus(SaveTermination t) {
  switch (t) {
    case SaveTermination::kCompleted:
    case SaveTermination::kInfeasible:
      return Status::OK();
    case SaveTermination::kVisitBudget:
      return Status::ResourceExhausted("visited-set budget exhausted");
    case SaveTermination::kQueryBudget:
      return Status::ResourceExhausted("index-query budget exhausted");
    case SaveTermination::kDeadline:
      return Status::DeadlineExceeded("save deadline expired");
    case SaveTermination::kCancelled:
      return Status::Cancelled("save cancelled");
    case SaveTermination::kFault:
      return Status::ResourceExhausted("search aborted by a transient fault");
  }
  return Status::Internal("unknown termination");
}

std::chrono::milliseconds RetryPolicy::BackoffFor(
    std::size_t retry_index) const {
  double ms = static_cast<double>(initial_backoff.count());
  for (std::size_t i = 0; i < retry_index; ++i) ms *= backoff_multiplier;
  const double cap = static_cast<double>(max_backoff.count());
  if (!(ms < cap)) ms = cap;
  if (ms < 0.0) ms = 0.0;
  return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
}

bool RetryPolicy::IsTransient(SaveTermination t) {
  return t == SaveTermination::kFault || t == SaveTermination::kVisitBudget ||
         t == SaveTermination::kQueryBudget;
}

BudgetGauge::BudgetGauge(const SearchBudget* budget, Deadline extra_deadline,
                         CancellationToken extra_cancellation)
    : budget_(budget),
      deadline_(Deadline::Min(
          budget != nullptr ? budget->deadline : Deadline::Infinite(),
          extra_deadline)),
      extra_cancellation_(std::move(extra_cancellation)),
      fault_node_(FaultSiteFor("search.node")),
      fault_scan_(FaultSiteFor("bounds.scan")) {}

bool BudgetGauge::Stop(SaveTermination why) {
  if (!stopped_) {
    stopped_ = true;
    reason_ = why;
  }
  return false;
}

bool BudgetGauge::OnNodeExpanded(std::size_t visited_sets) {
  ++nodes_;
  ++stats_.nodes_expanded;
  if (stopped_) return false;
  if (fault_node_ != nullptr && !fault_node_->Hit().ok()) {
    return Stop(SaveTermination::kFault);
  }
  if ((budget_ != nullptr && budget_->cancellation.cancelled()) ||
      extra_cancellation_.cancelled()) {
    return Stop(SaveTermination::kCancelled);
  }
  if (deadline_.expired()) return Stop(SaveTermination::kDeadline);
  if (budget_ != nullptr && budget_->max_visited_sets != 0 &&
      visited_sets > budget_->max_visited_sets) {
    return Stop(SaveTermination::kVisitBudget);
  }
  if (budget_ != nullptr && budget_->max_index_queries != 0 &&
      stats_.index_queries > budget_->max_index_queries) {
    return Stop(SaveTermination::kQueryBudget);
  }
  return true;
}

bool BudgetGauge::KeepScanning() {
  if (stopped_) return false;
  if ((++scan_polls_ % kScanPollStride) != 0) return true;
  if (fault_scan_ != nullptr && !fault_scan_->Hit().ok()) {
    return Stop(SaveTermination::kFault);
  }
  if ((budget_ != nullptr && budget_->cancellation.cancelled()) ||
      extra_cancellation_.cancelled()) {
    return Stop(SaveTermination::kCancelled);
  }
  if (deadline_.expired()) return Stop(SaveTermination::kDeadline);
  return true;
}

bool BudgetGauge::HardStopRequested() const {
  if ((budget_ != nullptr && budget_->cancellation.cancelled()) ||
      extra_cancellation_.cancelled()) {
    return true;
  }
  return deadline_.expired();
}

void BudgetGauge::RecordHardStop() {
  if (stopped_) return;
  if ((budget_ != nullptr && budget_->cancellation.cancelled()) ||
      extra_cancellation_.cancelled()) {
    Stop(SaveTermination::kCancelled);
    return;
  }
  Stop(SaveTermination::kDeadline);
}

bool BudgetGauge::ContinueRefinement() {
  if (stopped_ && (reason_ == SaveTermination::kDeadline ||
                   reason_ == SaveTermination::kCancelled ||
                   reason_ == SaveTermination::kFault)) {
    return false;
  }
  if ((budget_ != nullptr && budget_->cancellation.cancelled()) ||
      extra_cancellation_.cancelled()) {
    Stop(SaveTermination::kCancelled);
    return false;
  }
  if (deadline_.expired()) {
    Stop(SaveTermination::kDeadline);
    return false;
  }
  return true;
}

}  // namespace disc
