#include "core/disc_saver.h"

#include <algorithm>
#include <future>
#include <limits>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "index/index_factory.h"

namespace disc {

Status ValidateSaveArity(std::size_t arity) {
  if (arity > kMaxSaveableAttributes) {
    return Status::InvalidArgument(
        "relation has " + std::to_string(arity) +
        " attributes; outlier saving supports at most " +
        std::to_string(kMaxSaveableAttributes) +
        " (AttributeSet bitmask capacity)");
  }
  return Status::OK();
}

AttributeSet ChangedAttributes(const Tuple& original, const Tuple& adjusted) {
  AttributeSet changed;
  for (std::size_t a = 0;
       a < original.size() && a < kMaxSaveableAttributes; ++a) {
    if (!(original[a] == adjusted[a])) changed.insert(a);
  }
  return changed;
}

DiscSaver::DiscSaver(const Relation& inliers,
                     const DistanceEvaluator& evaluator,
                     DistanceConstraint constraint)
    : inliers_(inliers), evaluator_(evaluator), constraint_(constraint) {
  index_ = MakeNeighborIndex(inliers_, evaluator_, constraint_.epsilon);
  cache_ = std::make_unique<KthNeighborCache>(inliers_, *index_,
                                              constraint_.eta);
  bounds_ = std::make_unique<BoundsEngine>(inliers_, evaluator_, *index_,
                                           *cache_, constraint_);
}

struct DiscSaver::SearchState {
  double best_cost = std::numeric_limits<double>::infinity();
  Tuple best_adjusted;
  bool found = false;
  std::unordered_set<std::uint64_t> visited;
  std::size_t pruned = 0;
  bool budget_exhausted = false;
};

void DiscSaver::Explore(const Tuple& outlier, AttributeSet x,
                        const SaveOptions& options,
                        SearchState* state) const {
  if (state->budget_exhausted) return;
  if (!state->visited.insert(x.bits()).second) {
    return;  // this X was already processed (§3.3.1)
  }
  if (options.max_visited_sets != 0 &&
      state->visited.size() > options.max_visited_sets) {
    state->budget_exhausted = true;
    return;
  }

  // Lower bound (Algorithm 1 lines 1-3, Proposition 3): any adjustment that
  // keeps X fixed costs at least LB(X); supersets of X only cost more, so
  // the whole subtree is cut when LB(X) >= incumbent.
  if (options.use_lower_bound_pruning) {
    double lb = bounds_->LowerBoundForX(outlier, x);
    if (lb >= state->best_cost) {
      ++state->pruned;
      return;
    }
  }

  // Upper bound (lines 4-9, Proposition 5): the spliced tuple t_o^u is a
  // feasible adjustment; adopt it when it beats the incumbent.
  std::optional<BoundsEngine::UpperBound> ub =
      bounds_->UpperBoundForX(outlier, x);
  if (ub.has_value() && ub->cost < state->best_cost) {
    state->best_cost = ub->cost;
    state->best_adjusted = ub->adjusted;
    state->found = true;
  }

  // Recurse (lines 10-11): grow the unadjusted set.
  const std::size_t arity = evaluator_.arity();
  for (std::size_t a = 0; a < arity; ++a) {
    if (x.contains(a)) continue;
    Explore(outlier, x.With(a), options, state);
    if (state->budget_exhausted) return;
  }
}

void DiscSaver::RevertRefine(const Tuple& outlier, Tuple* adjusted) const {
  // Greedily restore adjusted attributes to the original values, cheapest
  // contribution first, as long as the result keeps >= eta epsilon-
  // neighbors. Each successful revert strictly reduces the adjustment cost.
  const std::size_t arity = evaluator_.arity();
  bool changed = true;
  while (changed) {
    changed = false;
    // Candidate attributes ordered by their per-attribute contribution.
    std::vector<std::pair<double, std::size_t>> order;
    for (std::size_t a = 0; a < arity; ++a) {
      if ((*adjusted)[a] == outlier[a]) continue;
      order.emplace_back(
          evaluator_.AttributeDistance(a, outlier[a], (*adjusted)[a]), a);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [contribution, a] : order) {
      Tuple trial = *adjusted;
      trial[a] = outlier[a];
      if (bounds_->IsFeasible(trial)) {
        *adjusted = std::move(trial);
        changed = true;
        break;  // re-rank contributions after each successful revert
      }
    }
  }
}

SaveResult DiscSaver::Save(const Tuple& outlier,
                           const SaveOptions& options) const {
  const std::size_t arity = evaluator_.arity();
  const bool restricted = options.kappa != 0 && options.kappa < arity;
  SearchState state;

  // The X = emptyset upper bound (Lemma 4 flavour): nearest substitution-
  // style donor. In unrestricted mode it seeds the incumbent directly. In
  // kappa-restricted mode it is kept OUT of the search incumbent — the
  // incumbent there tracks the best kappa-qualified splice (every visited X
  // has |X| >= m − kappa, so its splice changes <= kappa attributes), and
  // letting the often-cheaper substitution into it would both over-prune
  // and mask the low-attribute adjustment the caller asked for. The
  // substitution is reconsidered after revert refinement below.
  std::optional<BoundsEngine::UpperBound> global_seed =
      bounds_->UpperBoundForX(outlier, AttributeSet());
  if (!restricted && global_seed.has_value()) {
    state.best_cost = global_seed->cost;
    state.best_adjusted = global_seed->adjusted;
    state.found = true;
  }

  if (!restricted) {
    // Unrestricted: Algorithm 1 from X = ∅.
    Explore(outlier, AttributeSet(), options, &state);
  } else {
    // κ-restricted (§3.3.3): only adjustments touching <= κ attributes are
    // trusted, i.e. only X with |X| >= m − κ. Seed the recursion with every
    // X of size exactly m − κ; the shared visited set dedups overlaps.
    const std::size_t base_size = arity - options.kappa;
    // Enumerate subsets of size base_size with a combination walker.
    std::vector<std::size_t> combo(base_size);
    for (std::size_t i = 0; i < base_size; ++i) combo[i] = i;
    auto next_combination = [&]() {
      // Advance combo to the next size-base_size subset of {0..arity-1};
      // returns false when exhausted.
      std::size_t i = base_size;
      while (i > 0) {
        --i;
        if (combo[i] != i + arity - base_size) {
          ++combo[i];
          for (std::size_t j = i + 1; j < base_size; ++j) {
            combo[j] = combo[j - 1] + 1;
          }
          return true;
        }
      }
      return false;
    };
    do {
      AttributeSet x;
      for (std::size_t idx : combo) x.insert(idx);
      Explore(outlier, x, options, &state);
      if (state.budget_exhausted) break;
    } while (base_size > 0 && next_combination());
  }

  SaveResult result;
  result.lower_bound = bounds_->GlobalLowerBound(outlier);
  result.visited_sets = state.visited.size();
  result.pruned_sets = state.pruned;

  // Collect candidates: the search incumbent (kappa-qualified when
  // restricted) and, in restricted mode, the reverted substitution seed —
  // kept only if the revert brought it within the kappa budget.
  bool have = false;
  Tuple best;
  double best_cost = std::numeric_limits<double>::infinity();
  bool kappa_blocked = false;

  if (state.found) {
    Tuple adjusted = state.best_adjusted;
    if (options.use_revert_refinement) RevertRefine(outlier, &adjusted);
    best = adjusted;
    best_cost = evaluator_.Distance(outlier, best);
    have = true;
  }
  if (restricted && global_seed.has_value()) {
    Tuple adjusted = global_seed->adjusted;
    if (options.use_revert_refinement) RevertRefine(outlier, &adjusted);
    AttributeSet changed = ChangedAttributes(outlier, adjusted);
    double cost = evaluator_.Distance(outlier, adjusted);
    if (changed.size() <= options.kappa) {
      if (!have || cost < best_cost) {
        best = adjusted;
        best_cost = cost;
        have = true;
      }
    } else if (!have) {
      // A feasible adjustment exists but needs more attributes than the
      // caller trusts — the natural-outlier reading of §1.2.
      kappa_blocked = true;
    }
  }

  if (have) {
    AttributeSet changed = ChangedAttributes(outlier, best);
    if (restricted && changed.size() > options.kappa) {
      result.feasible = false;
      result.kappa_exceeded = true;
      result.adjusted = outlier;
      return result;
    }
    result.feasible = true;
    result.adjusted = best;
    result.cost = best_cost;
    result.adjusted_attributes = changed;
  } else {
    result.feasible = false;
    result.kappa_exceeded = kappa_blocked;
    result.adjusted = outlier;
  }
  return result;
}

std::vector<SaveResult> DiscSaver::SaveAll(const std::vector<Tuple>& outliers,
                                           const SaveOptions& options,
                                           ThreadPool* pool) const {
  std::vector<SaveResult> results(outliers.size());
  if (pool == nullptr || pool->size() <= 1 || outliers.size() <= 1) {
    for (std::size_t i = 0; i < outliers.size(); ++i) {
      results[i] = Save(outliers[i], options);
    }
    return results;
  }

  // One task per outlier: the searches vary wildly in cost (pruning depends
  // on how deep in a cluster the donor tuples sit), so fine-grained tasks
  // load-balance better than fixed chunks. The pool's bounded queue supplies
  // backpressure for very large batches. Results land in input order, which
  // together with the unchanged per-outlier search order makes the output
  // bit-identical to the sequential path.
  std::vector<std::future<SaveResult>> futures;
  futures.reserve(outliers.size());
  for (const Tuple& outlier : outliers) {
    futures.push_back(pool->Submit(
        [this, &outlier, &options] { return Save(outlier, options); }));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    results[i] = futures[i].get();
  }
  return results;
}

}  // namespace disc
