#include "core/disc_saver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/save_journal.h"
#include "index/index_factory.h"
#include "obs/explain.h"
#include "obs/progress.h"

namespace disc {

namespace {

/// Record for an outlier whose search never ran (batch drained-and-skipped
/// after the deadline passed or cancellation fired): untouched tuple,
/// nothing visited, termination says why.
SaveResult SkippedResult(const Tuple& outlier, SaveTermination why) {
  SaveResult result;
  result.feasible = false;
  result.termination = why;
  result.adjusted = outlier;
  return result;
}

/// Record for a search aborted by an injected/transient fault before any
/// real work: untouched tuple, kFault termination (retry-eligible), wall
/// time covering only the aborted setup.
SaveResult FaultedResult(const Tuple& outlier, std::uint64_t start_ns) {
  SaveResult result = SkippedResult(outlier, SaveTermination::kFault);
  result.stats.start_ns = start_ns;
  result.stats.wall_nanos = TraceNowNs() - start_ns;
  return result;
}

}  // namespace

Status ValidateSaveArity(std::size_t arity) {
  if (arity > kMaxSaveableAttributes) {
    return Status::InvalidArgument(
        "relation has " + std::to_string(arity) +
        " attributes; outlier saving supports at most " +
        std::to_string(kMaxSaveableAttributes) +
        " (AttributeSet bitmask capacity)");
  }
  return Status::OK();
}

AttributeSet ChangedAttributes(const Tuple& original, const Tuple& adjusted) {
  AttributeSet changed;
  for (std::size_t a = 0;
       a < original.size() && a < kMaxSaveableAttributes; ++a) {
    if (!(original[a] == adjusted[a])) changed.insert(a);
  }
  return changed;
}

DiscSaver::DiscSaver(const Relation& inliers,
                     const DistanceEvaluator& evaluator,
                     DistanceConstraint constraint, bool enable_fast_path)
    : inliers_(inliers),
      evaluator_(evaluator),
      constraint_(constraint),
      enable_fast_path_(enable_fast_path) {
  index_ = MakeNeighborIndex(inliers_, evaluator_, constraint_.epsilon);
  cache_ = std::make_unique<KthNeighborCache>(inliers_, *index_,
                                              constraint_.eta);
  bounds_ = std::make_unique<BoundsEngine>(inliers_, evaluator_, *index_,
                                           *cache_, constraint_);
  if (enable_fast_path_) {
    columnar_ = ColumnarView::Build(inliers_, evaluator_);
  }
}

struct DiscSaver::SearchState {
  double best_cost = std::numeric_limits<double>::infinity();
  Tuple best_adjusted;
  bool found = false;
  std::unordered_set<std::uint64_t> visited;
  std::size_t pruned = 0;
  BudgetGauge* gauge = nullptr;
  /// Per-search distance cache (full-space distances to every inlier plus
  /// memoized per-attribute rows), shared by every bound computation of this
  /// search. Null when the fast path is disabled.
  const SearchDistanceCache* dcache = nullptr;
  /// Pool serving the chunked bound scans of this search (null = inline).
  WorkStealingPool* nested = nullptr;
};

void DiscSaver::Explore(const Tuple& outlier, AttributeSet x,
                        const SaveOptions& options,
                        SearchState* state) const {
  BudgetGauge* gauge = state->gauge;
  if (gauge->stopped()) return;
  // Decision capture (DESIGN.md §14): exactly one event per visited node,
  // recording which rule decided its fate and the bounds behind the
  // decision. `node` accumulates as the node is evaluated; every exit path
  // below records it. Null when explain is detached — each site is then a
  // single pointer check and the search is untouched.
  SearchExplain* ex = gauge->explain();
  ExplainEvent node;
  node.x_bits = x.bits();
  node.incumbent = state->best_cost;
  if (!state->visited.insert(x.bits()).second) {
    if (ex != nullptr) {
      node.action = ExplainAction::kMemoHit;
      ex->Record(node);
    }
    return;  // this X was already processed (§3.3.1)
  }
  // Node expansion: hit the `search.node` fault site, then check
  // cancellation, deadline, visited-set and query budgets. On any trip the
  // incumbent stands and the whole search unwinds (anytime contract).
  if (!gauge->OnNodeExpanded(state->visited.size())) {
    if (ex != nullptr) {
      node.action = ExplainAction::kPruneBudget;
      ex->Record(node);
    }
    return;
  }

  // Lower bound (Algorithm 1 lines 1-3, Proposition 3): any adjustment that
  // keeps X fixed costs at least LB(X); supersets of X only cost more, so
  // the whole subtree is cut when LB(X) >= incumbent.
  if (options.use_lower_bound_pruning) {
    double lb = bounds_->LowerBoundForX(outlier, x, gauge, state->dcache,
                                        state->nested);
    if (gauge->stopped()) {
      if (ex != nullptr) {
        node.action = ExplainAction::kPruneBudget;
        ex->Record(node);
      }
      return;
    }
    node.lb = lb;
    if (lb >= state->best_cost) {
      ++state->pruned;
      if (ex != nullptr) {
        node.action = std::isinf(lb) ? ExplainAction::kInfeasible
                                     : ExplainAction::kPruneLb;
        ex->Record(node);
      }
      return;
    }
  }

  // Upper bound (lines 4-9, Proposition 5): the spliced tuple t_o^u is a
  // feasible adjustment; adopt it when it beats the incumbent. An abandoned
  // donor scan yields no bound, so a stopped gauge can never sneak a
  // half-searched splice into the incumbent.
  std::optional<BoundsEngine::UpperBound> ub =
      bounds_->UpperBoundForX(outlier, x, gauge, state->dcache, state->nested);
  if (gauge->stopped()) {
    if (ex != nullptr) {
      node.action = ExplainAction::kPruneBudget;
      ex->Record(node);
    }
    return;
  }
  if (ub.has_value()) {
    node.ub = ub->cost;
    node.donor_row = ub->donor_row;
  }
  if (ub.has_value() && ub->cost < state->best_cost) {
    state->best_cost = ub->cost;
    state->best_adjusted = ub->adjusted;
    state->found = true;
    if (ex != nullptr) {
      node.action = ExplainAction::kIncumbentUpdate;
      node.incumbent = state->best_cost;
      ex->Record(node);
    }
  } else if (ex != nullptr) {
    node.action = ExplainAction::kExpand;
    ex->Record(node);
  }

  // Recurse (lines 10-11): grow the unadjusted set.
  const std::size_t arity = evaluator_.arity();
  for (std::size_t a = 0; a < arity; ++a) {
    if (x.contains(a)) continue;
    Explore(outlier, x.With(a), options, state);
    if (gauge->stopped()) return;
  }
}

void DiscSaver::RevertRefine(const Tuple& outlier, Tuple* adjusted,
                             BudgetGauge* gauge) const {
  // Greedily restore adjusted attributes to the original values, cheapest
  // contribution first, as long as the result keeps >= eta epsilon-
  // neighbors. Each successful revert strictly reduces the adjustment cost.
  // Every mutation goes through a fully-validated trial, so stopping
  // between iterations (deadline/cancellation) leaves a feasible tuple.
  const std::size_t arity = evaluator_.arity();
  bool changed = true;
  while (changed && gauge->ContinueRefinement()) {
    changed = false;
    // Candidate attributes ordered by their per-attribute contribution.
    std::vector<std::pair<double, std::size_t>> order;
    for (std::size_t a = 0; a < arity; ++a) {
      if ((*adjusted)[a] == outlier[a]) continue;
      order.emplace_back(
          evaluator_.AttributeDistance(a, outlier[a], (*adjusted)[a]), a);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [contribution, a] : order) {
      Tuple trial = *adjusted;
      trial[a] = outlier[a];
      if (bounds_->IsFeasible(trial, gauge)) {
        *adjusted = std::move(trial);
        ++gauge->stats().revert_refines;
        if (SearchExplain* ex = gauge->explain()) {
          ExplainEvent event;
          event.action = ExplainAction::kRevertRefine;
          event.x_bits = AttributeSet().With(a).bits();
          event.ub = evaluator_.Distance(outlier, *adjusted);
          ex->Record(event);
        }
        changed = true;
        break;  // re-rank contributions after each successful revert
      }
    }
  }
}

SaveResult DiscSaver::Save(const Tuple& outlier,
                           const SaveOptions& options) const {
  return SaveImpl(outlier, options, Deadline::Infinite(), CancellationToken());
}

double DiscSaver::EstimateSearchCost(const Tuple& outlier) const {
  std::size_t needed = constraint_.eta > 0 ? constraint_.eta - 1 : 0;
  if (needed == 0) return 0;
  // `index.query` fault site: a failed estimate query degrades only the
  // schedule (the outlier is treated as maximally hard and dispatched
  // first), never the search results — estimates run outside the gauge.
  if (Status s = DISC_FAULT_POINT("index.query"); !s.ok()) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<Neighbor> nn = index_->KNearest(outlier, needed);
  if (nn.size() < needed) {
    // Fewer than η−1 inliers in total: the search degenerates anyway;
    // schedule it first so its (cheap) infeasibility verdict lands early.
    return std::numeric_limits<double>::infinity();
  }
  return nn.back().distance;
}

SaveResult DiscSaver::SaveImpl(const Tuple& outlier, const SaveOptions& options,
                               Deadline task_deadline,
                               const CancellationToken& batch_cancellation,
                               WorkStealingPool* nested, SearchTrace* strace,
                               SearchExplain* sexplain) const {
  const std::uint64_t start_ns = TraceNowNs();
  // `search.start` fault site: an error here aborts the search before any
  // work, as an index handle or arena acquisition would.
  if (Status s = DISC_FAULT_POINT("search.start"); !s.ok()) {
    return FaultedResult(outlier, start_ns);
  }
  const std::size_t arity = evaluator_.arity();
  const bool restricted = options.kappa != 0 && options.kappa < arity;
  BudgetGauge gauge(&options.budget, task_deadline, batch_cancellation);
  // Context propagation: the trace and explain contexts ride on the gauge,
  // which every bound computation and index query of this search already
  // receives.
  gauge.set_trace(strace);
  gauge.set_explain(sexplain);
  SearchState state;
  state.gauge = &gauge;
  state.nested = nested;

  // Per-search distance cache: Δ(t_o, t) to every inlier is invariant
  // across all B&B nodes of this search, so compute the vector once here
  // (the very first bound scan would have paid that cost anyway) and let
  // every LowerBoundForX/UpperBoundForX serve from it. Backed by the
  // columnar kernels when the relation qualifies, the scalar evaluator
  // otherwise; bit-identical either way.
  std::optional<SearchDistanceCache> dcache;
  if (enable_fast_path_) {
    // `dcache.fill` fault site: the eager full-space fill is the search's
    // single biggest allocation, so a simulated allocation failure lands
    // here and aborts the search as retryable.
    if (Status s = DISC_FAULT_POINT("dcache.fill"); !s.ok()) {
      return FaultedResult(outlier, start_ns);
    }
    dcache.emplace(inliers_, evaluator_, outlier, columnar_.get(),
                   &gauge.stats(), nested, strace);
    state.dcache = &*dcache;
  }

  // The X = emptyset upper bound (Lemma 4 flavour): nearest substitution-
  // style donor. In unrestricted mode it seeds the incumbent directly. In
  // kappa-restricted mode it is kept OUT of the search incumbent — the
  // incumbent there tracks the best kappa-qualified splice (every visited X
  // has |X| >= m − kappa, so its splice changes <= kappa attributes), and
  // letting the often-cheaper substitution into it would both over-prune
  // and mask the low-attribute adjustment the caller asked for. The
  // substitution is reconsidered after revert refinement below.
  std::optional<BoundsEngine::UpperBound> global_seed = bounds_->UpperBoundForX(
      outlier, AttributeSet(), &gauge, state.dcache, nested);
  if (!restricted && global_seed.has_value()) {
    state.best_cost = global_seed->cost;
    state.best_adjusted = global_seed->adjusted;
    state.found = true;
    if (sexplain != nullptr) {
      // The seed is an incumbent adoption but not a visited node; `seed`
      // keeps it out of the node-count cross-checks (obs/explain.h).
      ExplainEvent event;
      event.action = ExplainAction::kIncumbentUpdate;
      event.seed = true;
      event.ub = global_seed->cost;
      event.incumbent = global_seed->cost;
      event.donor_row = global_seed->donor_row;
      sexplain->Record(event);
    }
  }

  if (!restricted) {
    // Unrestricted: Algorithm 1 from X = ∅.
    Explore(outlier, AttributeSet(), options, &state);
  } else {
    // κ-restricted (§3.3.3): only adjustments touching <= κ attributes are
    // trusted, i.e. only X with |X| >= m − κ. Seed the recursion with every
    // X of size exactly m − κ; the shared visited set dedups overlaps.
    const std::size_t base_size = arity - options.kappa;
    // Enumerate subsets of size base_size with a combination walker.
    std::vector<std::size_t> combo(base_size);
    for (std::size_t i = 0; i < base_size; ++i) combo[i] = i;
    auto next_combination = [&]() {
      // Advance combo to the next size-base_size subset of {0..arity-1};
      // returns false when exhausted.
      std::size_t i = base_size;
      while (i > 0) {
        --i;
        if (combo[i] != i + arity - base_size) {
          ++combo[i];
          for (std::size_t j = i + 1; j < base_size; ++j) {
            combo[j] = combo[j - 1] + 1;
          }
          return true;
        }
      }
      return false;
    };
    do {
      AttributeSet x;
      for (std::size_t idx : combo) x.insert(idx);
      Explore(outlier, x, options, &state);
      if (gauge.stopped()) break;
    } while (base_size > 0 && next_combination());
  }

  SaveResult result;
  result.lower_bound = bounds_->GlobalLowerBound(outlier, &gauge);
  result.visited_sets = state.visited.size();
  result.pruned_sets = state.pruned;

  // Fills the termination/accounting fields once the verdict fields
  // (feasible, kappa_exceeded) are final.
  auto finalize = [&](SaveResult* r) {
    r->index_queries = gauge.query_count();
    r->stats = gauge.stats();
    r->stats.visited_sets = state.visited.size();
    r->stats.lb_prunes = state.pruned;
    r->stats.start_ns = start_ns;
    r->stats.wall_nanos = TraceNowNs() - start_ns;
    if (gauge.stopped()) {
      r->termination = gauge.reason();
    } else if (r->feasible || r->kappa_exceeded) {
      r->termination = SaveTermination::kCompleted;
    } else {
      r->termination = SaveTermination::kInfeasible;
    }
  };

  // Collect candidates: the search incumbent (kappa-qualified when
  // restricted) and, in restricted mode, the reverted substitution seed —
  // kept only if the revert brought it within the kappa budget. This whole
  // section is the `verdict` wall phase (RevertRefine's feasibility checks
  // pause it for their index_query time).
  {
    PhaseScope verdict_phase(strace, TracePhase::kVerdict);
    bool have = false;
    Tuple best;
    double best_cost = std::numeric_limits<double>::infinity();
    bool kappa_blocked = false;

    if (state.found) {
      Tuple adjusted = state.best_adjusted;
      if (options.use_revert_refinement) {
        RevertRefine(outlier, &adjusted, &gauge);
      }
      best = adjusted;
      best_cost = evaluator_.Distance(outlier, best);
      have = true;
    }
    if (restricted && global_seed.has_value()) {
      Tuple adjusted = global_seed->adjusted;
      if (options.use_revert_refinement) {
        RevertRefine(outlier, &adjusted, &gauge);
      }
      AttributeSet changed = ChangedAttributes(outlier, adjusted);
      double cost = evaluator_.Distance(outlier, adjusted);
      if (changed.size() <= options.kappa) {
        if (!have || cost < best_cost) {
          best = adjusted;
          best_cost = cost;
          have = true;
        }
      } else if (!have) {
        // A feasible adjustment exists but needs more attributes than the
        // caller trusts — the signature of a natural outlier under §1.2.
        kappa_blocked = true;
      }
    }

    if (have) {
      AttributeSet changed = ChangedAttributes(outlier, best);
      if (restricted && changed.size() > options.kappa) {
        result.feasible = false;
        result.kappa_exceeded = true;
        result.adjusted = outlier;
      } else {
        result.feasible = true;
        result.adjusted = best;
        result.cost = best_cost;
        result.adjusted_attributes = changed;
      }
    } else {
      result.feasible = false;
      result.kappa_exceeded = kappa_blocked;
      result.adjusted = outlier;
    }
  }
  finalize(&result);
  if (strace != nullptr) {
    // Emit the aggregated per-phase spans (parented under the search span)
    // from the owning thread and fold the totals into the profiler.
    strace->FlushPhaseSpans(SpanSlotForWorker(
        WorkStealingPool::CurrentWorkerIndex(),
        strace->collector != nullptr ? strace->collector->slots() : 1));
  }
  return result;
}

std::vector<SaveResult> DiscSaver::SaveAll(const std::vector<Tuple>& outliers,
                                           const SaveOptions& options,
                                           WorkStealingPool* pool,
                                           const BatchBudget& batch,
                                           TraceSink* trace,
                                           const BatchRecovery& recovery,
                                           ExplainSink* explain) const {
  const std::size_t n = outliers.size();
  std::vector<SaveResult> results(n);
  if (n == 0) return results;

  // Resume: restore journaled results up front. Restored ordinals never
  // touch the pool — no estimate query, no search, no trace span — which
  // is what keeps the merged batch bit-identical to an uninterrupted run
  // (the journal stored the exact bits the original search produced).
  std::vector<char> restored(n, 0);
  std::size_t restored_count = 0;
  if (recovery.resume != nullptr) {
    for (const SaveJournalEntry& entry : recovery.resume->entries) {
      if (entry.ordinal >= n) continue;
      results[entry.ordinal] = entry.result;
      if (restored[entry.ordinal] == 0) ++restored_count;
      restored[entry.ordinal] = 1;
    }
  }
  const std::size_t pending = n - restored_count;

  const bool parallel = pool != nullptr && pool->size() > 1 && pending > 1;
  const std::size_t workers =
      parallel ? std::min<std::size_t>(pool->size(), pending) : 1;
  WorkStealingPool* nested = parallel ? pool : nullptr;

  // Hierarchical tracing (DESIGN.md §13). Span buffers exist only when a
  // sink or the live recorder wants spans; the wall-phase profiler rides
  // along when attached. All ids derive from (batch seed, input ordinal),
  // never from time or scheduling, so the span *set* for the same work is
  // identical at every thread count (pool_chunk/estimate spans excepted —
  // they exist only where the parallel paths engage). When everything is
  // detached every per-search hook reduces to a null check.
  TraceRecorder* recorder = GlobalTraceRecorder();
  WallPhaseProfiler* profiler = GlobalWallProfiler();
  const bool span_tracing = trace != nullptr || recorder != nullptr;
  // Decision-log capture (DESIGN.md §14): same per-worker-buffer discipline
  // as the span collector, engaged by an explicit sink or the live
  // /explainz recorder. Explain-only runs still derive trace ids so logs,
  // spans and exemplars stay joinable on one identity.
  ExplainRecorder* erecorder = GlobalExplainRecorder();
  const bool explaining = explain != nullptr || erecorder != nullptr;
  const bool derive_ids = span_tracing || explaining;
  std::optional<SpanCollector> collector;
  std::optional<ExplainCollector> ecollector;
  std::uint64_t batch_seed = 0;
  if (derive_ids) batch_seed = NextTraceBatchSeed();
  if (span_tracing) collector.emplace((parallel ? pool->size() : 0) + 1);
  if (explaining) ecollector.emplace((parallel ? pool->size() : 0) + 1);

  // Live progress: registered once per batch when a global registry is
  // attached, written once per outlier from whichever thread finishes it.
  // A null registry costs one acquire load here and nothing per outlier.
  std::shared_ptr<BatchProgressTracker> progress;
  if (ProgressRegistry* registry = GlobalProgress()) {
    progress = registry->StartBatch("save_all", n, batch.deadline);
    for (std::size_t i = 0; i < n; ++i) {
      if (restored[i] != 0) progress->RecordResumed(results[i].termination);
    }
  }

  // Fair sub-deadlines: each task, when it *starts*, takes the remaining
  // batch wall clock × worker parallelism ÷ outliers left. Early tasks
  // that finish under their slice donate the unspent time to later ones
  // (the remaining clock only shrinks by what was actually used); a task
  // that would start past the deadline is drained-and-skipped.
  std::atomic<std::size_t> remaining{pending};

  auto task_slice = [&]() -> Deadline {
    Deadline task_deadline = batch.deadline;
    if (!batch.deadline.is_infinite()) {
      const std::size_t left = std::max<std::size_t>(
          std::size_t{1}, remaining.load(std::memory_order_relaxed));
      const auto rem = batch.deadline.remaining();
      // Slice = rem × min(workers, left) ÷ left, with a clamp that skips
      // the multiply for absurdly long deadlines (overflow safety).
      auto slice = rem;
      if (rem < std::chrono::hours(1)) {
        const auto par =
            static_cast<std::int64_t>(std::min<std::size_t>(workers, left));
        slice = rem * par / static_cast<std::int64_t>(left);
      }
      task_deadline = Deadline::Min(batch.deadline, Deadline::After(slice));
    }
    if (batch.per_outlier_limit.count() > 0) {
      task_deadline = Deadline::Min(task_deadline,
                                    Deadline::After(batch.per_outlier_limit));
    }
    return task_deadline;
  };

  auto run_one = [&](const Tuple& outlier, std::size_t ordinal) -> SaveResult {
    // Derived trace identity of this save; zero when both spans and explain
    // are off.
    const std::uint64_t trace_id =
        derive_ids ? DeriveTraceId(batch_seed, ordinal) : 0;
    const std::uint64_t root_span =
        span_tracing ? DeriveSpanId(trace_id, TraceSpanKind::kRoot, 0) : 0;
    std::uint64_t search_span =
        span_tracing ? DeriveSpanId(root_span, TraceSpanKind::kSearch, 0) : 0;
    SaveResult result;
    if (batch.cancellation.cancelled()) {
      remaining.fetch_sub(1, std::memory_order_relaxed);
      result = SkippedResult(outlier, SaveTermination::kCancelled);
    } else if (batch.deadline.expired()) {
      remaining.fetch_sub(1, std::memory_order_relaxed);
      result = SkippedResult(outlier, SaveTermination::kDeadline);
    } else {
      const int active_slot =
          recorder != nullptr
              ? recorder->BeginActive("search", trace_id, search_span,
                                      TraceNowNs())
              : -1;
      // Retry-with-backoff: transient terminations (injected faults, the
      // non-time budgets) are re-run while the retry policy and the batch
      // deadline slack allow. Each attempt computes a fresh fair slice;
      // the final attempt's result — and only its work counters — stands.
      std::size_t attempt = 1;
      SearchExplain sexplain;
      for (;;) {
        // Fresh per-attempt trace context: phase accumulators restart and
        // the search span id carries the attempt ordinal, so a retried
        // search never aliases the spans of its aborted attempts.
        SearchTrace strace;
        SearchTrace* strace_ptr = nullptr;
        if (span_tracing || profiler != nullptr) {
          strace.collector = collector.has_value() ? &*collector : nullptr;
          strace.profiler = profiler;
          strace.trace_id = trace_id;
          strace.root_span_id = root_span;
          strace.search_span_id = DeriveSpanId(
              root_span, TraceSpanKind::kSearch, attempt - 1);
          search_span = strace.search_span_id;
          strace_ptr = &strace;
        }
        // Fresh per-attempt decision log, for the same reason: the reported
        // log describes exactly the attempt whose result stands.
        sexplain = SearchExplain();
        result = SaveImpl(outlier, options, task_slice(), batch.cancellation,
                          nested, strace_ptr,
                          ecollector.has_value() ? &sexplain : nullptr);
        if (attempt >= recovery.retry.max_attempts ||
            !RetryPolicy::IsTransient(result.termination)) {
          break;
        }
        const auto backoff = recovery.retry.BackoffFor(attempt - 1);
        if (batch.cancellation.cancelled() ||
            (!batch.deadline.is_infinite() &&
             batch.deadline.remaining() < 2 * backoff)) {
          break;  // no slack left to carve the retry from
        }
        std::this_thread::sleep_for(backoff);
        ++attempt;
        if (progress != nullptr) progress->RecordRetry();
      }
      result.stats.retries = attempt - 1;
      remaining.fetch_sub(1, std::memory_order_relaxed);
      if (recorder != nullptr) recorder->EndActive(active_slot);
      if (ecollector.has_value()) {
        // The finished decision log: the final attempt's events plus the
        // verdict fields and the SearchStats mirrors the analyzer
        // cross-checks against (scripts/analyze_explain.py).
        ExplainSearchLog log;
        log.ordinal = ordinal;
        log.trace_id = trace_id;
        log.attempt = attempt;
        log.termination = SaveTerminationName(result.termination);
        log.feasible = result.feasible;
        if (result.feasible) log.final_cost = result.cost;
        log.global_lb = result.lower_bound;
        log.wall_nanos = result.stats.wall_nanos;
        log.visited_sets = result.stats.visited_sets;
        log.lb_prunes = result.stats.lb_prunes;
        log.nodes_expanded = result.stats.nodes_expanded;
        log.revert_refines = result.stats.revert_refines;
        log.abandoned_scans = sexplain.abandoned_scans;
        log.dropped_events = sexplain.dropped_events;
        log.events = std::move(sexplain.events);
        ecollector->Record(
            SpanSlotForWorker(WorkStealingPool::CurrentWorkerIndex(),
                              ecollector->slots()),
            std::move(log));
      }
    }
    result.trace_id = trace_id;
    if (recovery.journal != nullptr &&
        (result.termination == SaveTermination::kCompleted ||
         result.termination == SaveTermination::kInfeasible)) {
      Status journal_status = recovery.journal->Append(ordinal, result);
      if (!journal_status.ok()) {
        // Best-effort durability: a failed append only means this outlier
        // would be re-searched on resume. The batch itself continues.
        DISC_LOG(WARN)
            .Int("ordinal", static_cast<long long>(ordinal))
            .Str("status", journal_status.ToString())
            << "journal append failed";
      }
    }
    if (progress != nullptr) {
      progress->RecordOutlier(result.termination, result.stats.wall_nanos);
    }
    if (collector.has_value()) {
      // Recorded into this thread's own span buffer; the batch-end drain
      // emits everything to the sink sorted by (trace_id, span_id), so the
      // JSONL order is deterministic. `ordinal` keys each span back to its
      // input position.
      TraceSpan span;
      span.name = "search";
      span.start_ns = result.stats.start_ns;
      span.duration_ns = result.stats.wall_nanos;
      span.trace_id = trace_id;
      span.span_id = search_span;
      span.parent_id = root_span;
      span.Int("ordinal", ordinal)
          .Str("termination", SaveTerminationName(result.termination));
      result.stats.AttachTo(&span);
      collector->Record(
          SpanSlotForWorker(WorkStealingPool::CurrentWorkerIndex(),
                            collector->slots()),
          std::move(span));
    }
    return result;
  };

  // Batch-end drain: every per-thread span buffer is merged and sorted by
  // (trace_id, span_id), so the JSONL sink sees a deterministic order
  // regardless of worker scheduling. Only the top-level search spans feed
  // the /tracez ring — phase and chunk spans stay in the sink.
  auto drain_spans = [&]() {
    if (!collector.has_value()) return;
    for (TraceSpan& span : collector->Drain()) {
      if (recorder != nullptr && span.name == "search") {
        recorder->RecordFinished(span);
      }
      if (trace != nullptr) trace->Emit(span);
    }
  };

  // Explain drain: logs come back sorted by (ordinal, attempt), so the sink
  // sees input order, /explainz sees the same recent window at every thread
  // count, and the metric flush sums are deterministic.
  auto drain_explain = [&]() {
    if (!ecollector.has_value()) return;
    const std::vector<ExplainSearchLog> logs = ecollector->Drain();
    for (const ExplainSearchLog& log : logs) {
      if (erecorder != nullptr) erecorder->RecordSearch(log);
      if (explain != nullptr) explain->Emit(log);
    }
    FlushExplainMetrics(GlobalMetrics(), logs);
  };

  if (pending == 0) {
    if (progress != nullptr) progress->MarkDone();
    return results;
  }

  if (!parallel) {
    for (std::size_t i = 0; i < n; ++i) {
      if (restored[i] != 0) continue;
      results[i] = run_one(outliers[i], i);
    }
    drain_spans();
    drain_explain();
    if (progress != nullptr) progress->MarkDone();
    return results;
  }

  // Cost-ordered work stealing. The searches vary wildly in cost (pruning
  // depends on how deep in a cluster the donor tuples sit); a FIFO schedule
  // routinely strands the most expensive search at the tail of the batch,
  // serializing its whole runtime behind everything else. Estimating each
  // search's difficulty first and dispatching hardest-first bounds that
  // tail by the longest single search — and the estimates are cheap enough
  // (one kNN query each, ~the cost of one bound scan) to amortize across
  // the batch. The estimate pass runs on the same pool, in input order.
  MetricsRegistry* metrics = GlobalMetrics();
  const WorkStealingPool::SchedStats before = pool->stats();
  Gauge* depth_gauge =
      metrics != nullptr
          ? metrics->GetGauge("disc_sched_queue_depth",
                              "Batch save tasks queued but not yet started "
                              "on the work-stealing pool")
          : nullptr;

  std::vector<double> estimates(n, 0.0);
  std::vector<std::size_t> order;
  order.reserve(pending);
  for (std::size_t i = 0; i < n; ++i) {
    if (restored[i] == 0) order.push_back(i);
  }
  {
    const std::vector<std::size_t> input_order = order;
    pool->RunBatch(input_order, [&](std::size_t i) {
      const bool timed = collector.has_value() || profiler != nullptr;
      const std::uint64_t start_ns = timed ? TraceNowNs() : 0;
      estimates[i] = EstimateSearchCost(outliers[i]);
      if (!timed) return;
      const std::uint64_t elapsed = TraceNowNs() - start_ns;
      if (profiler != nullptr) profiler->Add(TracePhase::kEstimate, elapsed);
      if (collector.has_value()) {
        const std::uint64_t trace_id = DeriveTraceId(batch_seed, i);
        const std::uint64_t root_span =
            DeriveSpanId(trace_id, TraceSpanKind::kRoot, 0);
        TraceSpan span;
        span.name = "estimate";
        span.start_ns = start_ns;
        span.duration_ns = elapsed;
        span.trace_id = trace_id;
        span.span_id = DeriveSpanId(root_span, TraceSpanKind::kEstimate, 0);
        span.parent_id = root_span;
        span.Int("ordinal", i).Num("cost", estimates[i]);
        collector->Record(
            SpanSlotForWorker(WorkStealingPool::CurrentWorkerIndex(),
                              collector->slots()),
            std::move(span));
      }
    });
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return estimates[a] > estimates[b];
                   });

  // One task per outlier, hardest first; results land in their input slot,
  // which together with the unchanged per-outlier search order makes the
  // output bit-identical to the sequential path — including under a batch
  // budget, where skipped tasks produce their records without ever
  // blocking the pool's drain.
  pool->RunBatch(order, [&](std::size_t i) {
    results[i] = run_one(outliers[i], i);
    if (depth_gauge != nullptr) {
      depth_gauge->Set(static_cast<std::int64_t>(pool->queue_depth()));
    }
  });
  if (depth_gauge != nullptr) depth_gauge->Set(0);
  drain_spans();
  drain_explain();
  if (metrics != nullptr) {
    const WorkStealingPool::SchedStats after = pool->stats();
    if (Counter* c = metrics->GetCounter(
            "disc_sched_tasks_total",
            "Work-stealing pool tasks executed (cost estimates and "
            "per-outlier searches)")) {
      c->Add(after.tasks - before.tasks);
    }
    if (Counter* c =
            metrics->GetCounter("disc_sched_steals_total",
                                "Tasks taken from another worker's deque")) {
      c->Add(after.steals - before.steals);
    }
    if (Counter* c = metrics->GetCounter(
            "disc_sched_nested_chunks_total",
            "Nested bound-scan chunks executed by pool workers")) {
      c->Add(after.nested_chunks - before.nested_chunks);
    }
  }
  if (progress != nullptr) progress->MarkDone();
  return results;
}

}  // namespace disc
