#ifndef DISC_CORE_DISC_SAVER_H_
#define DISC_CORE_DISC_SAVER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/relation.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/tuple.h"
#include "constraints/distance_constraint.h"
#include "core/bounds.h"
#include "core/search_budget.h"
#include "core/search_distance_cache.h"
#include "distance/columnar.h"
#include "distance/evaluator.h"
#include "index/kth_neighbor_cache.h"
#include "index/neighbor_index.h"

namespace disc {

class ExplainSink;
class TraceSink;
class SaveJournalWriter;
struct SaveJournal;

/// Widest relation the savers support. Adjusted-attribute bookkeeping
/// (ChangedAttributes, the B&B search over attribute sets X) uses
/// AttributeSet bitmasks, so schemas beyond this arity must be rejected with
/// a Status — never silently truncated. Covers every dataset in the paper
/// (max 57 attributes for Spam).
inline constexpr std::size_t kMaxSaveableAttributes = AttributeSet::kCapacity;

/// OK iff a relation of `arity` attributes fits the savers' AttributeSet
/// bookkeeping; InvalidArgument naming the cap otherwise. Every saving entry
/// point (SaveOutliers, DiscSaver::SaveAll) checks this before any search.
Status ValidateSaveArity(std::size_t arity);

/// Knobs for a single Save() call.
struct SaveOptions {
  /// Maximum number of attributes the adjustment may change. 0 means
  /// unrestricted (Algorithm 1 starting from X = ∅, O(2^m · n) worst case).
  /// A positive κ runs the restricted variant of §3.3.3: only X with
  /// |X| >= m − κ are explored, O(m^{κ+1} · n).
  std::size_t kappa = 0;
  /// Lower-bound pruning (Algorithm 1 line 2). Disable only for ablation.
  bool use_lower_bound_pruning = true;
  /// Execution budget: deadline, cancellation, visited-set and index-query
  /// caps (all optional). On any limit the best incumbent found so far is
  /// returned and SaveResult::termination records why the search stopped —
  /// a truncated search is never silently passed off as a completed one.
  SearchBudget budget;
  /// Revert refinement: after the bound-guided search, greedily restore
  /// adjusted attributes to their original values while the adjustment
  /// stays feasible (checked exactly, not via the Proposition-5 sufficient
  /// condition). Strictly reduces the cost, so every guarantee of §3.4
  /// still holds; it also concentrates the change onto the genuinely
  /// erroneous attributes (the minimum-change goal of §2.2). Disable only
  /// for ablation.
  bool use_revert_refinement = true;
};

/// Outcome of saving one outlier.
struct SaveResult {
  /// True iff a feasible adjustment was found.
  bool feasible = false;
  /// How the search ended. kCompleted/kInfeasible are definitive answers;
  /// the other values mean the search was truncated (deadline, budget,
  /// cancellation) and `adjusted` is the best — still fully feasible —
  /// incumbent found up to that point (Proposition 5 or better), or the
  /// unmodified input when no incumbent existed yet (`feasible` == false).
  SaveTermination termination = SaveTermination::kCompleted;
  /// The adjusted tuple t_o' (equals the input when infeasible).
  Tuple adjusted;
  /// Adjustment cost Δ(t_o, t_o').
  double cost = 0;
  /// Attributes whose value actually changed.
  AttributeSet adjusted_attributes;
  /// Global lower bound of Lemma 2 (0 when uninformative). Together with
  /// `cost` this certifies the approximation quality of this answer:
  /// cost / max(lower_bound, optimal) bounds the ratio of Proposition 6.
  double lower_bound = 0;
  /// Number of distinct unadjusted-attribute sets X explored.
  std::size_t visited_sets = 0;
  /// Number of subtrees cut by the lower-bound pruning rule.
  std::size_t pruned_sets = 0;
  /// Logical neighbor-index queries spent (bound scans, kNN, feasibility
  /// checks) — the unit metered by SearchBudget::max_index_queries.
  std::size_t index_queries = 0;
  /// True when no adjustment within the κ attribute budget was found but a
  /// feasible adjustment touching more attributes exists — the signature of
  /// a natural outlier under §1.2's reading.
  bool kappa_exceeded = false;
  /// Full per-search work counters (node expansions, typed bound
  /// computations, feasibility checks, cache traffic, wall time). The
  /// legacy mirrors above (`visited_sets`, `pruned_sets`, `index_queries`)
  /// always equal the corresponding stats fields.
  SearchStats stats;
  /// Trace identity of this save when the batch was traced or explained (0
  /// otherwise, including journal-restored results). Derived from the batch
  /// seed and the input ordinal — never from time or scheduling — so it is
  /// excluded from work-parity comparisons the same way wall_nanos is.
  /// Links the result to its span tree, decision log and histogram
  /// exemplars.
  std::uint64_t trace_id = 0;
};

/// Crash-safety and self-healing controls for one SaveAll batch
/// (DESIGN.md §11). The all-default value is a strict no-op: no journal,
/// no resume, no retries — SaveAll behaves exactly as before.
struct BatchRecovery {
  /// When non-null, every definitively finished outlier (termination
  /// kCompleted or kInfeasible) is appended — and flushed — as it
  /// completes, so a crash loses at most in-flight searches. Degraded
  /// results are not journaled: a resumed run re-attempts them with a
  /// fresh budget, which is what makes the merged output of
  /// crash-then-resume bit-identical to an uninterrupted run.
  SaveJournalWriter* journal = nullptr;
  /// When non-null, ordinals recorded in the journal restore their results
  /// verbatim and skip their searches (no estimate query, no search span).
  /// The journal must belong to this batch — validate with
  /// SaveJournal::Matches first; entries whose ordinal is out of range are
  /// ignored.
  const SaveJournal* resume = nullptr;
  /// Re-runs searches ending in a transient termination (injected faults,
  /// visit/query budget) with exponential backoff, while batch deadline
  /// slack allows. The final attempt's result is reported with
  /// SearchStats::retries = attempts − 1.
  RetryPolicy retry;
};

/// The DISC approximation (Algorithm 1): branch-and-bound over sets X of
/// unadjusted attributes, keeping the best Proposition-5 upper bound as the
/// incumbent and cutting subtrees whose Proposition-3 lower bound cannot
/// beat it.
///
/// Typical use: build once per (inlier set, constraint), then Save() each
/// outlier — or SaveAll() a batch, optionally across a WorkStealingPool.
///
/// Thread-safety: after construction, Save()/SaveAll() are const and touch
/// only immutable shared state (the inlier relation, evaluator,
/// NeighborIndex, KthNeighborCache and BoundsEngine are all read-only after
/// their constructors) plus a per-call SearchState, so any number of threads
/// may call them concurrently on one DiscSaver.
class DiscSaver {
 public:
  /// `inliers` is the outlier-free set r; all tuples in it are assumed to
  /// satisfy the constraint. The relation and evaluator must outlive the
  /// saver.
  ///
  /// `enable_fast_path` controls the columnar kernels and the per-search
  /// distance cache (results are bit-identical either way; disabling exists
  /// for reference comparisons in tests and benchmarks). The columnar
  /// kernels engage only when the inlier relation is all-numeric and every
  /// metric is a scaled absolute difference (ColumnarView::Eligible); the
  /// per-search cache engages for any schema.
  DiscSaver(const Relation& inliers, const DistanceEvaluator& evaluator,
            DistanceConstraint constraint, bool enable_fast_path = true);

  /// Finds a near-optimal adjustment of `outlier` under the constraint.
  /// Anytime: with a SaveOptions::budget the call returns the best feasible
  /// incumbent found when the budget runs out (never a partial adjustment),
  /// with SaveResult::termination saying why it stopped.
  SaveResult Save(const Tuple& outlier, const SaveOptions& options = {}) const;

  /// Saves a batch of outliers, one independent Save() per tuple. With a
  /// non-null `pool` of more than one worker the searches run concurrently
  /// against the shared read-only index state, scheduled cost-ordered:
  /// each outlier's search cost is estimated up front (its η−1-NN distance
  /// — how far it sits from the inlier mass predicts how much bound work
  /// the B&B search needs), the estimates are sorted descending, and the
  /// pool's work-stealing deques start the hardest searches first while
  /// idle workers steal the cheap ones from the back. Late stragglers
  /// additionally fan their O(n) bound scans out across idle workers
  /// (nested parallelism — see BoundsEngine and WorkStealingPool).
  ///
  /// Determinism: the schedule orders only *execution*; every per-outlier
  /// search performs identical work to a plain Save() call (the nested
  /// chunk merges are bit-identical by construction, and the cost
  /// estimates run outside the per-search SearchStats), and results are
  /// merged by input order — so the returned vector, including the
  /// attached stats (SearchStats::SameWork), is bit-identical for every
  /// thread count (including pool == nullptr). The estimate queries do
  /// bump the process-wide disc_index_* metrics; that telemetry is the
  /// only observable difference between the parallel and sequential
  /// paths. `outliers` and `options` must stay alive and unmodified until
  /// SaveAll returns.
  ///
  /// Batch budget: `batch.deadline` bounds the whole batch. Each task
  /// computes a fair slice of the remaining time when it starts (remaining
  /// wall clock × worker parallelism ÷ outliers left), intersected with
  /// `batch.per_outlier_limit` and the per-search budget in `options`.
  /// Once the batch deadline passes or `batch.cancellation` fires, queued
  /// tasks drain-and-skip: they still pop off the pool queue but complete
  /// immediately with an untouched tuple and termination kDeadline /
  /// kCancelled, so pool shutdown is never blocked. A batch with an
  /// unlimited budget is bit-identical to one saved without this
  /// parameter.
  ///
  /// Observability: when a global ProgressRegistry is attached
  /// (AttachGlobalProgress), the batch registers a "save_all" tracker and
  /// each worker records its outlier as it finishes, so /statusz sees live
  /// counts. With a non-null `trace`, each worker emits one "search" span
  /// (carrying the ordinal and the full SearchStats) directly from its own
  /// thread as the search completes — the sink must be thread-safe
  /// (JsonlTraceSink is); span order across workers is nondeterministic but
  /// each line is self-contained. Neither hook touches the search itself:
  /// results stay bit-identical with or without them. Scheduler telemetry
  /// (task/steal/nested-chunk deltas, live queue depth) flows into the
  /// global MetricsRegistry as disc_sched_* when one is attached.
  ///
  /// Recovery: with `recovery.journal` each definitive result is made
  /// durable as it lands; with `recovery.resume` journaled ordinals are
  /// restored instead of searched; `recovery.retry` re-runs transient
  /// failures. See BatchRecovery — the default is a strict no-op.
  ///
  /// Explain (DESIGN.md §14): with a non-null `explain` sink — or a global
  /// ExplainRecorder attached — each search's final attempt captures its
  /// full decision log (obs/explain.h) into per-worker buffers, drained at
  /// batch end sorted by input ordinal: sink emission order, the /explainz
  /// feed and the disc_explain_* metric flush are all deterministic.
  /// Capture rides the BudgetGauge, so the logged events are the search's
  /// actual decisions and the log is bit-identical for every thread count
  /// (explain_determinism_test). Detached, every capture site is one null
  /// check. Skipped and journal-restored ordinals emit no log.
  std::vector<SaveResult> SaveAll(const std::vector<Tuple>& outliers,
                                  const SaveOptions& options = {},
                                  WorkStealingPool* pool = nullptr,
                                  const BatchBudget& batch = {},
                                  TraceSink* trace = nullptr,
                                  const BatchRecovery& recovery = {},
                                  ExplainSink* explain = nullptr) const;

  /// The bounds engine (exposed for tests and diagnostics).
  const BoundsEngine& bounds() const { return *bounds_; }

 private:
  struct SearchState;
  /// `nested`, when non-null, serves the chunked bound scans of this search
  /// (results bit-identical with or without it). `strace`, when non-null,
  /// rides on the BudgetGauge through every bound computation and records
  /// the wall phases and span buffers of this search (common/trace.h);
  /// tracing never changes what is computed. `sexplain` likewise rides on
  /// the gauge and captures the decision log (obs/explain.h).
  SaveResult SaveImpl(const Tuple& outlier, const SaveOptions& options,
                      Deadline task_deadline,
                      const CancellationToken& batch_cancellation,
                      WorkStealingPool* nested = nullptr,
                      SearchTrace* strace = nullptr,
                      SearchExplain* sexplain = nullptr) const;
  /// Scheduling cost estimate for one outlier: its η−1-NN distance in r.
  /// Cheap (one grid-accelerated kNN query), correlates with how much of
  /// the space the B&B search must cover, and runs outside any BudgetGauge
  /// so per-search stats stay schedule-independent.
  double EstimateSearchCost(const Tuple& outlier) const;
  void Explore(const Tuple& outlier, AttributeSet x, const SaveOptions& options,
               SearchState* state) const;
  void RevertRefine(const Tuple& outlier, Tuple* adjusted,
                    BudgetGauge* gauge) const;

  const Relation& inliers_;
  const DistanceEvaluator& evaluator_;
  DistanceConstraint constraint_;
  bool enable_fast_path_ = true;
  std::unique_ptr<NeighborIndex> index_;
  std::unique_ptr<KthNeighborCache> cache_;
  std::unique_ptr<BoundsEngine> bounds_;
  std::unique_ptr<ColumnarView> columnar_;  ///< null when ineligible/disabled
};

/// Computes which attributes differ between `original` and `adjusted`.
/// Only the first kMaxSaveableAttributes attributes are representable;
/// callers must have rejected wider tuples via ValidateSaveArity.
AttributeSet ChangedAttributes(const Tuple& original, const Tuple& adjusted);

}  // namespace disc

#endif  // DISC_CORE_DISC_SAVER_H_
