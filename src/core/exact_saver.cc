#include "core/exact_saver.h"

#include <limits>

#include "common/trace.h"
#include "index/index_factory.h"
#include "obs/explain.h"

namespace disc {

ExactSaver::ExactSaver(const Relation& inliers,
                       const DistanceEvaluator& evaluator,
                       DistanceConstraint constraint)
    : inliers_(inliers), evaluator_(evaluator), constraint_(constraint) {
  index_ = MakeNeighborIndex(inliers_, evaluator_, constraint_.epsilon);
  domains_.reserve(inliers_.arity());
  for (std::size_t a = 0; a < inliers_.arity(); ++a) {
    domains_.push_back(inliers_.Domain(a));
  }
}

struct ExactSaver::EnumState {
  double best_cost = std::numeric_limits<double>::infinity();
  Tuple best_adjusted;
  bool found = false;
  std::size_t checked = 0;
  /// Set when max_candidates trips (the gauge handles every other limit).
  bool candidate_cap_hit = false;
  BudgetGauge* gauge = nullptr;
};

bool ExactSaver::IsFeasible(const Tuple& candidate, BudgetGauge* gauge) const {
  // The saved tuple counts toward its own η total (Formula 4), so η−1
  // inlier matches suffice.
  std::size_t needed = constraint_.eta > 0 ? constraint_.eta - 1 : 0;
  if (needed == 0) return true;
  if (gauge != nullptr) {
    ++gauge->stats().index_queries;
    ++gauge->stats().feasibility_checks;
    ++gauge->stats().index_count_queries;
  }
  PhaseScope phase(gauge != nullptr ? gauge->trace() : nullptr,
                   TracePhase::kIndexQuery);
  return index_->CountWithin(candidate, constraint_.epsilon, needed) >= needed;
}

void ExactSaver::Enumerate(const Tuple& outlier, std::size_t attr,
                           Tuple* candidate, double partial_cost_raw,
                           const ExactOptions& options,
                           EnumState* state) const {
  if (state->candidate_cap_hit || state->gauge->stopped()) return;
  const LpNorm norm = evaluator_.norm();
  auto raw_total = [&](double raw) {
    // Convert the accumulated raw value into the norm's final aggregate.
    if (norm == LpNorm::kL2) return raw;        // raw is sum of squares
    return raw;                                  // L1: sum, LInf: max
  };
  auto best_raw = [&]() {
    if (!state->found) return std::numeric_limits<double>::infinity();
    if (norm == LpNorm::kL2) return state->best_cost * state->best_cost;
    return state->best_cost;
  };

  if (raw_total(partial_cost_raw) >= best_raw()) {
    return;  // cannot beat the incumbent no matter what follows
  }

  if (attr == evaluator_.arity()) {
    // One fully assembled candidate = one budget unit: fire the fault hook,
    // poll deadline/cancellation, and count toward the visit budget. The
    // incumbent only ever holds candidates that passed a complete
    // feasibility check, so stopping here is always safe.
    ++state->checked;
    if (!state->gauge->OnNodeExpanded(state->checked)) {
      if (SearchExplain* ex = state->gauge->explain()) {
        ExplainEvent event;
        event.action = ExplainAction::kPruneBudget;
        event.x_bits = ChangedAttributes(outlier, *candidate).bits();
        event.incumbent = state->best_cost;
        ex->Record(event);
      }
      return;
    }
    if (options.max_candidates != 0 &&
        state->checked > options.max_candidates) {
      state->candidate_cap_hit = true;
      return;
    }
    if (IsFeasible(*candidate, state->gauge)) {
      // Early exit past the incumbent: a candidate strictly costlier than
      // best_cost comes back as +infinity and fails the `<` identically.
      double cost =
          evaluator_.DistanceWithin(outlier, *candidate, state->best_cost);
      if (cost < state->best_cost) {
        state->best_cost = cost;
        state->best_adjusted = *candidate;
        state->found = true;
        if (SearchExplain* ex = state->gauge->explain()) {
          ExplainEvent event;
          event.action = ExplainAction::kIncumbentUpdate;
          event.x_bits = ChangedAttributes(outlier, *candidate).bits();
          event.ub = cost;
          event.incumbent = cost;
          ex->Record(event);
        }
      }
    }
    return;
  }

  // Try the unmodified value first (zero marginal cost), then each domain
  // value sorted implicitly by the relation's domain order.
  auto step = [&](const Value& v) {
    double d = evaluator_.AttributeDistance(attr, outlier[attr], v);
    double add = (norm == LpNorm::kL2) ? d * d : d;
    double next_raw = (norm == LpNorm::kLInf)
                          ? std::max(partial_cost_raw, add)
                          : partial_cost_raw + add;
    (*candidate)[attr] = v;
    Enumerate(outlier, attr + 1, candidate, next_raw, options, state);
    (*candidate)[attr] = outlier[attr];
  };

  step(outlier[attr]);
  for (const Value& v : domains_[attr]) {
    if (state->candidate_cap_hit || state->gauge->stopped()) return;
    if (v == outlier[attr]) continue;
    step(v);
  }
}

ExactResult ExactSaver::Save(const Tuple& outlier, const ExactOptions& options,
                             Deadline extra_deadline,
                             const CancellationToken& extra_cancellation) const {
  const std::uint64_t start_ns = TraceNowNs();
  BudgetGauge gauge(&options.budget, extra_deadline, extra_cancellation);
  gauge.set_trace(options.trace);
  gauge.set_explain(options.explain);
  EnumState state;
  state.gauge = &gauge;
  Tuple candidate = outlier;
  Enumerate(outlier, 0, &candidate, 0.0, options, &state);

  ExactResult result;
  result.candidates_checked = state.checked;
  result.index_queries = gauge.query_count();
  result.stats = gauge.stats();
  result.stats.start_ns = start_ns;
  result.stats.wall_nanos = TraceNowNs() - start_ns;
  if (gauge.stopped()) {
    result.termination = gauge.reason();
  } else if (state.candidate_cap_hit) {
    result.termination = SaveTermination::kVisitBudget;
  } else if (state.found) {
    result.termination = SaveTermination::kCompleted;
  } else {
    result.termination = SaveTermination::kInfeasible;
  }
  if (state.found) {
    result.feasible = true;
    result.adjusted = state.best_adjusted;
    result.cost = state.best_cost;
    result.adjusted_attributes = ChangedAttributes(outlier, state.best_adjusted);
  } else {
    result.feasible = false;
    result.adjusted = outlier;
  }
  return result;
}

}  // namespace disc
