#include "core/bounds.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <limits>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "distance/lp_norm.h"
#include "obs/explain.h"

namespace disc {

namespace {

/// The per-search trace context riding on the gauge (null when untraced).
inline SearchTrace* TraceOf(BudgetGauge* gauge) {
  return gauge != nullptr ? gauge->trace() : nullptr;
}

/// Marks one abandoned bound scan on the per-search decision log (no-op
/// when explain is detached). An abandoned scan returns its safe
/// uninformative value, so the log flags the searches whose bound-quality
/// data is polluted by truncation.
inline void NoteAbandonedScan(BudgetGauge* gauge) {
  if (gauge == nullptr) return;
  if (SearchExplain* explain = gauge->explain()) explain->NoteAbandonedScan();
}

/// Tracks one chunked bound scan for span recording: derives the scan's
/// deterministic id from the owning phase span and the search's running
/// scan ordinal, and records one `pool_chunk` span per executed chunk into
/// the recording thread's own collector slot. Chunk presence depends on
/// the nested path engaging (pool size, n) — chunk spans are therefore
/// excluded from the cross-thread-count parity contract (DESIGN.md §13).
struct ChunkSpanRecorder {
  SearchTrace* trace = nullptr;
  std::uint64_t phase_span = 0;
  std::uint64_t scan_span = 0;

  ChunkSpanRecorder(SearchTrace* search_trace, TracePhase phase) {
    if (search_trace == nullptr || search_trace->collector == nullptr) return;
    trace = search_trace;
    phase_span = trace->PhaseSpanId(phase);
    scan_span = DeriveSpanId(phase_span, TraceSpanKind::kScan,
                             trace->scan_ordinal++);
  }

  bool enabled() const { return trace != nullptr; }

  /// Call from the chunk body's thread after the chunk's work.
  void Record(std::uint64_t chunk_start_ns, std::size_t chunk,
              std::size_t rows) const {
    TraceSpan span;
    span.name = "pool_chunk";
    span.start_ns = chunk_start_ns;
    span.duration_ns = TraceNowNs() - chunk_start_ns;
    span.trace_id = trace->trace_id;
    span.span_id = DeriveSpanId(scan_span, TraceSpanKind::kChunk, chunk);
    span.parent_id = phase_span;
    span.Int("chunk", chunk).Int("rows", rows);
    trace->collector->Record(
        SpanSlotForWorker(WorkStealingPool::CurrentWorkerIndex(),
                          trace->collector->slots()),
        std::move(span));
  }
};

/// Rows per nested chunk for the parallel bound scans, and the poll stride
/// for the thread-safe hard-stop probe inside a chunk (matching the
/// sequential KeepScanning stride).
constexpr std::size_t kNestedScanGrain = 8192;
constexpr std::size_t kNestedPollStride = 64;

/// True when chunking an n-row bound scan over `pool` pays for itself.
inline bool UseNestedScan(const WorkStealingPool* pool, std::size_t n) {
  return pool != nullptr && pool->size() > 1 && n >= 2 * kNestedScanGrain;
}

/// The memoized attribute rows of a SearchDistanceCache for one subset X,
/// resolved once per bound call so the O(n) row scans below touch flat
/// arrays with no per-row subset iteration or lazy-fill checks.
struct SubsetRows {
  std::array<const double*, AttributeSet::kCapacity> rows;
  std::size_t count = 0;
};

SubsetRows ResolveSubsetRows(const SearchDistanceCache& dcache,
                             const AttributeSet& x, std::size_t arity) {
  SubsetRows s;
  for (std::size_t a = 0; a < arity; ++a) {
    if (x.contains(a)) s.rows[s.count++] = dcache.attribute_row(a);
  }
  return s;
}

/// Subset distance with early exit from the hoisted rows — the same values
/// accumulated in the same ascending-attribute order with the same per-add
/// Exceeds check as SearchDistanceCache::DistanceOnWithin, so verdicts and
/// accepted totals are bit-identical.
inline double SubsetDistanceWithin(const SubsetRows& s, LpNorm norm,
                                   std::size_t row, double threshold) {
  LpAccumulator acc(norm);
  for (std::size_t j = 0; j < s.count; ++j) {
    acc.Add(s.rows[j][row]);
    if (acc.Exceeds(threshold)) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return acc.Total();
}

}  // namespace

BoundsEngine::BoundsEngine(const Relation& relation,
                           const DistanceEvaluator& evaluator,
                           const NeighborIndex& index,
                           const KthNeighborCache& cache,
                           DistanceConstraint constraint)
    : relation_(relation),
      evaluator_(evaluator),
      index_(index),
      cache_(cache),
      constraint_(constraint) {}

double BoundsEngine::GlobalLowerBound(const Tuple& outlier,
                                      BudgetGauge* gauge) const {
  // η-th nearest inlier. The outlier itself is not in r, but it still counts
  // toward its own neighbor total (Formula 4), so only η−1 inliers are
  // needed besides the tuple itself.
  std::size_t needed = constraint_.eta > 0 ? constraint_.eta - 1 : 0;
  if (needed == 0) return 0;
  if (gauge != nullptr) {
    ++gauge->stats().index_queries;
    ++gauge->stats().index_knn_queries;
  }
  PhaseScope phase(TraceOf(gauge), TracePhase::kIndexQuery);
  std::vector<Neighbor> nn = index_.KNearest(outlier, needed);
  if (nn.size() < needed) return 0;
  double bound = nn.back().distance - constraint_.epsilon;
  return bound > 0 ? bound : 0;
}

double BoundsEngine::LowerBoundForX(const Tuple& outlier,
                                    const AttributeSet& x, BudgetGauge* gauge,
                                    const SearchDistanceCache* dcache,
                                    WorkStealingPool* nested) const {
  // Candidates are inliers with Δ(t_o[X], t[X]) ≤ ε (the shaded band in
  // Figure 3); among them we need the η-th nearest in full-space distance
  // (η−1 excluding the tuple's self-count).
  std::size_t needed = constraint_.eta > 0 ? constraint_.eta - 1 : 0;
  if (needed == 0) return 0;
  if (gauge != nullptr) {
    ++gauge->stats().index_queries;
    ++gauge->stats().prop3_bounds;
  }
  PhaseScope phase(TraceOf(gauge), TracePhase::kBoundsScan);

  // Collect full-space distances of qualifying inliers; track only the
  // smallest `needed` of them with a max-heap. Band checks pass ε as the
  // early-exit threshold so they stop at the first overshooting attribute
  // (the verdict is unchanged: non-negative Lp aggregates are monotone).
  std::vector<double> heap;
  heap.reserve(needed);
  SubsetRows band;
  if (dcache != nullptr) {
    // Resolved on the calling thread: AttributeRow's lazy fill mutates
    // under const and must never run inside a chunk.
    band = ResolveSubsetRows(*dcache, x, evaluator_.arity());
  }
  const LpNorm norm = evaluator_.norm();
  const std::size_t n = relation_.size();

  if (UseNestedScan(nested, n)) {
    // Chunked scan. Each chunk keeps its own `needed`-smallest heap; the
    // merge takes the needed-th smallest of the concatenation, which equals
    // the sequential heap front: a chunk only ever discards distances that
    // already have `needed` smaller ones within the chunk, so the global
    // k-smallest multiset survives intact. The "< needed qualifiers → +inf"
    // verdict survives too — kept sizes sum below `needed` iff the total
    // qualifier count is below `needed`.
    const std::size_t chunks =
        (n + kNestedScanGrain - 1) / kNestedScanGrain;
    std::vector<std::vector<double>> chunk_heaps(chunks);
    std::atomic<bool> aborted{false};
    const ChunkSpanRecorder chunk_spans(TraceOf(gauge),
                                        TracePhase::kBoundsScan);
    nested->ParallelFor(
        0, n, kNestedScanGrain,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          const std::uint64_t chunk_start =
              chunk_spans.enabled() ? TraceNowNs() : 0;
          std::vector<double>& local = chunk_heaps[chunk];
          local.reserve(needed);
          std::size_t polls = 0;
          for (std::size_t row = begin; row < end; ++row) {
            if (gauge != nullptr && (++polls % kNestedPollStride) == 0) {
              if (aborted.load(std::memory_order_relaxed)) return;
              if (gauge->HardStopRequested()) {
                aborted.store(true, std::memory_order_relaxed);
                return;
              }
            }
            double dx =
                dcache != nullptr
                    ? SubsetDistanceWithin(band, norm, row, constraint_.epsilon)
                    : evaluator_.DistanceOnWithin(x, outlier, relation_[row],
                                                  constraint_.epsilon);
            if (dx > constraint_.epsilon) continue;
            double d = dcache != nullptr
                           ? dcache->FullDistance(row)
                           : evaluator_.Distance(outlier, relation_[row]);
            if (local.size() < needed) {
              local.push_back(d);
              std::push_heap(local.begin(), local.end());
            } else if (d < local.front()) {
              std::pop_heap(local.begin(), local.end());
              local.back() = d;
              std::push_heap(local.begin(), local.end());
            }
          }
          if (chunk_spans.enabled()) {
            chunk_spans.Record(chunk_start, chunk, end - begin);
          }
        });
    if (aborted.load(std::memory_order_relaxed)) {
      gauge->RecordHardStop();
      NoteAbandonedScan(gauge);
      return 0;  // same safe value as an abandoned sequential scan
    }
    std::vector<double> all;
    all.reserve(chunks * needed);
    for (const std::vector<double>& local : chunk_heaps) {
      all.insert(all.end(), local.begin(), local.end());
    }
    if (all.size() < needed) {
      return std::numeric_limits<double>::infinity();
    }
    std::nth_element(all.begin(),
                     all.begin() + static_cast<std::ptrdiff_t>(needed - 1),
                     all.end());
    double bound = all[needed - 1] - constraint_.epsilon;
    return bound > 0 ? bound : 0;
  }

  for (std::size_t row = 0; row < n; ++row) {
    // An abandoned scan returns the uninformative bound 0: nothing is
    // pruned on its account, and the caller unwinds via gauge->stopped().
    if (gauge != nullptr && !gauge->KeepScanning()) {
      NoteAbandonedScan(gauge);
      return 0;
    }
    double dx = dcache != nullptr
                    ? SubsetDistanceWithin(band, norm, row, constraint_.epsilon)
                    : evaluator_.DistanceOnWithin(x, outlier, relation_[row],
                                                  constraint_.epsilon);
    if (dx > constraint_.epsilon) continue;
    double d = dcache != nullptr ? dcache->FullDistance(row)
                                 : evaluator_.Distance(outlier, relation_[row]);
    if (heap.size() < needed) {
      heap.push_back(d);
      std::push_heap(heap.begin(), heap.end());
    } else if (d < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = d;
      std::push_heap(heap.begin(), heap.end());
    }
  }
  if (heap.size() < needed) {
    // Fewer than η−1 inliers are reachable keeping X fixed: infeasible.
    return std::numeric_limits<double>::infinity();
  }
  double bound = heap.front() - constraint_.epsilon;
  return bound > 0 ? bound : 0;
}

std::optional<BoundsEngine::UpperBound> BoundsEngine::UpperBoundForX(
    const Tuple& outlier, const AttributeSet& x, BudgetGauge* gauge,
    const SearchDistanceCache* dcache, WorkStealingPool* nested) const {
  const std::size_t arity = evaluator_.arity();
  AttributeSet complement = x.ComplementIn(arity);
  if (gauge != nullptr) {
    ++gauge->stats().index_queries;
    ++gauge->stats().prop5_bounds;
  }
  PhaseScope phase(TraceOf(gauge), TracePhase::kBoundsScan);

  // Two donor candidates per X:
  //  (a) the Proposition-5 qualified donor — δ_η(t) ≤ ε − Δ(t_o[X], t[X])
  //      guarantees feasibility of the splice without further checks;
  //  (b) the cheapest splice donor regardless of qualification, validated
  //      by an exact neighbor count. (a)'s sufficient condition is very
  //      conservative when δ_η runs close to ε (chains, sparse clusters,
  //      high dimension), where (b) still finds cheap feasible splices.
  double best_qualified = std::numeric_limits<double>::infinity();
  std::size_t best_qualified_row = static_cast<std::size_t>(-1);
  double best_any = std::numeric_limits<double>::infinity();
  std::size_t best_any_row = static_cast<std::size_t>(-1);
  SubsetRows band, splice_rows;
  if (dcache != nullptr) {
    band = ResolveSubsetRows(*dcache, x, arity);
    splice_rows = ResolveSubsetRows(*dcache, complement, arity);
  }
  const LpNorm norm = evaluator_.norm();
  const std::size_t n = relation_.size();

  if (UseNestedScan(nested, n)) {
    // Chunked donor scan. Each chunk tracks its own (qualified, any) minima
    // with a chunk-local cost cap; accepted splice costs are always exact
    // (partial Lp sums are monotone, so a cost below the cap never trips
    // the early exit), so each chunk's minima equal a sequential scan of
    // its rows. Merging in ascending chunk order with strict < then picks
    // the globally minimal cost at its lowest row — exactly the sequential
    // first-minimum. The splice + feasibility tail below stays sequential.
    struct ChunkBest {
      double qualified = std::numeric_limits<double>::infinity();
      std::size_t qualified_row = static_cast<std::size_t>(-1);
      double any = std::numeric_limits<double>::infinity();
      std::size_t any_row = static_cast<std::size_t>(-1);
    };
    const std::size_t chunks =
        (n + kNestedScanGrain - 1) / kNestedScanGrain;
    std::vector<ChunkBest> bests(chunks);
    std::atomic<bool> aborted{false};
    const ChunkSpanRecorder chunk_spans(TraceOf(gauge),
                                        TracePhase::kBoundsScan);
    nested->ParallelFor(
        0, n, kNestedScanGrain,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          const std::uint64_t chunk_start =
              chunk_spans.enabled() ? TraceNowNs() : 0;
          ChunkBest& best = bests[chunk];
          std::size_t polls = 0;
          for (std::size_t row = begin; row < end; ++row) {
            if (gauge != nullptr && (++polls % kNestedPollStride) == 0) {
              if (aborted.load(std::memory_order_relaxed)) return;
              if (gauge->HardStopRequested()) {
                aborted.store(true, std::memory_order_relaxed);
                return;
              }
            }
            double dx =
                dcache != nullptr
                    ? SubsetDistanceWithin(band, norm, row, constraint_.epsilon)
                    : evaluator_.DistanceOnWithin(x, outlier, relation_[row],
                                                  constraint_.epsilon);
            if (dx > constraint_.epsilon) continue;
            double cost_cap = std::max(best.any, best.qualified);
            double cost =
                dcache != nullptr
                    ? SubsetDistanceWithin(splice_rows, norm, row, cost_cap)
                    : evaluator_.DistanceOnWithin(complement, outlier,
                                                  relation_[row], cost_cap);
            if (cost < best.any) {
              best.any = cost;
              best.any_row = row;
            }
            if (cache_.delta(row) <= constraint_.epsilon - dx &&
                cost < best.qualified) {
              best.qualified = cost;
              best.qualified_row = row;
            }
          }
          if (chunk_spans.enabled()) {
            chunk_spans.Record(chunk_start, chunk, end - begin);
          }
        });
    if (aborted.load(std::memory_order_relaxed)) {
      gauge->RecordHardStop();
      NoteAbandonedScan(gauge);
      return std::nullopt;  // never a bound from a partial donor scan
    }
    for (const ChunkBest& best : bests) {
      if (best.any < best_any) {
        best_any = best.any;
        best_any_row = best.any_row;
      }
      if (best.qualified < best_qualified) {
        best_qualified = best.qualified;
        best_qualified_row = best.qualified_row;
      }
    }
  } else {
    for (std::size_t row = 0; row < n; ++row) {
      // No partial donor scan may produce a bound: abandoning returns "no
      // upper bound" so the incumbent is never replaced by a half-searched
      // splice (anytime-soundness — see DESIGN.md).
      if (gauge != nullptr && !gauge->KeepScanning()) {
        NoteAbandonedScan(gauge);
        return std::nullopt;
      }
      double dx =
          dcache != nullptr
              ? SubsetDistanceWithin(band, norm, row, constraint_.epsilon)
              : evaluator_.DistanceOnWithin(x, outlier, relation_[row],
                                            constraint_.epsilon);
      if (dx > constraint_.epsilon) continue;
      // A splice cost beyond both incumbents can update neither, so the
      // larger incumbent is a sound early-exit threshold (accepted values
      // are exact, rejected ones come back as +infinity and fail both `<`).
      double cost_cap = std::max(best_any, best_qualified);
      double cost = dcache != nullptr
                        ? SubsetDistanceWithin(splice_rows, norm, row, cost_cap)
                        : evaluator_.DistanceOnWithin(complement, outlier,
                                                      relation_[row], cost_cap);
      if (cost < best_any) {
        best_any = cost;
        best_any_row = row;
      }
      if (cache_.delta(row) <= constraint_.epsilon - dx &&
          cost < best_qualified) {
        best_qualified = cost;
        best_qualified_row = row;
      }
    }
  }
  if (best_any_row == static_cast<std::size_t>(-1)) return std::nullopt;

  auto splice = [&](std::size_t row) {
    UpperBound ub;
    ub.donor_row = row;
    ub.adjusted = outlier;
    const Tuple& donor = relation_[row];
    for (std::size_t a = 0; a < arity; ++a) {
      if (!x.contains(a)) ub.adjusted[a] = donor[a];
    }
    // The adjustment cost equals Δ(t_o[R\X], t_2[R\X]) because the X values
    // are untouched; recompute via the evaluator for exactness in any norm.
    ub.cost = evaluator_.Distance(outlier, ub.adjusted);
    return ub;
  };

  // Prefer the strictly cheaper unqualified splice when it verifies.
  if (best_any < best_qualified) {
    UpperBound candidate = splice(best_any_row);
    if (IsFeasible(candidate.adjusted, gauge)) return candidate;
  }
  if (best_qualified_row == static_cast<std::size_t>(-1)) return std::nullopt;
  return splice(best_qualified_row);
}

bool BoundsEngine::IsFeasible(const Tuple& candidate,
                              BudgetGauge* gauge) const {
  // The saved tuple itself counts toward its η total (Formula 4), so η−1
  // inlier matches suffice.
  std::size_t needed = constraint_.eta > 0 ? constraint_.eta - 1 : 0;
  if (needed == 0) return true;
  if (gauge != nullptr) {
    ++gauge->stats().index_queries;
    ++gauge->stats().feasibility_checks;
    ++gauge->stats().index_count_queries;
  }
  PhaseScope phase(TraceOf(gauge), TracePhase::kIndexQuery);
  return index_.CountWithin(candidate, constraint_.epsilon, needed) >= needed;
}

}  // namespace disc
