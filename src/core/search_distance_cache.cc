#include "core/search_distance_cache.h"

#include <limits>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "distance/lp_norm.h"

namespace disc {

namespace {

/// Rows per chunk when the eager full-distance fill runs on a pool. Matches
/// the bound-scan grain: each chunk is tens of microseconds of arithmetic.
constexpr std::size_t kFillGrain = 8192;

}  // namespace

namespace {

/// Records one `pool_chunk` span per chunk of the eager parallel fill,
/// parented under the search's dcache_fill phase span (the same scheme as
/// the chunked bound scans in bounds.cc).
struct FillChunkSpans {
  SearchTrace* trace = nullptr;
  std::uint64_t phase_span = 0;
  std::uint64_t scan_span = 0;

  explicit FillChunkSpans(SearchTrace* search_trace) {
    if (search_trace == nullptr || search_trace->collector == nullptr) return;
    trace = search_trace;
    phase_span = trace->PhaseSpanId(TracePhase::kDcacheFill);
    scan_span = DeriveSpanId(phase_span, TraceSpanKind::kScan,
                             trace->scan_ordinal++);
  }

  bool enabled() const { return trace != nullptr; }

  void Record(std::uint64_t chunk_start_ns, std::size_t chunk,
              std::size_t rows) const {
    TraceSpan span;
    span.name = "pool_chunk";
    span.start_ns = chunk_start_ns;
    span.duration_ns = TraceNowNs() - chunk_start_ns;
    span.trace_id = trace->trace_id;
    span.span_id = DeriveSpanId(scan_span, TraceSpanKind::kChunk, chunk);
    span.parent_id = phase_span;
    span.Int("chunk", chunk).Int("rows", rows);
    trace->collector->Record(
        SpanSlotForWorker(WorkStealingPool::CurrentWorkerIndex(),
                          trace->collector->slots()),
        std::move(span));
  }
};

}  // namespace

SearchDistanceCache::SearchDistanceCache(const Relation& relation,
                                         const DistanceEvaluator& evaluator,
                                         const Tuple& outlier,
                                         const ColumnarView* view,
                                         SearchStats* stats,
                                         WorkStealingPool* pool,
                                         SearchTrace* trace)
    : relation_(relation),
      evaluator_(evaluator),
      outlier_(outlier),
      stats_(stats),
      trace_(trace),
      arity_(evaluator.arity()),
      attr_rows_(evaluator.arity()) {
  if (view != nullptr) kernel_.emplace(*view, outlier);
  const std::size_t n = relation.size();
  full_.resize(n);
  const bool parallel =
      pool != nullptr && pool->size() > 1 && n >= 2 * kFillGrain;
  PhaseScope phase(trace_, TracePhase::kDcacheFill);
  const FillChunkSpans chunk_spans(parallel ? trace_ : nullptr);
  if (kernel_.has_value()) {
    // Batch fill: vectorized across rows when the view's SIMD tier allows,
    // bit-identical to per-row Distance() either way. Each entry is an
    // independent write; chunked or sequential fills produce the identical
    // vector (the grain is block-aligned, ColumnarView::kLanePad).
    if (parallel) {
      pool->ParallelFor(
          0, n, kFillGrain,
          [&](std::size_t begin, std::size_t end, std::size_t chunk) {
            const std::uint64_t chunk_start =
                chunk_spans.enabled() ? TraceNowNs() : 0;
            kernel_->FillDistances(full_.data() + begin, begin, end);
            if (chunk_spans.enabled()) {
              chunk_spans.Record(chunk_start, chunk, end - begin);
            }
          });
    } else {
      kernel_->FillDistances(full_.data(), 0, n);
    }
  } else if (parallel) {
    pool->ParallelFor(
        0, n, kFillGrain,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          const std::uint64_t chunk_start =
              chunk_spans.enabled() ? TraceNowNs() : 0;
          for (std::size_t i = begin; i < end; ++i) {
            full_[i] = evaluator_.Distance(outlier_, relation_[i]);
          }
          if (chunk_spans.enabled()) {
            chunk_spans.Record(chunk_start, chunk, end - begin);
          }
        });
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      full_[i] = evaluator_.Distance(outlier_, relation_[i]);
    }
  }
}

const double* SearchDistanceCache::AttributeRow(std::size_t a) const {
  std::vector<double>& row = attr_rows_[a];
  if (row.empty() && !full_.empty()) {
    if (stats_ != nullptr) ++stats_->dcache_misses;
    // Lazy fills run on the owning search thread, usually inside a
    // bounds_scan phase; the scope below pauses it so the fill charges to
    // dcache_fill.
    PhaseScope phase(trace_, TracePhase::kDcacheFill);
    row.resize(full_.size());
    if (kernel_.has_value()) {
      kernel_->FillAttributeDistances(a, row.data());
    } else {
      for (std::size_t i = 0; i < row.size(); ++i) {
        row[i] = evaluator_.AttributeDistance(a, outlier_[a], relation_[i][a]);
      }
    }
  }
  return row.data();
}

double SearchDistanceCache::DistanceOn(const AttributeSet& x,
                                       std::size_t row) const {
  LpAccumulator acc(evaluator_.norm());
  for (std::size_t a = 0; a < arity_; ++a) {
    if (x.contains(a)) acc.Add(AttributeRow(a)[row]);
  }
  return acc.Total();
}

double SearchDistanceCache::DistanceOnWithin(const AttributeSet& x,
                                             std::size_t row,
                                             double threshold) const {
  LpAccumulator acc(evaluator_.norm());
  for (std::size_t a = 0; a < arity_; ++a) {
    if (!x.contains(a)) continue;
    acc.Add(AttributeRow(a)[row]);
    if (acc.Exceeds(threshold)) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return acc.Total();
}

}  // namespace disc
