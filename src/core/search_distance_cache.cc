#include "core/search_distance_cache.h"

#include <limits>

#include "distance/lp_norm.h"

namespace disc {

SearchDistanceCache::SearchDistanceCache(const Relation& relation,
                                         const DistanceEvaluator& evaluator,
                                         const Tuple& outlier,
                                         const ColumnarView* view,
                                         SearchStats* stats)
    : relation_(relation),
      evaluator_(evaluator),
      outlier_(outlier),
      stats_(stats),
      arity_(evaluator.arity()),
      attr_rows_(evaluator.arity()) {
  if (view != nullptr) kernel_.emplace(*view, outlier);
  const std::size_t n = relation.size();
  full_.resize(n);
  if (kernel_.has_value()) {
    for (std::size_t i = 0; i < n; ++i) full_[i] = kernel_->Distance(i);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      full_[i] = evaluator_.Distance(outlier_, relation_[i]);
    }
  }
}

const double* SearchDistanceCache::AttributeRow(std::size_t a) const {
  std::vector<double>& row = attr_rows_[a];
  if (row.empty() && !full_.empty()) {
    if (stats_ != nullptr) ++stats_->dcache_misses;
    row.resize(full_.size());
    if (kernel_.has_value()) {
      kernel_->FillAttributeDistances(a, row.data());
    } else {
      for (std::size_t i = 0; i < row.size(); ++i) {
        row[i] = evaluator_.AttributeDistance(a, outlier_[a], relation_[i][a]);
      }
    }
  }
  return row.data();
}

double SearchDistanceCache::DistanceOn(const AttributeSet& x,
                                       std::size_t row) const {
  LpAccumulator acc(evaluator_.norm());
  for (std::size_t a = 0; a < arity_; ++a) {
    if (x.contains(a)) acc.Add(AttributeRow(a)[row]);
  }
  return acc.Total();
}

double SearchDistanceCache::DistanceOnWithin(const AttributeSet& x,
                                             std::size_t row,
                                             double threshold) const {
  LpAccumulator acc(evaluator_.norm());
  for (std::size_t a = 0; a < arity_; ++a) {
    if (!x.contains(a)) continue;
    acc.Add(AttributeRow(a)[row]);
    if (acc.Exceeds(threshold)) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return acc.Total();
}

}  // namespace disc
