#ifndef DISC_CORE_SEARCH_BUDGET_H_
#define DISC_CORE_SEARCH_BUDGET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/cancellation.h"
#include "common/deadline.h"
#include "common/status.h"
#include "core/search_stats.h"

namespace disc {

/// Why a per-outlier save ended. The minimum-cost adjustment problem is
/// NP-hard (Theorem 1) and the search is *anytime*: a feasible incumbent
/// (the Proposition-5 splice) exists almost immediately and only improves,
/// so a truncated search still returns a valid — just possibly costlier —
/// adjustment. This enum makes every truncation visible; a budget-capped
/// search is never again indistinguishable from a completed one.
enum class SaveTermination {
  /// The search exhausted its space; the result is its final answer
  /// (feasible adjustment, or a κ-blocked natural outlier).
  kCompleted = 0,
  /// Stopped by SearchBudget::max_visited_sets; incumbent returned.
  kVisitBudget,
  /// Stopped by SearchBudget::max_index_queries; incumbent returned.
  kQueryBudget,
  /// Stopped by an expired Deadline; incumbent returned.
  kDeadline,
  /// Stopped by cooperative cancellation; incumbent returned.
  kCancelled,
  /// The search exhausted its space and proved no feasible adjustment
  /// exists under the constraint.
  kInfeasible,
};

/// Lower-case identifier for logs/JSON ("completed", "visit_budget", ...).
const char* SaveTerminationName(SaveTermination t);

/// Maps a termination to a Status: OK for kCompleted/kInfeasible (the search
/// gave its definitive answer), DeadlineExceeded / Cancelled /
/// ResourceExhausted for the degraded exits.
Status SaveTerminationStatus(SaveTermination t);

/// Cooperative execution budget for one save. All limits are optional; the
/// default SearchBudget is unlimited. Checked at node-expansion granularity
/// (one branch-and-bound node / one exact-enumeration candidate), plus a
/// strided poll inside the O(n) bound scans, so a search stops within one
/// node of the limit being hit — and on stop the best incumbent found so
/// far is returned instead of an error (graceful degradation).
struct SearchBudget {
  /// Wall-clock limit (infinite by default).
  Deadline deadline;
  /// Cooperative cancellation (never cancelled by default).
  CancellationToken cancellation;
  /// Cap on distinct attribute sets X visited by the branch-and-bound
  /// search (0 = unlimited). Exact enumeration ignores it (its own knob is
  /// ExactOptions::max_candidates).
  std::size_t max_visited_sets = 0;
  /// Cap on logical neighbor-index queries — kNN/range/feasibility calls
  /// and full-relation bound scans (0 = unlimited).
  std::size_t max_index_queries = 0;
  /// Test-only fault-injection hook: invoked with the 0-based index of
  /// every node expansion *before* the budget checks for that node, so a
  /// test can cancel/expire at an exact search point and prove the exit
  /// path sound. Must be cheap; keep it empty in production.
  std::function<void(std::size_t)> on_node_expanded;

  /// True iff no limit, token, or hook is set.
  bool IsUnlimited() const {
    return deadline.is_infinite() && !cancellation.can_be_cancelled() &&
           max_visited_sets == 0 && max_index_queries == 0 &&
           !on_node_expanded;
  }
};

/// Whole-batch budget for SaveAll / SaveOutliers. The batch deadline is
/// divided fairly across the not-yet-started outliers (each task computes
/// its slice when it starts, scaled by the worker parallelism); queued work
/// past the deadline or after cancellation is drained-and-skipped — tasks
/// still pop off the thread-pool queue and complete instantly with a
/// skipped record, so shutdown is never blocked.
struct BatchBudget {
  /// Wall clock for the whole batch (infinite by default).
  Deadline deadline;
  /// Per-outlier wall-clock cap, measured from that outlier's search start
  /// (zero = none). Applies on top of the fair batch slice.
  std::chrono::milliseconds per_outlier_limit{0};
  /// Cooperative cancellation of the whole batch.
  CancellationToken cancellation;

  /// True iff no limit or token is set.
  bool IsUnlimited() const {
    return deadline.is_infinite() && per_outlier_limit.count() == 0 &&
           !cancellation.can_be_cancelled();
  }
};

/// Per-search enforcement state for one SearchBudget: counts node
/// expansions and index queries, polls deadline/cancellation, and records
/// the first stop reason. One gauge per save; never shared across threads.
///
/// The two-token design (budget token + batch token) lets a single search
/// observe both its caller's cancellation and the batch-wide one without
/// allocating a combined source.
class BudgetGauge {
 public:
  /// A gauge over `budget` (may be null → unlimited) with an optional
  /// additional deadline and cancellation token from the batch layer. The
  /// effective deadline is the earlier of the two.
  explicit BudgetGauge(const SearchBudget* budget,
                       Deadline extra_deadline = Deadline::Infinite(),
                       CancellationToken extra_cancellation = {});

  /// Called once per node expansion with the running visited-set count.
  /// Fires the fault-injection hook, then checks cancellation → deadline →
  /// visit budget → query budget (first hit wins). Returns false when the
  /// search must stop; the caller unwinds and returns its incumbent.
  bool OnNodeExpanded(std::size_t visited_sets);

  /// Strided cancellation/deadline poll for long row scans inside the
  /// bound computations. Returns false when the scan must abandon; the
  /// caller then returns a *safe* value (uninformative lower bound, no
  /// upper bound) and the search unwinds via stopped().
  bool KeepScanning();

  /// Post-search refinement check: refinement may proceed unless a hard
  /// stop (deadline/cancellation) happened or happens now. Soft budget
  /// stops (visited sets, queries) do not block refinement — it is
  /// polynomial and strictly cost-reducing.
  bool ContinueRefinement();

  /// Thread-safe hard-stop probe for *parallel* scan chunks: reads only the
  /// cancellation atomics and the steady clock, touching none of the gauge's
  /// mutable state. Chunk workers poll this; the owning thread then calls
  /// RecordHardStop() after the chunks join to fold the verdict into the
  /// single-threaded stop state.
  bool HardStopRequested() const;

  /// Records a hard stop observed by HardStopRequested() on the owner
  /// thread. Cancellation wins over deadline (same precedence as
  /// KeepScanning). No-op if already stopped.
  void RecordHardStop();

  /// The per-search work counters this gauge owns. The bound scans and
  /// feasibility checks record one logical index query each (the unit
  /// metered by SearchBudget::max_index_queries) plus their typed counts;
  /// wrap an index in StatsNeighborIndex over the same struct to meter raw
  /// index calls with the same budget. Single-threaded by design: one gauge
  /// (and thus one stats struct) per search.
  SearchStats& stats() { return stats_; }
  const SearchStats& stats() const { return stats_; }
  std::size_t query_count() const {
    return static_cast<std::size_t>(stats_.index_queries);
  }

  /// Node expansions so far.
  std::size_t nodes_expanded() const { return nodes_; }

  /// True once any limit tripped; search loops must unwind promptly.
  bool stopped() const { return stopped_; }
  /// The first stop reason (kCompleted while still running).
  SaveTermination reason() const { return reason_; }

 private:
  bool Stop(SaveTermination why);

  const SearchBudget* budget_;  ///< may be null (unlimited)
  Deadline deadline_;           ///< effective: min(budget, batch slice)
  CancellationToken extra_cancellation_;
  SearchStats stats_;
  std::size_t nodes_ = 0;
  std::size_t scan_polls_ = 0;
  bool stopped_ = false;
  SaveTermination reason_ = SaveTermination::kCompleted;
};

}  // namespace disc

#endif  // DISC_CORE_SEARCH_BUDGET_H_
