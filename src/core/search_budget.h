#ifndef DISC_CORE_SEARCH_BUDGET_H_
#define DISC_CORE_SEARCH_BUDGET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/cancellation.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/status.h"
#include "core/search_stats.h"

namespace disc {

struct SearchExplain;
struct SearchTrace;

/// Why a per-outlier save ended. The minimum-cost adjustment problem is
/// NP-hard (Theorem 1) and the search is *anytime*: a feasible incumbent
/// (the Proposition-5 splice) exists almost immediately and only improves,
/// so a truncated search still returns a valid — just possibly costlier —
/// adjustment. This enum makes every truncation visible; a budget-capped
/// search is never again indistinguishable from a completed one.
enum class SaveTermination {
  /// The search exhausted its space; the result is its final answer
  /// (feasible adjustment, or a κ-blocked natural outlier).
  kCompleted = 0,
  /// Stopped by SearchBudget::max_visited_sets; incumbent returned.
  kVisitBudget,
  /// Stopped by SearchBudget::max_index_queries; incumbent returned.
  kQueryBudget,
  /// Stopped by an expired Deadline; incumbent returned.
  kDeadline,
  /// Stopped by cooperative cancellation; incumbent returned.
  kCancelled,
  /// The search exhausted its space and proved no feasible adjustment
  /// exists under the constraint.
  kInfeasible,
  /// Stopped by an injected or transient fault (FaultInjector error /
  /// allocation-failure kinds at a search site); incumbent returned.
  /// Transient: eligible for RetryPolicy re-runs inside SaveAll.
  kFault,
};

/// Lower-case identifier for logs/JSON ("completed", "visit_budget", ...).
const char* SaveTerminationName(SaveTermination t);

/// Maps a termination to a Status: OK for kCompleted/kInfeasible (the search
/// gave its definitive answer), DeadlineExceeded / Cancelled /
/// ResourceExhausted for the degraded exits.
Status SaveTerminationStatus(SaveTermination t);

/// Cooperative execution budget for one save. All limits are optional; the
/// default SearchBudget is unlimited. Checked at node-expansion granularity
/// (one branch-and-bound node / one exact-enumeration candidate), plus a
/// strided poll inside the O(n) bound scans, so a search stops within one
/// node of the limit being hit — and on stop the best incumbent found so
/// far is returned instead of an error (graceful degradation).
struct SearchBudget {
  /// Wall-clock limit (infinite by default).
  Deadline deadline;
  /// Cooperative cancellation (never cancelled by default).
  CancellationToken cancellation;
  /// Cap on distinct attribute sets X visited by the branch-and-bound
  /// search (0 = unlimited). Exact enumeration ignores it (its own knob is
  /// ExactOptions::max_candidates).
  std::size_t max_visited_sets = 0;
  /// Cap on logical neighbor-index queries — kNN/range/feasibility calls
  /// and full-relation bound scans (0 = unlimited).
  std::size_t max_index_queries = 0;

  /// True iff no limit or token is set. (Fault injection at the search
  /// sites — `search.node`, `bounds.scan` — is orthogonal: it is armed via
  /// AttachGlobalFaultInjector, not per budget, and a gauge over an
  /// unlimited budget still honors it.)
  bool IsUnlimited() const {
    return deadline.is_infinite() && !cancellation.can_be_cancelled() &&
           max_visited_sets == 0 && max_index_queries == 0;
  }
};

/// Whole-batch budget for SaveAll / SaveOutliers. The batch deadline is
/// divided fairly across the not-yet-started outliers (each task computes
/// its slice when it starts, scaled by the worker parallelism); queued work
/// past the deadline or after cancellation is drained-and-skipped — tasks
/// still pop off the thread-pool queue and complete instantly with a
/// skipped record, so shutdown is never blocked.
struct BatchBudget {
  /// Wall clock for the whole batch (infinite by default).
  Deadline deadline;
  /// Per-outlier wall-clock cap, measured from that outlier's search start
  /// (zero = none). Applies on top of the fair batch slice.
  std::chrono::milliseconds per_outlier_limit{0};
  /// Cooperative cancellation of the whole batch.
  CancellationToken cancellation;

  /// True iff no limit or token is set.
  bool IsUnlimited() const {
    return deadline.is_infinite() && per_outlier_limit.count() == 0 &&
           !cancellation.can_be_cancelled();
  }
};

/// Retry policy for transient per-outlier failures inside SaveAll
/// (DESIGN.md §11). A search whose termination is transient (see
/// IsTransient) is re-run up to `max_attempts` times total, with
/// exponential backoff between attempts. The retry budget is carved from
/// the batch deadline slack: SaveAll only sleeps-and-retries while the
/// batch clock comfortably covers the backoff, so retries can never push a
/// batch past its deadline. The final attempt's result is reported, with
/// SearchStats::retries = attempts − 1.
struct RetryPolicy {
  /// Total attempts per outlier (1 = no retries, the default).
  std::size_t max_attempts = 1;
  /// Backoff before the first retry.
  std::chrono::milliseconds initial_backoff{10};
  /// Multiplier applied per subsequent retry.
  double backoff_multiplier = 2.0;
  /// Backoff ceiling.
  std::chrono::milliseconds max_backoff{1000};

  /// True iff retries are enabled.
  bool enabled() const { return max_attempts > 1; }

  /// Backoff before retry `retry_index` (0-based): initial × multiplier^i,
  /// clamped to max_backoff.
  std::chrono::milliseconds BackoffFor(std::size_t retry_index) const;

  /// True for terminations worth re-running: injected/transient faults and
  /// the non-time resource budgets (the kResourceExhausted family). Hard
  /// stops (deadline, cancellation) and definitive answers are final.
  static bool IsTransient(SaveTermination t);
};

/// Per-search enforcement state for one SearchBudget: counts node
/// expansions and index queries, polls deadline/cancellation, and records
/// the first stop reason. One gauge per save; never shared across threads.
///
/// The two-token design (budget token + batch token) lets a single search
/// observe both its caller's cancellation and the batch-wide one without
/// allocating a combined source.
class BudgetGauge {
 public:
  /// A gauge over `budget` (may be null → unlimited) with an optional
  /// additional deadline and cancellation token from the batch layer. The
  /// effective deadline is the earlier of the two.
  explicit BudgetGauge(const SearchBudget* budget,
                       Deadline extra_deadline = Deadline::Infinite(),
                       CancellationToken extra_cancellation = {});

  /// Called once per node expansion with the running visited-set count.
  /// Hits the `search.node` fault site (when an injector is attached), then
  /// checks fault → cancellation → deadline → visit budget → query budget
  /// (first hit wins). Returns false when the search must stop; the caller
  /// unwinds and returns its incumbent.
  bool OnNodeExpanded(std::size_t visited_sets);

  /// Strided cancellation/deadline poll for long row scans inside the
  /// bound computations. Returns false when the scan must abandon; the
  /// caller then returns a *safe* value (uninformative lower bound, no
  /// upper bound) and the search unwinds via stopped().
  bool KeepScanning();

  /// Post-search refinement check: refinement may proceed unless a hard
  /// stop (deadline/cancellation) happened or happens now. Soft budget
  /// stops (visited sets, queries) do not block refinement — it is
  /// polynomial and strictly cost-reducing.
  bool ContinueRefinement();

  /// Thread-safe hard-stop probe for *parallel* scan chunks: reads only the
  /// cancellation atomics and the steady clock, touching none of the gauge's
  /// mutable state. Chunk workers poll this; the owning thread then calls
  /// RecordHardStop() after the chunks join to fold the verdict into the
  /// single-threaded stop state.
  bool HardStopRequested() const;

  /// Records a hard stop observed by HardStopRequested() on the owner
  /// thread. Cancellation wins over deadline (same precedence as
  /// KeepScanning). No-op if already stopped.
  void RecordHardStop();

  /// The per-search work counters this gauge owns. The bound scans and
  /// feasibility checks record one logical index query each (the unit
  /// metered by SearchBudget::max_index_queries) plus their typed counts;
  /// wrap an index in StatsNeighborIndex over the same struct to meter raw
  /// index calls with the same budget. Single-threaded by design: one gauge
  /// (and thus one stats struct) per search.
  SearchStats& stats() { return stats_; }
  const SearchStats& stats() const { return stats_; }
  std::size_t query_count() const {
    return static_cast<std::size_t>(stats_.index_queries);
  }

  /// Node expansions so far.
  std::size_t nodes_expanded() const { return nodes_; }

  /// Per-search trace context (common/trace.h), riding on the gauge because
  /// the gauge already flows DiscSaver → BoundsEngine → SearchDistanceCache
  /// → index queries — exactly the propagation path the spans need. Null
  /// (the default) = untraced; owned by the caller, like the budget.
  SearchTrace* trace() const { return trace_; }
  void set_trace(SearchTrace* trace) { trace_ = trace; }

  /// Per-search decision-capture context (obs/explain.h), riding on the
  /// gauge for the same reason as the trace: the gauge already reaches
  /// every decision site. Null (the default) = explain detached.
  SearchExplain* explain() const { return explain_; }
  void set_explain(SearchExplain* explain) { explain_ = explain; }

  /// True once any limit tripped; search loops must unwind promptly.
  bool stopped() const { return stopped_; }
  /// The first stop reason (kCompleted while still running).
  SaveTermination reason() const { return reason_; }

 private:
  bool Stop(SaveTermination why);

  const SearchBudget* budget_;  ///< may be null (unlimited)
  Deadline deadline_;           ///< effective: min(budget, batch slice)
  CancellationToken extra_cancellation_;
  /// Fault sites resolved once at construction (null when no injector is
  /// attached): `search.node` hit per node expansion, `bounds.scan` hit per
  /// strided scan poll.
  FaultInjector::Site* fault_node_ = nullptr;
  FaultInjector::Site* fault_scan_ = nullptr;
  SearchTrace* trace_ = nullptr;
  SearchExplain* explain_ = nullptr;
  SearchStats stats_;
  std::size_t nodes_ = 0;
  std::size_t scan_polls_ = 0;
  bool stopped_ = false;
  SaveTermination reason_ = SaveTermination::kCompleted;
};

}  // namespace disc

#endif  // DISC_CORE_SEARCH_BUDGET_H_
