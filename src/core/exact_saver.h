#ifndef DISC_CORE_EXACT_SAVER_H_
#define DISC_CORE_EXACT_SAVER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/relation.h"
#include "common/tuple.h"
#include "constraints/distance_constraint.h"
#include "core/disc_saver.h"
#include "distance/evaluator.h"
#include "index/neighbor_index.h"

namespace disc {

/// Knobs for ExactSaver.
struct ExactOptions {
  /// Safety cap on feasibility checks (candidate tuples fully evaluated);
  /// 0 = unlimited. When hit, the best candidate so far is returned and
  /// `exhausted_budget` is set in the result.
  std::size_t max_candidates = 0;
};

/// Outcome of an exact save.
struct ExactResult {
  bool feasible = false;
  Tuple adjusted;
  double cost = 0;
  AttributeSet adjusted_attributes;
  /// Number of candidate tuples whose feasibility was checked.
  std::size_t candidates_checked = 0;
  /// True when the candidate cap stopped the search early (result may then
  /// be suboptimal).
  bool exhausted_budget = false;
};

/// The straightforward exact algorithm of §2.3: enumerate, per attribute,
/// every value occurring in r (plus the outlier's own value), test each
/// combined tuple for feasibility, and return the feasible combination with
/// minimum adjustment cost. O(d^m · n) — tractable only for small m / d,
/// which is exactly the trade-off Figures 6 and 7 chart.
///
/// Partial-cost pruning: a prefix whose accumulated cost already exceeds the
/// incumbent is abandoned, which keeps small instances fast without
/// affecting exactness.
class ExactSaver {
 public:
  /// `inliers` is the outlier-free set r. References must outlive the saver.
  ExactSaver(const Relation& inliers, const DistanceEvaluator& evaluator,
             DistanceConstraint constraint);

  /// Finds the minimum-cost feasible adjustment of `outlier` over the
  /// cross-product of attribute domains.
  ExactResult Save(const Tuple& outlier, const ExactOptions& options = {}) const;

 private:
  struct EnumState;
  void Enumerate(const Tuple& outlier, std::size_t attr, Tuple* candidate,
                 double partial_cost_sq, const ExactOptions& options,
                 EnumState* state) const;
  bool IsFeasible(const Tuple& candidate) const;

  const Relation& inliers_;
  const DistanceEvaluator& evaluator_;
  DistanceConstraint constraint_;
  std::unique_ptr<NeighborIndex> index_;
  std::vector<std::vector<Value>> domains_;
};

}  // namespace disc

#endif  // DISC_CORE_EXACT_SAVER_H_
