#ifndef DISC_CORE_EXACT_SAVER_H_
#define DISC_CORE_EXACT_SAVER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/cancellation.h"
#include "common/deadline.h"
#include "common/relation.h"
#include "common/tuple.h"
#include "constraints/distance_constraint.h"
#include "core/disc_saver.h"
#include "core/search_budget.h"
#include "distance/evaluator.h"
#include "index/neighbor_index.h"

namespace disc {

/// Knobs for ExactSaver.
struct ExactOptions {
  /// Safety cap on feasibility checks (candidate tuples fully evaluated);
  /// 0 = unlimited. When hit, the best candidate so far is returned and the
  /// result's termination reads kVisitBudget.
  std::size_t max_candidates = 0;
  /// Execution budget. The exact enumerator checks it once per fully
  /// evaluated candidate (the unit `max_candidates` also counts, so
  /// budget.max_visited_sets acts as a second candidate cap); deadline and
  /// cancellation additionally interrupt long enumerations between leaves.
  /// On any limit the best candidate so far is returned with the
  /// termination recording why — the result may then be suboptimal, but it
  /// is still a fully verified feasible adjustment (or the untouched input).
  SearchBudget budget;
  /// Optional trace context. When set, feasibility-check index queries are
  /// charged to the index_query wall phase (the exact enumerator has no
  /// bound scans, so that is its only phased work). Not owned.
  SearchTrace* trace = nullptr;
  /// Optional decision-capture context (obs/explain.h). The exact
  /// enumerator has no bounds, so it records only incumbent_update events
  /// (x_bits = the candidate's *changed*-attribute mask, ub = its cost) and
  /// a prune_budget event when the budget layer stops it. Not owned.
  SearchExplain* explain = nullptr;
};

/// Outcome of an exact save.
struct ExactResult {
  bool feasible = false;
  /// How the enumeration ended. kCompleted means the full cross-product was
  /// covered and `adjusted` is optimal; kInfeasible means it was covered and
  /// no feasible adjustment exists; any other value means truncation
  /// (candidate cap, deadline, cancellation) and `adjusted` is the best
  /// fully verified candidate found so far, or the unmodified input.
  SaveTermination termination = SaveTermination::kCompleted;
  Tuple adjusted;
  double cost = 0;
  AttributeSet adjusted_attributes;
  /// Number of candidate tuples whose feasibility was checked.
  std::size_t candidates_checked = 0;
  /// Logical neighbor-index queries spent on feasibility checks.
  std::size_t index_queries = 0;
  /// Full per-search work counters (nodes_expanded counts fully assembled
  /// candidates here; the legacy mirrors above stay equal to their stats
  /// fields).
  SearchStats stats;
};

/// The straightforward exact algorithm of §2.3: enumerate, per attribute,
/// every value occurring in r (plus the outlier's own value), test each
/// combined tuple for feasibility, and return the feasible combination with
/// minimum adjustment cost. O(d^m · n) — tractable only for small m / d,
/// which is exactly the trade-off Figures 6 and 7 chart.
///
/// Partial-cost pruning: a prefix whose accumulated cost already exceeds the
/// incumbent is abandoned, which keeps small instances fast without
/// affecting exactness.
class ExactSaver {
 public:
  /// `inliers` is the outlier-free set r. References must outlive the saver.
  ExactSaver(const Relation& inliers, const DistanceEvaluator& evaluator,
             DistanceConstraint constraint);

  /// Finds the minimum-cost feasible adjustment of `outlier` over the
  /// cross-product of attribute domains. `extra_deadline` and
  /// `extra_cancellation` are intersected with options.budget — batch
  /// drivers use them to impose per-task slices without mutating the shared
  /// options (see DiscSaver::SaveAll for the slicing policy).
  ExactResult Save(const Tuple& outlier, const ExactOptions& options = {},
                   Deadline extra_deadline = Deadline::Infinite(),
                   const CancellationToken& extra_cancellation =
                       CancellationToken()) const;

 private:
  struct EnumState;
  void Enumerate(const Tuple& outlier, std::size_t attr, Tuple* candidate,
                 double partial_cost_sq, const ExactOptions& options,
                 EnumState* state) const;
  bool IsFeasible(const Tuple& candidate, BudgetGauge* gauge) const;

  const Relation& inliers_;
  const DistanceEvaluator& evaluator_;
  DistanceConstraint constraint_;
  std::unique_ptr<NeighborIndex> index_;
  std::vector<std::vector<Value>> domains_;
};

}  // namespace disc

#endif  // DISC_CORE_EXACT_SAVER_H_
