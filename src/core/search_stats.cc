#include "core/search_stats.h"

#include <algorithm>

#include "common/json_writer.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace disc {

namespace {

/// One row per counter keeps the merge/compare/export paths in lockstep: a
/// field added here is merged, compared, exported and flushed everywhere.
struct FieldSpec {
  const char* name;
  std::uint64_t SearchStats::* member;
};

constexpr FieldSpec kWorkFields[] = {
    {"nodes_expanded", &SearchStats::nodes_expanded},
    {"visited_sets", &SearchStats::visited_sets},
    {"lb_prunes", &SearchStats::lb_prunes},
    {"prop3_bounds", &SearchStats::prop3_bounds},
    {"prop5_bounds", &SearchStats::prop5_bounds},
    {"feasibility_checks", &SearchStats::feasibility_checks},
    {"dcache_hits", &SearchStats::dcache_hits},
    {"dcache_misses", &SearchStats::dcache_misses},
    {"index_range_queries", &SearchStats::index_range_queries},
    {"index_count_queries", &SearchStats::index_count_queries},
    {"index_knn_queries", &SearchStats::index_knn_queries},
    {"index_queries", &SearchStats::index_queries},
    {"revert_refines", &SearchStats::revert_refines},
    {"retries", &SearchStats::retries},
};

}  // namespace

void SearchStats::MergeFrom(const SearchStats& other) {
  for (const FieldSpec& field : kWorkFields) {
    this->*field.member += other.*field.member;
  }
  wall_nanos += other.wall_nanos;
  if (other.start_ns != 0 &&
      (start_ns == 0 || other.start_ns < start_ns)) {
    start_ns = other.start_ns;
  }
}

bool SearchStats::SameWork(const SearchStats& other) const {
  for (const FieldSpec& field : kWorkFields) {
    if (this->*field.member != other.*field.member) return false;
  }
  return true;
}

void SearchStats::AppendJson(JsonWriter* json) const {
  for (const FieldSpec& field : kWorkFields) {
    json->Key(field.name).Uint(this->*field.member);
  }
  json->Key("wall_nanos").Uint(wall_nanos);
}

void SearchStats::AttachTo(TraceSpan* span) const {
  for (const FieldSpec& field : kWorkFields) {
    span->Int(field.name, this->*field.member);
  }
}

void SearchStats::FlushTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  for (const FieldSpec& field : kWorkFields) {
    const std::uint64_t value = this->*field.member;
    if (value == 0) continue;
    Counter* counter = registry->GetCounter(
        std::string("disc_save_") + field.name + "_total");
    if (counter != nullptr) counter->Add(value);
  }
}

}  // namespace disc
