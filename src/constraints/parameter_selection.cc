#include "constraints/parameter_selection.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "constraints/poisson.h"
#include "index/index_factory.h"

namespace disc {

namespace {

std::vector<std::size_t> SampleRows(std::size_t n, double rate, Rng* rng) {
  if (rate >= 1.0 || n == 0) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    return all;
  }
  auto k = static_cast<std::size_t>(std::ceil(rate * static_cast<double>(n)));
  // Estimating the neighbor-count distribution needs a couple of hundred
  // observations regardless of the rate (the paper's smallest workable
  // sample is ~200 tuples, Figure 5 / Table 4).
  k = std::max<std::size_t>(k, std::min<std::size_t>(n, 200));
  std::vector<std::size_t> rows = rng->SampleIndices(n, k);
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<double> DefaultEpsilonCandidates(const Relation& relation,
                                             const DistanceEvaluator& evaluator,
                                             Rng* rng) {
  // Use the mean pairwise distance scale to place a geometric ladder of
  // candidates well below it (clusters are tighter than the global scale).
  double mean = EstimateMeanPairwiseDistance(relation, evaluator, 2000, rng);
  if (mean <= 0) mean = 1.0;
  std::vector<double> candidates;
  for (double f : {0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.45, 0.65}) {
    candidates.push_back(f * mean);
  }
  return candidates;
}

double MeanOf(const std::vector<std::size_t>& counts) {
  if (counts.empty()) return 0;
  double sum = 0;
  for (std::size_t c : counts) sum += static_cast<double>(c);
  return sum / static_cast<double>(counts.size());
}

double OutlierRate(const std::vector<std::size_t>& counts, std::size_t eta) {
  if (counts.empty()) return 0;
  std::size_t below = 0;
  for (std::size_t c : counts) {
    if (c < eta) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(counts.size());
}

}  // namespace

double EstimateMeanPairwiseDistance(const Relation& relation,
                                    const DistanceEvaluator& evaluator,
                                    std::size_t max_pairs, Rng* rng) {
  const std::size_t n = relation.size();
  if (n < 2) return 0;
  double sum = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < max_pairs; ++i) {
    std::size_t a = static_cast<std::size_t>(rng->NextIndex(n));
    std::size_t b = static_cast<std::size_t>(rng->NextIndex(n));
    if (a == b) continue;
    sum += evaluator.Distance(relation[a], relation[b]);
    ++pairs;
  }
  return pairs == 0 ? 0 : sum / static_cast<double>(pairs);
}

ParameterSelection SelectParametersPoisson(
    const Relation& relation, const DistanceEvaluator& evaluator,
    const ParameterSelectionOptions& options) {
  Rng rng(options.seed);
  std::vector<double> candidates = options.epsilon_candidates;
  if (candidates.empty()) {
    candidates = DefaultEpsilonCandidates(relation, evaluator, &rng);
  }
  std::vector<std::size_t> rows =
      SampleRows(relation.size(), options.sample_rate, &rng);

  ParameterSelection best;
  double best_score = std::numeric_limits<double>::infinity();
  for (double epsilon : candidates) {
    std::unique_ptr<NeighborIndex> index =
        MakeNeighborIndex(relation, evaluator, epsilon);
    std::vector<std::size_t> counts =
        NeighborCounts(relation, *index, epsilon, &rows);
    double lambda_eps = MeanOf(counts);
    PoissonModel model(lambda_eps);
    std::size_t eta = model.LargestEtaWithConfidence(options.confidence);
    if (eta == 0) continue;
    double rate = OutlierRate(counts, eta);
    // Prefer the candidate whose outlier rate is nearest the target; a rate
    // of ~0 means ε is too large to catch violations, a huge rate means
    // over-flagging (paper Fig. 5 discussion).
    double score = std::fabs(rate - options.target_outlier_rate);
    if (score < best_score) {
      best_score = score;
      best.constraint = {epsilon, eta};
      best.lambda_epsilon = lambda_eps;
      best.confidence = model.ProbAtLeast(eta);
    }
  }
  if (best_score == std::numeric_limits<double>::infinity() &&
      !candidates.empty()) {
    // Degenerate data (e.g. all identical): fall back to the largest ε with
    // η = 1 so that nothing is flagged.
    best.constraint = {candidates.back(), 1};
    best.lambda_epsilon = 0;
    best.confidence = 1.0;
  }
  return best;
}

ParameterSelection SelectParametersNormal(
    const Relation& relation, const DistanceEvaluator& evaluator,
    const ParameterSelectionOptions& options) {
  Rng rng(options.seed ^ 0x5bd1e995u);
  // Model pairwise distances as Normal(μ, σ); take ε = μ − 2σ (the classic
  // "distances below the bulk" heuristic). This lands far below the cluster
  // scale on clustered data, reproducing the weak DB rows of Table 4.
  const std::size_t n = relation.size();
  std::size_t max_pairs = 2000;
  double sum = 0;
  double sum_sq = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < max_pairs && n >= 2; ++i) {
    std::size_t a = static_cast<std::size_t>(rng.NextIndex(n));
    std::size_t b = static_cast<std::size_t>(rng.NextIndex(n));
    if (a == b) continue;
    double d = evaluator.Distance(relation[a], relation[b]);
    sum += d;
    sum_sq += d * d;
    ++pairs;
  }
  double mu = pairs ? sum / static_cast<double>(pairs) : 1.0;
  double var = pairs ? std::max(0.0, sum_sq / static_cast<double>(pairs) - mu * mu) : 0.0;
  double sigma = std::sqrt(var);
  double epsilon = std::max(mu - 2.0 * sigma, 0.05 * mu);

  ParameterSelection out;
  out.constraint.epsilon = epsilon;

  std::vector<std::size_t> rows =
      SampleRows(relation.size(), options.sample_rate, &rng);
  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(relation, evaluator, epsilon);
  std::vector<std::size_t> counts =
      NeighborCounts(relation, *index, epsilon, &rows);
  // Normal approximation of neighbor counts: η = μ_N − z·σ_N at the given
  // confidence (z for 0.99 is ~2.326).
  double mean_count = MeanOf(counts);
  double var_count = 0;
  for (std::size_t c : counts) {
    double diff = static_cast<double>(c) - mean_count;
    var_count += diff * diff;
  }
  var_count = counts.empty() ? 0 : var_count / static_cast<double>(counts.size());
  double z = 2.326;  // one-sided 99%
  double eta_real = mean_count - z * std::sqrt(var_count);
  out.constraint.eta =
      eta_real < 1.0 ? 1 : static_cast<std::size_t>(std::floor(eta_real));
  out.lambda_epsilon = mean_count;
  out.confidence = options.confidence;
  return out;
}

}  // namespace disc
