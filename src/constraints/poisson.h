#ifndef DISC_CONSTRAINTS_POISSON_H_
#define DISC_CONSTRAINTS_POISSON_H_

#include <cstddef>

namespace disc {

/// Poisson statistics for the number of ε-neighbors (paper §2.1.2).
///
/// Under the Poisson-process model of nearest-neighbor appearance, the
/// number N(ε) of ε-neighbors of a clustered tuple follows
/// p(N(ε) = k) = (λε)^k / k! · e^{-λε}  (Formula 2), and the probability of
/// having at least η neighbors is the complementary CDF (Formula 3).
class PoissonModel {
 public:
  /// Constructs the model with rate `lambda_epsilon` = λ·ε, i.e. the mean
  /// number of ε-neighbors.
  explicit PoissonModel(double lambda_epsilon)
      : lambda_epsilon_(lambda_epsilon) {}

  /// The rate λ·ε.
  double rate() const { return lambda_epsilon_; }

  /// p(N(ε) = k), Formula 2. Computed in log space for large rates.
  double Pmf(std::size_t k) const;

  /// p(N(ε) <= k), the CDF.
  double Cdf(std::size_t k) const;

  /// p(N(ε) >= eta), Formula 3.
  double ProbAtLeast(std::size_t eta) const;

  /// The largest η with p(N(ε) >= η) >= `confidence`; returns 0 if even
  /// η = 1 fails. This is the paper's η selection rule (e.g. η = 18 at
  /// λε = 51.36 gives p ≈ 0.99 on the Letter dataset).
  std::size_t LargestEtaWithConfidence(double confidence) const;

 private:
  double lambda_epsilon_;
};

}  // namespace disc

#endif  // DISC_CONSTRAINTS_POISSON_H_
