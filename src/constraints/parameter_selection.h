#ifndef DISC_CONSTRAINTS_PARAMETER_SELECTION_H_
#define DISC_CONSTRAINTS_PARAMETER_SELECTION_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/relation.h"
#include "constraints/distance_constraint.h"
#include "distance/evaluator.h"

namespace disc {

/// Outcome of automatic (ε, η) determination.
struct ParameterSelection {
  DistanceConstraint constraint;
  /// Mean neighbor count λε observed at the selected ε.
  double lambda_epsilon = 0;
  /// p(N(ε) >= η) under the fitted model.
  double confidence = 0;
};

/// Shared knobs for the selectors.
struct ParameterSelectionOptions {
  /// Candidate distance thresholds to evaluate. When empty, candidates are
  /// derived from the observed nearest-neighbor distance scale.
  std::vector<double> epsilon_candidates;
  /// Required probability p(N(ε) >= η) (the paper uses 0.99).
  double confidence = 0.99;
  /// Fraction of tuples whose neighbor counts are measured (Figure 5 / Table
  /// 4 show 1%-10% samples recover the distribution). 1.0 = all tuples.
  double sample_rate = 1.0;
  /// Target fraction of tuples flagged as outliers when scoring candidate
  /// ε values: the paper prefers a "moderately large" ε where only a small
  /// fraction of points fall below the η cut (§2.1.2 discussion of Fig. 5).
  double target_outlier_rate = 0.1;
  /// RNG seed for sampling.
  std::uint64_t seed = 42;
};

/// Poisson-based parameter determination (the paper's method, §2.1.2):
/// for each candidate ε, fit λε as the sampled mean neighbor count, set
/// η = the largest value with p(N(ε) >= η) >= confidence, and keep the
/// candidate whose implied outlier rate is closest to (but not above twice)
/// the target. This mirrors how the paper lands on (ε=3, η=18) for Letter
/// and (ε=10, η=31) for Flight.
ParameterSelection SelectParametersPoisson(
    const Relation& relation, const DistanceEvaluator& evaluator,
    const ParameterSelectionOptions& options = {});

/// Normal-distribution-based baseline ("DB" in Table 4, after the
/// distance-based outlier work of Knorr & Ng): models pairwise distances as
/// Normal(μ, σ) and picks ε = μ − 2σ clipped to > 0, η from the same
/// confidence rule under a Normal approximation of neighbor counts. The
/// paper shows this systematically picks a too-small ε (0.4 vs 3 on Letter),
/// collapsing downstream clustering accuracy.
ParameterSelection SelectParametersNormal(
    const Relation& relation, const DistanceEvaluator& evaluator,
    const ParameterSelectionOptions& options = {});

/// Helper: mean pairwise distance over a bounded random sample of pairs.
double EstimateMeanPairwiseDistance(const Relation& relation,
                                    const DistanceEvaluator& evaluator,
                                    std::size_t max_pairs, Rng* rng);

}  // namespace disc

#endif  // DISC_CONSTRAINTS_PARAMETER_SELECTION_H_
