#ifndef DISC_CONSTRAINTS_DISTANCE_CONSTRAINT_H_
#define DISC_CONSTRAINTS_DISTANCE_CONSTRAINT_H_

#include <cstddef>
#include <vector>

#include "common/relation.h"
#include "index/neighbor_index.h"

namespace disc {

/// The distance constraint (ε, η) of Definition 1: a tuple with at least η
/// ε-neighbors in r belongs to a cluster with high probability; a tuple with
/// fewer is an outlier (a violation).
struct DistanceConstraint {
  double epsilon = 1.0;
  std::size_t eta = 2;
};

/// Result of partitioning a dataset into inliers r and outliers s (§2.2).
struct InlierOutlierSplit {
  /// Row indices (into the original relation) of inliers, in order.
  std::vector<std::size_t> inlier_rows;
  /// Row indices of outliers, in order.
  std::vector<std::size_t> outlier_rows;
};

/// Checks whether `tuple` satisfies the constraint w.r.t. the indexed set.
/// `self_counts` adds 1 to the neighbor count for tuples that are part of
/// the indexed relation (per Formula 4, a tuple is its own ε-neighbor); pass
/// false when querying a tuple that is itself indexed (its self-match is
/// then already in the count).
bool SatisfiesConstraint(const NeighborIndex& index, const Tuple& tuple,
                         const DistanceConstraint& constraint);

/// Splits `relation` into inliers (>= η ε-neighbors within the full
/// relation, self included) and outliers. This is the split the paper uses
/// before saving: r keeps the constraint-satisfying tuples, s the violations.
InlierOutlierSplit SplitInliersOutliers(const Relation& relation,
                                        const NeighborIndex& index,
                                        const DistanceConstraint& constraint);

/// Neighbor-count histogram support: the number of ε-neighbors (self
/// included) of every tuple in `relation`, optionally over a row sample.
/// Powers the Figure 5 distribution plots and parameter selection.
std::vector<std::size_t> NeighborCounts(const Relation& relation,
                                        const NeighborIndex& index,
                                        double epsilon,
                                        const std::vector<std::size_t>* sample_rows = nullptr);

}  // namespace disc

#endif  // DISC_CONSTRAINTS_DISTANCE_CONSTRAINT_H_
