#include "constraints/poisson.h"

#include <cmath>

namespace disc {

double PoissonModel::Pmf(std::size_t k) const {
  if (lambda_epsilon_ <= 0) return k == 0 ? 1.0 : 0.0;
  // log p = k·log λε − λε − log k!
  double log_p = static_cast<double>(k) * std::log(lambda_epsilon_) -
                 lambda_epsilon_ - std::lgamma(static_cast<double>(k) + 1.0);
  return std::exp(log_p);
}

double PoissonModel::Cdf(std::size_t k) const {
  // Sum pmf terms computed in log space (the naive recurrence starting from
  // pmf(0) = e^{-λ} underflows to a hard zero for λ beyond ~700). Terms
  // below double's denormal range contribute less than 1e-300 to the CDF
  // and can be treated as zero safely.
  if (lambda_epsilon_ <= 0) return 1.0;
  const double log_lambda = std::log(lambda_epsilon_);
  double sum = 0;
  for (std::size_t i = 0; i <= k; ++i) {
    double log_term = static_cast<double>(i) * log_lambda - lambda_epsilon_ -
                      std::lgamma(static_cast<double>(i) + 1.0);
    sum += std::exp(log_term);
    // Past the mode the terms decay geometrically; once negligible, stop.
    if (static_cast<double>(i) > lambda_epsilon_ && log_term < -45.0) break;
  }
  return sum > 1.0 ? 1.0 : sum;
}

double PoissonModel::ProbAtLeast(std::size_t eta) const {
  if (eta == 0) return 1.0;
  return 1.0 - Cdf(eta - 1);
}

std::size_t PoissonModel::LargestEtaWithConfidence(double confidence) const {
  // p(N >= η) >= confidence  ⇔  Cdf(η − 1) <= 1 − confidence. Accumulate
  // the CDF once (log-space terms, as in Cdf) and return the largest η
  // whose prefix stays under the allowance.
  if (ProbAtLeast(1) < confidence) return 0;
  if (lambda_epsilon_ <= 0) return 0;
  const double allowance = 1.0 - confidence;
  const double log_lambda = std::log(lambda_epsilon_);
  // An upper bound far beyond the mean suffices: P(N >= λε + 20√λε) ≈ 0.
  const std::size_t limit = static_cast<std::size_t>(
      lambda_epsilon_ + 20 * std::sqrt(lambda_epsilon_ + 1.0)) + 2;
  double cdf = 0;
  std::size_t eta = 1;
  for (std::size_t k = 0; k + 1 <= limit; ++k) {
    double log_term = static_cast<double>(k) * log_lambda - lambda_epsilon_ -
                      std::lgamma(static_cast<double>(k) + 1.0);
    cdf += std::exp(log_term);
    if (cdf > allowance) break;
    eta = k + 1;  // Cdf(k) <= allowance ⇒ p(N >= k+1) >= confidence
  }
  return eta > 1 ? eta : 1;
}

}  // namespace disc
