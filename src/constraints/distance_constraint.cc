#include "constraints/distance_constraint.h"

namespace disc {

bool SatisfiesConstraint(const NeighborIndex& index, const Tuple& tuple,
                         const DistanceConstraint& constraint) {
  // Early exit once eta matches are found.
  std::size_t count =
      index.CountWithin(tuple, constraint.epsilon, constraint.eta);
  return count >= constraint.eta;
}

InlierOutlierSplit SplitInliersOutliers(const Relation& relation,
                                        const NeighborIndex& index,
                                        const DistanceConstraint& constraint) {
  InlierOutlierSplit split;
  for (std::size_t row = 0; row < relation.size(); ++row) {
    // The tuple is indexed, so its self-match (distance 0) is included in
    // the count, matching Formula 4.
    if (SatisfiesConstraint(index, relation[row], constraint)) {
      split.inlier_rows.push_back(row);
    } else {
      split.outlier_rows.push_back(row);
    }
  }
  return split;
}

std::vector<std::size_t> NeighborCounts(
    const Relation& relation, const NeighborIndex& index, double epsilon,
    const std::vector<std::size_t>* sample_rows) {
  std::vector<std::size_t> counts;
  if (sample_rows != nullptr) {
    counts.reserve(sample_rows->size());
    for (std::size_t row : *sample_rows) {
      counts.push_back(index.CountWithin(relation[row], epsilon));
    }
  } else {
    counts.reserve(relation.size());
    for (std::size_t row = 0; row < relation.size(); ++row) {
      counts.push_back(index.CountWithin(relation[row], epsilon));
    }
  }
  return counts;
}

}  // namespace disc
