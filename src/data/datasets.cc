#include "data/datasets.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "common/log.h"
#include "common/random.h"
#include "data/generators.h"
#include "distance/evaluator.h"
#include "index/index_factory.h"
#include "index/kth_neighbor_cache.h"

namespace disc {

namespace {

/// Table 1 shape of one synthetic dataset.
struct Shape {
  std::size_t tuples;
  std::size_t attributes;
  std::size_t classes;
  std::size_t outliers;       ///< total (dirty + natural), per Table 1
  double natural_fraction;    ///< share of outliers that are natural
  std::size_t eta;            ///< neighbor threshold in the paper's spirit
  double center_range;        ///< cluster centers live in [0, range]^m
  double cluster_stddev;
};

Shape ShapeFor(const std::string& name) {
  // (ε, η) hints follow the paper where stated: Letter η=18, Flight η=31,
  // GPS η=3, Restaurant η=3.
  if (name == "iris") return {150, 4, 3, 15, 0.2, 5, 60, 2.0};
  if (name == "seeds") return {210, 7, 4, 12, 0.2, 5, 70, 2.0};
  if (name == "wifi") return {2000, 7, 4, 156, 0.2, 10, 70, 2.0};
  if (name == "yeast") return {1299, 8, 4, 39, 0.25, 8, 70, 2.0};
  if (name == "letter") return {20000, 16, 26, 1920, 0.2, 18, 120, 2.0};
  if (name == "flight") return {200000, 3, 5, 19920, 0.2, 31, 100, 2.0};
  if (name == "spam") return {4601, 57, 2, 457, 0.2, 10, 80, 2.0};
  if (name == "gps") return {8125, 3, 3, 837, 0.5, 3, 0, 0};
  if (name == "restaurant") return {864, 5, 752, 86, 0.0, 2, 0, 0};
  return {0, 0, 0, 0, 0, 0, 0, 0};
}

/// Picks ε so that exactly ~`target_outliers` tuples have fewer than η
/// ε-neighbors: ε is the (n − target)-th smallest δ_η over the dirty data.
/// This is the data-driven analogue of the paper's Figure 5 reading.
DistanceConstraint CalibrateEpsilon(const Relation& dirty,
                                    const DistanceEvaluator& evaluator,
                                    std::size_t eta,
                                    std::size_t target_outliers) {
  DistanceConstraint c;
  c.eta = eta;
  const std::size_t n = dirty.size();
  if (n == 0) {
    c.epsilon = 1.0;
    return c;
  }
  std::unique_ptr<NeighborIndex> index = MakeNeighborIndex(dirty, evaluator);
  KthNeighborCache cache(dirty, *index, eta);
  std::vector<double> deltas = cache.deltas();
  std::sort(deltas.begin(), deltas.end());
  std::size_t keep = target_outliers >= n ? 0 : n - target_outliers - 1;
  keep = std::min(keep, n - 1);
  // The smallest ε that keeps the kept tuples inliers: just above the last
  // kept δ. Do NOT take the midpoint of the (often huge) gap up to the
  // first outlier δ — an ε far beyond the cluster scale makes feasibility
  // nearly vacuous, so saved tuples could land between clusters and bridge
  // them in downstream DBSCAN.
  double lo = deltas[keep];
  double hi = keep + 1 < n ? deltas[keep + 1] : lo;
  c.epsilon = lo + 0.05 * (hi - lo);
  if (c.epsilon <= 0) c.epsilon = lo > 0 ? lo : 1.0;
  return c;
}

std::size_t Scaled(std::size_t count, double scale) {
  auto out = static_cast<std::size_t>(
      std::llround(static_cast<double>(count) * scale));
  return std::max<std::size_t>(out, 1);
}

PaperDataset MakeGaussianDataset(const std::string& name, const Shape& shape,
                                 std::uint64_t seed, double scale) {
  PaperDataset ds;
  ds.name = name;

  const std::size_t n = Scaled(shape.tuples, scale);
  const std::size_t outliers = std::min(Scaled(shape.outliers, scale), n / 3);
  auto natural_count = static_cast<std::size_t>(
      std::llround(shape.natural_fraction * static_cast<double>(outliers)));
  const std::size_t dirty_count = outliers - natural_count;

  // Clusters: evenly-sized, well-separated Gaussian blobs.
  std::vector<std::vector<double>> centers = PlaceClusterCenters(
      shape.classes, shape.attributes, shape.center_range,
      shape.center_range * 0.35, seed);
  std::vector<ClusterSpec> clusters;
  std::size_t core = n > natural_count ? n - natural_count : n;
  for (std::size_t c = 0; c < shape.classes; ++c) {
    ClusterSpec spec;
    spec.center = centers[c];
    spec.stddev = shape.cluster_stddev;
    spec.count = core / shape.classes + (c < core % shape.classes ? 1 : 0);
    clusters.push_back(std::move(spec));
  }
  LabeledRelation base = GenerateGaussianMixture(clusters, seed + 1);

  // Natural outliers: distant in every attribute.
  AppendNaturalOutliers(&base, natural_count, 0.6, seed + 2);
  for (std::size_t i = base.data.size() - natural_count; i < base.data.size();
       ++i) {
    ds.natural_outlier_rows.push_back(i);
  }

  ds.clean = base.data;
  ds.labels = base.labels;

  // Dirty outliers: errors on 1-2 attributes, magnitude scaled so a
  // one-attribute error stands out even in high dimension.
  ErrorInjectionSpec err;
  err.tuple_rate =
      static_cast<double>(dirty_count) / static_cast<double>(base.data.size());
  err.min_attributes = 1;
  err.max_attributes = 2;
  err.model = NumericErrorModel::kShift;
  err.magnitude = 4.0 * std::sqrt(static_cast<double>(shape.attributes)) + 6.0;
  err.seed = seed + 3;
  InjectionResult injected = InjectNumericErrors(ds.clean, err);
  ds.dirty = injected.dirty;
  ds.errors = injected.errors;
  ds.dirty_rows = injected.dirty_rows;

  DistanceEvaluator evaluator(ds.dirty.schema());
  ds.suggested = CalibrateEpsilon(ds.dirty, evaluator, shape.eta, outliers);
  return ds;
}

PaperDataset MakeGpsDataset(std::uint64_t seed, double scale) {
  Shape shape = ShapeFor("gps");
  PaperDataset ds;
  ds.name = "gps";

  const std::size_t n = Scaled(shape.tuples, scale);
  const std::size_t outliers = std::min(Scaled(shape.outliers, scale), n / 3);
  auto natural_count = static_cast<std::size_t>(
      std::llround(shape.natural_fraction * static_cast<double>(outliers)));
  const std::size_t dirty_count = outliers - natural_count;

  TrajectorySpec spec;
  spec.segments = shape.classes;
  spec.points_per_segment =
      std::max<std::size_t>(1, (n - natural_count) / shape.classes);
  spec.seed = seed;
  LabeledRelation base = GenerateTrajectory(spec);

  // Natural outliers: points from "another trajectory" — distant on Time,
  // Longitude and Latitude all at once (the paper's t_29 / t_30).
  AppendNaturalOutliers(&base, natural_count, 0.8, seed + 2);
  for (std::size_t i = base.data.size() - natural_count; i < base.data.size();
       ++i) {
    ds.natural_outlier_rows.push_back(i);
  }

  ds.clean = base.data;
  ds.labels = base.labels;

  // Dirty outliers: exactly ONE erroneous attribute (a longitude spike or a
  // wrong timestamp — Figure 2's t_13 / t_24). The spikes are moderate,
  // like the paper's 838 → 807 longitude glitch: far beyond ε (the point
  // becomes outlying and can split the trajectory) but small against the
  // trajectory extent, so the minimum-cost repair fixes the one broken
  // attribute instead of substituting the whole tuple. Attribute stddevs
  // over a trajectory are ~1/4 of its extent, so 0.1·σ ≈ 20 step lengths.
  ErrorInjectionSpec err;
  err.tuple_rate =
      static_cast<double>(dirty_count) / static_cast<double>(base.data.size());
  err.min_attributes = 1;
  err.max_attributes = 1;
  err.model = NumericErrorModel::kShift;
  err.magnitude = 0.1;
  err.seed = seed + 3;
  InjectionResult injected = InjectNumericErrors(ds.clean, err);
  ds.dirty = injected.dirty;
  ds.errors = injected.errors;
  ds.dirty_rows = injected.dirty_rows;

  DistanceEvaluator evaluator(ds.dirty.schema());
  ds.suggested = CalibrateEpsilon(ds.dirty, evaluator, shape.eta, outliers);
  return ds;
}

PaperDataset MakeRestaurantDataset(std::uint64_t seed, double scale) {
  Shape shape = ShapeFor("restaurant");
  PaperDataset ds;
  ds.name = "restaurant";

  RestaurantSpec spec;
  spec.entities = Scaled(752, scale);
  spec.tuples = Scaled(shape.tuples, scale);
  if (spec.entities > spec.tuples) spec.entities = spec.tuples;
  spec.seed = seed;
  LabeledRelation base = GenerateRestaurant(spec);

  ds.clean = base.data;
  ds.labels = base.labels;

  // Typos hit duplicate records (the paper's RH10-OAG zip-code story:
  // errors make a record's duplicate unmatchable). Corrupt at most one row
  // per duplicated entity so the remaining copies stay mutually supported
  // inliers — they are the donors DISC saves the corrupted copy with.
  std::vector<std::size_t> duplicate_rows;
  {
    std::map<int, bool> seen_entity;
    for (std::size_t row = spec.entities; row < base.data.size(); ++row) {
      int entity = base.labels[row];
      if (!seen_entity[entity]) {
        seen_entity[entity] = true;
        duplicate_rows.push_back(row);
      }
    }
  }
  const std::size_t outlier_target =
      std::min(Scaled(shape.outliers, scale), duplicate_rows.size());

  ErrorInjectionSpec err;
  err.tuple_rate = duplicate_rows.empty()
                       ? 0.0
                       : static_cast<double>(outlier_target) /
                             static_cast<double>(duplicate_rows.size());
  err.min_attributes = 1;
  err.max_attributes = 2;
  err.seed = seed + 3;
  err.candidate_rows = duplicate_rows;
  InjectionResult injected = InjectStringTypos(ds.clean, err);
  ds.dirty = injected.dirty;
  ds.errors = injected.errors;
  ds.dirty_rows = injected.dirty_rows;

  // Records without a duplicate are natural outliers here: distant from
  // every other record on all attributes, exactly the kind §1.2 says to
  // leave unchanged (κ-restricted saving reports them infeasible).
  std::vector<bool> has_twin(base.data.size(), false);
  for (std::size_t row = spec.entities; row < base.data.size(); ++row) {
    has_twin[row] = true;
    auto entity = static_cast<std::size_t>(base.labels[row]);
    if (entity < has_twin.size()) has_twin[entity] = true;
  }
  for (std::size_t row = 0; row < has_twin.size(); ++row) {
    if (!has_twin[row]) ds.natural_outlier_rows.push_back(row);
  }

  // Distance constraint at the duplicate scale: exact copies sit at
  // distance 0, a typo costs >= 1 edit, other entities are ~14 away. Any
  // ε in (0, 1) separates dirty copies from clean ones; 0.75 plays the
  // role of the paper's Figure 8 operating point (ε = 4.6 on the real
  // data, whose legitimate duplicates are non-identical). η = 2 under the
  // self-counting convention: a clustered record sees itself plus a twin.
  ds.suggested.epsilon = 0.75;
  ds.suggested.eta = shape.eta;
  return ds;
}

}  // namespace

std::vector<std::string> PaperDatasetNames() {
  return {"iris",   "seeds",  "wifi", "yeast",     "letter",
          "flight", "spam",   "gps",  "restaurant"};
}

PaperDataset MakePaperDataset(const std::string& name, std::uint64_t seed,
                              double scale) {
  if (name == "gps") return MakeGpsDataset(seed, scale);
  if (name == "restaurant") return MakeRestaurantDataset(seed, scale);
  Shape shape = ShapeFor(name);
  if (shape.tuples == 0) {
    // Unknown name: return an empty dataset with the name set.
    DISC_LOG(WARN).Str("name", name)
        << "unknown paper dataset name; returning an empty dataset (see "
           "PaperDatasetNames() for the known ones)";
    PaperDataset ds;
    ds.name = name;
    return ds;
  }
  return MakeGaussianDataset(name, shape, seed, scale);
}

}  // namespace disc
