#ifndef DISC_DATA_ERROR_INJECTION_H_
#define DISC_DATA_ERROR_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/relation.h"
#include "common/tuple.h"

namespace disc {

/// One injected cell error, kept as ground truth for cleaning-accuracy
/// evaluation (the T sets of §4.3).
struct CellError {
  std::size_t row = 0;
  std::size_t attribute = 0;
  Value original;
  Value corrupted;
};

/// Numeric error models.
enum class NumericErrorModel {
  /// Shift the value by ±magnitude·(attribute stddev) — sensor spike.
  kShift,
  /// Multiply by a unit-conversion-like factor (2.54, cm vs inch — the
  /// paper's Figure 1 motivation).
  kScale,
  /// Replace with a uniform value over the attribute's observed range.
  kRandomInRange,
};

/// Error-injection parameters.
struct ErrorInjectionSpec {
  /// Fraction of tuples receiving errors.
  double tuple_rate = 0.05;
  /// Errors touch between min and max attributes per dirty tuple (errors
  /// occur on only a few attributes — paper §1.2).
  std::size_t min_attributes = 1;
  std::size_t max_attributes = 2;
  NumericErrorModel model = NumericErrorModel::kShift;
  /// Shift magnitude in units of the attribute's standard deviation.
  double magnitude = 8.0;
  /// Scale factor for kScale.
  double scale_factor = 2.54;
  std::uint64_t seed = 42;
  /// When non-empty, errors are injected only into these rows; `tuple_rate`
  /// is then applied to the candidate pool instead of the whole relation.
  /// Used e.g. to corrupt only duplicate records in the Restaurant setup.
  std::vector<std::size_t> candidate_rows;
};

/// Result of an injection pass.
struct InjectionResult {
  Relation dirty;
  std::vector<CellError> errors;
  /// Rows that received at least one error, sorted ascending.
  std::vector<std::size_t> dirty_rows;

  /// The set of erroneous attributes of `row` (empty when clean).
  AttributeSet ErrorAttributesOf(std::size_t row) const;
};

/// Injects numeric cell errors into a copy of `clean`.
InjectionResult InjectNumericErrors(const Relation& clean,
                                    const ErrorInjectionSpec& spec);

/// Injects typographic errors into string cells: each corrupted cell gets
/// 1-2 visually-confusable character substitutions (O→0 style, per the
/// paper's zip-code example) or a character transposition.
InjectionResult InjectStringTypos(const Relation& clean,
                                  const ErrorInjectionSpec& spec);

}  // namespace disc

#endif  // DISC_DATA_ERROR_INJECTION_H_
