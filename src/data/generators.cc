#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/stringutil.h"

namespace disc {

LabeledRelation GenerateGaussianMixture(
    const std::vector<ClusterSpec>& clusters, std::uint64_t seed) {
  LabeledRelation out;
  if (clusters.empty()) return out;
  const std::size_t dims = clusters[0].center.size();
  out.data = Relation(Schema::Numeric(dims));

  Rng rng(seed);
  int label = 0;
  for (const ClusterSpec& cluster : clusters) {
    for (std::size_t i = 0; i < cluster.count; ++i) {
      Tuple t(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        t[d] = Value(rng.Gaussian(cluster.center[d], cluster.stddev));
      }
      out.data.AppendUnchecked(std::move(t));
      out.labels.push_back(label);
    }
    ++label;
  }
  return out;
}

std::vector<std::vector<double>> PlaceClusterCenters(std::size_t k,
                                                     std::size_t dims,
                                                     double range,
                                                     double min_separation,
                                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  const std::size_t max_attempts = 200;
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> best(dims, 0);
    double best_min_dist = -1;
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      std::vector<double> candidate(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        candidate[d] = rng.Uniform(0, range);
      }
      double min_dist = std::numeric_limits<double>::infinity();
      for (const auto& existing : centers) {
        double sq = 0;
        for (std::size_t d = 0; d < dims; ++d) {
          double diff = candidate[d] - existing[d];
          sq += diff * diff;
        }
        min_dist = std::min(min_dist, std::sqrt(sq));
      }
      if (centers.empty()) min_dist = range;
      if (min_dist > best_min_dist) {
        best_min_dist = min_dist;
        best = std::move(candidate);
      }
      if (best_min_dist >= min_separation) break;
    }
    centers.push_back(std::move(best));
  }
  return centers;
}

LabeledRelation GenerateTrajectory(const TrajectorySpec& spec) {
  LabeledRelation out;
  out.data = Relation(
      Schema::NumericNamed({"Time", "Longitude", "Latitude"}));

  Rng rng(spec.seed);
  double lon = spec.start_longitude;
  double lat = spec.start_latitude;
  double time = 0;
  for (std::size_t seg = 0; seg < spec.segments; ++seg) {
    // Each leg heads in a fresh direction.
    double heading = rng.Uniform(0, 2 * 3.14159265358979);
    double dlon = spec.step * std::cos(heading);
    double dlat = spec.step * std::sin(heading);
    for (std::size_t i = 0; i < spec.points_per_segment; ++i) {
      lon += dlon + rng.Gaussian(0, spec.jitter);
      lat += dlat + rng.Gaussian(0, spec.jitter);
      time += 1.0;
      Tuple t{Value(time), Value(lon), Value(lat)};
      out.data.AppendUnchecked(std::move(t));
      out.labels.push_back(static_cast<int>(seg));
    }
  }
  return out;
}

namespace {

const char* const kNameStems[] = {
    "golden", "jade", "blue", "red", "royal", "little", "grand", "lucky",
    "silver", "ocean", "garden", "corner", "star", "sunset", "harbor",
    "maple", "cedar", "river", "palace", "villa"};
const char* const kNameTypes[] = {
    "bistro", "cafe", "grill", "kitchen", "diner", "house",
    "palace", "garden", "express", "tavern"};
const char* const kStreets[] = {
    "main st", "oak ave", "park blvd", "elm st", "lake dr", "hill rd",
    "2nd ave", "market st", "bay st", "sunset blvd"};
const char* const kCities[] = {
    "new york", "los angeles", "chicago", "houston", "atlanta",
    "san francisco", "boston", "seattle"};

std::string MakePhone(Rng* rng) {
  return StrFormat("%03d-%03d-%04d",
                   static_cast<int>(rng->UniformInt(200, 999)),
                   static_cast<int>(rng->UniformInt(200, 999)),
                   static_cast<int>(rng->UniformInt(0, 9999)));
}

std::string MakeZip(Rng* rng) {
  // Alphanumeric zip in the style of the paper's RH10-0AG example.
  const char letters[] = "ABCDEFGHJKLMNPRSTUWXYZ";
  std::string zip;
  zip += letters[rng->NextIndex(sizeof(letters) - 1)];
  zip += letters[rng->NextIndex(sizeof(letters) - 1)];
  zip += StrFormat("%d%d", static_cast<int>(rng->UniformInt(0, 9)),
                   static_cast<int>(rng->UniformInt(0, 9)));
  zip += '-';
  zip += StrFormat("%d", static_cast<int>(rng->UniformInt(0, 9)));
  zip += letters[rng->NextIndex(sizeof(letters) - 1)];
  zip += letters[rng->NextIndex(sizeof(letters) - 1)];
  return zip;
}

}  // namespace

LabeledRelation GenerateRestaurant(const RestaurantSpec& spec) {
  LabeledRelation out;
  out.data = Relation(
      Schema::StringNamed({"name", "address", "city", "phone", "zip"}));

  Rng rng(spec.seed);
  const std::size_t duplicates =
      spec.tuples > spec.entities ? spec.tuples - spec.entities : 0;

  std::vector<Tuple> entity_rows;
  entity_rows.reserve(spec.entities);
  for (std::size_t e = 0; e < spec.entities; ++e) {
    std::string name =
        std::string(kNameStems[rng.NextIndex(std::size(kNameStems))]) + " " +
        kNameTypes[rng.NextIndex(std::size(kNameTypes))] + " " +
        StrFormat("%d", static_cast<int>(rng.UniformInt(1, 99)));
    std::string address =
        StrFormat("%d ", static_cast<int>(rng.UniformInt(1, 999))) +
        kStreets[rng.NextIndex(std::size(kStreets))];
    std::string city = kCities[rng.NextIndex(std::size(kCities))];
    Tuple t{Value(name), Value(address), Value(city), Value(MakePhone(&rng)),
            Value(MakeZip(&rng))};
    entity_rows.push_back(t);
    out.data.AppendUnchecked(std::move(t));
    out.labels.push_back(static_cast<int>(e));
  }

  // Distribute the extra rows as exact duplicates, two per selected entity
  // where possible (see RestaurantSpec docs for why triples).
  std::size_t triple_entities = duplicates / 2;
  std::size_t leftover = duplicates % 2;
  std::vector<std::size_t> dup_entities =
      rng.SampleIndices(spec.entities, triple_entities + leftover);
  for (std::size_t i = 0; i < dup_entities.size(); ++i) {
    std::size_t e = dup_entities[i];
    std::size_t copies = i < triple_entities ? 2 : 1;
    for (std::size_t c = 0; c < copies; ++c) {
      out.data.AppendUnchecked(entity_rows[e]);
      out.labels.push_back(static_cast<int>(e));
    }
  }
  return out;
}

void AppendNaturalOutliers(LabeledRelation* dataset, std::size_t count,
                           double displacement, std::uint64_t seed,
                           int outlier_label) {
  if (dataset->data.empty()) return;
  Rng rng(seed ^ 0xABCDEF);
  const std::size_t dims = dataset->data.arity();

  // Attribute ranges of the existing data.
  std::vector<Relation::NumericRange> ranges(dims);
  for (std::size_t a = 0; a < dims; ++a) ranges[a] = dataset->data.Range(a);

  for (std::size_t i = 0; i < count; ++i) {
    Tuple t(dims);
    for (std::size_t a = 0; a < dims; ++a) {
      double width = ranges[a].max - ranges[a].min;
      if (width <= 0) width = 1.0;
      // Displaced beyond the data's bounding box on EVERY attribute, in a
      // random direction — separable in all attributes (paper §1.2).
      double side = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      double base = side > 0 ? ranges[a].max : ranges[a].min;
      t[a] = Value(base + side * displacement * width * rng.Uniform(0.5, 1.5));
    }
    dataset->data.AppendUnchecked(std::move(t));
    dataset->labels.push_back(outlier_label);
  }
}

}  // namespace disc
