#include "data/error_injection.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "distance/edit_distance.h"

namespace disc {

AttributeSet InjectionResult::ErrorAttributesOf(std::size_t row) const {
  AttributeSet attrs;
  for (const CellError& e : errors) {
    if (e.row == row && e.attribute < 64) attrs.insert(e.attribute);
  }
  return attrs;
}

namespace {

struct AttrStats {
  double mean = 0;
  double stddev = 1;
  double min = 0;
  double max = 1;
};

/// Chooses the dirty rows: a `tuple_rate` fraction of the candidate pool
/// (all rows, or spec.candidate_rows when given), sorted ascending.
std::vector<std::size_t> PickDirtyRows(const ErrorInjectionSpec& spec,
                                       std::size_t n, Rng* rng) {
  std::vector<std::size_t> pool = spec.candidate_rows;
  if (pool.empty()) {
    pool.resize(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  }
  auto num_dirty = static_cast<std::size_t>(
      std::llround(spec.tuple_rate * static_cast<double>(pool.size())));
  num_dirty = std::min(num_dirty, pool.size());
  std::vector<std::size_t> picks = rng->SampleIndices(pool.size(), num_dirty);
  std::vector<std::size_t> rows;
  rows.reserve(picks.size());
  for (std::size_t p : picks) rows.push_back(pool[p]);
  std::sort(rows.begin(), rows.end());
  return rows;
}

AttrStats ComputeStats(const Relation& data, std::size_t attr) {
  AttrStats s;
  double sum = 0;
  double sum_sq = 0;
  std::size_t count = 0;
  bool first = true;
  for (const Tuple& t : data) {
    if (!t[attr].is_numeric()) continue;
    double v = t[attr].num();
    sum += v;
    sum_sq += v * v;
    ++count;
    if (first) {
      s.min = s.max = v;
      first = false;
    } else {
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
  }
  if (count > 0) {
    s.mean = sum / static_cast<double>(count);
    double var = std::max(0.0, sum_sq / static_cast<double>(count) - s.mean * s.mean);
    s.stddev = std::sqrt(var);
    if (s.stddev <= 0) s.stddev = 1;
  }
  return s;
}

}  // namespace

InjectionResult InjectNumericErrors(const Relation& clean,
                                    const ErrorInjectionSpec& spec) {
  InjectionResult out;
  out.dirty = clean;
  const std::size_t n = clean.size();
  const std::size_t m = clean.arity();
  if (n == 0 || m == 0) return out;

  // Numeric attributes only.
  std::vector<std::size_t> numeric;
  for (std::size_t a = 0; a < m; ++a) {
    if (clean.schema().kind(a) == ValueKind::kNumeric) numeric.push_back(a);
  }
  if (numeric.empty()) return out;

  std::vector<AttrStats> stats(m);
  for (std::size_t a : numeric) stats[a] = ComputeStats(clean, a);

  Rng rng(spec.seed);
  std::vector<std::size_t> rows = PickDirtyRows(spec, n, &rng);
  out.dirty_rows = rows;

  for (std::size_t row : rows) {
    std::size_t hi = std::min(spec.max_attributes, numeric.size());
    std::size_t lo = std::min(spec.min_attributes, hi);
    auto count = static_cast<std::size_t>(
        rng.UniformInt(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
    std::vector<std::size_t> picks = rng.SampleIndices(numeric.size(), count);
    for (std::size_t pick : picks) {
      std::size_t attr = numeric[pick];
      const AttrStats& st = stats[attr];
      double v = out.dirty[row][attr].num();
      double corrupted = v;
      switch (spec.model) {
        case NumericErrorModel::kShift: {
          double side = rng.Bernoulli(0.5) ? 1.0 : -1.0;
          corrupted = v + side * spec.magnitude * st.stddev *
                              rng.Uniform(0.8, 1.4);
          break;
        }
        case NumericErrorModel::kScale:
          corrupted = v * spec.scale_factor;
          break;
        case NumericErrorModel::kRandomInRange: {
          double width = st.max - st.min;
          if (width <= 0) width = 1;
          corrupted = rng.Uniform(st.min - 0.5 * width, st.max + 0.5 * width);
          break;
        }
      }
      CellError err;
      err.row = row;
      err.attribute = attr;
      err.original = out.dirty[row][attr];
      err.corrupted = Value(corrupted);
      out.dirty[row][attr] = err.corrupted;
      out.errors.push_back(std::move(err));
    }
  }
  return out;
}

namespace {

char ConfusableFor(char c, Rng* rng) {
  // Map through the shared confusion table; fall back to a nearby letter.
  static constexpr const char kPairs[][2] = {
      {'o', '0'}, {'0', 'O'}, {'l', '1'}, {'1', 'l'}, {'s', '5'},
      {'5', 'S'}, {'b', '8'}, {'8', 'B'}, {'z', '2'}, {'2', 'Z'},
      {'e', '3'}, {'3', 'E'}, {'g', '9'}, {'9', 'g'}, {'t', '7'},
      {'7', 'T'}};
  for (const auto& p : kPairs) {
    if (p[0] == c) return p[1];
  }
  // Generic substitution: shift within the same character class.
  if (c >= 'a' && c <= 'z') return static_cast<char>('a' + (c - 'a' + 1) % 26);
  if (c >= 'A' && c <= 'Z') return static_cast<char>('A' + (c - 'A' + 1) % 26);
  if (c >= '0' && c <= '9') return static_cast<char>('0' + (c - '0' + 1) % 10);
  (void)rng;
  return c == ' ' ? '-' : ' ';
}

}  // namespace

InjectionResult InjectStringTypos(const Relation& clean,
                                  const ErrorInjectionSpec& spec) {
  InjectionResult out;
  out.dirty = clean;
  const std::size_t n = clean.size();
  const std::size_t m = clean.arity();
  if (n == 0 || m == 0) return out;

  std::vector<std::size_t> textual;
  for (std::size_t a = 0; a < m; ++a) {
    if (clean.schema().kind(a) == ValueKind::kString) textual.push_back(a);
  }
  if (textual.empty()) return out;

  Rng rng(spec.seed ^ 0x7f7f7f);
  std::vector<std::size_t> rows = PickDirtyRows(spec, n, &rng);
  out.dirty_rows = rows;

  for (std::size_t row : rows) {
    std::size_t hi = std::min(spec.max_attributes, textual.size());
    std::size_t lo = std::min(spec.min_attributes, hi);
    auto count = static_cast<std::size_t>(
        rng.UniformInt(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
    std::vector<std::size_t> picks = rng.SampleIndices(textual.size(), count);
    for (std::size_t pick : picks) {
      std::size_t attr = textual[pick];
      std::string s = out.dirty[row][attr].str();
      if (s.empty()) continue;
      CellError err;
      err.row = row;
      err.attribute = attr;
      err.original = out.dirty[row][attr];
      // 1-2 confusable substitutions, or a transposition.
      std::size_t edits = rng.Bernoulli(0.5) ? 1 : 2;
      for (std::size_t e = 0; e < edits; ++e) {
        std::size_t pos = rng.NextIndex(s.size());
        if (rng.Bernoulli(0.85) || s.size() < 2) {
          s[pos] = ConfusableFor(s[pos], &rng);
        } else {
          std::size_t other = (pos + 1) % s.size();
          std::swap(s[pos], s[other]);
        }
      }
      err.corrupted = Value(s);
      out.dirty[row][attr] = err.corrupted;
      out.errors.push_back(std::move(err));
    }
  }
  return out;
}

}  // namespace disc
