#ifndef DISC_DATA_DATASETS_H_
#define DISC_DATA_DATASETS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/relation.h"
#include "constraints/distance_constraint.h"
#include "data/error_injection.h"

namespace disc {

/// A fully-prepared experiment dataset mirroring one of the paper's Table 1
/// datasets: ground-truth clean values, the dirty version every method sees,
/// class labels, the injected-error ground truth, and a suggested (ε, η).
///
/// Substitution note (see DESIGN.md §3): the real UCI/GPS/Restaurant data is
/// not available offline, so each dataset is synthesized with the same
/// shape (#tuples, #attributes, #classes, #outliers, domain scale) and the
/// same error structure (errors on 1-2 attributes of a small tuple
/// fraction, plus all-attribute-distant natural outliers).
struct PaperDataset {
  std::string name;
  Relation clean;   ///< ground-truth values (labels align by row)
  Relation dirty;   ///< what the cleaning / saving methods see
  std::vector<int> labels;  ///< ground-truth class per row (-1 = natural outlier)
  std::vector<CellError> errors;       ///< injected cell errors
  std::vector<std::size_t> dirty_rows;  ///< rows holding injected errors
  std::vector<std::size_t> natural_outlier_rows;
  DistanceConstraint suggested;  ///< (ε, η) in the spirit of the paper's picks
};

/// The dataset names of Table 1 (lower-case).
std::vector<std::string> PaperDatasetNames();

/// Builds the named dataset. `scale` multiplies the tuple counts (0.1 turns
/// Letter's 20000 rows into 2000 — used to keep test/bench runtimes sane on
/// one core); the attribute/class/outlier structure is preserved.
PaperDataset MakePaperDataset(const std::string& name, std::uint64_t seed = 42,
                              double scale = 1.0);

}  // namespace disc

#endif  // DISC_DATA_DATASETS_H_
