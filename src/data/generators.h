#ifndef DISC_DATA_GENERATORS_H_
#define DISC_DATA_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/relation.h"

namespace disc {

/// A relation plus ground-truth class labels per tuple.
struct LabeledRelation {
  Relation data;
  std::vector<int> labels;
};

/// One Gaussian cluster in a mixture.
struct ClusterSpec {
  std::vector<double> center;
  double stddev = 1.0;
  std::size_t count = 100;
};

/// Gaussian-mixture generator: the stand-in for the paper's UCI numeric
/// datasets (Iris, Seeds, WIFI, Yeast, Letter, Flight, Spam). Labels are the
/// cluster indices 0..k-1.
LabeledRelation GenerateGaussianMixture(const std::vector<ClusterSpec>& clusters,
                                        std::uint64_t seed);

/// Places `k` cluster centers pseudo-randomly in [0, range]^dims with a
/// minimum pairwise separation of `min_separation` (best-effort).
std::vector<std::vector<double>> PlaceClusterCenters(std::size_t k,
                                                     std::size_t dims,
                                                     double range,
                                                     double min_separation,
                                                     std::uint64_t seed);

/// Trajectory generator: the stand-in for the paper's GPS dataset (Figure
/// 2). Tuples are (Time, Longitude, Latitude); the trajectory is
/// piecewise-linear with `segments` legs, each leg a distinct class label.
/// Consecutive timestamps are 1 apart; positions drift with Gaussian jitter.
struct TrajectorySpec {
  std::size_t segments = 3;
  std::size_t points_per_segment = 30;
  /// Start of the trajectory (longitude, latitude).
  double start_longitude = 800;
  double start_latitude = 150;
  /// Per-step movement magnitude.
  double step = 1.0;
  /// Gaussian positional jitter.
  double jitter = 0.2;
  std::uint64_t seed = 42;
};
LabeledRelation GenerateTrajectory(const TrajectorySpec& spec);

/// String-record generator: the stand-in for the Restaurant dataset
/// (864 tuples, 752 entities, 5 string attributes: name, address, city,
/// phone, zip). Labels are entity ids. The extra tuples beyond one row per
/// entity are distributed as *exact duplicate* copies, two per selected
/// entity where possible (a duplicated entity then has three identical
/// rows). Triples — rather than pairs — keep an entity's remaining copies
/// mutually supported under an (ε, η=2) distance constraint when one copy
/// is later corrupted, which is what lets DISC save the corrupted copy
/// using its clean twins as donors.
struct RestaurantSpec {
  std::size_t entities = 752;
  std::size_t tuples = 864;
  std::uint64_t seed = 42;
};
LabeledRelation GenerateRestaurant(const RestaurantSpec& spec);

/// Appends `count` natural outliers: tuples whose value on *every* numeric
/// attribute is displaced far from all cluster structure (distinct in all
/// attributes, per §1.2). Appended tuples get label `outlier_label`.
void AppendNaturalOutliers(LabeledRelation* dataset, std::size_t count,
                           double displacement, std::uint64_t seed,
                           int outlier_label = -1);

}  // namespace disc

#endif  // DISC_DATA_GENERATORS_H_
