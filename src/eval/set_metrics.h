#ifndef DISC_EVAL_SET_METRICS_H_
#define DISC_EVAL_SET_METRICS_H_

#include "common/tuple.h"

namespace disc {

/// Jaccard index |T ∩ P| / |T ∪ P| over attribute sets, as used in §4.3 to
/// compare the attributes DISC adjusts (P) against the ground-truth
/// erroneous attributes (T). Returns 1 when both sets are empty.
double JaccardIndex(const AttributeSet& truth, const AttributeSet& predicted);

/// Set-level precision |T ∩ P| / |P| (1 when P is empty).
double SetPrecision(const AttributeSet& truth, const AttributeSet& predicted);

/// Set-level recall |T ∩ P| / |T| (1 when T is empty).
double SetRecall(const AttributeSet& truth, const AttributeSet& predicted);

}  // namespace disc

#endif  // DISC_EVAL_SET_METRICS_H_
