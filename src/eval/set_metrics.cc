#include "eval/set_metrics.h"

#include <bit>

namespace disc {

namespace {

std::size_t Popcount(std::uint64_t bits) {
  return static_cast<std::size_t>(std::popcount(bits));
}

}  // namespace

double JaccardIndex(const AttributeSet& truth, const AttributeSet& predicted) {
  std::uint64_t inter = truth.bits() & predicted.bits();
  std::uint64_t uni = truth.bits() | predicted.bits();
  if (uni == 0) return 1.0;
  return static_cast<double>(Popcount(inter)) /
         static_cast<double>(Popcount(uni));
}

double SetPrecision(const AttributeSet& truth, const AttributeSet& predicted) {
  if (predicted.bits() == 0) return 1.0;
  return static_cast<double>(Popcount(truth.bits() & predicted.bits())) /
         static_cast<double>(Popcount(predicted.bits()));
}

double SetRecall(const AttributeSet& truth, const AttributeSet& predicted) {
  if (truth.bits() == 0) return 1.0;
  return static_cast<double>(Popcount(truth.bits() & predicted.bits())) /
         static_cast<double>(Popcount(truth.bits()));
}

}  // namespace disc
