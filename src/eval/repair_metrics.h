#ifndef DISC_EVAL_REPAIR_METRICS_H_
#define DISC_EVAL_REPAIR_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/relation.h"
#include "distance/evaluator.h"

namespace disc {

/// Aggregate statistics comparing a cleaned relation against the dirty
/// original and the ground-truth clean relation.
struct RepairReport {
  /// Mean number of attributes modified per changed tuple.
  double mean_modified_attributes = 0;
  /// Mean adjustment cost Δ(dirty, repaired) over changed tuples — the
  /// "magnitude of the adjustment" of Figures 10(e)/(f).
  double mean_adjustment_cost = 0;
  /// Mean residual error Δ(repaired, truth) over all tuples.
  double mean_residual_error = 0;
  /// Number of tuples whose values changed.
  std::size_t tuples_changed = 0;
};

/// Attributes whose values differ between the two versions of row `row`.
AttributeSet ModifiedAttributes(const Relation& before, const Relation& after,
                                std::size_t row);

/// Builds a repair report. `truth` may equal `dirty` when no ground truth
/// is available (then `mean_residual_error` measures distance to dirty).
RepairReport EvaluateRepair(const Relation& dirty, const Relation& repaired,
                            const Relation& truth,
                            const DistanceEvaluator& evaluator);

}  // namespace disc

#endif  // DISC_EVAL_REPAIR_METRICS_H_
