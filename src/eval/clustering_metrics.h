#ifndef DISC_EVAL_CLUSTERING_METRICS_H_
#define DISC_EVAL_CLUSTERING_METRICS_H_

#include <vector>

namespace disc {

/// Pair-counting scores (paper §4.1.1): TP counts pairs clustered together
/// in both the prediction and the ground truth, FP pairs together only in
/// the prediction, FN pairs together only in the ground truth.
struct PairCountingScores {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};

/// Convention for noise labels (-1): every noise point is treated as its
/// own singleton cluster, so a noise point pairs with nothing. This matches
/// the usual evaluation of DBSCAN-style outputs.
PairCountingScores PairCounting(const std::vector<int>& predicted,
                                const std::vector<int>& truth);

/// Normalized Mutual Information with sqrt(H_pred · H_truth) normalization
/// (Nguyen, Epps & Bailey). Noise points are singletons as above.
double Nmi(const std::vector<int>& predicted, const std::vector<int>& truth);

/// Adjusted Rand Index (chance-corrected pair counting; same noise
/// convention). Ranges in [-1, 1]; 1 = identical partitions.
double Ari(const std::vector<int>& predicted, const std::vector<int>& truth);

}  // namespace disc

#endif  // DISC_EVAL_CLUSTERING_METRICS_H_
