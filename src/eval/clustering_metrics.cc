#include "eval/clustering_metrics.h"

#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "common/log.h"

namespace disc {

namespace {

/// Renumbers labels to 0..k-1, turning each noise point (-1) into its own
/// singleton cluster id.
std::vector<int> SingletonizeNoise(const std::vector<int>& labels) {
  std::vector<int> out(labels.size());
  std::unordered_map<int, int> remap;
  int next = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) {
      out[i] = next++;  // fresh singleton per noise point
    } else {
      auto [it, inserted] = remap.emplace(labels[i], next);
      if (inserted) ++next;
      out[i] = it->second;
    }
  }
  return out;
}

/// Contingency table between two labelings (both 0-based dense).
struct Contingency {
  std::vector<std::vector<std::int64_t>> table;
  std::vector<std::int64_t> row_sums;
  std::vector<std::int64_t> col_sums;
  std::int64_t total = 0;
};

Contingency BuildContingency(const std::vector<int>& a,
                             const std::vector<int>& b) {
  int ka = 0;
  int kb = 0;
  for (int x : a) ka = std::max(ka, x + 1);
  for (int x : b) kb = std::max(kb, x + 1);
  Contingency c;
  c.table.assign(static_cast<std::size_t>(ka),
                 std::vector<std::int64_t>(static_cast<std::size_t>(kb), 0));
  c.row_sums.assign(static_cast<std::size_t>(ka), 0);
  c.col_sums.assign(static_cast<std::size_t>(kb), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ++c.table[static_cast<std::size_t>(a[i])][static_cast<std::size_t>(b[i])];
    ++c.row_sums[static_cast<std::size_t>(a[i])];
    ++c.col_sums[static_cast<std::size_t>(b[i])];
    ++c.total;
  }
  return c;
}

double Choose2(std::int64_t n) {
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
}

/// True when the two labelings are comparable. A size mismatch is a
/// caller bug (labelings of different datasets); the metrics return their
/// zero value for it, but silently — hence the diagnostic here.
bool ComparableLabelings(const std::vector<int>& predicted,
                         const std::vector<int>& truth, const char* metric) {
  if (predicted.size() == truth.size()) return !predicted.empty();
  DISC_LOG(WARN)
      .Str("metric", metric)
      .Uint("predicted", predicted.size())
      .Uint("truth", truth.size())
      << "clustering metric called with mismatched label vectors";
  return false;
}

}  // namespace

PairCountingScores PairCounting(const std::vector<int>& predicted,
                                const std::vector<int>& truth) {
  PairCountingScores s;
  if (!ComparableLabelings(predicted, truth, "pair_counting")) return s;
  std::vector<int> p = SingletonizeNoise(predicted);
  std::vector<int> t = SingletonizeNoise(truth);
  Contingency c = BuildContingency(p, t);

  double tp = 0;  // pairs together in both
  for (const auto& row : c.table) {
    for (std::int64_t cell : row) tp += Choose2(cell);
  }
  double pred_pairs = 0;  // pairs together in prediction (tp + fp)
  for (std::int64_t rs : c.row_sums) pred_pairs += Choose2(rs);
  double truth_pairs = 0;  // pairs together in truth (tp + fn)
  for (std::int64_t cs : c.col_sums) truth_pairs += Choose2(cs);

  s.precision = pred_pairs > 0 ? tp / pred_pairs : 0;
  s.recall = truth_pairs > 0 ? tp / truth_pairs : 0;
  s.f1 = (s.precision + s.recall) > 0
             ? 2 * s.precision * s.recall / (s.precision + s.recall)
             : 0;
  return s;
}

double Nmi(const std::vector<int>& predicted, const std::vector<int>& truth) {
  if (!ComparableLabelings(predicted, truth, "nmi")) return 0;
  std::vector<int> p = SingletonizeNoise(predicted);
  std::vector<int> t = SingletonizeNoise(truth);
  Contingency c = BuildContingency(p, t);
  const double n = static_cast<double>(c.total);

  double mi = 0;
  for (std::size_t i = 0; i < c.table.size(); ++i) {
    for (std::size_t j = 0; j < c.table[i].size(); ++j) {
      std::int64_t nij = c.table[i][j];
      if (nij == 0) continue;
      double pij = static_cast<double>(nij) / n;
      double pi = static_cast<double>(c.row_sums[i]) / n;
      double pj = static_cast<double>(c.col_sums[j]) / n;
      mi += pij * std::log(pij / (pi * pj));
    }
  }
  double hp = 0;
  for (std::int64_t rs : c.row_sums) {
    if (rs == 0) continue;
    double pi = static_cast<double>(rs) / n;
    hp -= pi * std::log(pi);
  }
  double ht = 0;
  for (std::int64_t cs : c.col_sums) {
    if (cs == 0) continue;
    double pj = static_cast<double>(cs) / n;
    ht -= pj * std::log(pj);
  }
  if (hp <= 0 && ht <= 0) return 1.0;  // both partitions trivial & identical
  double denom = std::sqrt(hp * ht);
  if (denom <= 0) return 0;
  double nmi = mi / denom;
  return nmi < 0 ? 0 : (nmi > 1 ? 1 : nmi);
}

double Ari(const std::vector<int>& predicted, const std::vector<int>& truth) {
  if (!ComparableLabelings(predicted, truth, "ari")) return 0;
  std::vector<int> p = SingletonizeNoise(predicted);
  std::vector<int> t = SingletonizeNoise(truth);
  Contingency c = BuildContingency(p, t);

  double sum_cells = 0;
  for (const auto& row : c.table) {
    for (std::int64_t cell : row) sum_cells += Choose2(cell);
  }
  double sum_rows = 0;
  for (std::int64_t rs : c.row_sums) sum_rows += Choose2(rs);
  double sum_cols = 0;
  for (std::int64_t cs : c.col_sums) sum_cols += Choose2(cs);
  double all_pairs = Choose2(c.total);
  if (all_pairs <= 0) return 1.0;

  double expected = sum_rows * sum_cols / all_pairs;
  double max_index = 0.5 * (sum_rows + sum_cols);
  double denom = max_index - expected;
  if (std::fabs(denom) < 1e-12) {
    // Both partitions are all-singletons or one cluster: identical => 1.
    return sum_cells == expected ? 1.0 : 0.0;
  }
  return (sum_cells - expected) / denom;
}

}  // namespace disc
