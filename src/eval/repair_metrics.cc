#include "eval/repair_metrics.h"

namespace disc {

AttributeSet ModifiedAttributes(const Relation& before, const Relation& after,
                                std::size_t row) {
  AttributeSet modified;
  for (std::size_t a = 0; a < before.arity() && a < 64; ++a) {
    if (!(before[row][a] == after[row][a])) modified.insert(a);
  }
  return modified;
}

RepairReport EvaluateRepair(const Relation& dirty, const Relation& repaired,
                            const Relation& truth,
                            const DistanceEvaluator& evaluator) {
  RepairReport report;
  const std::size_t n = dirty.size();
  if (n == 0) return report;

  double sum_modified = 0;
  double sum_cost = 0;
  double sum_residual = 0;
  for (std::size_t row = 0; row < n; ++row) {
    AttributeSet modified = ModifiedAttributes(dirty, repaired, row);
    if (!modified.empty()) {
      ++report.tuples_changed;
      sum_modified += static_cast<double>(modified.size());
      sum_cost += evaluator.Distance(dirty[row], repaired[row]);
    }
    sum_residual += evaluator.Distance(repaired[row], truth[row]);
  }
  if (report.tuples_changed > 0) {
    report.mean_modified_attributes =
        sum_modified / static_cast<double>(report.tuples_changed);
    report.mean_adjustment_cost =
        sum_cost / static_cast<double>(report.tuples_changed);
  }
  report.mean_residual_error = sum_residual / static_cast<double>(n);
  return report;
}

}  // namespace disc
