#include "distance/columnar_simd.h"

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "distance/columnar.h"
#include "distance/columnar_internal.h"

#if !defined(DISC_SIMD_DISABLED) && (defined(__x86_64__) || defined(__amd64__))
#define DISC_SIMD_X86 1
#include <immintrin.h>
#endif

// This translation unit is compiled with -ffp-contract=off (see
// src/CMakeLists.txt): the canonical-order arithmetic below reproduces the
// scalar reference one rounding at a time (separate multiply and add), and
// auto-contraction to FMA would silently change those bits. The reject
// pre-passes use FMA *explicitly* where the kCertainRejectSlack argument
// makes any evaluation order safe.
//
// Intrinsics are enabled per function via the target attribute — the TU
// itself builds at the x86-64 baseline, so a binary containing AVX2 code
// still runs (and is tested, via the DISC_SIMD override) on SSE2-only
// machines. No lambdas or templates inside target functions: the attribute
// does not propagate to them.

namespace disc::simd {

#ifdef DISC_SIMD_X86

namespace {

namespace ci = disc::columnar_internal;

#define DISC_AVX2 __attribute__((target("avx2,fma")))

// ---------------------------------------------------------------- helpers

DISC_AVX2 inline __m256d Abs256(__m256d x) {
  return _mm256_and_pd(
      x, _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL)));
}

inline __m128d Abs128(__m128d x) {
  return _mm_and_pd(
      x, _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL)));
}

DISC_AVX2 inline double HSum256(__m256d x) {
  __m128d lo = _mm256_castpd256_pd128(x);
  __m128d hi = _mm256_extractf128_pd(x, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

DISC_AVX2 inline double HMax256(__m256d x) {
  __m128d lo = _mm256_castpd256_pd128(x);
  __m128d hi = _mm256_extractf128_pd(x, 1);
  lo = _mm_max_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_max_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

/// Bitmask of the rows [i, i+lanes) that are real (< end).
inline unsigned ValidMask(std::size_t i, std::size_t end, unsigned lanes) {
  const std::size_t left = end - i;
  return left >= lanes ? ((1u << lanes) - 1)
                       : ((1u << static_cast<unsigned>(left)) - 1);
}

// ------------------------------------------------- AVX2 batch ε-scans
//
// Shape shared by all three norms: an unaligned scalar head (the full
// reference kernel, so head rows behave identically), then 4-row blocks.
// Each block runs the variance-ordered reject pre-pass across lanes with a
// sticky per-lane reject mask — once a lane's (slackened) partial sum
// crosses the threshold it stays rejected even if later terms are NaN —
// and breaks out early when every *valid* lane has rejected. Survivors are
// recomputed by the canonical scalar recurrence, so reported rows and
// distances are bit-identical to the scalar path (pad lanes beyond n hold
// zeros: always load-safe, masked out of verdicts and counts).

DISC_AVX2 void ScanL2Avx2(const ColumnarView& v, const double* q,
                          double epsilon, std::size_t begin, std::size_t end,
                          HitFn hit, void* ctx, std::uint64_t* cr) {
  const bool unit = v.unit_scales();
  const double thr_sq = epsilon * epsilon;
  const double reject = thr_sq * ci::kCertainRejectSlack;
  std::size_t i = begin;
  for (; i < end && (i & 3) != 0; ++i) {
    double d = ci::RowWithinL2(v, q, i, thr_sq, reject, unit, cr);
    if (d <= epsilon) hit(ctx, i, d);
  }
  const std::span<const std::size_t> order = v.scan_order();
  const std::size_t m = v.arity();
  const __m256d vreject = _mm256_set1_pd(reject);
  for (; i < end; i += 4) {
    const unsigned valid = ValidMask(i, end, 4);
    __m256d acc = _mm256_setzero_pd();
    __m256d rejected = _mm256_setzero_pd();
    unsigned rej = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t a = order[k];
      __m256d d = Abs256(_mm256_sub_pd(_mm256_set1_pd(q[a]),
                                       _mm256_load_pd(v.column(a) + i)));
      if (!unit) d = _mm256_div_pd(d, _mm256_set1_pd(v.scale(a)));
      acc = _mm256_fmadd_pd(d, d, acc);
      rejected =
          _mm256_or_pd(rejected, _mm256_cmp_pd(acc, vreject, _CMP_GT_OQ));
      rej = static_cast<unsigned>(_mm256_movemask_pd(rejected));
      if ((rej & valid) == valid) break;
    }
    *cr += std::popcount(rej & valid);
    unsigned live = ~rej & valid;
    while (live != 0) {
      const auto l = static_cast<unsigned>(std::countr_zero(live));
      live &= live - 1;
      double d = ci::CanonicalWithinL2(v, q, i + l, thr_sq, unit);
      if (d <= epsilon) hit(ctx, i + l, d);
    }
  }
}

DISC_AVX2 void ScanL1Avx2(const ColumnarView& v, const double* q,
                          double epsilon, std::size_t begin, std::size_t end,
                          HitFn hit, void* ctx, std::uint64_t* cr) {
  const bool unit = v.unit_scales();
  const double reject = epsilon * ci::kCertainRejectSlack;
  std::size_t i = begin;
  for (; i < end && (i & 3) != 0; ++i) {
    double d = ci::RowWithinL1(v, q, i, epsilon, reject, unit, cr);
    if (d <= epsilon) hit(ctx, i, d);
  }
  const std::span<const std::size_t> order = v.scan_order();
  const std::size_t m = v.arity();
  const __m256d vreject = _mm256_set1_pd(reject);
  for (; i < end; i += 4) {
    const unsigned valid = ValidMask(i, end, 4);
    __m256d acc = _mm256_setzero_pd();
    __m256d rejected = _mm256_setzero_pd();
    unsigned rej = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t a = order[k];
      __m256d d = Abs256(_mm256_sub_pd(_mm256_set1_pd(q[a]),
                                       _mm256_load_pd(v.column(a) + i)));
      if (!unit) d = _mm256_div_pd(d, _mm256_set1_pd(v.scale(a)));
      acc = _mm256_add_pd(acc, d);
      rejected =
          _mm256_or_pd(rejected, _mm256_cmp_pd(acc, vreject, _CMP_GT_OQ));
      rej = static_cast<unsigned>(_mm256_movemask_pd(rejected));
      if ((rej & valid) == valid) break;
    }
    *cr += std::popcount(rej & valid);
    unsigned live = ~rej & valid;
    while (live != 0) {
      const auto l = static_cast<unsigned>(std::countr_zero(live));
      live &= live - 1;
      double d = ci::CanonicalWithinL1(v, q, i + l, epsilon, unit);
      if (d <= epsilon) hit(ctx, i + l, d);
    }
  }
}

DISC_AVX2 void ScanLInfAvx2(const ColumnarView& v, const double* q,
                            double epsilon, std::size_t begin, std::size_t end,
                            HitFn hit, void* ctx, std::uint64_t* cr) {
  const bool unit = v.unit_scales();
  std::size_t i = begin;
  for (; i < end && (i & 3) != 0; ++i) {
    double d = ci::RowWithinLInf(v, q, i, epsilon, unit, cr);
    if (d <= epsilon) hit(ctx, i, d);
  }
  const std::span<const std::size_t> order = v.scan_order();
  const std::size_t m = v.arity();
  const __m256d vthr = _mm256_set1_pd(epsilon);
  for (; i < end; i += 4) {
    const unsigned valid = ValidMask(i, end, 4);
    // L∞ needs no recompute: max is order-independent, every lane value is
    // exact. maxpd(d, acc) keeps acc when d is NaN — the std::max(acc, d)
    // semantics of the scalar kernel.
    __m256d acc = _mm256_setzero_pd();
    __m256d rejected = _mm256_setzero_pd();
    unsigned rej = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t a = order[k];
      __m256d d = Abs256(_mm256_sub_pd(_mm256_set1_pd(q[a]),
                                       _mm256_load_pd(v.column(a) + i)));
      if (!unit) d = _mm256_div_pd(d, _mm256_set1_pd(v.scale(a)));
      rejected = _mm256_or_pd(rejected, _mm256_cmp_pd(d, vthr, _CMP_GT_OQ));
      acc = _mm256_max_pd(d, acc);
      rej = static_cast<unsigned>(_mm256_movemask_pd(rejected));
      if ((rej & valid) == valid) break;
    }
    *cr += std::popcount(rej & valid);
    unsigned live = ~rej & valid;
    if (live != 0) {
      double lanes[4];
      _mm256_storeu_pd(lanes, acc);
      while (live != 0) {
        const auto l = static_cast<unsigned>(std::countr_zero(live));
        live &= live - 1;
        if (lanes[l] <= epsilon) hit(ctx, i + l, lanes[l]);
      }
    }
  }
}

// ------------------------------------------------- SSE2 batch ε-scans
//
// Same structure at 2 lanes, no FMA (separate multiply/add — also safe
// under the slack argument). SSE2 is the x86-64 baseline, so these need no
// target attribute.

void ScanL2Sse2(const ColumnarView& v, const double* q, double epsilon,
                std::size_t begin, std::size_t end, HitFn hit, void* ctx,
                std::uint64_t* cr) {
  const bool unit = v.unit_scales();
  const double thr_sq = epsilon * epsilon;
  const double reject = thr_sq * ci::kCertainRejectSlack;
  std::size_t i = begin;
  for (; i < end && (i & 1) != 0; ++i) {
    double d = ci::RowWithinL2(v, q, i, thr_sq, reject, unit, cr);
    if (d <= epsilon) hit(ctx, i, d);
  }
  const std::span<const std::size_t> order = v.scan_order();
  const std::size_t m = v.arity();
  const __m128d vreject = _mm_set1_pd(reject);
  for (; i < end; i += 2) {
    const unsigned valid = ValidMask(i, end, 2);
    __m128d acc = _mm_setzero_pd();
    __m128d rejected = _mm_setzero_pd();
    unsigned rej = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t a = order[k];
      __m128d d =
          Abs128(_mm_sub_pd(_mm_set1_pd(q[a]), _mm_load_pd(v.column(a) + i)));
      if (!unit) d = _mm_div_pd(d, _mm_set1_pd(v.scale(a)));
      acc = _mm_add_pd(acc, _mm_mul_pd(d, d));
      rejected = _mm_or_pd(rejected, _mm_cmpgt_pd(acc, vreject));
      rej = static_cast<unsigned>(_mm_movemask_pd(rejected));
      if ((rej & valid) == valid) break;
    }
    *cr += std::popcount(rej & valid);
    unsigned live = ~rej & valid;
    while (live != 0) {
      const auto l = static_cast<unsigned>(std::countr_zero(live));
      live &= live - 1;
      double d = ci::CanonicalWithinL2(v, q, i + l, thr_sq, unit);
      if (d <= epsilon) hit(ctx, i + l, d);
    }
  }
}

void ScanL1Sse2(const ColumnarView& v, const double* q, double epsilon,
                std::size_t begin, std::size_t end, HitFn hit, void* ctx,
                std::uint64_t* cr) {
  const bool unit = v.unit_scales();
  const double reject = epsilon * ci::kCertainRejectSlack;
  std::size_t i = begin;
  for (; i < end && (i & 1) != 0; ++i) {
    double d = ci::RowWithinL1(v, q, i, epsilon, reject, unit, cr);
    if (d <= epsilon) hit(ctx, i, d);
  }
  const std::span<const std::size_t> order = v.scan_order();
  const std::size_t m = v.arity();
  const __m128d vreject = _mm_set1_pd(reject);
  for (; i < end; i += 2) {
    const unsigned valid = ValidMask(i, end, 2);
    __m128d acc = _mm_setzero_pd();
    __m128d rejected = _mm_setzero_pd();
    unsigned rej = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t a = order[k];
      __m128d d =
          Abs128(_mm_sub_pd(_mm_set1_pd(q[a]), _mm_load_pd(v.column(a) + i)));
      if (!unit) d = _mm_div_pd(d, _mm_set1_pd(v.scale(a)));
      acc = _mm_add_pd(acc, d);
      rejected = _mm_or_pd(rejected, _mm_cmpgt_pd(acc, vreject));
      rej = static_cast<unsigned>(_mm_movemask_pd(rejected));
      if ((rej & valid) == valid) break;
    }
    *cr += std::popcount(rej & valid);
    unsigned live = ~rej & valid;
    while (live != 0) {
      const auto l = static_cast<unsigned>(std::countr_zero(live));
      live &= live - 1;
      double d = ci::CanonicalWithinL1(v, q, i + l, epsilon, unit);
      if (d <= epsilon) hit(ctx, i + l, d);
    }
  }
}

void ScanLInfSse2(const ColumnarView& v, const double* q, double epsilon,
                  std::size_t begin, std::size_t end, HitFn hit, void* ctx,
                  std::uint64_t* cr) {
  const bool unit = v.unit_scales();
  std::size_t i = begin;
  for (; i < end && (i & 1) != 0; ++i) {
    double d = ci::RowWithinLInf(v, q, i, epsilon, unit, cr);
    if (d <= epsilon) hit(ctx, i, d);
  }
  const std::span<const std::size_t> order = v.scan_order();
  const std::size_t m = v.arity();
  const __m128d vthr = _mm_set1_pd(epsilon);
  for (; i < end; i += 2) {
    const unsigned valid = ValidMask(i, end, 2);
    __m128d acc = _mm_setzero_pd();
    __m128d rejected = _mm_setzero_pd();
    unsigned rej = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t a = order[k];
      __m128d d =
          Abs128(_mm_sub_pd(_mm_set1_pd(q[a]), _mm_load_pd(v.column(a) + i)));
      if (!unit) d = _mm_div_pd(d, _mm_set1_pd(v.scale(a)));
      rejected = _mm_or_pd(rejected, _mm_cmpgt_pd(d, vthr));
      acc = _mm_max_pd(d, acc);
      rej = static_cast<unsigned>(_mm_movemask_pd(rejected));
      if ((rej & valid) == valid) break;
    }
    *cr += std::popcount(rej & valid);
    unsigned live = ~rej & valid;
    if (live != 0) {
      double lanes[2];
      _mm_storeu_pd(lanes, acc);
      while (live != 0) {
        const auto l = static_cast<unsigned>(std::countr_zero(live));
        live &= live - 1;
        if (lanes[l] <= epsilon) hit(ctx, i + l, lanes[l]);
      }
    }
  }
}

// ---------------------------------------------- full-distance batch fills
//
// No pre-pass and no recompute: the per-row sum runs in canonical
// attribute order with separate multiply and add — exactly one rounding
// per operation, in the scalar sequence — and sqrt is correctly rounded,
// so vectorizing across rows is bit-identical by construction (including
// NaN/±inf propagation). The scalar-vs-SIMD distinction is unobservable.

DISC_AVX2 void FillL2Avx2(const ColumnarView& v, const double* q,
                          std::size_t begin, std::size_t end, double* out) {
  const bool unit = v.unit_scales();
  const std::size_t m = v.arity();
  std::size_t i = begin;
  for (; i < end && (i & 3) != 0; ++i) {
    out[i - begin] = ci::CanonicalDistance(v, q, i, unit);
  }
  for (; i < end; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t a = 0; a < m; ++a) {
      __m256d d = Abs256(_mm256_sub_pd(_mm256_set1_pd(q[a]),
                                       _mm256_load_pd(v.column(a) + i)));
      if (!unit) d = _mm256_div_pd(d, _mm256_set1_pd(v.scale(a)));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    acc = _mm256_sqrt_pd(acc);
    if (end - i >= 4) {
      _mm256_storeu_pd(out + (i - begin), acc);
    } else {
      double lanes[4];
      _mm256_storeu_pd(lanes, acc);
      for (std::size_t l = 0; i + l < end; ++l) out[i - begin + l] = lanes[l];
    }
  }
}

DISC_AVX2 void FillL1Avx2(const ColumnarView& v, const double* q,
                          std::size_t begin, std::size_t end, double* out) {
  const bool unit = v.unit_scales();
  const std::size_t m = v.arity();
  std::size_t i = begin;
  for (; i < end && (i & 3) != 0; ++i) {
    out[i - begin] = ci::CanonicalDistance(v, q, i, unit);
  }
  for (; i < end; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t a = 0; a < m; ++a) {
      __m256d d = Abs256(_mm256_sub_pd(_mm256_set1_pd(q[a]),
                                       _mm256_load_pd(v.column(a) + i)));
      if (!unit) d = _mm256_div_pd(d, _mm256_set1_pd(v.scale(a)));
      acc = _mm256_add_pd(acc, d);
    }
    if (end - i >= 4) {
      _mm256_storeu_pd(out + (i - begin), acc);
    } else {
      double lanes[4];
      _mm256_storeu_pd(lanes, acc);
      for (std::size_t l = 0; i + l < end; ++l) out[i - begin + l] = lanes[l];
    }
  }
}

DISC_AVX2 void FillLInfAvx2(const ColumnarView& v, const double* q,
                            std::size_t begin, std::size_t end, double* out) {
  const bool unit = v.unit_scales();
  const std::size_t m = v.arity();
  std::size_t i = begin;
  for (; i < end && (i & 3) != 0; ++i) {
    out[i - begin] = ci::CanonicalDistance(v, q, i, unit);
  }
  for (; i < end; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t a = 0; a < m; ++a) {
      __m256d d = Abs256(_mm256_sub_pd(_mm256_set1_pd(q[a]),
                                       _mm256_load_pd(v.column(a) + i)));
      if (!unit) d = _mm256_div_pd(d, _mm256_set1_pd(v.scale(a)));
      acc = _mm256_max_pd(d, acc);
    }
    if (end - i >= 4) {
      _mm256_storeu_pd(out + (i - begin), acc);
    } else {
      double lanes[4];
      _mm256_storeu_pd(lanes, acc);
      for (std::size_t l = 0; i + l < end; ++l) out[i - begin + l] = lanes[l];
    }
  }
}

void FillL2Sse2(const ColumnarView& v, const double* q, std::size_t begin,
                std::size_t end, double* out) {
  const bool unit = v.unit_scales();
  const std::size_t m = v.arity();
  std::size_t i = begin;
  for (; i < end && (i & 1) != 0; ++i) {
    out[i - begin] = ci::CanonicalDistance(v, q, i, unit);
  }
  for (; i < end; i += 2) {
    __m128d acc = _mm_setzero_pd();
    for (std::size_t a = 0; a < m; ++a) {
      __m128d d =
          Abs128(_mm_sub_pd(_mm_set1_pd(q[a]), _mm_load_pd(v.column(a) + i)));
      if (!unit) d = _mm_div_pd(d, _mm_set1_pd(v.scale(a)));
      acc = _mm_add_pd(acc, _mm_mul_pd(d, d));
    }
    acc = _mm_sqrt_pd(acc);
    if (end - i >= 2) {
      _mm_storeu_pd(out + (i - begin), acc);
    } else {
      out[i - begin] = _mm_cvtsd_f64(acc);
    }
  }
}

void FillL1Sse2(const ColumnarView& v, const double* q, std::size_t begin,
                std::size_t end, double* out) {
  const bool unit = v.unit_scales();
  const std::size_t m = v.arity();
  std::size_t i = begin;
  for (; i < end && (i & 1) != 0; ++i) {
    out[i - begin] = ci::CanonicalDistance(v, q, i, unit);
  }
  for (; i < end; i += 2) {
    __m128d acc = _mm_setzero_pd();
    for (std::size_t a = 0; a < m; ++a) {
      __m128d d =
          Abs128(_mm_sub_pd(_mm_set1_pd(q[a]), _mm_load_pd(v.column(a) + i)));
      if (!unit) d = _mm_div_pd(d, _mm_set1_pd(v.scale(a)));
      acc = _mm_add_pd(acc, d);
    }
    if (end - i >= 2) {
      _mm_storeu_pd(out + (i - begin), acc);
    } else {
      out[i - begin] = _mm_cvtsd_f64(acc);
    }
  }
}

void FillLInfSse2(const ColumnarView& v, const double* q, std::size_t begin,
                  std::size_t end, double* out) {
  const bool unit = v.unit_scales();
  const std::size_t m = v.arity();
  std::size_t i = begin;
  for (; i < end && (i & 1) != 0; ++i) {
    out[i - begin] = ci::CanonicalDistance(v, q, i, unit);
  }
  for (; i < end; i += 2) {
    __m128d acc = _mm_setzero_pd();
    for (std::size_t a = 0; a < m; ++a) {
      __m128d d =
          Abs128(_mm_sub_pd(_mm_set1_pd(q[a]), _mm_load_pd(v.column(a) + i)));
      if (!unit) d = _mm_div_pd(d, _mm_set1_pd(v.scale(a)));
      acc = _mm_max_pd(d, acc);
    }
    if (end - i >= 2) {
      _mm_storeu_pd(out + (i - begin), acc);
    } else {
      out[i - begin] = _mm_cvtsd_f64(acc);
    }
  }
}

// ------------------------------------------ per-attribute batch fills

DISC_AVX2 void FillAttrAvx2(const double* col, double q, double scale,
                            std::size_t n, double* out) {
  const __m256d vq = _mm256_set1_pd(q);
  const __m256d vs = _mm256_set1_pd(scale);
  const bool unit = scale == 1.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d d = Abs256(_mm256_sub_pd(vq, _mm256_load_pd(col + i)));
    if (!unit) d = _mm256_div_pd(d, vs);
    _mm256_storeu_pd(out + i, d);
  }
  for (; i < n; ++i) {
    out[i] = unit ? std::fabs(q - col[i]) : std::fabs(q - col[i]) / scale;
  }
}

void FillAttrSse2(const double* col, double q, double scale, std::size_t n,
                  double* out) {
  const __m128d vq = _mm_set1_pd(q);
  const __m128d vs = _mm_set1_pd(scale);
  const bool unit = scale == 1.0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d d = Abs128(_mm_sub_pd(vq, _mm_load_pd(col + i)));
    if (!unit) d = _mm_div_pd(d, vs);
    _mm_storeu_pd(out + i, d);
  }
  for (; i < n; ++i) {
    out[i] = unit ? std::fabs(q - col[i]) : std::fabs(q - col[i]) / scale;
  }
}

// --------------------------------------------- single-row gather pre-pass
//
// One row, many attributes: lanes span attributes via i64 gathers over the
// precomputed column offsets (a · padded_rows). The loop handles full
// 4-attribute blocks vectorized and the final < 4 attributes scalar — the
// pre-pass sum is order-free under the slack argument, so mixing is fine.
// Never the source of an accepted value except for L∞, where every term is
// exact and max is order-independent.

DISC_AVX2 Verdict GatherPrepassAvx2(const ColumnarView& v, const double* q,
                                    const std::size_t* order,
                                    const std::size_t* offs, std::size_t count,
                                    std::size_t row, double threshold,
                                    double* exact_out) {
  const bool unit = v.unit_scales();
  const double* base = v.column(0) + row;
  const double* scales = v.scales();
  switch (v.norm()) {
    case LpNorm::kL2: {
      const double reject =
          threshold * threshold * ci::kCertainRejectSlack;
      __m256d acc = _mm256_setzero_pd();
      std::size_t k = 0;
      for (; k + 4 <= count; k += 4) {
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(offs + k));
        const __m256i aidx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(order + k));
        __m256d d = Abs256(_mm256_sub_pd(_mm256_i64gather_pd(q, aidx, 8),
                                         _mm256_i64gather_pd(base, idx, 8)));
        if (!unit) d = _mm256_div_pd(d, _mm256_i64gather_pd(scales, aidx, 8));
        acc = _mm256_fmadd_pd(d, d, acc);
        if (HSum256(acc) > reject) return Verdict::kCertainReject;
      }
      double tail = 0;
      for (; k < count; ++k) {
        const std::size_t a = order[k];
        double d = std::fabs(q[a] - base[offs[k]]);
        if (!unit) d /= scales[a];
        tail += d * d;
      }
      return HSum256(acc) + tail > reject ? Verdict::kCertainReject
                                          : Verdict::kMaybeWithin;
    }
    case LpNorm::kL1: {
      const double reject = threshold * ci::kCertainRejectSlack;
      __m256d acc = _mm256_setzero_pd();
      std::size_t k = 0;
      for (; k + 4 <= count; k += 4) {
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(offs + k));
        const __m256i aidx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(order + k));
        __m256d d = Abs256(_mm256_sub_pd(_mm256_i64gather_pd(q, aidx, 8),
                                         _mm256_i64gather_pd(base, idx, 8)));
        if (!unit) d = _mm256_div_pd(d, _mm256_i64gather_pd(scales, aidx, 8));
        acc = _mm256_add_pd(acc, d);
        if (HSum256(acc) > reject) return Verdict::kCertainReject;
      }
      double tail = 0;
      for (; k < count; ++k) {
        const std::size_t a = order[k];
        double d = std::fabs(q[a] - base[offs[k]]);
        if (!unit) d /= scales[a];
        tail += d;
      }
      return HSum256(acc) + tail > reject ? Verdict::kCertainReject
                                          : Verdict::kMaybeWithin;
    }
    case LpNorm::kLInf: {
      const __m256d vthr = _mm256_set1_pd(threshold);
      __m256d acc = _mm256_setzero_pd();
      std::size_t k = 0;
      for (; k + 4 <= count; k += 4) {
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(offs + k));
        const __m256i aidx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(order + k));
        __m256d d = Abs256(_mm256_sub_pd(_mm256_i64gather_pd(q, aidx, 8),
                                         _mm256_i64gather_pd(base, idx, 8)));
        if (!unit) d = _mm256_div_pd(d, _mm256_i64gather_pd(scales, aidx, 8));
        if (_mm256_movemask_pd(_mm256_cmp_pd(d, vthr, _CMP_GT_OQ)) != 0) {
          return Verdict::kCertainReject;
        }
        acc = _mm256_max_pd(d, acc);
      }
      double best = HMax256(acc);  // lanes are NaN-free: maxpd dropped them
      for (; k < count; ++k) {
        const std::size_t a = order[k];
        double d = std::fabs(q[a] - base[offs[k]]);
        if (!unit) d /= scales[a];
        if (d > threshold) return Verdict::kCertainReject;
        best = std::max(best, d);
      }
      *exact_out = best;
      return Verdict::kExact;
    }
  }
  return Verdict::kUnsupported;
}

// ----------------------------------------------- row-major point pre-pass

DISC_AVX2 Verdict PointPrepassAvx2(const double* q, const double* p,
                                   std::size_t m, LpNorm norm,
                                   double threshold, double* exact_out) {
  switch (norm) {
    case LpNorm::kL2: {
      const double reject =
          threshold * threshold * ci::kCertainRejectSlack;
      __m256d acc = _mm256_setzero_pd();
      std::size_t k = 0;
      for (; k + 4 <= m; k += 4) {
        __m256d d = Abs256(
            _mm256_sub_pd(_mm256_loadu_pd(q + k), _mm256_loadu_pd(p + k)));
        acc = _mm256_fmadd_pd(d, d, acc);
      }
      double tail = 0;
      for (; k < m; ++k) {
        const double d = std::fabs(q[k] - p[k]);
        tail += d * d;
      }
      return HSum256(acc) + tail > reject ? Verdict::kCertainReject
                                          : Verdict::kMaybeWithin;
    }
    case LpNorm::kL1: {
      const double reject = threshold * ci::kCertainRejectSlack;
      __m256d acc = _mm256_setzero_pd();
      std::size_t k = 0;
      for (; k + 4 <= m; k += 4) {
        __m256d d = Abs256(
            _mm256_sub_pd(_mm256_loadu_pd(q + k), _mm256_loadu_pd(p + k)));
        acc = _mm256_add_pd(acc, d);
      }
      double tail = 0;
      for (; k < m; ++k) tail += std::fabs(q[k] - p[k]);
      return HSum256(acc) + tail > reject ? Verdict::kCertainReject
                                          : Verdict::kMaybeWithin;
    }
    case LpNorm::kLInf: {
      const __m256d vthr = _mm256_set1_pd(threshold);
      __m256d acc = _mm256_setzero_pd();
      std::size_t k = 0;
      for (; k + 4 <= m; k += 4) {
        __m256d d = Abs256(
            _mm256_sub_pd(_mm256_loadu_pd(q + k), _mm256_loadu_pd(p + k)));
        if (_mm256_movemask_pd(_mm256_cmp_pd(d, vthr, _CMP_GT_OQ)) != 0) {
          return Verdict::kCertainReject;
        }
        acc = _mm256_max_pd(d, acc);
      }
      double best = HMax256(acc);
      for (; k < m; ++k) {
        const double d = std::fabs(q[k] - p[k]);
        if (d > threshold) return Verdict::kCertainReject;
        best = std::max(best, d);
      }
      *exact_out = best;
      return Verdict::kExact;
    }
  }
  return Verdict::kUnsupported;
}

#undef DISC_AVX2

}  // namespace

#endif  // DISC_SIMD_X86

// ------------------------------------------------------- dispatch surface

bool ScanWithin(SimdTier tier, const ColumnarView& v, const double* q,
                double epsilon, std::size_t begin, std::size_t end, HitFn hit,
                void* ctx, ScanDelta* delta) {
#ifdef DISC_SIMD_X86
  if (tier == SimdTier::kScalar) return false;
  std::uint64_t cr = 0;
  if (tier == SimdTier::kAvx2) {
    switch (v.norm()) {
      case LpNorm::kL2:
        ScanL2Avx2(v, q, epsilon, begin, end, hit, ctx, &cr);
        break;
      case LpNorm::kL1:
        ScanL1Avx2(v, q, epsilon, begin, end, hit, ctx, &cr);
        break;
      case LpNorm::kLInf:
        ScanLInfAvx2(v, q, epsilon, begin, end, hit, ctx, &cr);
        break;
    }
  } else {
    switch (v.norm()) {
      case LpNorm::kL2:
        ScanL2Sse2(v, q, epsilon, begin, end, hit, ctx, &cr);
        break;
      case LpNorm::kL1:
        ScanL1Sse2(v, q, epsilon, begin, end, hit, ctx, &cr);
        break;
      case LpNorm::kLInf:
        ScanLInfSse2(v, q, epsilon, begin, end, hit, ctx, &cr);
        break;
    }
  }
  delta->rows_scanned += end - begin;
  delta->certain_rejects += cr;
  return true;
#else
  (void)tier;
  (void)v;
  (void)q;
  (void)epsilon;
  (void)begin;
  (void)end;
  (void)hit;
  (void)ctx;
  (void)delta;
  return false;
#endif
}

bool FillDistances(SimdTier tier, const ColumnarView& v, const double* q,
                   std::size_t begin, std::size_t end, double* out) {
#ifdef DISC_SIMD_X86
  if (tier == SimdTier::kScalar) return false;
  if (tier == SimdTier::kAvx2) {
    switch (v.norm()) {
      case LpNorm::kL2:
        FillL2Avx2(v, q, begin, end, out);
        return true;
      case LpNorm::kL1:
        FillL1Avx2(v, q, begin, end, out);
        return true;
      case LpNorm::kLInf:
        FillLInfAvx2(v, q, begin, end, out);
        return true;
    }
    return false;
  }
  switch (v.norm()) {
    case LpNorm::kL2:
      FillL2Sse2(v, q, begin, end, out);
      return true;
    case LpNorm::kL1:
      FillL1Sse2(v, q, begin, end, out);
      return true;
    case LpNorm::kLInf:
      FillLInfSse2(v, q, begin, end, out);
      return true;
  }
  return false;
#else
  (void)tier;
  (void)v;
  (void)q;
  (void)begin;
  (void)end;
  (void)out;
  return false;
#endif
}

bool FillAttributeDistances(SimdTier tier, const ColumnarView& v, double q_a,
                            std::size_t a, double* out) {
#ifdef DISC_SIMD_X86
  if (tier == SimdTier::kScalar) return false;
  if (tier == SimdTier::kAvx2) {
    FillAttrAvx2(v.column(a), q_a, v.scale(a), v.rows(), out);
  } else {
    FillAttrSse2(v.column(a), q_a, v.scale(a), v.rows(), out);
  }
  return true;
#else
  (void)tier;
  (void)v;
  (void)q_a;
  (void)a;
  (void)out;
  return false;
#endif
}

Verdict DistanceWithinPrepass(SimdTier tier, const ColumnarView& v,
                              const double* q, std::size_t row,
                              double threshold, double* exact_out) {
#ifdef DISC_SIMD_X86
  if (tier != SimdTier::kAvx2 || v.arity() < kGatherMinArity) {
    return Verdict::kUnsupported;
  }
  return GatherPrepassAvx2(v, q, v.scan_order().data(),
                           v.scan_offsets().data(), v.arity(), row, threshold,
                           exact_out);
#else
  (void)tier;
  (void)v;
  (void)q;
  (void)row;
  (void)threshold;
  (void)exact_out;
  return Verdict::kUnsupported;
#endif
}

Verdict DistanceOnWithinPrepass(SimdTier tier, const ColumnarView& v,
                                const double* q, std::uint64_t bits,
                                std::size_t row, double threshold,
                                double* exact_out) {
#ifdef DISC_SIMD_X86
  if (tier != SimdTier::kAvx2 ||
      static_cast<std::size_t>(std::popcount(bits)) < kGatherMinArity) {
    return Verdict::kUnsupported;
  }
  std::size_t order[64];
  std::size_t offs[64];
  std::size_t count = 0;
  const std::size_t stride = v.padded_rows();
  for (; bits != 0; bits &= bits - 1) {
    const auto a = static_cast<std::size_t>(std::countr_zero(bits));
    order[count] = a;
    offs[count] = a * stride;
    ++count;
  }
  return GatherPrepassAvx2(v, q, order, offs, count, row, threshold,
                           exact_out);
#else
  (void)tier;
  (void)v;
  (void)q;
  (void)bits;
  (void)row;
  (void)threshold;
  (void)exact_out;
  return Verdict::kUnsupported;
#endif
}

Verdict PointWithinPrepass(SimdTier tier, const double* q, const double* p,
                           std::size_t m, LpNorm norm, double threshold,
                           double* exact_out) {
#ifdef DISC_SIMD_X86
  if (tier != SimdTier::kAvx2 || m < kPointMinArity) {
    return Verdict::kUnsupported;
  }
  return PointPrepassAvx2(q, p, m, norm, threshold, exact_out);
#else
  (void)tier;
  (void)q;
  (void)p;
  (void)m;
  (void)norm;
  (void)threshold;
  (void)exact_out;
  return Verdict::kUnsupported;
#endif
}

}  // namespace disc::simd
