#ifndef DISC_DISTANCE_COLUMNAR_INTERNAL_H_
#define DISC_DISTANCE_COLUMNAR_INTERNAL_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "distance/columnar.h"

/// Scalar per-row kernels shared by the reference path (columnar.cc) and
/// the vector tier (columnar_simd.cc), which runs them for unaligned
/// head/tail rows and for the canonical recompute of pre-pass survivors.
/// Internal to the distance library — not part of the public surface.
namespace disc::columnar_internal {

/// Multiplicative slack for the variance-ordered reject pass. Summing m ≤ 64
/// non-negative terms in any order — including the fused multiply-adds and
/// lane-parallel partial sums of the vector tier — differs from the
/// canonical-order sum by a relative error of at most (m−1)·ε ≈ 1.4e-14, so
/// a reordered partial sum beyond threshold·(1 + 1e-12) proves the canonical
/// sum is beyond the threshold too: every fast pass can only reject pairs
/// the scalar reference also rejects. (At threshold 0 the slack degenerates
/// to 0, which is still exact: non-negative sums are order-independently
/// zero or positive.)
inline constexpr double kCertainRejectSlack = 1.0 + 1e-12;

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Canonical full distance — the exact arithmetic of FlatKernel::Distance,
/// factored out so the vector tier's scalar tails stay bit-identical.
inline double CanonicalDistance(const ColumnarView& v, const double* q,
                                std::size_t row, bool unit) {
  const std::size_t m = v.arity();
  switch (v.norm()) {
    case LpNorm::kL2: {
      double acc = 0;
      for (std::size_t a = 0; a < m; ++a) {
        double d = std::fabs(q[a] - v.column(a)[row]);
        if (!unit) d /= v.scale(a);
        acc += d * d;
      }
      return std::sqrt(acc);
    }
    case LpNorm::kL1: {
      double acc = 0;
      for (std::size_t a = 0; a < m; ++a) {
        double d = std::fabs(q[a] - v.column(a)[row]);
        if (!unit) d /= v.scale(a);
        acc += d;
      }
      return acc;
    }
    case LpNorm::kLInf: {
      double acc = 0;
      for (std::size_t a = 0; a < m; ++a) {
        double d = std::fabs(q[a] - v.column(a)[row]);
        if (!unit) d /= v.scale(a);
        acc = std::max(acc, d);
      }
      return acc;
    }
  }
  return 0;
}

/// Canonical-order threshold recompute (no reject pre-pass): the exact
/// LpAccumulator recurrence with the threshold check after every add and a
/// single sqrt on accept. Run on rows a certain-reject pre-pass could not
/// dismiss.
inline double CanonicalWithinL2(const ColumnarView& v, const double* q,
                                std::size_t row, double thr_sq, bool unit) {
  double acc = 0;
  const std::size_t m = v.arity();
  for (std::size_t a = 0; a < m; ++a) {
    double d = std::fabs(q[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    acc += d * d;
    if (acc > thr_sq) return kInf;
  }
  return std::sqrt(acc);
}

inline double CanonicalWithinL1(const ColumnarView& v, const double* q,
                                std::size_t row, double threshold, bool unit) {
  double acc = 0;
  const std::size_t m = v.arity();
  for (std::size_t a = 0; a < m; ++a) {
    double d = std::fabs(q[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    acc += d;
    if (acc > threshold) return kInf;
  }
  return acc;
}

/// Full per-row threshold kernels: variance-ordered certain-reject pre-pass,
/// then the canonical recompute. Each returns the exact canonical-order
/// distance on accept and +infinity on reject; `certain_rejects` counts the
/// rows the pre-pass dismissed (feeds disc_kernel_certain_rejects_total).

inline double RowWithinL2(const ColumnarView& v, const double* q,
                          std::size_t row, double thr_sq, double reject,
                          bool unit, std::uint64_t* certain_rejects) {
  double acc = 0;
  for (std::size_t a : v.scan_order()) {
    double d = std::fabs(q[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    acc += d * d;
    if (acc > reject) {
      ++*certain_rejects;
      return kInf;
    }
  }
  return CanonicalWithinL2(v, q, row, thr_sq, unit);
}

inline double RowWithinL1(const ColumnarView& v, const double* q,
                          std::size_t row, double threshold, double reject,
                          bool unit, std::uint64_t* certain_rejects) {
  double acc = 0;
  for (std::size_t a : v.scan_order()) {
    double d = std::fabs(q[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    acc += d;
    if (acc > reject) {
      ++*certain_rejects;
      return kInf;
    }
  }
  return CanonicalWithinL1(v, q, row, threshold, unit);
}

inline double RowWithinLInf(const ColumnarView& v, const double* q,
                            std::size_t row, double threshold, bool unit,
                            std::uint64_t* certain_rejects) {
  // One pass is already exact: max is order-independent and NaN terms drop
  // out of std::max exactly as in LpAccumulator, so the early exit here is
  // an exact reject, not a slackened one.
  double acc = 0;
  for (std::size_t a : v.scan_order()) {
    double d = std::fabs(q[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    if (d > threshold) {
      ++*certain_rejects;
      return kInf;
    }
    acc = std::max(acc, d);
  }
  return acc;
}

}  // namespace disc::columnar_internal

#endif  // DISC_DISTANCE_COLUMNAR_INTERNAL_H_
