#include "distance/columnar.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "distance/columnar_internal.h"
#include "distance/columnar_simd.h"

namespace disc {

namespace {

using columnar_internal::CanonicalDistance;
using columnar_internal::CanonicalWithinL1;
using columnar_internal::CanonicalWithinL2;
using columnar_internal::kCertainRejectSlack;
using columnar_internal::kInf;
using columnar_internal::RowWithinL1;
using columnar_internal::RowWithinL2;
using columnar_internal::RowWithinLInf;

/// Bits of `x` restricted to attributes < arity, mirroring the scalar
/// DistanceOn loop which only tests a < m.
inline std::uint64_t MaskedBits(const AttributeSet& x, std::size_t arity) {
  std::uint64_t mask = arity >= 64 ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << arity) - 1);
  return x.bits() & mask;
}

/// Scalar reference scan over rows [begin, end), invoking `hit` for each
/// accept. The norm switch and the threshold constants are hoisted outside
/// the row loop, and `hit` is a lambda, so each norm compiles to one tight
/// scan over the columns. Work totals accumulate into `delta`.
template <typename Hit>
inline void ScalarScanRange(const ColumnarView& v, const double* q,
                            double epsilon, std::size_t begin, std::size_t end,
                            Hit&& hit, simd::ScanDelta* delta) {
  const bool unit = v.unit_scales();
  std::uint64_t cr = 0;
  switch (v.norm()) {
    case LpNorm::kL2: {
      const double thr_sq = epsilon * epsilon;
      const double reject = thr_sq * kCertainRejectSlack;
      for (std::size_t i = begin; i < end; ++i) {
        double d = RowWithinL2(v, q, i, thr_sq, reject, unit, &cr);
        if (d <= epsilon) hit(i, d);
      }
      break;
    }
    case LpNorm::kL1: {
      const double reject = epsilon * kCertainRejectSlack;
      for (std::size_t i = begin; i < end; ++i) {
        double d = RowWithinL1(v, q, i, epsilon, reject, unit, &cr);
        if (d <= epsilon) hit(i, d);
      }
      break;
    }
    case LpNorm::kLInf: {
      for (std::size_t i = begin; i < end; ++i) {
        double d = RowWithinLInf(v, q, i, epsilon, unit, &cr);
        if (d <= epsilon) hit(i, d);
      }
      break;
    }
  }
  delta->rows_scanned += end - begin;
  delta->certain_rejects += cr;
}

/// Hit sinks for the dispatched scans (plain functions: the SIMD tier takes
/// a function pointer, not a template — target attributes don't propagate
/// into template instantiations).
struct CollectCtx {
  std::vector<std::size_t>* rows;
  std::vector<double>* distances;
};

void CollectHit(void* ctx, std::size_t row, double d) {
  auto* c = static_cast<CollectCtx*>(ctx);
  c->rows->push_back(row);
  c->distances->push_back(d);
}

void CountHit(void* ctx, std::size_t /*row*/, double /*d*/) {
  ++*static_cast<std::size_t*>(ctx);
}

/// One range scan: the view's SIMD tier if it has a kernel, the scalar
/// reference otherwise. Either way verdicts, distances and output order
/// are identical (DESIGN.md §12).
inline void ScanRange(const ColumnarView& v, const double* q, double epsilon,
                      std::size_t begin, std::size_t end, simd::HitFn hit,
                      void* ctx, simd::ScanDelta* delta) {
  if (simd::ScanWithin(v.simd_tier(), v, q, epsilon, begin, end, hit, ctx,
                       delta)) {
    return;
  }
  ScalarScanRange(
      v, q, epsilon, begin, end,
      [&](std::size_t row, double d) { hit(ctx, row, d); }, delta);
}

/// Flushes a batch's work totals to the view's counters (no-op when
/// metrics are disabled). Called once per batch call or per parallel
/// chunk — Counter::Add is wait-free and sharded, so chunk-level flushes
/// from pool workers don't contend.
inline void FlushScan(const ColumnarView& v, const simd::ScanDelta& delta) {
  const ColumnarView::ScanCounters& c = v.scan_counters();
  if (c.rows_scanned != nullptr) c.rows_scanned->Add(delta.rows_scanned);
  if (c.certain_rejects != nullptr) {
    c.certain_rejects->Add(delta.certain_rejects);
  }
}

/// Rows per nested chunk for the parallel batch scans. A 6-attribute L2
/// chunk of this size costs tens of microseconds — coarse enough that the
/// pool's per-chunk lock round trip is noise, fine enough that a 500k-row
/// scan splits across every idle core.
constexpr std::size_t kParallelScanGrain = 8192;

/// Chunk boundaries must be lane-block aligned so per-chunk SIMD scans run
/// block loops end to end with no scalar head (grain purity: every chunk
/// but the last is whole blocks).
static_assert(kParallelScanGrain % ColumnarView::kLanePad == 0);

/// True when splitting an n-row scan over `pool` is worth the fixed cost.
inline bool UseParallelScan(const WorkStealingPool* pool, std::size_t n) {
  return pool != nullptr && pool->size() > 1 && n >= 2 * kParallelScanGrain;
}

}  // namespace

bool ColumnarView::Eligible(const Relation& relation,
                            const DistanceEvaluator& evaluator) {
  return relation.arity() > 0 &&
         relation.arity() <= AttributeSet::kCapacity &&
         relation.arity() == evaluator.arity() &&
         relation.schema().all_numeric() &&
         evaluator.AllScaledAbsoluteDifference();
}

std::unique_ptr<ColumnarView> ColumnarView::Build(
    const Relation& relation, const DistanceEvaluator& evaluator) {
  if (!Eligible(relation, evaluator)) return nullptr;
  auto view = std::unique_ptr<ColumnarView>(new ColumnarView());
  const std::size_t n = relation.size();
  const std::size_t m = relation.arity();
  view->rows_ = n;
  view->padded_rows_ = (n + kLanePad - 1) / kLanePad * kLanePad;
  view->arity_ = m;
  view->norm_ = evaluator.norm();
  view->simd_tier_ = ActiveSimdTier();
  evaluator.AllScaledAbsoluteDifference(&view->scales_);
  view->unit_scales_ = std::all_of(view->scales_.begin(), view->scales_.end(),
                                   [](double s) { return s == 1.0; });
  if (MetricsRegistry* registry = GlobalMetrics()) {
    view->counters_.rows_scanned = registry->GetCounter(
        "disc_kernel_rows_scanned_total",
        "Rows evaluated by the batch columnar distance kernels");
    view->counters_.certain_rejects = registry->GetCounter(
        "disc_kernel_certain_rejects_total",
        "Rows dismissed by the certain-reject pre-pass of the batch "
        "columnar scans (which rows reject is SIMD-tier-dependent; "
        "outputs are not)");
  }

  // Zero-initialized so the pad rows [n, padded_rows) of every column hold
  // 0.0 — always safe to load, never reported (verdict masks stop at n).
  const std::size_t stride = view->padded_rows_;
  view->data_.assign(stride * m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& t = relation[i];
    for (std::size_t a = 0; a < m; ++a) {
      view->data_[a * stride + i] = t[a].num();
    }
  }

  // Scan order: scaled variance, descending (ties by index). High-variance
  // attributes contribute the largest terms on average, so far pairs trip
  // the early exit within the first attribute or two.
  std::vector<double> variance(m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    const double* col = view->column(a);
    double mean = 0;
    std::size_t finite = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (std::isfinite(col[i])) {
        mean += col[i];
        ++finite;
      }
    }
    if (finite == 0) continue;
    mean /= static_cast<double>(finite);
    double var = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (std::isfinite(col[i])) {
        double d = col[i] - mean;
        var += d * d;
      }
    }
    double s = view->scales_[a];
    variance[a] = var / static_cast<double>(finite) / (s * s);
  }
  view->scan_order_.resize(m);
  std::iota(view->scan_order_.begin(), view->scan_order_.end(), 0);
  std::sort(view->scan_order_.begin(), view->scan_order_.end(),
            [&](std::size_t a, std::size_t b) {
              return variance[a] > variance[b] ||
                     (variance[a] == variance[b] && a < b);
            });
  view->scan_offsets_.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    view->scan_offsets_[k] = view->scan_order_[k] * stride;
  }
  return view;
}

void ColumnarView::set_simd_tier(SimdTier tier) {
  simd_tier_ = std::min(tier, DetectedSimdTier());
}

std::vector<double> ColumnarView::QueryCoords(const Tuple& query) const {
  std::vector<double> q(arity_);
  for (std::size_t a = 0; a < arity_; ++a) q[a] = query[a].num();
  return q;
}

double FlatKernel::Distance(std::size_t row) const {
  return CanonicalDistance(*view_, q_.data(), row, view_->unit_scales());
}

double FlatKernel::DistanceWithin(std::size_t row, double threshold) const {
  const ColumnarView& v = *view_;
  const bool unit = v.unit_scales();
  // Wide rows first try the gathered vector pre-pass; a certain reject or
  // an exact L∞ value skips the scalar work entirely, an inconclusive
  // pre-pass falls to the canonical recompute (same recompute the scalar
  // path runs after its own pre-pass, so results agree bit for bit).
  double exact = 0;
  switch (simd::DistanceWithinPrepass(v.simd_tier(), v, q_.data(), row,
                                      threshold, &exact)) {
    case simd::Verdict::kCertainReject:
      return kInf;
    case simd::Verdict::kExact:
      return exact;
    case simd::Verdict::kMaybeWithin:
      switch (v.norm()) {
        case LpNorm::kL2:
          return CanonicalWithinL2(v, q_.data(), row, threshold * threshold,
                                   unit);
        case LpNorm::kL1:
          return CanonicalWithinL1(v, q_.data(), row, threshold, unit);
        case LpNorm::kLInf:
          break;  // unreachable: the L∞ pre-pass always resolves
      }
      break;
    case simd::Verdict::kUnsupported:
      break;
  }
  // Single-row calls are unmetered (a counter flush per row would dominate
  // the kernel); the batch scans carry the work counters.
  std::uint64_t cr = 0;
  switch (v.norm()) {
    case LpNorm::kL2: {
      // Fast pass, high-variance attributes first: running d² against ε²,
      // rejecting past the slackened threshold (certain reject — see
      // kCertainRejectSlack), no sqrt on the reject path. Survivors are
      // recomputed in canonical order with the exact LpAccumulator
      // semantics (threshold check after every add, one sqrt on accept) so
      // the returned value is bit-identical to the scalar reference.
      const double thr_sq = threshold * threshold;
      return RowWithinL2(v, q_.data(), row, thr_sq,
                         thr_sq * kCertainRejectSlack, unit, &cr);
    }
    case LpNorm::kL1:
      return RowWithinL1(v, q_.data(), row, threshold,
                         threshold * kCertainRejectSlack, unit, &cr);
    case LpNorm::kLInf:
      // max is order-independent (NaN terms drop out of std::max exactly as
      // in LpAccumulator), so one pass in scan order is already exact.
      return RowWithinLInf(v, q_.data(), row, threshold, unit, &cr);
  }
  return 0;
}

void FlatKernel::CollectWithin(double epsilon, std::vector<std::size_t>* rows,
                               std::vector<double>* distances) const {
  CollectCtx ctx{rows, distances};
  simd::ScanDelta delta;
  ScanRange(*view_, q_.data(), epsilon, 0, view_->rows(), &CollectHit, &ctx,
            &delta);
  FlushScan(*view_, delta);
}

std::size_t FlatKernel::CountWithin(double epsilon) const {
  std::size_t count = 0;
  simd::ScanDelta delta;
  ScanRange(*view_, q_.data(), epsilon, 0, view_->rows(), &CountHit, &count,
            &delta);
  FlushScan(*view_, delta);
  return count;
}

void FlatKernel::CollectWithin(double epsilon, std::vector<std::size_t>* rows,
                               std::vector<double>* distances,
                               WorkStealingPool* pool) const {
  const std::size_t n = view_->rows();
  if (!UseParallelScan(pool, n)) {
    CollectWithin(epsilon, rows, distances);
    return;
  }
  const std::size_t chunks =
      (n + kParallelScanGrain - 1) / kParallelScanGrain;
  std::vector<std::vector<std::size_t>> chunk_rows(chunks);
  std::vector<std::vector<double>> chunk_dists(chunks);
  pool->ParallelFor(
      0, n, kParallelScanGrain,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        CollectCtx ctx{&chunk_rows[chunk], &chunk_dists[chunk]};
        simd::ScanDelta delta;
        ScanRange(*view_, q_.data(), epsilon, begin, end, &CollectHit, &ctx,
                  &delta);
        FlushScan(*view_, delta);
      });
  // Chunks cover [0, n) in order, so concatenation preserves the ascending
  // row order of the sequential scan exactly.
  for (std::size_t c = 0; c < chunks; ++c) {
    rows->insert(rows->end(), chunk_rows[c].begin(), chunk_rows[c].end());
    distances->insert(distances->end(), chunk_dists[c].begin(),
                      chunk_dists[c].end());
  }
}

std::size_t FlatKernel::CountWithin(double epsilon,
                                    WorkStealingPool* pool) const {
  const std::size_t n = view_->rows();
  if (!UseParallelScan(pool, n)) return CountWithin(epsilon);
  const std::size_t chunks =
      (n + kParallelScanGrain - 1) / kParallelScanGrain;
  std::vector<std::size_t> chunk_counts(chunks, 0);
  pool->ParallelFor(
      0, n, kParallelScanGrain,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        std::size_t count = 0;
        simd::ScanDelta delta;
        ScanRange(*view_, q_.data(), epsilon, begin, end, &CountHit, &count,
                  &delta);
        FlushScan(*view_, delta);
        chunk_counts[chunk] = count;
      });
  std::size_t total = 0;
  for (std::size_t c : chunk_counts) total += c;
  return total;
}

double FlatKernel::DistanceOn(const AttributeSet& x, std::size_t row) const {
  const ColumnarView& v = *view_;
  const bool unit = v.unit_scales();
  LpAccumulator acc(v.norm());
  for (std::uint64_t bits = MaskedBits(x, v.arity()); bits != 0;
       bits &= bits - 1) {
    const auto a = static_cast<std::size_t>(std::countr_zero(bits));
    double d = std::fabs(q_[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    acc.Add(d);
  }
  return acc.Total();
}

double FlatKernel::DistanceOnWithin(const AttributeSet& x, std::size_t row,
                                    double threshold) const {
  const ColumnarView& v = *view_;
  const bool unit = v.unit_scales();
  const std::uint64_t masked = MaskedBits(x, v.arity());
  double exact = 0;
  switch (simd::DistanceOnWithinPrepass(v.simd_tier(), v, q_.data(), masked,
                                        row, threshold, &exact)) {
    case simd::Verdict::kCertainReject:
      return kInf;
    case simd::Verdict::kExact:
      return exact;
    case simd::Verdict::kMaybeWithin:
    case simd::Verdict::kUnsupported:
      break;  // canonical LpAccumulator loop below
  }
  LpAccumulator acc(v.norm());
  for (std::uint64_t bits = masked; bits != 0; bits &= bits - 1) {
    const auto a = static_cast<std::size_t>(std::countr_zero(bits));
    double d = std::fabs(q_[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    acc.Add(d);
    if (acc.Exceeds(threshold)) return kInf;
  }
  return acc.Total();
}

void FlatKernel::FillDistances(double* out, std::size_t begin,
                               std::size_t end) const {
  const ColumnarView& v = *view_;
  if (!simd::FillDistances(v.simd_tier(), v, q_.data(), begin, end, out)) {
    const bool unit = v.unit_scales();
    for (std::size_t i = begin; i < end; ++i) {
      out[i - begin] = CanonicalDistance(v, q_.data(), i, unit);
    }
  }
  simd::ScanDelta delta;
  delta.rows_scanned = end - begin;
  FlushScan(v, delta);
}

void FlatKernel::FillAttributeDistances(std::size_t a, double* out) const {
  const ColumnarView& v = *view_;
  if (simd::FillAttributeDistances(v.simd_tier(), v, q_[a], a, out)) return;
  const double* col = v.column(a);
  const double q = q_[a];
  const double scale = v.scale(a);
  const std::size_t n = v.rows();
  if (scale == 1.0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = std::fabs(q - col[i]);
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = std::fabs(q - col[i]) / scale;
  }
}

}  // namespace disc
