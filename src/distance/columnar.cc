#include "distance/columnar.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "common/thread_pool.h"

namespace disc {

namespace {

/// Multiplicative slack for the variance-ordered reject pass. Summing m ≤ 64
/// non-negative terms in any order differs from the canonical-order sum by a
/// relative error of at most (m−1)·ε ≈ 1.4e-14, so a permuted partial sum
/// beyond threshold·(1 + 1e-12) proves the canonical sum is beyond the
/// threshold too — the fast pass can only reject pairs the scalar reference
/// also rejects. (At threshold 0 the slack degenerates to 0, which is still
/// exact: non-negative sums are order-independently zero or positive.)
constexpr double kCertainRejectSlack = 1.0 + 1e-12;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Bits of `x` restricted to attributes < arity, mirroring the scalar
/// DistanceOn loop which only tests a < m.
inline std::uint64_t MaskedBits(const AttributeSet& x, std::size_t arity) {
  std::uint64_t mask = arity >= 64 ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << arity) - 1);
  return x.bits() & mask;
}

/// Per-row threshold kernels shared by DistanceWithin and the batch scans.
/// Each returns the exact canonical-order distance on accept and +infinity
/// on reject, matching LpAccumulator bit for bit (see DistanceWithin).

inline double RowWithinL2(const ColumnarView& v, const double* q,
                          std::size_t row, double thr_sq, double reject,
                          bool unit) {
  double acc = 0;
  for (std::size_t a : v.scan_order()) {
    double d = std::fabs(q[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    acc += d * d;
    if (acc > reject) return kInf;
  }
  acc = 0;
  const std::size_t m = v.arity();
  for (std::size_t a = 0; a < m; ++a) {
    double d = std::fabs(q[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    acc += d * d;
    if (acc > thr_sq) return kInf;
  }
  return std::sqrt(acc);
}

inline double RowWithinL1(const ColumnarView& v, const double* q,
                          std::size_t row, double threshold, double reject,
                          bool unit) {
  double acc = 0;
  for (std::size_t a : v.scan_order()) {
    double d = std::fabs(q[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    acc += d;
    if (acc > reject) return kInf;
  }
  acc = 0;
  const std::size_t m = v.arity();
  for (std::size_t a = 0; a < m; ++a) {
    double d = std::fabs(q[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    acc += d;
    if (acc > threshold) return kInf;
  }
  return acc;
}

inline double RowWithinLInf(const ColumnarView& v, const double* q,
                            std::size_t row, double threshold, bool unit) {
  double acc = 0;
  for (std::size_t a : v.scan_order()) {
    double d = std::fabs(q[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    if (d > threshold) return kInf;
    acc = std::max(acc, d);
  }
  return acc;
}

/// Runs the per-row threshold kernel over rows [begin, end), invoking
/// `hit(row, distance)` for each accept. The norm switch and the threshold
/// constants are hoisted outside the row loop, and `hit` is a lambda, so
/// each norm compiles to one tight scan over the columns.
template <typename Hit>
inline void ScanWithinRange(const ColumnarView& v, const double* q,
                            double epsilon, std::size_t begin, std::size_t end,
                            Hit&& hit) {
  const bool unit = v.unit_scales();
  switch (v.norm()) {
    case LpNorm::kL2: {
      const double thr_sq = epsilon * epsilon;
      const double reject = thr_sq * kCertainRejectSlack;
      for (std::size_t i = begin; i < end; ++i) {
        double d = RowWithinL2(v, q, i, thr_sq, reject, unit);
        if (d <= epsilon) hit(i, d);
      }
      return;
    }
    case LpNorm::kL1: {
      const double reject = epsilon * kCertainRejectSlack;
      for (std::size_t i = begin; i < end; ++i) {
        double d = RowWithinL1(v, q, i, epsilon, reject, unit);
        if (d <= epsilon) hit(i, d);
      }
      return;
    }
    case LpNorm::kLInf: {
      for (std::size_t i = begin; i < end; ++i) {
        double d = RowWithinLInf(v, q, i, epsilon, unit);
        if (d <= epsilon) hit(i, d);
      }
      return;
    }
  }
}

template <typename Hit>
inline void ScanWithin(const ColumnarView& v, const double* q, double epsilon,
                       Hit&& hit) {
  ScanWithinRange(v, q, epsilon, 0, v.rows(), std::forward<Hit>(hit));
}

/// Rows per nested chunk for the parallel batch scans. A 6-attribute L2
/// chunk of this size costs tens of microseconds — coarse enough that the
/// pool's per-chunk lock round trip is noise, fine enough that a 500k-row
/// scan splits across every idle core.
constexpr std::size_t kParallelScanGrain = 8192;

/// True when splitting an n-row scan over `pool` is worth the fixed cost.
inline bool UseParallelScan(const WorkStealingPool* pool, std::size_t n) {
  return pool != nullptr && pool->size() > 1 && n >= 2 * kParallelScanGrain;
}

}  // namespace

bool ColumnarView::Eligible(const Relation& relation,
                            const DistanceEvaluator& evaluator) {
  return relation.arity() > 0 &&
         relation.arity() <= AttributeSet::kCapacity &&
         relation.arity() == evaluator.arity() &&
         relation.schema().all_numeric() &&
         evaluator.AllScaledAbsoluteDifference();
}

std::unique_ptr<ColumnarView> ColumnarView::Build(
    const Relation& relation, const DistanceEvaluator& evaluator) {
  if (!Eligible(relation, evaluator)) return nullptr;
  auto view = std::unique_ptr<ColumnarView>(new ColumnarView());
  const std::size_t n = relation.size();
  const std::size_t m = relation.arity();
  view->rows_ = n;
  view->arity_ = m;
  view->norm_ = evaluator.norm();
  evaluator.AllScaledAbsoluteDifference(&view->scales_);
  view->unit_scales_ = std::all_of(view->scales_.begin(), view->scales_.end(),
                                   [](double s) { return s == 1.0; });

  view->data_.resize(n * m);
  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& t = relation[i];
    for (std::size_t a = 0; a < m; ++a) {
      view->data_[a * n + i] = t[a].num();
    }
  }

  // Scan order: scaled variance, descending (ties by index). High-variance
  // attributes contribute the largest terms on average, so far pairs trip
  // the early exit within the first attribute or two.
  std::vector<double> variance(m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    const double* col = view->column(a);
    double mean = 0;
    std::size_t finite = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (std::isfinite(col[i])) {
        mean += col[i];
        ++finite;
      }
    }
    if (finite == 0) continue;
    mean /= static_cast<double>(finite);
    double var = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (std::isfinite(col[i])) {
        double d = col[i] - mean;
        var += d * d;
      }
    }
    double s = view->scales_[a];
    variance[a] = var / static_cast<double>(finite) / (s * s);
  }
  view->scan_order_.resize(m);
  std::iota(view->scan_order_.begin(), view->scan_order_.end(), 0);
  std::sort(view->scan_order_.begin(), view->scan_order_.end(),
            [&](std::size_t a, std::size_t b) {
              return variance[a] > variance[b] ||
                     (variance[a] == variance[b] && a < b);
            });
  return view;
}

std::vector<double> ColumnarView::QueryCoords(const Tuple& query) const {
  std::vector<double> q(arity_);
  for (std::size_t a = 0; a < arity_; ++a) q[a] = query[a].num();
  return q;
}

double FlatKernel::Distance(std::size_t row) const {
  const ColumnarView& v = *view_;
  const std::size_t m = v.arity();
  const bool unit = v.unit_scales();
  switch (v.norm()) {
    case LpNorm::kL2: {
      double acc = 0;
      for (std::size_t a = 0; a < m; ++a) {
        double d = std::fabs(q_[a] - v.column(a)[row]);
        if (!unit) d /= v.scale(a);
        acc += d * d;
      }
      return std::sqrt(acc);
    }
    case LpNorm::kL1: {
      double acc = 0;
      for (std::size_t a = 0; a < m; ++a) {
        double d = std::fabs(q_[a] - v.column(a)[row]);
        if (!unit) d /= v.scale(a);
        acc += d;
      }
      return acc;
    }
    case LpNorm::kLInf: {
      double acc = 0;
      for (std::size_t a = 0; a < m; ++a) {
        double d = std::fabs(q_[a] - v.column(a)[row]);
        if (!unit) d /= v.scale(a);
        acc = std::max(acc, d);
      }
      return acc;
    }
  }
  return 0;
}

double FlatKernel::DistanceWithin(std::size_t row, double threshold) const {
  const ColumnarView& v = *view_;
  const bool unit = v.unit_scales();
  switch (v.norm()) {
    case LpNorm::kL2: {
      // Fast pass, high-variance attributes first: running d² against ε²,
      // rejecting past the slackened threshold (certain reject — see
      // kCertainRejectSlack), no sqrt on the reject path. Survivors are
      // recomputed in canonical order with the exact LpAccumulator
      // semantics (threshold check after every add, one sqrt on accept) so
      // the returned value is bit-identical to the scalar reference.
      const double thr_sq = threshold * threshold;
      return RowWithinL2(v, q_.data(), row, thr_sq,
                         thr_sq * kCertainRejectSlack, unit);
    }
    case LpNorm::kL1:
      return RowWithinL1(v, q_.data(), row, threshold,
                         threshold * kCertainRejectSlack, unit);
    case LpNorm::kLInf:
      // max is order-independent (NaN terms drop out of std::max exactly as
      // in LpAccumulator), so one pass in scan order is already exact.
      return RowWithinLInf(v, q_.data(), row, threshold, unit);
  }
  return 0;
}

void FlatKernel::CollectWithin(double epsilon, std::vector<std::size_t>* rows,
                               std::vector<double>* distances) const {
  ScanWithin(*view_, q_.data(), epsilon, [&](std::size_t row, double d) {
    rows->push_back(row);
    distances->push_back(d);
  });
}

std::size_t FlatKernel::CountWithin(double epsilon) const {
  std::size_t count = 0;
  ScanWithin(*view_, q_.data(), epsilon,
             [&](std::size_t, double) { ++count; });
  return count;
}

void FlatKernel::CollectWithin(double epsilon, std::vector<std::size_t>* rows,
                               std::vector<double>* distances,
                               WorkStealingPool* pool) const {
  const std::size_t n = view_->rows();
  if (!UseParallelScan(pool, n)) {
    CollectWithin(epsilon, rows, distances);
    return;
  }
  const std::size_t chunks =
      (n + kParallelScanGrain - 1) / kParallelScanGrain;
  std::vector<std::vector<std::size_t>> chunk_rows(chunks);
  std::vector<std::vector<double>> chunk_dists(chunks);
  pool->ParallelFor(
      0, n, kParallelScanGrain,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        ScanWithinRange(*view_, q_.data(), epsilon, begin, end,
                        [&](std::size_t row, double d) {
                          chunk_rows[chunk].push_back(row);
                          chunk_dists[chunk].push_back(d);
                        });
      });
  // Chunks cover [0, n) in order, so concatenation preserves the ascending
  // row order of the sequential scan exactly.
  for (std::size_t c = 0; c < chunks; ++c) {
    rows->insert(rows->end(), chunk_rows[c].begin(), chunk_rows[c].end());
    distances->insert(distances->end(), chunk_dists[c].begin(),
                      chunk_dists[c].end());
  }
}

std::size_t FlatKernel::CountWithin(double epsilon,
                                    WorkStealingPool* pool) const {
  const std::size_t n = view_->rows();
  if (!UseParallelScan(pool, n)) return CountWithin(epsilon);
  const std::size_t chunks =
      (n + kParallelScanGrain - 1) / kParallelScanGrain;
  std::vector<std::size_t> chunk_counts(chunks, 0);
  pool->ParallelFor(
      0, n, kParallelScanGrain,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        std::size_t count = 0;
        ScanWithinRange(*view_, q_.data(), epsilon, begin, end,
                        [&](std::size_t, double) { ++count; });
        chunk_counts[chunk] = count;
      });
  std::size_t total = 0;
  for (std::size_t c : chunk_counts) total += c;
  return total;
}

double FlatKernel::DistanceOn(const AttributeSet& x, std::size_t row) const {
  const ColumnarView& v = *view_;
  const bool unit = v.unit_scales();
  LpAccumulator acc(v.norm());
  for (std::uint64_t bits = MaskedBits(x, v.arity()); bits != 0;
       bits &= bits - 1) {
    const auto a = static_cast<std::size_t>(std::countr_zero(bits));
    double d = std::fabs(q_[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    acc.Add(d);
  }
  return acc.Total();
}

double FlatKernel::DistanceOnWithin(const AttributeSet& x, std::size_t row,
                                    double threshold) const {
  const ColumnarView& v = *view_;
  const bool unit = v.unit_scales();
  LpAccumulator acc(v.norm());
  for (std::uint64_t bits = MaskedBits(x, v.arity()); bits != 0;
       bits &= bits - 1) {
    const auto a = static_cast<std::size_t>(std::countr_zero(bits));
    double d = std::fabs(q_[a] - v.column(a)[row]);
    if (!unit) d /= v.scale(a);
    acc.Add(d);
    if (acc.Exceeds(threshold)) return kInf;
  }
  return acc.Total();
}

void FlatKernel::FillAttributeDistances(std::size_t a, double* out) const {
  const ColumnarView& v = *view_;
  const double* col = v.column(a);
  const double q = q_[a];
  const double scale = v.scale(a);
  const std::size_t n = v.rows();
  if (scale == 1.0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = std::fabs(q - col[i]);
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = std::fabs(q - col[i]) / scale;
  }
}

}  // namespace disc
