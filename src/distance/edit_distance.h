#ifndef DISC_DISTANCE_EDIT_DISTANCE_H_
#define DISC_DISTANCE_EDIT_DISTANCE_H_

#include <string>
#include <string_view>

namespace disc {

/// Levenshtein edit distance (unit insert/delete/substitute costs).
double LevenshteinDistance(std::string_view a, std::string_view b);

/// Needleman–Wunsch-style weighted edit distance where visually or
/// typographically confusable character pairs (O/0, l/1, S/5, ...) cost less
/// than a full substitution. This is the metric the paper motivates with the
/// RH10-OAG → RH10-0AG zip-code example: the confusable fix is cheaper than
/// an arbitrary rewrite.
///
/// Costs: insert/delete 1.0, substitute 1.0, confusable substitute 0.5,
/// case-only substitute 0.25.
double WeightedEditDistance(std::string_view a, std::string_view b);

/// True iff (a, b) is in the built-in visual-confusion table (symmetric).
bool IsConfusablePair(char a, char b);

}  // namespace disc

#endif  // DISC_DISTANCE_EDIT_DISTANCE_H_
