#include "distance/attribute_metric.h"

#include <cmath>

#include "distance/edit_distance.h"

namespace disc {

double AbsoluteDifferenceMetric::Distance(const Value& a,
                                          const Value& b) const {
  return std::fabs(a.num() - b.num()) / scale_;
}

double EditDistanceMetric::Distance(const Value& a, const Value& b) const {
  return LevenshteinDistance(a.str(), b.str());
}

double WeightedEditDistanceMetric::Distance(const Value& a,
                                            const Value& b) const {
  return WeightedEditDistance(a.str(), b.str());
}

double DiscreteMetric::Distance(const Value& a, const Value& b) const {
  return a == b ? 0.0 : 1.0;
}

std::unique_ptr<AttributeMetric> DefaultMetricFor(ValueKind kind) {
  if (kind == ValueKind::kNumeric) {
    return std::make_unique<AbsoluteDifferenceMetric>();
  }
  return std::make_unique<EditDistanceMetric>();
}

}  // namespace disc
