#ifndef DISC_DISTANCE_LP_NORM_H_
#define DISC_DISTANCE_LP_NORM_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>

namespace disc {

/// Aggregation of per-attribute distances into a tuple distance (paper
/// Formula 1). The paper defaults to L2; L1 and L-infinity are provided as
/// alternatives. All preserve the metric axioms of the per-attribute
/// distances, including the triangle inequality and monotonicity
/// Δ(t1[X], t2[X]) <= Δ(t1[X ∪ {A}], t2[X ∪ {A}]).
enum class LpNorm {
  kL1,
  kL2,
  kLInf,
};

/// Aggregates per-attribute distances under the given norm.
double AggregateDistances(std::span<const double> per_attribute, LpNorm norm);

/// Incremental accumulator for Lp aggregation with early exit: callers add
/// per-attribute distances one at a time and may stop as soon as the running
/// aggregate already exceeds a threshold (range queries, pruning).
class LpAccumulator {
 public:
  explicit LpAccumulator(LpNorm norm) : norm_(norm) {}

  // Defined inline: these run once per attribute inside every distance
  // computation in the system, so a call per Add would dominate the hot
  // loops (the branch on norm_ is loop-invariant and predicted away).

  /// Adds one per-attribute distance.
  void Add(double d) {
    switch (norm_) {
      case LpNorm::kL1:
        acc_ += d;
        break;
      case LpNorm::kL2:
        acc_ += d * d;
        break;
      case LpNorm::kLInf:
        acc_ = std::max(acc_, d);
        break;
    }
  }

  /// The aggregate of everything added so far.
  double Total() const {
    if (norm_ == LpNorm::kL2) return std::sqrt(acc_);
    return acc_;
  }

  /// True iff the aggregate already exceeds `threshold` (monotone in adds,
  /// so once true it stays true).
  bool Exceeds(double threshold) const {
    if (norm_ == LpNorm::kL2) return acc_ > threshold * threshold;
    return acc_ > threshold;
  }

 private:
  LpNorm norm_;
  double acc_ = 0;  // sum (L1), sum of squares (L2), max (LInf)
};

}  // namespace disc

#endif  // DISC_DISTANCE_LP_NORM_H_
