#include "distance/normalization.h"

#include <cmath>

namespace disc {

Normalizer Normalizer::Fit(const Relation& data, NormalizationMode mode) {
  Normalizer norm;
  const std::size_t m = data.arity();
  norm.offsets_.assign(m, 0.0);
  norm.scales_.assign(m, 1.0);
  norm.numeric_.assign(m, false);

  for (std::size_t a = 0; a < m; ++a) {
    if (data.schema().kind(a) != ValueKind::kNumeric) continue;
    norm.numeric_[a] = true;

    double sum = 0;
    double sum_sq = 0;
    double lo = 0;
    double hi = 0;
    bool first = true;
    std::size_t count = 0;
    for (const Tuple& t : data) {
      double v = t[a].num();
      sum += v;
      sum_sq += v * v;
      ++count;
      if (first) {
        lo = hi = v;
        first = false;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (count == 0) continue;

    if (mode == NormalizationMode::kMinMax) {
      norm.offsets_[a] = lo;
      norm.scales_[a] = hi - lo;
    } else {
      double mean = sum / static_cast<double>(count);
      double var =
          std::max(0.0, sum_sq / static_cast<double>(count) - mean * mean);
      norm.offsets_[a] = mean;
      norm.scales_[a] = std::sqrt(var);
    }
    if (norm.scales_[a] <= 0) norm.scales_[a] = 1.0;  // constant attribute
  }
  return norm;
}

Tuple Normalizer::ApplyToTuple(const Tuple& tuple) const {
  Tuple out = tuple;
  for (std::size_t a = 0; a < out.size() && a < offsets_.size(); ++a) {
    if (!numeric_[a]) continue;
    out[a].set_num((tuple[a].num() - offsets_[a]) / scales_[a]);
  }
  return out;
}

Tuple Normalizer::InvertTuple(const Tuple& tuple) const {
  Tuple out = tuple;
  for (std::size_t a = 0; a < out.size() && a < offsets_.size(); ++a) {
    if (!numeric_[a]) continue;
    out[a].set_num(tuple[a].num() * scales_[a] + offsets_[a]);
  }
  return out;
}

Relation Normalizer::Apply(const Relation& data) const {
  Relation out(data.schema());
  for (const Tuple& t : data) out.AppendUnchecked(ApplyToTuple(t));
  return out;
}

Relation Normalizer::Invert(const Relation& data) const {
  Relation out(data.schema());
  for (const Tuple& t : data) out.AppendUnchecked(InvertTuple(t));
  return out;
}

}  // namespace disc
