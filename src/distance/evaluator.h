#ifndef DISC_DISTANCE_EVALUATOR_H_
#define DISC_DISTANCE_EVALUATOR_H_

#include <memory>
#include <vector>

#include "common/relation.h"
#include "common/tuple.h"
#include "distance/attribute_metric.h"
#include "distance/lp_norm.h"

namespace disc {

/// Evaluates tuple distances Δ(t1[X], t2[X]) for a fixed schema: one metric
/// per attribute, aggregated under an Lp norm (L2 by default, paper §2.1.1).
///
/// DistanceEvaluator is the single distance authority shared by indexing,
/// constraints, outlier saving, clustering and cleaning, so every subsystem
/// measures tuples identically.
class DistanceEvaluator {
 public:
  /// Builds an evaluator with the default metric per attribute kind
  /// (absolute difference for numerics, edit distance for strings).
  explicit DistanceEvaluator(const Schema& schema, LpNorm norm = LpNorm::kL2);

  /// Builds an evaluator with explicit per-attribute metrics. `metrics`
  /// must have one entry per schema attribute.
  DistanceEvaluator(const Schema& schema,
                    std::vector<std::unique_ptr<AttributeMetric>> metrics,
                    LpNorm norm = LpNorm::kL2);

  DistanceEvaluator(DistanceEvaluator&&) = default;
  DistanceEvaluator& operator=(DistanceEvaluator&&) = default;

  /// Number of attributes m.
  std::size_t arity() const { return metrics_.size(); }
  /// The aggregation norm.
  LpNorm norm() const { return norm_; }

  /// Per-attribute distance Δ(t1[A], t2[A]).
  double AttributeDistance(std::size_t a, const Value& v1,
                           const Value& v2) const {
    return metrics_[a]->Distance(v1, v2);
  }

  /// Full-tuple distance Δ(t1, t2).
  double Distance(const Tuple& t1, const Tuple& t2) const;

  /// Distance restricted to attributes X: Δ(t1[X], t2[X]).
  /// Δ on the empty set is 0 by convention (paper §3.1).
  double DistanceOn(const AttributeSet& x, const Tuple& t1,
                    const Tuple& t2) const;

  /// Full-tuple distance with early exit: returns +infinity as soon as the
  /// running aggregate exceeds `threshold` (saves work in range queries).
  double DistanceWithin(const Tuple& t1, const Tuple& t2,
                        double threshold) const;

  /// Subset distance with early exit: like DistanceOn, but returns
  /// +infinity as soon as the running aggregate exceeds `threshold`.
  /// Because per-attribute distances are non-negative and the Lp aggregate
  /// is monotone in adds, the ≤/> `threshold` verdict is identical to
  /// computing DistanceOn fully — only the work stops earlier (the
  /// band-membership checks of Propositions 3/5 scan O(n) rows and mostly
  /// reject).
  double DistanceOnWithin(const AttributeSet& x, const Tuple& t1,
                          const Tuple& t2, double threshold) const;

  /// The metric for attribute `a` (introspection for fast paths).
  const AttributeMetric& metric(std::size_t a) const { return *metrics_[a]; }

  /// True iff every attribute metric is a scaled absolute difference —
  /// the columnar fast path's eligibility test. When true and `scales` is
  /// non-null, fills it with the per-attribute scales.
  bool AllScaledAbsoluteDifference(std::vector<double>* scales = nullptr) const;

  /// True iff every attribute metric is the unit-scale absolute difference
  /// (what KdTree / GridIndex hard-code).
  bool AllUnitAbsoluteDifference() const;

  /// Replaces the metric for attribute `a`.
  void SetMetric(std::size_t a, std::unique_ptr<AttributeMetric> metric) {
    metrics_[a] = std::move(metric);
  }

 private:
  std::vector<std::unique_ptr<AttributeMetric>> metrics_;
  LpNorm norm_;
};

}  // namespace disc

#endif  // DISC_DISTANCE_EVALUATOR_H_
