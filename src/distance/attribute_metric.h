#ifndef DISC_DISTANCE_ATTRIBUTE_METRIC_H_
#define DISC_DISTANCE_ATTRIBUTE_METRIC_H_

#include <memory>

#include "common/value.h"

namespace disc {

/// Distance function Δ(t1[A], t2[A]) on a single attribute (paper §2.1.1).
///
/// Implementations must satisfy the four metric axioms: non-negativity,
/// identity of indiscernibles, symmetry, and the triangle inequality —
/// the DISC bounds (Lemma 2, Propositions 3 and 5) depend on all four.
class AttributeMetric {
 public:
  virtual ~AttributeMetric() = default;
  /// Distance between two attribute values.
  virtual double Distance(const Value& a, const Value& b) const = 0;

  /// Introspection hook for the columnar fast path: true iff this metric
  /// computes |a - b| / scale on numeric values, in which case `*scale` is
  /// set. The flat kernels (distance/columnar.h) may then evaluate the
  /// metric over raw double arrays, bit-identically, without virtual
  /// dispatch. Metrics with any other semantics must keep the default.
  virtual bool IsScaledAbsoluteDifference(double* scale) const {
    (void)scale;
    return false;
  }
};

/// |a - b| on numeric values, optionally scaled by 1/scale (so attributes
/// with large domains can be normalized onto comparable ranges).
class AbsoluteDifferenceMetric : public AttributeMetric {
 public:
  /// `scale` divides the raw difference; must be > 0.
  explicit AbsoluteDifferenceMetric(double scale = 1.0) : scale_(scale) {}
  double Distance(const Value& a, const Value& b) const override;
  bool IsScaledAbsoluteDifference(double* scale) const override {
    *scale = scale_;
    return true;
  }

 private:
  double scale_;
};

/// Levenshtein edit distance on string values.
class EditDistanceMetric : public AttributeMetric {
 public:
  double Distance(const Value& a, const Value& b) const override;
};

/// Needleman–Wunsch-style weighted edit distance (confusable characters are
/// cheap) on string values.
class WeightedEditDistanceMetric : public AttributeMetric {
 public:
  double Distance(const Value& a, const Value& b) const override;
};

/// 0/1 discrete metric: 0 iff values are equal.
class DiscreteMetric : public AttributeMetric {
 public:
  double Distance(const Value& a, const Value& b) const override;
};

/// Creates the default metric for a value kind: AbsoluteDifferenceMetric for
/// numerics, EditDistanceMetric for strings.
std::unique_ptr<AttributeMetric> DefaultMetricFor(ValueKind kind);

}  // namespace disc

#endif  // DISC_DISTANCE_ATTRIBUTE_METRIC_H_
