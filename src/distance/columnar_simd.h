#ifndef DISC_DISTANCE_COLUMNAR_SIMD_H_
#define DISC_DISTANCE_COLUMNAR_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "common/cpu_features.h"
#include "distance/lp_norm.h"

namespace disc {

class ColumnarView;

/// Hand-vectorized tier under FlatKernel (DESIGN.md §12).
///
/// Every function here implements the *same contract* as the scalar columnar
/// kernels (distance/columnar.cc): a certain-reject pre-pass may use any
/// evaluation order, any lane width and fused multiply-adds — the
/// kCertainRejectSlack argument covers every reordering — but every value
/// that escapes to a caller is either produced by arithmetic that is
/// lane-for-lane identical to the scalar reference (the Fill kernels, the
/// order-independent L∞ max) or recomputed by the canonical scalar
/// recurrence on the pre-pass survivors. Observable results are therefore
/// bit-identical across every tier; only unobservable work (which rows the
/// pre-pass rejected outright, counted in ScanDelta) may differ.
///
/// Dispatch: callers pass the tier explicitly (ColumnarView latches
/// ActiveSimdTier() at build time; tests and the parity bench override it
/// per view). Functions return an "unsupported" signal instead of falling
/// back internally, so the scalar reference lives in exactly one place.
namespace simd {

/// Per-call work deltas from a batch scan, flushed by FlatKernel into the
/// disc_kernel_* counters once per public call — never per row.
struct ScanDelta {
  std::uint64_t rows_scanned = 0;
  std::uint64_t certain_rejects = 0;
};

/// Hit sink for the batch ε-scans: invoked once per accepted row, in
/// ascending row order, with the exact canonical distance.
using HitFn = void (*)(void* ctx, std::size_t row, double distance);

/// Batch ε-scan over rows [begin, end): the SIMD equivalent of the scalar
/// ScanWithinRange. Returns false when `tier` has no compiled kernel (the
/// caller runs the scalar reference); on true, every row with
/// Δ(q, t_row) ≤ epsilon was reported through `hit` with its canonical
/// distance, and `delta` accumulated the scan totals.
bool ScanWithin(SimdTier tier, const ColumnarView& v, const double* q,
                double epsilon, std::size_t begin, std::size_t end, HitFn hit,
                void* ctx, ScanDelta* delta);

/// Batch full-distance fill: out[i - begin] = Δ(q, t_i) for i in
/// [begin, end), each lane bit-identical to FlatKernel::Distance(i) (the
/// per-row sum runs in canonical attribute order; vectorizing across rows
/// never reorders it). Returns false when unsupported.
bool FillDistances(SimdTier tier, const ColumnarView& v, const double* q,
                   std::size_t begin, std::size_t end, double* out);

/// Batch per-attribute fill: out[i] = |q_a − col_a[i]| (/ scale_a) for all
/// n rows — the SearchDistanceCache attribute rows. Returns false when
/// unsupported.
bool FillAttributeDistances(SimdTier tier, const ColumnarView& v, double q_a,
                            std::size_t a, double* out);

/// Outcome of a single-row pre-pass.
enum class Verdict {
  kUnsupported,    ///< no kernel for this tier/shape — run the scalar path
  kCertainReject,  ///< provably beyond the threshold — return +infinity
  kMaybeWithin,    ///< run the canonical recompute (pre-pass inconclusive)
  kExact,          ///< *exact_out holds the exact distance (L∞ only)
};

/// Single-row threshold pre-pass via gathered column loads (AVX2 only;
/// engages at arity ≥ kGatherMinArity, below which the scalar early-exit
/// scan wins). For L∞ the max is order-independent, so a completed scan
/// returns kExact with the final value.
Verdict DistanceWithinPrepass(SimdTier tier, const ColumnarView& v,
                              const double* q, std::size_t row,
                              double threshold, double* exact_out);

/// Subset variant over the attributes in `bits` (already masked to the
/// view's arity); engages at popcount(bits) ≥ kGatherMinArity.
Verdict DistanceOnWithinPrepass(SimdTier tier, const ColumnarView& v,
                                const double* q, std::uint64_t bits,
                                std::size_t row, double threshold,
                                double* exact_out);

/// Row-major point pre-pass for the kd-tree / grid leaf scans: q and p are
/// contiguous m-vectors, unit scales (those indexes reject non-unit metrics
/// at the factory). Engages at m ≥ kPointMinArity.
Verdict PointWithinPrepass(SimdTier tier, const double* q, const double* p,
                           std::size_t m, LpNorm norm, double threshold,
                           double* exact_out);

/// Engagement floors for the strided/single-row kernels. Below these the
/// scalar early-exit loops beat gather latency / tail masking; tests pin
/// parity on both sides of each floor.
inline constexpr std::size_t kGatherMinArity = 16;
inline constexpr std::size_t kPointMinArity = 8;

}  // namespace simd
}  // namespace disc

#endif  // DISC_DISTANCE_COLUMNAR_SIMD_H_
