#include "distance/edit_distance.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace disc {

namespace {

// Visually / typographically confusable pairs, stored lower-cased.
constexpr const char kConfusable[][2] = {
    {'o', '0'}, {'l', '1'}, {'i', '1'}, {'s', '5'}, {'b', '8'},
    {'z', '2'}, {'g', '9'}, {'q', '9'}, {'e', '3'}, {'t', '7'},
    {'u', 'v'}, {'m', 'n'}, {'c', 'e'},
};

char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

template <typename CostFn>
double GenericEditDistance(std::string_view a, std::string_view b,
                           CostFn substitute_cost) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return static_cast<double>(m);
  if (m == 0) return static_cast<double>(n);

  std::vector<double> prev(m + 1);
  std::vector<double> cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j);

  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<double>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      double del = prev[j] + 1.0;
      double ins = cur[j - 1] + 1.0;
      double sub = prev[j - 1] + substitute_cost(a[i - 1], b[j - 1]);
      cur[j] = std::min({del, ins, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace

bool IsConfusablePair(char a, char b) {
  char la = LowerChar(a);
  char lb = LowerChar(b);
  for (const auto& pair : kConfusable) {
    if ((la == pair[0] && lb == pair[1]) || (la == pair[1] && lb == pair[0])) {
      return true;
    }
  }
  return false;
}

double LevenshteinDistance(std::string_view a, std::string_view b) {
  return GenericEditDistance(
      a, b, [](char x, char y) { return x == y ? 0.0 : 1.0; });
}

double WeightedEditDistance(std::string_view a, std::string_view b) {
  return GenericEditDistance(a, b, [](char x, char y) {
    if (x == y) return 0.0;
    if (LowerChar(x) == LowerChar(y)) return 0.25;
    if (IsConfusablePair(x, y)) return 0.5;
    return 1.0;
  });
}

}  // namespace disc
