#include "distance/lp_norm.h"

namespace disc {

double AggregateDistances(std::span<const double> per_attribute, LpNorm norm) {
  LpAccumulator acc(norm);
  for (double d : per_attribute) acc.Add(d);
  return acc.Total();
}

}  // namespace disc
