#include "distance/lp_norm.h"

#include <algorithm>
#include <cmath>

namespace disc {

double AggregateDistances(std::span<const double> per_attribute, LpNorm norm) {
  LpAccumulator acc(norm);
  for (double d : per_attribute) acc.Add(d);
  return acc.Total();
}

void LpAccumulator::Add(double d) {
  switch (norm_) {
    case LpNorm::kL1:
      acc_ += d;
      break;
    case LpNorm::kL2:
      acc_ += d * d;
      break;
    case LpNorm::kLInf:
      acc_ = std::max(acc_, d);
      break;
  }
}

double LpAccumulator::Total() const {
  if (norm_ == LpNorm::kL2) return std::sqrt(acc_);
  return acc_;
}

bool LpAccumulator::Exceeds(double threshold) const {
  if (norm_ == LpNorm::kL2) return acc_ > threshold * threshold;
  return acc_ > threshold;
}

}  // namespace disc
